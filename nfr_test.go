package nfr

import (
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the README quick-start path through
// the public API only.
func TestFacadeQuickstart(t *testing.T) {
	db := NewDatabase()
	err := db.Create(RelationDef{
		Name:   "enrollment",
		Schema: MustSchema("Student", "Course", "Club"),
		MVDs:   []MVD{NewMVD([]string{"Student"}, []string{"Course"})},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]string{
		{"s1", "c1", "b1"}, {"s1", "c2", "b1"},
		{"s2", "c1", "b2"}, {"s2", "c2", "b2"},
	} {
		if _, err := db.Insert("enrollment", Row(r...)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := db.Stats("enrollment")
	if err != nil {
		t.Fatal(err)
	}
	if st.FlatTuples != 4 || st.NFRTuples != 2 {
		t.Errorf("stats = %+v", st)
	}
	rel, _ := db.Rel("enrollment")
	out := RenderTable(rel.Relation())
	if !strings.Contains(out, "c1,c2") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFacadeAlgebraAndPredicates(t *testing.T) {
	s := MustSchema("A", "B")
	r, err := FromFlats(s, []Flat{Row("a1", "b1"), Row("a1", "b2"), Row("a2", "b1")})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Nest(r, "B")
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 2 {
		t.Errorf("nest = %d tuples", n.Len())
	}
	sel, err := Select(n, And(Contains("A", Row("a1")[0]), Card("B", GE, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 1 {
		t.Errorf("select = %d", sel.Len())
	}
	back, err := Unnest(n, "B")
	if err != nil {
		t.Fatal(err)
	}
	if !back.EquivalentTo(r) {
		t.Error("unnest lost information")
	}
}

func TestFacadeSessionAndOrder(t *testing.T) {
	s := NewSession()
	if _, err := s.Exec("CREATE r (A, B) MVD A ->-> B"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO r VALUES (a, b)"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("SHOW r")
	if err != nil || res.Relation.Len() != 1 {
		t.Fatalf("show: %v %v", res, err)
	}
	sch := MustSchema("X", "Y")
	p, err := PermOf(sch, "Y", "X")
	if err != nil || p.String() != "⟨1 0⟩" {
		t.Errorf("PermOf = %v, %v", p, err)
	}
	so := SuggestOrder(sch, []FD{NewFD([]string{"X"}, []string{"Y"})}, nil)
	if so.Names(sch)[1] != "X" {
		t.Errorf("SuggestOrder = %v", so.Names(sch))
	}
	if StringRow("x")[0].Str() != "x" {
		t.Error("StringRow")
	}
}
