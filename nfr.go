// Package nfr is the public API of the non-first-normal-form (NFR)
// relational database library, a from-scratch reproduction of
// Arisawa, Moriya & Miura, "Operations and the Properties on
// Non-First-Normal-Form Relational Databases" (VLDB 1983).
//
// The library has three layers:
//
//   - the model: atoms, value sets, NFR tuples, and relations with the
//     paper's operations — composition/decomposition (Defs. 1–2), nest
//     and canonical forms V_P (Defs. 4–5), irreducible forms (Def. 3),
//     fixedness (Def. 7) and cardinality classes (Def. 6);
//   - the engine: a catalog of relations kept permanently canonical by
//     the Section-4 incremental insert/delete algorithms, with declared
//     FDs/MVDs, an NF² query language whose planner routes reads
//     through the durable hash and B+tree indexes (docs/queries.md has
//     the statement reference, the planner's soundness rules, and the
//     EXPLAIN format), and binary persistence;
//   - the substrate: dependency theory (closures, keys, Bernstein 3NF
//     synthesis, 4NF), a nested relational algebra, and a paged storage
//     engine realizing the paper's "realization view" — each relation's
//     canonical tuples live in heap chains of checksummed slotted
//     pages behind an LRU buffer pool, in a single database file with
//     a write-ahead log making every statement atomic and durable
//     across crashes (see docs/storage.md for the layer diagram, file
//     format, and buffer-pool tuning, and docs/recovery.md for the
//     WAL, checksum, and redo-on-open recovery protocol).
//
// Quick start:
//
//	db := nfr.NewDatabase()
//	db.Create(nfr.RelationDef{
//	    Name:   "enrollment",
//	    Schema: nfr.MustSchema("Student", "Course", "Club"),
//	    MVDs:   []nfr.MVD{nfr.NewMVD([]string{"Student"}, []string{"Course"})},
//	})
//	db.Insert("enrollment", nfr.Row("s1", "c1", "b1"))
//
// Multi-statement transactions (docs/api.md has the full lifecycle,
// option, context, and error-taxonomy reference plus a migration
// table):
//
//	db, _ := nfr.Open(path, nfr.WithPoolPages(256))
//	tx, _ := nfr.Begin(ctx, db)
//	tx.Insert("enrollment", nfr.Row("s9", "c1", "b2"))
//	tx.Insert("enrollment", nfr.Row("s9", "c2", "b2"))
//	if err := tx.Commit(); err != nil { ... } // one fsync for both
//
// A database file can also be served over TCP: cmd/nfr-server speaks
// the internal/wire frame protocol, the client package is the Go
// client (with the same error taxonomy rebuilt across the wire), and
// cmd/nfr-client is the interactive shell. See docs/server.md for the
// frame format, connection lifecycle, and shutdown-drain rules.
//
// See examples/ for runnable programs and internal/experiments for the
// paper-reproduction harness.
package nfr

import (
	"context"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/vset"
)

// Model types.
type (
	// Atom is one atomic domain element.
	Atom = value.Atom
	// Set is a canonical set of atoms — one NFR tuple component.
	Set = vset.Set
	// Tuple is one NFR tuple (a set per attribute).
	Tuple = tuple.Tuple
	// Flat is a 1NF tuple (one atom per attribute).
	Flat = tuple.Flat
	// Schema is an ordered list of typed attributes.
	Schema = schema.Schema
	// Attribute is one schema column.
	Attribute = schema.Attribute
	// AttrSet is an unordered attribute-name set.
	AttrSet = schema.AttrSet
	// Permutation is a nest order over a schema's attributes.
	Permutation = schema.Permutation
	// Relation is an NFR: a duplicate-free set of NFR tuples.
	Relation = core.Relation
	// Cardinality is the Definition-6 class of an attribute.
	Cardinality = core.Cardinality
)

// Dependency types.
type (
	// FD is a functional dependency.
	FD = dep.FD
	// MVD is a multivalued dependency.
	MVD = dep.MVD
)

// Engine types.
type (
	// Database is a catalog of canonical-form relations.
	Database = engine.Database
	// RelationDef declares a relation for Database.Create.
	RelationDef = engine.RelationDef
	// RelStats summarizes a live relation.
	RelStats = engine.RelStats
	// Session executes NF² query-language statements.
	Session = query.Session
	// Result is a query-language statement outcome.
	Result = query.Result
	// Pred is a tuple predicate for algebra selections.
	Pred = algebra.Pred
)

// Cardinality classes (Definition 6).
const (
	OneOne = core.OneOne
	NOne   = core.NOne
	OneN   = core.OneN
	MN     = core.MN
)

// Option configures Open (see docs/api.md).
type Option = engine.Option

// Open options.
var (
	// WithPoolPages sets the buffer-pool capacity in pages.
	WithPoolPages = engine.WithPoolPages
	// WithCheckpointBytes sets the WAL size that triggers an automatic
	// checkpoint (negative = only on Flush/Close).
	WithCheckpointBytes = engine.WithCheckpointBytes
	// WithReadOnly rejects every mutation with ErrReadOnly.
	WithReadOnly = engine.WithReadOnly
)

// The error taxonomy: every error the engine returns wraps one of
// these sentinels, so callers branch with errors.Is/As instead of
// matching message strings. See docs/api.md for the full table.
var (
	ErrNotFound     = engine.ErrNotFound
	ErrExists       = engine.ErrExists
	ErrTypeMismatch = engine.ErrTypeMismatch
	ErrTxDone       = engine.ErrTxDone
	ErrTxConflict   = engine.ErrTxConflict
	ErrReadOnly     = engine.ErrReadOnly
	ErrClosed       = engine.ErrClosed
	ErrCorrupt      = engine.ErrCorrupt
	ErrMispaired    = engine.ErrMispaired
)

// NewDatabase creates an empty in-memory database.
func NewDatabase() *Database { return engine.New() }

// Open opens (or creates) a disk-backed database in the single paged
// file at path: relations live in heap chains behind a buffer pool,
// every canonical-form update is written through under its
// transaction and group-committed as one WAL batch, and opening a
// crashed file replays its log (docs/recovery.md). Close it to
// checkpoint. Options tune the pool, the checkpoint policy, and the
// access mode — see docs/api.md and docs/storage.md.
func Open(path string, opts ...Option) (*Database, error) { return engine.Open(path, opts...) }

// OpenDatabase opens a disk-backed database with default options.
//
// Deprecated: use Open(path).
func OpenDatabase(path string) (*Database, error) { return engine.Open(path) }

// Tx is a multi-statement transaction handle: Insert, InsertMany,
// Delete, Create, Drop, ReadRelation and Query statements pool under
// one storage transaction; Commit makes them durable as ONE
// group-committed WAL batch (one fsync) and Rollback discards them,
// returning the database to its pre-Begin state. After either, every
// method returns ErrTxDone. See docs/api.md.
type Tx struct {
	*engine.Tx
}

// Begin starts a multi-statement transaction on db. The context
// governs the transaction's lifetime: statements fail once it is
// cancelled, and relation scans check it at page-fetch granularity.
func Begin(ctx context.Context, db *Database) (*Tx, error) {
	tx, err := db.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &Tx{Tx: tx}, nil
}

// Query parses and executes one NF² query-language statement inside
// the transaction: DML statements pool under it, and query statements
// (including STATS and VALIDATE) see its uncommitted writes. The
// session-scoped statements BEGIN/COMMIT/ROLLBACK are rejected — use
// the handle's Commit/Rollback, or a Session.
func (tx *Tx) Query(ctx context.Context, stmtText string) (Result, error) {
	return query.ExecOn(ctx, tx.Tx, stmtText)
}

// LoadDatabase reads a paged database file saved with Database.Save
// into an in-memory database (no live file attachment).
func LoadDatabase(path string) (*Database, error) { return engine.Load(path) }

// NewSession creates a query-language session over a fresh database.
func NewSession() *Session { return query.NewSession() }

// NewSessionOn creates a query-language session over an existing
// database (for example one opened with Open). BEGIN/COMMIT/ROLLBACK
// statements manage a transaction on the session.
func NewSessionOn(db *Database) *Session { return query.NewSessionOn(db) }

// MustSchema builds an untyped schema from attribute names; it panics
// on duplicates.
func MustSchema(names ...string) *Schema { return schema.MustOf(names...) }

// NewFD builds a functional dependency from attribute names.
func NewFD(lhs, rhs []string) FD { return dep.NewFD(lhs, rhs) }

// NewMVD builds a multivalued dependency from attribute names.
func NewMVD(lhs, rhs []string) MVD { return dep.NewMVD(lhs, rhs) }

// Row builds a flat tuple from literals parsed with the value syntax
// (bare identifiers are strings; numbers, true/false, quoted strings
// as usual).
func Row(lits ...string) Flat {
	out := make(Flat, len(lits))
	for i, l := range lits {
		out[i] = value.MustParse(l)
	}
	return out
}

// StringRow builds a flat tuple of string atoms without literal
// parsing.
func StringRow(ss ...string) Flat { return tuple.FlatOfStrings(ss...) }

// FromFlats builds a 1NF relation from flat tuples.
func FromFlats(s *Schema, flats []Flat) (*Relation, error) {
	return core.FromFlats(s, flats)
}

// PermOf builds a nest order from attribute names.
func PermOf(s *Schema, names ...string) (Permutation, error) {
	return schema.PermOf(s, names...)
}

// SuggestOrder derives a nest order from dependencies (Section 3.4:
// dependents first, determinants last).
func SuggestOrder(s *Schema, fds []FD, mvds []MVD) Permutation {
	return engine.SuggestOrder(s, fds, mvds)
}

// RenderTable prints a relation as an aligned table in the paper's
// display style.
func RenderTable(r *Relation) string { return query.RenderTable(r) }

// Predicate constructors for algebra-level selections.
var (
	// Contains tests set membership of a constant.
	Contains = algebra.Contains
	// Cmp compares a component against a constant (Any semantics).
	Cmp = algebra.Cmp
	// Card tests a component's cardinality.
	Card = algebra.Card
	// And, Or, Not combine predicates; True matches everything.
	And  = algebra.And
	Or   = algebra.Or
	Not  = algebra.Not
	True = algebra.True
)

// Comparison operators for Cmp/Card.
const (
	EQ = algebra.EQ
	NE = algebra.NE
	LT = algebra.LT
	LE = algebra.LE
	GT = algebra.GT
	GE = algebra.GE
)

// Select, Project, NaturalJoin, Nest and Unnest expose the nested
// algebra on relations.
var (
	Select      = algebra.Select
	SelectFlat  = algebra.SelectFlat
	Project     = algebra.Project
	ProjectFlat = algebra.ProjectFlat
	NaturalJoin = algebra.NaturalJoin
	Union       = algebra.Union
	Difference  = algebra.Difference
	Nest        = algebra.Nest
	Unnest      = algebra.Unnest
)
