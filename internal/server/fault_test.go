package server

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// killScript is one connection's worth of frames: two transactions
// (BEGIN, INSERTs, COMMIT) whose rows are unique to the iteration, so
// every connection's effect on the database is distinguishable.
type killScript struct {
	stream     []byte         // the raw frame bytes, in order
	bounds     []int          // cumulative offset at the end of each frame
	commitEnds []int          // offset at which each transaction's COMMIT frame completes
	txRows     [][]tuple.Flat // rows inserted by each transaction
}

func buildKillScript(it int) killScript {
	txs := [][]tuple.Flat{
		{
			flatRow(fmt.Sprintf("s%da", it), fmt.Sprintf("c%da", it), fmt.Sprintf("b%da", it)),
			flatRow(fmt.Sprintf("s%db", it), fmt.Sprintf("c%db", it), fmt.Sprintf("b%db", it)),
		},
		{
			flatRow(fmt.Sprintf("s%dc", it), fmt.Sprintf("c%dc", it), fmt.Sprintf("b%dc", it)),
		},
	}
	var ks killScript
	ks.txRows = txs
	add := func(stmt string) {
		ks.stream = wire.Append(ks.stream, wire.TQuery, []byte(stmt))
		ks.bounds = append(ks.bounds, len(ks.stream))
	}
	for _, rows := range txs {
		add("BEGIN")
		for _, r := range rows {
			add(stmtInsert("f", r[0].S, r[1].S, r[2].S))
		}
		add("COMMIT")
		ks.commitEnds = append(ks.commitEnds, len(ks.stream))
	}
	return ks
}

// readRelWatchdog reads a relation with a deadline: if an orphaned
// transaction leaked a latch, the read blocks and the watchdog turns
// that into a test failure instead of a hang.
func readRelWatchdog(t *testing.T, db *engine.Database, name string) *core.Relation {
	t.Helper()
	type out struct {
		rel *core.Relation
		err error
	}
	ch := make(chan out, 1)
	go func() {
		rel, err := db.ReadRelation(context.Background(), name)
		ch <- out{rel, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("read %s: %v", name, o.err)
		}
		return o.rel
	case <-time.After(10 * time.Second):
		t.Fatalf("read %s blocked: connection teardown leaked a latch", name)
		return nil
	}
}

// relKeys expands a relation to the set of flat-tuple keys.
func relKeys(rel *core.Relation) map[string]bool {
	keys := make(map[string]bool)
	for _, f := range rel.Expand() {
		keys[f.Key()] = true
	}
	return keys
}

// TestKillAtEveryFrameBoundary is the fault-injection satellite: a
// client runs a two-transaction frame script and the connection is
// killed at every byte offset of the stream — not just frame
// boundaries — in two ways:
//
//   - "drain": half-close after the prefix (FIN, read side open). TCP
//     delivers every written byte before the EOF, so the outcome is
//     deterministic: a transaction committed iff its COMMIT frame was
//     fully inside the prefix.
//   - "abort": full close with replies unread. The server's response
//     writes start failing mid-script, so which suffix of delivered
//     frames still executes is timing-dependent — but the database
//     must land on a prefix of the script's transactions, whole
//     transactions only.
//
// After every kill the orphaned transaction must be rolled back with
// no leaked latches (probed by a watchdogged read), and at the end the
// file must reopen checksum-clean with indexes matching the heap and
// contents matching the running oracle.
func TestKillAtEveryFrameBoundary(t *testing.T) {
	dir := t.TempDir()
	srv, db, addr := startServer(t, dir, Config{})

	setup, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, setup, "CREATE f (Student, Course, Club)")
	setup.Close()
	waitConns(t, srv, 0)

	expect := make(map[string]bool) // oracle: keys of every committed row

	// cutsFor picks the kill offsets for one script. The full run cuts
	// at every byte; -short keeps the frame boundaries plus a mid-frame
	// offset per frame, which still covers every boundary case.
	cutsFor := func(ks killScript) []int {
		if !testing.Short() {
			cuts := make([]int, len(ks.stream)+1)
			for i := range cuts {
				cuts[i] = i
			}
			return cuts
		}
		seen := map[int]bool{0: true}
		for _, b := range ks.bounds {
			seen[b] = true
			if b >= 3 {
				seen[b-3] = true // mid-frame: inside the CRC or payload
			}
		}
		cuts := make([]int, 0, len(seen))
		for c := range seen {
			cuts = append(cuts, c)
		}
		sort.Ints(cuts)
		return cuts
	}

	it := 0
	for _, mode := range []string{"drain", "abort"} {
		// Each connection gets a fresh script (unique rows), so the cut
		// list is recomputed per iteration; the stream only grows as the
		// iteration counter gains digits, so indexing it by a
		// monotonically increasing position terminates.
		for ci := 0; ; ci++ {
			ks := buildKillScript(it)
			it++
			cuts := cutsFor(ks)
			if ci >= len(cuts) {
				break
			}
			cut := cuts[ci]

			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("%s cut %d: dial: %v", mode, cut, err)
			}
			nc.SetDeadline(time.Now().Add(10 * time.Second))
			if _, _, err := wire.Read(nc); err != nil { // hello
				t.Fatalf("%s cut %d: hello: %v", mode, cut, err)
			}
			if _, err := nc.Write(ks.stream[:cut]); err != nil {
				t.Fatalf("%s cut %d: write: %v", mode, cut, err)
			}
			if mode == "drain" {
				// FIN now, but keep reading: the server executes every
				// delivered frame, answers each, then hits EOF and rolls
				// back whatever transaction is still open.
				nc.(*net.TCPConn).CloseWrite()
				for {
					if _, _, err := wire.Read(nc); err != nil {
						break
					}
				}
			}
			nc.Close()
			waitConns(t, srv, 0)

			actual := relKeys(readRelWatchdog(t, db, "f"))

			// Which of this script's transactions landed?
			committed := make([]bool, len(ks.txRows))
			for i, rows := range ks.txRows {
				present := 0
				for _, r := range rows {
					if actual[r.Key()] {
						present++
					}
				}
				switch present {
				case 0:
				case len(rows):
					committed[i] = true
				default:
					t.Fatalf("%s cut %d: tx %d half-applied: %d of %d rows", mode, cut, i, present, len(rows))
				}
			}
			for i, c := range committed {
				if c && ks.commitEnds[i] > cut {
					t.Fatalf("%s cut %d: tx %d committed but its COMMIT frame was never sent", mode, cut, i)
				}
				if c && i > 0 && !committed[i-1] {
					t.Fatalf("%s cut %d: tx %d committed without tx %d", mode, cut, i, i-1)
				}
				if mode == "drain" && !c && ks.commitEnds[i] <= cut {
					t.Fatalf("%s cut %d: tx %d lost despite its COMMIT frame being delivered", mode, cut, i)
				}
				if c {
					for _, r := range ks.txRows[i] {
						expect[r.Key()] = true
					}
				}
			}

			// The whole relation matches the oracle exactly: nothing
			// extra survived a rollback, nothing committed went missing.
			if len(actual) != len(expect) {
				t.Fatalf("%s cut %d: %d rows, oracle has %d", mode, cut, len(actual), len(expect))
			}
			for k := range expect {
				if !actual[k] {
					t.Fatalf("%s cut %d: committed row %s missing", mode, cut, k)
				}
			}
		}
	}

	// Reopen: the file left behind by all those kills must be
	// checksum-valid, index-consistent, and oracle-equivalent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2, err := engine.Open(filepath.Join(dir, "served.nfrs"))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.VerifyIndexes(); err != nil {
		t.Fatalf("reopened indexes disagree with heap: %v", err)
	}
	reopened := relKeys(readRelWatchdog(t, db2, "f"))
	if len(reopened) != len(expect) {
		t.Fatalf("reopened: %d rows, oracle has %d", len(reopened), len(expect))
	}
	for k := range expect {
		if !reopened[k] {
			t.Fatalf("reopened: committed row %s missing", k)
		}
	}
}
