package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/engine"
)

// TestShutdownDrainsInFlightCommit is the graceful-shutdown satellite:
// Shutdown arrives while one connection is parked in an open
// transaction and another has a COMMIT deterministically in flight
// (held by the statement hook until the server is draining). The
// in-flight commit must complete and be answered, the idle
// transaction must roll back, the listener must close, and the file
// must reopen index-consistent with exactly the committed rows.
func TestShutdownDrainsInFlightCommit(t *testing.T) {
	dir := t.TempDir()
	db, err := engine.Open(filepath.Join(dir, "d.nfrs"))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{})

	// The hook parks the armed COMMIT mid-execution until the server is
	// draining, making "shutdown with a commit in flight" deterministic
	// instead of a race the test usually loses. Set before Serve starts
	// so no handler goroutine can race the write.
	var armed atomic.Bool
	commitStarted := make(chan struct{})
	srv.testHookStmt = func(stmt string) {
		if stmt == "COMMIT" && armed.CompareAndSwap(true, false) {
			close(commitStarted)
			for !srv.draining.Load() {
				time.Sleep(time.Millisecond)
			}
		}
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveDone; err != nil && err != ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
		db.Close()
	})
	addr := lis.Addr().String()

	// idle: a connection parked inside an open transaction.
	idle, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	mustExec(t, idle, "CREATE ga (Student, Course, Club)")
	mustExec(t, idle, "CREATE gb (Student, Course, Club)")
	mustExec(t, idle, "BEGIN")
	mustExec(t, idle, stmtInsert("ga", "s1", "c1", "b1"))

	// committer: a transaction whose COMMIT will be in flight when
	// Shutdown is called.
	committer, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer committer.Close()
	mustExec(t, committer, "BEGIN")
	mustExec(t, committer, stmtInsert("gb", "s2", "c2", "b2"))

	armed.Store(true)
	commitErr := make(chan error, 1)
	go func() {
		_, err := committer.Exec(context.Background(), "COMMIT")
		commitErr <- err
	}()
	<-commitStarted // the COMMIT statement is executing on the server

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The in-flight commit completed and was answered before teardown.
	if err := <-commitErr; err != nil {
		t.Fatalf("in-flight COMMIT: %v", err)
	}
	// The idle connection was closed; its next call reports the drain.
	if _, err := idle.Exec(context.Background(), "SHOW ga"); err == nil {
		t.Fatal("idle connection still usable after shutdown")
	}
	// The listener is closed.
	if _, err := client.Dial(addr, client.WithDialRetries(0), client.WithDialTimeout(time.Second)); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}

	// Committed rows stayed, the idle transaction rolled back.
	if n := readRelWatchdog(t, db, "ga").ExpansionSize(); n != 0 {
		t.Fatalf("idle transaction survived shutdown: ga has %d rows", n)
	}
	if n := readRelWatchdog(t, db, "gb").ExpansionSize(); n != 1 {
		t.Fatalf("in-flight commit lost: gb has %d rows, want 1", n)
	}

	// Reopen: committed boundary, indexes agree with the heap.
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2, err := engine.Open(filepath.Join(dir, "d.nfrs"))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.VerifyIndexes(); err != nil {
		t.Fatalf("reopened indexes disagree with heap: %v", err)
	}
	if n := readRelWatchdog(t, db2, "gb").ExpansionSize(); n != 1 {
		t.Fatalf("reopened gb has %d rows, want 1", n)
	}
}

// TestShutdownUnderConcurrentClients drains a server while 8 clients
// hammer it with transactions that touch both a private and a shared
// relation (so wait-die conflicts and merged group commits both
// happen). Every acknowledged transaction must survive the drain and
// the reopen; unacknowledged ones must be all-or-nothing. Run under
// -race in CI, this is the shutdown satellite's concurrency leg.
func TestShutdownUnderConcurrentClients(t *testing.T) {
	const nClients = 8
	dir := t.TempDir()
	srv, db, addr := startServer(t, dir, Config{})

	setup, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, setup, "CREATE shared (Student, Course, Club)")
	for i := 0; i < nClients; i++ {
		mustExec(t, setup, fmt.Sprintf("CREATE p%d (Student, Course, Club)", i))
	}
	setup.Close()

	// acked[i] collects the transaction numbers client i saw commit.
	acked := make([][]int, nClients)
	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			ctx := context.Background()
			for txn := 0; ; txn++ {
				row := fmt.Sprintf("s%d_%d", i, txn)
				stmts := []string{
					"BEGIN",
					stmtInsert(fmt.Sprintf("p%d", i), row, "c", "b"),
					stmtInsert("shared", row, "c", "b"),
					"COMMIT",
				}
				failed := false
				for _, st := range stmts {
					if _, err := c.Exec(ctx, st); err != nil {
						if errors.Is(err, engine.ErrTxConflict) {
							// wait-die victim: roll back and move on to
							// the next transaction attempt.
							if _, err := c.Exec(ctx, "ROLLBACK"); err != nil {
								return // connection gone
							}
							failed = true
							break
						}
						return // drained, closed, or poisoned: stop
					}
				}
				if !failed {
					acked[i] = append(acked[i], txn)
				}
			}
		}(i)
	}

	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	// check verifies every acked transaction is fully present and every
	// other transaction is all-or-nothing, against one Database handle.
	check := func(db *engine.Database, label string) {
		t.Helper()
		shared := relKeys(readRelWatchdog(t, db, "shared"))
		total := 0
		for i := 0; i < nClients; i++ {
			private := relKeys(readRelWatchdog(t, db, fmt.Sprintf("p%d", i)))
			total += len(acked[i])
			ackedSet := make(map[int]bool, len(acked[i]))
			for _, txn := range acked[i] {
				ackedSet[txn] = true
			}
			// Scan past the acked horizon: the last attempt may have
			// committed without its ack being recorded before the client
			// stopped — that is fine, but it must still be atomic.
			maxTxn := 0
			for _, txn := range acked[i] {
				if txn >= maxTxn {
					maxTxn = txn + 1
				}
			}
			for txn := 0; txn <= maxTxn; txn++ {
				row := flatRow(fmt.Sprintf("s%d_%d", i, txn), "c", "b").Key()
				inPrivate, inShared := private[row], shared[row]
				if inPrivate != inShared {
					t.Fatalf("%s: client %d tx %d split across relations (private=%v shared=%v)",
						label, i, txn, inPrivate, inShared)
				}
				if ackedSet[txn] && !inPrivate {
					t.Fatalf("%s: client %d tx %d acknowledged but missing", label, i, txn)
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s: no transaction committed before shutdown", label)
		}
	}
	check(db, "live")

	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2, err := engine.Open(filepath.Join(dir, "served.nfrs"))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.VerifyIndexes(); err != nil {
		t.Fatalf("reopened indexes disagree with heap: %v", err)
	}
	check(db2, "reopened")
}
