// Package server is the network front end: a TCP server speaking the
// internal/wire frame protocol, running one query.Session per
// connection over the engine's Begin(ctx)/Tx API.
//
// Production concerns are the point of this layer:
//
//   - a connection limit (connections past it are refused with a
//     CodeBusy error frame, never silently dropped);
//   - per-connection contexts, cancelled when the connection ends, so
//     an abandoned scan stops at page-fetch granularity;
//   - an idle timeout that closes connections parked mid-transaction —
//     an idle open Tx holds relation latches, and nothing else would
//     ever release them;
//   - graceful shutdown: Shutdown stops accepting, lets every
//     in-flight statement (including a commit) finish and answer, then
//     closes each connection — the session rollback in the connection
//     teardown rolls back whatever transaction was still open, exactly
//     the engine's Close semantics, so the served file is always left
//     at a committed boundary.
//
// A connection that dies mid-transaction (crash, cable pull, fault
// injection) takes the same teardown path: the orphaned transaction is
// rolled back and its latches released before the handler goroutine
// exits. See docs/server.md for the protocol and lifecycle reference.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/encoding"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/wire"
)

// Defaults for Config zero values.
const (
	DefaultMaxConns    = 64
	DefaultIdleTimeout = 5 * time.Minute
	// writeTimeout bounds every response write so a dead peer cannot
	// wedge a handler (and with it, graceful shutdown) forever.
	writeTimeout = 30 * time.Second
)

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Config tunes a Server. The zero value serves with the defaults.
type Config struct {
	// MaxConns caps concurrently served connections; connections past
	// the cap receive a CodeBusy error frame and are closed. 0 means
	// DefaultMaxConns; negative means unlimited.
	MaxConns int
	// IdleTimeout closes a connection that sends no frame for this
	// long — including one parked inside an open transaction, whose
	// latches would otherwise be held forever. 0 means
	// DefaultIdleTimeout; negative disables the timeout.
	IdleTimeout time.Duration
	// Logf, when non-nil, receives one line per connection-level event
	// (accept, refuse, teardown, shutdown).
	Logf func(format string, args ...any)
}

// Server serves one engine.Database over the wire protocol. Create
// with New, start with Serve or ListenAndServe, stop with Shutdown
// (graceful) or Close (immediate). The Server does not own the
// database: the caller closes it after the server has stopped.
type Server struct {
	db  *engine.Database
	cfg Config

	mu    sync.Mutex
	lis   net.Listener
	conns map[*conn]struct{}

	draining atomic.Bool
	served   sync.WaitGroup // one per live connection handler

	accepted   atomic.Int64
	refused    atomic.Int64
	statements atomic.Int64

	// testHookStmt, when set, runs before each statement executes —
	// the shutdown tests use it to park a statement deterministically
	// in flight.
	testHookStmt func(stmt string)
}

// New creates a server for db. Zero-value cfg fields take the
// defaults.
func New(db *engine.Database, cfg Config) *Server {
	if cfg.MaxConns == 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	return &Server{db: db, cfg: cfg, conns: make(map[*conn]struct{})}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Addr returns the listener address once Serve has one (for tests and
// for -addr :0).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// ListenAndServe listens on addr ("host:port"; empty host = all
// interfaces) and serves until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Serve accepts connections on lis until Shutdown or Close, then
// returns ErrServerClosed. Each accepted connection is served by its
// own goroutine with its own query.Session.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	}
	if s.lis != nil {
		s.mu.Unlock()
		lis.Close()
		return errors.New("server: already serving")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		nc, err := lis.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		s.accepted.Add(1)
		s.mu.Lock()
		refuse := byte(0)
		switch {
		case s.draining.Load():
			refuse = wire.CodeShutdown
		case s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns:
			refuse = wire.CodeBusy
		}
		if refuse != 0 {
			s.mu.Unlock()
			s.refused.Add(1)
			s.logf("refuse %s (code %d)", nc.RemoteAddr(), refuse)
			nc.SetWriteDeadline(time.Now().Add(writeTimeout))
			msg := "server at connection limit"
			if refuse == wire.CodeShutdown {
				msg = "server shutting down"
			}
			_ = wire.WriteErr(nc, refuse, msg)
			nc.Close()
			continue
		}
		c := &conn{s: s, nc: nc, sess: query.NewSessionOn(s.db)}
		c.ctx, c.cancel = context.WithCancel(context.Background())
		s.conns[c] = struct{}{}
		s.served.Add(1)
		s.mu.Unlock()
		s.logf("accept %s", nc.RemoteAddr())
		go c.serve()
	}
}

// drain flips the server into draining mode exactly once: stop
// accepting and interrupt every connection's pending read. In-flight
// statements keep running; each handler notices the drain after its
// current statement answers.
func (s *Server) drain() {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	lis := s.lis
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.interruptRead()
	}
}

// Shutdown gracefully stops the server: no new connections, every
// in-flight statement — including a commit mid-fsync — completes and
// answers, idle connections (transaction open or not) are closed with
// a TBye, and open transactions roll back in the connection teardown.
// If ctx expires first, the remaining connections are torn down
// forcibly (contexts cancelled, sockets closed) and ctx's error is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drain()
	done := make(chan struct{})
	go func() {
		s.served.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("shutdown complete")
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.cancel()
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		s.logf("shutdown forced: %v", ctx.Err())
		return ctx.Err()
	}
}

// Close stops the server immediately: the listener closes, every
// connection's context is cancelled and its socket closed, and open
// transactions roll back in the teardown. In-flight statements may be
// cut mid-execution (their transactions roll back too).
func (s *Server) Close() error {
	s.drain()
	s.mu.Lock()
	for c := range s.conns {
		c.cancel()
		c.nc.Close()
	}
	s.mu.Unlock()
	s.served.Wait()
	return nil
}

// Stats snapshots the server-wide statistics served by the TStats
// frame.
func (s *Server) Stats() wire.ServerStats {
	st := wire.ServerStats{
		MaxConns:   s.cfg.MaxConns,
		Accepted:   s.accepted.Load(),
		Refused:    s.refused.Load(),
		Statements: s.statements.Load(),
		LatchWaits: s.db.LatchWaits(),
	}
	s.mu.Lock()
	st.Conns = len(s.conns)
	s.mu.Unlock()
	if ps, ok := s.db.AllPoolStats(); ok {
		st.Pool = ps
	}
	if ws, ok := s.db.WALStats(); ok {
		st.WAL = ws
	}
	if ps := s.db.PipelineStats(); len(ps) > 0 {
		st.Pipelines = make(map[string]wire.RelPipeline, len(ps))
		for name, p := range ps {
			st.Pipelines[name] = wire.RelPipeline{
				Shards:     p.Shards,
				Batches:    p.Batches,
				Ops:        p.Ops,
				MaxBatch:   p.MaxBatch,
				QueuePeak:  p.QueuePeak,
				LatchWaits: p.LatchWaits,
			}
		}
	}
	if ips, err := s.db.IndexPageStats(); err == nil && len(ips) > 0 {
		st.Indexes = make(map[string]wire.RelIndexPages, len(ips))
		for name, c := range ips {
			st.Indexes[name] = wire.RelIndexPages{
				HashDir:     c.HashDir,
				HashBuckets: c.HashBuckets,
				BTreeInner:  c.BTreeInner,
				BTreeLeaf:   c.BTreeLeaf,
			}
		}
	}
	return st
}

// conn is one served connection: its socket, its session (whose open
// transaction, if any, is rolled back at teardown), and its context
// (cancelled at teardown so abandoned scans stop).
type conn struct {
	s      *Server
	nc     net.Conn
	sess   *query.Session
	ctx    context.Context
	cancel context.CancelFunc

	// dlMu serializes the handler's read-deadline arming against the
	// drain interrupt, so a drain can never be overwritten by a stale
	// idle deadline.
	dlMu sync.Mutex
}

// aDeadlinePast is the deadline used to interrupt a pending read.
var aDeadlinePast = time.Unix(1, 0)

// armRead sets the read deadline for the next frame: immediate when
// draining, the idle timeout otherwise.
func (c *conn) armRead() {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	switch {
	case c.s.draining.Load():
		c.nc.SetReadDeadline(aDeadlinePast)
	case c.s.cfg.IdleTimeout > 0:
		c.nc.SetReadDeadline(time.Now().Add(c.s.cfg.IdleTimeout))
	default:
		c.nc.SetReadDeadline(time.Time{})
	}
}

// interruptRead forces a pending (or future) frame read to return
// immediately. Called with the draining flag already set.
func (c *conn) interruptRead() {
	c.dlMu.Lock()
	c.nc.SetReadDeadline(aDeadlinePast)
	c.dlMu.Unlock()
}

// write sends one frame under the write timeout; a failure is
// connection-fatal (the caller returns from the serve loop).
func (c *conn) write(typ byte, payload []byte) error {
	c.nc.SetWriteDeadline(time.Now().Add(writeTimeout))
	return wire.Write(c.nc, typ, payload)
}

func (c *conn) writeErr(code byte, msg string) error {
	c.nc.SetWriteDeadline(time.Now().Add(writeTimeout))
	return wire.WriteErr(c.nc, code, msg)
}

// bye sends a best-effort TBye before teardown.
func (c *conn) bye(reason string) {
	_ = c.write(wire.TBye, []byte(reason))
}

// finish tears the connection down: unregister, cancel the context,
// roll back the session's open transaction (if any), close the socket.
// This is the single exit path for every way a connection ends — EOF,
// error, idle timeout, drain, quit — so an orphaned transaction can
// never outlive its connection.
func (c *conn) finish() {
	c.s.mu.Lock()
	delete(c.s.conns, c)
	c.s.mu.Unlock()
	c.cancel()
	if err := c.sess.Close(); err != nil && !errors.Is(err, engine.ErrTxDone) {
		c.s.logf("teardown rollback %s: %v", c.nc.RemoteAddr(), err)
	}
	c.nc.Close()
	c.s.logf("close %s", c.nc.RemoteAddr())
}

// serve is the connection's frame loop.
func (c *conn) serve() {
	defer c.s.served.Done()
	defer c.finish()
	if err := c.write(wire.THello, []byte{wire.ProtoVersion}); err != nil {
		return
	}
	for {
		c.armRead()
		typ, payload, err := wire.Read(c.nc)
		if err != nil {
			if c.s.draining.Load() {
				c.bye("server shutting down")
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.bye("idle timeout")
				return
			}
			// EOF, reset, truncated or garbage frame: close without
			// ceremony — teardown rolls back whatever was open.
			return
		}
		ok := false
		switch typ {
		case wire.TQuery:
			ok = c.execQuery(string(payload))
		case wire.TStats:
			body, err := json.Marshal(c.s.Stats())
			if err != nil {
				ok = c.writeErr(wire.CodeGeneric, err.Error()) == nil
				break
			}
			ok = c.write(wire.TStatsReply, body) == nil
		case wire.TPing:
			ok = c.write(wire.TPong, nil) == nil
		case wire.TQuit:
			c.bye("bye")
			return
		default:
			// A frame the server does not speak (including
			// server-to-client types echoed back): protocol violation,
			// answer and close.
			c.writeErr(wire.CodeGeneric, fmt.Sprintf("server: unexpected frame type 0x%02x", typ))
			return
		}
		if !ok {
			return
		}
		if c.s.draining.Load() {
			c.bye("server shutting down")
			return
		}
	}
}

// execQuery runs one statement on the connection's session and writes
// the response frame. Statement errors keep the connection usable;
// only a failed response write is fatal (reported by returning false).
func (c *conn) execQuery(stmt string) bool {
	c.s.statements.Add(1)
	st, err := query.Parse(stmt)
	if err != nil {
		return c.writeErr(wire.CodeParse, err.Error()) == nil
	}
	if c.s.testHookStmt != nil {
		c.s.testHookStmt(stmt)
	}
	res, err := c.sess.ExecStmtContext(c.ctx, st)
	if err != nil {
		return c.writeErr(errCode(err), err.Error()) == nil
	}
	if res.Relation != nil {
		var buf bytes.Buffer
		if err := encoding.WriteRelation(&buf, res.Relation); err != nil {
			return c.writeErr(wire.CodeGeneric, err.Error()) == nil
		}
		return c.write(wire.TRows, buf.Bytes()) == nil
	}
	return c.write(wire.TMsg, []byte(res.Message)) == nil
}

// errCode flattens the engine's error taxonomy to a wire code.
func errCode(err error) byte {
	switch {
	case errors.Is(err, engine.ErrNotFound):
		return wire.CodeNotFound
	case errors.Is(err, engine.ErrExists):
		return wire.CodeExists
	case errors.Is(err, engine.ErrTypeMismatch):
		return wire.CodeTypeMismatch
	case errors.Is(err, engine.ErrTxDone):
		return wire.CodeTxDone
	case errors.Is(err, engine.ErrTxConflict):
		return wire.CodeTxConflict
	case errors.Is(err, engine.ErrReadOnly):
		return wire.CodeReadOnly
	case errors.Is(err, engine.ErrClosed):
		return wire.CodeClosed
	case errors.Is(err, engine.ErrCorrupt):
		return wire.CodeCorrupt
	case errors.Is(err, engine.ErrMispaired):
		return wire.CodeMispaired
	default:
		return wire.CodeGeneric
	}
}
