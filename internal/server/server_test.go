package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/client"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// startServer opens a fresh disk-backed database in dir and serves it
// on a kernel-assigned loopback port. The caller owns shutdown order:
// stop the server first, then close the database.
func startServer(t *testing.T, dir string, cfg Config) (*Server, *engine.Database, string) {
	t.Helper()
	db, err := engine.Open(filepath.Join(dir, "served.nfrs"))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveDone; err != nil && err != ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
		db.Close()
	})
	return srv, db, lis.Addr().String()
}

// connCount reads the live-connection count (tests only).
func (s *Server) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// waitConns polls until the server serves exactly n connections.
func waitConns(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.connCount() != n {
		if time.Now().After(deadline) {
			t.Fatalf("still %d connections, want %d", srv.connCount(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// mustExec runs one statement through the client and fails the test on
// any error.
func mustExec(t *testing.T, c *client.Client, stmt string) client.Result {
	t.Helper()
	res, err := c.Exec(context.Background(), stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return res
}

func TestStatementsAndStatsOverWire(t *testing.T) {
	srv, db, addr := startServer(t, t.TempDir(), Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}
	mustExec(t, c, "CREATE enrollment (Student, Course, Club)")
	mustExec(t, c, "INSERT INTO enrollment VALUES (s1, c1, b1), (s1, c2, b1)")
	res := mustExec(t, c, "SHOW enrollment")
	if res.Relation == nil {
		t.Fatalf("SHOW returned no relation (message %q)", res.Message)
	}
	if got := res.Relation.ExpansionSize(); got != 2 {
		t.Fatalf("SHOW expansion = %d flat tuples, want 2", got)
	}
	// The relation decoded from the wire equals the server's own view.
	direct, err := db.ReadRelation(context.Background(), "enrollment")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.Equal(direct) {
		t.Fatalf("wire relation differs from direct read")
	}

	// Transactions on the session: rollback leaves no trace.
	mustExec(t, c, "BEGIN")
	mustExec(t, c, "INSERT INTO enrollment VALUES (s9, c9, b9)")
	mustExec(t, c, "ROLLBACK")
	direct, _ = db.ReadRelation(context.Background(), "enrollment")
	if direct.ExpansionSize() != 2 {
		t.Fatalf("rolled-back insert visible: %d flat tuples", direct.ExpansionSize())
	}

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Conns != 1 || st.Statements < 5 || st.Accepted != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.WAL.Fsyncs == 0 {
		t.Fatalf("stats carried no WAL counters: %+v", st.WAL)
	}
	// The autocommit inserts rode the relation's write pipeline; the
	// stats frame must surface that per-relation accounting.
	pp, ok := st.Pipelines["enrollment"]
	if !ok {
		t.Fatalf("stats carried no pipeline counters: %+v", st.Pipelines)
	}
	if pp.Shards < 1 || pp.Ops < 1 || pp.Batches < 1 || pp.MaxBatch < 1 {
		t.Fatalf("pipeline counters empty: %+v", pp)
	}
	// Durable relations carry both hash indexes and the B+tree range
	// index; the stats frame must report their page footprints.
	ip, ok := st.Indexes["enrollment"]
	if !ok {
		t.Fatalf("stats carried no index pages: %+v", st.Indexes)
	}
	if ip.HashDir < 1 || ip.HashBuckets < 1 || ip.BTreeInner < 1 || ip.BTreeLeaf < 1 {
		t.Fatalf("index page counters empty: %+v", ip)
	}
	// EXPLAIN travels the wire as an ordinary statement.
	res = mustExec(t, c, "EXPLAIN SELECT * FROM enrollment WHERE Student >= s0 AND Student < s5")
	if res.Relation != nil || res.Message == "" {
		t.Fatalf("explain over wire: %+v", res)
	}
	_ = srv
}

func TestErrorTaxonomyOverWire(t *testing.T) {
	_, _, addr := startServer(t, t.TempDir(), Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cases := []struct {
		stmt string
		want error
	}{
		{"SHOW nope", engine.ErrNotFound},
		{"INSERT INTO nope VALUES (a)", engine.ErrNotFound},
		{"THIS IS NOT A STATEMENT", client.ErrParse},
	}
	mustExec(t, c, "CREATE r (A, B)")
	cases = append(cases, struct {
		stmt string
		want error
	}{"CREATE r (A, B)", engine.ErrExists})
	for _, tc := range cases {
		_, err := c.Exec(context.Background(), tc.stmt)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.stmt, err, tc.want)
		}
	}
	// Statement errors keep the connection usable.
	mustExec(t, c, "INSERT INTO r VALUES (a, b)")
}

func TestConnLimit(t *testing.T) {
	srv, _, addr := startServer(t, t.TempDir(), Config{MaxConns: 2})
	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	waitConns(t, srv, 2)

	if _, err := client.Dial(addr, client.WithDialRetries(0)); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("third dial: %v, want ErrBusy", err)
	}
	if got := srv.Stats().Refused; got != 1 {
		t.Fatalf("refused = %d, want 1", got)
	}

	// Freeing a slot lets the retry path in.
	c1.Close()
	waitConns(t, srv, 1)
	c3, err := client.Dial(addr, client.WithDialRetries(5))
	if err != nil {
		t.Fatalf("dial after slot freed: %v", err)
	}
	c3.Close()
}

func TestIdleTimeoutRollsBackOpenTx(t *testing.T) {
	srv, db, addr := startServer(t, t.TempDir(), Config{IdleTimeout: 150 * time.Millisecond})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, "CREATE r (A, B)")
	mustExec(t, c, "BEGIN")
	mustExec(t, c, "INSERT INTO r VALUES (a, b)")

	// Park. The server must time the connection out and roll the
	// transaction back, releasing r's latch.
	waitConns(t, srv, 0)

	// The latch is free again: an autocommit statement succeeds instead
	// of blocking forever behind the orphaned transaction.
	done := make(chan error, 1)
	go func() {
		_, err := db.Insert("r", tuple.FlatOfStrings("x", "y"))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("insert blocked: idle teardown leaked the relation latch")
	}
	rel, err := db.ReadRelation(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if rel.ExpansionSize() != 1 {
		t.Fatalf("idle transaction's insert survived: %d flat tuples, want 1", rel.ExpansionSize())
	}
	// The client learns its fate on the next call.
	if _, err := c.Exec(context.Background(), "COMMIT"); err == nil {
		t.Fatal("exec after idle close succeeded")
	}
}

// TestGarbageConnectionsNoHandlerLeak throws protocol garbage at a
// live server: corrupted frames, hostile length prefixes, client-bound
// frame types, raw noise. Every such connection must be closed without
// panicking and without leaking its handler goroutine, and the server
// must keep serving well-formed clients afterwards.
func TestGarbageConnectionsNoHandlerLeak(t *testing.T) {
	srv, _, addr := startServer(t, t.TempDir(), Config{})
	before := runtime.NumGoroutine()

	payloads := [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF},                                            // hostile length prefix
		{0x00, 0x00, 0x00, 0x03, 0x01},                                      // undersized length
		append(wire.Append(nil, wire.TQuery, []byte("SHOW r")), 0xDE, 0xAD), // valid then trailing junk
		wire.Append(nil, wire.TMsg, []byte("i am the server now")),          // server-to-client type
		{0x00}, // lone byte
	}
	// A frame with a flipped CRC bit.
	bad := wire.Append(nil, wire.TQuery, []byte("SHOW r"))
	bad[len(bad)-1] ^= 0x01
	payloads = append(payloads, bad)

	for round := 0; round < 5; round++ {
		for i, p := range payloads {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("round %d payload %d: dial: %v", round, i, err)
			}
			nc.SetDeadline(time.Now().Add(10 * time.Second))
			if _, _, err := wire.Read(nc); err != nil { // hello
				t.Fatalf("round %d payload %d: hello: %v", round, i, err)
			}
			nc.Write(p)
			// Half-close so a server parked mid-frame sees EOF now
			// instead of waiting out the idle timeout.
			nc.(*net.TCPConn).CloseWrite()
			// Drain whatever the server answers until it closes.
			for {
				if _, _, err := wire.Read(nc); err != nil {
					break
				}
			}
			nc.Close()
		}
	}
	waitConns(t, srv, 0)

	// Handler goroutines are gone (allow slack for runtime/test
	// goroutines that come and go).
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d before garbage, %d after — handler leak", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Still serving.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustExec(t, c, "CREATE ok (A)")
	mustExec(t, c, "INSERT INTO ok VALUES (a)")
}

// TestRefusedWhileDraining: a dial racing Shutdown is answered with a
// CodeShutdown error frame, not a hang.
func TestRefusedWhileDraining(t *testing.T) {
	srv, _, addr := startServer(t, t.TempDir(), Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The listener is closed: new dials are refused at the TCP level.
	if _, err := client.Dial(addr, client.WithDialRetries(0), client.WithDialTimeout(time.Second)); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
	// The drained client's next call reports the shutdown.
	if _, err := c.Exec(context.Background(), "SHOW r"); !errors.Is(err, client.ErrShuttingDown) && err == nil {
		t.Fatalf("exec after drain: %v", err)
	}
}

// TestServeTwice: a second Serve on a stopped server reports closed
// instead of wedging.
func TestServeTwice(t *testing.T) {
	db, err := engine.Open(filepath.Join(t.TempDir(), "d.nfrs"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := New(db, Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	waitListening(t, lis.Addr().String())
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrServerClosed {
		t.Fatalf("Serve: %v", err)
	}
	lis2, _ := net.Listen("tcp", "127.0.0.1:0")
	if err := srv.Serve(lis2); err != ErrServerClosed {
		t.Fatalf("second Serve: %v", err)
	}
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		nc, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			nc.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened on %s", addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// flatRow builds the 3-attribute test row shape used across the
// server tests.
func flatRow(a, b, c string) tuple.Flat { return tuple.FlatOfStrings(a, b, c) }

var testSchema = schema.MustOf("Student", "Course", "Club")

func stmtInsert(rel, a, b, c string) string {
	return fmt.Sprintf("INSERT INTO %s VALUES (%s, %s, %s)", rel, a, b, c)
}
