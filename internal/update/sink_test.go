package update

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
)

// mirrorSink replays every mutation into a shadow relation — exactly
// what the storage write-through does.
type mirrorSink struct {
	rel            *core.Relation
	adds, removes  int
	doubleAdds     int
	removedMissing int
}

func (m *mirrorSink) TupleAdded(t tuple.Tuple) {
	if !m.rel.Add(t) {
		m.doubleAdds++
	}
	m.adds++
}

func (m *mirrorSink) TupleRemoved(t tuple.Tuple) {
	if !m.rel.Remove(t) {
		m.removedMissing++
	}
	m.removes++
}

// TestSinkMirrorsCanonicalForm: a sink replaying mutations must end up
// with exactly the maintained relation after a random workload — the
// contract the disk write-through depends on (every Added is new,
// every Removed is present).
func TestSinkMirrorsCanonicalForm(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	order := schema.MustPermOf(s, "B", "C", "A")
	m, err := NewMaintainerIndexed(s, order)
	if err != nil {
		t.Fatal(err)
	}
	sink := &mirrorSink{rel: core.NewRelation(s)}
	m.SetSink(sink)

	rng := rand.New(rand.NewSource(17))
	var live []tuple.Flat
	for step := 0; step < 400; step++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			f := tuple.FlatOfStrings(
				[]string{"a1", "a2", "a3", "a4"}[rng.Intn(4)],
				[]string{"b1", "b2", "b3"}[rng.Intn(3)],
				[]string{"c1", "c2", "c3"}[rng.Intn(3)],
			)
			ch, err := m.Insert(f)
			if err != nil {
				t.Fatal(err)
			}
			if ch {
				live = append(live, f)
			}
		} else {
			i := rng.Intn(len(live))
			if _, err := m.Delete(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if sink.doubleAdds != 0 || sink.removedMissing != 0 {
		t.Errorf("sink contract broken: %d double adds, %d removes of missing tuples",
			sink.doubleAdds, sink.removedMissing)
	}
	if !sink.rel.Equal(m.Relation()) {
		t.Error("sink mirror diverged from maintained relation")
	}
	if sink.adds == 0 || sink.removes == 0 {
		t.Errorf("workload too tame: %d adds, %d removes", sink.adds, sink.removes)
	}

	// detaching stops the stream
	m.SetSink(nil)
	before := sink.adds
	if _, err := m.Insert(tuple.FlatOfStrings("zz", "zz", "zz")); err != nil {
		t.Fatal(err)
	}
	if sink.adds != before {
		t.Error("detached sink still receiving mutations")
	}
}
