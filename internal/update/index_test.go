package update

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
)

func TestIndexedMatchesNaiveRandomized(t *testing.T) {
	// The ablation's correctness contract: the indexed maintainer and
	// the naive maintainer produce byte-identical relations across
	// mixed random workloads, degrees 1..4, random nest orders.
	for _, deg := range []int{1, 2, 3, 4} {
		names := []string{"A", "B", "C", "D"}[:deg]
		s := schema.MustOf(names...)
		perms := schema.AllPermutations(deg)
		for trial := 0; trial < 4; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*deg + trial)))
			order := perms[rng.Intn(len(perms))]
			naive, err := NewMaintainer(s, order)
			if err != nil {
				t.Fatal(err)
			}
			indexed, err := NewMaintainerIndexed(s, order)
			if err != nil {
				t.Fatal(err)
			}
			if !indexed.Indexed() || naive.Indexed() {
				t.Fatal("Indexed() flags wrong")
			}
			for step := 0; step < 120; step++ {
				f := make(tuple.Flat, deg)
				for i := range f {
					f[i] = value.NewInt(int64(rng.Intn(4)))
				}
				if rng.Intn(3) != 0 {
					c1, err1 := naive.Insert(f)
					c2, err2 := indexed.Insert(f)
					if err1 != nil || err2 != nil || c1 != c2 {
						t.Fatalf("insert diverged: %v/%v %v/%v", c1, c2, err1, err2)
					}
				} else {
					c1, err1 := naive.Delete(f)
					c2, err2 := indexed.Delete(f)
					if err1 != nil || err2 != nil || c1 != c2 {
						t.Fatalf("delete diverged: %v/%v %v/%v", c1, c2, err1, err2)
					}
				}
				if !naive.Relation().Equal(indexed.Relation()) {
					t.Fatalf("deg=%d trial=%d step=%d order=%v relations diverged:\nnaive:\n%v\nindexed:\n%v",
						deg, trial, step, order, naive.Relation(), indexed.Relation())
				}
			}
		}
	}
}

func TestIndexedScansFewerTuples(t *testing.T) {
	// The ablation's payoff: on a large relation the indexed candidate
	// search examines far fewer tuples per update than the naive scan.
	s := schema.MustOf("A", "B", "C")
	order := schema.IdentityPerm(3)
	load := func(m *Maintainer) {
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 3000; i++ {
			f := tuple.Flat{
				value.NewInt(int64(rng.Intn(1500))),
				value.NewInt(int64(rng.Intn(10))),
				value.NewInt(int64(rng.Intn(10))),
			}
			if _, err := m.Insert(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	naive, _ := NewMaintainer(s, order)
	indexed, _ := NewMaintainerIndexed(s, order)
	load(naive)
	load(indexed)
	naive.ResetStats()
	indexed.ResetStats()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		f := tuple.Flat{
			value.NewInt(int64(rng.Intn(1500))),
			value.NewInt(int64(rng.Intn(10))),
			value.NewInt(int64(rng.Intn(10))),
		}
		naive.Insert(f)
		indexed.Insert(f)
	}
	ns, is := naive.Stats().CandidateScans, indexed.Stats().CandidateScans
	if is*10 >= ns {
		t.Errorf("index did not pay off: naive scans %d, indexed %d", ns, is)
	}
}

func TestFromRelationIndexed(t *testing.T) {
	s := schema.MustOf("A", "B")
	r := core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1"),
		tuple.FlatOfStrings("a2", "b1"),
	})
	order := schema.MustPermOf(s, "B", "A")
	m, err := FromRelationIndexed(r, order)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Indexed() {
		t.Fatal("not indexed")
	}
	// the preloaded tuples must be findable through the index
	if ch, err := m.Delete(tuple.FlatOfStrings("a1", "b1")); err != nil || !ch {
		t.Fatalf("delete through preloaded index: %v %v", ch, err)
	}
	want, _ := core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a2", "b1"),
	}).Canonical(order)
	if !m.Relation().Equal(want) {
		t.Errorf("relation after indexed delete:\n%v", m.Relation())
	}
	if _, err := FromRelationIndexed(r, schema.Permutation{9, 9}); err == nil {
		t.Error("bad order accepted")
	}
}

func TestAtomIndexAddRemove(t *testing.T) {
	ix := newAtomIndex(0)
	t1 := core.TupleOfSets([]string{"x", "y"}, []string{"b"})
	t2 := core.TupleOfSets([]string{"y"}, []string{"c"})
	ix.add(t1)
	ix.add(t2)
	if got := ix.lookup(value.NewString("y")); len(got) != 2 {
		t.Errorf("lookup y = %d entries", len(got))
	}
	if got := ix.lookup(value.NewString("x")); len(got) != 1 {
		t.Errorf("lookup x = %d entries", len(got))
	}
	ix.remove(t1)
	if got := ix.lookup(value.NewString("x")); got != nil {
		t.Error("x posting not cleared")
	}
	if got := ix.lookup(value.NewString("y")); len(got) != 1 {
		t.Errorf("lookup y after remove = %d", len(got))
	}
	// kind discrimination: string "1" vs int 1
	t3 := core.TupleOfSets([]string{"1"}, []string{"b"})
	ix.add(t3)
	if got := ix.lookup(value.NewInt(1)); got != nil {
		t.Error("kind collision in atom keys")
	}
}
