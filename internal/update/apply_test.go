package update

import (
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
)

// bracketSink counts StatementBegin/StatementEnd pairs while mirroring
// mutations — the shape of the store's write-through, minus the disk.
type bracketSink struct {
	mirrorSink
	begins, ends int
}

func (b *bracketSink) StatementBegin() { b.begins++ }
func (b *bracketSink) StatementEnd()   { b.ends++ }

// TestApplyOneBracketPerBatch: Apply must run a whole batch of
// mutations under ONE BatchSink bracket (the pipeline's group-commit
// boundary), return positional per-op results, skip malformed ops
// without poisoning the rest, and leave the relation exactly where the
// same ops applied one-by-one would.
func TestApplyOneBracketPerBatch(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	order := schema.MustPermOf(s, "B", "C", "A")
	m, err := NewMaintainerIndexed(s, order)
	if err != nil {
		t.Fatal(err)
	}
	sink := &bracketSink{mirrorSink: mirrorSink{rel: core.NewRelation(s)}}
	m.SetSink(sink)
	if _, err := m.Insert(tuple.FlatOfStrings("a1", "b1", "c1")); err != nil {
		t.Fatal(err)
	}
	sink.begins, sink.ends = 0, 0

	ops := []Op{
		{F: tuple.FlatOfStrings("a2", "b1", "c1")},               // insert, changes
		{F: tuple.FlatOfStrings("a1", "b1", "c1")},               // duplicate, no-op
		{F: tuple.FlatOfStrings("a9", "b9")},                     // malformed: wrong degree
		{F: tuple.FlatOfStrings("a1", "b1", "c1"), Delete: true}, // delete, changes
		{F: tuple.FlatOfStrings("zz", "zz", "zz"), Delete: true}, // delete missing, no-op
		{F: tuple.FlatOfStrings("a3", "b2", "c2")},               // insert, changes
	}
	res := m.Apply(ops)
	if len(res) != len(ops) {
		t.Fatalf("got %d results for %d ops", len(res), len(ops))
	}
	wantChanged := []bool{true, false, false, true, false, true}
	for i, r := range res {
		if r.Changed != wantChanged[i] {
			t.Errorf("op %d: changed=%v, want %v", i, r.Changed, wantChanged[i])
		}
		if (i == 2) != (r.Err != nil) {
			t.Errorf("op %d: err=%v", i, r.Err)
		}
	}
	if sink.begins != 1 || sink.ends != 1 {
		t.Errorf("batch ran %d/%d brackets, want exactly 1 (group-commit boundary)", sink.begins, sink.ends)
	}

	// oracle: the same ops through the one-at-a-time API
	om, err := NewMaintainerIndexed(s, order)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := om.Insert(tuple.FlatOfStrings("a1", "b1", "c1")); err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if i == 2 {
			continue // the malformed op
		}
		if op.Delete {
			_, err = om.Delete(op.F)
		} else {
			_, err = om.Insert(op.F)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !m.Relation().Equal(om.Relation()) {
		t.Fatalf("batched application diverged:\ngot  %v\nwant %v", m.Relation(), om.Relation())
	}
	if !sink.rel.Equal(m.Relation()) {
		t.Fatalf("sink mirror diverged from maintained relation")
	}

	// an all-no-op batch must not open a bracket at all
	sink.begins, sink.ends = 0, 0
	res = m.Apply([]Op{
		{F: tuple.FlatOfStrings("a2", "b1", "c1")},               // already there
		{F: tuple.FlatOfStrings("no", "no", "no"), Delete: true}, // not there
	})
	for i, r := range res {
		if r.Changed || r.Err != nil {
			t.Errorf("no-op batch op %d: %+v", i, r)
		}
	}
	if sink.begins != 0 || sink.ends != 0 {
		t.Errorf("no-op batch opened %d brackets, want 0", sink.begins)
	}
}
