// Package update implements Section 4 of the paper: insertion and
// deletion of single 1NF tuples directly on a canonical-form NFR,
// without rebuilding V_P(R*) from scratch.
//
// Notation mapping. The paper fixes a permutation P = EnEn-1...E1 and
// maintains V_P(R*). Working through the paper's own examples (see
// DESIGN.md), Section 4's attribute numbering is by nest time: E1 is
// the first-nested attribute, En the last-nested. This package uses
// 0-based "positions" in the nest order: position 0 = paper's E1.
//
// The candidate tuple of a floating tuple t (paper 4.1) is the tuple
// s in R that admits a composition with t on attribute E_{k+1} after
// splitting t's values out of s on all later-nested attributes:
//
//	position q < k : s and t agree set-theoretically (already equal),
//	position q > k : t's component is a subset of s's (s gets
//	                 decomposed down to t's component; the remainders
//	                 are recursively reconsidered), and
//	position k     : the components are disjoint (the composition
//	                 point).
//
// Among tuples with the property, the one with minimal k is the
// candidate; Lemma A-1 asserts it is then unique.
package update

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/vset"
)

// Stats counts the primitive operations performed by the update
// algorithms — the cost measure of Theorem A-4 ("the complexity means
// the number of compositions").
type Stats struct {
	// Compositions counts compo invocations (Definition-1 merges).
	Compositions int
	// Decompositions counts unnest invocations that actually split a
	// tuple (Definition-2 splits; splitting a whole subset at once
	// counts as one).
	Decompositions int
	// CandidateScans counts tuples examined while searching for
	// candidate tuples (candt) and covering tuples (searcht).
	CandidateScans int
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Compositions += s2.Compositions
	s.Decompositions += s2.Decompositions
	s.CandidateScans += s2.CandidateScans
}

// Sink observes every NFR-tuple mutation the maintainer applies to its
// canonical relation. A storage layer implements it to write tuples
// through to disk as the Section-4 algorithms compose and decompose
// them; Added/Removed fire only for mutations that actually changed
// the relation.
type Sink interface {
	TupleAdded(t tuple.Tuple)
	TupleRemoved(t tuple.Tuple)
}

// BatchSink is an optional Sink extension for storage layers that group
// a whole statement's mutations into one durable, atomic transaction.
// A single Insert/Delete statement can compose and decompose many NFR
// tuples — often touching the same page repeatedly — so a sink that
// made each mutation durable on its own would pay one fsync per tuple.
// The maintainer brackets the mutation stream of each changing
// statement with StatementBegin/StatementEnd; the bracket IS the
// transaction boundary: the store begins a transaction at
// StatementBegin, attributes every TupleAdded/TupleRemoved write to it,
// and commits it at StatementEnd as one WAL batch. Concurrent
// statements on other relations are separate transactions whose
// commits the store merges into shared fsyncs (group commit), so the
// amortized cost drops below one fsync per statement under load.
type BatchSink interface {
	Sink
	StatementBegin()
	StatementEnd()
}

// Maintainer owns an NFR kept permanently in canonical form V_P and
// applies the paper's update algorithms to it.
type Maintainer struct {
	rel   *core.Relation
	order schema.Permutation // order[0] is nested first (paper's E1)
	stats Stats
	sink  Sink
	// firstIdx/lastIdx, when non-nil, are posting-list indexes on the
	// first- and last-nested attributes that prune the candidate scan
	// (see atomIndex for the soundness argument). Nil = naive scan.
	firstIdx, lastIdx *atomIndex
	// recursionBudget guards against runaway recursion if an
	// interpretation bug ever breaks termination; generous because the
	// paper's bound is a function of the degree only.
	recursionBudget int
}

// NewMaintainer returns a maintainer over an empty relation using the
// paper's naive candidate scan.
func NewMaintainer(s *schema.Schema, order schema.Permutation) (*Maintainer, error) {
	if !order.Valid(s) {
		return nil, fmt.Errorf("update: invalid nest order %v for schema %v", order, s)
	}
	return &Maintainer{rel: core.NewRelation(s), order: order}, nil
}

// NewMaintainerIndexed returns a maintainer whose candidate and
// covering-tuple searches are accelerated by atom posting lists — the
// DESIGN.md §4 ablation of the naive candt scan. Results are
// identical; only the search cost changes.
func NewMaintainerIndexed(s *schema.Schema, order schema.Permutation) (*Maintainer, error) {
	m, err := NewMaintainer(s, order)
	if err != nil {
		return nil, err
	}
	m.enableIndex()
	return m, nil
}

func (m *Maintainer) enableIndex() {
	n := len(m.order)
	m.firstIdx = newAtomIndex(m.order[0])
	if n > 1 {
		m.lastIdx = newAtomIndex(m.order[n-1])
	}
	for i := 0; i < m.rel.Len(); i++ {
		t := m.rel.Tuple(i)
		m.firstIdx.add(t)
		if m.lastIdx != nil {
			m.lastIdx.add(t)
		}
	}
}

// Indexed reports whether the maintainer uses the posting-list index.
func (m *Maintainer) Indexed() bool { return m.firstIdx != nil }

// SetSink registers a mutation observer (nil to detach). The sink sees
// only mutations applied after registration; a storage layer loading an
// existing relation registers after the initial load.
func (m *Maintainer) SetSink(s Sink) { m.sink = s }

// addTuple and removeTuple route every relation mutation through the
// indexes and the sink so both stay exact.
func (m *Maintainer) addTuple(t tuple.Tuple) {
	if !m.rel.Add(t) {
		return
	}
	if m.firstIdx != nil {
		m.firstIdx.add(t)
		if m.lastIdx != nil {
			m.lastIdx.add(t)
		}
	}
	if m.sink != nil {
		m.sink.TupleAdded(t)
	}
}

func (m *Maintainer) removeTuple(t tuple.Tuple) {
	if !m.rel.Remove(t) {
		return
	}
	if m.firstIdx != nil {
		m.firstIdx.remove(t)
		if m.lastIdx != nil {
			m.lastIdx.remove(t)
		}
	}
	if m.sink != nil {
		m.sink.TupleRemoved(t)
	}
}

// FromRelation canonicalizes r under the nest order and returns a
// maintainer over the result. r itself is not modified.
func FromRelation(r *core.Relation, order schema.Permutation) (*Maintainer, error) {
	m, err := NewMaintainer(r.Schema(), order)
	if err != nil {
		return nil, err
	}
	canon, _ := r.CanonicalFromFlats(order)
	m.rel = canon
	return m, nil
}

// FromRelationIndexed is FromRelation with the posting-list index
// enabled.
func FromRelationIndexed(r *core.Relation, order schema.Permutation) (*Maintainer, error) {
	m, err := FromRelation(r, order)
	if err != nil {
		return nil, err
	}
	m.enableIndex()
	return m, nil
}

// Relation returns the maintained canonical relation. Callers must not
// modify it; Clone before mutating.
func (m *Maintainer) Relation() *core.Relation { return m.rel }

// ResetRelation replaces the maintained relation with rel — which must
// already be in canonical form for the maintainer's nest order — and
// rebuilds the posting-list indexes from it. The sink is NOT notified:
// the engine's transaction rollback uses this after the storage layer
// has already discarded the uncommitted heap mutations, so memory and
// disk converge on the same pre-transaction state.
func (m *Maintainer) ResetRelation(rel *core.Relation) {
	m.rel = rel
	if m.firstIdx != nil {
		m.enableIndex()
	}
}

// Order returns the nest order.
func (m *Maintainer) Order() schema.Permutation { return m.order }

// Stats returns the accumulated operation counts.
func (m *Maintainer) Stats() Stats { return m.stats }

// ResetStats zeroes the operation counters.
func (m *Maintainer) ResetStats() { m.stats = Stats{} }

// Len returns the number of NFR tuples currently stored.
func (m *Maintainer) Len() int { return m.rel.Len() }

// Insert adds the flat tuple to the maintained relation, restoring the
// canonical form incrementally (procedure "insertion" + "recons"). It
// reports whether the relation changed (false if f was already in R*).
func (m *Maintainer) Insert(f tuple.Flat) (bool, error) {
	if len(f) != m.rel.Schema().Degree() {
		return false, fmt.Errorf("update: flat tuple degree %d != schema degree %d", len(f), m.rel.Schema().Degree())
	}
	began := false
	defer func() {
		if began {
			m.endStatement()
		}
	}()
	return m.insertCore(f, &began), nil
}

// insertCore is Insert minus validation and bracket closing: the first
// changing op opens the BatchSink bracket (setting *began); the caller
// closes it. Factored out so Apply can run MANY ops under ONE bracket.
func (m *Maintainer) insertCore(f tuple.Flat, began *bool) bool {
	if _, covered := m.containsFlat(f); covered {
		return false
	}
	if !*began {
		*began = true
		m.beginStatement()
	}
	m.recursionBudget = m.budget()
	m.recons(tuple.FromFlat(f))
	return true
}

// Op is one flat-tuple mutation in a batch handed to Apply.
type Op struct {
	F      tuple.Flat
	Delete bool
}

// OpResult is one op's outcome: whether it changed the relation, and
// its validation error if it was malformed (malformed ops are skipped;
// the rest of the batch still applies).
type OpResult struct {
	Changed bool
	Err     error
}

// Apply runs a batch of flat-tuple mutations as ONE BatchSink bracket:
// the first changing op opens the statement transaction and every
// subsequent op's write-through accumulates under it, so a batch of N
// pipelined statements costs the sink one commit — the maintainer-level
// analogue of group commit. Results are positional. Ops that change
// nothing cost no bracket (same as Insert/Delete), so an all-no-op
// batch performs no commit at all.
func (m *Maintainer) Apply(ops []Op) []OpResult {
	out := make([]OpResult, len(ops))
	began := false
	defer func() {
		if began {
			m.endStatement()
		}
	}()
	deg := m.rel.Schema().Degree()
	for i, op := range ops {
		if len(op.F) != deg {
			out[i].Err = fmt.Errorf("update: flat tuple degree %d != schema degree %d", len(op.F), deg)
			continue
		}
		if op.Delete {
			out[i].Changed = m.deleteCore(op.F, &began)
		} else {
			out[i].Changed = m.insertCore(op.F, &began)
		}
	}
	return out
}

// beginStatement/endStatement bracket one changing Insert/Delete for a
// BatchSink, marking the group-commit boundary. Statements that change
// nothing return before the bracket, so they cost the sink no commit.
func (m *Maintainer) beginStatement() {
	if bs, ok := m.sink.(BatchSink); ok {
		bs.StatementBegin()
	}
}

func (m *Maintainer) endStatement() {
	if bs, ok := m.sink.(BatchSink); ok {
		bs.StatementEnd()
	}
}

// Delete removes the flat tuple from the maintained relation,
// restoring the canonical form incrementally (procedure "deletion").
// It reports whether the relation changed (false if f was not in R*).
func (m *Maintainer) Delete(f tuple.Flat) (bool, error) {
	if len(f) != m.rel.Schema().Degree() {
		return false, fmt.Errorf("update: flat tuple degree %d != schema degree %d", len(f), m.rel.Schema().Degree())
	}
	began := false
	defer func() {
		if began {
			m.endStatement()
		}
	}()
	return m.deleteCore(f, &began), nil
}

// deleteCore is Delete minus validation and bracket closing (see
// insertCore).
func (m *Maintainer) deleteCore(f tuple.Flat, began *bool) bool {
	q, covered := m.containsFlat(f) // searcht
	if !covered {
		return false
	}
	if !*began {
		*began = true
		m.beginStatement()
	}
	m.recursionBudget = m.budget()
	m.removeTuple(q)
	// Split f's value out of q attribute by attribute, last-nested
	// first (paper: i = n downto 1), reconsidering each remainder.
	for pos := len(m.order) - 1; pos >= 0; pos-- {
		attr := m.order[pos]
		set := q.Set(attr)
		if set.Len() == 1 {
			continue
		}
		rest := set.Remove(f[attr])
		m.stats.Decompositions++
		qe := q.WithSet(attr, vset.Single(f[attr]))
		qr := q.WithSet(attr, rest)
		m.recons(qr)
		q = qe
	}
	// q is now exactly the flat tuple; deletet(q) = drop it.
	return true
}

// budget returns a recursion bound comfortably above the paper's
// degree-only complexity bound, but proportional to relation size so a
// semantic regression fails loudly instead of spinning.
func (m *Maintainer) budget() int {
	n := m.rel.Schema().Degree()
	b := 1 << uint(2*n+4)
	if extra := 64 * (m.rel.Len() + 1); extra > b {
		b = extra
	}
	return b
}

// containsFlat is the paper's searcht: find the tuple of R whose
// expansion contains f. With the index enabled only tuples whose
// first-nested component contains f's atom there are examined.
func (m *Maintainer) containsFlat(f tuple.Flat) (tuple.Tuple, bool) {
	if m.firstIdx != nil {
		for _, t := range m.firstIdx.lookup(f[m.firstIdx.attr]) {
			m.stats.CandidateScans++
			if t.ContainsFlat(f) {
				return t, true
			}
		}
		return tuple.Tuple{}, false
	}
	for i := 0; i < m.rel.Len(); i++ {
		m.stats.CandidateScans++
		t := m.rel.Tuple(i)
		if t.ContainsFlat(f) {
			return t, true
		}
	}
	return tuple.Tuple{}, false
}

// candt finds the candidate tuple of the floating tuple t: the tuple
// with the candidate property at the minimal position k. It returns
// found=false when no tuple qualifies.
func (m *Maintainer) candt(t tuple.Tuple) (p tuple.Tuple, k int, found bool) {
	bestK := len(m.order)
	consider := func(s tuple.Tuple) {
		m.stats.CandidateScans++
		if lvl, ok := m.candidateLevel(s, t); ok && lvl < bestK {
			bestK = lvl
			p = s
			found = true
		}
	}
	// The posting-list pruning needs degree ≥ 2 (at degree 1 the
	// candidate is disjoint on the only attribute, so no posting list
	// covers it) — fall back to the scan there.
	if m.firstIdx != nil && len(m.order) >= 2 {
		// Superset of all candidates: tuples containing one of t's
		// atoms on the first-nested attribute (equality case) or on
		// the last-nested attribute (containment case). Dedup by key.
		seen := make(map[string]bool)
		probe := func(ix *atomIndex) {
			if ix == nil {
				return
			}
			for _, a := range t.Set(ix.attr).Atoms() {
				for tk, s := range ix.lookup(a) {
					if !seen[tk] {
						seen[tk] = true
						consider(s)
					}
				}
				// one atom's posting list already covers the
				// containment/equality requirement (candidates hold
				// ALL of t's atoms there); scanning one is enough
				break
			}
		}
		probe(m.firstIdx)
		probe(m.lastIdx)
		return p, bestK, found
	}
	for i := 0; i < m.rel.Len(); i++ {
		consider(m.rel.Tuple(i))
	}
	return p, bestK, found
}

// candidateLevel returns the minimal position k at which s has the
// candidate property with respect to t, if any.
func (m *Maintainer) candidateLevel(s, t tuple.Tuple) (int, bool) {
	// Precompute per-position relations between s and t components.
	n := len(m.order)
	equal := make([]bool, n)
	contains := make([]bool, n) // t ⊆ s
	disjoint := make([]bool, n)
	for q := 0; q < n; q++ {
		attr := m.order[q]
		ss, ts := s.Set(attr), t.Set(attr)
		equal[q] = ss.Equal(ts)
		contains[q] = ts.SubsetOf(ss)
		disjoint[q] = ss.Disjoint(ts)
	}
	// property(k): equal on q<k, disjoint at k, t⊆s on q>k.
	prefixEqual := true
	for k := 0; k < n; k++ {
		if prefixEqual && disjoint[k] {
			ok := true
			for q := k + 1; q < n; q++ {
				if !contains[q] {
					ok = false
					break
				}
			}
			if ok {
				return k, true
			}
		}
		prefixEqual = prefixEqual && equal[k]
		if !prefixEqual {
			break
		}
	}
	return 0, false
}

// recons is the paper's central procedure: place the floating tuple t
// into the relation, merging it with its candidate chain. Implemented
// iteratively for the tail call (recons(w)) and recursively for the
// split remainders (recons(pr)).
func (m *Maintainer) recons(t tuple.Tuple) {
	for {
		if m.recursionBudget <= 0 {
			panic("update: recursion budget exhausted — termination invariant violated")
		}
		m.recursionBudget--

		p, k, found := m.candt(t)
		if !found {
			m.addTuple(t)
			return
		}
		m.removeTuple(p)
		// Split t's values out of p on later-nested positions (paper:
		// j := n; while j > m), reconsidering the remainders.
		for q := len(m.order) - 1; q > k; q-- {
			attr := m.order[q]
			target := t.Set(attr)
			if p.Set(attr).Equal(target) {
				continue
			}
			rest := p.Set(attr).Diff(target)
			m.stats.Decompositions++
			pr := p.WithSet(attr, rest)
			p = p.WithSet(attr, target)
			m.recons(pr)
		}
		w, ok := tuple.Compose(p, t, m.order[k])
		if !ok {
			panic("update: candidate not composable after unnesting")
		}
		m.stats.Compositions++
		t = w // recons(w)
	}
}
