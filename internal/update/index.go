package update

import (
	"repro/internal/tuple"
	"repro/internal/value"
)

// atomIndex is a posting-list index over one attribute: atom → the
// stored tuples whose component on that attribute contains the atom.
//
// Soundness of the candidate pruning (why two attributes suffice):
// a candidate of t at nest position k < n−1 must *contain* t's values
// on every later position, in particular on the last-nested attribute
// order[n−1]; a candidate at position k = n−1 must *equal* t on every
// earlier position, in particular on the first-nested attribute
// order[0] (n ≥ 2). Either way the candidate appears in the posting
// list of some atom of t on order[0] or order[n−1], so the union of
// those two lists is a superset of all candidates. searcht (covering
// tuple of a flat f) is covered too: the covering tuple contains f's
// atom on every attribute.
type atomIndex struct {
	attr int
	m    map[string]map[string]tuple.Tuple // atom key → tuple key → tuple
}

func newAtomIndex(attr int) *atomIndex {
	return &atomIndex{attr: attr, m: make(map[string]map[string]tuple.Tuple)}
}

func atomKey(a value.Atom) string { return string(a.K) + a.String() }

func (ix *atomIndex) add(t tuple.Tuple) {
	tk := t.Key()
	for _, a := range t.Set(ix.attr).Atoms() {
		k := atomKey(a)
		bucket, ok := ix.m[k]
		if !ok {
			bucket = make(map[string]tuple.Tuple)
			ix.m[k] = bucket
		}
		bucket[tk] = t
	}
}

func (ix *atomIndex) remove(t tuple.Tuple) {
	tk := t.Key()
	for _, a := range t.Set(ix.attr).Atoms() {
		k := atomKey(a)
		if bucket, ok := ix.m[k]; ok {
			delete(bucket, tk)
			if len(bucket) == 0 {
				delete(ix.m, k)
			}
		}
	}
}

// lookup returns the tuples whose ix.attr component contains a.
func (ix *atomIndex) lookup(a value.Atom) map[string]tuple.Tuple {
	return ix.m[atomKey(a)]
}
