package update

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
)

func mustMaintainer(t *testing.T, s *schema.Schema, order schema.Permutation) *Maintainer {
	t.Helper()
	m, err := NewMaintainer(s, order)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMaintainerValidation(t *testing.T) {
	s := schema.MustOf("A", "B")
	if _, err := NewMaintainer(s, schema.Permutation{0, 0}); err == nil {
		t.Error("invalid order accepted")
	}
	if _, err := FromRelation(core.NewRelation(s), schema.Permutation{0}); err == nil {
		t.Error("short order accepted")
	}
}

func TestInsertDegreeMismatch(t *testing.T) {
	s := schema.MustOf("A", "B")
	m := mustMaintainer(t, s, schema.IdentityPerm(2))
	if _, err := m.Insert(tuple.FlatOfStrings("x")); err == nil {
		t.Error("short tuple accepted")
	}
	if _, err := m.Delete(tuple.FlatOfStrings("x")); err == nil {
		t.Error("short tuple accepted for delete")
	}
}

func TestInsertDuplicateAndDeleteMissing(t *testing.T) {
	s := schema.MustOf("A", "B")
	m := mustMaintainer(t, s, schema.IdentityPerm(2))
	f := tuple.FlatOfStrings("a", "b")
	if ch, _ := m.Insert(f); !ch {
		t.Error("first insert reported no change")
	}
	if ch, _ := m.Insert(f); ch {
		t.Error("duplicate insert reported change")
	}
	if ch, _ := m.Delete(tuple.FlatOfStrings("z", "b")); ch {
		t.Error("missing delete reported change")
	}
	if ch, _ := m.Delete(f); !ch {
		t.Error("delete reported no change")
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d after delete", m.Len())
	}
}

// referenceCanonical rebuilds V_P from the flat set — the ground truth
// the incremental algorithms must match exactly (not just up to
// information equivalence).
func referenceCanonical(s *schema.Schema, flats map[string]tuple.Flat, order schema.Permutation) *core.Relation {
	list := make([]tuple.Flat, 0, len(flats))
	for _, f := range flats {
		list = append(list, f)
	}
	r := core.MustFromFlats(s, list)
	c, _ := r.Canonical(order)
	return c
}

func TestInsertMatchesRebuildExample1(t *testing.T) {
	// Nest order (B, A) on Example-1 data, then insert (a1, b2): the
	// maintained relation must equal V_{BA}(R* + t).
	s := schema.MustOf("A", "B")
	order := schema.MustPermOf(s, "B", "A")
	m, err := FromRelation(core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1"),
		tuple.FlatOfStrings("a2", "b1"),
		tuple.FlatOfStrings("a2", "b2"),
		tuple.FlatOfStrings("a3", "b2"),
	}), order)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(tuple.FlatOfStrings("a1", "b2")); err != nil {
		t.Fatal(err)
	}
	want := core.MustFromTuples(s, []tuple.Tuple{
		core.TupleOfSets([]string{"a1", "a2"}, []string{"b1", "b2"}),
		core.TupleOfSets([]string{"a3"}, []string{"b2"}),
	})
	if !m.Relation().Equal(want) {
		t.Errorf("insert result:\n%v\nwant:\n%v", m.Relation(), want)
	}
}

func TestInsertRequiresSplit(t *testing.T) {
	// R* = {a1,a2} x {b1}; canonical (B,A) = [A(a1,a2) B(b1)].
	// Insert (a1,b2): the stored group must split because a1's B-set
	// grows — the scenario that motivates the unnest inside recons.
	s := schema.MustOf("A", "B")
	order := schema.MustPermOf(s, "B", "A")
	m, _ := FromRelation(core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1"),
		tuple.FlatOfStrings("a2", "b1"),
	}), order)
	if m.Len() != 1 {
		t.Fatalf("precondition: expected single grouped tuple, got\n%v", m.Relation())
	}
	if _, err := m.Insert(tuple.FlatOfStrings("a1", "b2")); err != nil {
		t.Fatal(err)
	}
	want := core.MustFromTuples(s, []tuple.Tuple{
		core.TupleOfSets([]string{"a1"}, []string{"b1", "b2"}),
		core.TupleOfSets([]string{"a2"}, []string{"b1"}),
	})
	if !m.Relation().Equal(want) {
		t.Errorf("result:\n%v\nwant:\n%v", m.Relation(), want)
	}
	if m.Stats().Decompositions == 0 {
		t.Error("expected at least one decomposition")
	}
}

func TestDeletePaperFig2R1(t *testing.T) {
	// Fig. 1 R1 -> Fig. 2 R1: student s1 stops taking course c1. In
	// R1 the update is dropping c1 from the first tuple's Course set.
	s := schema.MustOf("Student", "Course", "Club")
	order := schema.MustPermOf(s, "Course", "Student", "Club")
	var fl []tuple.Flat
	for _, c := range []string{"c1", "c2", "c3"} {
		fl = append(fl, tuple.FlatOfStrings("s1", c, "b1"))
		fl = append(fl, tuple.FlatOfStrings("s3", c, "b1"))
		fl = append(fl, tuple.FlatOfStrings("s2", c, "b2"))
	}
	m, _ := FromRelation(core.MustFromFlats(s, fl), order)
	if _, err := m.Delete(tuple.FlatOfStrings("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	// ground truth
	rest := map[string]tuple.Flat{}
	for _, f := range fl {
		rest[f.Key()] = f
	}
	delete(rest, tuple.FlatOfStrings("s1", "c1", "b1").Key())
	want := referenceCanonical(s, rest, order)
	if !m.Relation().Equal(want) {
		t.Errorf("delete result:\n%v\nwant:\n%v", m.Relation(), want)
	}
}

func TestInsertDeleteRandomizedMatchesRebuild(t *testing.T) {
	// The central Section-4 correctness property: after every single
	// insert or delete, the maintained relation equals the canonical
	// form rebuilt from scratch. Exercised over random workloads,
	// degrees 2..4, several nest orders.
	for _, deg := range []int{2, 3, 4} {
		names := []string{"A", "B", "C", "D"}[:deg]
		s := schema.MustOf(names...)
		perms := schema.AllPermutations(deg)
		for trial := 0; trial < 6; trial++ {
			rng := rand.New(rand.NewSource(int64(deg*100 + trial)))
			order := perms[rng.Intn(len(perms))]
			m := mustMaintainer(t, s, order)
			live := map[string]tuple.Flat{}
			universe := 3
			for step := 0; step < 120; step++ {
				f := make(tuple.Flat, deg)
				for i := range f {
					f[i] = value.NewInt(int64(rng.Intn(universe)))
				}
				if rng.Intn(3) != 0 { // 2/3 inserts
					ch, err := m.Insert(f)
					if err != nil {
						t.Fatal(err)
					}
					_, had := live[f.Key()]
					if ch == had {
						t.Fatalf("insert change=%v but had=%v", ch, had)
					}
					live[f.Key()] = f
				} else {
					ch, err := m.Delete(f)
					if err != nil {
						t.Fatal(err)
					}
					_, had := live[f.Key()]
					if ch != had {
						t.Fatalf("delete change=%v but had=%v", ch, had)
					}
					delete(live, f.Key())
				}
				want := referenceCanonical(s, live, order)
				if !m.Relation().Equal(want) {
					t.Fatalf("deg=%d trial=%d step=%d order=%v\nmaintained:\n%v\nwant:\n%v",
						deg, trial, step, order, m.Relation(), want)
				}
			}
		}
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	s := schema.MustOf("A", "B")
	m := mustMaintainer(t, s, schema.IdentityPerm(2))
	for i := 0; i < 4; i++ {
		f := tuple.FlatOf(value.NewInt(int64(i%2)), value.NewInt(int64(i/2)))
		if _, err := m.Insert(f); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Compositions == 0 {
		t.Error("expected compositions > 0")
	}
	if st.CandidateScans == 0 {
		t.Error("expected candidate scans > 0")
	}
	var sum Stats
	sum.Add(st)
	sum.Add(st)
	if sum.Compositions != 2*st.Compositions {
		t.Error("Stats.Add broken")
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

func TestTheoremA4CompositionCountIndependentOfSize(t *testing.T) {
	// Theorem A-4: the number of compositions per update is bounded by
	// a function of the degree n only, not of |R|. Build relations of
	// growing size and verify the per-insert operation count does not
	// grow with the relation.
	s := schema.MustOf("A", "B", "C")
	order := schema.IdentityPerm(3)
	maxOps := func(rows int) int {
		rng := rand.New(rand.NewSource(int64(rows)))
		m := mustMaintainer(t, s, order)
		for i := 0; i < rows; i++ {
			f := tuple.Flat{
				value.NewInt(int64(rng.Intn(rows / 2))),
				value.NewInt(int64(rng.Intn(8))),
				value.NewInt(int64(rng.Intn(8))),
			}
			if _, err := m.Insert(f); err != nil {
				t.Fatal(err)
			}
		}
		worst := 0
		for i := 0; i < 40; i++ {
			m.ResetStats()
			f := tuple.Flat{
				value.NewInt(int64(rng.Intn(rows / 2))),
				value.NewInt(int64(rng.Intn(8))),
				value.NewInt(int64(rng.Intn(8))),
			}
			if _, err := m.Insert(f); err != nil {
				t.Fatal(err)
			}
			ops := m.Stats().Compositions + m.Stats().Decompositions
			if ops > worst {
				worst = ops
			}
		}
		return worst
	}
	small := maxOps(60)
	large := maxOps(600)
	// Allow slack but large must not scale with |R| (10x data).
	if large > 4*small+8 {
		t.Errorf("per-insert ops grew with |R|: small=%d large=%d", small, large)
	}
}

func TestEmptyRelationOperations(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	m := mustMaintainer(t, s, schema.IdentityPerm(3))
	if ch, _ := m.Delete(tuple.FlatOfStrings("x", "y", "z")); ch {
		t.Error("delete on empty changed something")
	}
	if ch, _ := m.Insert(tuple.FlatOfStrings("x", "y", "z")); !ch {
		t.Error("insert on empty failed")
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
	if ch, _ := m.Delete(tuple.FlatOfStrings("x", "y", "z")); !ch {
		t.Error("delete failed")
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d after delete", m.Len())
	}
}

func TestFromRelationCanonicalizes(t *testing.T) {
	s := schema.MustOf("A", "B")
	r := core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1"),
		tuple.FlatOfStrings("a2", "b1"),
	})
	order := schema.MustPermOf(s, "A", "B")
	m, err := FromRelation(r, order)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.Canonical(order)
	if !m.Relation().Equal(want) {
		t.Error("FromRelation did not canonicalize")
	}
	if m.Order().String() != order.String() {
		t.Error("Order accessor wrong")
	}
	// source untouched
	if r.Len() != 2 {
		t.Error("source relation modified")
	}
}
