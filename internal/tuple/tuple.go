// Package tuple implements NFR tuples and the two syntactic operations
// the paper builds everything on: composition ν (Definition 1) and
// decomposition u (Definition 2).
//
// An NFR tuple over domains E1..En is written
//
//	[E1(e11,...,e1m1) ... En(en1,...,enmn)]
//
// where each component is a non-empty set of atoms. The tuple denotes
// the set of flat (1NF) tuples obtained by picking one element per
// component — its Expansion.
package tuple

import (
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/vset"
)

// Flat is a 1NF tuple: exactly one atom per attribute. It is the unit
// the paper's update algorithms insert and delete.
type Flat []value.Atom

// FlatOf builds a flat tuple from atoms.
func FlatOf(atoms ...value.Atom) Flat { return Flat(atoms) }

// FlatOfStrings builds a flat tuple of string atoms; the common
// constructor for the paper's symbolic examples.
func FlatOfStrings(ss ...string) Flat { return Flat(value.Strings(ss...)) }

// Equal reports component-wise equality of flat tuples.
func (f Flat) Equal(g Flat) bool {
	if len(f) != len(g) {
		return false
	}
	for i := range f {
		if !value.Equal(f[i], g[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for map-based deduplication of
// flat tuples.
func (f Flat) Key() string {
	var b strings.Builder
	for i, a := range f {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteByte(byte(a.K))
		b.WriteString(a.String())
	}
	return b.String()
}

// String renders the flat tuple as (a, b, c).
func (f Flat) String() string {
	parts := make([]string, len(f))
	for i, a := range f {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Clone returns an independent copy.
func (f Flat) Clone() Flat {
	out := make(Flat, len(f))
	copy(out, f)
	return out
}

// Tuple is one NFR tuple: a set of atoms per attribute position. A
// Tuple is immutable; all operations return new tuples. The zero Tuple
// has degree 0.
type Tuple struct {
	sets []vset.Set
	hash uint64 // order-sensitive combination of component hashes
}

// New builds a tuple from component sets. Every component must be
// non-empty: the paper's tuples always carry at least one value per
// domain.
func New(sets ...vset.Set) (Tuple, error) {
	for i, s := range sets {
		if s.IsEmpty() {
			return Tuple{}, fmt.Errorf("tuple: component %d is empty", i)
		}
	}
	cp := make([]vset.Set, len(sets))
	copy(cp, sets)
	return Tuple{sets: cp, hash: hashSets(cp)}, nil
}

// MustNew is New but panics on error.
func MustNew(sets ...vset.Set) Tuple {
	t, err := New(sets...)
	if err != nil {
		panic(err)
	}
	return t
}

// FromFlat lifts a 1NF tuple into an NFR tuple of singleton sets.
func FromFlat(f Flat) Tuple {
	sets := make([]vset.Set, len(f))
	for i, a := range f {
		sets[i] = vset.Single(a)
	}
	return Tuple{sets: sets, hash: hashSets(sets)}
}

func hashSets(sets []vset.Set) uint64 {
	var h uint64 = 1469598103934665603
	for _, s := range sets {
		h ^= s.Hash()
		h *= 1099511628211
	}
	return h
}

// Degree returns the number of components.
func (t Tuple) Degree() int { return len(t.sets) }

// Set returns the i-th component set.
func (t Tuple) Set(i int) vset.Set { return t.sets[i] }

// Sets returns all component sets (shared; do not modify).
func (t Tuple) Sets() []vset.Set { return t.sets }

// Hash returns an order-sensitive hash over component hashes.
func (t Tuple) Hash() uint64 { return t.hash }

// WithSet returns a copy of t with component i replaced. The new set
// must be non-empty.
func (t Tuple) WithSet(i int, s vset.Set) Tuple {
	if s.IsEmpty() {
		panic("tuple: WithSet with empty set")
	}
	sets := make([]vset.Set, len(t.sets))
	copy(sets, t.sets)
	sets[i] = s
	return Tuple{sets: sets, hash: hashSets(sets)}
}

// Equal reports component-wise set equality.
func (t Tuple) Equal(u Tuple) bool {
	if t.hash != u.hash || len(t.sets) != len(u.sets) {
		return false
	}
	for i := range t.sets {
		if !t.sets[i].Equal(u.sets[i]) {
			return false
		}
	}
	return true
}

// IsFlat reports whether every component is a singleton.
func (t Tuple) IsFlat() bool {
	for _, s := range t.sets {
		if s.Len() != 1 {
			return false
		}
	}
	return true
}

// ToFlat converts a flat tuple back to its Flat form. It panics if any
// component is not a singleton.
func (t Tuple) ToFlat() Flat {
	f := make(Flat, len(t.sets))
	for i, s := range t.sets {
		if s.Len() != 1 {
			panic("tuple: ToFlat on non-flat tuple")
		}
		f[i] = s.At(0)
	}
	return f
}

// ExpansionSize returns the number of flat tuples the tuple denotes:
// the product of component cardinalities.
func (t Tuple) ExpansionSize() int {
	n := 1
	for _, s := range t.sets {
		n *= s.Len()
	}
	return n
}

// Expand enumerates the tuple's flat expansion in lexicographic
// component order.
func (t Tuple) Expand() []Flat {
	out := make([]Flat, 0, t.ExpansionSize())
	cur := make(Flat, len(t.sets))
	var rec func(i int)
	rec = func(i int) {
		if i == len(t.sets) {
			out = append(out, cur.Clone())
			return
		}
		for _, a := range t.sets[i].Atoms() {
			cur[i] = a
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// ContainsFlat reports whether flat tuple f is in the expansion of t,
// i.e. f's i-th atom is an element of t's i-th component for all i.
func (t Tuple) ContainsFlat(f Flat) bool {
	if len(f) != len(t.sets) {
		return false
	}
	for i, a := range f {
		if !t.sets[i].Contains(a) {
			return false
		}
	}
	return true
}

// Overlaps reports whether the expansions of t and u intersect, i.e.
// every pair of corresponding components intersects.
func (t Tuple) Overlaps(u Tuple) bool {
	if len(t.sets) != len(u.sets) {
		return false
	}
	for i := range t.sets {
		if t.sets[i].Disjoint(u.sets[i]) {
			return false
		}
	}
	return true
}

// AgreeExcept reports whether t and u are set-theoretically equal on
// every component except position c — the precondition of composition
// ν_Ec (Definition 1).
func (t Tuple) AgreeExcept(u Tuple, c int) bool {
	if len(t.sets) != len(u.sets) {
		return false
	}
	for i := range t.sets {
		if i == c {
			continue
		}
		if !t.sets[i].Equal(u.sets[i]) {
			return false
		}
	}
	return true
}

// Compose implements ν_Ec(r,s) (Definition 1): if r and s agree on all
// components except c, it returns the tuple with the c-components
// unioned and ok=true. Otherwise ok=false.
func Compose(r, s Tuple, c int) (Tuple, bool) {
	if c < 0 || c >= len(r.sets) || !r.AgreeExcept(s, c) {
		return Tuple{}, false
	}
	return r.WithSet(c, r.sets[c].Union(s.sets[c])), true
}

// Decompose implements u_{Ed(x)}(t) (Definition 2): it splits element x
// out of component d, returning
//
//	tr — t with x removed from component d, and
//	te — t with component d replaced by the singleton {x}.
//
// It fails (ok=false) unless x is in the component and the component
// has at least two elements (otherwise the split would produce an
// empty component or be a no-op that loses no information).
func Decompose(t Tuple, d int, x value.Atom) (tr, te Tuple, ok bool) {
	if d < 0 || d >= len(t.sets) {
		return Tuple{}, Tuple{}, false
	}
	s := t.sets[d]
	if !s.Contains(x) || s.Len() < 2 {
		return Tuple{}, Tuple{}, false
	}
	tr = t.WithSet(d, s.Remove(x))
	te = t.WithSet(d, vset.Single(x))
	return tr, te, true
}

// HashExcept returns an order-sensitive hash of all components except
// position c. Tuples that can compose over c necessarily share this
// hash, so nesting can bucket tuples by it.
func (t Tuple) HashExcept(c int) uint64 {
	var h uint64 = 1469598103934665603
	for i, s := range t.sets {
		if i == c {
			h ^= 0x00c0ffee
		} else {
			h ^= s.Hash()
		}
		h *= 1099511628211
	}
	return h
}

// KeyExcept returns a canonical string key of all components except c,
// usable as a map key for grouping composable tuples. Two tuples share
// the key iff they agree (set-theoretically) on every component but c.
func (t Tuple) KeyExcept(c int) string {
	var b strings.Builder
	for i, s := range t.sets {
		if i > 0 {
			b.WriteByte('\x1e')
		}
		if i == c {
			b.WriteByte('*')
			continue
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// Key returns a canonical string key of the whole tuple (all
// components), for relation-level deduplication.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, s := range t.sets {
		if i > 0 {
			b.WriteByte('\x1e')
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// Project returns the tuple restricted to the given component indexes,
// in the given order.
func (t Tuple) Project(idx []int) Tuple {
	sets := make([]vset.Set, len(idx))
	for i, j := range idx {
		sets[i] = t.sets[j]
	}
	return Tuple{sets: sets, hash: hashSets(sets)}
}

// Render prints the tuple in the paper's notation using the schema's
// attribute names: [A(a1,a2) B(b1)].
func (t Tuple) Render(s *schema.Schema) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, set := range t.sets {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s != nil && i < s.Degree() {
			b.WriteString(s.Attr(i).Name)
		} else {
			fmt.Fprintf(&b, "E%d", i+1)
		}
		b.WriteByte('(')
		b.WriteString(set.String())
		b.WriteByte(')')
	}
	b.WriteByte(']')
	return b.String()
}

// String renders the tuple with positional attribute names E1..En.
func (t Tuple) String() string { return t.Render(nil) }
