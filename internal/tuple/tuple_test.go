package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/vset"
)

// tup is a test helper building a tuple of string-sets.
func tup(components ...[]string) Tuple {
	sets := make([]vset.Set, len(components))
	for i, c := range components {
		sets[i] = vset.OfStrings(c...)
	}
	return MustNew(sets...)
}

func TestNewRejectsEmptyComponent(t *testing.T) {
	if _, err := New(vset.OfStrings("a"), vset.Set{}); err == nil {
		t.Error("empty component accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(vset.Set{})
}

func TestFlatHelpers(t *testing.T) {
	f := FlatOfStrings("s1", "c1")
	g := FlatOf(value.NewString("s1"), value.NewString("c1"))
	if !f.Equal(g) {
		t.Error("FlatOfStrings != FlatOf")
	}
	if f.Equal(FlatOfStrings("s1")) {
		t.Error("length mismatch equal")
	}
	if f.Equal(FlatOfStrings("s1", "c2")) {
		t.Error("different atoms equal")
	}
	if f.String() != "(s1, c1)" {
		t.Errorf("String = %q", f.String())
	}
	if f.Key() == FlatOfStrings("s1", "c2").Key() {
		t.Error("Key collision")
	}
	c := f.Clone()
	c[0] = value.NewString("zz")
	if f[0].Str() != "s1" {
		t.Error("Clone shares storage")
	}
}

func TestFromFlatAndBack(t *testing.T) {
	f := FlatOfStrings("a", "b", "c")
	nt := FromFlat(f)
	if !nt.IsFlat() {
		t.Error("FromFlat not flat")
	}
	if !nt.ToFlat().Equal(f) {
		t.Error("roundtrip failed")
	}
	wide := tup([]string{"a", "b"}, []string{"c"})
	if wide.IsFlat() {
		t.Error("wide tuple reported flat")
	}
	defer func() {
		if recover() == nil {
			t.Error("ToFlat on wide tuple should panic")
		}
	}()
	wide.ToFlat()
}

func TestExpansion(t *testing.T) {
	// [A(a1,a2) B(b1)] means {(a1,b1),(a2,b1)} — the paper's example.
	nt := tup([]string{"a1", "a2"}, []string{"b1"})
	if nt.ExpansionSize() != 2 {
		t.Errorf("ExpansionSize = %d", nt.ExpansionSize())
	}
	flats := nt.Expand()
	if len(flats) != 2 {
		t.Fatalf("Expand len = %d", len(flats))
	}
	if !flats[0].Equal(FlatOfStrings("a1", "b1")) || !flats[1].Equal(FlatOfStrings("a2", "b1")) {
		t.Errorf("Expand = %v", flats)
	}
	for _, f := range flats {
		if !nt.ContainsFlat(f) {
			t.Errorf("ContainsFlat(%v) false", f)
		}
	}
	if nt.ContainsFlat(FlatOfStrings("a3", "b1")) {
		t.Error("ContainsFlat accepted foreign tuple")
	}
	if nt.ContainsFlat(FlatOfStrings("a1")) {
		t.Error("ContainsFlat accepted short tuple")
	}
}

func TestExpansionSizeProduct(t *testing.T) {
	nt := tup([]string{"a", "b"}, []string{"x", "y", "z"}, []string{"q"})
	if nt.ExpansionSize() != 6 {
		t.Errorf("ExpansionSize = %d, want 6", nt.ExpansionSize())
	}
	if got := len(nt.Expand()); got != 6 {
		t.Errorf("Expand = %d", got)
	}
}

func TestComposePaperExample(t *testing.T) {
	// t1 = [A(a1,a2) B(b1,b2) C(c1)], t2 = [A(a1,a2) B(b3) C(c1)]
	// νB(t1,t2) = [A(a1,a2) B(b1,b2,b3) C(c1)]  (paper, Section 3.2)
	t1 := tup([]string{"a1", "a2"}, []string{"b1", "b2"}, []string{"c1"})
	t2 := tup([]string{"a1", "a2"}, []string{"b3"}, []string{"c1"})
	t3, ok := Compose(t1, t2, 1)
	if !ok {
		t.Fatal("compose refused")
	}
	want := tup([]string{"a1", "a2"}, []string{"b1", "b2", "b3"}, []string{"c1"})
	if !t3.Equal(want) {
		t.Errorf("Compose = %v, want %v", t3, want)
	}
}

func TestComposeRefusals(t *testing.T) {
	t1 := tup([]string{"a1"}, []string{"b1"})
	t2 := tup([]string{"a2"}, []string{"b2"})
	if _, ok := Compose(t1, t2, 0); ok {
		t.Error("composed tuples disagreeing on non-c component")
	}
	if _, ok := Compose(t1, t2, -1); ok {
		t.Error("negative index accepted")
	}
	if _, ok := Compose(t1, t2, 2); ok {
		t.Error("out-of-range index accepted")
	}
	// degree mismatch
	if _, ok := Compose(t1, tup([]string{"a1"}), 0); ok {
		t.Error("degree mismatch accepted")
	}
}

func TestComposeIsLossless(t *testing.T) {
	// Expansion of composition == union of expansions.
	t1 := tup([]string{"a1", "a2"}, []string{"b1"})
	t2 := tup([]string{"a1", "a2"}, []string{"b2", "b3"})
	t3, ok := Compose(t1, t2, 1)
	if !ok {
		t.Fatal("compose refused")
	}
	want := map[string]bool{}
	for _, f := range append(t1.Expand(), t2.Expand()...) {
		want[f.Key()] = true
	}
	got := map[string]bool{}
	for _, f := range t3.Expand() {
		got[f.Key()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("expansion sizes differ: %d vs %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing flat tuple %q", k)
		}
	}
}

func TestDecomposePaperExample(t *testing.T) {
	// u_{B(b3)}(t3) gives back t1 and t2 from the composition example.
	t3 := tup([]string{"a1", "a2"}, []string{"b1", "b2", "b3"}, []string{"c1"})
	tr, te, ok := Decompose(t3, 1, value.NewString("b3"))
	if !ok {
		t.Fatal("decompose refused")
	}
	if !tr.Equal(tup([]string{"a1", "a2"}, []string{"b1", "b2"}, []string{"c1"})) {
		t.Errorf("tr = %v", tr)
	}
	if !te.Equal(tup([]string{"a1", "a2"}, []string{"b3"}, []string{"c1"})) {
		t.Errorf("te = %v", te)
	}
	// The other decomposition from the paper: u_{A(a1)}(t3).
	tr2, te2, ok := Decompose(t3, 0, value.NewString("a1"))
	if !ok {
		t.Fatal("decompose A refused")
	}
	if !te2.Equal(tup([]string{"a1"}, []string{"b1", "b2", "b3"}, []string{"c1"})) {
		t.Errorf("te2 = %v", te2)
	}
	if !tr2.Equal(tup([]string{"a2"}, []string{"b1", "b2", "b3"}, []string{"c1"})) {
		t.Errorf("tr2 = %v", tr2)
	}
}

func TestDecomposeRefusals(t *testing.T) {
	nt := tup([]string{"a1"}, []string{"b1", "b2"})
	if _, _, ok := Decompose(nt, 0, value.NewString("a1")); ok {
		t.Error("decomposed singleton component")
	}
	if _, _, ok := Decompose(nt, 1, value.NewString("zz")); ok {
		t.Error("decomposed absent element")
	}
	if _, _, ok := Decompose(nt, 5, value.NewString("b1")); ok {
		t.Error("out-of-range component accepted")
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	t1 := tup([]string{"a1", "a2"}, []string{"b1", "b2"}, []string{"c1"})
	t2 := tup([]string{"a1", "a2"}, []string{"b3"}, []string{"c1"})
	t3, _ := Compose(t1, t2, 1)
	tr, te, ok := Decompose(t3, 1, value.NewString("b3"))
	if !ok || !tr.Equal(t1) || !te.Equal(t2) {
		t.Errorf("roundtrip: tr=%v te=%v", tr, te)
	}
}

func TestAgreeExceptAndKeys(t *testing.T) {
	a := tup([]string{"x"}, []string{"p", "q"}, []string{"z"})
	b := tup([]string{"x"}, []string{"r"}, []string{"z"})
	if !a.AgreeExcept(b, 1) {
		t.Error("AgreeExcept should hold")
	}
	if a.AgreeExcept(b, 0) {
		t.Error("AgreeExcept(0) should fail: B components differ")
	}
	if a.KeyExcept(1) != b.KeyExcept(1) {
		t.Error("KeyExcept must match for composable tuples")
	}
	if a.HashExcept(1) != b.HashExcept(1) {
		t.Error("HashExcept must match for composable tuples")
	}
	if a.KeyExcept(0) == b.KeyExcept(0) {
		t.Error("KeyExcept(0) should differ")
	}
	if a.Key() == b.Key() {
		t.Error("full Key should differ")
	}
}

func TestOverlaps(t *testing.T) {
	a := tup([]string{"a1", "a2"}, []string{"b1"})
	b := tup([]string{"a2", "a3"}, []string{"b1", "b2"})
	c := tup([]string{"a9"}, []string{"b1"})
	if !a.Overlaps(b) {
		t.Error("overlapping tuples reported disjoint")
	}
	if a.Overlaps(c) {
		t.Error("disjoint tuples reported overlapping")
	}
	if a.Overlaps(tup([]string{"a1"})) {
		t.Error("degree mismatch overlap")
	}
}

func TestProject(t *testing.T) {
	nt := tup([]string{"a"}, []string{"b1", "b2"}, []string{"c"})
	p := nt.Project([]int{2, 0})
	if p.Degree() != 2 || !p.Set(0).Equal(vset.OfStrings("c")) || !p.Set(1).Equal(vset.OfStrings("a")) {
		t.Errorf("Project = %v", p)
	}
}

func TestWithSetImmutability(t *testing.T) {
	nt := tup([]string{"a"}, []string{"b"})
	nt2 := nt.WithSet(1, vset.OfStrings("b", "b2"))
	if !nt.Set(1).Equal(vset.OfStrings("b")) {
		t.Error("WithSet mutated receiver")
	}
	if !nt2.Set(1).Equal(vset.OfStrings("b", "b2")) {
		t.Error("WithSet result wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("WithSet(empty) should panic")
		}
	}()
	nt.WithSet(0, vset.Set{})
}

func TestRender(t *testing.T) {
	s := schema.MustOf("A", "B")
	nt := tup([]string{"a1", "a2"}, []string{"b1"})
	if got := nt.Render(s); got != "[A(a1,a2) B(b1)]" {
		t.Errorf("Render = %q", got)
	}
	if got := nt.String(); got != "[E1(a1,a2) E2(b1)]" {
		t.Errorf("String = %q", got)
	}
}

func randTuple(rng *rand.Rand, degree int) Tuple {
	sets := make([]vset.Set, degree)
	for i := range sets {
		n := 1 + rng.Intn(3)
		var atoms []value.Atom
		for j := 0; j < n; j++ {
			atoms = append(atoms, value.NewInt(int64(rng.Intn(6))))
		}
		sets[i] = vset.New(atoms...)
	}
	return MustNew(sets...)
}

// Property: for random composable pairs, Expand(compose) equals the
// union of expansions; for random tuples, decomposition then
// composition round-trips.
func TestComposeDecomposeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randTuple(rng, 3)
		c := rng.Intn(3)
		// construct a composable partner: same everywhere except c
		other := base.WithSet(c, vset.OfInts(int64(10+rng.Intn(5))))
		comp, ok := Compose(base, other, c)
		if !ok {
			return false
		}
		union := map[string]bool{}
		for _, fl := range append(base.Expand(), other.Expand()...) {
			union[fl.Key()] = true
		}
		for _, fl := range comp.Expand() {
			if !union[fl.Key()] {
				return false
			}
			delete(union, fl.Key())
		}
		if len(union) != 0 {
			return false
		}
		// decomposition inverse (only if component has ≥2 elements)
		d := rng.Intn(3)
		if base.Set(d).Len() >= 2 {
			x := base.Set(d).At(rng.Intn(base.Set(d).Len()))
			tr, te, ok := Decompose(base, d, x)
			if !ok {
				return false
			}
			back, ok := Compose(tr, te, d)
			if !ok || !back.Equal(base) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: equal tuples share Hash and Key.
func TestHashKeyCoherence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTuple(rng, 3)
		b := MustNew(a.Sets()...)
		return a.Equal(b) && a.Hash() == b.Hash() && a.Key() == b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
