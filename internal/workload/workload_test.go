package workload

import (
	"testing"

	"repro/internal/dep"
	"repro/internal/schema"
)

func TestGenEnrollmentShape(t *testing.T) {
	p := DefaultEnrollment()
	e := GenEnrollment(1, p)
	if e.R1.Len() == 0 || e.R2.Len() == 0 {
		t.Fatal("empty workload")
	}
	if !e.R1.IsFlat() || !e.R2.IsFlat() {
		t.Error("workloads must be 1NF")
	}
	// MVD Student ->-> Course holds on R1 by construction
	m := dep.NewMVD([]string{"Student"}, []string{"Course"})
	if !dep.SatisfiesMVD(e.R1.Schema(), e.R1.Expand(), m) {
		t.Error("planted MVD does not hold on R1")
	}
	// deterministic in the seed
	e2 := GenEnrollment(1, p)
	if !e.R1.Equal(e2.R1) || !e.R2.Equal(e2.R2) {
		t.Error("generator not deterministic")
	}
	e3 := GenEnrollment(2, p)
	if e.R1.Equal(e3.R1) {
		t.Error("different seeds gave identical data")
	}
}

func TestGenPlantedMVD(t *testing.T) {
	p := PlantedParams{Groups: 20, RhsPool: 10, MeanBlock: 3, Extra: 1, ExtraPool: 4}
	r := GenPlantedMVD(3, p)
	if r.Schema().Degree() != 4 {
		t.Fatalf("degree = %d", r.Schema().Degree())
	}
	m := dep.NewMVD([]string{"F"}, []string{"E1"})
	if !dep.SatisfiesMVD(r.Schema(), r.Expand(), m) {
		t.Error("planted MVD violated")
	}
	// nesting on E1 after grouping by F should compress
	canon, _ := r.Canonical(schema.MustPermOf(r.Schema(), "E1", "E2", "X1", "F"))
	if canon.Len() >= r.Len() {
		t.Errorf("no compression: %d -> %d", r.Len(), canon.Len())
	}
}

func TestGenPlantedFD(t *testing.T) {
	r := GenPlantedFD(4, 200, 2, 5)
	f := dep.NewFD([]string{"F"}, []string{"E1", "E2"})
	if !dep.SatisfiesFD(r.Schema(), r.Expand(), f) {
		t.Error("planted FD violated")
	}
	if r.Len() != 200 {
		t.Errorf("rows = %d (one per key)", r.Len())
	}
	// canonical nesting F last is fixed on F (Theorem 3, key FD)
	canon, _ := r.Canonical(schema.MustPermOf(r.Schema(), "E1", "E2", "F"))
	if !canon.FixedOn(schema.NewAttrSet("F")) {
		t.Error("canonical form not fixed on key")
	}
	if canon.Len() >= r.Len() {
		t.Errorf("no compression from grouping keys: %d -> %d", r.Len(), canon.Len())
	}
}

func TestGenUniformAndZipf(t *testing.T) {
	u := GenUniform(7, 500, 3, 10)
	if u.Schema().Degree() != 3 || u.Len() == 0 || u.Len() > 500 {
		t.Errorf("uniform: %d tuples", u.Len())
	}
	z := GenZipf(7, 500, 3, 10)
	if z.Len() == 0 {
		t.Error("zipf empty")
	}
	// zipf must be more skewed: fewer distinct rows than uniform
	if z.Len() >= u.Len() {
		t.Logf("zipf %d vs uniform %d (soft expectation)", z.Len(), u.Len())
	}
	if len(Flats(u)) != u.Len() {
		t.Error("Flats mismatch")
	}
}
