// Package workload generates the synthetic data sets used by the
// experiment harness. The paper reports no data sets; these generators
// are shaped by its motivating scenarios (Section 2): an enrollment
// database with an entity relation R1[Student, Course, Club] governed
// by the MVD Student ->-> Course | Club, and a relationship relation
// R2[Student, Course, Semester] with no MVD. All generators are
// deterministic in the seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Enrollment holds the Section-2 scenario data in flat (1NF) form.
type Enrollment struct {
	// R1 over [Student, Course, Club]: per student, the cartesian
	// product of their courses and clubs (so Student ->-> Course | Club
	// holds by construction).
	R1 *core.Relation
	// R2 over [Student, Course, Semester]: each student's courses are
	// scattered across semesters with no product structure.
	R2 *core.Relation
}

// EnrollmentParams sizes the enrollment generator.
type EnrollmentParams struct {
	Students          int
	CoursePool        int
	ClubPool          int
	SemesterPool      int
	CoursesPerStudent int // mean; actual 1..2*mean
	ClubsPerStudent   int // mean; actual 1..2*mean
}

// DefaultEnrollment returns the parameter set used by the experiment
// tables unless overridden.
func DefaultEnrollment() EnrollmentParams {
	return EnrollmentParams{
		Students:          100,
		CoursePool:        30,
		ClubPool:          8,
		SemesterPool:      6,
		CoursesPerStudent: 4,
		ClubsPerStudent:   2,
	}
}

// GenEnrollment builds the enrollment scenario.
func GenEnrollment(seed int64, p EnrollmentParams) Enrollment {
	rng := rand.New(rand.NewSource(seed))
	s1 := schema.MustOf("Student", "Course", "Club")
	s2 := schema.MustOf("Student", "Course", "Semester")
	r1 := core.NewRelation(s1)
	r2 := core.NewRelation(s2)
	for st := 0; st < p.Students; st++ {
		student := fmt.Sprintf("s%03d", st)
		nc := 1 + rng.Intn(2*p.CoursesPerStudent)
		nb := 1 + rng.Intn(2*p.ClubsPerStudent)
		courses := samplePool(rng, "c", p.CoursePool, nc)
		clubs := samplePool(rng, "b", p.ClubPool, nb)
		for _, c := range courses {
			for _, b := range clubs {
				r1.Add(tuple.FromFlat(tuple.FlatOfStrings(student, c, b)))
			}
			sem := fmt.Sprintf("t%d", rng.Intn(p.SemesterPool))
			r2.Add(tuple.FromFlat(tuple.FlatOfStrings(student, c, sem)))
		}
	}
	return Enrollment{R1: r1, R2: r2}
}

func samplePool(rng *rand.Rand, prefix string, pool, n int) []string {
	if n > pool {
		n = pool
	}
	perm := rng.Perm(pool)[:n]
	out := make([]string, n)
	for i, v := range perm {
		out[i] = fmt.Sprintf("%s%02d", prefix, v)
	}
	return out
}

// PlantedParams sizes PlantedMVD/PlantedFD relations.
type PlantedParams struct {
	Groups    int // number of distinct determinant values
	RhsPool   int // value pool per dependent attribute
	MeanBlock int // mean values per dependent attribute per group
	Extra     int // extra free attributes (uniform noise)
	ExtraPool int
}

// GenPlantedMVD builds a 1NF relation over [F, E1, E2, X1..Xk] where
// F ->-> E1 | E2,X1..Xk holds by construction: per F value the E1 and
// (E2, X..) blocks form a cartesian product.
func GenPlantedMVD(seed int64, p PlantedParams) *core.Relation {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"F", "E1", "E2"}
	for i := 0; i < p.Extra; i++ {
		names = append(names, fmt.Sprintf("X%d", i+1))
	}
	s := schema.MustOf(names...)
	r := core.NewRelation(s)
	for g := 0; g < p.Groups; g++ {
		f := value.NewString(fmt.Sprintf("f%04d", g))
		n1 := 1 + rng.Intn(2*p.MeanBlock)
		n2 := 1 + rng.Intn(2*p.MeanBlock)
		e1s := samplePool(rng, "u", p.RhsPool, n1)
		type rest struct {
			e2 string
			xs []string
		}
		rests := make([]rest, n2)
		for i := range rests {
			xs := make([]string, p.Extra)
			for j := range xs {
				xs[j] = fmt.Sprintf("x%02d", rng.Intn(max(p.ExtraPool, 1)))
			}
			rests[i] = rest{e2: fmt.Sprintf("v%02d", rng.Intn(p.RhsPool)), xs: xs}
		}
		for _, e1 := range e1s {
			for _, re := range rests {
				fl := make(tuple.Flat, 0, s.Degree())
				fl = append(fl, f, value.NewString(e1), value.NewString(re.e2))
				for _, x := range re.xs {
					fl = append(fl, value.NewString(x))
				}
				r.Add(tuple.FromFlat(fl))
			}
		}
	}
	return r
}

// GenPlantedFD builds a 1NF relation over [F, E1..Em] where the FD
// F -> E1..Em holds (F is a key): one row per F value, dependents drawn
// from small pools so nesting on F groups rows that share dependents.
func GenPlantedFD(seed int64, groups, deps, pool int) *core.Relation {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"F"}
	for i := 0; i < deps; i++ {
		names = append(names, fmt.Sprintf("E%d", i+1))
	}
	s := schema.MustOf(names...)
	r := core.NewRelation(s)
	for g := 0; g < groups; g++ {
		fl := make(tuple.Flat, 0, s.Degree())
		fl = append(fl, value.NewString(fmt.Sprintf("f%05d", g)))
		for i := 0; i < deps; i++ {
			fl = append(fl, value.NewString(fmt.Sprintf("e%02d", rng.Intn(pool))))
		}
		r.Add(tuple.FromFlat(fl))
	}
	return r
}

// GenUniform builds a uniform random 1NF relation: rows over degree
// attributes with the given per-attribute value universe.
func GenUniform(seed int64, rows, degree, universe int) *core.Relation {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, degree)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i+1)
	}
	s := schema.MustOf(names...)
	r := core.NewRelation(s)
	for i := 0; i < rows; i++ {
		fl := make(tuple.Flat, degree)
		for j := range fl {
			fl[j] = value.NewInt(int64(rng.Intn(universe)))
		}
		r.Add(tuple.FromFlat(fl))
	}
	return r
}

// GenZipf builds a skewed 1NF relation where attribute values follow
// an approximate zipf distribution (rank-1/rank weights) — the shape
// under which grouping pays off most unevenly.
func GenZipf(seed int64, rows, degree, universe int) *core.Relation {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(universe-1))
	names := make([]string, degree)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i+1)
	}
	s := schema.MustOf(names...)
	r := core.NewRelation(s)
	for i := 0; i < rows; i++ {
		fl := make(tuple.Flat, degree)
		for j := range fl {
			fl[j] = value.NewInt(int64(zipf.Uint64()))
		}
		r.Add(tuple.FromFlat(fl))
	}
	return r
}

// Flats is a convenience extracting the flat tuples of a relation in
// deterministic order.
func Flats(r *core.Relation) []tuple.Flat { return r.Expand() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
