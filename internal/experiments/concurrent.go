package experiments

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/tuple"
)

// ConcurrentResult summarizes the concurrent-clients experiment: N
// goroutines issuing disk-mode statements at once, with per-relation
// latches instead of a global statement lock and the WAL merging
// concurrently committing transactions into shared fsyncs.
type ConcurrentResult struct {
	Clients   int
	PerClient int
	// Statements counts changing statements (each = one committed
	// transaction); Seconds and StatementsPerSec measure the insert
	// phase wall clock.
	Statements       int
	Seconds          float64
	StatementsPerSec float64

	// group commit economics: fsyncs per statement < 1.0 means the
	// leader/follower scheduler merged concurrent commits
	WALFsyncs          int
	WALBatches         int
	FsyncsPerStatement float64
	MergeFactor        float64 // batches per fsync (1.0 = no merging)
	MaxGroup           int     // most transactions in one fsync

	// LatchWaits counts statement-latch acquisitions that blocked on a
	// concurrent statement (contention on the shared relation).
	LatchWaits int64

	// every relation equals the single-threaded oracle, live and after
	// a close/reopen
	Equivalent bool
}

// concurrentFlats synthesizes client c's deterministic workload:
// distinct flat tuples whose student/club values repeat so the
// Section-4 algorithms exercise real compositions.
func concurrentFlats(seed int64, c, n int) []tuple.Flat {
	out := make([]tuple.Flat, 0, n)
	for i := 0; i < n; i++ {
		k := int(seed)*1000 + c*131 + i
		out = append(out, tuple.FlatOfStrings(
			fmt.Sprintf("s%d_%d", c, k%7),
			fmt.Sprintf("c%d_%d", c, i),
			fmt.Sprintf("b%d_%d", c, k%3),
		))
	}
	return out
}

// RunConcurrent drives clients goroutines against a disk-backed engine:
// each client owns a private relation and also hits one shared relation
// every few statements (latch contention). It reports throughput,
// fsyncs per statement, the merge factor, and latch waits, and verifies
// every relation against a single-threaded in-memory oracle — live and
// across a reopen.
func RunConcurrent(w io.Writer, dir string, seed int64, clients, perClient, poolPages int) (ConcurrentResult, error) {
	res := ConcurrentResult{Clients: clients, PerClient: perClient}
	sch := schema.MustOf("Student", "Course", "Club")
	order := schema.MustPermOf(sch, "Course", "Club", "Student")
	defFor := func(name string) engine.RelationDef {
		return engine.RelationDef{Name: name, Schema: sch, Order: order}
	}

	path := filepath.Join(dir, "concurrent.nfrs")
	db, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return res, err
	}
	oracle := engine.New()
	names := make([]string, clients)
	flats := make([][]tuple.Flat, clients)
	var sharedAll []tuple.Flat
	for c := 0; c < clients; c++ {
		names[c] = fmt.Sprintf("R%d", c)
		for _, d := range []*engine.Database{db, oracle} {
			if err := d.Create(defFor(names[c])); err != nil {
				db.Close()
				return res, err
			}
		}
		flats[c] = concurrentFlats(seed, c, perClient)
		if _, err := oracle.InsertMany(names[c], flats[c]); err != nil {
			db.Close()
			return res, err
		}
		// every 5th statement also lands in the shared relation
		for i := 4; i < len(flats[c]); i += 5 {
			sharedAll = append(sharedAll, flats[c][i])
		}
	}
	for _, d := range []*engine.Database{db, oracle} {
		if err := d.Create(defFor("shared")); err != nil {
			db.Close()
			return res, err
		}
	}
	if _, err := oracle.InsertMany("shared", sharedAll); err != nil {
		db.Close()
		return res, err
	}

	ws0, _ := db.WALStats()
	var changed atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, f := range flats[c] {
				ch, err := db.Insert(names[c], f)
				if err != nil {
					errCh <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				if ch {
					changed.Add(1)
				}
				if i%5 == 4 {
					ch, err := db.Insert("shared", f)
					if err != nil {
						errCh <- fmt.Errorf("client %d (shared): %w", c, err)
						return
					}
					if ch {
						changed.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		db.Close()
		return res, err
	}
	ws1, _ := db.WALStats()
	res.Statements = int(changed.Load())
	res.WALFsyncs = ws1.Fsyncs - ws0.Fsyncs
	res.WALBatches = ws1.Batches - ws0.Batches
	res.MaxGroup = ws1.MaxGroupBatches
	res.LatchWaits = db.LatchWaits()
	if res.Statements > 0 {
		res.FsyncsPerStatement = float64(res.WALFsyncs) / float64(res.Statements)
		res.StatementsPerSec = float64(res.Statements) / res.Seconds
	}
	if res.WALFsyncs > 0 {
		res.MergeFactor = float64(res.WALBatches) / float64(res.WALFsyncs)
	}

	verify := func(d *engine.Database) (bool, error) {
		for _, name := range append(append([]string{}, names...), "shared") {
			got, err := d.ReadRelation(context.Background(), name)
			if err != nil {
				return false, err
			}
			want, err := oracle.ReadRelation(context.Background(), name)
			if err != nil {
				return false, err
			}
			if !got.Equal(want) || !sameExpansion(got, want) {
				return false, nil
			}
		}
		return true, nil
	}
	live, err := verify(db)
	if err != nil {
		db.Close()
		return res, err
	}
	if err := db.Close(); err != nil {
		return res, err
	}
	db2, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return res, fmt.Errorf("reopen after concurrent run: %w", err)
	}
	defer db2.Close()
	reopened, err := verify(db2)
	if err != nil {
		return res, err
	}
	res.Equivalent = live && reopened

	fmt.Fprintf(w, "D2 — concurrent clients (disk mode, per-relation latches, merged group commit)\n")
	fmt.Fprintf(w, "  %d clients × %d statements (+1 shared statement per 5): %d committed statements in %.3fs (%.0f stmts/s)\n",
		res.Clients, res.PerClient, res.Statements, res.Seconds, res.StatementsPerSec)
	fmt.Fprintf(w, "  group commit: %d transactions in %d fsyncs → %.3f fsyncs/statement (merge factor %.2f, max group %d)\n",
		res.WALBatches, res.WALFsyncs, res.FsyncsPerStatement, res.MergeFactor, res.MaxGroup)
	fmt.Fprintf(w, "  latch contention: %d blocked acquisitions (shared relation)\n", res.LatchWaits)
	fmt.Fprintf(w, "  all relations equivalent to single-threaded oracle (live + reopened): %v\n", res.Equivalent)
	return res, nil
}

// sameExpansion double-checks 1NF equivalence on top of canonical-form
// equality.
func sameExpansion(a, b *core.Relation) bool { return a.EquivalentTo(b) }
