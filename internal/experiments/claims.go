package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/encoding"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/update"
	"repro/internal/value"
	"repro/internal/workload"
)

// A4Row is one row of the Theorem A-4 update-cost table.
type A4Row struct {
	Rows      int // |R*| before the measured updates
	Degree    int
	NFRTuples int
	MaxOps    int // worst-case compositions+decompositions per update
	MeanOps   float64
}

// RunTheoremA4 measures the cost (compositions + decompositions) of
// single-tuple inserts and deletes while sweeping (a) the relation
// size at fixed degree and (b) the degree at fixed size. Theorem A-4
// predicts the per-update cost depends on the degree only.
func RunTheoremA4(w io.Writer, sizes []int, degrees []int, probes int, seed int64) (bySize, byDegree []A4Row) {
	measure := func(rows, deg int) A4Row {
		rng := rand.New(rand.NewSource(seed + int64(rows*31+deg)))
		names := make([]string, deg)
		for i := range names {
			names[i] = fmt.Sprintf("A%d", i+1)
		}
		s := schema.MustOf(names...)
		m, err := update.NewMaintainer(s, schema.IdentityPerm(deg))
		if err != nil {
			panic(err)
		}
		gen := func() tuple.Flat {
			f := make(tuple.Flat, deg)
			// first attribute keyed to size so groups shrink relative
			// to the relation; rest from small pools to force grouping
			f[0] = value.NewInt(int64(rng.Intn(rows/2 + 1)))
			for j := 1; j < deg; j++ {
				f[j] = value.NewInt(int64(rng.Intn(6)))
			}
			return f
		}
		for i := 0; i < rows; i++ {
			if _, err := m.Insert(gen()); err != nil {
				panic(err)
			}
		}
		row := A4Row{Rows: rows, Degree: deg, NFRTuples: m.Len()}
		total := 0
		for i := 0; i < probes; i++ {
			m.ResetStats()
			f := gen()
			if i%3 == 2 {
				if _, err := m.Delete(f); err != nil {
					panic(err)
				}
			} else {
				if _, err := m.Insert(f); err != nil {
					panic(err)
				}
			}
			ops := m.Stats().Compositions + m.Stats().Decompositions
			total += ops
			if ops > row.MaxOps {
				row.MaxOps = ops
			}
		}
		row.MeanOps = float64(total) / float64(probes)
		return row
	}

	fmt.Fprintln(w, "Theorem A-4 — per-update cost (compositions+decompositions)")
	fmt.Fprintln(w, "sweep |R| at degree 3:")
	fmt.Fprintf(w, "  %10s %10s %10s %10s\n", "|R*|", "NFR", "max ops", "mean ops")
	for _, n := range sizes {
		r := measure(n, 3)
		bySize = append(bySize, r)
		fmt.Fprintf(w, "  %10d %10d %10d %10.2f\n", r.Rows, r.NFRTuples, r.MaxOps, r.MeanOps)
	}
	fmt.Fprintln(w, "sweep degree at |R*| = 400:")
	fmt.Fprintf(w, "  %10s %10s %10s %10s\n", "degree", "NFR", "max ops", "mean ops")
	for _, d := range degrees {
		r := measure(400, d)
		byDegree = append(byDegree, r)
		fmt.Fprintf(w, "  %10d %10d %10d %10.2f\n", r.Degree, r.NFRTuples, r.MaxOps, r.MeanOps)
	}
	return bySize, byDegree
}

// C1Row is one row of the compression table.
type C1Row struct {
	Workload    string
	FlatTuples  int
	NFRTuples   int
	Compression float64
}

// RunCompression measures the Section-2 claim that NFRs hold "much
// less tuples" than 1NF: flat vs canonical tuple counts across the
// workload family, using the dependency-derived nest order.
func RunCompression(w io.Writer, seed int64, scale int) []C1Row {
	var rows []C1Row
	add := func(name string, r *core.Relation, order schema.Permutation) {
		c, _ := r.Canonical(order)
		row := C1Row{Workload: name, FlatTuples: r.ExpansionSize(), NFRTuples: c.Len()}
		if row.NFRTuples > 0 {
			row.Compression = float64(row.FlatTuples) / float64(row.NFRTuples)
		}
		rows = append(rows, row)
	}
	e := workload.GenEnrollment(seed, workload.EnrollmentParams{
		Students: 40 * scale, CoursePool: 30, ClubPool: 8, SemesterPool: 6,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	add("enrollment R1 (MVD)", e.R1, schema.MustPermOf(e.R1.Schema(), "Course", "Club", "Student"))
	add("enrollment R2 (no MVD)", e.R2, schema.MustPermOf(e.R2.Schema(), "Student", "Course", "Semester"))
	mv := workload.GenPlantedMVD(seed, workload.PlantedParams{
		Groups: 30 * scale, RhsPool: 12, MeanBlock: 3, Extra: 1, ExtraPool: 4,
	})
	add("planted MVD", mv, schema.MustPermOf(mv.Schema(), "E1", "E2", "X1", "F"))
	fd := workload.GenPlantedFD(seed, 100*scale, 2, 4)
	add("planted key FD", fd, schema.MustPermOf(fd.Schema(), "E1", "E2", "F"))
	un := workload.GenUniform(seed, 200*scale, 3, 8)
	add("uniform random", un, schema.IdentityPerm(3))
	zf := workload.GenZipf(seed, 200*scale, 3, 8)
	add("zipf-skewed", zf, schema.IdentityPerm(3))

	fmt.Fprintln(w, "C1 — tuple-count reduction (NFR canonical vs 1NF)")
	fmt.Fprintf(w, "  %-24s %10s %10s %12s\n", "workload", "1NF", "NFR", "compression")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-24s %10d %10d %11.2fx\n", r.Workload, r.FlatTuples, r.NFRTuples, r.Compression)
	}
	return rows
}

// C2Result compares answering the whole-relation query on an NFR
// versus reassembling a 4NF decomposition with joins.
type C2Result struct {
	FlatTuples      int
	NFRTuples       int
	NFRVisits       int // tuples visited scanning the NFR
	FragmentRows    int
	JoinRowsVisited int // intermediate rows materialized by the join
}

// RunNFRvsJoin exercises the paper's Section-5 conclusion: a schema
// kept as an NFR answers the full-relation query with a scan of its
// (few) tuples, while the 4NF decomposition must re-join its fragments.
func RunNFRvsJoin(w io.Writer, seed int64, students int) C2Result {
	e := workload.GenEnrollment(seed, workload.EnrollmentParams{
		Students: students, CoursePool: 30, ClubPool: 8, SemesterPool: 6,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	order := schema.MustPermOf(e.R1.Schema(), "Course", "Club", "Student")
	canon, _ := e.R1.Canonical(order)

	mvds := []dep.MVD{dep.NewMVD([]string{"Student"}, []string{"Course"})}
	dec, err := baseline.NewDecomposed4NF(e.R1.Schema(), nil, mvds)
	if err != nil {
		panic(err)
	}
	for _, f := range e.R1.Expand() {
		dec.Insert(f)
	}
	joined, joinRows := dec.ReassembleCounted()
	if !joined.EquivalentTo(e.R1) {
		panic("experiments: join did not recover the relation")
	}
	res := C2Result{
		FlatTuples:      e.R1.ExpansionSize(),
		NFRTuples:       canon.Len(),
		NFRVisits:       canon.Len(),
		FragmentRows:    dec.FragmentRows(),
		JoinRowsVisited: joinRows,
	}
	fmt.Fprintln(w, "C2 — answering the whole relation: NFR scan vs 4NF join")
	fmt.Fprintf(w, "  1NF tuples:                 %d\n", res.FlatTuples)
	fmt.Fprintf(w, "  NFR tuples scanned:         %d\n", res.NFRVisits)
	fmt.Fprintf(w, "  4NF fragment rows:          %d\n", res.FragmentRows)
	fmt.Fprintf(w, "  join rows materialized:     %d\n", res.JoinRowsVisited)
	fmt.Fprintf(w, "  NFR advantage:              %.1fx fewer row visits\n",
		float64(res.JoinRowsVisited)/float64(maxInt(res.NFRVisits, 1)))
	return res
}

// C3Result compares on-disk footprint of NFR vs 1NF realization.
type C3Result struct {
	FlatRecords int
	FlatBytes   int
	FlatPages   int
	NFRRecords  int
	NFRBytes    int
	NFRPages    int
}

// RunStorageFootprint materializes the enrollment R1 both ways in the
// storage engine — one record per flat tuple vs one record per NFR
// tuple — and reports records, bytes, and pages: the "realization
// view" payoff.
func RunStorageFootprint(w io.Writer, dir string, seed int64, students int) (C3Result, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return C3Result{}, err
	}
	e := workload.GenEnrollment(seed, workload.EnrollmentParams{
		Students: students, CoursePool: 30, ClubPool: 8, SemesterPool: 6,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	order := schema.MustPermOf(e.R1.Schema(), "Course", "Club", "Student")
	canon, _ := e.R1.Canonical(order)

	store := func(path string, rel *core.Relation) (storage.HeapStats, error) {
		pg, err := storage.OpenPager(path)
		if err != nil {
			return storage.HeapStats{}, err
		}
		defer pg.Close()
		bp, err := storage.NewBufferPool(pg, 16)
		if err != nil {
			return storage.HeapStats{}, err
		}
		h, err := storage.CreateHeap(bp, nil) // no WAL: legacy non-transactional pool
		if err != nil {
			return storage.HeapStats{}, err
		}
		for i := 0; i < rel.Len(); i++ {
			if _, err := h.Insert(nil, encoding.EncodeTuple(rel.Tuple(i))); err != nil {
				return storage.HeapStats{}, err
			}
		}
		if err := bp.Flush(); err != nil {
			return storage.HeapStats{}, err
		}
		return h.Stats()
	}

	flatStats, err := store(filepath.Join(dir, "flat.db"), e.R1)
	if err != nil {
		return C3Result{}, err
	}
	nfrStats, err := store(filepath.Join(dir, "nfr.db"), canon)
	if err != nil {
		return C3Result{}, err
	}
	res := C3Result{
		FlatRecords: flatStats.LiveRecords, FlatBytes: flatStats.LiveBytes, FlatPages: flatStats.Pages,
		NFRRecords: nfrStats.LiveRecords, NFRBytes: nfrStats.LiveBytes, NFRPages: nfrStats.Pages,
	}
	fmt.Fprintln(w, "C3 — on-disk footprint (storage engine, 4 KiB pages)")
	fmt.Fprintf(w, "  %-14s %10s %12s %8s\n", "realization", "records", "bytes", "pages")
	fmt.Fprintf(w, "  %-14s %10d %12d %8d\n", "1NF", res.FlatRecords, res.FlatBytes, res.FlatPages)
	fmt.Fprintf(w, "  %-14s %10d %12d %8d\n", "NFR", res.NFRRecords, res.NFRBytes, res.NFRPages)
	fmt.Fprintf(w, "  byte reduction: %.2fx\n", float64(res.FlatBytes)/float64(maxInt(res.NFRBytes, 1)))
	return res, nil
}

// RunAll executes every experiment with journal-quality defaults,
// writing to w. dir is used for storage experiments (a temp dir is
// created when empty).
func RunAll(w io.Writer, dir string) error {
	if dir == "" {
		d, err := os.MkdirTemp("", "nfr-experiments")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	sep := func() { fmt.Fprintln(w, "\n"+lineOf('=', 72)+"\n") }
	RunFig1(w)
	sep()
	RunFig2(w)
	sep()
	RunExample1(w)
	sep()
	RunExample2(w)
	sep()
	RunExample3(w)
	sep()
	RunFig3(w, 400, 17)
	sep()
	RunTheorem1(w, 200, 19)
	RunTheorem2(w, 120, 23)
	RunTheorem3(w, 150, 29)
	RunTheorem4(w, 60, 31)
	RunTheorem5(w, 80, 37)
	sep()
	RunTheoremA4(w, []int{100, 300, 1000, 3000, 10000}, []int{2, 3, 4, 5, 6}, 60, 41)
	sep()
	RunCompression(w, 43, 4)
	sep()
	RunNFRvsJoin(w, 47, 250)
	sep()
	if _, err := RunStorageFootprint(w, dir, 53, 250); err != nil {
		return err
	}
	sep()
	if _, err := RunDiskEngine(w, dir, 61, 250, 32); err != nil {
		return err
	}
	sep()
	if _, err := RunRange(w, dir, 97, 800, 64); err != nil {
		return err
	}
	return nil
}

func lineOf(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
