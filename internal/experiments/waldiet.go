package experiments

import (
	"context"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/workload"
)

// WALDietResult summarizes the bytes-logged-per-statement experiment:
// with delta records, a warmed-up one-tuple insert should log a few
// hundred bytes of changed ranges, not a full image of every page it
// touches. The baseline column prices the identical page touches at
// full-image rates, so Ratio is the factor the delta format saves.
type WALDietResult struct {
	Warmup     int // statements before the measured window
	Statements int // measured one-tuple insert statements

	// measured window, actual cost
	BytesLogged       int
	BytesPerStatement float64
	PagesLogged       int
	FullPages         int // first-touch-after-checkpoint full images
	DeltaPages        int

	// the same page touches priced as full images (pre-diet format)
	FullImageBaseline int
	BaselineBytes     float64 // per statement
	Ratio             float64 // BaselineBytes / BytesPerStatement

	Equivalent bool // reopened realization matches the in-memory oracle
}

// FullImageRecBytes is the log cost of one page at full-image rates:
// tag + pid + image + crc. Mirrors the storage package's 'P' record
// so the baseline prices pages the way the pre-diet WAL actually
// charged for them.
const FullImageRecBytes = 1 + 4 + storage.PageSize + 4

// RunWALDiet measures WAL bytes per statement on the enrollment
// workload: warmup inserts populate the heap and indexes and warm the
// WAL's base-image map, an explicit checkpoint truncates the log (so
// the measured window pays its own first-touch full images, amortized
// like any post-checkpoint era), and then a run of one-tuple insert
// statements is measured. The interesting number is
// BytesPerStatement; the gate in cmd/nfr-bench fails the run if a
// warmed-up one-tuple insert logs more than one page-equivalent, or
// if the delta format saves less than 5x over full images.
func RunWALDiet(w io.Writer, dir string, seed int64, warmup, measured, poolPages int) (WALDietResult, error) {
	e := workload.GenEnrollment(seed, workload.EnrollmentParams{
		Students: 120, CoursePool: 30, ClubPool: 8, SemesterPool: 6,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	flats := e.R1.Expand()
	if len(flats) < warmup+measured {
		return WALDietResult{}, fmt.Errorf("workload too small: %d flats < %d warmup + %d measured",
			len(flats), warmup, measured)
	}
	def := engine.RelationDef{
		Name:   "R1",
		Schema: e.R1.Schema(),
		Order:  schema.MustPermOf(e.R1.Schema(), "Course", "Club", "Student"),
	}

	mem := engine.New()
	if err := mem.Create(def); err != nil {
		return WALDietResult{}, err
	}
	if _, err := mem.InsertMany("R1", flats[:warmup+measured]); err != nil {
		return WALDietResult{}, err
	}

	path := filepath.Join(dir, "waldiet.nfrs")
	// manual checkpointing only: an auto-checkpoint inside the measured
	// window would clear the base-image map and bill extra first-touch
	// images to the statements that happened to follow it
	db, err := engine.Open(path, engine.WithPoolPages(poolPages), engine.WithCheckpointBytes(-1))
	if err != nil {
		return WALDietResult{}, err
	}
	if err := db.Create(def); err != nil {
		db.Close()
		return WALDietResult{}, err
	}
	var res WALDietResult
	res.Warmup, res.Statements = warmup, measured
	if _, err := db.InsertMany("R1", flats[:warmup]); err != nil {
		db.Close()
		return WALDietResult{}, err
	}
	// checkpoint: the measured era starts with an empty log, exactly
	// like steady-state operation after any auto-checkpoint
	if err := db.Flush(); err != nil {
		db.Close()
		return WALDietResult{}, err
	}

	ws0, _ := db.WALStats()
	if _, err := db.InsertMany("R1", flats[warmup:warmup+measured]); err != nil {
		db.Close()
		return WALDietResult{}, err
	}
	ws1, _ := db.WALStats()
	res.BytesLogged = ws1.BytesLogged - ws0.BytesLogged
	res.PagesLogged = ws1.PagesLogged - ws0.PagesLogged
	res.FullPages = ws1.FullPages - ws0.FullPages
	res.DeltaPages = ws1.DeltaPages - ws0.DeltaPages
	res.BytesPerStatement = float64(res.BytesLogged) / float64(measured)
	res.FullImageBaseline = res.PagesLogged * FullImageRecBytes
	res.BaselineBytes = float64(res.FullImageBaseline) / float64(measured)
	if res.BytesLogged > 0 {
		res.Ratio = float64(res.FullImageBaseline) / float64(res.BytesLogged)
	}
	if err := db.Close(); err != nil {
		return WALDietResult{}, err
	}

	// the diet must not cost correctness: the reopened realization still
	// answers identically to the in-memory engine
	db2, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return WALDietResult{}, err
	}
	defer db2.Close()
	memRel, err := mem.ReadRelation(context.Background(), "R1")
	if err != nil {
		return WALDietResult{}, err
	}
	diskRel, err := db2.ReadRelation(context.Background(), "R1")
	if err != nil {
		return WALDietResult{}, err
	}
	res.Equivalent = memRel.Equal(diskRel) && memRel.EquivalentTo(diskRel)

	fmt.Fprintf(w, "W1 — WAL diet (delta records + page LSNs, %d-page buffer pool)\n", poolPages)
	fmt.Fprintf(w, "  %d warmup inserts, checkpoint, then %d measured one-tuple insert statements\n",
		warmup, measured)
	fmt.Fprintf(w, "  measured window: %d bytes logged over %d page records (%d full images, %d deltas)\n",
		res.BytesLogged, res.PagesLogged, res.FullPages, res.DeltaPages)
	fmt.Fprintf(w, "  %.0f bytes/statement vs %.0f at full-image rates — %.1fx smaller\n",
		res.BytesPerStatement, res.BaselineBytes, res.Ratio)
	fmt.Fprintf(w, "  reopened realization equivalent to in-memory canonical form: %v\n",
		res.Equivalent)
	return res, nil
}
