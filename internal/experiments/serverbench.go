package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/tuple"
)

// ServerBenchResult summarizes the network-server leg: N real TCP
// clients on loopback, each its own connection and server-side
// session, committing explicit transactions through the wire protocol.
// The group-commit economics must survive the network hop — the WAL
// still spends at most one fsync per transaction, and concurrently
// committing connections still merge — while the wire adds a
// measurable but bounded per-statement round-trip.
type ServerBenchResult struct {
	Clients      int
	TxsPerClient int
	StmtsPerTx   int

	Txs        int // committed transactions
	Statements int // statements sent (including BEGIN/COMMIT overhead)
	Conflicts  int // wait-die retries (shared-relation contention)
	Seconds    float64
	StmtPerSec float64

	P50Ms float64 // median statement round-trip
	P99Ms float64 // tail statement round-trip

	WALFsyncs   int
	FsyncsPerTx float64 // must be ≤ 1; < 1 once commits merge
	MaxGroup    int     // most transactions in one fsync

	// every relation equals the single-threaded oracle, live and after
	// a close/reopen
	Equivalent bool
}

// RunServerBench starts an nfr server on a loopback port and drives
// clients concurrent connections through the public client package:
// each commits txsPerClient transactions of stmtsPerTx INSERTs on a
// private relation (every 5th transaction also writes the shared
// relation, so wait-die conflicts and cross-connection group-commit
// merging both happen). It reports throughput and per-statement
// round-trip latency, then verifies every relation against a
// single-threaded oracle — live, and again after a graceful shutdown
// and reopen.
func RunServerBench(w io.Writer, dir string, seed int64, clients, txsPerClient, stmtsPerTx, poolPages int) (ServerBenchResult, error) {
	res := ServerBenchResult{Clients: clients, TxsPerClient: txsPerClient, StmtsPerTx: stmtsPerTx}
	sch := schema.MustOf("Student", "Course", "Club")
	order := schema.MustPermOf(sch, "Course", "Club", "Student")
	defFor := func(name string) engine.RelationDef {
		return engine.RelationDef{Name: name, Schema: sch, Order: order}
	}

	path := filepath.Join(dir, "server-bench.nfrs")
	db, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return res, err
	}
	oracle := engine.New()
	names := make([]string, clients)
	flats := make([][]tuple.Flat, clients)
	var sharedAll []tuple.Flat
	perClient := txsPerClient * stmtsPerTx
	for c := 0; c < clients; c++ {
		names[c] = fmt.Sprintf("T%d", c)
		for _, d := range []*engine.Database{db, oracle} {
			if err := d.Create(defFor(names[c])); err != nil {
				db.Close()
				return res, err
			}
		}
		flats[c] = concurrentFlats(seed, c, perClient)
		if _, err := oracle.InsertMany(names[c], flats[c]); err != nil {
			db.Close()
			return res, err
		}
		for t := 4; t < txsPerClient; t += 5 {
			sharedAll = append(sharedAll, flats[c][t*stmtsPerTx])
		}
	}
	for _, d := range []*engine.Database{db, oracle} {
		if err := d.Create(defFor("shared")); err != nil {
			db.Close()
			return res, err
		}
	}
	if _, err := oracle.InsertMany("shared", sharedAll); err != nil {
		db.Close()
		return res, err
	}

	srv := server.New(db, server.Config{MaxConns: clients + 1})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		return res, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	addr := lis.Addr().String()

	ws0, _ := db.WALStats()
	var sent, committed, conflicts atomic.Int64
	lats := make([][]float64, clients) // per-statement round-trips, ms
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial(addr)
			if err != nil {
				errCh <- fmt.Errorf("client %d: dial: %w", c, err)
				return
			}
			defer cl.Close()
			ctx := context.Background()
			exec := func(stmt string) error {
				t0 := time.Now()
				_, err := cl.Exec(ctx, stmt)
				lats[c] = append(lats[c], float64(time.Since(t0).Microseconds())/1000)
				sent.Add(1)
				return err
			}
			for t := 0; t < txsPerClient; t++ {
				rows := flats[c][t*stmtsPerTx : (t+1)*stmtsPerTx]
				stmts := []string{"BEGIN"}
				if t%5 == 4 {
					// shared first, while the transaction holds nothing,
					// so the wait is always legal under wait-die
					stmts = append(stmts, insertStmt("shared", rows[0]))
				}
				for _, f := range rows {
					stmts = append(stmts, insertStmt(names[c], f))
				}
				stmts = append(stmts, "COMMIT")
				// wait-die can refuse the shared latch; roll back and
				// retry the whole transaction
			retry:
				for {
					for _, stmt := range stmts {
						if err := exec(stmt); err != nil {
							if errors.Is(err, engine.ErrTxConflict) {
								conflicts.Add(1)
								if err := exec("ROLLBACK"); err != nil {
									errCh <- fmt.Errorf("client %d tx %d: rollback: %w", c, t, err)
									return
								}
								continue retry
							}
							errCh <- fmt.Errorf("client %d tx %d: %s: %w", c, t, stmt, err)
							return
						}
					}
					committed.Add(1)
					break
				}
			}
		}(c)
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		srv.Close()
		<-serveDone
		db.Close()
		return res, err
	}

	ws1, _ := db.WALStats()
	res.Txs = int(committed.Load())
	res.Statements = int(sent.Load())
	res.Conflicts = int(conflicts.Load())
	res.WALFsyncs = ws1.Fsyncs - ws0.Fsyncs
	res.MaxGroup = ws1.MaxGroupBatches
	if res.Txs > 0 {
		res.FsyncsPerTx = float64(res.WALFsyncs) / float64(res.Txs)
	}
	if res.Seconds > 0 {
		res.StmtPerSec = float64(res.Statements) / res.Seconds
	}
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	res.P50Ms = percentile(all, 0.50)
	res.P99Ms = percentile(all, 0.99)

	// Graceful shutdown before verification: the server must hand the
	// database back at a committed boundary.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		db.Close()
		return res, fmt.Errorf("server shutdown: %w", err)
	}
	if err := <-serveDone; err != nil && err != server.ErrServerClosed {
		db.Close()
		return res, fmt.Errorf("serve: %w", err)
	}

	verify := func(d *engine.Database) (bool, error) {
		for _, name := range append(append([]string{}, names...), "shared") {
			got, err := d.ReadRelation(ctx, name)
			if err != nil {
				return false, err
			}
			want, err := oracle.ReadRelation(ctx, name)
			if err != nil {
				return false, err
			}
			if !got.Equal(want) || !got.EquivalentTo(want) {
				return false, nil
			}
		}
		return true, nil
	}
	live, err := verify(db)
	if err != nil {
		db.Close()
		return res, err
	}
	if err := db.Close(); err != nil {
		return res, err
	}
	db2, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return res, fmt.Errorf("reopen after server bench: %w", err)
	}
	defer db2.Close()
	if err := db2.VerifyIndexes(); err != nil {
		return res, fmt.Errorf("reopened indexes disagree with heap: %w", err)
	}
	reopened, err := verify(db2)
	if err != nil {
		return res, err
	}
	res.Equivalent = live && reopened

	fmt.Fprintf(w, "D4 — network server (TCP loopback, wire frames, one session per connection)\n")
	fmt.Fprintf(w, "  %d clients × %d txs × %d statements (+1 shared statement per 5th tx): %d committed txs (%d statements incl. BEGIN/COMMIT) in %.3fs (%.0f stmts/s), %d wait-die retries\n",
		res.Clients, res.TxsPerClient, res.StmtsPerTx, res.Txs, res.Statements, res.Seconds, res.StmtPerSec, res.Conflicts)
	fmt.Fprintf(w, "  statement round-trip: p50 %.3fms, p99 %.3fms\n", res.P50Ms, res.P99Ms)
	fmt.Fprintf(w, "  group commit over the wire: %d txs in %d fsyncs → %.3f fsyncs/tx (max group %d)\n",
		res.Txs, res.WALFsyncs, res.FsyncsPerTx, res.MaxGroup)
	fmt.Fprintf(w, "  all relations equivalent to single-threaded oracle (live + reopened): %v\n", res.Equivalent)
	return res, nil
}

// insertStmt renders one flat tuple as an INSERT statement (the bench
// rows are bare identifiers, so no quoting is needed).
func insertStmt(name string, f tuple.Flat) string {
	return fmt.Sprintf("INSERT INTO %s VALUES (%s, %s, %s)", name, f[0].S, f[1].S, f[2].S)
}

// percentile reads the p-quantile from an ascending-sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
