package experiments

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// maxReaderStall is the hard bound on a single snapshot read while a
// writer transaction is stalled mid-flight. Before MVCC snapshots,
// Database.ReadRelation queued on the per-relation latch and a single
// stalled writer froze every reader for its whole lifetime; with
// snapshot reads, a reader never touches the latch at all.
const maxReaderStall = 100 * time.Millisecond

// ReadersResult summarizes the reader-vs-stalled-writer experiment: N
// goroutines hammering Database.ReadRelation while a writer transaction
// sits mid-statement, latch held, dirty pages claimed, never
// committing.
type ReadersResult struct {
	Readers   int
	NFRTuples int

	BaselineReads   int     // reads completed with no writer in flight
	BaselinePerSec  float64 // baseline throughput
	BaselineMaxMs   float64 // slowest single read with no writer in flight
	StalledReads    int     // reads completed under the stalled writer
	StalledPerSec   float64 // throughput under the stalled writer
	MaxReadMs       float64 // slowest single read under the stalled writer
	ThroughputRatio float64 // stalled / baseline

	// NonBlocking: no read under the stalled writer took more than the
	// 100ms stall bound beyond the idle baseline's own worst read — a
	// read may be slow (pool-mutex contention hits the idle fleet too)
	// but it must not WAIT on the writer (pre-MVCC, every read blocked
	// for the writer's whole lifetime). ThroughputOK: stalled
	// throughput held at ≥ 1/4 of the idle baseline (pre-MVCC it was
	// zero).
	NonBlocking  bool
	ThroughputOK bool
}

// RunReaders builds an enrollment database, then measures snapshot-read
// throughput twice over the same wall-clock window: once idle and once
// with a writer transaction stalled mid-statement on the relation. The
// acceptance bar (enforced by nfr-bench and CI): no reader may block
// past maxReaderStall and throughput must not collapse — committed-
// snapshot reads take no latch, so a stalled writer is invisible to
// them.
func RunReaders(w io.Writer, dir string, seed int64, readers, students int) (ReadersResult, error) {
	e := workload.GenEnrollment(seed, workload.EnrollmentParams{
		Students: students, CoursePool: 80, ClubPool: 15, SemesterPool: 8,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	def := engine.RelationDef{
		Name:   "R1",
		Schema: e.R1.Schema(),
		Order:  schema.MustPermOf(e.R1.Schema(), "Course", "Club", "Student"),
	}
	ctx := context.Background()
	db, err := engine.Open(filepath.Join(dir, "readers.nfrs"), engine.WithPoolPages(128))
	if err != nil {
		return ReadersResult{}, err
	}
	defer db.Close()
	if err := db.Create(def); err != nil {
		return ReadersResult{}, err
	}
	load, err := db.Begin(ctx)
	if err != nil {
		return ReadersResult{}, err
	}
	if _, err := load.InsertMany("R1", e.R1.Expand()); err != nil {
		return ReadersResult{}, err
	}
	if err := load.Commit(); err != nil {
		return ReadersResult{}, err
	}
	res := ReadersResult{Readers: readers}

	// measure runs the reader fleet for one fixed window and reports
	// completed reads plus the slowest single read.
	const window = 250 * time.Millisecond
	measure := func() (int, time.Duration, error) {
		var (
			wg       sync.WaitGroup
			total    int64
			maxNanos int64
			firstErr atomic.Value
		)
		deadline := time.Now().Add(window)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					t0 := time.Now()
					rel, err := db.ReadRelation(ctx, "R1")
					d := time.Since(t0)
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					if rel.Len() == 0 {
						firstErr.CompareAndSwap(nil, fmt.Errorf("snapshot read returned an empty relation"))
						return
					}
					atomic.AddInt64(&total, 1)
					for {
						cur := atomic.LoadInt64(&maxNanos)
						if int64(d) <= cur || atomic.CompareAndSwapInt64(&maxNanos, cur, int64(d)) {
							break
						}
					}
				}
			}()
		}
		wg.Wait()
		if err, _ := firstErr.Load().(error); err != nil {
			return 0, 0, err
		}
		return int(total), time.Duration(atomic.LoadInt64(&maxNanos)), nil
	}

	// one warm-up read so the first measured window is not charged for
	// faulting the heap into the pool
	warm, err := db.ReadRelation(ctx, "R1")
	if err != nil {
		return res, err
	}
	res.NFRTuples = warm.Len()

	base, baseMax, err := measure()
	if err != nil {
		return res, err
	}
	res.BaselineReads = base
	res.BaselinePerSec = float64(base) / window.Seconds()
	res.BaselineMaxMs = float64(baseMax) / float64(time.Millisecond)

	// stall a writer mid-transaction: the statement has run (latch
	// taken, pages claimed and dirtied) but commit never comes
	tx, err := db.Begin(ctx)
	if err != nil {
		return res, err
	}
	if _, err := tx.Insert("R1", tuple.FlatOfStrings("zz-student", "zz-course", "zz-club")); err != nil {
		return res, err
	}
	stalled, maxD, err := measure()
	if rerr := tx.Rollback(); rerr != nil && err == nil {
		err = rerr
	}
	if err != nil {
		return res, err
	}
	res.StalledReads = stalled
	res.StalledPerSec = float64(stalled) / window.Seconds()
	res.MaxReadMs = float64(maxD) / float64(time.Millisecond)
	if base > 0 {
		res.ThroughputRatio = float64(stalled) / float64(base)
	}
	res.NonBlocking = maxD <= maxReaderStall+baseMax
	res.ThroughputOK = stalled*4 >= base

	fmt.Fprintf(w, "D6 — snapshot readers vs a stalled writer\n")
	fmt.Fprintf(w, "  %d readers over %d NFR tuples, %s windows\n", readers, res.NFRTuples, window)
	fmt.Fprintf(w, "  idle: %d reads (%.0f/s); stalled writer: %d reads (%.0f/s), ratio %.2f\n",
		res.BaselineReads, res.BaselinePerSec, res.StalledReads, res.StalledPerSec, res.ThroughputRatio)
	fmt.Fprintf(w, "  slowest read: %.1fms stalled vs %.1fms idle (stall bound %s); non-blocking: %v, throughput held: %v\n",
		res.MaxReadMs, res.BaselineMaxMs, maxReaderStall, res.NonBlocking, res.ThroughputOK)
	return res, nil
}
