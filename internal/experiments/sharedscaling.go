package experiments

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/tuple"
)

// SharedScalingResult summarizes the same-relation write-scaling
// experiment: every client hammers ONE sharded relation, so throughput
// can only scale if the per-shard write pipeline batches concurrent
// statements under shared commit fsyncs (and the shards spread the
// maintenance work across independent latches).
type SharedScalingResult struct {
	Clients   int
	PerClient int
	Shards    int

	// BaselineStmtsPerSec is one client running the same per-client
	// workload alone: the un-batched cost of a statement (each pays its
	// own commit fsync).
	BaselineStmtsPerSec float64

	Statements       int
	Seconds          float64
	StatementsPerSec float64
	// Scaling = StatementsPerSec / BaselineStmtsPerSec: >1 means the
	// pipeline turned concurrency into throughput on a single relation.
	Scaling float64

	WALFsyncs          int
	WALBatches         int
	FsyncsPerStatement float64

	// pipeline accounting for the hot relation
	PipelineBatches  int64
	PipelineOps      int64
	PipelineMaxBatch int64
	LatchWaits       int64

	// per-statement latency of the scaled phase
	P50Micros float64
	P99Micros float64

	// the hot relation equals the single-threaded oracle, live and
	// after a close/reopen, with durable indexes verified
	Equivalent bool
}

// sharedScalingFlats synthesizes client c's statements: distinct flat
// tuples whose students spread across every shard chain while courses
// and clubs repeat enough to exercise real Section-4 compositions.
func sharedScalingFlats(seed int64, c, n int) []tuple.Flat {
	out := make([]tuple.Flat, 0, n)
	for i := 0; i < n; i++ {
		k := int(seed)*911 + c*131 + i
		// distinct students dominate (they spread across shard chains and
		// keep each statement's maintenance cost flat); every 8th
		// statement reuses a student so compositions still happen
		s := fmt.Sprintf("s%d_%d", c, i)
		if i%8 == 7 {
			s = fmt.Sprintf("s%d_%d", c, i-1)
		}
		out = append(out, tuple.FlatOfStrings(
			s,
			fmt.Sprintf("c%d_%d", c, i),
			fmt.Sprintf("b%d", k%5),
		))
	}
	return out
}

// RunSharedScaling measures write throughput on ONE shared relation:
// first one client alone (the per-statement fsync baseline), then
// clients goroutines concurrently. Both phases run the same per-client
// statement count against a fresh Shards=shards relation, and the
// concurrent phase is verified against a single-threaded in-memory
// oracle live and across a reopen.
func RunSharedScaling(w io.Writer, dir string, seed int64, clients, perClient, shards, poolPages int) (SharedScalingResult, error) {
	res := SharedScalingResult{Clients: clients, PerClient: perClient, Shards: shards}
	sch := schema.MustOf("Student", "Course", "Club")
	def := engine.RelationDef{
		Name:   "hot",
		Schema: sch,
		Order:  schema.MustPermOf(sch, "Course", "Club", "Student"),
		Shards: shards,
	}

	// phase 1: baseline — ONE client issues the ENTIRE workload
	// sequentially into its own file. Same statements, same final
	// relation, but no concurrency: every statement is a batch of one
	// and pays its own commit fsync. This is the 1/fsync wall the
	// pipeline exists to break.
	{
		db, err := engine.Open(filepath.Join(dir, "baseline.nfrs"), engine.WithPoolPages(poolPages))
		if err != nil {
			return res, err
		}
		if err := db.Create(def); err != nil {
			db.Close()
			return res, err
		}
		total := 0
		start := time.Now()
		for c := 0; c < clients; c++ {
			for _, f := range sharedScalingFlats(seed, c, perClient) {
				if _, err := db.Insert("hot", f); err != nil {
					db.Close()
					return res, err
				}
				total++
			}
		}
		secs := time.Since(start).Seconds()
		if err := db.Close(); err != nil {
			return res, err
		}
		if secs > 0 {
			res.BaselineStmtsPerSec = float64(total) / secs
		}
	}

	// phase 2: the same per-client load from N clients at once
	path := filepath.Join(dir, "shared.nfrs")
	db, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return res, err
	}
	if err := db.Create(def); err != nil {
		db.Close()
		return res, err
	}
	oracle := engine.New()
	oracleDef := def
	oracleDef.Shards = 0 // the oracle stays a classic single-chain relation
	if err := oracle.Create(oracleDef); err != nil {
		db.Close()
		return res, err
	}
	flats := make([][]tuple.Flat, clients)
	for c := 0; c < clients; c++ {
		flats[c] = sharedScalingFlats(seed, c, perClient)
		if _, err := oracle.InsertMany("hot", flats[c]); err != nil {
			db.Close()
			return res, err
		}
	}

	ws0, _ := db.WALStats()
	lat := make([][]time.Duration, clients)
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat[c] = make([]time.Duration, 0, perClient)
			for i, f := range flats[c] {
				t0 := time.Now()
				ch, err := db.Insert("hot", f)
				lat[c] = append(lat[c], time.Since(t0))
				if err != nil {
					errCh <- fmt.Errorf("client %d stmt %d: %w", c, i, err)
					return
				}
				if !ch {
					errCh <- fmt.Errorf("client %d stmt %d: no-op (workload must be all-changing)", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		db.Close()
		return res, err
	}
	ws1, _ := db.WALStats()
	res.Statements = clients * perClient
	res.WALFsyncs = ws1.Fsyncs - ws0.Fsyncs
	res.WALBatches = ws1.Batches - ws0.Batches
	res.LatchWaits = db.LatchWaits()
	if res.Seconds > 0 {
		res.StatementsPerSec = float64(res.Statements) / res.Seconds
	}
	if res.Statements > 0 {
		res.FsyncsPerStatement = float64(res.WALFsyncs) / float64(res.Statements)
	}
	if res.BaselineStmtsPerSec > 0 {
		res.Scaling = res.StatementsPerSec / res.BaselineStmtsPerSec
	}
	if ps, ok := db.PipelineStats()["hot"]; ok {
		res.PipelineBatches = ps.Batches
		res.PipelineOps = ps.Ops
		res.PipelineMaxBatch = ps.MaxBatch
	}
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		res.P50Micros = float64(all[len(all)/2].Microseconds())
		res.P99Micros = float64(all[len(all)*99/100].Microseconds())
	}

	verify := func(d *engine.Database) (bool, error) {
		got, err := d.ReadRelation(context.Background(), "hot")
		if err != nil {
			return false, err
		}
		want, err := oracle.ReadRelation(context.Background(), "hot")
		if err != nil {
			return false, err
		}
		return got.Equal(want) && sameExpansion(got, want), nil
	}
	live, err := verify(db)
	if err != nil {
		db.Close()
		return res, err
	}
	if err := db.VerifyIndexes(); err != nil {
		db.Close()
		return res, fmt.Errorf("live index verification: %w", err)
	}
	if err := db.Close(); err != nil {
		return res, err
	}
	db2, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return res, fmt.Errorf("reopen after shared-scaling run: %w", err)
	}
	defer db2.Close()
	reopened, err := verify(db2)
	if err != nil {
		return res, err
	}
	if err := db2.VerifyIndexes(); err != nil {
		return res, fmt.Errorf("reopened index verification: %w", err)
	}
	res.Equivalent = live && reopened

	fmt.Fprintf(w, "D5 — same-relation write scaling (%d shards, per-shard pipelines)\n", shards)
	fmt.Fprintf(w, "  baseline: 1 client × %d statements: %.0f stmts/s (one fsync each)\n",
		clients*perClient, res.BaselineStmtsPerSec)
	fmt.Fprintf(w, "  loaded:   %d clients × %d statements: %.0f stmts/s → %.2fx scaling\n",
		clients, perClient, res.StatementsPerSec, res.Scaling)
	fmt.Fprintf(w, "  pipeline: %d statements in %d batches (max batch %d), %.3f fsyncs/statement, %d latch waits\n",
		res.PipelineOps, res.PipelineBatches, res.PipelineMaxBatch, res.FsyncsPerStatement, res.LatchWaits)
	fmt.Fprintf(w, "  latency:  p50 %.0fµs  p99 %.0fµs\n", res.P50Micros, res.P99Micros)
	fmt.Fprintf(w, "  hot relation equivalent to single-threaded oracle (live + reopened): %v\n", res.Equivalent)
	return res, nil
}
