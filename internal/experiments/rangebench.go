package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/workload"
)

// RangeResult summarizes the range-scan experiment: the index pages an
// ordered B+tree scan of a key window reads, against the budget the
// structure promises (descent + the leaves actually holding matching
// keys) and the full-heap price a scan without the index would pay.
type RangeResult struct {
	Students   int
	NFRTuples  int
	FlatTuples int
	HeapPages  int // pages a full heap scan reads (the no-index price)
	InnerPages int `json:"inner_pages"` // B+tree meta + inner pages
	LeafPages  int `json:"leaf_pages"`  // B+tree leaf pages (whole tree)

	MatchingFlats int // flat tuples whose Student falls in the window
	IndexPages    int // index pages the window scan actually read
	Budget        int // the bound: descent + matching-leaf allowance

	OracleOK bool // index fetch + window filter ≡ heap scan + window filter
	Bounded  bool // IndexPages within Budget AND strictly below HeapPages
}

// rangeBudget is the page bound a B+tree window scan must respect:
// every inner page (a generous stand-in for the O(height) descent),
// plus the leaves that can hold the window's keys — the window covers
// fraction f of the key space, leaves are at least half full after
// splits, so 2·⌈f·L⌉ leaves plus one boundary leaf per side.
func rangeBudget(inner, leaf int, f float64) int {
	matching := int(f*float64(leaf)) + 1 // ⌈f·L⌉
	return inner + 2*matching + 2
}

// RunRange builds an enrollment database fixed on Student, closes it
// cleanly, reopens it at the store layer, and scans one Student window
// through the B+tree range index. The acceptance bars (enforced by
// nfr-bench): the scan's result, filtered to the window, must equal the
// heap-scan oracle under the same filter; and the scan must read at
// most O(height + matching leaves) index pages — strictly fewer pages
// than the full heap scan it replaces. A scan that degenerates to
// walking the whole leaf chain (or worse, the heap) fails the gate.
func RunRange(w io.Writer, dir string, seed int64, students, poolPages int) (RangeResult, error) {
	if students > 1000 {
		// student atoms render as s%03d; beyond 999 the lexicographic
		// order no longer matches the numeric one and the window is junk
		return RangeResult{}, fmt.Errorf("range experiment supports at most 1000 students")
	}
	e := workload.GenEnrollment(seed, workload.EnrollmentParams{
		Students: students, CoursePool: 80, ClubPool: 15, SemesterPool: 8,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	def := engine.RelationDef{
		Name:   "R1",
		Schema: e.R1.Schema(),
		Order:  schema.MustPermOf(e.R1.Schema(), "Course", "Club", "Student"),
	}
	path := filepath.Join(dir, "range.nfrs")
	db, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return RangeResult{}, err
	}
	if err := db.Create(def); err != nil {
		db.Close()
		return RangeResult{}, err
	}
	if _, err := db.InsertMany("R1", e.R1.Expand()); err != nil {
		db.Close()
		return RangeResult{}, err
	}
	if err := db.Close(); err != nil {
		return RangeResult{}, err
	}

	st, err := store.Open(path, store.Options{PoolPages: poolPages})
	if err != nil {
		return RangeResult{}, err
	}
	defer st.Close()
	rs, ok := st.Rel("R1")
	if !ok {
		return RangeResult{}, fmt.Errorf("reopened store lost R1")
	}

	res := RangeResult{Students: students, NFRTuples: rs.Len()}
	hs, err := rs.HeapStats()
	if err != nil {
		return res, err
	}
	res.HeapPages = hs.Pages
	counts, err := rs.IndexPageCounts()
	if err != nil {
		return res, err
	}
	res.InnerPages = counts.BTreeInner
	res.LeafPages = counts.BTreeLeaf

	// the window: the second quarter of the student key space,
	// half-open [lo, hi) like the query language's a >= lo AND a < hi
	lo := value.NewString(fmt.Sprintf("s%03d", students/4))
	hi := value.NewString(fmt.Sprintf("s%03d", students/2))
	frac := float64(students/2-students/4) / float64(students)
	inWindow := func(a value.Atom) bool {
		return value.Compare(a, lo) >= 0 && value.Compare(a, hi) < 0
	}

	// the heap-scan oracle: every flat tuple whose Student key falls in
	// the window, off a full Load of the relation
	full, err := rs.Load()
	if err != nil {
		return res, err
	}
	keyIdx := full.Schema().Index("Student")
	want := make(map[string]bool)
	for _, f := range full.Expand() {
		res.FlatTuples++
		if inWindow(f[keyIdx]) {
			want[f.Key()] = true
		}
	}
	res.MatchingFlats = len(want)

	// the measured leg: one indexed window scan. The fetch is a
	// superset (a tuple qualifies if ANY fixed atom is in range), so the
	// window filter is re-applied at the flat level — the planner's
	// residual contract.
	ts, pages, err := rs.ScanFixedRange(
		&store.RangeBound{Atom: lo, Incl: true},
		&store.RangeBound{Atom: hi, Incl: false})
	if err != nil {
		return res, err
	}
	res.IndexPages = pages
	got := make(map[string]bool)
	for _, t := range ts {
		for _, f := range t.Expand() {
			if inWindow(f[keyIdx]) {
				got[f.Key()] = true
			}
		}
	}
	res.OracleOK = len(got) == len(want)
	if res.OracleOK {
		for k := range want {
			if !got[k] {
				res.OracleOK = false
				break
			}
		}
	}

	res.Budget = rangeBudget(res.InnerPages, res.LeafPages, frac)
	res.Bounded = res.IndexPages <= res.Budget && res.IndexPages < res.HeapPages

	fmt.Fprintf(w, "D5 — range scan (B+tree window vs full heap)\n")
	fmt.Fprintf(w, "  %d students → %d NFR tuples (%d flats) on %d heap pages; tree: %d inner + %d leaf page(s)\n",
		students, res.NFRTuples, res.FlatTuples, res.HeapPages, res.InnerPages, res.LeafPages)
	fmt.Fprintf(w, "  window [%s .. %s) matched %d flats reading %d index page(s) — budget %d (descent + matching leaves), heap price %d\n",
		lo, hi, res.MatchingFlats, res.IndexPages, res.Budget, res.HeapPages)
	fmt.Fprintf(w, "  window ≡ heap-scan oracle: %v; page reads bounded: %v\n",
		res.OracleOK, res.Bounded)
	return res, nil
}
