package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Fig3Result summarizes the Fig.-3 classification sweep.
type Fig3Result struct {
	Relations      int
	Irreducible    int // irreducible forms examined (all of them, by construction)
	Canonical      int // of those, canonical for some permutation
	FixedSomewhere int // fixed on at least one single domain
	CanonicalFixed int // canonical and fixed
	ContainmentOK  bool
}

// RunFig3 validates Figure 3's containment picture empirically:
// canonical forms are a subset of irreducible forms, fixed NFRs
// overlap both, and the regions are all inhabited. For `trials` random
// relations it derives irreducible forms (greedy, randomized) and
// classifies each.
func RunFig3(w io.Writer, trials int, seed int64) Fig3Result {
	rng := rand.New(rand.NewSource(seed))
	res := Fig3Result{ContainmentOK: true}
	for i := 0; i < trials; i++ {
		deg := 2 + rng.Intn(2)
		names := []string{"A", "B", "C"}[:deg]
		s := schema.MustOf(names...)
		r := workload.GenUniform(rng.Int63(), 3+rng.Intn(8), deg, 3)
		if r.Schema().Degree() != deg {
			r = workload.GenUniform(rng.Int63(), 3+rng.Intn(8), deg, 3)
		}
		_ = s
		ir, _ := r.IrreducibleGreedy(rng)
		res.Relations++
		res.Irreducible++
		_, isCanon := ir.IsCanonical()
		fixed := len(ir.FixedDomains()) > 0
		if isCanon {
			res.Canonical++
		}
		if fixed {
			res.FixedSomewhere++
		}
		if isCanon && fixed {
			res.CanonicalFixed++
		}
		// containment: canonical implies irreducible — verify directly
		if isCanon && !ir.IsIrreducible() {
			res.ContainmentOK = false
		}
	}
	fmt.Fprintln(w, "Fig. 3 — classification of randomly derived irreducible forms")
	fmt.Fprintf(w, "  relations examined:        %d\n", res.Relations)
	fmt.Fprintf(w, "  irreducible (all):         %d\n", res.Irreducible)
	fmt.Fprintf(w, "  ... canonical for some P:  %d\n", res.Canonical)
	fmt.Fprintf(w, "  ... fixed on some domain:  %d\n", res.FixedSomewhere)
	fmt.Fprintf(w, "  ... canonical AND fixed:   %d\n", res.CanonicalFixed)
	fmt.Fprintf(w, "  canonical ⊆ irreducible:   %v\n", res.ContainmentOK)
	return res
}

// TheoremCheck is a pass/fail summary for a theorem sweep.
type TheoremCheck struct {
	Trials int
	Passes int
}

// Ok reports whether every trial passed.
func (t TheoremCheck) Ok() bool { return t.Trials > 0 && t.Passes == t.Trials }

// RunTheorem1 validates Theorem 1 (unique R*): random relations pushed
// through random composition/decomposition walks always expand to the
// same flat set.
func RunTheorem1(w io.Writer, trials int, seed int64) TheoremCheck {
	rng := rand.New(rand.NewSource(seed))
	var res TheoremCheck
	for i := 0; i < trials; i++ {
		r := workload.GenUniform(rng.Int63(), 4+rng.Intn(10), 3, 3)
		want := r.ExpandRelation()
		// random walk: a few greedy compositions, then some random
		// decompositions, then more compositions
		ir, _ := r.IrreducibleGreedy(rng)
		walk := ir
		for step := 0; step < 5; step++ {
			// decompose a random wide component if any
			done := false
			for ti := 0; ti < walk.Len() && !done; ti++ {
				t := walk.Tuple(ti)
				for d := 0; d < t.Degree(); d++ {
					if t.Set(d).Len() >= 2 {
						walk = walk.Unnest(d)
						done = true
						break
					}
				}
			}
		}
		walk2, _ := walk.IrreducibleGreedy(rng)
		res.Trials++
		if walk2.ExpandRelation().Equal(want) && walk.ExpandRelation().Equal(want) {
			res.Passes++
		}
	}
	fmt.Fprintf(w, "Theorem 1 (unique R*): %d/%d random walks preserved the expansion\n",
		res.Passes, res.Trials)
	return res
}

// RunTheorem2 validates Theorem 2 (canonical-form uniqueness): for
// random relations and permutations, pairwise nests with shuffled
// composition order all converge to the hash-grouped canonical form.
func RunTheorem2(w io.Writer, trials int, seed int64) TheoremCheck {
	rng := rand.New(rand.NewSource(seed))
	var res TheoremCheck
	for i := 0; i < trials; i++ {
		r := workload.GenUniform(rng.Int63(), 4+rng.Intn(10), 3, 3)
		perms := schema.AllPermutations(3)
		p := perms[rng.Intn(len(perms))]
		want, _ := r.Canonical(p)
		ok := true
		cur := r
		for _, attr := range p {
			shuffled, _ := cur.NestPairwise(attr, shuffledPairPicker(rng, attr))
			grouped, _ := cur.Nest(attr)
			if !shuffled.Equal(grouped) {
				ok = false
				break
			}
			cur = grouped
		}
		if ok && !cur.Equal(want) {
			ok = false
		}
		res.Trials++
		if ok {
			res.Passes++
		}
	}
	fmt.Fprintf(w, "Theorem 2 (canonical uniqueness): %d/%d shuffled-order nests matched\n",
		res.Passes, res.Trials)
	return res
}

func shuffledPairPicker(rng *rand.Rand, attr int) func([]tuple.Tuple) (int, int, bool) {
	return func(ts []tuple.Tuple) (int, int, bool) {
		type pr struct{ a, b int }
		var prs []pr
		for a := 0; a < len(ts); a++ {
			for b := a + 1; b < len(ts); b++ {
				if ts[a].AgreeExcept(ts[b], attr) {
					prs = append(prs, pr{a, b})
				}
			}
		}
		if len(prs) == 0 {
			return 0, 0, false
		}
		p := prs[rng.Intn(len(prs))]
		return p.a, p.b, true
	}
}

// RunTheorem3 validates Theorem 3: with a key FD F -> E1..Em (the
// theorem's premise makes F a key), every derived irreducible form is
// fixed on F and each Ei is at most 1:n (never grouped).
func RunTheorem3(w io.Writer, trials int, seed int64) TheoremCheck {
	rng := rand.New(rand.NewSource(seed))
	var res TheoremCheck
	fSet := schema.NewAttrSet("F")
	for i := 0; i < trials; i++ {
		r := workload.GenPlantedFD(rng.Int63(), 20+rng.Intn(40), 2, 4)
		ir, _ := r.IrreducibleGreedy(rng)
		ok := ir.FixedOn(fSet)
		for a := 1; a < r.Schema().Degree(); a++ {
			if !ir.AttrCardinality(a).AtMost(core.OneN) {
				ok = false
			}
		}
		res.Trials++
		if ok {
			res.Passes++
		}
	}
	fmt.Fprintf(w, "Theorem 3 (FD ⇒ fixed + 1:n): %d/%d irreducible forms conformed\n",
		res.Passes, res.Trials)
	return res
}

// Theorem4Result counts fixed and unfixed irreducible forms under a
// planted MVD.
type Theorem4Result struct {
	Trials      int
	ExistsFixed int // trials where some derived form was fixed on F
	SawUnfixed  int // trials where some derived form was NOT fixed on F
}

// RunTheorem4 validates Theorem 4: under MVD F ->-> E1 | rest, an
// irreducible form fixed on F exists (the canonical form nesting F
// last realizes it), while other irreducible forms need not be fixed —
// exactly Example 3's point, at scale.
func RunTheorem4(w io.Writer, trials int, seed int64) Theorem4Result {
	rng := rand.New(rand.NewSource(seed))
	var res Theorem4Result
	fSet := schema.NewAttrSet("F")
	for i := 0; i < trials; i++ {
		r := workload.GenPlantedMVD(rng.Int63(), workload.PlantedParams{
			Groups: 4 + rng.Intn(4), RhsPool: 5, MeanBlock: 2, Extra: 0,
		})
		res.Trials++
		// the canonical form nesting the dependents first is fixed on F
		p := schema.MustPermOf(r.Schema(), "E1", "E2", "F")
		canon, _ := r.Canonical(p)
		if canon.FixedOn(fSet) {
			res.ExistsFixed++
		}
		// randomized greedy forms may lose fixedness
		for k := 0; k < 10; k++ {
			ir, _ := r.IrreducibleGreedy(rng)
			if !ir.FixedOn(fSet) {
				res.SawUnfixed++
				break
			}
		}
	}
	fmt.Fprintf(w, "Theorem 4 (MVD ⇒ ∃ fixed irreducible): fixed canonical form found in %d/%d trials; non-fixed irreducible forms observed in %d trials\n",
		res.ExistsFixed, res.Trials, res.SawUnfixed)
	return res
}

// RunTheorem5 validates Theorem 5: for random relations and all
// permutations of small degree, V_P(R) is fixed on the attributes
// nested after P[0] — at most n−1 domains.
func RunTheorem5(w io.Writer, trials int, seed int64) TheoremCheck {
	rng := rand.New(rand.NewSource(seed))
	var res TheoremCheck
	for i := 0; i < trials; i++ {
		deg := 3
		r := workload.GenUniform(rng.Int63(), 5+rng.Intn(15), deg, 3)
		ok := true
		for _, p := range schema.AllPermutations(deg) {
			c, _ := r.Canonical(p)
			rest := schema.NewAttrSet()
			for _, idx := range p[1:] {
				rest.Add(r.Schema().Attr(idx).Name)
			}
			if rest.Len() > deg-1 || !c.FixedOn(rest) {
				ok = false
				break
			}
		}
		res.Trials++
		if ok {
			res.Passes++
		}
	}
	fmt.Fprintf(w, "Theorem 5 (canonical fixed on ≤ n−1 domains): %d/%d relations conformed across all permutations\n",
		res.Passes, res.Trials)
	return res
}

// FDsForEnrollment returns the dependency set used in enrollment-based
// experiments (kept here so the CLI and tests agree).
func FDsForEnrollment() []dep.MVD {
	return []dep.MVD{dep.NewMVD([]string{"Student"}, []string{"Course"})}
}
