package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/workload"
)

// DiskResult summarizes the disk-backed engine experiment: buffer-pool
// behaviour, group-commit cost, crash-recovery replay, and the
// equivalence of the paged realization with the in-memory canonical
// form.
type DiskResult struct {
	NFRTuples  int
	FlatTuples int
	Pages      uint32
	Hits       int
	Misses     int
	Evictions  int
	HitRate    float64
	Equivalent bool

	// group commit: WAL cost of the insert workload
	Statements         int
	WALFsyncs          int
	FsyncsPerStatement float64
	PagesLogged        int

	// open-phase I/O (recovery + index rebuild), bucketed out of the
	// hit-rate numbers above
	OpenMisses int

	// crash-recovery leg: the file pair is copied mid-flight (after the
	// last group commit, before any checkpoint) and reopened
	RecoveredBatches    int
	RecoveredPages      int
	RecoveredEquivalent bool
}

// RunDiskEngine drives the Section-2 enrollment workload through a
// disk-backed engine (single paged file + WAL sidecar, write-through
// canonical maintenance with one group commit per statement), re-opens
// the file, and verifies the stored realization answers queries
// identically to an in-memory engine. It also simulates a crash — the
// file pair is snapshotted after the final commit with the WAL still
// unreset — and verifies recovery replays to the same canonical form.
func RunDiskEngine(w io.Writer, dir string, seed int64, students, poolPages int) (DiskResult, error) {
	e := workload.GenEnrollment(seed, workload.EnrollmentParams{
		Students: students, CoursePool: 30, ClubPool: 8, SemesterPool: 6,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	flats := e.R1.Expand()
	def := engine.RelationDef{
		Name:   "R1",
		Schema: e.R1.Schema(),
		Order:  schema.MustPermOf(e.R1.Schema(), "Course", "Club", "Student"),
	}

	mem := engine.New()
	if err := mem.Create(def); err != nil {
		return DiskResult{}, err
	}
	if _, err := mem.InsertMany("R1", flats); err != nil {
		return DiskResult{}, err
	}

	path := filepath.Join(dir, "disk-engine.nfrs")
	db, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return DiskResult{}, err
	}
	if err := db.Create(def); err != nil {
		db.Close()
		return DiskResult{}, err
	}
	var res DiskResult
	ws0, _ := db.WALStats()
	if _, err := db.InsertMany("R1", flats); err != nil {
		db.Close()
		return DiskResult{}, err
	}
	ws1, _ := db.WALStats()
	res.Statements = len(flats)
	res.WALFsyncs = ws1.Fsyncs - ws0.Fsyncs
	res.PagesLogged = ws1.PagesLogged - ws0.PagesLogged
	if res.Statements > 0 {
		res.FsyncsPerStatement = float64(res.WALFsyncs) / float64(res.Statements)
	}
	// read workload: point scans through the buffer pool
	for i := 0; i < 8; i++ {
		if _, err := db.ReadRelation(context.Background(), "R1"); err != nil {
			db.Close()
			return DiskResult{}, err
		}
	}

	// crash leg: snapshot the file pair while the WAL still holds the
	// tail batches (commits write through as they happen, so the data
	// file is current and the sidecar has everything since the last
	// auto-checkpoint). Reopening the copy runs real recovery.
	crash := filepath.Join(dir, "crashed.nfrs")
	if err := copyFile(path, crash); err != nil {
		db.Close()
		return DiskResult{}, err
	}
	if err := copyFile(path+".wal", crash+".wal"); err != nil {
		db.Close()
		return DiskResult{}, err
	}
	if err := db.Close(); err != nil {
		return DiskResult{}, err
	}

	memRel, err := mem.ReadRelation(context.Background(), "R1")
	if err != nil {
		return DiskResult{}, err
	}

	rdb, err := engine.Open(crash)
	if err != nil {
		return DiskResult{}, fmt.Errorf("crash recovery failed: %w", err)
	}
	if ws, ok := rdb.WALStats(); ok {
		res.RecoveredBatches = ws.RecoveredBatches
		res.RecoveredPages = ws.RecoveredPages
	}
	recRel, err := rdb.ReadRelation(context.Background(), "R1")
	if err != nil {
		rdb.Close()
		return DiskResult{}, err
	}
	res.RecoveredEquivalent = memRel.Equal(recRel) && memRel.EquivalentTo(recRel)
	rdb.Close()

	// reopen the cleanly closed file and compare against the in-memory
	// engine
	db2, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return DiskResult{}, err
	}
	defer db2.Close()
	if st, ok := db2.OpenIOStats(); ok {
		res.OpenMisses = st.Misses
	}
	diskRel, err := db2.ReadRelation(context.Background(), "R1")
	if err != nil {
		return DiskResult{}, err
	}
	res.NFRTuples = diskRel.Len()
	res.FlatTuples = diskRel.ExpansionSize()
	res.Equivalent = memRel.Equal(diskRel) && memRel.EquivalentTo(diskRel)
	if fi, err := os.Stat(path); err == nil {
		res.Pages = uint32(fi.Size() / storage.PageSize)
	}
	hits, misses, ev, _ := db2.PoolStats()
	res.Hits, res.Misses, res.Evictions = hits, misses, ev
	if hits+misses > 0 {
		res.HitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "D1 — disk-backed engine (paged file + WAL, %d-page buffer pool)\n", poolPages)
	fmt.Fprintf(w, "  %d students → %d flat tuples stored as %d NFR tuples in %d pages\n",
		students, res.FlatTuples, res.NFRTuples, res.Pages)
	fmt.Fprintf(w, "  group commit: %d statements → %d WAL fsyncs (%.3f /statement), %d page images logged\n",
		res.Statements, res.WALFsyncs, res.FsyncsPerStatement, res.PagesLogged)
	fmt.Fprintf(w, "  crash recovery: replayed %d batches / %d page images; canonical form preserved: %v\n",
		res.RecoveredBatches, res.RecoveredPages, res.RecoveredEquivalent)
	fmt.Fprintf(w, "  buffer pool: %d hits / %d misses (hit rate %.1f%%), %d evictions; open-phase I/O bucketed separately (%d misses)\n",
		res.Hits, res.Misses, 100*res.HitRate, res.Evictions, res.OpenMisses)
	fmt.Fprintf(w, "  reopened realization equivalent to in-memory canonical form: %v\n",
		res.Equivalent)
	return res, nil
}

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}
