package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/workload"
)

// DiskResult summarizes the disk-backed engine experiment: buffer-pool
// behaviour and the equivalence of the paged realization with the
// in-memory canonical form.
type DiskResult struct {
	NFRTuples  int
	FlatTuples int
	Pages      uint32
	Hits       int
	Misses     int
	Evictions  int
	HitRate    float64
	Equivalent bool
}

// RunDiskEngine drives the Section-2 enrollment workload through a
// disk-backed engine (single paged file, write-through canonical
// maintenance), re-opens the file, and verifies the stored realization
// answers queries identically to an in-memory engine. It reports
// buffer-pool hit/miss/eviction counts — the cost side of the paper's
// "realization view".
func RunDiskEngine(w io.Writer, dir string, seed int64, students, poolPages int) (DiskResult, error) {
	e := workload.GenEnrollment(seed, workload.EnrollmentParams{
		Students: students, CoursePool: 30, ClubPool: 8, SemesterPool: 6,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	flats := e.R1.Expand()
	def := engine.RelationDef{
		Name:   "R1",
		Schema: e.R1.Schema(),
		Order:  schema.MustPermOf(e.R1.Schema(), "Course", "Club", "Student"),
	}

	mem := engine.New()
	if err := mem.Create(def); err != nil {
		return DiskResult{}, err
	}
	if _, err := mem.InsertMany("R1", flats); err != nil {
		return DiskResult{}, err
	}

	path := filepath.Join(dir, "disk-engine.nfrs")
	db, err := engine.OpenWith(path, poolPages)
	if err != nil {
		return DiskResult{}, err
	}
	if err := db.Create(def); err != nil {
		db.Close()
		return DiskResult{}, err
	}
	if _, err := db.InsertMany("R1", flats); err != nil {
		db.Close()
		return DiskResult{}, err
	}
	// read workload: point scans through the buffer pool
	for i := 0; i < 8; i++ {
		if _, err := db.ReadRelation("R1"); err != nil {
			db.Close()
			return DiskResult{}, err
		}
	}
	if err := db.Close(); err != nil {
		return DiskResult{}, err
	}

	// reopen and compare against the in-memory engine
	db2, err := engine.OpenWith(path, poolPages)
	if err != nil {
		return DiskResult{}, err
	}
	defer db2.Close()
	diskRel, err := db2.ReadRelation("R1")
	if err != nil {
		return DiskResult{}, err
	}
	memRel, err := mem.ReadRelation("R1")
	if err != nil {
		return DiskResult{}, err
	}
	res := DiskResult{
		NFRTuples:  diskRel.Len(),
		FlatTuples: diskRel.ExpansionSize(),
		Equivalent: memRel.Equal(diskRel) && memRel.EquivalentTo(diskRel),
	}
	if fi, err := os.Stat(path); err == nil {
		res.Pages = uint32(fi.Size() / storage.PageSize)
	}
	hits, misses, ev, _ := db2.PoolStats()
	res.Hits, res.Misses, res.Evictions = hits, misses, ev
	if hits+misses > 0 {
		res.HitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "D1 — disk-backed engine (paged file, %d-page buffer pool)\n", poolPages)
	fmt.Fprintf(w, "  %d students → %d flat tuples stored as %d NFR tuples in %d pages\n",
		students, res.FlatTuples, res.NFRTuples, res.Pages)
	fmt.Fprintf(w, "  buffer pool: %d hits / %d misses (hit rate %.1f%%), %d evictions\n",
		res.Hits, res.Misses, 100*res.HitRate, res.Evictions)
	fmt.Fprintf(w, "  reopened realization equivalent to in-memory canonical form: %v\n",
		res.Equivalent)
	return res, nil
}
