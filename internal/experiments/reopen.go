package experiments

import (
	"context"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/workload"
)

// ReopenResult summarizes the reopen experiment: the open-phase I/O of
// attaching a clean database through the durable hash indexes, against
// the price the old rebuild-on-open design paid (a full heap scan,
// measured live by running the index-vs-heap oracle verification).
type ReopenResult struct {
	Relations int
	NFRTuples int
	HeapPages int // pages across all relation heap chains
	FilePages uint32

	OpenReads       int // pool misses store.Open consumed on the clean reopen
	EngineOpenReads int // pool misses a clean engine.Open consumed (lazy attach: no heap scan)
	Budget          int // the bound: catalog + free list + index directories + slack
	OracleReads     int // pool misses one full heap-scan verification costs (the old open price)

	IndexOK bool // durable index ≡ rebuilt-from-heap oracle
	Bounded bool // OpenReads AND EngineOpenReads within Budget and below HeapPages
}

// reopenBudget mirrors the store regression test's bound: a clean open
// may read the catalog chain, the free-list chain, and each relation's
// two index directories and B+tree meta page — never the heaps.
func reopenBudget(rels int) int { return 4 + 5*rels }

// RunReopen builds an enrollment database, closes it cleanly, reopens
// it at the store layer, and reports the open-phase page reads. The
// acceptance bar (enforced by nfr-bench): a clean open must stay
// within the catalog + index-metadata budget and strictly below the
// heap size — a full heap scan on open means the durable index
// regressed to rebuild-on-open.
func RunReopen(w io.Writer, dir string, seed int64, students, poolPages int) (ReopenResult, error) {
	e := workload.GenEnrollment(seed, workload.EnrollmentParams{
		Students: students, CoursePool: 80, ClubPool: 15, SemesterPool: 8,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	def := engine.RelationDef{
		Name:   "R1",
		Schema: e.R1.Schema(),
		Order:  schema.MustPermOf(e.R1.Schema(), "Course", "Club", "Student"),
	}
	path := filepath.Join(dir, "reopen.nfrs")
	db, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return ReopenResult{}, err
	}
	if err := db.Create(def); err != nil {
		db.Close()
		return ReopenResult{}, err
	}
	if _, err := db.InsertMany("R1", e.R1.Expand()); err != nil {
		db.Close()
		return ReopenResult{}, err
	}
	memRel, err := db.ReadRelation(context.Background(), "R1")
	if err != nil {
		db.Close()
		return ReopenResult{}, err
	}
	if err := db.Close(); err != nil {
		return ReopenResult{}, err
	}

	// measured leg 1: a clean ENGINE reopen. Lazy canonical
	// materialization means engine.Open attaches every relation without
	// reading a single heap page — open-phase I/O is store.Open's
	// catalog + index-directory reads (OpenIOStats) and the engine adds
	// nothing on top (steady-state counters stay zero until a read).
	edb, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return ReopenResult{}, err
	}
	var res ReopenResult
	if open, ok := edb.OpenIOStats(); ok {
		res.EngineOpenReads = open.Misses
	}
	if all, ok := edb.AllPoolStats(); ok {
		res.EngineOpenReads += all.Misses
	}
	reRel, err := edb.ReadRelation(context.Background(), "R1")
	if err != nil {
		edb.Close()
		return res, err
	}
	if !reRel.Equal(memRel) {
		edb.Close()
		return res, fmt.Errorf("engine reopen content diverged from the written relation")
	}
	if err := edb.Close(); err != nil {
		return res, err
	}

	// measured leg 2: a clean store-level reopen
	st, err := store.Open(path, store.Options{PoolPages: poolPages})
	if err != nil {
		return ReopenResult{}, err
	}
	defer st.Close()
	open := st.OpenIOStats()
	res.OpenReads = open.Misses
	res.Relations = len(st.Relations())
	res.Budget = reopenBudget(res.Relations)
	res.FilePages = st.NumPages()

	// the oracle pass doubles as the "before" price: verifying the
	// index against the heap reads every heap and index page — exactly
	// what rebuild-on-open used to spend before any query ran. The
	// steady-state counters start at zero when Open returns (open-phase
	// I/O lives in OpenIOStats), so this delta is the oracle pass alone.
	res.IndexOK = st.VerifyIndexes() == nil
	after := st.AllPoolStats()
	res.OracleReads = after.Misses

	for _, name := range st.Relations() {
		rs, _ := st.Rel(name)
		res.NFRTuples += rs.Len()
		hs, err := rs.HeapStats()
		if err != nil {
			return res, err
		}
		res.HeapPages += hs.Pages
	}
	rel, err := rs1(st).Load()
	if err != nil {
		return res, err
	}
	if !rel.Equal(memRel) {
		return res, fmt.Errorf("reopened content diverged from the written relation")
	}
	res.Bounded = res.OpenReads <= res.Budget && res.OpenReads < res.HeapPages &&
		res.EngineOpenReads <= res.Budget && res.EngineOpenReads < res.HeapPages

	fmt.Fprintf(w, "D4 — reopen (durable hash indexes vs rebuild-on-open)\n")
	fmt.Fprintf(w, "  %d students → %d NFR tuples on %d heap pages (%d-page file, %d relation(s))\n",
		students, res.NFRTuples, res.HeapPages, res.FilePages, res.Relations)
	fmt.Fprintf(w, "  clean store open read %d page(s), clean engine open %d — budget %d (catalog + index directories); the old rebuild-on-open price was %d page reads\n",
		res.OpenReads, res.EngineOpenReads, res.Budget, res.OracleReads)
	fmt.Fprintf(w, "  durable index ≡ heap-rebuilt oracle: %v; open bounded (no heap scan): %v\n",
		res.IndexOK, res.Bounded)
	return res, nil
}

func rs1(st *store.Store) *store.RelStore {
	rs, _ := st.Rel("R1")
	return rs
}
