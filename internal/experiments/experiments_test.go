package experiments

import (
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
)

func TestRunFig1MatchesPaperShape(t *testing.T) {
	var b strings.Builder
	n1, n2 := RunFig1(&b)
	// R1: students {s1,s3} group (same courses + club), s2 separate.
	if n1.Len() != 2 {
		t.Errorf("Fig1 R1 has %d tuples, want 2:\n%v", n1.Len(), n1)
	}
	if n1.ExpansionSize() != 9 {
		t.Errorf("Fig1 R1 expansion = %d", n1.ExpansionSize())
	}
	// R2 exactly as printed: [{s1,s2,s3} {c1,c2} t1], [{s1,s3} c3 t1],
	// [s2 c3 t2] — 3 tuples covering 9 flats.
	if n2.ExpansionSize() != 9 {
		t.Errorf("Fig1 R2 expansion = %d", n2.ExpansionSize())
	}
	if n2.Len() != 3 {
		t.Errorf("Fig1 R2 has %d tuples, want 3:\n%v", n2.Len(), n2)
	}
	want := core.MustFromTuples(n2.Schema(), []tuple.Tuple{
		core.TupleOfSets([]string{"s1", "s2", "s3"}, []string{"c1", "c2"}, []string{"t1"}),
		core.TupleOfSets([]string{"s1", "s3"}, []string{"c3"}, []string{"t1"}),
		core.TupleOfSets([]string{"s2"}, []string{"c3"}, []string{"t2"}),
	})
	if !n2.Equal(want) {
		t.Errorf("Fig1 R2 differs from the printed figure:\n%v", n2)
	}
	out := b.String()
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "Semester") {
		t.Error("output missing figure headers")
	}
}

func TestRunFig2UpdateSemantics(t *testing.T) {
	var b strings.Builder
	u1, u2, ops1, ops2 := RunFig2(&b)
	// all (s1, c1, ·) gone
	for _, f := range u1.Expand() {
		if f[0].Str() == "s1" && f[1].Str() == "c1" {
			t.Error("R1 still contains (s1, c1, ·)")
		}
	}
	for _, f := range u2.Expand() {
		if f[0].Str() == "s1" && f[1].Str() == "c1" {
			t.Error("R2 still contains (s1, c1, ·)")
		}
	}
	// R1 loses exactly 1 flat tuple (one club), R2 exactly 1
	if u1.ExpansionSize() != 8 {
		t.Errorf("R1 expansion after update = %d", u1.ExpansionSize())
	}
	if u2.ExpansionSize() != 8 {
		t.Errorf("R2 expansion after update = %d", u2.ExpansionSize())
	}
	// Fig. 2's printed R2 has 4 tuples; our maintained canonical form
	// also has 4 (same R*, grouping may differ — the paper's hand
	// surgery is an irreducible form, not necessarily V_P).
	if u2.Len() != 4 {
		t.Errorf("R2 after update has %d tuples, want 4:\n%v", u2.Len(), u2)
	}
	// both stayed canonical
	r1o, r2o := Fig1Orders(u1, u2)
	if !u1.IsCanonicalFor(r1o) || !u2.IsCanonicalFor(r2o) {
		t.Error("updated relations not canonical")
	}
	if ops1.Compositions+ops1.Decompositions == 0 && ops2.Compositions+ops2.Decompositions == 0 {
		t.Error("no update work recorded")
	}
	_ = ops1
}

func TestRunExample1FindsBothForms(t *testing.T) {
	res := RunExample1(io.Discard)
	if len(res.All) < 2 {
		t.Fatalf("only %d irreducible forms", len(res.All))
	}
	var foundR1, foundR2 bool
	for _, f := range res.All {
		if f.Equal(res.R1) {
			foundR1 = true
		}
		if f.Equal(res.R2) {
			foundR2 = true
		}
	}
	if !foundR1 || !foundR2 {
		t.Errorf("paper forms missing: R1=%v R2=%v", foundR1, foundR2)
	}
}

func TestRunExample2PaperNumbers(t *testing.T) {
	res := RunExample2(io.Discard)
	if res.MinIrreducible != 3 {
		t.Errorf("min irreducible = %d, want 3", res.MinIrreducible)
	}
	if len(res.CanonicalSizes) != 6 {
		t.Fatalf("canonical forms = %d, want 6", len(res.CanonicalSizes))
	}
	for p, n := range res.CanonicalSizes {
		if n != 4 {
			t.Errorf("canonical %s has %d tuples, want 4", p, n)
		}
	}
}

func TestRunExample3PaperClaims(t *testing.T) {
	res := RunExample3(io.Discard)
	if !res.R7Fixed {
		t.Error("R7 must be fixed on A")
	}
	if res.R8Fixed {
		t.Error("R8 must not be fixed on A")
	}
	if res.FormsFixed == 0 || res.FormsUnfixed == 0 {
		t.Errorf("expected both fixed and unfixed forms: %d / %d",
			res.FormsFixed, res.FormsUnfixed)
	}
}

func TestRunFig3Containment(t *testing.T) {
	res := RunFig3(io.Discard, 80, 7)
	if !res.ContainmentOK {
		t.Error("canonical ⊆ irreducible violated")
	}
	if res.Canonical == 0 {
		t.Error("no canonical forms observed")
	}
	if res.Canonical > res.Irreducible {
		t.Error("more canonical than irreducible?")
	}
}

func TestRunTheoremChecks(t *testing.T) {
	if res := RunTheorem1(io.Discard, 40, 3); !res.Ok() {
		t.Errorf("Theorem 1: %d/%d", res.Passes, res.Trials)
	}
	if res := RunTheorem2(io.Discard, 30, 5); !res.Ok() {
		t.Errorf("Theorem 2: %d/%d", res.Passes, res.Trials)
	}
	if res := RunTheorem3(io.Discard, 40, 7); !res.Ok() {
		t.Errorf("Theorem 3: %d/%d", res.Passes, res.Trials)
	}
	t4 := RunTheorem4(io.Discard, 20, 11)
	if t4.ExistsFixed != t4.Trials {
		t.Errorf("Theorem 4 existence: %d/%d", t4.ExistsFixed, t4.Trials)
	}
	if t4.SawUnfixed == 0 {
		t.Error("Theorem 4: expected some non-fixed irreducible forms")
	}
	if res := RunTheorem5(io.Discard, 25, 13); !res.Ok() {
		t.Errorf("Theorem 5: %d/%d", res.Passes, res.Trials)
	}
}

func TestRunTheoremA4CostIndependentOfSize(t *testing.T) {
	bySize, byDegree := RunTheoremA4(io.Discard, []int{100, 400, 1600}, []int{2, 3, 4}, 30, 17)
	if len(bySize) != 3 || len(byDegree) != 3 {
		t.Fatal("row counts")
	}
	small, large := bySize[0], bySize[len(bySize)-1]
	if large.MaxOps > 4*small.MaxOps+8 {
		t.Errorf("per-update cost grew with |R|: %d -> %d", small.MaxOps, large.MaxOps)
	}
	// degree sweep: cost may grow with degree (that is the theorem's
	// allowed direction) — just check it stays finite/sane
	for _, r := range byDegree {
		if r.MaxOps > 1000 {
			t.Errorf("degree %d: implausible op count %d", r.Degree, r.MaxOps)
		}
	}
}

func TestRunCompressionShape(t *testing.T) {
	rows := RunCompression(io.Discard, 3, 1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]C1Row{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.NFRTuples > r.FlatTuples {
			t.Errorf("%s: NFR (%d) > flat (%d)?", r.Workload, r.NFRTuples, r.FlatTuples)
		}
	}
	// the paper's claim: MVD-governed relations compress strongly;
	// the relationship relation (no MVD) compresses much less.
	if byName["enrollment R1 (MVD)"].Compression < 1.5 {
		t.Errorf("R1 compression too small: %v", byName["enrollment R1 (MVD)"].Compression)
	}
	if byName["enrollment R1 (MVD)"].Compression <= byName["enrollment R2 (no MVD)"].Compression {
		t.Errorf("R1 (%.2f) should compress more than R2 (%.2f)",
			byName["enrollment R1 (MVD)"].Compression,
			byName["enrollment R2 (no MVD)"].Compression)
	}
}

func TestRunNFRvsJoin(t *testing.T) {
	res := RunNFRvsJoin(io.Discard, 5, 40)
	if res.NFRVisits >= res.JoinRowsVisited {
		t.Errorf("NFR scan (%d) should beat join (%d)", res.NFRVisits, res.JoinRowsVisited)
	}
	if res.NFRTuples >= res.FlatTuples {
		t.Error("no compression in join experiment")
	}
}

func TestRunStorageFootprint(t *testing.T) {
	res, err := RunStorageFootprint(io.Discard, t.TempDir(), 7, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.NFRBytes >= res.FlatBytes {
		t.Errorf("NFR bytes (%d) should be below flat bytes (%d)", res.NFRBytes, res.FlatBytes)
	}
	if res.NFRRecords >= res.FlatRecords {
		t.Error("NFR records should be fewer")
	}
	if res.NFRPages > res.FlatPages {
		t.Error("NFR pages should not exceed flat pages")
	}
}

func TestRunDiskEngine(t *testing.T) {
	res, err := RunDiskEngine(io.Discard, t.TempDir(), 3, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Error("disk realization not equivalent to in-memory engine")
	}
	if res.Hits+res.Misses == 0 {
		t.Error("no buffer-pool traffic recorded")
	}
	if res.NFRTuples == 0 || res.FlatTuples <= res.NFRTuples {
		t.Errorf("suspicious sizes: %d NFR / %d flat", res.NFRTuples, res.FlatTuples)
	}
	if res.Statements == 0 || res.WALFsyncs == 0 {
		t.Errorf("group-commit accounting empty: %d statements, %d fsyncs", res.Statements, res.WALFsyncs)
	}
	if res.FsyncsPerStatement > 1 {
		t.Errorf("group commit broken: %.3f fsyncs/statement", res.FsyncsPerStatement)
	}
	if !res.RecoveredEquivalent {
		t.Error("crash recovery diverged from in-memory engine")
	}
}

func TestFig1DataSatisfiesMVD(t *testing.T) {
	r1, _ := Fig1Data()
	// cross-check via canonical nesting: grouping must be exact
	order := schema.MustPermOf(r1.Schema(), "Course", "Club", "Student")
	c, _ := r1.Canonical(order)
	if !c.EquivalentTo(r1) {
		t.Error("canonicalization lost data")
	}
	var _ *core.Relation = c
}

func TestRunConcurrent(t *testing.T) {
	res, err := RunConcurrent(io.Discard, t.TempDir(), 3, 4, 20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Error("concurrent run not equivalent to single-threaded oracle")
	}
	// the write pipeline may batch several concurrent statements into
	// one transaction, so batches ≤ statements (equality when nothing
	// overlapped)
	if res.Statements == 0 || res.WALBatches == 0 || res.WALBatches > res.Statements {
		t.Errorf("accounting: %d statements vs %d batches", res.Statements, res.WALBatches)
	}
	if res.FsyncsPerStatement > 1 {
		t.Errorf("group commit broken: %.3f fsyncs/statement", res.FsyncsPerStatement)
	}
	// merging itself is timing-dependent — only the ceiling is asserted
}

func TestRunReopen(t *testing.T) {
	res, err := RunReopen(io.Discard, t.TempDir(), 7, 1200, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexOK {
		t.Error("durable index diverged from heap oracle")
	}
	if !res.Bounded {
		t.Errorf("clean open not bounded: store %d / engine %d reads, budget %d, heap %d pages",
			res.OpenReads, res.EngineOpenReads, res.Budget, res.HeapPages)
	}
	if res.EngineOpenReads > res.Budget {
		t.Errorf("clean engine.Open read %d pages, budget %d — lazy materialization regressed",
			res.EngineOpenReads, res.Budget)
	}
	if res.OracleReads <= res.OpenReads {
		t.Errorf("oracle pass (%d reads) should dwarf the fast open (%d reads)",
			res.OracleReads, res.OpenReads)
	}
}

func TestRunRange(t *testing.T) {
	res, err := RunRange(io.Discard, t.TempDir(), 7, 800, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OracleOK {
		t.Error("indexed window scan diverged from the heap-scan oracle")
	}
	if !res.Bounded {
		t.Errorf("range scan not bounded: %d index pages, budget %d, heap %d pages",
			res.IndexPages, res.Budget, res.HeapPages)
	}
	if res.MatchingFlats == 0 || res.IndexPages == 0 {
		t.Errorf("vacuous window: %d matching flats, %d index pages",
			res.MatchingFlats, res.IndexPages)
	}
}

func TestRunReaders(t *testing.T) {
	res, err := RunReaders(io.Discard, t.TempDir(), 7, 4, 800)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineReads == 0 || res.StalledReads == 0 {
		t.Fatalf("no reads completed: baseline %d, stalled %d", res.BaselineReads, res.StalledReads)
	}
	if !res.NonBlocking {
		t.Errorf("a snapshot read blocked %.1fms behind the stalled writer (bound 100ms)", res.MaxReadMs)
	}
	if !res.ThroughputOK {
		t.Errorf("throughput collapsed under the stalled writer: %d reads vs %d idle",
			res.StalledReads, res.BaselineReads)
	}
}
