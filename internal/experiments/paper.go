// Package experiments regenerates every figure, worked example, and
// theorem-backed claim of the paper (see DESIGN.md §3 for the index).
// Each experiment is a named runner that writes a human-readable table
// and returns structured results so tests and benchmarks can assert
// the paper's claims mechanically.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/update"
)

// Fig1Data builds the two relations of Figure 1 in flat form:
// R1[Student, Course, Club] (entity relation, MVD Student ->-> Course |
// Club) and R2[Student, Course, Semester] (relationship relation).
// Reconstructed from the figure plus the Fig.-2 update narrative
// ("removing the first tuple in R2 and adding ({s2,s3},{c1,c2},t1) and
// (s1,c2,t1)"), which pins R2's first tuple to [{s1,s2,s3} {c1,c2} t1]:
//
//	R1: s1 | c1,c2,c3 | b1     R2: s1,s2,s3 | c1,c2 | t1
//	    s2 | c1,c2,c3 | b2         s1,s3    | c3    | t1
//	    s3 | c1,c2,c3 | b1         s2       | c3    | t2
func Fig1Data() (r1, r2 *core.Relation) {
	s1 := schema.MustOf("Student", "Course", "Club")
	s2 := schema.MustOf("Student", "Course", "Semester")
	r1 = core.NewRelation(s1)
	for _, st := range []struct {
		s, b string
		cs   []string
	}{
		{"s1", "b1", []string{"c1", "c2", "c3"}},
		{"s3", "b1", []string{"c1", "c2", "c3"}},
		{"s2", "b2", []string{"c1", "c2", "c3"}},
	} {
		for _, c := range st.cs {
			r1.Add(tuple.FromFlat(tuple.FlatOfStrings(st.s, c, st.b)))
		}
	}
	r2 = core.NewRelation(s2)
	for _, s := range []string{"s1", "s2", "s3"} {
		for _, c := range []string{"c1", "c2"} {
			r2.Add(tuple.FromFlat(tuple.FlatOfStrings(s, c, "t1")))
		}
	}
	r2.Add(tuple.FromFlat(tuple.FlatOfStrings("s1", "c3", "t1")))
	r2.Add(tuple.FromFlat(tuple.FlatOfStrings("s3", "c3", "t1")))
	r2.Add(tuple.FromFlat(tuple.FlatOfStrings("s2", "c3", "t2")))
	return r1, r2
}

// Fig1Orders returns the nest orders used to display Fig. 1: for R1
// nest Course then Student then Club (grouping courses per student,
// then students with identical course-set+club); for R2 nest Student
// then Course then Semester (grouping students per course+semester).
func Fig1Orders(r1, r2 *core.Relation) (p1, p2 schema.Permutation) {
	p1 = schema.MustPermOf(r1.Schema(), "Course", "Student", "Club")
	p2 = schema.MustPermOf(r2.Schema(), "Student", "Course", "Semester")
	return p1, p2
}

// RunFig1 nests the Fig.-1 data into NFR form and prints both tables.
// For R1 it prints two renderings: ν_Course(R1), the partially nested
// form the paper's figure shows (one row per student), and the fully
// canonical form, which additionally groups s1 and s3 because they
// share an identical course-set and club. R2's canonical form matches
// the printed figure exactly. The returned relations are the canonical
// ones (used by Fig. 2).
func RunFig1(w io.Writer) (n1, n2 *core.Relation) {
	r1, r2 := Fig1Data()
	p1, p2 := Fig1Orders(r1, r2)
	partial, _ := r1.Nest(r1.Schema().Index("Course"))
	partial.SortTuples()
	n1, _ = r1.Canonical(p1)
	n2, _ = r2.Canonical(p2)
	n1.SortTuples()
	n2.SortTuples()
	fmt.Fprintln(w, "Fig. 1 — R1 as printed (ν_Course; MVD Student ->-> Course | Club):")
	fmt.Fprintln(w, query.RenderTable(partial))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Fig. 1 — R1 fully canonical (V_P groups s1,s3 further):")
	fmt.Fprintln(w, query.RenderTable(n1))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Fig. 1 — R2 (relationship relation; no MVD):")
	fmt.Fprintln(w, query.RenderTable(n2))
	return n1, n2
}

// RunFig2 applies the Section-2 update — student s1 stops taking
// course c1 — to both relations using the Section-4 deletion algorithm
// and prints the updated NFRs (Figure 2). It returns the updated
// relations and the operation counts incurred on each.
func RunFig2(w io.Writer) (u1, u2 *core.Relation, ops1, ops2 update.Stats) {
	r1, r2 := Fig1Data()
	p1, p2 := Fig1Orders(r1, r2)
	m1, err := update.FromRelation(r1, p1)
	if err != nil {
		panic(err)
	}
	m2, err := update.FromRelation(r2, p2)
	if err != nil {
		panic(err)
	}
	// drop every (s1, c1, ·) from R1 and (s1, c1, ·) from R2
	for _, f := range r1.Expand() {
		if f[0].Str() == "s1" && f[1].Str() == "c1" {
			if _, err := m1.Delete(f); err != nil {
				panic(err)
			}
		}
	}
	for _, f := range r2.Expand() {
		if f[0].Str() == "s1" && f[1].Str() == "c1" {
			if _, err := m2.Delete(f); err != nil {
				panic(err)
			}
		}
	}
	u1, u2 = m1.Relation().Clone(), m2.Relation().Clone()
	u1.SortTuples()
	u2.SortTuples()
	fmt.Fprintln(w, "Fig. 2 — R1 after s1 stops taking c1 (value removed from one set):")
	fmt.Fprintln(w, query.RenderTable(u1))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Fig. 2 — R2 after the same update (tuple split and regrouped):")
	fmt.Fprintln(w, query.RenderTable(u2))
	fmt.Fprintf(w, "\nupdate cost: R1 %d compositions + %d decompositions; R2 %d + %d\n",
		m1.Stats().Compositions, m1.Stats().Decompositions,
		m2.Stats().Compositions, m2.Stats().Decompositions)
	return u1, u2, m1.Stats(), m2.Stats()
}

// Example1Result reports Example 1's artifacts.
type Example1Result struct {
	R1, R2 *core.Relation // the two irreducible forms named in the paper
	All    []*core.Relation
}

// RunExample1 reproduces Example 1: the 4-tuple relation over A,B with
// (at least) two distinct irreducible forms.
func RunExample1(w io.Writer) Example1Result {
	s := schema.MustOf("A", "B")
	r := core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1"),
		tuple.FlatOfStrings("a2", "b1"),
		tuple.FlatOfStrings("a2", "b2"),
		tuple.FlatOfStrings("a3", "b2"),
	})
	res := Example1Result{
		R1: core.MustFromTuples(s, []tuple.Tuple{
			core.TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
			core.TupleOfSets([]string{"a2", "a3"}, []string{"b2"}),
		}),
		R2: core.MustFromTuples(s, []tuple.Tuple{
			core.TupleOfSets([]string{"a1"}, []string{"b1"}),
			core.TupleOfSets([]string{"a2"}, []string{"b1", "b2"}),
			core.TupleOfSets([]string{"a3"}, []string{"b2"}),
		}),
	}
	forms, _ := r.AllIrreducibleForms(0, 0)
	res.All = forms
	fmt.Fprintln(w, "Example 1 — R = {(a1,b1),(a2,b1),(a2,b2),(a3,b2)}")
	fmt.Fprintf(w, "distinct irreducible forms reachable by composition: %d\n", len(forms))
	for i, f := range forms {
		f.SortTuples()
		tag := ""
		if f.Equal(res.R1) {
			tag = "   <- paper's R1 (via νA)"
		}
		if f.Equal(res.R2) {
			tag = "   <- paper's R2 (via νB(r2,r3))"
		}
		fmt.Fprintf(w, "form %d (%d tuples):%s\n%s\n", i+1, f.Len(), tag, indent(f.String()))
	}
	return res
}

// Example2Result reports Example 2's artifacts.
type Example2Result struct {
	MinIrreducible int
	CanonicalSizes map[string]int
	R4             *core.Relation
}

// RunExample2 reproduces Example 2: the 6-tuple relation over A,B,C
// whose minimum irreducible form has 3 tuples while every canonical
// form has 4.
func RunExample2(w io.Writer) Example2Result {
	s := schema.MustOf("A", "B", "C")
	r3 := core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1", "c2"),
		tuple.FlatOfStrings("a1", "b2", "c2"),
		tuple.FlatOfStrings("a1", "b2", "c1"),
		tuple.FlatOfStrings("a2", "b1", "c1"),
		tuple.FlatOfStrings("a2", "b1", "c2"),
		tuple.FlatOfStrings("a2", "b2", "c1"),
	})
	res := Example2Result{CanonicalSizes: map[string]int{}}
	search := r3.MinimumIrreducible(0)
	res.MinIrreducible = search.MinTuples
	res.R4 = search.Best
	fmt.Fprintln(w, "Example 2 — R3 with 6 flat tuples over A,B,C")
	fmt.Fprintf(w, "minimum irreducible form: %d tuples (exhaustive=%v, %d states)\n",
		search.MinTuples, search.Exhaustive, search.StatesVisited)
	search.Best.SortTuples()
	fmt.Fprintln(w, indent(search.Best.String()))
	fmt.Fprintln(w, "canonical forms (all 3! = 6 permutations):")
	for _, p := range schema.AllPermutations(3) {
		c, _ := r3.Canonical(p)
		key := fmt.Sprint(p.Names(s))
		res.CanonicalSizes[key] = c.Len()
		fmt.Fprintf(w, "  V_%v: %d tuples\n", p.Names(s), c.Len())
	}
	return res
}

// Example3Result reports Example 3's artifacts.
type Example3Result struct {
	R7, R8       *core.Relation
	R7Fixed      bool
	R8Fixed      bool
	FormsFixed   int
	FormsUnfixed int
}

// RunExample3 reproduces Example 3: under MVD A ->-> B | C, the
// irreducible form R7 is fixed on A while R8 is not (Theorem 4 shows
// only existence, not universality, of fixed irreducible forms).
func RunExample3(w io.Writer) Example3Result {
	s := schema.MustOf("A", "B", "C")
	r6 := core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1", "c1"),
		tuple.FlatOfStrings("a1", "b2", "c1"),
		tuple.FlatOfStrings("a2", "b1", "c1"),
		tuple.FlatOfStrings("a2", "b1", "c2"),
	})
	res := Example3Result{
		R7: core.MustFromTuples(s, []tuple.Tuple{
			core.TupleOfSets([]string{"a1"}, []string{"b1", "b2"}, []string{"c1"}),
			core.TupleOfSets([]string{"a2"}, []string{"b1"}, []string{"c1", "c2"}),
		}),
		R8: core.MustFromTuples(s, []tuple.Tuple{
			core.TupleOfSets([]string{"a1", "a2"}, []string{"b1"}, []string{"c1"}),
			core.TupleOfSets([]string{"a1"}, []string{"b2"}, []string{"c1"}),
			core.TupleOfSets([]string{"a2"}, []string{"b1"}, []string{"c2"}),
		}),
	}
	aSet := schema.NewAttrSet("A")
	res.R7Fixed = res.R7.FixedOn(aSet)
	res.R8Fixed = res.R8.FixedOn(aSet)
	forms, _ := r6.AllIrreducibleForms(0, 0)
	for _, f := range forms {
		if f.FixedOn(aSet) {
			res.FormsFixed++
		} else {
			res.FormsUnfixed++
		}
	}
	fmt.Fprintln(w, "Example 3 — R6 with MVD A ->-> B | C")
	fmt.Fprintf(w, "R7 (paper): fixed on A = %v\n%s\n", res.R7Fixed, indent(res.R7.String()))
	fmt.Fprintf(w, "R8 (paper): fixed on A = %v\n%s\n", res.R8Fixed, indent(res.R8.String()))
	fmt.Fprintf(w, "all irreducible forms: %d fixed on A, %d not fixed\n",
		res.FormsFixed, res.FormsUnfixed)
	return res
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}
