package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/tuple"
)

// ConcurrentTxResult summarizes the multi-statement transaction leg of
// the concurrent experiment: N clients each committing explicit
// transactions of several statements, so the economics shift from
// fsyncs per STATEMENT to fsyncs per TRANSACTION — a transaction's
// statements share one WAL batch by construction, and concurrently
// committing transactions still merge into shared fsyncs on top.
type ConcurrentTxResult struct {
	Clients      int
	TxsPerClient int
	StmtsPerTx   int

	Txs        int // committed transactions
	Statements int // changing statements inside them
	Conflicts  int // wait-die retries (shared-relation contention)
	Seconds    float64
	TxPerSec   float64

	WALFsyncs     int
	WALBatches    int
	FsyncsPerTx   float64 // must be ≤ 1; < 1 once commits merge
	StmtsPerFsync float64 // ≥ StmtsPerTx once commits merge
	MaxGroup      int     // most transactions in one fsync

	// every relation equals the single-threaded oracle, live and after
	// a close/reopen
	Equivalent bool
}

// RunConcurrentTx drives clients goroutines, each committing
// txsPerClient explicit transactions of stmtsPerTx statements on a
// private relation; every 5th transaction also writes one statement
// into a shared relation (latch contention across transactions, with
// wait-die conflicts retried). It verifies every relation against a
// single-threaded oracle, live and across a reopen.
func RunConcurrentTx(w io.Writer, dir string, seed int64, clients, txsPerClient, stmtsPerTx, poolPages int) (ConcurrentTxResult, error) {
	res := ConcurrentTxResult{Clients: clients, TxsPerClient: txsPerClient, StmtsPerTx: stmtsPerTx}
	sch := schema.MustOf("Student", "Course", "Club")
	order := schema.MustPermOf(sch, "Course", "Club", "Student")
	defFor := func(name string) engine.RelationDef {
		return engine.RelationDef{Name: name, Schema: sch, Order: order}
	}

	path := filepath.Join(dir, "concurrent-tx.nfrs")
	db, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return res, err
	}
	oracle := engine.New()
	names := make([]string, clients)
	flats := make([][]tuple.Flat, clients)
	var sharedAll []tuple.Flat
	perClient := txsPerClient * stmtsPerTx
	for c := 0; c < clients; c++ {
		names[c] = fmt.Sprintf("T%d", c)
		for _, d := range []*engine.Database{db, oracle} {
			if err := d.Create(defFor(names[c])); err != nil {
				db.Close()
				return res, err
			}
		}
		flats[c] = concurrentFlats(seed, c, perClient)
		if _, err := oracle.InsertMany(names[c], flats[c]); err != nil {
			db.Close()
			return res, err
		}
		// every 5th transaction contributes its first row to the shared
		// relation
		for t := 4; t < txsPerClient; t += 5 {
			sharedAll = append(sharedAll, flats[c][t*stmtsPerTx])
		}
	}
	for _, d := range []*engine.Database{db, oracle} {
		if err := d.Create(defFor("shared")); err != nil {
			db.Close()
			return res, err
		}
	}
	if _, err := oracle.InsertMany("shared", sharedAll); err != nil {
		db.Close()
		return res, err
	}

	ws0, _ := db.WALStats()
	var changed, committed, conflicts atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	ctx := context.Background()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for t := 0; t < txsPerClient; t++ {
				rows := flats[c][t*stmtsPerTx : (t+1)*stmtsPerTx]
				shared := t%5 == 4
				// wait-die can refuse the shared latch; roll back and
				// retry the whole transaction
				for {
					n, err := runOneTx(ctx, db, names[c], rows, shared)
					if err == nil {
						changed.Add(int64(n))
						committed.Add(1)
						break
					}
					if errors.Is(err, engine.ErrTxConflict) {
						conflicts.Add(1)
						continue
					}
					errCh <- fmt.Errorf("client %d tx %d: %w", c, t, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		db.Close()
		return res, err
	}
	ws1, _ := db.WALStats()
	res.Txs = int(committed.Load())
	res.Statements = int(changed.Load())
	res.Conflicts = int(conflicts.Load())
	res.WALFsyncs = ws1.Fsyncs - ws0.Fsyncs
	res.WALBatches = ws1.Batches - ws0.Batches
	res.MaxGroup = ws1.MaxGroupBatches
	if res.Txs > 0 {
		res.FsyncsPerTx = float64(res.WALFsyncs) / float64(res.Txs)
		res.TxPerSec = float64(res.Txs) / res.Seconds
	}
	if res.WALFsyncs > 0 {
		res.StmtsPerFsync = float64(res.Statements) / float64(res.WALFsyncs)
	}

	verify := func(d *engine.Database) (bool, error) {
		for _, name := range append(append([]string{}, names...), "shared") {
			got, err := d.ReadRelation(ctx, name)
			if err != nil {
				return false, err
			}
			want, err := oracle.ReadRelation(ctx, name)
			if err != nil {
				return false, err
			}
			if !got.Equal(want) || !got.EquivalentTo(want) {
				return false, nil
			}
		}
		return true, nil
	}
	live, err := verify(db)
	if err != nil {
		db.Close()
		return res, err
	}
	if err := db.Close(); err != nil {
		return res, err
	}
	db2, err := engine.Open(path, engine.WithPoolPages(poolPages))
	if err != nil {
		return res, fmt.Errorf("reopen after concurrent tx run: %w", err)
	}
	defer db2.Close()
	reopened, err := verify(db2)
	if err != nil {
		return res, err
	}
	res.Equivalent = live && reopened

	fmt.Fprintf(w, "D3 — multi-statement transactions (disk mode, explicit Begin/Commit)\n")
	fmt.Fprintf(w, "  %d clients × %d txs × %d statements (+1 shared statement per 5th tx): %d committed txs (%d statements) in %.3fs (%.0f txs/s), %d wait-die retries\n",
		res.Clients, res.TxsPerClient, res.StmtsPerTx, res.Txs, res.Statements, res.Seconds, res.TxPerSec, res.Conflicts)
	fmt.Fprintf(w, "  group commit: %d txs in %d fsyncs → %.3f fsyncs/tx, %.1f statements/fsync (max group %d)\n",
		res.WALBatches, res.WALFsyncs, res.FsyncsPerTx, res.StmtsPerFsync, res.MaxGroup)
	fmt.Fprintf(w, "  all relations equivalent to single-threaded oracle (live + reopened): %v\n", res.Equivalent)
	return res, nil
}

// runOneTx commits one client transaction: stmtsPerTx statements on the
// private relation, plus (when shared) one on the shared relation —
// acquired FIRST, while the transaction holds nothing, so the wait is
// always legal under wait-die and conflicts stay rare.
func runOneTx(ctx context.Context, db *engine.Database, name string, rows []tuple.Flat, shared bool) (int, error) {
	tx, err := db.Begin(ctx)
	if err != nil {
		return 0, err
	}
	n := 0
	if shared {
		ch, err := tx.Insert("shared", rows[0])
		if err != nil {
			tx.Rollback()
			return 0, err
		}
		if ch {
			n++
		}
	}
	for _, f := range rows {
		ch, err := tx.Insert(name, f)
		if err != nil {
			tx.Rollback()
			return 0, err
		}
		if ch {
			n++
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return n, nil
}
