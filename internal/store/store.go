// Package store maps catalog relations onto the paged storage
// substrate: each relation's canonical NFR tuples live in a heap file
// of encoded records behind a shared buffer pool, with two durable
// hash indexes in the same file — full tuple key → RID, and fixed
// (determinant) atom → RID — so victim tuples are located by key
// instead of by scanning, and reopening attaches to the persisted
// index structures instead of rebuilding them (open-phase I/O is
// O(catalog + index directories), not O(heap); see
// storage.DiskHashIndex). The whole database is one paged file plus a
// write-ahead-log sidecar (<path>.wal):
//
//	page 1    catalog heap chain — record 0 is the header
//	          (magic "NFRS" + format version + database id), every
//	          further live record is one relation definition + its
//	          heap root + its two index roots
//	page 2    free-list heap chain — 4-byte page ids reclaimable
//	          from dropped relations (see freelist.go)
//	page *    per-relation heap chains of encoding.EncodeTuple
//	          records, and index directory/bucket chains
//
// The store is the durability half of the engine's "realization view"
// (paper Section 5): the engine keeps the canonical form in memory for
// the Section-4 update algorithms and writes every tuple mutation
// through via the update.Sink interface. Mutations are transactional:
// Begin hands out a Txn, every write is attributed to one, and
// Commit(txn) groups exactly that transaction's dirty pages into one
// WAL batch — concurrently committing transactions are merged into a
// single log write and fsync by the buffer pool's group-commit
// scheduler, so independent statements commit in parallel. Opening a
// crashed file replays committed batches and discards torn tails. See
// docs/storage.md for the layer diagram and docs/recovery.md for the
// recovery protocol.
package store

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/encoding"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// Magic identifies a paged NFR database file (header record of the
// catalog heap).
var Magic = [4]byte{'N', 'F', 'R', 'S'}

// FormatVersion is the current paged file format version. Version 2
// added the page-header checksum field, the free-list page, and the WAL
// sidecar; version 3 adds durable hash indexes (per-relation directory
// and bucket pages, roots recorded in the catalog record). Version-2
// files remain openable: the first writable open rebuilds the indexes
// once by heap scan, persists them, and bumps the header — after which
// every open attaches in O(index directory) page reads. The B+tree
// range index rides a trailing-optional extension of the version-3
// catalog record (no version bump); v3 records without it get their
// range indexes built by the same upgrade path. Version-1
// files predate the checksum field and are not readable. The 8-byte
// database id appended to the header record is a backward-compatible
// version-2 extension (headers without it are accepted but cannot be
// pairing-checked).
const FormatVersion = 3

// formatV2 is the previous format version: no durable indexes,
// rebuild-on-open. Still readable; upgraded in place (see
// upgradeIndexes).
const formatV2 = 2

// DefaultPoolPages is the buffer-pool capacity used when Options does
// not specify one.
const DefaultPoolPages = 64

// DefaultCheckpointBytes is the WAL size that triggers an automatic
// checkpoint after a commit when Options does not specify one.
const DefaultCheckpointBytes = 4 << 20

// ErrCorrupt is wrapped by open/scan errors caused by a malformed
// database file (truncation, torn pages, garbage records).
var ErrCorrupt = errors.New("store: corrupt database file")

// ErrMispaired is returned when the data file and the WAL sidecar next
// to it carry different database ids — a shuffled, copied, or
// hand-restored pair. Replaying the wrong log would splice another
// database's pages into this one, so the open is refused.
var ErrMispaired = errors.New("store: data file and WAL sidecar belong to different databases")

// catalogRoot is the page id of the catalog heap's first page.
const catalogRoot = 1

// Txn is the store's transaction handle — the unit a statement's
// writes are grouped under and committed as one WAL batch. It is the
// buffer pool's handle verbatim; all store APIs that mutate pages take
// one, and Store.Commit (never the pool directly) commits it so the
// free-list ownership and checkpoint bookkeeping stay correct.
type Txn = storage.Txn

// Options tunes a Store.
type Options struct {
	// PoolPages is the buffer-pool capacity in pages (0 = default).
	PoolPages int
	// OpenFile opens database files (the data file and the WAL
	// sidecar). nil = the operating-system filesystem. Crash tests
	// substitute an in-memory recording implementation.
	OpenFile storage.OpenFileFunc
	// RemoveFile deletes a file; used to remove the WAL sidecar on a
	// clean close (its absence marks a clean shutdown). nil = os.Remove.
	RemoveFile func(name string) error
	// CheckpointBytes is the WAL size at which a commit triggers an
	// automatic checkpoint (sync the data file, reset the log).
	// 0 = DefaultCheckpointBytes, negative = only checkpoint on
	// Flush/Close.
	CheckpointBytes int64
	// NoSweep suppresses the NON-recovery writes Open can perform: the
	// orphan-page sweep (after crash recovery) and the one-time v2→v3
	// durable-index upgrade. Read-only and load-once callers set it so
	// opening a cleanly-closed file never mutates it (crash recovery,
	// when the file demands it, still writes); a v2 file opened this
	// way serves from in-memory rebuilt indexes instead.
	NoSweep bool
}

// Store is one paged database file: a catalog of relation stores
// sharing a pager, a write-ahead log, and a buffer pool.
type Store struct {
	mu      sync.Mutex
	pager   *storage.Pager
	bp      *storage.BufferPool
	wal     *storage.WAL
	walPath string
	remove  func(string) error
	ckptAt  int64
	dbid    uint64
	hdrVer  byte // format version byte read from the header record
	catalog *storage.HeapFile
	rels    map[string]*RelStore

	// Snapshot visibility (see snapshot.go), under mu: pending maps each
	// open transaction to the catalog marks its commit will publish;
	// ghosts retains dropped relations still readable by pinned
	// snapshots.
	pending map[*Txn]*txnMarks
	ghosts  []*RelStore

	// The free list is shared mutable state between concurrent
	// transactions, so it has a transaction-scoped owner: the first
	// push/pop by a transaction takes ownership until that transaction
	// commits, and other transactions' free-list operations wait (or,
	// for recycling, fall through to growing the file). This keeps a
	// dropped chain's pages from being handed to another transaction
	// before the drop is durable — across a crash the catalog and the
	// free list can never disagree about who owns a page.
	freeMu    sync.Mutex
	freeCond  *sync.Cond
	freeOwner *Txn
	freeHeap  *storage.HeapFile
	free      []freeEntry

	openStats storage.PoolStats
}

// Open opens the paged database at path, creating and initializing the
// file when it does not exist (or is empty). Opening is also the
// recovery point: committed batches found in the WAL sidecar are
// replayed into the data file (healing torn pages and lost tails) and
// the log's torn tail, if any, is discarded — see docs/recovery.md. A
// sidecar whose header carries a different database id than the data
// file is refused (ErrMispaired) before any replay. On an existing
// file the catalog is then read and every relation attaches to its
// durable hash indexes — O(catalog + index directories) page reads,
// never a heap scan. A version-2 file (rebuild-on-open era) is
// upgraded in place exactly once: its indexes are rebuilt by scanning,
// persisted, and the header version bumped, so the next open is fast
// (Options.NoSweep defers the upgrade and serves from in-memory
// indexes instead).
func Open(path string, opts Options) (*Store, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = DefaultPoolPages
	}
	openFile := opts.OpenFile
	if openFile == nil {
		openFile = storage.OpenOSFile
	}
	remove := opts.RemoveFile
	if remove == nil {
		remove = os.Remove
	}
	ckptAt := opts.CheckpointBytes
	if ckptAt == 0 {
		ckptAt = DefaultCheckpointBytes
	}

	walPath := path + ".wal"
	wal, err := storage.OpenWAL(walPath, openFile)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// A sidecar on disk marks a crashed (or still-open) database — the
	// only kind whose degraded paths can have orphaned pages, so only
	// those opens pay for the sweep's chain walks.
	hadSidecar := wal.Existed()
	closeWAL := func() { wal.Close() }

	df, err := openFile(path, true)
	if err != nil {
		closeWAL()
		return nil, err
	}
	size, err := df.Size()
	if err != nil {
		df.Close()
		closeWAL()
		return nil, err
	}
	if size%storage.PageSize != 0 {
		// A ragged tail is a torn extension write (Pager.Allocate grows
		// the file mid-statement, before the statement's batch exists in
		// the log), so the partial page is never committed data: round
		// the file down and let replay and validation decide. This is
		// safe even with an empty log because every committed live page
		// is referenced — by the catalog, the free list, or a heap
		// chain — so if the rounding cut real data, catalog/chain
		// validation below fail-stops; silent loss is impossible. A file
		// rounded down to zero pages has no catalog to validate against
		// and is refused rather than silently re-initialized.
		rounded := size - size%storage.PageSize
		if rounded == 0 && wal.Stats().RecoveredBatches == 0 {
			df.Close()
			closeWAL()
			return nil, fmt.Errorf("%w: file size %d is less than one page and no WAL to recover from", ErrCorrupt, size)
		}
		if err := df.Truncate(rounded); err != nil {
			df.Close()
			closeWAL()
			return nil, err
		}
	}
	pg, err := storage.NewPager(df)
	if err != nil {
		df.Close()
		closeWAL()
		return nil, err
	}

	// Pairing check, BEFORE any replay: if both the data file's header
	// (readable without the log) and the sidecar carry a database id
	// and they differ, the sidecar belongs to another database and
	// replaying it would corrupt this one.
	if dataID := probeDBID(pg); dataID != 0 && wal.DBID() != 0 && dataID != wal.DBID() {
		pg.Close()
		closeWAL()
		return nil, fmt.Errorf("%w: data file id %016x, sidecar id %016x",
			ErrMispaired, dataID, wal.DBID())
	} else if dataID == 0 && wal.DBID() != 0 {
		// Page 1 failed its checksum (or lacks an id): before trusting
		// the sidecar to repair it, cross-check the header's raw
		// fixed-offset bytes. A torn prefix-write usually preserves the
		// first few dozen bytes of the page, so a still-legible id that
		// contradicts the sidecar exposes a mispaired restore that the
		// checksum-gated probe above is blind to; only a header whose id
		// bytes are themselves destroyed falls back to the best-effort
		// behavior (trust the sidecar — a legitimate crash pairing).
		if rawID := probeDBIDRaw(pg); rawID != 0 && rawID != wal.DBID() {
			pg.Close()
			closeWAL()
			return nil, fmt.Errorf("%w: torn data file header id %016x, sidecar id %016x",
				ErrMispaired, rawID, wal.DBID())
		}
	}

	// Redo: apply the latest committed image of every logged page, then
	// checkpoint the log. Replay is gated by the page LSN — an image is
	// written only when the data file's copy is torn or older — so redo
	// is idempotent by construction: a crash mid-replay (or a double
	// replay) just skips what already landed on the next open.
	if images := wal.CommittedImages(); len(images) > 0 {
		for pid, img := range images {
			if err := pg.EnsureAllocated(pid); err != nil {
				pg.Close()
				closeWAL()
				return nil, err
			}
			var cur storage.Page
			if pg.Read(pid, &cur) == nil && cur.VerifyChecksum() == nil && cur.LSN() >= img.LSN() {
				continue
			}
			if err := pg.Write(pid, img); err != nil {
				pg.Close()
				closeWAL()
				return nil, err
			}
		}
		if err := pg.Sync(); err != nil {
			pg.Close()
			closeWAL()
			return nil, err
		}
		if err := wal.Reset(); err != nil {
			pg.Close()
			closeWAL()
			return nil, err
		}
	}

	// Seed the MVCC commit clock from durable state instead of starting
	// at zero: the log's clock (persisted in its header at checkpoints,
	// carried by commit records between them) and the catalog root's
	// page LSN (a clean close seals the final clock there before the
	// sidecar is removed), whichever is higher. Snapshot LSNs therefore
	// stay meaningful across restarts, and a commit after reopen can
	// never reuse an LSN already stamped on a durable page.
	clockSeed := wal.Clock()
	if pg.NumPages() >= catalogRoot {
		var p1 storage.Page
		if pg.Read(catalogRoot, &p1) == nil && p1.VerifyChecksum() == nil {
			if l := p1.LSN(); l > clockSeed {
				clockSeed = l
			}
		}
	}
	wal.SetClock(clockSeed)

	bp, err := storage.NewBufferPool(pg, opts.PoolPages)
	if err != nil {
		pg.Close()
		closeWAL()
		return nil, err
	}
	bp.AttachWAL(wal)
	bp.SetLSN(clockSeed)
	s := &Store{
		pager: pg, bp: bp, wal: wal, walPath: walPath,
		remove: remove, ckptAt: ckptAt,
		rels:    make(map[string]*RelStore),
		pending: make(map[*Txn]*txnMarks),
	}
	s.freeCond = sync.NewCond(&s.freeMu)
	existing := pg.NumPages() > 0
	if !existing {
		if err := s.initFile(); err != nil {
			s.Discard()
			return nil, err
		}
	} else {
		if err := s.loadCatalog(); err != nil {
			s.Discard()
			return nil, err
		}
		if err := s.loadFreeList(); err != nil {
			s.Discard()
			return nil, err
		}
	}
	// The catalog header is now authoritative; future sidecar
	// (re)creations carry this database's id.
	if s.dbid != 0 && wal.DBID() != 0 && s.dbid != wal.DBID() {
		s.Discard()
		return nil, fmt.Errorf("%w: data file id %016x, sidecar id %016x",
			ErrMispaired, s.dbid, wal.DBID())
	}
	wal.SetDBID(s.dbid)
	// One-time v2→v3 upgrade: persist durable indexes for relations
	// attached from rebuild-on-open records (skipped by NoSweep, whose
	// callers forbid non-recovery writes — they keep the in-memory
	// indexes the attach already built).
	if existing && !opts.NoSweep {
		if err := s.upgradeIndexes(); err != nil {
			s.Discard()
			return nil, err
		}
	}
	// Reclaim pages the degraded paths orphaned (after SetDBID, so a
	// sweep that creates the sidecar stamps the right database id, and
	// after the upgrade, so fresh index pages count as referenced). A
	// cleanly-closed file has no sidecar and skips the walk — clean
	// opens stay bounded by catalog + index metadata; SweepOrphans
	// remains callable explicitly.
	if existing && !opts.NoSweep && hadSidecar {
		if err := s.sweepOrphans(); err != nil {
			s.Discard()
			return nil, err
		}
	}
	// Recycling starts only now: nothing above may hand out free pages,
	// and the open-phase I/O is bucketed away from steady-state stats.
	bp.SetAllocator(s.recycle)
	s.openStats = bp.TakeStats()
	return s, nil
}

// probeDBID best-effort reads the database id from the catalog header
// record (page 1, slot 0) without the buffer pool, returning 0 when the
// page is missing, torn, or predates the id extension. Used by the
// open-time pairing check, which must run before WAL replay.
func probeDBID(pg *storage.Pager) uint64 {
	if pg.NumPages() < catalogRoot {
		return 0
	}
	var p storage.Page
	if pg.Read(catalogRoot, &p) != nil {
		return 0
	}
	if p.VerifyChecksum() != nil || p.Validate() != nil {
		return 0
	}
	rec, err := p.Get(0)
	if err != nil || len(rec) != headerRecordLen || string(rec[:4]) != string(Magic[:]) {
		return 0
	}
	return binary.LittleEndian.Uint64(rec[5:])
}

// probeDBIDRaw reads the database id from page 1's FIXED byte offsets,
// deliberately ignoring the failed checksum and the (end-of-page, so
// least-torn-write-safe) slot directory: the catalog header record is
// pinned to page 1, slot 0, record offset 0, so its magic, version
// byte, and id always live at the same raw positions. Returns 0 unless
// the magic and a known version byte survive — garbage never
// impersonates an id. Files old enough to carry the short id-less
// header always pair with an id-less sidecar, which skips this check
// entirely.
func probeDBIDRaw(pg *storage.Pager) uint64 {
	if pg.NumPages() < catalogRoot {
		return 0
	}
	var p storage.Page
	if pg.Read(catalogRoot, &p) != nil {
		return 0
	}
	// Records grow up from byte 20 (the page header, including the page
	// LSN), and the catalog header is always the page's first record,
	// so: [20:24) magic, [24] version, [25:33) database id.
	if string(p[20:24]) != string(Magic[:]) {
		return 0
	}
	if v := p[24]; v != FormatVersion && v != formatV2 {
		return 0
	}
	return binary.LittleEndian.Uint64(p[25:33])
}

// headerRecordLen is the catalog header record's size with the database
// id extension; legacy headers are legacyHeaderLen bytes.
const (
	legacyHeaderLen = 5
	headerRecordLen = 13
)

// newDBID draws a random nonzero database identity.
func newDBID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// ids only gate the pairing check; a degraded source must
			// not block database creation
			return 1
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// Begin starts a transaction. Transactions are single-goroutine; every
// mutating store call takes one, and Store.Commit makes its writes
// durable as one atomic batch.
func (s *Store) Begin() *Txn { return s.bp.Begin() }

// initFile lays out a fresh database: the catalog heap with its header
// record (carrying a fresh random database id) and the free-list heap,
// committed and checkpointed.
func (s *Store) initFile() error {
	txn := s.Begin()
	cat, err := storage.CreateHeap(s.bp, txn)
	if err != nil {
		return err
	}
	if cat.FirstPage() != catalogRoot {
		return fmt.Errorf("store: catalog heap allocated at page %d, want %d", cat.FirstPage(), catalogRoot)
	}
	s.catalog = cat
	s.dbid = newDBID()
	// stamp the sidecar before the first commit creates it, so its
	// header carries the id from byte one
	s.wal.SetDBID(s.dbid)
	hdr := append(append([]byte{}, Magic[:]...), FormatVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, s.dbid)
	if _, err := cat.Insert(txn, hdr); err != nil {
		return err
	}
	if err := s.initFreeList(txn); err != nil {
		return err
	}
	if err := s.Commit(txn); err != nil {
		return err
	}
	return s.Flush()
}

// loadCatalog reads the header and every relation record, opening each
// relation's heap and rebuilding its indexes.
func (s *Store) loadCatalog() error {
	cat, err := storage.OpenHeap(s.bp, catalogRoot)
	if err != nil {
		return fmt.Errorf("%w: opening catalog: %v", ErrCorrupt, err)
	}
	s.catalog = cat
	sawHeader := false
	var defs []catalogEntry
	scanErr := cat.Scan(func(rid storage.RID, rec []byte) bool {
		if len(rec) == 0 {
			err = fmt.Errorf("%w: empty catalog record at %v", ErrCorrupt, rid)
			return false
		}
		switch rec[0] {
		case Magic[0]:
			if (len(rec) != legacyHeaderLen && len(rec) != headerRecordLen) ||
				string(rec[:4]) != string(Magic[:]) {
				err = fmt.Errorf("%w: bad header record", ErrCorrupt)
				return false
			}
			if rec[4] != FormatVersion && rec[4] != formatV2 {
				err = fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, rec[4])
				return false
			}
			s.hdrVer = rec[4]
			if len(rec) == headerRecordLen {
				s.dbid = binary.LittleEndian.Uint64(rec[5:])
			}
			sawHeader = true
			return true
		case relRecordTag:
			ce, derr := decodeCatalogRecord(rec)
			if derr != nil {
				err = derr
				return false
			}
			ce.rid = rid
			defs = append(defs, ce)
			return true
		default:
			err = fmt.Errorf("%w: unknown catalog record tag %q at %v", ErrCorrupt, rec[0], rid)
			return false
		}
	})
	if scanErr != nil {
		return fmt.Errorf("%w: scanning catalog: %v", ErrCorrupt, scanErr)
	}
	if err != nil {
		return err
	}
	if !sawHeader {
		return fmt.Errorf("%w: missing header record", ErrCorrupt)
	}
	for _, ce := range defs {
		if _, dup := s.rels[ce.def.Name]; dup {
			return fmt.Errorf("%w: duplicate catalog entry for %q", ErrCorrupt, ce.def.Name)
		}
		rs, err := openRelStore(s, ce)
		if err != nil {
			return err
		}
		s.rels[ce.def.Name] = rs
	}
	return nil
}

// upgradeIndexes is the one-time v2→v3 migration, run during Open
// (single-threaded, before the store is shared): every relation
// attached from a rebuild-on-open record gets durable indexes built by
// one heap scan, its catalog record is rewritten with the index roots,
// the header version byte is bumped in place, and the whole upgrade
// commits as one batch. Relations attached from v3 records that
// predate the B+tree range index (hash roots present, range roots
// absent) get their range indexes built the same way in the same
// batch. Fully current files return immediately.
func (s *Store) upgradeIndexes() error {
	var legacy, noRange []*RelStore
	for _, rs := range s.rels {
		switch {
		case rs.shards[0].ridsD == nil:
			legacy = append(legacy, rs)
		case rs.shards[0].rangeD == nil:
			noRange = append(noRange, rs)
		}
	}
	if len(legacy) == 0 && len(noRange) == 0 && s.hdrVer == FormatVersion {
		return nil
	}
	sort.Slice(legacy, func(i, j int) bool { return legacy[i].def.Name < legacy[j].def.Name })
	sort.Slice(noRange, func(i, j int) bool { return noRange[i].def.Name < noRange[j].def.Name })
	txn := s.Begin()
	for _, rs := range legacy {
		if err := s.buildIndexes(txn, rs); err != nil {
			return fmt.Errorf("%w: upgrading indexes of %q: %v", ErrCorrupt, rs.def.Name, err)
		}
	}
	for _, rs := range noRange {
		if err := s.buildRangeIndexes(txn, rs); err != nil {
			return fmt.Errorf("%w: upgrading range index of %q: %v", ErrCorrupt, rs.def.Name, err)
		}
	}
	if err := s.bumpHeaderVersion(txn); err != nil {
		return err
	}
	return s.Commit(txn)
}

// buildIndexes scan-builds all three durable indexes for a legacy
// relation under txn and rewrites its catalog record with the roots.
func (s *Store) buildIndexes(txn *Txn, rs *RelStore) error {
	ridsD, err := storage.CreateDiskIndex(s.bp, txn)
	if err != nil {
		return err
	}
	fixedD, err := storage.CreateDiskIndex(s.bp, txn)
	if err != nil {
		return err
	}
	rangeD, err := storage.CreateBTree(s.bp, txn)
	if err != nil {
		return err
	}
	fixedAttr := rs.fixedAttr()
	var putErr error
	if err := rs.scanRaw(context.Background(), func(rid storage.RID, t tuple.Tuple) bool {
		if putErr = ridsD.Put(txn, []byte(t.Key()), rid); putErr != nil {
			return false
		}
		for _, a := range t.Set(fixedAttr).Atoms() {
			if putErr = fixedD.Put(txn, encoding.AppendAtom(nil, a), rid); putErr != nil {
				return false
			}
			if putErr = rangeD.Put(txn, encoding.AppendOrderedAtom(nil, a), rid); putErr != nil {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	if putErr != nil {
		return putErr
	}
	if err := s.catalog.Delete(txn, rs.catRID); err != nil {
		return err
	}
	// legacy v2 relations are necessarily single-shard
	sh := rs.shards[0]
	rid, err := s.catalog.Insert(txn, encodeCatalogRecord(rs.def,
		[]shardRoots{{sh.heap.FirstPage(), ridsD.Root(), fixedD.Root(), rangeD.Root()}}))
	if err != nil {
		return err
	}
	rs.catRID = rid
	sh.mu.Lock()
	sh.ridsD, sh.fixedD = ridsD, fixedD
	sh.rids, sh.fixed = ridsD, fixedD
	sh.rangeD = rangeD
	sh.count = ridsD.Len()
	sh.mu.Unlock()
	return nil
}

// buildRangeIndexes scan-builds the B+tree range index of every shard
// of a relation whose hash indexes are already durable (a record from
// before range indexes existed) and rewrites its catalog record with
// the full root set.
func (s *Store) buildRangeIndexes(txn *Txn, rs *RelStore) error {
	roots := make([]shardRoots, 0, len(rs.shards))
	trees := make([]*storage.BTree, 0, len(rs.shards))
	fixedAttr := rs.fixedAttr()
	for _, sh := range rs.shards {
		rangeD, err := storage.CreateBTree(s.bp, txn)
		if err != nil {
			return err
		}
		var putErr error
		if err := sh.scanRaw(context.Background(), func(rid storage.RID, t tuple.Tuple) bool {
			for _, a := range t.Set(fixedAttr).Atoms() {
				if putErr = rangeD.Put(txn, encoding.AppendOrderedAtom(nil, a), rid); putErr != nil {
					return false
				}
			}
			return true
		}); err != nil {
			return err
		}
		if putErr != nil {
			return putErr
		}
		roots = append(roots, shardRoots{sh.heap.FirstPage(), sh.ridsD.Root(), sh.fixedD.Root(), rangeD.Root()})
		trees = append(trees, rangeD)
	}
	if err := s.catalog.Delete(txn, rs.catRID); err != nil {
		return err
	}
	rid, err := s.catalog.Insert(txn, encodeCatalogRecord(rs.def, roots))
	if err != nil {
		return err
	}
	rs.catRID = rid
	for i, sh := range rs.shards {
		sh.mu.Lock()
		sh.rangeD = trees[i]
		sh.mu.Unlock()
	}
	return nil
}

// bumpHeaderVersion overwrites the header record's version byte in
// place (the record never moves from page 1, slot 0 — probeDBID relies
// on that location).
func (s *Store) bumpHeaderVersion(txn *Txn) error {
	fr, err := s.bp.GetMut(txn, catalogRoot)
	if err != nil {
		return err
	}
	rec, gerr := fr.Page().Get(0)
	if gerr != nil || len(rec) < legacyHeaderLen || string(rec[:4]) != string(Magic[:]) {
		s.bp.Unpin(fr, false)
		return fmt.Errorf("%w: header record missing during upgrade", ErrCorrupt)
	}
	rec[4] = FormatVersion
	s.hdrVer = FormatVersion
	return s.bp.Unpin(fr, true)
}

// VerifyIndexes checks every relation's indexes against a fresh heap
// scan — the rebuild oracle (see RelStore.VerifyIndex). It performs no
// writes; tests, the crash harnesses, and the reopen bench leg call it
// after every recovery to assert the durable index is never more than
// a view of the heap.
func (s *Store) VerifyIndexes() error {
	s.mu.Lock()
	rels := make(map[string]*RelStore, len(s.rels))
	for n, rs := range s.rels {
		rels[n] = rs
	}
	s.mu.Unlock()
	for name, rs := range rels {
		if err := rs.VerifyIndex(); err != nil {
			return fmt.Errorf("relation %q: %w", name, err)
		}
	}
	return nil
}

// CreateRelation registers a new empty relation under txn: a fresh heap
// chain, both durable hash indexes, and a catalog record pointing at
// all three. The caller owns the commit boundary (the engine commits
// once per statement).
func (s *Store) CreateRelation(txn *Txn, def RelationDef) (*RelStore, error) {
	if err := def.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.rels[def.Name]; dup {
		return nil, fmt.Errorf("store: relation %q already exists", def.Name)
	}
	k := def.Shards
	if k <= 0 {
		k = 1
	}
	def.Shards = k
	shards := make([]*Shard, 0, k)
	roots := make([]shardRoots, 0, k)
	for ord := 0; ord < k; ord++ {
		heap, err := storage.CreateHeap(s.bp, txn)
		if err != nil {
			return nil, err
		}
		ridsD, err := storage.CreateDiskIndex(s.bp, txn)
		if err != nil {
			return nil, err
		}
		fixedD, err := storage.CreateDiskIndex(s.bp, txn)
		if err != nil {
			return nil, err
		}
		rangeD, err := storage.CreateBTree(s.bp, txn)
		if err != nil {
			return nil, err
		}
		roots = append(roots, shardRoots{heap.FirstPage(), ridsD.Root(), fixedD.Root(), rangeD.Root()})
		shards = append(shards, newShard(s, def, ord, heap, ridsD, fixedD, rangeD))
	}
	rid, err := s.catalog.Insert(txn, encodeCatalogRecord(def, roots))
	if err != nil {
		return nil, err
	}
	rs := newRelStore(s, def, rid, shards)
	rs.visibleAt = ^uint64(0) // invisible to snapshots until the commit publishes it
	s.markCreateLocked(txn, rs)
	s.rels[def.Name] = rs
	return rs, nil
}

// DropRelation removes a relation's durable state under txn: its
// catalog record is tombstoned and its pages — the heap chain and both
// index structures' chains — are pushed onto the free list for reuse,
// all in the same transaction, so across a crash the catalog and the
// free list agree. The in-memory catalog entry is kept until
// CompleteDrop, so a failed commit can be rolled back (Rollback) with
// the relation fully intact. Failures before the catalog delete leave
// the relation untouched; a free-list failure after it degrades to
// orphaned pages (never double-owned pages or a dangling catalog
// entry).
func (s *Store) DropRelation(txn *Txn, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.rels[name]
	if !ok {
		return fmt.Errorf("store: unknown relation %q", name)
	}
	pids, err := rs.pages()
	if err != nil {
		return err
	}
	if err := s.catalog.Delete(txn, rs.catRID); err != nil {
		return err
	}
	s.markDropLocked(txn, rs)
	if err := s.freePages(txn, pids); err != nil {
		// the relation is gone either way; the unfreed pages are
		// orphaned until the next open's sweep reclaims them
		return nil
	}
	return nil
}

// CompleteDrop removes the in-memory catalog entry of a dropped
// relation — call it after the drop's transaction committed. If a
// pinned snapshot predates the drop, the entry parks on the ghost list
// (still readable through those pins) until the last such pin closes.
func (s *Store) CompleteDrop(name string) {
	s.mu.Lock()
	if rs, ok := s.rels[name]; ok {
		delete(s.rels, name)
		if rs.droppedAt != 0 {
			if min, any := s.bp.MinPinnedLSN(); any && min < rs.droppedAt {
				s.ghosts = append(s.ghosts, rs)
			}
		}
	}
	s.mu.Unlock()
}

// ForgetRelation discards the in-memory entry of a relation whose
// creation was rolled back. Unlike AbortCreate it does not touch the
// transaction: the engine's multi-statement rollback calls Rollback
// once for the whole transaction and then forgets each pending create.
func (s *Store) ForgetRelation(name string) {
	s.CompleteDrop(name)
}

// Rollback discards the transaction's uncommitted page mutations: its
// dirty frames are dropped from the pool (the next read sees the last
// committed state — no-steal guarantees nothing uncommitted reached
// the file) and, if the transaction owned the free list, the in-memory
// mirror is rebuilt from the (now rolled-back) free-list heap so
// entries the transaction pushed or popped are forgotten or restored.
// The error paths of engine.Create/Drop use it so a failed commit can
// never wedge page ownership or leak half-applied catalog state.
func (s *Store) Rollback(txn *Txn) error {
	err := s.bp.Rollback(txn)
	// The rolled-back transaction may have chained fresh pages onto the
	// catalog heap (CreateRelation) whose frames are now discarded;
	// re-walk the chain so the cached insertion target never names a
	// page that is no longer linked.
	s.mu.Lock()
	s.dropMarksLocked(txn)
	if rerr := s.catalog.Rewind(); rerr != nil && err == nil {
		err = rerr
	}
	s.mu.Unlock()
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	if s.freeOwner != txn {
		return err
	}
	s.freeOwner = nil
	s.freeCond.Broadcast()
	s.free = s.free[:0]
	if rerr := s.freeHeap.Rewind(); rerr != nil && err == nil {
		err = rerr
	}
	if scanErr := s.freeHeap.Scan(func(rid storage.RID, rec []byte) bool {
		if len(rec) == 4 {
			s.free = append(s.free, freeEntry{pid: binary.LittleEndian.Uint32(rec), rid: rid})
		}
		return true
	}); scanErr != nil && err == nil {
		err = scanErr
	}
	return err
}

// AbortCreate unwinds a CreateRelation whose commit failed: the
// in-memory catalog entry is forgotten and the transaction's pages are
// rolled back. Pages the pager allocated for the aborted heap are
// orphaned (unreferenced, checksum-valid) until the next open's sweep
// reclaims them — the same bounded cost as any uncommitted allocation.
func (s *Store) AbortCreate(txn *Txn, name string) error {
	s.mu.Lock()
	delete(s.rels, name)
	s.mu.Unlock()
	return s.Rollback(txn)
}

// Rel looks up a relation store by name.
func (s *Store) Rel(name string) (*RelStore, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.rels[name]
	return rs, ok
}

// Relations returns the names of all stored relations (unsorted).
func (s *Store) Relations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	return out
}

// Commit makes the transaction durable: its dirty pages go to the WAL
// as one batch, merged with concurrently committing transactions into
// a single log write and fsync (leader/follower group commit), then
// write through to the data file. The transaction's free-list
// ownership, if any, is released. When the log has grown past the
// checkpoint threshold the commit is followed by an automatic
// checkpoint.
func (s *Store) Commit(txn *Txn) error {
	lsn, err := s.bp.CommitTxn(txn)
	s.releaseFree(txn)
	if err != nil {
		// marks stay pending: a retried commit (ErrWriteThroughFailed)
		// publishes them, a rollback drops them
		return err
	}
	s.publishMarks(txn, lsn)
	if s.ckptAt > 0 && s.wal.Size() >= s.ckptAt {
		return s.Flush()
	}
	return nil
}

// Flush is the checkpoint: sync the data file and reset the log (whose
// committed batches are now redundant). Uncommitted transactions'
// pages are untouched — they are buffered only, and become durable at
// their own Commit.
func (s *Store) Flush() error {
	return s.bp.Checkpoint()
}

// sealClock persists the commit clock across a clean close: the
// sidecar (whose header carries the clock) is about to be removed, so
// if the clock has advanced past what the catalog root's page LSN
// records, one WAL-protected micro-commit touching the catalog root
// stamps the final clock into its page header. A session that wrote
// nothing skips this entirely — closing a read-only open leaves the
// file byte-identical.
func (s *Store) sealClock() error {
	cur := s.bp.LSN()
	if cur == 0 || s.pager.NumPages() < catalogRoot {
		return nil
	}
	fr, err := s.bp.Get(catalogRoot)
	if err != nil {
		return err
	}
	sealed := fr.Page().LSN()
	if err := s.bp.Unpin(fr, false); err != nil {
		return err
	}
	if sealed >= cur {
		return nil
	}
	txn := s.Begin()
	mf, err := s.bp.GetMut(txn, catalogRoot)
	if err != nil {
		return err
	}
	if err := s.bp.Unpin(mf, true); err != nil {
		return err
	}
	return s.Commit(txn)
}

// Close checkpoints and closes the underlying files. After a clean
// close the WAL sidecar is removed — its absence marks a clean
// shutdown, and Save snapshots leave no sidecar behind. Transactions
// still open at Close are discarded, not committed.
func (s *Store) Close() error {
	if err := s.sealClock(); err != nil {
		s.wal.Close()
		s.pager.Close()
		return err
	}
	if err := s.Flush(); err != nil {
		s.wal.Close()
		s.pager.Close()
		return err
	}
	existed, werr := s.wal.Close()
	if existed && werr == nil {
		if rerr := s.remove(s.walPath); rerr != nil && !os.IsNotExist(rerr) {
			werr = rerr
		}
	}
	if cerr := s.pager.Close(); cerr != nil {
		return cerr
	}
	return werr
}

// Discard closes the underlying files WITHOUT flushing dirty buffered
// pages or checkpointing — for error paths that must not mutate a file
// they failed to open or attach, and for crash simulation in tests.
func (s *Store) Discard() error {
	s.wal.Close()
	return s.pager.Close()
}

// DBID returns the database's identity (0 for legacy files that
// predate the id extension).
func (s *Store) DBID() uint64 { return s.dbid }

// PoolStats reports the shared buffer pool's (hits, misses, evictions)
// accumulated since Open returned; open-time I/O (recovery replay,
// catalog load, index rebuild) is bucketed separately in OpenIOStats.
func (s *Store) PoolStats() (hits, misses, evictions int) { return s.bp.Stats() }

// AllPoolStats returns every buffer-pool counter (including overflows
// and checksum repairs) since Open returned.
func (s *Store) AllPoolStats() storage.PoolStats { return s.bp.Snapshot() }

// OpenIOStats returns the buffer-pool counters consumed by Open itself:
// recovery replay, catalog load, and index rebuild. Keeping this bucket
// separate keeps steady-state hit rates honest.
func (s *Store) OpenIOStats() storage.PoolStats { return s.openStats }

// WALStats reports write-ahead-log activity, including what open-time
// recovery replayed and how many transactions the group-commit
// scheduler merged per fsync.
func (s *Store) WALStats() storage.WALStats { return s.wal.Stats() }

// NumPages returns the number of allocated pages in the file.
func (s *Store) NumPages() uint32 { return s.pager.NumPages() }
