// Package store maps catalog relations onto the paged storage
// substrate: each relation's canonical NFR tuples live in a heap file
// of encoded records behind a shared buffer pool, with an in-memory
// hash index (rebuilt on open) keyed on the fixed (determinant)
// attribute so victim tuples can be located by key instead of by
// scanning. The whole database is one paged file plus a write-ahead-log
// sidecar (<path>.wal):
//
//	page 1    catalog heap chain — record 0 is the header
//	          (magic "NFRS" + format version), every further live
//	          record is one relation definition + its heap root
//	page 2    free-list heap chain — 4-byte page ids reclaimable
//	          from dropped relations (see freelist.go)
//	page *    per-relation heap chains of encoding.EncodeTuple records
//
// The store is the durability half of the engine's "realization view"
// (paper Section 5): the engine keeps the canonical form in memory for
// the Section-4 update algorithms and writes every tuple mutation
// through via the update.Sink interface; Commit groups a statement's
// dirty pages into one WAL batch with a single fsync, and opening a
// crashed file replays committed batches and discards torn tails. See
// docs/storage.md for the layer diagram and docs/recovery.md for the
// recovery protocol.
package store

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/storage"
)

// Magic identifies a paged NFR database file (header record of the
// catalog heap).
var Magic = [4]byte{'N', 'F', 'R', 'S'}

// FormatVersion is the current paged file format version. Version 2
// added the page-header checksum field, the free-list page, and the WAL
// sidecar; version-1 files predate the checksum field and are not
// readable.
const FormatVersion = 2

// DefaultPoolPages is the buffer-pool capacity used when Options does
// not specify one.
const DefaultPoolPages = 64

// DefaultCheckpointBytes is the WAL size that triggers an automatic
// checkpoint after a commit when Options does not specify one.
const DefaultCheckpointBytes = 4 << 20

// ErrCorrupt is wrapped by open/scan errors caused by a malformed
// database file (truncation, torn pages, garbage records).
var ErrCorrupt = errors.New("store: corrupt database file")

// catalogRoot is the page id of the catalog heap's first page.
const catalogRoot = 1

// Options tunes a Store.
type Options struct {
	// PoolPages is the buffer-pool capacity in pages (0 = default).
	PoolPages int
	// OpenFile opens database files (the data file and the WAL
	// sidecar). nil = the operating-system filesystem. Crash tests
	// substitute an in-memory recording implementation.
	OpenFile storage.OpenFileFunc
	// RemoveFile deletes a file; used to remove the WAL sidecar on a
	// clean close (its absence marks a clean shutdown). nil = os.Remove.
	RemoveFile func(name string) error
	// CheckpointBytes is the WAL size at which a commit triggers an
	// automatic checkpoint (sync the data file, reset the log).
	// 0 = DefaultCheckpointBytes, negative = only checkpoint on
	// Flush/Close.
	CheckpointBytes int64
}

// Store is one paged database file: a catalog of relation stores
// sharing a pager, a write-ahead log, and a buffer pool.
type Store struct {
	mu      sync.Mutex
	pager   *storage.Pager
	bp      *storage.BufferPool
	wal     *storage.WAL
	walPath string
	remove  func(string) error
	ckptAt  int64
	catalog *storage.HeapFile
	rels    map[string]*RelStore

	freeMu   sync.Mutex
	freeHeap *storage.HeapFile
	free     []freeEntry

	openStats storage.PoolStats
}

// Open opens the paged database at path, creating and initializing the
// file when it does not exist (or is empty). Opening is also the
// recovery point: committed batches found in the WAL sidecar are
// replayed into the data file (healing torn pages and lost tails) and
// the log's torn tail, if any, is discarded — see docs/recovery.md. On
// an existing file the catalog is then read and every relation's hash
// indexes are rebuilt from its heap (the classic rebuild-on-start
// design: the heap and the log are the only durable structures).
func Open(path string, opts Options) (*Store, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = DefaultPoolPages
	}
	openFile := opts.OpenFile
	if openFile == nil {
		openFile = storage.OpenOSFile
	}
	remove := opts.RemoveFile
	if remove == nil {
		remove = os.Remove
	}
	ckptAt := opts.CheckpointBytes
	if ckptAt == 0 {
		ckptAt = DefaultCheckpointBytes
	}

	walPath := path + ".wal"
	wal, err := storage.OpenWAL(walPath, openFile)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	closeWAL := func() { wal.Close() }

	df, err := openFile(path, true)
	if err != nil {
		closeWAL()
		return nil, err
	}
	size, err := df.Size()
	if err != nil {
		df.Close()
		closeWAL()
		return nil, err
	}
	if size%storage.PageSize != 0 {
		// A ragged tail is a torn extension write (Pager.Allocate grows
		// the file mid-statement, before the statement's batch exists in
		// the log), so the partial page is never committed data: round
		// the file down and let replay and validation decide. This is
		// safe even with an empty log because every committed live page
		// is referenced — by the catalog, the free list, or a heap
		// chain — so if the rounding cut real data, catalog/chain
		// validation below fail-stops; silent loss is impossible. A file
		// rounded down to zero pages has no catalog to validate against
		// and is refused rather than silently re-initialized.
		rounded := size - size%storage.PageSize
		if rounded == 0 && wal.Stats().RecoveredBatches == 0 {
			df.Close()
			closeWAL()
			return nil, fmt.Errorf("%w: file size %d is less than one page and no WAL to recover from", ErrCorrupt, size)
		}
		if err := df.Truncate(rounded); err != nil {
			df.Close()
			closeWAL()
			return nil, err
		}
	}
	pg, err := storage.NewPager(df)
	if err != nil {
		df.Close()
		closeWAL()
		return nil, err
	}

	// Redo: apply the latest committed image of every logged page, then
	// checkpoint the log. Idempotent — a crash mid-replay just replays
	// again on the next open.
	if images := wal.CommittedImages(); len(images) > 0 {
		for pid, img := range images {
			if err := pg.EnsureAllocated(pid); err != nil {
				pg.Close()
				closeWAL()
				return nil, err
			}
			if err := pg.Write(pid, img); err != nil {
				pg.Close()
				closeWAL()
				return nil, err
			}
		}
		if err := pg.Sync(); err != nil {
			pg.Close()
			closeWAL()
			return nil, err
		}
		if err := wal.Reset(); err != nil {
			pg.Close()
			closeWAL()
			return nil, err
		}
	}

	bp, err := storage.NewBufferPool(pg, opts.PoolPages)
	if err != nil {
		pg.Close()
		closeWAL()
		return nil, err
	}
	bp.AttachWAL(wal)
	s := &Store{
		pager: pg, bp: bp, wal: wal, walPath: walPath,
		remove: remove, ckptAt: ckptAt,
		rels: make(map[string]*RelStore),
	}
	if pg.NumPages() == 0 {
		if err := s.initFile(); err != nil {
			s.Discard()
			return nil, err
		}
	} else {
		if err := s.loadCatalog(); err != nil {
			s.Discard()
			return nil, err
		}
		if err := s.loadFreeList(); err != nil {
			s.Discard()
			return nil, err
		}
	}
	// Recycling starts only now: nothing above may hand out free pages,
	// and the open-phase I/O is bucketed away from steady-state stats.
	bp.SetAllocator(s.recycle)
	s.openStats = bp.TakeStats()
	return s, nil
}

// initFile lays out a fresh database: the catalog heap with its header
// record and the free-list heap, committed and checkpointed.
func (s *Store) initFile() error {
	cat, err := storage.CreateHeap(s.bp)
	if err != nil {
		return err
	}
	if cat.FirstPage() != catalogRoot {
		return fmt.Errorf("store: catalog heap allocated at page %d, want %d", cat.FirstPage(), catalogRoot)
	}
	s.catalog = cat
	hdr := append(append([]byte{}, Magic[:]...), FormatVersion)
	if _, err := cat.Insert(hdr); err != nil {
		return err
	}
	if err := s.initFreeList(); err != nil {
		return err
	}
	return s.Flush()
}

// loadCatalog reads the header and every relation record, opening each
// relation's heap and rebuilding its indexes.
func (s *Store) loadCatalog() error {
	cat, err := storage.OpenHeap(s.bp, catalogRoot)
	if err != nil {
		return fmt.Errorf("%w: opening catalog: %v", ErrCorrupt, err)
	}
	s.catalog = cat
	sawHeader := false
	var defs []catalogEntry
	scanErr := cat.Scan(func(rid storage.RID, rec []byte) bool {
		if len(rec) == 0 {
			err = fmt.Errorf("%w: empty catalog record at %v", ErrCorrupt, rid)
			return false
		}
		switch rec[0] {
		case Magic[0]:
			if len(rec) != 5 || string(rec[:4]) != string(Magic[:]) {
				err = fmt.Errorf("%w: bad header record", ErrCorrupt)
				return false
			}
			if rec[4] != FormatVersion {
				err = fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, rec[4])
				return false
			}
			sawHeader = true
			return true
		case relRecordTag:
			ce, derr := decodeCatalogRecord(rec)
			if derr != nil {
				err = derr
				return false
			}
			ce.rid = rid
			defs = append(defs, ce)
			return true
		default:
			err = fmt.Errorf("%w: unknown catalog record tag %q at %v", ErrCorrupt, rec[0], rid)
			return false
		}
	})
	if scanErr != nil {
		return fmt.Errorf("%w: scanning catalog: %v", ErrCorrupt, scanErr)
	}
	if err != nil {
		return err
	}
	if !sawHeader {
		return fmt.Errorf("%w: missing header record", ErrCorrupt)
	}
	for _, ce := range defs {
		if _, dup := s.rels[ce.def.Name]; dup {
			return fmt.Errorf("%w: duplicate catalog entry for %q", ErrCorrupt, ce.def.Name)
		}
		rs, err := openRelStore(s, ce)
		if err != nil {
			return err
		}
		s.rels[ce.def.Name] = rs
	}
	return nil
}

// CreateRelation registers a new empty relation: a fresh heap chain
// plus a catalog record pointing at it. The caller owns the commit
// boundary (the engine commits once per statement).
func (s *Store) CreateRelation(def RelationDef) (*RelStore, error) {
	if err := def.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.rels[def.Name]; dup {
		return nil, fmt.Errorf("store: relation %q already exists", def.Name)
	}
	heap, err := storage.CreateHeap(s.bp)
	if err != nil {
		return nil, err
	}
	rid, err := s.catalog.Insert(encodeCatalogRecord(def, heap.FirstPage()))
	if err != nil {
		return nil, err
	}
	rs := newRelStore(s, def, heap, rid)
	s.rels[def.Name] = rs
	return rs, nil
}

// DropRelation removes a relation: its catalog record is tombstoned and
// its heap chain's pages are pushed onto the free list for reuse.
// Failures before the catalog delete leave the relation intact; a
// free-list failure after it degrades to orphaned pages (never
// double-owned pages or a dangling catalog entry).
func (s *Store) DropRelation(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.rels[name]
	if !ok {
		return fmt.Errorf("store: unknown relation %q", name)
	}
	pids, err := rs.heap.Pages()
	if err != nil {
		return err
	}
	if err := s.catalog.Delete(rs.catRID); err != nil {
		return err
	}
	delete(s.rels, name)
	if err := s.freePages(pids); err != nil {
		// the relation is gone either way; the unfreed pages leak until
		// the next Save snapshot compacts the file
		return nil
	}
	return nil
}

// Rel looks up a relation store by name.
func (s *Store) Rel(name string) (*RelStore, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.rels[name]
	return rs, ok
}

// Relations returns the names of all stored relations (unsorted).
func (s *Store) Relations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	return out
}

// Commit groups every dirty buffered page into one WAL batch (a single
// fsync) and writes the pages through to the data file — the
// group-commit boundary the engine invokes once per statement. When the
// log has grown past the checkpoint threshold the commit is followed by
// an automatic checkpoint.
func (s *Store) Commit() error {
	if err := s.bp.Commit(); err != nil {
		return err
	}
	if s.ckptAt > 0 && s.wal.Size() >= s.ckptAt {
		return s.Flush()
	}
	return nil
}

// Flush is the checkpoint: commit any dirty pages, sync the data file,
// and reset the log (whose batches are now redundant).
func (s *Store) Flush() error {
	if err := s.bp.Commit(); err != nil {
		return err
	}
	if err := s.pager.Sync(); err != nil {
		return err
	}
	return s.wal.Reset()
}

// Close checkpoints and closes the underlying files. After a clean
// close the WAL sidecar is removed — its absence marks a clean
// shutdown, and Save snapshots leave no sidecar behind.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		s.wal.Close()
		s.pager.Close()
		return err
	}
	existed, werr := s.wal.Close()
	if existed && werr == nil {
		if rerr := s.remove(s.walPath); rerr != nil && !os.IsNotExist(rerr) {
			werr = rerr
		}
	}
	if cerr := s.pager.Close(); cerr != nil {
		return cerr
	}
	return werr
}

// Discard closes the underlying files WITHOUT flushing dirty buffered
// pages or checkpointing — for error paths that must not mutate a file
// they failed to open or attach, and for crash simulation in tests.
func (s *Store) Discard() error {
	s.wal.Close()
	return s.pager.Close()
}

// PoolStats reports the shared buffer pool's (hits, misses, evictions)
// accumulated since Open returned; open-time I/O (recovery replay,
// catalog load, index rebuild) is bucketed separately in OpenIOStats.
func (s *Store) PoolStats() (hits, misses, evictions int) { return s.bp.Stats() }

// AllPoolStats returns every buffer-pool counter (including overflows
// and checksum repairs) since Open returned.
func (s *Store) AllPoolStats() storage.PoolStats { return s.bp.Snapshot() }

// OpenIOStats returns the buffer-pool counters consumed by Open itself:
// recovery replay, catalog load, and index rebuild. Keeping this bucket
// separate keeps steady-state hit rates honest.
func (s *Store) OpenIOStats() storage.PoolStats { return s.openStats }

// WALStats reports write-ahead-log activity, including what open-time
// recovery replayed.
func (s *Store) WALStats() storage.WALStats { return s.wal.Stats() }

// NumPages returns the number of allocated pages in the file.
func (s *Store) NumPages() uint32 { return s.pager.NumPages() }
