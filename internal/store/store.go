// Package store maps catalog relations onto the paged storage
// substrate: each relation's canonical NFR tuples live in a heap file
// of encoded records behind a shared buffer pool, with an in-memory
// hash index (rebuilt on open) keyed on the fixed (determinant)
// attribute so victim tuples can be located by key instead of by
// scanning. The whole database is one paged file:
//
//	page 1..  catalog heap chain — record 0 is the header
//	          (magic "NFRS" + format version), every further live
//	          record is one relation definition + its heap root
//	page *    per-relation heap chains of encoding.EncodeTuple records
//
// The store is the durability half of the engine's "realization view"
// (paper Section 5): the engine keeps the canonical form in memory for
// the Section-4 update algorithms and writes every tuple mutation
// through via the update.Sink interface. See docs/storage.md for the
// layer diagram and format details.
package store

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// Magic identifies a paged NFR database file (header record of the
// catalog heap).
var Magic = [4]byte{'N', 'F', 'R', 'S'}

// FormatVersion is the current paged file format version.
const FormatVersion = 1

// DefaultPoolPages is the buffer-pool capacity used when Options does
// not specify one.
const DefaultPoolPages = 64

// ErrCorrupt is wrapped by open/scan errors caused by a malformed
// database file (truncation, torn pages, garbage records).
var ErrCorrupt = errors.New("store: corrupt database file")

// catalogRoot is the page id of the catalog heap's first page.
const catalogRoot = 1

// Options tunes a Store.
type Options struct {
	// PoolPages is the buffer-pool capacity in pages (0 = default).
	PoolPages int
}

// Store is one paged database file: a catalog of relation stores
// sharing a pager and buffer pool.
type Store struct {
	mu      sync.Mutex
	pager   *storage.Pager
	bp      *storage.BufferPool
	catalog *storage.HeapFile
	rels    map[string]*RelStore
}

// Open opens the paged database at path, creating and initializing the
// file when it does not exist (or is empty). On an existing file the
// catalog is read and every relation's hash indexes are rebuilt from
// its heap (the classic rebuild-on-start design: the heap is the only
// durable structure).
func Open(path string, opts Options) (*Store, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = DefaultPoolPages
	}
	pg, err := storage.OpenPager(path)
	if err != nil {
		return nil, err
	}
	bp, err := storage.NewBufferPool(pg, opts.PoolPages)
	if err != nil {
		pg.Close()
		return nil, err
	}
	s := &Store{pager: pg, bp: bp, rels: make(map[string]*RelStore)}
	if pg.NumPages() == 0 {
		if err := s.initFile(); err != nil {
			pg.Close()
			return nil, err
		}
		return s, nil
	}
	if err := s.loadCatalog(); err != nil {
		pg.Close()
		return nil, err
	}
	return s, nil
}

// initFile lays out a fresh database: the catalog heap with its header
// record.
func (s *Store) initFile() error {
	cat, err := storage.CreateHeap(s.bp)
	if err != nil {
		return err
	}
	if cat.FirstPage() != catalogRoot {
		return fmt.Errorf("store: catalog heap allocated at page %d, want %d", cat.FirstPage(), catalogRoot)
	}
	s.catalog = cat
	hdr := append(append([]byte{}, Magic[:]...), FormatVersion)
	if _, err := cat.Insert(hdr); err != nil {
		return err
	}
	return s.bp.Flush()
}

// loadCatalog reads the header and every relation record, opening each
// relation's heap and rebuilding its indexes.
func (s *Store) loadCatalog() error {
	cat, err := storage.OpenHeap(s.bp, catalogRoot)
	if err != nil {
		return fmt.Errorf("%w: opening catalog: %v", ErrCorrupt, err)
	}
	s.catalog = cat
	sawHeader := false
	var defs []catalogEntry
	scanErr := cat.Scan(func(rid storage.RID, rec []byte) bool {
		if len(rec) == 0 {
			err = fmt.Errorf("%w: empty catalog record at %v", ErrCorrupt, rid)
			return false
		}
		switch rec[0] {
		case Magic[0]:
			if len(rec) != 5 || string(rec[:4]) != string(Magic[:]) {
				err = fmt.Errorf("%w: bad header record", ErrCorrupt)
				return false
			}
			if rec[4] != FormatVersion {
				err = fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, rec[4])
				return false
			}
			sawHeader = true
			return true
		case relRecordTag:
			ce, derr := decodeCatalogRecord(rec)
			if derr != nil {
				err = derr
				return false
			}
			ce.rid = rid
			defs = append(defs, ce)
			return true
		default:
			err = fmt.Errorf("%w: unknown catalog record tag %q at %v", ErrCorrupt, rec[0], rid)
			return false
		}
	})
	if scanErr != nil {
		return fmt.Errorf("%w: scanning catalog: %v", ErrCorrupt, scanErr)
	}
	if err != nil {
		return err
	}
	if !sawHeader {
		return fmt.Errorf("%w: missing header record", ErrCorrupt)
	}
	for _, ce := range defs {
		if _, dup := s.rels[ce.def.Name]; dup {
			return fmt.Errorf("%w: duplicate catalog entry for %q", ErrCorrupt, ce.def.Name)
		}
		rs, err := openRelStore(s, ce)
		if err != nil {
			return err
		}
		s.rels[ce.def.Name] = rs
	}
	return nil
}

// CreateRelation registers a new empty relation: a fresh heap chain
// plus a catalog record pointing at it.
func (s *Store) CreateRelation(def RelationDef) (*RelStore, error) {
	if err := def.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.rels[def.Name]; dup {
		return nil, fmt.Errorf("store: relation %q already exists", def.Name)
	}
	heap, err := storage.CreateHeap(s.bp)
	if err != nil {
		return nil, err
	}
	rid, err := s.catalog.Insert(encodeCatalogRecord(def, heap.FirstPage()))
	if err != nil {
		return nil, err
	}
	rs := newRelStore(s, def, heap, rid)
	s.rels[def.Name] = rs
	return rs, nil
}

// DropRelation removes a relation: its catalog record is tombstoned and
// its heap records deleted. The heap's pages themselves are orphaned
// (there is no free list yet; see docs/storage.md).
func (s *Store) DropRelation(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.rels[name]
	if !ok {
		return fmt.Errorf("store: unknown relation %q", name)
	}
	// clear first: if record deletion fails midway the catalog entry
	// survives, so the relation stays visible (partially emptied) and
	// the caller's view never diverges from the file's.
	if err := rs.clear(); err != nil {
		return err
	}
	if err := s.catalog.Delete(rs.catRID); err != nil {
		return err
	}
	delete(s.rels, name)
	return nil
}

// Rel looks up a relation store by name.
func (s *Store) Rel(name string) (*RelStore, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.rels[name]
	return rs, ok
}

// Relations returns the names of all stored relations (unsorted).
func (s *Store) Relations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	return out
}

// Flush writes every dirty buffered page back and syncs the file.
func (s *Store) Flush() error { return s.bp.Flush() }

// Close flushes and closes the underlying file.
func (s *Store) Close() error {
	if err := s.bp.Flush(); err != nil {
		s.pager.Close()
		return err
	}
	return s.pager.Close()
}

// Discard closes the underlying file WITHOUT flushing dirty buffered
// pages — for error paths that must not mutate a file they failed to
// open or attach.
func (s *Store) Discard() error { return s.pager.Close() }

// PoolStats reports the shared buffer pool's (hits, misses, evictions).
func (s *Store) PoolStats() (hits, misses, evictions int) { return s.bp.Stats() }

// NumPages returns the number of allocated pages in the file.
func (s *Store) NumPages() uint32 { return s.pager.NumPages() }
