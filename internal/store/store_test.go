package store

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/workload"
)

func testDef(t *testing.T) RelationDef {
	t.Helper()
	s := schema.MustOf("Student", "Course", "Club")
	return RelationDef{
		Name:   "R1",
		Schema: s,
		Order:  schema.MustPermOf(s, "Course", "Club", "Student"),
		FDs:    []dep.FD{dep.NewFD([]string{"Student"}, []string{"Club"})},
		MVDs:   []dep.MVD{dep.NewMVD([]string{"Student"}, []string{"Course"})},
	}
}

func TestCreateInsertScanReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nfrs")
	st, err := Open(path, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.CreateRelation(txn, def); err == nil {
		t.Error("duplicate relation accepted")
	}
	e := workload.GenEnrollment(3, workload.EnrollmentParams{
		Students: 20, CoursePool: 10, ClubPool: 4, SemesterPool: 3,
		CoursesPerStudent: 3, ClubsPerStudent: 2,
	})
	canon, _ := e.R1.Canonical(def.Order)
	for i := 0; i < canon.Len(); i++ {
		if err := rs.Insert(txn, canon.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if rs.Len() != canon.Len() {
		t.Fatalf("Len = %d, want %d", rs.Len(), canon.Len())
	}
	got, err := rs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(canon) {
		t.Fatal("loaded relation differs from inserted content")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// reopen: catalog + heap + rebuilt indexes
	st2, err := Open(path, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rs2, ok := st2.Rel("R1")
	if !ok {
		t.Fatalf("relation lost on reopen; have %v", st2.Relations())
	}
	d2 := rs2.Def()
	if !d2.Schema.Equal(def.Schema) || d2.Order.String() != def.Order.String() {
		t.Fatal("definition changed across reopen")
	}
	if len(d2.FDs) != 1 || d2.FDs[0].String() != def.FDs[0].String() {
		t.Fatalf("FDs lost: %v", d2.FDs)
	}
	if len(d2.MVDs) != 1 || d2.MVDs[0].String() != def.MVDs[0].String() {
		t.Fatalf("MVDs lost: %v", d2.MVDs)
	}
	got2, err := rs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(canon) {
		t.Fatal("content changed across reopen")
	}
	// the rebuilt primary index supports removal
	victim := canon.Tuple(0)
	txn2 := st2.Begin()
	if err := rs2.Remove(txn2, victim); err != nil {
		t.Fatal(err)
	}
	if rs2.Len() != canon.Len()-1 {
		t.Fatalf("Len after remove = %d", rs2.Len())
	}
	if err := rs2.Remove(txn2, victim); err == nil {
		t.Error("double remove accepted")
	}
	if err := st2.Commit(txn2); err != nil {
		t.Fatal(err)
	}
}

func TestLookupFixed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nfrs")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	def := testDef(t) // fixed (last-nested) attribute is Student
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	// two tuples fixed on different students, one with a grouped set
	t1 := tupleOf([][]string{{"c1", "c2"}, {"b1"}, {"s1"}}, def.Order)
	t2 := tupleOf([][]string{{"c3"}, {"b2"}, {"s2", "s3"}}, def.Order)
	for _, tp := range []tuple.Tuple{t1, t2} {
		if err := rs.Insert(txn, tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	hits, err := rs.LookupFixed(value.NewString("s1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || !hits[0].Equal(t1) {
		t.Fatalf("LookupFixed(s1) = %v", hits)
	}
	// grouped determinant: both member atoms find the tuple
	for _, s := range []string{"s2", "s3"} {
		hits, err := rs.LookupFixed(value.NewString(s))
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != 1 || !hits[0].Equal(t2) {
			t.Fatalf("LookupFixed(%s) = %v", s, hits)
		}
	}
	if hits, _ := rs.LookupFixed(value.NewString("s9")); len(hits) != 0 {
		t.Fatalf("LookupFixed(s9) = %v", hits)
	}
	// removal unindexes every member atom
	txn2 := st.Begin()
	if err := rs.Remove(txn2, t2); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(txn2); err != nil {
		t.Fatal(err)
	}
	if hits, _ := rs.LookupFixed(value.NewString("s3")); len(hits) != 0 {
		t.Fatalf("LookupFixed(s3) after remove = %v", hits)
	}
}

// tupleOf builds an NFR tuple from components listed in nest order
// (Course, Club, Student for testDef), placing each at its schema
// position.
func tupleOf(comps [][]string, order schema.Permutation) tuple.Tuple {
	sets := make([][]string, len(comps))
	for pos, attr := range order {
		sets[attr] = comps[pos]
	}
	return core.TupleOfSets(sets...)
}

func TestDropRelation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nfrs")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Insert(txn, tupleOf([][]string{{"c1"}, {"b1"}, {"s1"}}, def.Order)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	txn2 := st.Begin()
	if err := st.DropRelation(txn2, "R1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(txn2); err != nil {
		t.Fatal(err)
	}
	st.CompleteDrop("R1")
	if err := st.DropRelation(st.Begin(), "R1"); err == nil {
		t.Error("double drop accepted")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(st2.Relations()) != 0 {
		t.Fatalf("dropped relation resurrected: %v", st2.Relations())
	}
}

func TestCreateRelationValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nfrs")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	txn := st.Begin()
	if _, err := st.CreateRelation(txn, RelationDef{}); err == nil {
		t.Error("empty def accepted")
	}
	s := schema.MustOf("A", "B")
	if _, err := st.CreateRelation(txn, RelationDef{Name: "r", Schema: s, Order: schema.Permutation{0}}); err == nil {
		t.Error("bad order accepted")
	}
}

func TestCatalogRecordRoundTrip(t *testing.T) {
	def := testDef(t)
	rec := encodeCatalogRecord(def, []shardRoots{{7, 9, 12, 0}})
	ce, err := decodeCatalogRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if ce.ridsRoot != 9 || ce.fixedRoot != 12 {
		t.Fatalf("index roots lost: %d/%d", ce.ridsRoot, ce.fixedRoot)
	}
	// a v2 record (no roots) still decodes, with zero roots
	v2, err := decodeCatalogRecord(encodeCatalogRecord(def, []shardRoots{{7, 0, 0, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if v2.ridsRoot != 0 || v2.fixedRoot != 0 {
		t.Fatalf("v2 record decoded roots %d/%d", v2.ridsRoot, v2.fixedRoot)
	}
	if ce.heapFirst != 7 || ce.def.Name != def.Name ||
		!ce.def.Schema.Equal(def.Schema) ||
		ce.def.Order.String() != def.Order.String() ||
		len(ce.def.FDs) != 1 || !ce.def.FDs[0].Equal(def.FDs[0]) ||
		len(ce.def.MVDs) != 1 || ce.def.MVDs[0].String() != def.MVDs[0].String() {
		t.Fatalf("round trip changed definition: %+v", ce)
	}
	// every truncation of the record is rejected, never panics — except
	// the one that strips exactly the optional index-root tail, which is
	// a well-formed v2 record by construction
	v2len := len(encodeCatalogRecord(def, []shardRoots{{7, 0, 0, 0}}))
	for i := 0; i < len(rec); i++ {
		if _, err := decodeCatalogRecord(rec[:i+1]); err == nil && i+1 != len(rec) && i+1 != v2len {
			t.Fatalf("truncated catalog record of %d bytes accepted", i+1)
		}
	}
}

// TestSweepReclaimsOrphanedPages: a drop that runs while ANOTHER
// transaction owns the free list leaves its chain orphaned (freePages
// refuses to wait — see freelist.go). The sweep that reclaims such
// pages runs automatically only on crashed opens (sidecar present);
// after a clean close the orphans stay until an explicit SweepOrphans
// — a clean open must stay bounded by catalog + index metadata and
// never walk the heaps.
func TestSweepReclaimsOrphanedPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.nfrs")
	def := testDef(t)
	// several fat records so the chain spans multiple pages
	pad := make([]byte, 900)
	for i := range pad {
		pad[i] = 'x'
	}
	// orphanDrop creates a multi-page relation and drops it while a
	// foreign transaction owns the free list, returning the orphaned
	// chain length (heap + index pages).
	orphanDrop := func(st *Store, name string) int {
		t.Helper()
		d := def
		d.Name = name
		setup := st.Begin()
		rs, err := st.CreateRelation(setup, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			tp := tupleOf([][]string{
				{string(pad) + string(rune('a'+i))}, {"b"}, {string(rune('s' + i))},
			}, d.Order)
			if err := rs.Insert(setup, tp); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Commit(setup); err != nil {
			t.Fatal(err)
		}
		chain, err := rs.pages()
		if err != nil {
			t.Fatal(err)
		}
		if len(chain) < 2 {
			t.Fatalf("chain has %d page(s); need ≥ 2 for a meaningful sweep", len(chain))
		}
		free0 := st.FreePages()
		owner := st.Begin()
		if err := st.freePages(owner, nil); err != nil {
			t.Fatal(err)
		}
		drop := st.Begin()
		if err := st.DropRelation(drop, name); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(drop); err != nil {
			t.Fatal(err)
		}
		st.CompleteDrop(name)
		if got := st.FreePages(); got != free0 {
			t.Fatalf("drop under foreign free-list ownership freed %d page(s), want %d (orphaned)", got, free0)
		}
		if err := st.Commit(owner); err != nil {
			t.Fatal(err)
		}
		return len(chain)
	}

	st, err := Open(path, Options{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	orphaned := orphanDrop(st, "R1")
	// "crash": checkpoint so the data file is current, then discard —
	// the sidecar stays behind, so the next open runs recovery AND the
	// sweep
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st.Discard()

	st2, err := Open(path, Options{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.FreePages(); got < orphaned {
		t.Fatalf("post-crash sweep reclaimed %d page(s), want ≥ %d (the orphaned chain)", got, orphaned)
	}
	reclaimed := st2.FreePages()

	// orphan again, close CLEANLY: the next open must NOT sweep...
	orphaned2 := orphanDrop(st2, "R2")
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(path, Options{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	after := st3.FreePages()
	if after >= reclaimed+orphaned2 {
		t.Fatalf("clean open swept orphans: %d free pages (had %d)", after, reclaimed)
	}
	// ...but an explicit sweep reclaims them
	if err := st3.SweepOrphans(); err != nil {
		t.Fatal(err)
	}
	if got := st3.FreePages(); got < after+orphaned2 {
		t.Fatalf("explicit sweep reclaimed %d page(s), want ≥ %d", got-after, orphaned2)
	}
	// a second sweep finds nothing further
	before := st3.FreePages()
	if err := st3.SweepOrphans(); err != nil {
		t.Fatal(err)
	}
	if got := st3.FreePages(); got != before {
		t.Fatalf("second sweep changed the free list: %d vs %d", got, before)
	}
}
