package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/tuple"
	"repro/internal/value"
)

// TestDurableIndexOracle drives a randomized workload — inserts,
// deletes, creates, drops, commits, rollbacks, reopens — and after
// EVERY step asserts the durable index answers identically to the
// rebuilt-from-heap oracle (VerifyIndexes probes every tuple's key and
// every fixed atom, checks entry counts, and walks every index page).
// The durable structure must never be more than a view of the heap:
// mid-transaction it mirrors the buffered heap, after rollback the
// committed one, after reopen the recovered one.
func TestDurableIndexOracle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "oracle.nfrs")
	rng := rand.New(rand.NewSource(1))
	open := func() *Store {
		st, err := Open(path, Options{PoolPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := open()
	defer func() { st.Discard() }()

	names := []string{"A", "B", "C"}
	defOf := func(name string) RelationDef {
		d := testDef(t)
		d.Name = name
		return d
	}
	// live mirrors the buffered tuple set per relation (keyed by tuple
	// key); committed is the durable state a rollback reverts to.
	type mirror map[string]tuple.Tuple
	live := map[string]mirror{}
	committed := map[string]mirror{}
	copyState := func(src map[string]mirror) map[string]mirror {
		out := make(map[string]mirror, len(src))
		for n, m := range src {
			cm := make(mirror, len(m))
			for k, tp := range m {
				cm[k] = tp
			}
			out[n] = cm
		}
		return out
	}

	var txn *Txn
	touched := map[string]bool{}
	ensureTxn := func() *Txn {
		if txn == nil {
			txn = st.Begin()
		}
		return txn
	}
	commit := func() {
		if txn == nil {
			return
		}
		if err := st.Commit(txn); err != nil {
			t.Fatal(err)
		}
		txn = nil
		touched = map[string]bool{}
		committed = copyState(live)
	}
	rollback := func() {
		if txn == nil {
			return
		}
		if err := st.Rollback(txn); err != nil {
			t.Fatal(err)
		}
		for name := range touched {
			rs, ok := st.Rel(name)
			if !ok {
				continue
			}
			if _, err := rs.Reindex(); err != nil {
				t.Fatalf("Reindex(%s) after rollback: %v", name, err)
			}
		}
		txn = nil
		touched = map[string]bool{}
		live = copyState(committed)
	}

	randTuple := func(r *rand.Rand) tuple.Tuple {
		pick := func(prefix string, pool int, n int) []string {
			out := make([]string, 0, n)
			seen := map[int]bool{}
			for len(out) < n {
				i := r.Intn(pool)
				if seen[i] {
					continue
				}
				seen[i] = true
				out = append(out, fmt.Sprintf("%s%d", prefix, i))
			}
			return out
		}
		return tupleOf([][]string{
			pick("c", 9, 1+r.Intn(2)),
			pick("b", 6, 1),
			pick("s", 8, 1+r.Intn(2)),
		}, defOf("A").Order)
	}

	verify := func(step int, op string) {
		t.Helper()
		if err := st.VerifyIndexes(); err != nil {
			t.Fatalf("step %d (%s): durable index diverged from heap oracle: %v", step, op, err)
		}
		// spot-check the mirror and a negative probe per relation
		for _, name := range st.Relations() {
			rs, _ := st.Rel(name)
			if got, want := rs.Len(), len(live[name]); got != want {
				t.Fatalf("step %d (%s): %s has %d tuples, mirror %d", step, op, name, got, want)
			}
			if hits, err := rs.LookupFixed(value.NewString("nope")); err != nil || len(hits) != 0 {
				t.Fatalf("step %d (%s): negative probe on %s: %v, %v", step, op, name, hits, err)
			}
		}
	}

	const steps = 400
	for i := 0; i < steps; i++ {
		op := "noop"
		switch n := rng.Intn(100); {
		case n < 40: // insert
			var existing []string
			for _, name := range st.Relations() {
				existing = append(existing, name)
			}
			if len(existing) == 0 {
				break
			}
			name := existing[rng.Intn(len(existing))]
			tp := randTuple(rng)
			if _, dup := live[name][tp.Key()]; dup {
				break // the engine never writes the same tuple twice
			}
			rs, _ := st.Rel(name)
			if err := rs.Insert(ensureTxn(), tp); err != nil {
				t.Fatalf("step %d: insert into %s: %v", i, name, err)
			}
			live[name][tp.Key()] = tp
			touched[name] = true
			op = "insert " + name
		case n < 60: // delete
			var candidates []string
			for name, m := range live {
				if len(m) > 0 {
					if _, ok := st.Rel(name); ok {
						candidates = append(candidates, name)
					}
				}
			}
			if len(candidates) == 0 {
				break
			}
			name := candidates[rng.Intn(len(candidates))]
			var victim tuple.Tuple
			k := rng.Intn(len(live[name]))
			for _, tp := range live[name] {
				if k == 0 {
					victim = tp
					break
				}
				k--
			}
			rs, _ := st.Rel(name)
			if err := rs.Remove(ensureTxn(), victim); err != nil {
				t.Fatalf("step %d: remove from %s: %v", i, name, err)
			}
			delete(live[name], victim.Key())
			touched[name] = true
			op = "delete " + name
		case n < 72: // commit
			commit()
			op = "commit"
		case n < 82: // rollback
			rollback()
			op = "rollback"
		case n < 88: // create (outside any open workload txn)
			commit()
			var missing []string
			for _, name := range names {
				if _, ok := st.Rel(name); !ok {
					missing = append(missing, name)
				}
			}
			if len(missing) == 0 {
				break
			}
			name := missing[rng.Intn(len(missing))]
			ctxn := st.Begin()
			if _, err := st.CreateRelation(ctxn, defOf(name)); err != nil {
				t.Fatalf("step %d: create %s: %v", i, name, err)
			}
			if err := st.Commit(ctxn); err != nil {
				t.Fatal(err)
			}
			live[name] = mirror{}
			committed = copyState(live)
			op = "create " + name
		case n < 93: // drop
			commit()
			existing := st.Relations()
			if len(existing) == 0 {
				break
			}
			name := existing[rng.Intn(len(existing))]
			dtxn := st.Begin()
			if err := st.DropRelation(dtxn, name); err != nil {
				t.Fatalf("step %d: drop %s: %v", i, name, err)
			}
			if err := st.Commit(dtxn); err != nil {
				t.Fatal(err)
			}
			st.CompleteDrop(name)
			delete(live, name)
			committed = copyState(live)
			op = "drop " + name
		default: // reopen
			commit()
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st = open()
			op = "reopen"
		}
		verify(i, op)
	}
	commit()
	verify(steps, "final commit")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = open()
	verify(steps+1, "final reopen")
}
