package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/tuple"
	"repro/internal/value"
)

// TestDurableIndexOracle drives a randomized workload — inserts,
// deletes, creates, drops, commits, rollbacks, reopens — and after
// EVERY step asserts the durable index answers identically to the
// rebuilt-from-heap oracle (VerifyIndexes probes every tuple's key and
// every fixed atom, checks entry counts, and walks every index page).
// The durable structure must never be more than a view of the heap:
// mid-transaction it mirrors the buffered heap, after rollback the
// committed one, after reopen the recovered one.
func TestDurableIndexOracle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "oracle.nfrs")
	rng := rand.New(rand.NewSource(1))
	open := func() *Store {
		st, err := Open(path, Options{PoolPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := open()
	defer func() { st.Discard() }()

	names := []string{"A", "B", "C"}
	defOf := func(name string) RelationDef {
		d := testDef(t)
		d.Name = name
		return d
	}
	// live mirrors the buffered tuple set per relation (keyed by tuple
	// key); committed is the durable state a rollback reverts to.
	type mirror map[string]tuple.Tuple
	live := map[string]mirror{}
	committed := map[string]mirror{}
	copyState := func(src map[string]mirror) map[string]mirror {
		out := make(map[string]mirror, len(src))
		for n, m := range src {
			cm := make(mirror, len(m))
			for k, tp := range m {
				cm[k] = tp
			}
			out[n] = cm
		}
		return out
	}

	var txn *Txn
	touched := map[string]bool{}
	ensureTxn := func() *Txn {
		if txn == nil {
			txn = st.Begin()
		}
		return txn
	}
	commit := func() {
		if txn == nil {
			return
		}
		if err := st.Commit(txn); err != nil {
			t.Fatal(err)
		}
		txn = nil
		touched = map[string]bool{}
		committed = copyState(live)
	}
	rollback := func() {
		if txn == nil {
			return
		}
		if err := st.Rollback(txn); err != nil {
			t.Fatal(err)
		}
		for name := range touched {
			rs, ok := st.Rel(name)
			if !ok {
				continue
			}
			if _, err := rs.Reindex(); err != nil {
				t.Fatalf("Reindex(%s) after rollback: %v", name, err)
			}
		}
		txn = nil
		touched = map[string]bool{}
		live = copyState(committed)
	}

	randTuple := func(r *rand.Rand) tuple.Tuple {
		pick := func(prefix string, pool int, n int) []string {
			out := make([]string, 0, n)
			seen := map[int]bool{}
			for len(out) < n {
				i := r.Intn(pool)
				if seen[i] {
					continue
				}
				seen[i] = true
				out = append(out, fmt.Sprintf("%s%d", prefix, i))
			}
			return out
		}
		return tupleOf([][]string{
			pick("c", 9, 1+r.Intn(2)),
			pick("b", 6, 1),
			pick("s", 8, 1+r.Intn(2)),
		}, defOf("A").Order)
	}

	verify := func(step int, op string) {
		t.Helper()
		if err := st.VerifyIndexes(); err != nil {
			t.Fatalf("step %d (%s): durable index diverged from heap oracle: %v", step, op, err)
		}
		// spot-check the mirror and a negative probe per relation
		for _, name := range st.Relations() {
			rs, _ := st.Rel(name)
			if got, want := rs.Len(), len(live[name]); got != want {
				t.Fatalf("step %d (%s): %s has %d tuples, mirror %d", step, op, name, got, want)
			}
			if hits, err := rs.LookupFixed(value.NewString("nope")); err != nil || len(hits) != 0 {
				t.Fatalf("step %d (%s): negative probe on %s: %v, %v", step, op, name, hits, err)
			}
		}
	}

	const steps = 400
	for i := 0; i < steps; i++ {
		op := "noop"
		switch n := rng.Intn(100); {
		case n < 40: // insert
			var existing []string
			for _, name := range st.Relations() {
				existing = append(existing, name)
			}
			if len(existing) == 0 {
				break
			}
			name := existing[rng.Intn(len(existing))]
			tp := randTuple(rng)
			if _, dup := live[name][tp.Key()]; dup {
				break // the engine never writes the same tuple twice
			}
			rs, _ := st.Rel(name)
			if err := rs.Insert(ensureTxn(), tp); err != nil {
				t.Fatalf("step %d: insert into %s: %v", i, name, err)
			}
			live[name][tp.Key()] = tp
			touched[name] = true
			op = "insert " + name
		case n < 60: // delete
			var candidates []string
			for name, m := range live {
				if len(m) > 0 {
					if _, ok := st.Rel(name); ok {
						candidates = append(candidates, name)
					}
				}
			}
			if len(candidates) == 0 {
				break
			}
			name := candidates[rng.Intn(len(candidates))]
			var victim tuple.Tuple
			k := rng.Intn(len(live[name]))
			for _, tp := range live[name] {
				if k == 0 {
					victim = tp
					break
				}
				k--
			}
			rs, _ := st.Rel(name)
			if err := rs.Remove(ensureTxn(), victim); err != nil {
				t.Fatalf("step %d: remove from %s: %v", i, name, err)
			}
			delete(live[name], victim.Key())
			touched[name] = true
			op = "delete " + name
		case n < 72: // commit
			commit()
			op = "commit"
		case n < 82: // rollback
			rollback()
			op = "rollback"
		case n < 88: // create (outside any open workload txn)
			commit()
			var missing []string
			for _, name := range names {
				if _, ok := st.Rel(name); !ok {
					missing = append(missing, name)
				}
			}
			if len(missing) == 0 {
				break
			}
			name := missing[rng.Intn(len(missing))]
			ctxn := st.Begin()
			if _, err := st.CreateRelation(ctxn, defOf(name)); err != nil {
				t.Fatalf("step %d: create %s: %v", i, name, err)
			}
			if err := st.Commit(ctxn); err != nil {
				t.Fatal(err)
			}
			live[name] = mirror{}
			committed = copyState(live)
			op = "create " + name
		case n < 93: // drop
			commit()
			existing := st.Relations()
			if len(existing) == 0 {
				break
			}
			name := existing[rng.Intn(len(existing))]
			dtxn := st.Begin()
			if err := st.DropRelation(dtxn, name); err != nil {
				t.Fatalf("step %d: drop %s: %v", i, name, err)
			}
			if err := st.Commit(dtxn); err != nil {
				t.Fatal(err)
			}
			st.CompleteDrop(name)
			delete(live, name)
			committed = copyState(live)
			op = "drop " + name
		default: // reopen
			commit()
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st = open()
			op = "reopen"
		}
		verify(i, op)
	}
	commit()
	verify(steps, "final commit")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = open()
	verify(steps+1, "final reopen")
}

// TestSnapshotIsolationOracle drives the same randomized workload —
// inserts, deletes, commits, rollbacks, creates, drops, reopens — while
// holding several pinned snapshots open across steps. After EVERY step,
// every open snapshot is replayed against a deep copy of the mirror
// oracle frozen at its pin point: same relation set (dropped relations
// included, via the ghost list), same tuple set per relation. Nothing a
// later transaction does — commit, rollback, page reuse after a drop —
// may leak into a pinned view.
func TestSnapshotIsolationOracle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap-oracle.nfrs")
	rng := rand.New(rand.NewSource(7))
	open := func() *Store {
		st, err := Open(path, Options{PoolPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := open()
	defer func() { st.Discard() }()

	names := []string{"A", "B", "C"}
	defOf := func(name string) RelationDef {
		d := testDef(t)
		d.Name = name
		return d
	}
	type mirror map[string]tuple.Tuple
	live := map[string]mirror{}
	committed := map[string]mirror{}
	copyState := func(src map[string]mirror) map[string]mirror {
		out := make(map[string]mirror, len(src))
		for n, m := range src {
			cm := make(mirror, len(m))
			for k, tp := range m {
				cm[k] = tp
			}
			out[n] = cm
		}
		return out
	}

	var txn *Txn
	touched := map[string]bool{}
	ensureTxn := func() *Txn {
		if txn == nil {
			txn = st.Begin()
		}
		return txn
	}
	commit := func() {
		if txn == nil {
			return
		}
		if err := st.Commit(txn); err != nil {
			t.Fatal(err)
		}
		txn = nil
		touched = map[string]bool{}
		committed = copyState(live)
	}
	rollback := func() {
		if txn == nil {
			return
		}
		if err := st.Rollback(txn); err != nil {
			t.Fatal(err)
		}
		for name := range touched {
			if rs, ok := st.Rel(name); ok {
				if _, err := rs.Reindex(); err != nil {
					t.Fatalf("Reindex(%s) after rollback: %v", name, err)
				}
			}
		}
		txn = nil
		touched = map[string]bool{}
		live = copyState(committed)
	}
	randTuple := func(r *rand.Rand) tuple.Tuple {
		pick := func(prefix string, pool, n int) []string {
			out := make([]string, 0, n)
			seen := map[int]bool{}
			for len(out) < n {
				i := r.Intn(pool)
				if seen[i] {
					continue
				}
				seen[i] = true
				out = append(out, fmt.Sprintf("%s%d", prefix, i))
			}
			return out
		}
		return tupleOf([][]string{
			pick("c", 9, 1+r.Intn(2)),
			pick("b", 6, 1),
			pick("s", 8, 1+r.Intn(2)),
		}, defOf("A").Order)
	}

	// pins are open snapshots paired with the committed mirror frozen at
	// their pin point — what each MUST keep seeing until closed.
	type pin struct {
		snap *Snap
		want map[string]mirror
		step int
	}
	var pins []pin
	checkPins := func(step int, op string) {
		t.Helper()
		for _, p := range pins {
			if got, want := len(p.snap.Relations()), len(p.want); got != want {
				t.Fatalf("step %d (%s): pin@%d lists %d relations, mirror had %d",
					step, op, p.step, got, want)
			}
			for name, m := range p.want {
				if !p.snap.Has(name) {
					t.Fatalf("step %d (%s): pin@%d lost relation %s", step, op, p.step, name)
				}
				rel, err := p.snap.Load(name)
				if err != nil {
					t.Fatalf("step %d (%s): pin@%d load %s: %v", step, op, p.step, name, err)
				}
				if rel.Len() != len(m) {
					t.Fatalf("step %d (%s): pin@%d sees %d tuples in %s, mirror had %d",
						step, op, p.step, rel.Len(), name, len(m))
				}
				for i := 0; i < rel.Len(); i++ {
					if _, ok := m[rel.Tuple(i).Key()]; !ok {
						t.Fatalf("step %d (%s): pin@%d sees foreign tuple %v in %s",
							step, op, p.step, rel.Tuple(i), name)
					}
				}
			}
		}
	}
	closePins := func() {
		for _, p := range pins {
			p.snap.Close()
		}
		pins = nil
	}

	const steps = 300
	for i := 0; i < steps; i++ {
		op := "noop"
		switch n := rng.Intn(100); {
		case n < 35: // insert
			existing := st.Relations()
			if len(existing) == 0 {
				break
			}
			name := existing[rng.Intn(len(existing))]
			tp := randTuple(rng)
			if _, dup := live[name][tp.Key()]; dup {
				break
			}
			rs, _ := st.Rel(name)
			if err := rs.Insert(ensureTxn(), tp); err != nil {
				t.Fatalf("step %d: insert into %s: %v", i, name, err)
			}
			live[name][tp.Key()] = tp
			touched[name] = true
			op = "insert " + name
		case n < 50: // delete
			var candidates []string
			for name, m := range live {
				if len(m) > 0 {
					if _, ok := st.Rel(name); ok {
						candidates = append(candidates, name)
					}
				}
			}
			if len(candidates) == 0 {
				break
			}
			name := candidates[rng.Intn(len(candidates))]
			var victim tuple.Tuple
			k := rng.Intn(len(live[name]))
			for _, tp := range live[name] {
				if k == 0 {
					victim = tp
					break
				}
				k--
			}
			rs, _ := st.Rel(name)
			if err := rs.Remove(ensureTxn(), victim); err != nil {
				t.Fatalf("step %d: remove from %s: %v", i, name, err)
			}
			delete(live[name], victim.Key())
			touched[name] = true
			op = "delete " + name
		case n < 62: // commit
			commit()
			op = "commit"
		case n < 70: // rollback
			rollback()
			op = "rollback"
		case n < 76: // create
			commit()
			var missing []string
			for _, name := range names {
				if _, ok := st.Rel(name); !ok {
					missing = append(missing, name)
				}
			}
			if len(missing) == 0 {
				break
			}
			name := missing[rng.Intn(len(missing))]
			ctxn := st.Begin()
			if _, err := st.CreateRelation(ctxn, defOf(name)); err != nil {
				t.Fatalf("step %d: create %s: %v", i, name, err)
			}
			if err := st.Commit(ctxn); err != nil {
				t.Fatal(err)
			}
			live[name] = mirror{}
			committed = copyState(live)
			op = "create " + name
		case n < 84: // drop — pinned snapshots must keep reading the ghost
			commit()
			existing := st.Relations()
			if len(existing) == 0 {
				break
			}
			name := existing[rng.Intn(len(existing))]
			dtxn := st.Begin()
			if err := st.DropRelation(dtxn, name); err != nil {
				t.Fatalf("step %d: drop %s: %v", i, name, err)
			}
			if err := st.Commit(dtxn); err != nil {
				t.Fatal(err)
			}
			st.CompleteDrop(name)
			delete(live, name)
			committed = copyState(live)
			op = "drop " + name
		case n < 94: // pin a snapshot and hold it across future steps
			if len(pins) >= 4 {
				pins[0].snap.Close()
				pins = pins[1:]
			}
			pins = append(pins, pin{snap: st.PinSnapshot(), want: copyState(committed), step: i})
			op = "pin"
		default: // reopen — snapshots do not survive the store
			commit()
			checkPins(i, "pre-reopen")
			closePins()
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st = open()
			op = "reopen"
		}
		checkPins(i, op)
	}
	commit()
	checkPins(steps, "final commit")
	closePins()
	if n := st.Ghosts(); n != 0 {
		t.Fatalf("%d ghost relations left after all pins closed", n)
	}
	if n := st.bp.RetainedVersions(); n != 0 {
		t.Fatalf("%d retained page versions left after all pins closed", n)
	}
	if n := st.bp.PinnedSnapshots(); n != 0 {
		t.Fatalf("%d snapshot pins left after close", n)
	}
}

// TestConcurrentSnapshotReaders runs racing reader goroutines against a
// writer executing multi-statement transactions with commits and
// rollbacks. Each reader pins a snapshot, materializes every visible
// relation twice, and requires (a) both reads identical — a pin never
// drifts — and (b) the view to fingerprint-match SOME state the writer
// committed: never a partial transaction, never a rolled-back one.
// Run under -race in CI.
func TestConcurrentSnapshotReaders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap-race.nfrs")
	st, err := Open(path, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Discard()

	type mirror map[string]tuple.Tuple
	live := map[string]mirror{}
	names := []string{"A", "B"}
	setup := st.Begin()
	for _, name := range names {
		d := testDef(t)
		d.Name = name
		if _, err := st.CreateRelation(setup, d); err != nil {
			t.Fatal(err)
		}
		live[name] = mirror{}
	}
	if err := st.Commit(setup); err != nil {
		t.Fatal(err)
	}

	// fingerprint canonicalizes a state: relation names and tuple keys,
	// both sorted. The writer records every state it is about to commit;
	// a reader's view must match one of them.
	fingerprint := func(state map[string]mirror) string {
		rels := make([]string, 0, len(state))
		for n := range state {
			rels = append(rels, n)
		}
		sort.Strings(rels)
		var b strings.Builder
		for _, n := range rels {
			keys := make([]string, 0, len(state[n]))
			for k := range state[n] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "%s=%s;", n, strings.Join(keys, ","))
		}
		return b.String()
	}
	var histMu sync.Mutex
	history := map[string]bool{fingerprint(live): true}

	done := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := st.PinSnapshot()
				view := func() (string, bool) {
					state := map[string]mirror{}
					for _, name := range snap.Relations() {
						rel, err := snap.Load(name)
						if err != nil {
							t.Errorf("reader: load %s: %v", name, err)
							return "", false
						}
						m := mirror{}
						for i := 0; i < rel.Len(); i++ {
							m[rel.Tuple(i).Key()] = rel.Tuple(i)
						}
						state[name] = m
					}
					return fingerprint(state), true
				}
				v1, ok1 := view()
				v2, ok2 := view()
				snap.Close()
				if !ok1 || !ok2 {
					return
				}
				if v1 != v2 {
					t.Errorf("pinned view drifted between reads:\n  %s\n  %s", v1, v2)
					return
				}
				histMu.Lock()
				known := history[v1]
				histMu.Unlock()
				if !known {
					t.Errorf("reader observed a state no transaction committed: %s", v1)
					return
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(11))
	randTuple := func() tuple.Tuple {
		pick := func(prefix string, pool, n int) []string {
			out := make([]string, 0, n)
			seen := map[int]bool{}
			for len(out) < n {
				i := rng.Intn(pool)
				if seen[i] {
					continue
				}
				seen[i] = true
				out = append(out, fmt.Sprintf("%s%d", prefix, i))
			}
			return out
		}
		d := testDef(t)
		return tupleOf([][]string{
			pick("c", 9, 1+rng.Intn(2)),
			pick("b", 6, 1),
			pick("s", 8, 1+rng.Intn(2)),
		}, d.Order)
	}
	committed := func(src map[string]mirror) map[string]mirror {
		out := make(map[string]mirror, len(src))
		for n, m := range src {
			cm := make(mirror, len(m))
			for k, tp := range m {
				cm[k] = tp
			}
			out[n] = cm
		}
		return out
	}
	backup := committed(live)

	const txns = 250
	for i := 0; i < txns; i++ {
		txn := st.Begin()
		touched := map[string]bool{}
		nOps := 1 + rng.Intn(4)
		for j := 0; j < nOps; j++ {
			name := names[rng.Intn(len(names))]
			rs, _ := st.Rel(name)
			if rng.Intn(3) > 0 || len(live[name]) == 0 { // insert
				tp := randTuple()
				if _, dup := live[name][tp.Key()]; dup {
					continue
				}
				if err := rs.Insert(txn, tp); err != nil {
					t.Fatalf("txn %d: insert: %v", i, err)
				}
				live[name][tp.Key()] = tp
			} else { // delete
				var victim tuple.Tuple
				k := rng.Intn(len(live[name]))
				for _, tp := range live[name] {
					if k == 0 {
						victim = tp
						break
					}
					k--
				}
				if err := rs.Remove(txn, victim); err != nil {
					t.Fatalf("txn %d: remove: %v", i, err)
				}
				delete(live[name], victim.Key())
			}
			touched[name] = true
		}
		if rng.Intn(5) == 0 { // rollback: this state must never be seen
			if err := st.Rollback(txn); err != nil {
				t.Fatal(err)
			}
			for name := range touched {
				rs, _ := st.Rel(name)
				if _, err := rs.Reindex(); err != nil {
					t.Fatalf("txn %d: reindex after rollback: %v", i, err)
				}
			}
			live = committed(backup)
			continue
		}
		// record the state BEFORE commit publishes it: a reader pinning
		// mid-publish sees either this state or the previous one
		histMu.Lock()
		history[fingerprint(live)] = true
		histMu.Unlock()
		if err := st.Commit(txn); err != nil {
			t.Fatalf("txn %d: commit: %v", i, err)
		}
		backup = committed(live)
	}
	close(done)
	wg.Wait()
	if n := st.bp.PinnedSnapshots(); n != 0 {
		t.Fatalf("%d snapshot pins left after readers exited", n)
	}
}
