package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dep"
	"repro/internal/encoding"
	"repro/internal/schema"
	"repro/internal/storage"
)

// relRecordTag marks a relation definition record in the catalog heap.
const relRecordTag = 'R'

// RelationDef is the durable definition of one relation: everything the
// engine needs to rebuild its canonical-form maintainer on open.
type RelationDef struct {
	Name   string
	Schema *schema.Schema
	// Order is the nest order; Order[len-1] is the last-nested (fixed /
	// determinant) attribute the hash index is keyed on.
	Order schema.Permutation
	FDs   []dep.FD
	MVDs  []dep.MVD
	// Shards is the number of heap chains the relation's tuples are
	// partitioned across, keyed by the hash of the determinant atom
	// (0 and 1 both mean one chain — the classic layout, byte-identical
	// on disk to pre-shard files). Each shard owns a disjoint heap chain
	// and its own pair of hash indexes, so statements on different
	// shards of one hot relation run and commit concurrently.
	Shards int
}

// maxShards bounds the catalog encoding; far above any useful fan-out
// (shard count should track writer concurrency, not data volume).
const maxShards = 64

func (d RelationDef) validate() error {
	if d.Name == "" {
		return fmt.Errorf("store: relation name empty")
	}
	if d.Schema == nil || d.Schema.Degree() == 0 {
		return fmt.Errorf("store: relation %q needs a non-empty schema", d.Name)
	}
	if !d.Order.Valid(d.Schema) {
		return fmt.Errorf("store: invalid nest order %v for %q", d.Order, d.Name)
	}
	if d.Shards < 0 || d.Shards > maxShards {
		return fmt.Errorf("store: relation %q shard count %d out of range [0,%d]", d.Name, d.Shards, maxShards)
	}
	return nil
}

// shardRoots locates one shard's durable structures: its heap chain
// head, the directory roots of its two hash indexes, and the meta page
// of its ordered B+tree range index (0 for records that predate range
// indexes — upgraded on the first writable open).
type shardRoots struct {
	heapFirst uint32
	ridsRoot  uint32
	fixedRoot uint32
	rangeRoot uint32
}

// catalogEntry is a decoded catalog record plus its location.
type catalogEntry struct {
	def       RelationDef
	heapFirst uint32
	// ridsRoot/fixedRoot are the durable hash indexes' directory root
	// pages; 0 on version-2 records, which predate durable indexes and
	// are upgraded (rebuild once, persist) on the first writable open.
	ridsRoot  uint32
	fixedRoot uint32
	// rangeRoot is the B+tree range index's meta page; 0 on records
	// written before the range-index extension (upgraded like v2 hash
	// indexes: built once by heap scan, persisted).
	rangeRoot uint32
	// extra holds the roots of shards 1..K-1 for sharded relations
	// (shard 0 lives in heapFirst/ridsRoot/fixedRoot/rangeRoot above);
	// empty for the classic single-chain layout.
	extra []shardRoots
	rid   storage.RID
}

// encodeCatalogRecord serializes a relation definition:
//
//	tag:'R' nameLen:uvarint name heapFirst:uvarint schema
//	orderLen:uvarint idx:uvarint* nFDs:uvarint fd* nMVDs:uvarint mvd*
//	fd/mvd := nLhs:uvarint (len name)* nRhs:uvarint (len name)*
//	[ridsRoot:uvarint fixedRoot:uvarint
//	 [nExtra:uvarint (heapFirst ridsRoot fixedRoot)*]
//	 [rangeRoot:uvarint * K]]
//
// The trailing index roots are the version-3 extension; records
// without them (version 2) decode with zero roots. Passing zero roots
// encodes a v2 record — tests use that to manufacture upgrade inputs.
// The second trailing-optional block carries the roots of shards
// 1..K-1 for sharded relations; single-chain relations omit it and
// stay byte-identical to pre-shard records, so old files read
// unchanged and new files without sharding stay downgrade-readable.
// shards[0] supplies heapFirst/ridsRoot/fixedRoot.
//
// The third trailing-optional block carries the per-shard B+tree range
// index roots (shard 0 first). A single-chain relation has no shard
// block to append it after, so the shard-count position is repurposed:
// count 0 — previously always invalid, rejected as corrupt — is the
// sentinel announcing "range block follows". Records without the block
// (written before range indexes existed) decode with zero range roots
// and are upgraded on the first writable open. Range roots are
// all-or-nothing across shards: shards[0].rangeRoot decides whether
// the block is emitted.
func encodeCatalogRecord(def RelationDef, shards []shardRoots) []byte {
	heapFirst, ridsRoot, fixedRoot := shards[0].heapFirst, shards[0].ridsRoot, shards[0].fixedRoot
	b := []byte{relRecordTag}
	b = appendString(b, def.Name)
	b = binary.AppendUvarint(b, uint64(heapFirst))
	b = encoding.AppendSchema(b, def.Schema)
	b = binary.AppendUvarint(b, uint64(len(def.Order)))
	for _, i := range def.Order {
		b = binary.AppendUvarint(b, uint64(i))
	}
	b = binary.AppendUvarint(b, uint64(len(def.FDs)))
	for _, f := range def.FDs {
		b = appendAttrSet(b, f.Lhs)
		b = appendAttrSet(b, f.Rhs)
	}
	b = binary.AppendUvarint(b, uint64(len(def.MVDs)))
	for _, m := range def.MVDs {
		b = appendAttrSet(b, m.Lhs)
		b = appendAttrSet(b, m.Rhs)
	}
	withRange := shards[0].rangeRoot != 0
	if ridsRoot != 0 || fixedRoot != 0 || len(shards) > 1 || withRange {
		b = binary.AppendUvarint(b, uint64(ridsRoot))
		b = binary.AppendUvarint(b, uint64(fixedRoot))
	}
	if len(shards) > 1 {
		b = binary.AppendUvarint(b, uint64(len(shards)-1))
		for _, s := range shards[1:] {
			b = binary.AppendUvarint(b, uint64(s.heapFirst))
			b = binary.AppendUvarint(b, uint64(s.ridsRoot))
			b = binary.AppendUvarint(b, uint64(s.fixedRoot))
		}
	} else if withRange {
		// shard-count-0 sentinel: single-chain record with a range block
		b = binary.AppendUvarint(b, 0)
	}
	if withRange {
		for _, s := range shards {
			b = binary.AppendUvarint(b, uint64(s.rangeRoot))
		}
	}
	return b
}

func decodeCatalogRecord(rec []byte) (catalogEntry, error) {
	var ce catalogEntry
	b := rec[1:] // tag already checked by caller
	name, b, err := takeString(b)
	if err != nil {
		return ce, fmt.Errorf("%w: relation name: %v", ErrCorrupt, err)
	}
	ce.def.Name = name
	first, b, err := takeUvarint(b)
	if err != nil {
		return ce, fmt.Errorf("%w: heap root of %q: %v", ErrCorrupt, name, err)
	}
	ce.heapFirst = uint32(first)
	sch, n, err := encoding.DecodeSchema(b)
	if err != nil {
		return ce, fmt.Errorf("%w: schema of %q: %v", ErrCorrupt, name, err)
	}
	ce.def.Schema = sch
	b = b[n:]
	oLen, b, err := takeUvarint(b)
	if err != nil || oLen != uint64(sch.Degree()) {
		return ce, fmt.Errorf("%w: nest order of %q", ErrCorrupt, name)
	}
	ce.def.Order = make(schema.Permutation, oLen)
	for i := range ce.def.Order {
		v, rest, err := takeUvarint(b)
		if err != nil {
			return ce, fmt.Errorf("%w: nest order of %q", ErrCorrupt, name)
		}
		ce.def.Order[i] = int(v)
		b = rest
	}
	if !ce.def.Order.Valid(sch) {
		return ce, fmt.Errorf("%w: nest order of %q is not a permutation", ErrCorrupt, name)
	}
	nFDs, b, err := takeUvarint(b)
	if err != nil || nFDs > uint64(len(b)) {
		return ce, fmt.Errorf("%w: FD count of %q", ErrCorrupt, name)
	}
	for i := uint64(0); i < nFDs; i++ {
		var lhs, rhs []string
		lhs, b, err = takeStrings(b)
		if err == nil {
			rhs, b, err = takeStrings(b)
		}
		if err != nil {
			return ce, fmt.Errorf("%w: FD %d of %q: %v", ErrCorrupt, i, name, err)
		}
		ce.def.FDs = append(ce.def.FDs, dep.NewFD(lhs, rhs))
	}
	nMVDs, b, err := takeUvarint(b)
	if err != nil || nMVDs > uint64(len(b)) {
		return ce, fmt.Errorf("%w: MVD count of %q", ErrCorrupt, name)
	}
	for i := uint64(0); i < nMVDs; i++ {
		var lhs, rhs []string
		lhs, b, err = takeStrings(b)
		if err == nil {
			rhs, b, err = takeStrings(b)
		}
		if err != nil {
			return ce, fmt.Errorf("%w: MVD %d of %q: %v", ErrCorrupt, i, name, err)
		}
		ce.def.MVDs = append(ce.def.MVDs, dep.NewMVD(lhs, rhs))
	}
	if len(b) == 0 {
		// version-2 record: no durable index yet (roots stay 0),
		// necessarily single-chain
		ce.def.Shards = 1
		return ce, nil
	}
	rr, b, err := takeUvarint(b)
	if err != nil {
		return ce, fmt.Errorf("%w: primary index root of %q", ErrCorrupt, name)
	}
	fr, b, err := takeUvarint(b)
	if err != nil {
		return ce, fmt.Errorf("%w: fixed index root of %q", ErrCorrupt, name)
	}
	if rr == 0 || fr == 0 || rr > 1<<32-1 || fr > 1<<32-1 {
		return ce, fmt.Errorf("%w: impossible index roots %d/%d of %q", ErrCorrupt, rr, fr, name)
	}
	ce.ridsRoot, ce.fixedRoot = uint32(rr), uint32(fr)
	if len(b) == 0 {
		// single-chain relation (the pre-shard record shape)
		ce.def.Shards = 1
		return ce, nil
	}
	nx, b, err := takeUvarint(b)
	if err != nil || nx >= maxShards {
		return ce, fmt.Errorf("%w: shard count of %q", ErrCorrupt, name)
	}
	// nx == 0 is the single-chain-with-range-block sentinel (a real
	// extra-shard count is always ≥ 1): no shard triples follow, only
	// the range roots.
	for i := uint64(0); i < nx; i++ {
		var s shardRoots
		var h, r2, f2 uint64
		h, b, err = takeUvarint(b)
		if err == nil {
			r2, b, err = takeUvarint(b)
		}
		if err == nil {
			f2, b, err = takeUvarint(b)
		}
		if err != nil {
			return ce, fmt.Errorf("%w: shard %d roots of %q: %v", ErrCorrupt, i+1, name, err)
		}
		if h == 0 || r2 == 0 || f2 == 0 || h > 1<<32-1 || r2 > 1<<32-1 || f2 > 1<<32-1 {
			return ce, fmt.Errorf("%w: impossible shard %d roots %d/%d/%d of %q", ErrCorrupt, i+1, h, r2, f2, name)
		}
		s.heapFirst, s.ridsRoot, s.fixedRoot = uint32(h), uint32(r2), uint32(f2)
		ce.extra = append(ce.extra, s)
	}
	ce.def.Shards = 1 + len(ce.extra)
	if len(b) == 0 {
		if nx == 0 {
			// the sentinel promises a range block; its absence is a
			// truncated record, not an old one
			return ce, fmt.Errorf("%w: missing range index roots of %q", ErrCorrupt, name)
		}
		// sharded record from before range indexes: zero range roots
		return ce, nil
	}
	for i := 0; i < ce.def.Shards; i++ {
		var rg uint64
		rg, b, err = takeUvarint(b)
		if err != nil || rg == 0 || rg > 1<<32-1 {
			return ce, fmt.Errorf("%w: range index root of shard %d of %q", ErrCorrupt, i, name)
		}
		if i == 0 {
			ce.rangeRoot = uint32(rg)
		} else {
			ce.extra[i-1].rangeRoot = uint32(rg)
		}
	}
	if len(b) != 0 {
		return ce, fmt.Errorf("%w: %d trailing bytes in catalog record of %q", ErrCorrupt, len(b), name)
	}
	return ce, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendAttrSet(b []byte, s schema.AttrSet) []byte {
	names := s.Sorted()
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, n := range names {
		b = appendString(b, n)
	}
	return b
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, b[n:], nil
}

func takeString(b []byte) (string, []byte, error) {
	l, b, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if l > uint64(len(b)) {
		return "", nil, fmt.Errorf("short string")
	}
	return string(b[:l]), b[l:], nil
}

func takeStrings(b []byte) ([]string, []byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("string count %d too large", n)
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var s string
		s, b, err = takeString(b)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, s)
	}
	return out, b, nil
}
