package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// buildReopenDB creates a database whose single relation spans many
// heap pages, returning its path, canonical content, and heap page
// count.
func buildReopenDB(t *testing.T) (string, *core.Relation, int) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "reopen.nfrs")
	st, err := Open(path, Options{PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	e := workload.GenEnrollment(11, workload.EnrollmentParams{
		Students: 2500, CoursePool: 120, ClubPool: 20, SemesterPool: 8,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	canon, _ := e.R1.Canonical(def.Order)
	for i := 0; i < canon.Len(); i++ {
		if err := rs.Insert(txn, canon.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	hs, err := rs.HeapStats()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Pages < 10 {
		t.Fatalf("heap spans only %d page(s); too small for a reopen bound", hs.Pages)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return path, canon, hs.Pages
}

// reopenBudget bounds the page reads a clean open may spend: the
// catalog chain, the free-list chain, and each relation's two index
// directories plus its B+tree meta page, with a little slack for
// chained directory pages. It must NOT scale with heap size.
func reopenBudget(rels int) int { return 4 + 5*rels }

// TestReopenReadsBounded is the regression test for the durable-index
// payoff: reopening a clean N-tuple database reads O(catalog + index
// roots) pages — never the heap. A failure here means rebuild-on-open
// crept back in.
func TestReopenReadsBounded(t *testing.T) {
	path, canon, heapPages := buildReopenDB(t)
	st, err := Open(path, Options{PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	open := st.OpenIOStats()
	if budget := reopenBudget(1); open.Misses > budget {
		t.Errorf("clean open read %d pages, budget %d (heap is %d pages)", open.Misses, budget, heapPages)
	}
	if open.Misses >= heapPages {
		t.Errorf("clean open read %d pages — a full heap scan (%d pages)", open.Misses, heapPages)
	}
	// the attached state answers correctly and matches the oracle
	rs, ok := st.Rel("R1")
	if !ok {
		t.Fatal("relation lost")
	}
	if rs.Len() != canon.Len() {
		t.Fatalf("Len = %d, want %d (persisted count wrong)", rs.Len(), canon.Len())
	}
	got, err := rs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(canon) {
		t.Fatal("content changed across fast reopen")
	}
	if err := st.VerifyIndexes(); err != nil {
		t.Fatalf("durable index diverged from heap oracle: %v", err)
	}
	// writes work after a lazy attach (the first insert resolves the
	// heap tail) and further reopens stay fast
	txn := st.Begin()
	if err := rs.Insert(txn, tupleOf([][]string{{"zc"}, {"zb"}, {"zs"}}, rs.Def().Order)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if err := st.VerifyIndexes(); err != nil {
		t.Fatalf("index wrong after post-reopen insert: %v", err)
	}
}

// downgradeToV2 rewrites the database at path to the version-2 format:
// catalog records lose their index-root tail and the header version
// byte reverts. The abandoned index pages become orphans — exactly the
// shape of a pre-upgrade file plus harmless unreferenced pages.
func downgradeToV2(t *testing.T, path string) {
	t.Helper()
	st, err := Open(path, Options{PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	txn := st.Begin()
	for _, name := range st.Relations() {
		rs, _ := st.Rel(name)
		if err := st.catalog.Delete(txn, rs.catRID); err != nil {
			t.Fatal(err)
		}
		rid, err := st.catalog.Insert(txn, encodeCatalogRecord(rs.def, []shardRoots{{rs.shards[0].heap.FirstPage(), 0, 0, 0}}))
		if err != nil {
			t.Fatal(err)
		}
		rs.catRID = rid
	}
	fr, err := st.bp.GetMut(txn, catalogRoot)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := fr.Page().Get(0)
	if err != nil {
		t.Fatal(err)
	}
	rec[4] = formatV2
	if err := st.bp.Unpin(fr, true); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestV2UpgradePersistsIndexes: opening a v2 file rebuilds the indexes
// once by heap scan, persists them, and bumps the format — so the NEXT
// open is O(catalog + index roots). A no-write open (NoSweep) of the
// same v2 file keeps serving from in-memory indexes and leaves the
// file byte-for-byte untouched.
func TestV2UpgradePersistsIndexes(t *testing.T) {
	path, canon, heapPages := buildReopenDB(t)
	downgradeToV2(t, path)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// a NoSweep open must not upgrade (Load and read-only opens ride
	// this): in-memory indexes stand in, file untouched
	ro, err := Open(path, Options{PoolPages: 32, NoSweep: true})
	if err != nil {
		t.Fatalf("NoSweep open of v2 file: %v", err)
	}
	rs, ok := ro.Rel("R1")
	if !ok {
		t.Fatal("relation lost in v2 NoSweep open")
	}
	got, err := rs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(canon) {
		t.Fatal("v2 NoSweep open changed content")
	}
	if err := ro.VerifyIndexes(); err != nil {
		t.Fatalf("in-memory stand-in indexes diverged: %v", err)
	}
	if err := ro.Discard(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("NoSweep open of a v2 file mutated it")
	}

	// the writable open pays the one-time rebuild...
	up, err := Open(path, Options{PoolPages: 32})
	if err != nil {
		t.Fatalf("v2 upgrade open: %v", err)
	}
	if open := up.OpenIOStats(); open.Misses < heapPages {
		t.Errorf("upgrade open read %d pages; expected a full heap scan (%d pages)", open.Misses, heapPages)
	}
	if err := up.VerifyIndexes(); err != nil {
		t.Fatalf("upgraded index diverged from heap oracle: %v", err)
	}
	got2, err := mustRel(t, up, "R1").Load()
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(canon) {
		t.Fatal("upgrade changed content")
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}

	// ...and every open after it is fast again
	st2, err := Open(path, Options{PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if open := st2.OpenIOStats(); open.Misses > reopenBudget(1) {
		t.Errorf("post-upgrade open read %d pages, budget %d", open.Misses, reopenBudget(1))
	}
	got3, err := mustRel(t, st2, "R1").Load()
	if err != nil {
		t.Fatal(err)
	}
	if !got3.Equal(canon) {
		t.Fatal("content changed across upgrade + reopen")
	}
	if err := st2.VerifyIndexes(); err != nil {
		t.Fatal(err)
	}
}

func mustRel(t *testing.T, st *Store, name string) *RelStore {
	t.Helper()
	rs, ok := st.Rel(name)
	if !ok {
		t.Fatalf("relation %q missing", name)
	}
	return rs
}
