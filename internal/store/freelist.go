package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// The free list is a heap chain rooted at page 2 whose records are
// 4-byte little-endian page ids of reclaimable pages (a dropped
// relation's chain). It is durable like any other page: pushes and pops
// mutate buffered pages that ride in the same commit batch as the
// transaction that caused them, so a crash can never disagree with the
// catalog about who owns a page. An in-memory mirror (pid + record id)
// avoids rescanning the chain on every allocation.
//
// Because the free list is shared between concurrent transactions, its
// use is transaction-scoped: the first push or pop by a transaction
// takes ownership (Store.freeOwner) until that transaction commits.
// Another transaction's push waits; another transaction's pop falls
// through to growing the file instead (recycling is an optimization,
// never worth blocking an allocation on). Without this, a page freed
// by an uncommitted drop could be recycled into another transaction's
// relation and committed first — a crash between the two commits would
// leave the page owned by both the old chain and the new one.

// freeRoot is the page id of the free-list heap's first page.
const freeRoot = 2

// freeEntry mirrors one free-list record.
type freeEntry struct {
	pid uint32
	rid storage.RID
}

// initFreeList creates the free-list heap in a fresh file; it must land
// on page freeRoot.
func (s *Store) initFreeList(txn *Txn) error {
	fh, err := storage.CreateHeap(s.bp, txn)
	if err != nil {
		return err
	}
	if fh.FirstPage() != freeRoot {
		return fmt.Errorf("store: free list allocated at page %d, want %d", fh.FirstPage(), freeRoot)
	}
	s.freeHeap = fh
	return nil
}

// loadFreeList attaches to the free-list heap of an existing file and
// mirrors its records.
func (s *Store) loadFreeList() error {
	fh, err := storage.OpenHeap(s.bp, freeRoot)
	if err != nil {
		return fmt.Errorf("%w: opening free list: %v", ErrCorrupt, err)
	}
	s.freeHeap = fh
	var badRec error
	err = fh.Scan(func(rid storage.RID, rec []byte) bool {
		if len(rec) != 4 {
			badRec = fmt.Errorf("%w: free-list record at %v has %d bytes", ErrCorrupt, rid, len(rec))
			return false
		}
		pid := binary.LittleEndian.Uint32(rec)
		if pid <= freeRoot || pid > s.pager.NumPages() {
			badRec = fmt.Errorf("%w: free-list entry for impossible page %d", ErrCorrupt, pid)
			return false
		}
		s.free = append(s.free, freeEntry{pid: pid, rid: rid})
		return true
	})
	if err != nil {
		return fmt.Errorf("%w: scanning free list: %v", ErrCorrupt, err)
	}
	return badRec
}

// freePages appends the given page ids to the free list under txn.
// When the free list is owned by a DIFFERENT uncommitted transaction
// the pages are left orphaned instead of waiting: the owner may be a
// long-lived engine transaction that commits minutes from now, and
// freePages runs with s.mu held on the drop path, so waiting here would
// stall every catalog lookup behind a user's open Tx (and could form a
// wait cycle the engine's latch ordering cannot see). Orphaned pages
// are the documented degraded mode — unreferenced and checksum-valid,
// reclaimed by the orphan sweep on the next open (see sweepOrphans).
// Failures mid-append leave the remaining pages orphaned too, never
// double-owned.
func (s *Store) freePages(txn *Txn, pids []uint32) error {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	if s.freeOwner != nil && s.freeOwner != txn {
		return nil
	}
	s.freeOwner = txn
	for _, pid := range pids {
		var rec [4]byte
		binary.LittleEndian.PutUint32(rec[:], pid)
		rid, err := s.freeHeap.Insert(txn, rec[:])
		if err != nil {
			return err
		}
		s.free = append(s.free, freeEntry{pid: pid, rid: rid})
	}
	return nil
}

// recycle pops one free page for reuse under txn; it is the buffer
// pool's allocator hook. TryLock: the free list's own heap operations
// may allocate pages (growing the chain), and that re-entrant
// allocation must fall through to the pager rather than deadlock. A
// free list owned by a different uncommitted transaction also falls
// through — its entries may vanish if that transaction is a drop that
// never commits, so they are not safe to hand out yet.
func (s *Store) recycle(txn *Txn) (uint32, bool) {
	if !s.freeMu.TryLock() {
		return 0, false
	}
	defer s.freeMu.Unlock()
	if s.freeOwner != nil && s.freeOwner != txn {
		return 0, false
	}
	n := len(s.free)
	if n == 0 {
		return 0, false
	}
	if txn == nil {
		return 0, false
	}
	s.freeOwner = txn
	e := s.free[n-1]
	if err := s.freeHeap.Delete(txn, e.rid); err != nil {
		return 0, false
	}
	s.free = s.free[:n-1]
	return e.pid, true
}

// releaseFree hands the free list back after txn commits (no-op when
// txn never touched it).
func (s *Store) releaseFree(txn *Txn) {
	s.freeMu.Lock()
	if s.freeOwner == txn {
		s.freeOwner = nil
		s.freeCond.Broadcast()
	}
	s.freeMu.Unlock()
}

// FreePages returns the number of pages currently on the free list.
func (s *Store) FreePages() int {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	return len(s.free)
}

// ReferencedPages returns the set of pages the committed structures
// reach: the catalog chain, the free-list chain and its entries, and
// every relation's heap and index chains. Pages outside the set are
// orphans — the residue of uncommitted allocations (a crash can even
// leave such pages torn or zeroed, since nothing ordered their writes)
// — which are never read, are quarantined onto the free list by the
// sweep, and are re-initialized before reuse.
func (s *Store) ReferencedPages() (map[uint32]bool, error) {
	s.mu.Lock()
	rels := make(map[string]*RelStore, len(s.rels))
	for n, rs := range s.rels {
		rels[n] = rs
	}
	s.mu.Unlock()
	ref := make(map[uint32]bool)
	chains := [][]uint32{}
	catPages, err := s.catalog.Pages()
	if err != nil {
		return nil, fmt.Errorf("%w: walking catalog chain: %v", ErrCorrupt, err)
	}
	chains = append(chains, catPages)
	freePages, err := s.freeHeap.Pages()
	if err != nil {
		return nil, fmt.Errorf("%w: walking free-list chain: %v", ErrCorrupt, err)
	}
	chains = append(chains, freePages)
	for name, rs := range rels {
		pids, err := rs.pages()
		if err != nil {
			return nil, fmt.Errorf("%w: walking chains of %q: %v", ErrCorrupt, name, err)
		}
		chains = append(chains, pids)
	}
	for _, pids := range chains {
		for _, pid := range pids {
			ref[pid] = true
		}
	}
	s.freeMu.Lock()
	for _, e := range s.free {
		ref[e.pid] = true
	}
	s.freeMu.Unlock()
	return ref, nil
}

// SweepOrphans reclaims every allocated page referenced by no chain —
// not the catalog's, not the free list's, not any relation's heap or
// index chains, and not already a free-list entry — by pushing it onto
// the free list as one committed batch. Open runs it automatically
// after crash recovery (a sidecar on disk marks the open as crashed);
// cleanly-closed files skip it so a clean open never walks the heaps —
// call this explicitly (or let Save compaction rewrite the file) to
// reclaim orphans left by the degraded paths after a clean shutdown.
//
// The store must be QUIESCED: no transaction may be in flight, because
// pages an uncommitted transaction allocated are unreachable from the
// committed chains and would be swept onto the free list — once that
// transaction commits the page would be owned twice, and a later
// recycle would overwrite live data. (The automatic open-time run is
// trivially quiesced.)
func (s *Store) SweepOrphans() error { return s.sweepOrphans() }

// sweepOrphans walks every chain to compute the referenced-page set:
// orphans are the bounded residue of the degraded paths that trade
// leakage for progress (a drop while another transaction owned the
// free list, an aborted create's allocations, a rolled-back
// transaction's file growth); because they are unreferenced in the
// committed state, re-owning them here can never conflict with live
// data, and a crash mid-sweep just re-runs it on the next recovery. A
// clean database sweeps nothing and writes nothing.
func (s *Store) sweepOrphans() error {
	ref, err := s.ReferencedPages()
	if err != nil {
		return err
	}
	var orphans []uint32
	for pid := uint32(1); pid <= s.pager.NumPages(); pid++ {
		if !ref[pid] {
			orphans = append(orphans, pid)
		}
	}
	if len(orphans) == 0 {
		return nil
	}
	txn := s.Begin()
	if err := s.freePages(txn, orphans); err != nil {
		// reclaiming is an optimization; a failure just leaves the
		// orphans for the next open
		s.Rollback(txn)
		return nil
	}
	return s.Commit(txn)
}
