package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// crashedPair builds a database at path with one committed tuple and
// "crashes" it (Discard), leaving the WAL sidecar with committed
// batches — the shape recovery normally trusts.
func crashedPair(t *testing.T, path string) {
	t.Helper()
	st, err := Open(path, Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Insert(txn, tupleOf([][]string{{"c1"}, {"b1"}, {"s1"}}, def.Order)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if st.DBID() == 0 {
		t.Fatal("fresh database has no id")
	}
	st.Discard() // crash: sidecar survives with its batches
}

// TestMispairedWALRefused: a data file opened next to another
// database's WAL sidecar must refuse with ErrMispaired — replaying the
// wrong log would splice foreign pages into the file. Covers both
// directions of a shuffled pair and the copied-data-file case.
func TestMispairedWALRefused(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.nfrs")
	b := filepath.Join(dir, "b.nfrs")
	crashedPair(t, a)
	crashedPair(t, b)

	cp := func(src, dst string) {
		t.Helper()
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// shuffled pair: a's data + b's sidecar (and vice versa)
	shuffled := filepath.Join(dir, "shuffled.nfrs")
	cp(a, shuffled)
	cp(b+".wal", shuffled+".wal")
	if _, err := Open(shuffled, Options{}); !errors.Is(err, ErrMispaired) {
		t.Fatalf("shuffled pair opened with err=%v, want ErrMispaired", err)
	}

	// copied data file dropped next to an unrelated sidecar
	copied := filepath.Join(dir, "copied.nfrs")
	cp(b, copied)
	cp(a+".wal", copied+".wal")
	if _, err := Open(copied, Options{}); !errors.Is(err, ErrMispaired) {
		t.Fatalf("copied pair opened with err=%v, want ErrMispaired", err)
	}

	// the matched pairs still recover normally
	for _, path := range []string{a, b} {
		st, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("matched pair %s refused: %v", path, err)
		}
		rs, ok := st.Rel("R1")
		if !ok {
			t.Fatal("relation lost across recovery")
		}
		if rs.Len() != 1 {
			t.Fatalf("recovered %d tuples, want 1", rs.Len())
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStaleWALFromOldIncarnationRefused: delete a database, recreate it
// at the same path (new id), then restore the OLD incarnation's sidecar
// — recovery must refuse rather than replay pages from the previous
// life of the file.
func TestStaleWALFromOldIncarnationRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.nfrs")
	crashedPair(t, path)
	oldWAL, err := os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	// recover cleanly (removes the sidecar), then start a new
	// incarnation from scratch
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	crashedPair(t, path)
	// swap in the first incarnation's log
	if err := os.WriteFile(path+".wal", oldWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrMispaired) {
		t.Fatalf("stale-incarnation sidecar opened with err=%v, want ErrMispaired", err)
	}
}

// flipByte XORs one byte of the file at off, tearing whatever page
// contains it (the page checksum no longer matches).
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestTornHeaderMispairedWALRefused: page 1 torn (checksum broken) but
// with the header's raw id bytes still legible, next to another
// database's sidecar. The checksum-gated probe sees nothing, but the
// raw fixed-offset probe must still catch the id mismatch and refuse —
// "the page is torn" must not become a license to replay a foreign log.
func TestTornHeaderMispairedWALRefused(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.nfrs")
	b := filepath.Join(dir, "b.nfrs")
	crashedPair(t, a)
	crashedPair(t, b)

	// tear page 1 of a beyond the header record's id bytes (page 1 is at
	// file offset 0; magic [20:24), version [24], id [25:33))
	flipByte(t, a, 100)
	// pair it with b's sidecar
	wal, err := os.ReadFile(b + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a+".wal", wal, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(a, Options{}); !errors.Is(err, ErrMispaired) {
		t.Fatalf("torn+mispaired pair opened with err=%v, want ErrMispaired", err)
	}
}

// TestTornHeaderMatchingWALRepairs: the same torn page 1, but paired
// with the database's OWN sidecar — the raw probe confirms the ids
// match and recovery repairs the page from the log. This is the
// legitimate crash pairing the raw probe must not break.
func TestTornHeaderMatchingWALRepairs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nfrs")
	crashedPair(t, path)
	flipByte(t, path, 100)
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("torn page 1 with matching sidecar refused: %v", err)
	}
	defer st.Close()
	rs, ok := st.Rel("R1")
	if !ok {
		t.Fatal("relation lost across torn-header recovery")
	}
	if rs.Len() != 1 {
		t.Fatalf("recovered %d tuples, want 1", rs.Len())
	}
}

// TestDestroyedHeaderBestEffort pins the probe's documented limit: when
// the tear destroys the header's own magic bytes, no id survives at
// either probe and recovery falls back to trusting the sidecar. With a
// mispaired sidecar the replay rebuilds the file in the foreign
// database's image — detectably wrong to a human, but structurally a
// valid database. This is best-effort by design; the test exists so a
// behavior change here is a conscious one.
func TestDestroyedHeaderBestEffort(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.nfrs")
	b := filepath.Join(dir, "b.nfrs")
	crashedPair(t, a)
	crashedPair(t, b)

	flipByte(t, a, 20) // first magic byte: raw probe now returns 0
	wal, err := os.ReadFile(b + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a+".wal", wal, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(a, Options{})
	if err != nil {
		t.Fatalf("destroyed-header pair refused: %v (best-effort path should replay)", err)
	}
	defer st.Close()
	// the replayed file is b's image, id included
	if st.DBID() == 0 {
		t.Fatal("replayed database has no id")
	}
	rs, ok := st.Rel("R1")
	if !ok {
		t.Fatal("replayed database lost its relation")
	}
	if rs.Len() != 1 {
		t.Fatalf("replayed database has %d tuples, want 1", rs.Len())
	}
}

// TestDBIDStableAcrossReopen: the id is minted once at initialization
// and survives clean closes, reopens, and crash recovery.
func TestDBIDStableAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nfrs")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := st.DBID()
	if id == 0 {
		t.Fatal("no database id minted")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.DBID() != id {
		t.Fatalf("id changed across reopen: %016x != %016x", st2.DBID(), id)
	}
}
