package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/encoding"
	"repro/internal/storage"
	"repro/internal/workload"
)

// buildDB writes a database with enough tuples to span several pages
// and returns its path and file size.
func buildDB(t *testing.T) (string, int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.nfrs")
	st, err := Open(path, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	e := workload.GenEnrollment(9, workload.EnrollmentParams{
		Students: 120, CoursePool: 30, ClubPool: 8, SemesterPool: 4,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	canon, _ := e.R1.Canonical(def.Order)
	for i := 0; i < canon.Len(); i++ {
		if err := rs.Insert(txn, canon.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 3*storage.PageSize {
		t.Fatalf("database too small for truncation tests: %d bytes", fi.Size())
	}
	return path, fi.Size()
}

// reopen attempts to open, fully scan, and index-verify the database,
// converting any panic into a test failure. It returns the first error
// encountered. The index verification matters: the fast open path
// reads only catalog and index directories, so damage in a heap or
// index page must surface through the scan or the oracle check
// instead.
func reopen(t *testing.T, path string) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("reopen panicked: %v", r)
		}
	}()
	st, e := Open(path, Options{PoolPages: 4})
	if e != nil {
		return e
	}
	defer st.Close()
	for _, name := range st.Relations() {
		rs, _ := st.Rel(name)
		if _, e := rs.Load(); e != nil {
			return e
		}
	}
	return st.VerifyIndexes()
}

// TestReopenTruncatedTail covers the torn-tail crash family: a file cut
// mid-page and a file cut at a page boundary (whole tail pages lost)
// must both reopen with a clean error — never a panic.
func TestReopenTruncatedTail(t *testing.T) {
	path, size := buildDB(t)

	// mid-page truncation: not a multiple of the page size
	for _, cut := range []int64{1, storage.PageSize + 17, size - 100} {
		if cut >= size {
			continue
		}
		p2 := filepath.Join(t.TempDir(), "torn.nfrs")
		copyTruncated(t, path, p2, cut)
		if err := reopen(t, p2); err == nil {
			t.Errorf("truncation to %d bytes reopened without error", cut)
		}
	}

	// whole-page truncation: chains now reference unallocated pages
	for pages := int64(1); pages*storage.PageSize < size; pages++ {
		p2 := filepath.Join(t.TempDir(), "cut.nfrs")
		copyTruncated(t, path, p2, pages*storage.PageSize)
		if err := reopen(t, p2); err == nil {
			t.Errorf("truncation to %d whole pages reopened without error", pages)
		}
	}
}

// TestReopenTornPage covers garbage in the middle of the file: zeroed
// and random-byte pages must produce clean errors, not panics.
func TestReopenTornPage(t *testing.T) {
	path, size := buildDB(t)
	pages := size / storage.PageSize
	for page := int64(0); page < pages; page++ {
		for variant, fill := range map[string]byte{"zeroed": 0x00, "ones": 0xFF, "garbage": 0xA7} {
			p2 := filepath.Join(t.TempDir(), "torn.nfrs")
			copyFile(t, path, p2)
			f, err := os.OpenFile(p2, os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			junk := make([]byte, storage.PageSize)
			for i := range junk {
				junk[i] = fill
			}
			if _, err := f.WriteAt(junk, page*storage.PageSize); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if err := reopen(t, p2); err == nil {
				t.Errorf("%s page %d reopened without error", variant, page)
			}
		}
	}
}

// TestReopenBitFlippedRecords flips single bytes inside the first data
// page's record area; reopen must either succeed (the flip landed in
// dead space or produced a still-valid record) or fail cleanly.
func TestReopenBitFlippedRecords(t *testing.T) {
	path, _ := buildDB(t)
	for off := int64(0); off < storage.PageSize; off += 37 {
		p2 := filepath.Join(t.TempDir(), "flip.nfrs")
		copyFile(t, path, p2)
		f, err := os.OpenFile(p2, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		target := storage.PageSize + off // page 2: first relation data page
		if _, err := f.ReadAt(buf, target); err != nil {
			t.Fatal(err)
		}
		buf[0] ^= 0xFF
		if _, err := f.WriteAt(buf, target); err != nil {
			t.Fatal(err)
		}
		f.Close()
		// any outcome but a panic is acceptable
		_ = reopen(t, p2)
	}
}

// TestReopenChainCycle corrupts a page's next pointer to loop back to
// an earlier page: reopen must fail with a cycle error, not hang.
func TestReopenChainCycle(t *testing.T) {
	path, size := buildDB(t)
	pages := size / storage.PageSize
	if pages < 3 {
		t.Skip("need ≥3 pages")
	}
	// point the LAST page's next field (bytes 4..8 of the page) back at
	// page 2, creating a loop in the relation's heap chain
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{2, 0, 0, 0}, (pages-1)*storage.PageSize+4); err != nil {
		t.Fatal(err)
	}
	f.Close()
	done := make(chan error, 1)
	go func() { done <- reopenQuiet(path) }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cyclic chain reopened without error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reopen of cyclic chain hung")
	}
}

// reopenQuiet is reopen without *testing.T (safe to call off the test
// goroutine); cycles would hang rather than panic, so no recover here.
func reopenQuiet(path string) error {
	st, err := Open(path, Options{PoolPages: 4})
	if err != nil {
		return err
	}
	defer st.Close()
	for _, name := range st.Relations() {
		rs, _ := st.Rel(name)
		if _, err := rs.Load(); err != nil {
			return err
		}
	}
	return st.VerifyIndexes()
}

// TestReopenDuplicateRecord: a heap holding the same encoded tuple
// twice is corruption (deletes would leave stale copies) and must be
// rejected on open.
func TestReopenDuplicateRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.nfrs")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	tp := tupleOf([][]string{{"c1"}, {"b1"}, {"s1"}}, def.Order)
	// bypass the indexes: write the same encoded tuple twice at the
	// heap level
	if err := rs.Insert(txn, tp); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.shards[0].heap.Insert(txn, encoding.EncodeTuple(tp)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The fast open path reads no heap page, so the duplicate surfaces
	// through the index oracle (one index entry, two heap records), not
	// at Open itself.
	if err := reopen(t, path); err == nil {
		t.Error("duplicate record passed reopen + index verification")
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func copyTruncated(t *testing.T, src, dst string, n int64) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if n > int64(len(b)) {
		n = int64(len(b))
	}
	if err := os.WriteFile(dst, b[:n], 0o644); err != nil {
		t.Fatal(err)
	}
}
