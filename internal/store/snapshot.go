package store

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/storage"
)

// Store-level snapshots: a Snap pairs a pinned page-level snapshot
// (storage.Snapshot — one committed LSN on the pool's commit clock)
// with the catalog as of that pin. Relation visibility rides the same
// clock: every RelStore carries the commit-LSN window [visibleAt,
// droppedAt) in which it exists, published by Store.Commit at the LSN
// the buffer pool assigned the transaction. A relation dropped while a
// Snap can still read it parks on the store's ghost list until no pin
// reaches below its droppedAt.
//
// The catalog marks publish when Store.Commit returns, a moment after
// the pages themselves publish inside the pool — so a Snap pinned in
// that window may miss a just-committed create (or still list a
// just-committed drop). The skew is one-sided and safe: a listed
// relation's pages are always readable at the pin (retention keeps
// them), and sequential callers — pin after Commit returned — never
// observe it. See docs/mvcc.md.

// txnMarks records the catalog changes a transaction will publish at
// commit: relations it created (invisible until then) and relations it
// dropped (visible until then).
type txnMarks struct {
	creates []*RelStore
	drops   []*RelStore
}

// snapRel is one relation frozen into a Snap: its definition and the
// chain head of every shard heap (all immutable for the life of the
// RelStore).
type snapRel struct {
	def    RelationDef
	firsts []uint32
}

// Snap is a consistent read view of the whole store as of one commit
// LSN: the catalog as pinned, and every page read served at that LSN.
// It takes no relation latch and never blocks a writer; Close releases
// the page retention it causes. Safe for concurrent use.
type Snap struct {
	st   *Store
	ps   *storage.Snapshot
	rels map[string]snapRel
}

// PinSnapshot pins the current committed state: the returned Snap sees
// exactly the relations and tuples of the last published commit, no
// matter what uncommitted transactions or later commits do. Must be
// paired with Close.
func (s *Store) PinSnapshot() *Snap {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.bp.PinSnapshot()
	lsn := ps.LSN()
	rels := make(map[string]snapRel, len(s.rels))
	add := func(rs *RelStore) {
		if rs.visibleAt <= lsn && (rs.droppedAt == 0 || lsn < rs.droppedAt) {
			firsts := make([]uint32, len(rs.shards))
			for i, sh := range rs.shards {
				firsts[i] = sh.heap.FirstPage()
			}
			rels[rs.def.Name] = snapRel{def: rs.def, firsts: firsts}
		}
	}
	for _, rs := range s.rels {
		add(rs)
	}
	// A dropped-then-recreated name cannot collide: the ghost is only
	// visible below its droppedAt, the successor only at or above its
	// (later) visibleAt.
	for _, g := range s.ghosts {
		add(g)
	}
	return &Snap{st: s, ps: ps, rels: rels}
}

// LSN reports the commit LSN the snapshot is pinned at.
func (sn *Snap) LSN() uint64 { return sn.ps.LSN() }

// Has reports whether the relation existed at the pin point.
func (sn *Snap) Has(name string) bool {
	_, ok := sn.rels[name]
	return ok
}

// Relations returns the names of all relations visible at the pin
// point (unsorted).
func (sn *Snap) Relations() []string {
	out := make([]string, 0, len(sn.rels))
	for n := range sn.rels {
		out = append(out, n)
	}
	return out
}

// Def returns the pinned definition of a visible relation.
func (sn *Snap) Def(name string) (RelationDef, bool) {
	sr, ok := sn.rels[name]
	return sr.def, ok
}

// Load materializes a relation as of the pin point.
func (sn *Snap) Load(name string) (*core.Relation, error) {
	return sn.LoadCtx(context.Background(), name)
}

// LoadCtx is Load with cancellation checked at page granularity. The
// heap walks read every page — chain pointers included — through the
// pinned snapshot, so a concurrent writer splicing pages or committing
// tuples is invisible: the result is exactly the relation's content at
// the pin's transaction boundary. For a K-sharded relation the result
// is the UNION of the shard partitions (each shard-canonical, together
// not necessarily globally canonical); the engine re-canonicalizes
// when Def(name).Shards > 1.
func (sn *Snap) LoadCtx(ctx context.Context, name string) (*core.Relation, error) {
	if sn.st == nil {
		return nil, fmt.Errorf("store: read through a closed snapshot")
	}
	sr, ok := sn.rels[name]
	if !ok {
		return nil, fmt.Errorf("store: unknown relation %q", name)
	}
	rel := core.NewRelation(sr.def.Schema)
	deg := sr.def.Schema.Degree()
	for _, first := range sr.firsts {
		var decodeErr error
		err := storage.ScanHeapSnapshot(ctx, sn.ps, first, func(rid storage.RID, rec []byte) bool {
			t, n, derr := encoding.DecodeTuple(rec)
			if derr != nil {
				decodeErr = fmt.Errorf("%w: record %v of %q: %v", ErrCorrupt, rid, name, derr)
				return false
			}
			if n != len(rec) || t.Degree() != deg {
				decodeErr = fmt.Errorf("%w: record %v of %q: malformed tuple record", ErrCorrupt, rid, name)
				return false
			}
			rel.Add(t)
			return true
		})
		if err != nil {
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				return nil, err
			}
			return nil, fmt.Errorf("%w: scanning %q: %v", ErrCorrupt, name, err)
		}
		if decodeErr != nil {
			return nil, decodeErr
		}
	}
	return rel, nil
}

// Close releases the pin: retained page versions and ghost catalog
// entries no remaining pin needs are garbage-collected. Idempotent.
func (sn *Snap) Close() {
	st := sn.st
	if st == nil {
		return
	}
	sn.st = nil
	sn.ps.Close()
	st.mu.Lock()
	st.gcGhostsLocked()
	st.mu.Unlock()
}

// markCreateLocked records (under s.mu) that txn created rs: invisible
// to snapshots until the transaction's commit publishes it.
func (s *Store) markCreateLocked(txn *Txn, rs *RelStore) {
	m := s.pending[txn]
	if m == nil {
		m = &txnMarks{}
		s.pending[txn] = m
	}
	m.creates = append(m.creates, rs)
}

// markDropLocked records (under s.mu) that txn dropped rs: visible to
// snapshots until the transaction's commit publishes the drop.
func (s *Store) markDropLocked(txn *Txn, rs *RelStore) {
	m := s.pending[txn]
	if m == nil {
		m = &txnMarks{}
		s.pending[txn] = m
	}
	m.drops = append(m.drops, rs)
}

// publishMarks makes txn's catalog changes visible at its commit LSN.
// Called by Store.Commit after a successful CommitTxn.
func (s *Store) publishMarks(txn *Txn, lsn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.pending[txn]
	if m == nil {
		return
	}
	delete(s.pending, txn)
	for _, rs := range m.creates {
		rs.visibleAt = lsn
	}
	for _, rs := range m.drops {
		rs.droppedAt = lsn
	}
}

// dropMarksLocked forgets txn's unpublished catalog changes (rollback).
func (s *Store) dropMarksLocked(txn *Txn) {
	delete(s.pending, txn)
}

// gcGhostsLocked drops ghost relations no pinned snapshot can still
// see (every future pin lands at or above the current clock, which is
// at or above any droppedAt already published).
func (s *Store) gcGhostsLocked() {
	if len(s.ghosts) == 0 {
		return
	}
	min, any := s.bp.MinPinnedLSN()
	kept := s.ghosts[:0]
	for _, g := range s.ghosts {
		if any && min < g.droppedAt {
			kept = append(kept, g)
		}
	}
	for i := len(kept); i < len(s.ghosts); i++ {
		s.ghosts[i] = nil
	}
	s.ghosts = kept
}

// Ghosts reports how many dropped relations are being retained for
// pinned snapshots (a test/metrics hook).
func (s *Store) Ghosts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ghosts)
}
