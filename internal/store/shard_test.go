package store

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
)

// TestCatalogShardRoundTrip: a relation created with Shards=K must come
// back from a reopen with K chains, the same Shards in its def, and a
// canonical content equal to what went in — the catalog's FormatVersion-3
// trailing extension carrying per-shard roots is what's under test.
func TestCatalogShardRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nfrs")
	st, err := Open(path, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	def.Shards = 3
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.ShardCount(); got != 3 {
		t.Fatalf("ShardCount = %d, want 3", got)
	}

	// shard-bounded Shards must be enforced at create time
	bad := testDef(t)
	bad.Name = "TooMany"
	bad.Shards = maxShards + 1
	if _, err := st.CreateRelation(txn, bad); err == nil {
		t.Fatalf("Shards=%d accepted (max %d)", bad.Shards, maxShards)
	}

	var flats []tuple.Flat
	for i := 0; i < 30; i++ {
		flats = append(flats, tuple.FlatOfStrings(
			fmt.Sprintf("s%02d", i%10), fmt.Sprintf("c%d", i%4), fmt.Sprintf("b%d", i%3)))
	}
	canon, _ := core.MustFromFlats(def.Schema, flats).Canonical(def.Order)
	if err := rs.Fill(txn, canon); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	// the fixture must span chains, or the round-trip is vacuous
	populated := 0
	for i := 0; i < rs.ShardCount(); i++ {
		if rs.Shard(i).Len() > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("fill landed on %d shard(s); sharding untested", populated)
	}
	if err := st.VerifyIndexes(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rs2, ok := st2.Rel(def.Name)
	if !ok {
		t.Fatalf("relation %q lost on reopen", def.Name)
	}
	if got := rs2.ShardCount(); got != 3 {
		t.Fatalf("reopened ShardCount = %d, want 3", got)
	}
	if got := rs2.Def().Shards; got != 3 {
		t.Fatalf("reopened def.Shards = %d, want 3", got)
	}
	got, err := rs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	// the union of shard partitions is re-canonicalized for comparison,
	// exactly as the engine's read path does
	merged, _ := got.CanonicalFromFlats(def.Order)
	if !merged.Equal(canon) {
		t.Fatalf("reopened content diverged:\ngot  %v\nwant %v", merged, canon)
	}
	if err := st2.VerifyIndexes(); err != nil {
		t.Fatal(err)
	}
}

// TestShardOfAtomStable: the shard routing function must be a pure
// function of the atom encoding — a layout change would strand every
// existing tuple on the wrong chain at reopen.
func TestShardOfAtomStable(t *testing.T) {
	s := schema.MustOf("A")
	_ = s
	for k := 1; k <= 5; k++ {
		for i := 0; i < 50; i++ {
			a := tuple.FlatOfStrings(fmt.Sprintf("atom-%d", i))[0]
			first := ShardOfAtom(a, k)
			if first < 0 || first >= k {
				t.Fatalf("ShardOfAtom out of range: %d of %d", first, k)
			}
			if again := ShardOfAtom(a, k); again != first {
				t.Fatalf("ShardOfAtom not deterministic: %d then %d", first, again)
			}
		}
	}
	// k=1 must route everything to the single chain
	if got := ShardOfAtom(tuple.FlatOfStrings("x")[0], 1); got != 0 {
		t.Fatalf("ShardOfAtom(_, 1) = %d", got)
	}
}

// TestShardIndexReclaimFreesPages: the fill/drain cycle through the
// store — many tuples sharing one determinant atom grow the fixed
// index's overflow chain; deleting them must return the emptied
// overflow pages to the store's free list under the same transaction.
func TestShardIndexReclaimFreesPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nfrs")
	st, err := Open(path, Options{PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	def := testDef(t)
	def.Name = "Drain"
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}

	// FILL: every tuple fixes on the same student, so every insert adds
	// one more "s0" entry to the fixed index — a guaranteed overflow
	// chain once the bucket page fills
	var tuples []tuple.Tuple
	for i := 0; i < 500; i++ {
		one, _ := core.MustFromFlats(def.Schema, []tuple.Flat{
			tuple.FlatOfStrings("s0", fmt.Sprintf("c%04d", i), fmt.Sprintf("b%d", i%7)),
		}).Canonical(def.Order)
		tp := one.Tuple(0)
		if err := rs.Insert(txn, tp); err != nil {
			t.Fatal(err)
		}
		tuples = append(tuples, tp)
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	fixedPages, err := rs.Shard(0).fixedD.Pages()
	if err != nil {
		t.Fatal(err)
	}
	if len(fixedPages) < 3 {
		t.Fatalf("500 same-key entries only span %d index pages; no chain to reclaim", len(fixedPages))
	}
	freeBefore := st.FreePages()

	// DRAIN
	txn = st.Begin()
	for i, tp := range tuples {
		if err := rs.Remove(txn, tp); err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if got := rs.Len(); got != 0 {
		t.Fatalf("Len after drain = %d, want 0", got)
	}
	freeAfter := st.FreePages()
	if freeAfter <= freeBefore {
		t.Fatalf("free list did not grow (%d -> %d): emptied overflow pages leaked", freeBefore, freeAfter)
	}
	drained, err := rs.Shard(0).fixedD.Pages()
	if err != nil {
		t.Fatal(err)
	}
	if len(drained) >= len(fixedPages) {
		t.Fatalf("fixed index still holds %d pages (was %d)", len(drained), len(fixedPages))
	}
	if err := st.VerifyIndexes(); err != nil {
		t.Fatal(err)
	}

	// REFILL: the reclaimed pages must be reusable — the file should not
	// need to grow much to absorb the same load again
	sizeAfterDrain := st.NumPages()
	txn = st.Begin()
	for _, tp := range tuples {
		if err := rs.Insert(txn, tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if grew := int(st.NumPages()) - int(sizeAfterDrain); grew > len(fixedPages) {
		t.Errorf("refill grew the file by %d pages (first fill used %d index pages): free list not reused", grew, len(fixedPages))
	}
	if err := st.VerifyIndexes(); err != nil {
		t.Fatal(err)
	}
}
