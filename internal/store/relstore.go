package store

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/value"
)

// RelStore is one relation's on-disk realization: a heap file of
// encoded canonical NFR tuples plus two in-memory hash indexes rebuilt
// on open —
//
//   - a primary index keyed on the full tuple key, so the write-through
//     delete path locates the victim record in O(1), and
//   - a fixed-attribute index keyed on each atom of the tuple's fixed
//     (determinant) component, so point lookups by determinant value
//     (the NFR analogue of a key probe) avoid scanning the heap.
//
// RelStore implements update.BatchSink; because the sink interface
// cannot return errors mid-algorithm, write failures are latched and
// surfaced via Err. Each StatementBegin/StatementEnd bracket is one
// transaction: the statement's writes accumulate under a Txn begun at
// the bracket's start and group-commit at its end, so statements on
// different relations commit concurrently (and merge into shared
// fsyncs). The engine serializes statements per relation, so at most
// one statement transaction is open per RelStore at a time.
type RelStore struct {
	st     *Store
	def    RelationDef
	heap   *storage.HeapFile
	catRID storage.RID

	mu    sync.Mutex
	rids  *storage.HashIndex // tuple key -> RID
	fixed *storage.HashIndex // determinant atom -> RID
	count int
	cur   *Txn  // open statement transaction (between brackets)
	ext   bool  // cur is owned by an engine-level multi-statement Tx
	err   error // first write-through failure
}

// fixedAttr returns the schema position of the last-nested attribute —
// the component the canonical form is fixed on when the nest order
// follows the paper's Section 3.4 guidance.
func (r *RelStore) fixedAttr() int { return r.def.Order[len(r.def.Order)-1] }

func newRelStore(s *Store, def RelationDef, heap *storage.HeapFile, catRID storage.RID) *RelStore {
	return &RelStore{
		st: s, def: def, heap: heap, catRID: catRID,
		rids:  storage.NewHashIndex(),
		fixed: storage.NewHashIndex(),
	}
}

// openRelStore attaches to an existing heap chain and rebuilds the
// indexes by scanning it.
func openRelStore(s *Store, ce catalogEntry) (*RelStore, error) {
	heap, err := storage.OpenHeap(s.bp, ce.heapFirst)
	if err != nil {
		return nil, fmt.Errorf("%w: opening heap of %q: %v", ErrCorrupt, ce.def.Name, err)
	}
	rs := newRelStore(s, ce.def, heap, ce.rid)
	var dupErr error
	if err := rs.scanRaw(context.Background(), func(rid storage.RID, t tuple.Tuple) bool {
		// The engine never writes the same tuple twice; a duplicate
		// record would make deletes leave a stale copy behind, so it is
		// corruption, not data.
		if len(rs.rids.Get([]byte(t.Key()))) > 0 {
			dupErr = fmt.Errorf("%w: duplicate record at %v in %q", ErrCorrupt, rid, ce.def.Name)
			return false
		}
		rs.indexTuple(t, rid)
		return true
	}); err != nil {
		return nil, err
	}
	if dupErr != nil {
		return nil, dupErr
	}
	return rs, nil
}

// Def returns the relation's durable definition.
func (r *RelStore) Def() RelationDef { return r.def }

// Len returns the number of stored NFR tuples.
func (r *RelStore) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Err returns the first write-through failure recorded by the sink
// callbacks (nil when all writes succeeded).
func (r *RelStore) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *RelStore) indexTuple(t tuple.Tuple, rid storage.RID) {
	r.rids.Put([]byte(t.Key()), rid)
	for _, a := range t.Set(r.fixedAttr()).Atoms() {
		r.fixed.Put(encoding.AppendAtom(nil, a), rid)
	}
	r.count++
}

func (r *RelStore) unindexTuple(t tuple.Tuple, rid storage.RID) {
	r.rids.Delete([]byte(t.Key()), rid)
	for _, a := range t.Set(r.fixedAttr()).Atoms() {
		r.fixed.Delete(encoding.AppendAtom(nil, a), rid)
	}
	r.count--
}

// Insert appends one canonical tuple to the heap under txn and indexes
// it.
func (r *RelStore) Insert(txn *Txn, t tuple.Tuple) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.insertLocked(txn, t)
}

func (r *RelStore) insertLocked(txn *Txn, t tuple.Tuple) error {
	rid, err := r.heap.Insert(txn, encoding.EncodeTuple(t))
	if err != nil {
		return err
	}
	r.indexTuple(t, rid)
	return nil
}

// Remove deletes the record holding the exact tuple t under txn.
func (r *RelStore) Remove(txn *Txn, t tuple.Tuple) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.removeLocked(txn, t)
}

func (r *RelStore) removeLocked(txn *Txn, t tuple.Tuple) error {
	key := []byte(t.Key())
	rids := r.rids.Get(key)
	if len(rids) == 0 {
		return fmt.Errorf("store: tuple not found in %q: %s", r.def.Name, t)
	}
	rid := rids[0]
	if err := r.heap.Delete(txn, rid); err != nil {
		return err
	}
	r.unindexTuple(t, rid)
	return nil
}

// TupleAdded implements update.Sink: write-through of a composition
// result under the open statement transaction. Errors are latched (see
// Err).
func (r *RelStore) TupleAdded(t tuple.Tuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		r.setErrLocked(fmt.Errorf("store: write-through to %q outside a statement", r.def.Name))
		return
	}
	if err := r.insertLocked(r.cur, t); err != nil {
		r.setErrLocked(err)
	}
}

// TupleRemoved implements update.Sink: write-through of a decomposition
// victim under the open statement transaction. Errors are latched (see
// Err).
func (r *RelStore) TupleRemoved(t tuple.Tuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		r.setErrLocked(fmt.Errorf("store: write-through to %q outside a statement", r.def.Name))
		return
	}
	if err := r.removeLocked(r.cur, t); err != nil {
		r.setErrLocked(err)
	}
}

// StatementBegin implements update.BatchSink: the start of one
// statement transaction. The adds and drops of one Section-4 statement
// accumulate as dirty buffered pages in the transaction's dirty set;
// nothing reaches the data file yet (the pool is no-steal). A still-
// open transaction from a failed statement is reused so the engine's
// rollback repairs land in the same atomic batch.
func (r *RelStore) StatementBegin() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		r.cur = r.st.Begin()
	}
}

// UseTxn puts the relation store into external-transaction mode: every
// write-through between now and ReleaseTxn is attributed to txn, and
// the BatchSink brackets stop owning the commit boundary (StatementEnd
// becomes a no-op). The engine's multi-statement Tx uses this so the
// adds and drops of MANY statements pool under one transaction and
// group-commit together at Tx.Commit.
func (r *RelStore) UseTxn(txn *Txn) {
	r.mu.Lock()
	r.cur = txn
	r.ext = true
	r.mu.Unlock()
}

// ReleaseTxn leaves external-transaction mode (after the owning Tx
// committed or rolled back); the BatchSink brackets own the commit
// boundary again.
func (r *RelStore) ReleaseTxn() {
	r.mu.Lock()
	r.cur = nil
	r.ext = false
	r.mu.Unlock()
}

// Reindex rebuilds the in-memory derived state — the heap's cached
// insertion target and both hash indexes — from the heap's current
// pages, returning the relation materialized by the same single scan
// (the engine's rollback resets the maintainer from it, so the heap is
// walked once, not twice). A transaction rollback discards uncommitted
// frames from the pool, reverting the heap to its last committed
// content; this brings the in-memory mirrors back in line with it.
func (r *RelStore) Reindex() (*core.Relation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.heap.Rewind(); err != nil {
		return nil, err
	}
	r.rids = storage.NewHashIndex()
	r.fixed = storage.NewHashIndex()
	r.count = 0
	r.cur = nil
	r.ext = false
	r.err = nil
	rel := core.NewRelation(r.def.Schema)
	if err := r.scanRawLocked(context.Background(), func(rid storage.RID, t tuple.Tuple) bool {
		r.indexTuple(t, rid)
		rel.Add(t)
		return true
	}); err != nil {
		return nil, err
	}
	return rel, nil
}

// StatementEnd implements update.BatchSink: the group-commit point. All
// pages the statement dirtied go to the WAL as one batch — merged with
// concurrently committing statements on other relations into a single
// fsync — then through to the data file. Errors are latched (see Err)
// so the engine's rollback path can surface them.
//
// A statement whose write-through already failed mid-stream is NOT
// committed: its half-applied pages stay buffered under the still-open
// transaction (the pool is no-steal, so they cannot leak to disk), the
// engine's rollback then repairs them in place via Replace, and the
// repaired state commits as one batch — a crash anywhere in between
// recovers the pre-statement state, never a mix.
//
// In external-transaction mode (UseTxn) the bracket does not own the
// commit boundary: the statement's pages stay pooled under the
// engine-level transaction until its Commit.
func (r *RelStore) StatementEnd() {
	r.mu.Lock()
	txn := r.cur
	failed := r.err != nil || r.ext
	r.mu.Unlock()
	if failed || txn == nil {
		return
	}
	err := r.st.Commit(txn)
	r.mu.Lock()
	if err != nil {
		if r.err == nil {
			r.err = err
		}
	} else {
		r.cur = nil
	}
	r.mu.Unlock()
}

// CommitStatement force-commits the open statement transaction outside
// the maintainer brackets — the engine uses it after resynchronizing
// the heap on a rollback. A no-op when no statement transaction is
// open.
func (r *RelStore) CommitStatement() error {
	r.mu.Lock()
	txn := r.cur
	r.mu.Unlock()
	if txn == nil {
		return nil
	}
	if err := r.st.Commit(txn); err != nil {
		return err
	}
	r.mu.Lock()
	r.cur = nil
	r.mu.Unlock()
	return nil
}

// StatementTxn returns the open statement transaction (nil between
// statements). The engine's rollback path uses it to repair the heap
// within the same atomic batch as the failed statement.
func (r *RelStore) StatementTxn() *Txn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// ResetErr clears the latched write-through failure. Callers must
// first restore heap↔memory consistency (see Replace); the engine's
// rollback path does exactly that.
func (r *RelStore) ResetErr() {
	r.mu.Lock()
	r.err = nil
	r.mu.Unlock()
}

func (r *RelStore) setErr(err error) {
	r.mu.Lock()
	r.setErrLocked(err)
	r.mu.Unlock()
}

func (r *RelStore) setErrLocked(err error) {
	if r.err == nil {
		r.err = err
	}
}

// scanRaw decodes every live record in chain order, reporting rids.
// r.mu is held for the whole walk so readers never observe page bytes
// mid-mutation from a concurrent write-through.
func (r *RelStore) scanRaw(ctx context.Context, fn func(rid storage.RID, t tuple.Tuple) bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scanRawLocked(ctx, fn)
}

func (r *RelStore) scanRawLocked(ctx context.Context, fn func(rid storage.RID, t tuple.Tuple) bool) error {
	deg := r.def.Schema.Degree()
	var decodeErr error
	err := r.heap.ScanCtx(ctx, func(rid storage.RID, rec []byte) bool {
		t, n, err := encoding.DecodeTuple(rec)
		if err != nil {
			decodeErr = fmt.Errorf("%w: record %v of %q: %v", ErrCorrupt, rid, r.def.Name, err)
			return false
		}
		if n != len(rec) || t.Degree() != deg {
			decodeErr = fmt.Errorf("%w: record %v of %q: malformed tuple record", ErrCorrupt, rid, r.def.Name)
			return false
		}
		return fn(rid, t)
	})
	if err != nil {
		// a cancelled scan is the caller's context speaking, not a
		// malformed file
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			return err
		}
		return fmt.Errorf("%w: scanning %q: %v", ErrCorrupt, r.def.Name, err)
	}
	return decodeErr
}

// Scan calls fn for every stored tuple in heap order, reading pages
// through the shared buffer pool. fn returning false stops the scan.
func (r *RelStore) Scan(fn func(t tuple.Tuple) bool) error {
	return r.scanRaw(context.Background(), func(_ storage.RID, t tuple.Tuple) bool { return fn(t) })
}

// Load materializes the stored relation by scanning its heap.
func (r *RelStore) Load() (*core.Relation, error) {
	return r.LoadCtx(context.Background())
}

// LoadCtx is Load with cancellation checked at page-fetch granularity:
// a cancelled context stops the heap walk before the next page is
// pulled through the buffer pool.
func (r *RelStore) LoadCtx(ctx context.Context) (*core.Relation, error) {
	rel := core.NewRelation(r.def.Schema)
	if err := r.scanRaw(ctx, func(_ storage.RID, t tuple.Tuple) bool {
		rel.Add(t)
		return true
	}); err != nil {
		return nil, err
	}
	return rel, nil
}

// LookupFixed returns every stored tuple whose fixed (determinant)
// component contains atom a — an index point lookup instead of a heap
// scan.
func (r *RelStore) LookupFixed(a value.Atom) ([]tuple.Tuple, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rids := r.fixed.Get(encoding.AppendAtom(nil, a))
	out := make([]tuple.Tuple, 0, len(rids))
	for _, rid := range rids {
		rec, err := r.heap.Get(rid)
		if err != nil {
			return nil, err
		}
		t, _, err := encoding.DecodeTuple(rec)
		if err != nil {
			return nil, fmt.Errorf("%w: record %v of %q: %v", ErrCorrupt, rid, r.def.Name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// HeapStats reports the heap occupancy of this relation.
func (r *RelStore) HeapStats() (storage.HeapStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.heap.Stats()
}

// Replace atomically (with respect to this process) swaps the stored
// content for the given relation under txn: every live record is
// tombstoned and rel's tuples are inserted fresh. Used by the engine
// when the stored form has drifted from the canonical form it
// maintains.
func (r *RelStore) Replace(txn *Txn, rel *core.Relation) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.clearLocked(txn); err != nil {
		return err
	}
	for i := 0; i < rel.Len(); i++ {
		if err := r.insertLocked(txn, rel.Tuple(i)); err != nil {
			return err
		}
	}
	return nil
}

// clearLocked tombstones every live record.
func (r *RelStore) clearLocked(txn *Txn) error {
	var rids []storage.RID
	if err := r.heap.Scan(func(rid storage.RID, _ []byte) bool {
		rids = append(rids, rid)
		return true
	}); err != nil {
		return err
	}
	for _, rid := range rids {
		if err := r.heap.Delete(txn, rid); err != nil {
			return err
		}
	}
	r.rids = storage.NewHashIndex()
	r.fixed = storage.NewHashIndex()
	r.count = 0
	return nil
}
