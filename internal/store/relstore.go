package store

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/value"
)

// relIndex is the store's view of one hash index, satisfied by both the
// durable paged index (storage.DiskHashIndex) and the in-memory rebuilt
// one (memIndex) that stands in when a legacy v2 file is attached
// without write permission (Options.NoSweep).
type relIndex interface {
	Put(txn *storage.Txn, key []byte, rid storage.RID) error
	Get(key []byte) ([]storage.RID, error)
	Delete(txn *storage.Txn, key []byte, rid storage.RID) (bool, error)
	Len() int
	// TakeReleased drains the page ids the index shed since the last
	// call (overflow pages emptied by deletes); nil for indexes that
	// never shed pages.
	TakeReleased() []uint32
}

// memIndex adapts storage.HashIndex (rebuild-on-open, never durable) to
// relIndex.
type memIndex struct{ ix *storage.HashIndex }

func (m memIndex) Put(_ *storage.Txn, key []byte, rid storage.RID) error {
	m.ix.Put(key, rid)
	return nil
}
func (m memIndex) Get(key []byte) ([]storage.RID, error) { return m.ix.Get(key), nil }
func (m memIndex) Delete(_ *storage.Txn, key []byte, rid storage.RID) (bool, error) {
	return m.ix.Delete(key, rid), nil
}
func (m memIndex) Len() int               { return m.ix.Len() }
func (m memIndex) TakeReleased() []uint32 { return nil }

// ShardOfAtom maps a determinant atom to its shard ordinal in a
// K-sharded relation: FNV-1a over the atom's stable encoding, mod K.
// The encoding (not Go's map iteration or pointer identity) keys the
// hash, so the routing is deterministic across restarts — the invariant
// the catalog relies on is that every tuple whose fixed component
// contains atom a lives in shard ShardOfAtom(a, K).
func ShardOfAtom(a value.Atom, k int) int {
	if k <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write(encoding.AppendAtom(nil, a))
	return int(h.Sum32() % uint32(k))
}

// Shard is one heap chain of a relation plus the pair of durable hash
// indexes that describe it —
//
//   - a primary index keyed on the full tuple key, so the write-through
//     delete path locates the victim record in O(1), and
//   - a fixed-attribute index keyed on each atom of the tuple's fixed
//     (determinant) component, so point lookups by determinant value
//     (the NFR analogue of a key probe) avoid scanning the heap.
//
// A classic relation has exactly one shard; a K-sharded relation
// partitions its canonical tuples across K shards by ShardOfAtom of the
// determinant, each shard holding the Section-4 canonical form of its
// own partition. Because a shard owns a disjoint set of pages (its heap
// chain and its two index structures), statements on different shards
// of one relation dirty disjoint frames and commit concurrently through
// the merged group commit — the union of the shard canonical forms is
// re-canonicalized on read (engine side) to recover the global V_P.
//
// Index mutations ride the same transaction as the heap mutation that
// caused them, so a commit makes heap and index durable as one batch
// and a crash recovers them on the same boundary; reopening attaches to
// the persisted structures in O(index directory) page reads instead of
// rebuilding by heap scan (v2 files, which predate durable indexes, are
// upgraded once — see Store.upgradeIndexes). Reindex remains the
// heap-scan oracle: it verifies the durable index against the heap and
// rebuilds it only on divergence.
//
// Shard implements update.BatchSink; because the sink interface cannot
// return errors mid-algorithm, write failures are latched and surfaced
// via Err. Each StatementBegin/StatementEnd bracket is one transaction:
// the statement's writes accumulate under a Txn begun at the bracket's
// start and group-commit at its end, so statements on different
// relations — and different shards of one relation — commit
// concurrently (and merge into shared fsyncs). The engine serializes
// statements per shard, so at most one statement transaction is open
// per Shard at a time.
type Shard struct {
	st  *Store
	def RelationDef
	ord int // shard ordinal within the relation

	heap *storage.HeapFile

	mu    sync.Mutex
	rids  relIndex // tuple key -> RID
	fixed relIndex // determinant atom -> RID
	// ridsD/fixedD are the durable paged indexes behind rids/fixed; nil
	// only for a legacy v2 attachment that may not write (NoSweep),
	// where rebuilt in-memory indexes stand in.
	ridsD  *storage.DiskHashIndex
	fixedD *storage.DiskHashIndex
	// rangeD is the ordered B+tree over the same determinant atoms the
	// fixed hash index covers (memcomparable keys, see
	// encoding.AppendOrderedAtom), answering range predicates the hash
	// index cannot. nil on legacy attachments that predate it or may
	// not write (NoSweep) — range queries then fall back to heap scans.
	rangeD *storage.BTree
	count  int
	cur    *Txn  // open statement transaction (between brackets)
	ext    bool  // cur is owned by an engine-level multi-statement Tx
	err    error // first write-through failure
}

// RelStore is one relation's on-disk realization: its shards (one for
// the classic layout) behind a thin router. Writes of canonical tuples
// route to the owning shard by determinant atom; reads union the
// shards' heaps. Callers that partition work per shard (the engine's
// concurrent write path) address shards directly via Shard(i).
type RelStore struct {
	st     *Store
	def    RelationDef
	catRID storage.RID

	// Snapshot visibility window, guarded by st.mu (not shard mu): the
	// relation exists for pins in [visibleAt, droppedAt). 0/0 means
	// "since before any pin, still live"; a pending create sits at
	// visibleAt = MaxUint64 until its commit publishes the real LSN.
	// See store snapshot.go.
	visibleAt uint64
	droppedAt uint64

	shards []*Shard
}

// fixedAttr returns the schema position of the last-nested attribute —
// the component the canonical form is fixed on when the nest order
// follows the paper's Section 3.4 guidance.
func (r *Shard) fixedAttr() int { return r.def.Order[len(r.def.Order)-1] }

func (r *RelStore) fixedAttr() int { return r.def.Order[len(r.def.Order)-1] }

// newShard wires a Shard around an attached heap and (when non-nil)
// durable indexes; without them, fresh in-memory indexes stand in and
// the caller populates them by scanning.
func newShard(s *Store, def RelationDef, ord int, heap *storage.HeapFile, ridsD, fixedD *storage.DiskHashIndex, rangeD *storage.BTree) *Shard {
	sh := &Shard{st: s, def: def, ord: ord, heap: heap, ridsD: ridsD, fixedD: fixedD, rangeD: rangeD}
	if ridsD != nil {
		sh.rids, sh.fixed = ridsD, fixedD
		sh.count = ridsD.Len()
	} else {
		sh.rids = memIndex{storage.NewHashIndex()}
		sh.fixed = memIndex{storage.NewHashIndex()}
	}
	return sh
}

// newRelStore assembles a RelStore from already-built shards.
func newRelStore(s *Store, def RelationDef, catRID storage.RID, shards []*Shard) *RelStore {
	return &RelStore{st: s, def: def, catRID: catRID, shards: shards}
}

// openRelStore attaches to an existing relation. With durable index
// roots in the catalog record the attach touches no heap page at all —
// the indexes' directories describe themselves and carry the tuple
// count. A v2 record (zero roots, necessarily single-shard) falls back
// to the classic rebuild-by-scan; Store.upgradeIndexes persists durable
// indexes right after, unless the open is a no-write one
// (Options.NoSweep).
func openRelStore(s *Store, ce catalogEntry) (*RelStore, error) {
	if ce.ridsRoot != 0 {
		roots := append([]shardRoots{{ce.heapFirst, ce.ridsRoot, ce.fixedRoot, ce.rangeRoot}}, ce.extra...)
		shards := make([]*Shard, 0, len(roots))
		for ord, rt := range roots {
			ridsD, err := storage.OpenDiskIndex(s.bp, rt.ridsRoot)
			if err != nil {
				return nil, fmt.Errorf("%w: opening primary index %d of %q: %v", ErrCorrupt, ord, ce.def.Name, err)
			}
			fixedD, err := storage.OpenDiskIndex(s.bp, rt.fixedRoot)
			if err != nil {
				return nil, fmt.Errorf("%w: opening fixed index %d of %q: %v", ErrCorrupt, ord, ce.def.Name, err)
			}
			var rangeD *storage.BTree
			if rt.rangeRoot != 0 {
				rangeD, err = storage.OpenBTree(s.bp, rt.rangeRoot)
				if err != nil {
					return nil, fmt.Errorf("%w: opening range index %d of %q: %v", ErrCorrupt, ord, ce.def.Name, err)
				}
			}
			heap := storage.OpenHeapAt(s.bp, rt.heapFirst)
			shards = append(shards, newShard(s, ce.def, ord, heap, ridsD, fixedD, rangeD))
		}
		return newRelStore(s, ce.def, ce.rid, shards), nil
	}
	heap, err := storage.OpenHeap(s.bp, ce.heapFirst)
	if err != nil {
		return nil, fmt.Errorf("%w: opening heap of %q: %v", ErrCorrupt, ce.def.Name, err)
	}
	sh := newShard(s, ce.def, 0, heap, nil, nil, nil)
	var dupErr error
	if err := sh.scanRaw(context.Background(), func(rid storage.RID, t tuple.Tuple) bool {
		// The engine never writes the same tuple twice; a duplicate
		// record would make deletes leave a stale copy behind, so it is
		// corruption, not data.
		if hits, _ := sh.rids.Get([]byte(t.Key())); len(hits) > 0 {
			dupErr = fmt.Errorf("%w: duplicate record at %v in %q", ErrCorrupt, rid, ce.def.Name)
			return false
		}
		sh.indexTuple(nil, t, rid)
		return true
	}); err != nil {
		return nil, err
	}
	if dupErr != nil {
		return nil, dupErr
	}
	return newRelStore(s, ce.def, ce.rid, []*Shard{sh}), nil
}

// Def returns the relation's durable definition.
func (r *RelStore) Def() RelationDef { return r.def }

// ShardCount returns the number of heap chains the relation is
// partitioned across (1 for the classic layout).
func (r *RelStore) ShardCount() int { return len(r.shards) }

// Shard returns the i-th shard for callers that partition their work
// per shard (the engine's concurrent write path).
func (r *RelStore) Shard(i int) *Shard { return r.shards[i] }

// ShardFor returns the shard owning the canonical tuples whose fixed
// component contains atom a.
func (r *RelStore) ShardFor(a value.Atom) *Shard {
	return r.shards[ShardOfAtom(a, len(r.shards))]
}

// shardOfTuple routes a canonical tuple by (any) one atom of its fixed
// component — the shard invariant guarantees they all agree.
func (r *RelStore) shardOfTuple(t tuple.Tuple) *Shard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	atoms := t.Set(r.fixedAttr()).Atoms()
	return r.ShardFor(atoms[0])
}

// Len returns the number of stored NFR tuples across all shards.
func (r *RelStore) Len() int {
	n := 0
	for _, sh := range r.shards {
		n += sh.Len()
	}
	return n
}

// Len returns the number of tuples stored in this shard.
func (r *Shard) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Err returns the first write-through failure recorded by any shard's
// sink callbacks (nil when all writes succeeded).
func (r *RelStore) Err() error {
	for _, sh := range r.shards {
		if err := sh.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Err returns the first write-through failure recorded by the sink
// callbacks (nil when all writes succeeded).
func (r *Shard) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *Shard) indexTuple(txn *Txn, t tuple.Tuple, rid storage.RID) error {
	if err := r.rids.Put(txn, []byte(t.Key()), rid); err != nil {
		return err
	}
	for _, a := range t.Set(r.fixedAttr()).Atoms() {
		if err := r.fixed.Put(txn, encoding.AppendAtom(nil, a), rid); err != nil {
			return err
		}
		if r.rangeD != nil {
			if err := r.rangeD.Put(txn, encoding.AppendOrderedAtom(nil, a), rid); err != nil {
				return err
			}
		}
	}
	r.count++
	return nil
}

func (r *Shard) unindexTuple(txn *Txn, t tuple.Tuple, rid storage.RID) error {
	if _, err := r.rids.Delete(txn, []byte(t.Key()), rid); err != nil {
		return err
	}
	for _, a := range t.Set(r.fixedAttr()).Atoms() {
		if _, err := r.fixed.Delete(txn, encoding.AppendAtom(nil, a), rid); err != nil {
			return err
		}
		if r.rangeD != nil {
			if _, err := r.rangeD.Delete(txn, encoding.AppendOrderedAtom(nil, a), rid); err != nil {
				return err
			}
		}
	}
	r.count--
	r.reclaimIndexPagesLocked(txn)
	return nil
}

// reclaimIndexPagesLocked returns overflow pages the durable indexes
// shed (emptied by deletes and unlinked from their bucket chains) to
// the free list under the same transaction as the delete that emptied
// them. Best-effort: a refused free (foreign free-list owner) just
// orphans the pages until the next open-time sweep, exactly like the
// drop path's degraded mode.
func (r *Shard) reclaimIndexPagesLocked(txn *Txn) {
	if r.ridsD == nil || txn == nil {
		return
	}
	released := r.ridsD.TakeReleased()
	released = append(released, r.fixedD.TakeReleased()...)
	if r.rangeD != nil {
		released = append(released, r.rangeD.TakeReleased()...)
	}
	if len(released) == 0 {
		return
	}
	_ = r.st.freePages(txn, released)
}

// Insert appends one canonical tuple to the owning shard's heap under
// txn and indexes it. For K-sharded relations the tuple must be a
// shard-canonical tuple (all fixed atoms in one shard) — global
// canonical relations go through Fill/Replace, which re-partition.
func (r *RelStore) Insert(txn *Txn, t tuple.Tuple) error {
	return r.shardOfTuple(t).Insert(txn, t)
}

// Insert appends one canonical tuple to the shard's heap under txn and
// indexes it.
func (r *Shard) Insert(txn *Txn, t tuple.Tuple) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.insertLocked(txn, t)
}

func (r *Shard) insertLocked(txn *Txn, t tuple.Tuple) error {
	rid, err := r.heap.Insert(txn, encoding.EncodeTuple(t))
	if err != nil {
		return err
	}
	return r.indexTuple(txn, t, rid)
}

// Remove deletes the record holding the exact tuple t under txn.
func (r *RelStore) Remove(txn *Txn, t tuple.Tuple) error {
	return r.shardOfTuple(t).Remove(txn, t)
}

// Remove deletes the record holding the exact tuple t under txn.
func (r *Shard) Remove(txn *Txn, t tuple.Tuple) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.removeLocked(txn, t)
}

func (r *Shard) removeLocked(txn *Txn, t tuple.Tuple) error {
	key := []byte(t.Key())
	rids, err := r.rids.Get(key)
	if err != nil {
		return err
	}
	if len(rids) == 0 {
		return fmt.Errorf("store: tuple not found in %q: %s", r.def.Name, t)
	}
	rid := rids[0]
	if err := r.heap.Delete(txn, rid); err != nil {
		return err
	}
	return r.unindexTuple(txn, t, rid)
}

// TupleAdded implements update.Sink: write-through of a composition
// result under the open statement transaction. Errors are latched (see
// Err).
func (r *Shard) TupleAdded(t tuple.Tuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		r.setErrLocked(fmt.Errorf("store: write-through to %q outside a statement", r.def.Name))
		return
	}
	if err := r.insertLocked(r.cur, t); err != nil {
		r.setErrLocked(err)
	}
}

// TupleRemoved implements update.Sink: write-through of a decomposition
// victim under the open statement transaction. Errors are latched (see
// Err).
func (r *Shard) TupleRemoved(t tuple.Tuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		r.setErrLocked(fmt.Errorf("store: write-through to %q outside a statement", r.def.Name))
		return
	}
	if err := r.removeLocked(r.cur, t); err != nil {
		r.setErrLocked(err)
	}
}

// StatementBegin implements update.BatchSink: the start of one
// statement transaction. The adds and drops of one Section-4 statement
// accumulate as dirty buffered pages in the transaction's dirty set;
// nothing reaches the data file yet (the pool is no-steal). A still-
// open transaction from a failed statement is reused so the engine's
// rollback repairs land in the same atomic batch.
func (r *Shard) StatementBegin() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		r.cur = r.st.Begin()
	}
}

// UseTxn puts the shard into external-transaction mode: every
// write-through between now and ReleaseTxn is attributed to txn, and
// the BatchSink brackets stop owning the commit boundary (StatementEnd
// becomes a no-op). The engine's multi-statement Tx uses this so the
// adds and drops of MANY statements pool under one transaction and
// group-commit together at Tx.Commit.
func (r *Shard) UseTxn(txn *Txn) {
	r.mu.Lock()
	r.cur = txn
	r.ext = true
	r.mu.Unlock()
}

// ReleaseTxn leaves external-transaction mode (after the owning Tx
// committed or rolled back); the BatchSink brackets own the commit
// boundary again.
func (r *Shard) ReleaseTxn() {
	r.mu.Lock()
	r.cur = nil
	r.ext = false
	r.mu.Unlock()
}

// sole returns the single shard of a classic relation; multi-shard
// relations have no relation-level statement stream, so using the
// RelStore-level sink there is a caller bug.
func (r *RelStore) sole() *Shard {
	if len(r.shards) != 1 {
		panic(fmt.Sprintf("store: relation-level statement API on %d-sharded %q", len(r.shards), r.def.Name))
	}
	return r.shards[0]
}

// TupleAdded implements update.Sink on the classic single-shard layout.
func (r *RelStore) TupleAdded(t tuple.Tuple) { r.sole().TupleAdded(t) }

// TupleRemoved implements update.Sink on the classic single-shard
// layout.
func (r *RelStore) TupleRemoved(t tuple.Tuple) { r.sole().TupleRemoved(t) }

// StatementBegin implements update.BatchSink on the classic
// single-shard layout.
func (r *RelStore) StatementBegin() { r.sole().StatementBegin() }

// StatementEnd implements update.BatchSink on the classic single-shard
// layout.
func (r *RelStore) StatementEnd() { r.sole().StatementEnd() }

// UseTxn forwards external-transaction mode to every shard.
func (r *RelStore) UseTxn(txn *Txn) {
	for _, sh := range r.shards {
		sh.UseTxn(txn)
	}
}

// ReleaseTxn leaves external-transaction mode on every shard.
func (r *RelStore) ReleaseTxn() {
	for _, sh := range r.shards {
		sh.ReleaseTxn()
	}
}

// ridTuple pairs a heap record with its decoded tuple for the oracle
// comparison.
type ridTuple struct {
	rid storage.RID
	t   tuple.Tuple
}

// Reindex resets the relation's derived state from its heaps — the
// heap-scan oracle — returning the relation materialized by the same
// single scan (the engine's rollback resets the maintainer from it, so
// each heap is walked once, not twice). For a K-sharded relation the
// result is the union of the shard partitions re-canonicalized into the
// global V_P.
func (r *RelStore) Reindex() (*core.Relation, error) {
	if len(r.shards) == 1 {
		return r.shards[0].Reindex()
	}
	union := core.NewRelation(r.def.Schema)
	for _, sh := range r.shards {
		rel, err := sh.Reindex()
		if err != nil {
			return nil, err
		}
		for i := 0; i < rel.Len(); i++ {
			union.Add(rel.Tuple(i))
		}
	}
	canon, _ := union.CanonicalFromFlats(r.def.Order)
	return canon, nil
}

// Reindex resets the shard's derived state from the heap — the
// heap-scan oracle — returning the shard's partition materialized by
// the same single scan. A transaction rollback discards uncommitted
// frames from the pool, reverting heap AND index pages to their last
// committed content; the durable index is then re-attached from its
// (reverted) directory, checked entry-for-entry against the heap, and
// rebuilt in place only if the check fails — so a clean rollback
// performs no writes and leaves the file untouched. Legacy in-memory
// indexes are simply rebuilt by the scan.
func (r *Shard) Reindex() (*core.Relation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.heap.Rewind(); err != nil {
		return nil, err
	}
	r.cur = nil
	r.ext = false
	r.err = nil
	if r.ridsD == nil {
		r.rids = memIndex{storage.NewHashIndex()}
		r.fixed = memIndex{storage.NewHashIndex()}
		r.count = 0
		rel := core.NewRelation(r.def.Schema)
		if err := r.scanRawLocked(context.Background(), func(rid storage.RID, t tuple.Tuple) bool {
			r.indexTuple(nil, t, rid)
			rel.Add(t)
			return true
		}); err != nil {
			return nil, err
		}
		return rel, nil
	}
	if err := r.ridsD.Refresh(); err != nil {
		return nil, err
	}
	if err := r.fixedD.Refresh(); err != nil {
		return nil, err
	}
	if r.rangeD != nil {
		if err := r.rangeD.Refresh(); err != nil {
			return nil, err
		}
	}
	r.count = r.ridsD.Len()
	rel := core.NewRelation(r.def.Schema)
	var rts []ridTuple
	if err := r.scanRawLocked(context.Background(), func(rid storage.RID, t tuple.Tuple) bool {
		rel.Add(t)
		rts = append(rts, ridTuple{rid, t})
		return true
	}); err != nil {
		return nil, err
	}
	if r.checkLocked(rts) != nil {
		if err := r.rebuildLocked(rts); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// checkLocked is the oracle comparison: the index must answer exactly
// what a rebuilt-from-heap index would — every tuple probeable by its
// full key and by each atom of its fixed component, entry counts equal
// (no extras), and every index page readable and checksum-valid.
func (r *Shard) checkLocked(rts []ridTuple) error {
	if n := r.rids.Len(); n != len(rts) {
		return fmt.Errorf("store: %q primary index holds %d entries, heap %d tuples",
			r.def.Name, n, len(rts))
	}
	atoms := 0
	for _, rt := range rts {
		hits, err := r.rids.Get([]byte(rt.t.Key()))
		if err != nil {
			return err
		}
		if !containsRID(hits, rt.rid) {
			return fmt.Errorf("store: %q primary index lost tuple at %v", r.def.Name, rt.rid)
		}
		for _, a := range rt.t.Set(r.fixedAttr()).Atoms() {
			atoms++
			hits, err := r.fixed.Get(encoding.AppendAtom(nil, a))
			if err != nil {
				return err
			}
			if !containsRID(hits, rt.rid) {
				return fmt.Errorf("store: %q fixed index lost atom of tuple at %v", r.def.Name, rt.rid)
			}
			if r.rangeD != nil {
				hits, err := r.rangeD.Get(encoding.AppendOrderedAtom(nil, a))
				if err != nil {
					return err
				}
				if !containsRID(hits, rt.rid) {
					return fmt.Errorf("store: %q range index lost atom of tuple at %v", r.def.Name, rt.rid)
				}
			}
		}
	}
	if n := r.fixed.Len(); n != atoms {
		return fmt.Errorf("store: %q fixed index holds %d entries, heap %d atoms",
			r.def.Name, n, atoms)
	}
	if r.rangeD != nil {
		if n := r.rangeD.Len(); n != atoms {
			return fmt.Errorf("store: %q range index holds %d entries, heap %d atoms",
				r.def.Name, n, atoms)
		}
	}
	// structural pass: every index page (directory, buckets, overflow;
	// B+tree inner nodes and leaf chain) must be reachable and valid,
	// so damage in never-probed pages fail-stops too
	if r.ridsD != nil {
		if _, err := r.ridsD.Pages(); err != nil {
			return err
		}
		if _, err := r.fixedD.Pages(); err != nil {
			return err
		}
	}
	if r.rangeD != nil {
		if _, err := r.rangeD.Pages(); err != nil {
			return err
		}
	}
	return nil
}

func containsRID(rids []storage.RID, rid storage.RID) bool {
	for _, r := range rids {
		if r == rid {
			return true
		}
	}
	return false
}

// rebuildLocked is the repair path: both durable indexes are cleared
// and refilled from the heap under a fresh transaction, committed as
// one batch; the pages the cleared structures shed go to the free
// list. A failure rolls the transaction back — releasing its frame and
// free-list ownership, which would otherwise wedge every later
// statement on those pages — and re-attaches the in-memory mirrors to
// the reverted on-disk state (the damage survives for the next repair
// attempt; a wedge would not recover at all).
func (r *Shard) rebuildLocked(rts []ridTuple) (err error) {
	txn := r.st.Begin()
	defer func() {
		if err == nil {
			return
		}
		if rbErr := r.st.Rollback(txn); rbErr != nil {
			err = fmt.Errorf("index rebuild failed (%v) and rollback failed: %w", err, rbErr)
		}
		// A failed re-attach may not be swallowed: a mirror left holding
		// the aborted rebuild's layout would silently probe the wrong
		// buckets afterwards.
		if rfErr := r.ridsD.Refresh(); rfErr != nil {
			err = fmt.Errorf("index rebuild failed (%v) and re-attach failed: %w", err, rfErr)
			return
		}
		if rfErr := r.fixedD.Refresh(); rfErr != nil {
			err = fmt.Errorf("index rebuild failed (%v) and re-attach failed: %w", err, rfErr)
			return
		}
		if r.rangeD != nil {
			if rfErr := r.rangeD.Refresh(); rfErr != nil {
				err = fmt.Errorf("index rebuild failed (%v) and re-attach failed: %w", err, rfErr)
				return
			}
		}
		r.count = r.ridsD.Len()
	}()
	released, err := r.ridsD.Clear(txn)
	if err != nil {
		return err
	}
	rel2, err := r.fixedD.Clear(txn)
	if err != nil {
		return err
	}
	released = append(released, rel2...)
	if r.rangeD != nil {
		rel3, err := r.rangeD.Clear(txn)
		if err != nil {
			return err
		}
		released = append(released, rel3...)
	}
	r.count = 0
	for _, rt := range rts {
		if err := r.indexTuple(txn, rt.t, rt.rid); err != nil {
			return err
		}
	}
	if len(released) > 0 {
		// a refused free (foreign owner) just orphans the pages until
		// the next sweep
		if err := r.st.freePages(txn, released); err != nil {
			return err
		}
	}
	return r.st.Commit(txn)
}

// VerifyIndex checks every shard's indexes against a fresh heap scan —
// the rebuild-on-open oracle. The durable index must never be more than
// a view of the heap; any divergence (missing or extra entries, torn or
// unreachable index pages) is returned as an error. Tests and the
// reopen bench leg use it; it performs no writes.
func (r *RelStore) VerifyIndex() error {
	for _, sh := range r.shards {
		if err := sh.VerifyIndex(); err != nil {
			return err
		}
	}
	return nil
}

// VerifyIndex checks the shard's indexes against a fresh heap scan.
func (r *Shard) VerifyIndex() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var rts []ridTuple
	if err := r.scanRawLocked(context.Background(), func(rid storage.RID, t tuple.Tuple) bool {
		rts = append(rts, ridTuple{rid, t})
		return true
	}); err != nil {
		return err
	}
	return r.checkLocked(rts)
}

// pages returns every page the relation owns: all shards' heap chains
// and, when durable, their index structures' chains. The drop path
// hands them to the free list; the open-time sweep treats them as
// referenced.
func (r *RelStore) pages() ([]uint32, error) {
	var out []uint32
	for _, sh := range r.shards {
		p, err := sh.pages()
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	}
	return out, nil
}

func (r *Shard) pages() ([]uint32, error) {
	out, err := r.heap.Pages()
	if err != nil {
		return nil, err
	}
	if r.ridsD != nil {
		p, err := r.ridsD.Pages()
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
		p, err = r.fixedD.Pages()
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	}
	if r.rangeD != nil {
		p, err := r.rangeD.Pages()
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	}
	return out, nil
}

// StatementEnd implements update.BatchSink: the group-commit point. All
// pages the statement dirtied go to the WAL as one batch — merged with
// concurrently committing statements on other relations or shards into
// a single fsync — then through to the data file. Errors are latched
// (see Err) so the engine's rollback path can surface them.
//
// A statement whose write-through already failed mid-stream is NOT
// committed: its half-applied pages stay buffered under the still-open
// transaction (the pool is no-steal, so they cannot leak to disk), the
// engine's rollback then repairs them in place via Replace, and the
// repaired state commits as one batch — a crash anywhere in between
// recovers the pre-statement state, never a mix.
//
// In external-transaction mode (UseTxn) the bracket does not own the
// commit boundary: the statement's pages stay pooled under the
// engine-level transaction until its Commit.
func (r *Shard) StatementEnd() {
	r.mu.Lock()
	txn := r.cur
	failed := r.err != nil || r.ext
	r.mu.Unlock()
	if failed || txn == nil {
		return
	}
	err := r.st.Commit(txn)
	r.mu.Lock()
	if err != nil {
		if r.err == nil {
			r.err = err
		}
	} else {
		r.cur = nil
	}
	r.mu.Unlock()
}

// CommitStatement force-commits the open statement transaction outside
// the maintainer brackets — the engine uses it after resynchronizing
// the heap on a rollback. A no-op when no statement transaction is
// open.
func (r *Shard) CommitStatement() error {
	r.mu.Lock()
	txn := r.cur
	r.mu.Unlock()
	if txn == nil {
		return nil
	}
	if err := r.st.Commit(txn); err != nil {
		return err
	}
	r.mu.Lock()
	r.cur = nil
	r.mu.Unlock()
	return nil
}

// CommitStatement forwards to the classic single shard.
func (r *RelStore) CommitStatement() error { return r.sole().CommitStatement() }

// StatementTxn returns the open statement transaction (nil between
// statements). The engine's rollback path uses it to repair the heap
// within the same atomic batch as the failed statement.
func (r *Shard) StatementTxn() *Txn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// StatementTxn forwards to the classic single shard.
func (r *RelStore) StatementTxn() *Txn { return r.sole().StatementTxn() }

// ResetErr clears the latched write-through failure on every shard.
// Callers must first restore heap↔memory consistency (see Replace);
// the engine's rollback path does exactly that.
func (r *RelStore) ResetErr() {
	for _, sh := range r.shards {
		sh.ResetErr()
	}
}

// ResetErr clears the latched write-through failure.
func (r *Shard) ResetErr() {
	r.mu.Lock()
	r.err = nil
	r.mu.Unlock()
}

func (r *RelStore) setErr(err error) { r.sole().setErr(err) }

func (r *Shard) setErr(err error) {
	r.mu.Lock()
	r.setErrLocked(err)
	r.mu.Unlock()
}

func (r *Shard) setErrLocked(err error) {
	if r.err == nil {
		r.err = err
	}
}

// scanRaw decodes every live record in chain order, reporting rids.
// r.mu is held for the whole walk so readers never observe page bytes
// mid-mutation from a concurrent write-through.
func (r *Shard) scanRaw(ctx context.Context, fn func(rid storage.RID, t tuple.Tuple) bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scanRawLocked(ctx, fn)
}

func (r *Shard) scanRawLocked(ctx context.Context, fn func(rid storage.RID, t tuple.Tuple) bool) error {
	deg := r.def.Schema.Degree()
	var decodeErr error
	err := r.heap.ScanCtx(ctx, func(rid storage.RID, rec []byte) bool {
		t, n, err := encoding.DecodeTuple(rec)
		if err != nil {
			decodeErr = fmt.Errorf("%w: record %v of %q: %v", ErrCorrupt, rid, r.def.Name, err)
			return false
		}
		if n != len(rec) || t.Degree() != deg {
			decodeErr = fmt.Errorf("%w: record %v of %q: malformed tuple record", ErrCorrupt, rid, r.def.Name)
			return false
		}
		return fn(rid, t)
	})
	if err != nil {
		// a cancelled scan is the caller's context speaking, not a
		// malformed file
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			return err
		}
		return fmt.Errorf("%w: scanning %q: %v", ErrCorrupt, r.def.Name, err)
	}
	return decodeErr
}

// scanRaw walks every shard's heap in shard order.
func (r *RelStore) scanRaw(ctx context.Context, fn func(rid storage.RID, t tuple.Tuple) bool) error {
	for _, sh := range r.shards {
		stopped := false
		if err := sh.scanRaw(ctx, func(rid storage.RID, t tuple.Tuple) bool {
			if !fn(rid, t) {
				stopped = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// Scan calls fn for every stored tuple in heap order (shard by shard),
// reading pages through the shared buffer pool. fn returning false
// stops the scan.
func (r *RelStore) Scan(fn func(t tuple.Tuple) bool) error {
	return r.scanRaw(context.Background(), func(_ storage.RID, t tuple.Tuple) bool { return fn(t) })
}

// Scan calls fn for every tuple stored in THIS shard in heap order —
// the engine materializes each shard's resident partition from it.
func (r *Shard) Scan(fn func(t tuple.Tuple) bool) error {
	return r.scanRaw(context.Background(), func(_ storage.RID, t tuple.Tuple) bool { return fn(t) })
}

// Load materializes the stored relation by scanning its heaps. For a
// K-sharded relation the result is the UNION of the shard partitions —
// each shard-canonical, together not necessarily globally canonical;
// the engine re-canonicalizes (see Def().Shards).
func (r *RelStore) Load() (*core.Relation, error) {
	return r.LoadCtx(context.Background())
}

// LoadCtx is Load with cancellation checked at page-fetch granularity:
// a cancelled context stops the heap walk before the next page is
// pulled through the buffer pool.
func (r *RelStore) LoadCtx(ctx context.Context) (*core.Relation, error) {
	rel := core.NewRelation(r.def.Schema)
	if err := r.scanRaw(ctx, func(_ storage.RID, t tuple.Tuple) bool {
		rel.Add(t)
		return true
	}); err != nil {
		return nil, err
	}
	return rel, nil
}

// LookupFixed returns every stored tuple whose fixed (determinant)
// component contains atom a — an index point lookup on the owning
// shard instead of a heap scan.
func (r *RelStore) LookupFixed(a value.Atom) ([]tuple.Tuple, error) {
	return r.ShardFor(a).LookupFixed(a)
}

// LookupFixed returns every tuple in this shard whose fixed component
// contains atom a.
func (r *Shard) LookupFixed(a value.Atom) ([]tuple.Tuple, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rids, err := r.fixed.Get(encoding.AppendAtom(nil, a))
	if err != nil {
		return nil, err
	}
	out := make([]tuple.Tuple, 0, len(rids))
	for _, rid := range rids {
		rec, err := r.heap.Get(rid)
		if err != nil {
			return nil, err
		}
		t, _, err := encoding.DecodeTuple(rec)
		if err != nil {
			return nil, fmt.Errorf("%w: record %v of %q: %v", ErrCorrupt, rid, r.def.Name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// RangeBound is one end of a determinant-atom range predicate, as
// handed to ScanFixedRange. nil stands for "unbounded".
type RangeBound struct {
	Atom value.Atom
	Incl bool
}

// HasRangeIndex reports whether every shard carries a durable B+tree
// range index (false for legacy attachments that predate it or were
// opened without write permission — the planner then falls back to
// heap scans).
func (r *RelStore) HasRangeIndex() bool {
	for _, sh := range r.shards {
		sh.mu.Lock()
		ok := sh.rangeD != nil
		sh.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// ScanFixedRange returns every stored tuple with at least one fixed
// (determinant) atom in the given range, via the B+tree range indexes
// instead of heap scans. Shards partition by HASH of the atom, so a
// range spans all of them: the result unions every shard's scan. The
// page count is the total index pages read (descent + leaf chain),
// the currency of the bench gate. The caller re-applies its full
// predicate: the scan answers "some atom in range", which is a
// superset of any tuple-level predicate over the same component.
func (r *RelStore) ScanFixedRange(lo, hi *RangeBound) ([]tuple.Tuple, int, error) {
	var out []tuple.Tuple
	pages := 0
	for _, sh := range r.shards {
		ts, n, err := sh.ScanFixedRange(lo, hi)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, ts...)
		pages += n
	}
	return out, pages, nil
}

// ScanFixedRange returns every tuple in this shard with a fixed atom
// in the given range, plus the number of index pages the scan read.
func (r *Shard) ScanFixedRange(lo, hi *RangeBound) ([]tuple.Tuple, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rangeD == nil {
		return nil, 0, fmt.Errorf("store: relation %q has no range index", r.def.Name)
	}
	var loKey, hiKey []byte
	loIncl, hiIncl := true, true
	if lo != nil {
		loKey, loIncl = encoding.AppendOrderedAtom(nil, lo.Atom), lo.Incl
	}
	if hi != nil {
		hiKey, hiIncl = encoding.AppendOrderedAtom(nil, hi.Atom), hi.Incl
	}
	// A tuple whose fixed component holds several in-range atoms is hit
	// once per atom; dedup by rid, preserving key order of first hit.
	seen := make(map[storage.RID]bool)
	var rids []storage.RID
	pages, err := r.rangeD.Scan(loKey, loIncl, hiKey, hiIncl, func(_ []byte, rid storage.RID) bool {
		if !seen[rid] {
			seen[rid] = true
			rids = append(rids, rid)
		}
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	out := make([]tuple.Tuple, 0, len(rids))
	for _, rid := range rids {
		rec, err := r.heap.Get(rid)
		if err != nil {
			return nil, 0, err
		}
		t, _, err := encoding.DecodeTuple(rec)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: record %v of %q: %v", ErrCorrupt, rid, r.def.Name, err)
		}
		out = append(out, t)
	}
	return out, pages, nil
}

// SetRangeIndexMaxEntries lowers the B+tree node fan-out (testing
// knob: small trees split early, so split/crash tests stay small). A
// no-op on shards without a range index.
func (r *Shard) SetRangeIndexMaxEntries(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rangeD != nil {
		r.rangeD.SetMaxNodeEntries(n)
	}
}

// IndexPageCounts breaks a relation's durable index footprint down by
// structure, making growth that never shrinks (the hash directory, the
// B+tree inner skeleton) observable instead of silent.
type IndexPageCounts struct {
	// HashDir / HashBuckets cover BOTH hash indexes (primary + fixed):
	// directory chain pages and bucket+overflow pages.
	HashDir     int `json:"hash_dir"`
	HashBuckets int `json:"hash_buckets"`
	// BTreeInner counts the range index's meta + inner pages;
	// BTreeLeaf its leaf pages. Zero when the relation predates the
	// range index.
	BTreeInner int `json:"btree_inner"`
	BTreeLeaf  int `json:"btree_leaf"`
}

// IndexPageCounts sums the per-structure index page counts across
// shards.
func (r *RelStore) IndexPageCounts() (IndexPageCounts, error) {
	var total IndexPageCounts
	for _, sh := range r.shards {
		c, err := sh.IndexPageCounts()
		if err != nil {
			return IndexPageCounts{}, err
		}
		total.HashDir += c.HashDir
		total.HashBuckets += c.HashBuckets
		total.BTreeInner += c.BTreeInner
		total.BTreeLeaf += c.BTreeLeaf
	}
	return total, nil
}

// IndexPageCounts reports this shard's index footprint by structure.
// Zero for legacy in-memory attachments (nothing durable to count).
func (r *Shard) IndexPageCounts() (IndexPageCounts, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var c IndexPageCounts
	if r.ridsD == nil {
		return c, nil
	}
	for _, ix := range []*storage.DiskHashIndex{r.ridsD, r.fixedD} {
		dir, buckets, err := ix.PageCounts()
		if err != nil {
			return IndexPageCounts{}, err
		}
		c.HashDir += dir
		c.HashBuckets += buckets
	}
	if r.rangeD != nil {
		inner, leaf, err := r.rangeD.PageCounts()
		if err != nil {
			return IndexPageCounts{}, err
		}
		c.BTreeInner += inner
		c.BTreeLeaf += leaf
	}
	return c, nil
}

// HeapStats reports the heap occupancy of this relation, summed across
// shards.
func (r *RelStore) HeapStats() (storage.HeapStats, error) {
	var total storage.HeapStats
	for _, sh := range r.shards {
		sh.mu.Lock()
		st, err := sh.heap.Stats()
		sh.mu.Unlock()
		if err != nil {
			return storage.HeapStats{}, err
		}
		total.Pages += st.Pages
		total.LiveRecords += st.LiveRecords
		total.LiveBytes += st.LiveBytes
		total.FreeBytes += st.FreeBytes
	}
	return total, nil
}

// Replace atomically (with respect to this process) swaps the stored
// content for the given relation under txn: every live record is
// tombstoned, the indexes are reset, and rel's tuples are inserted
// fresh. Used by the engine when the stored form has drifted from the
// canonical form it maintains. rel is the GLOBAL canonical relation;
// sharded layouts re-partition it (a global tuple's fixed atoms can
// span shards, so it is expanded and each partition re-canonicalized).
func (r *RelStore) Replace(txn *Txn, rel *core.Relation) error {
	for _, sh := range r.shards {
		if err := sh.clear(txn); err != nil {
			return err
		}
	}
	return r.Fill(txn, rel)
}

// Fill inserts rel's content into empty shards under txn, partitioning
// by determinant atom and re-canonicalizing each partition for sharded
// layouts. The paged Save path and Replace use it.
func (r *RelStore) Fill(txn *Txn, rel *core.Relation) error {
	if len(r.shards) == 1 {
		sh := r.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		for i := 0; i < rel.Len(); i++ {
			if err := sh.insertLocked(txn, rel.Tuple(i)); err != nil {
				return err
			}
		}
		return nil
	}
	parts := PartitionCanonical(rel, r.def.Order, len(r.shards))
	for ord, part := range parts {
		sh := r.shards[ord]
		sh.mu.Lock()
		for i := 0; i < part.Len(); i++ {
			if err := sh.insertLocked(txn, part.Tuple(i)); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// PartitionCanonical splits a relation into K shard-canonical
// relations: its expansion is routed flat-by-flat via ShardOfAtom of
// the determinant (order[len-1]) and each partition is re-canonicalized
// with the Section-4 nest order. The union of the partitions' expansions
// equals the input's expansion.
func PartitionCanonical(rel *core.Relation, order []int, k int) []*core.Relation {
	fixedAt := order[len(order)-1]
	buckets := make([]*core.Relation, k)
	for i := range buckets {
		buckets[i] = core.NewRelation(rel.Schema())
	}
	for _, f := range rel.Expand() {
		buckets[ShardOfAtom(f[fixedAt], k)].Add(tuple.FromFlat(f))
	}
	out := make([]*core.Relation, k)
	for i, b := range buckets {
		canon, _ := b.CanonicalFromFlats(order)
		out[i] = canon
	}
	return out
}

// Replace swaps this shard's content for the given SHARD-canonical
// relation under txn (every fixed atom must route to this shard).
func (r *Shard) Replace(txn *Txn, rel *core.Relation) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.clearLocked(txn); err != nil {
		return err
	}
	for i := 0; i < rel.Len(); i++ {
		if err := r.insertLocked(txn, rel.Tuple(i)); err != nil {
			return err
		}
	}
	return nil
}

func (r *Shard) clear(txn *Txn) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clearLocked(txn)
}

// clearLocked tombstones every live record and resets the indexes; the
// pages a durable index sheds go to the free list under the same
// transaction.
func (r *Shard) clearLocked(txn *Txn) error {
	var rids []storage.RID
	if err := r.heap.Scan(func(rid storage.RID, _ []byte) bool {
		rids = append(rids, rid)
		return true
	}); err != nil {
		return err
	}
	for _, rid := range rids {
		if err := r.heap.Delete(txn, rid); err != nil {
			return err
		}
	}
	if r.ridsD != nil {
		released, err := r.ridsD.Clear(txn)
		if err != nil {
			return err
		}
		rel2, err := r.fixedD.Clear(txn)
		if err != nil {
			return err
		}
		released = append(released, rel2...)
		if r.rangeD != nil {
			rel3, err := r.rangeD.Clear(txn)
			if err != nil {
				return err
			}
			released = append(released, rel3...)
		}
		if len(released) > 0 {
			if err := r.st.freePages(txn, released); err != nil {
				return err
			}
		}
	} else {
		r.rids = memIndex{storage.NewHashIndex()}
		r.fixed = memIndex{storage.NewHashIndex()}
	}
	r.count = 0
	return nil
}
