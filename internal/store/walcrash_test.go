package store

import (
	"fmt"
	"io"
	"io/fs"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/workload"
)

// This file is the crash-injection harness for the recovery protocol
// (docs/recovery.md): the whole database lives in an in-memory
// filesystem that journals every write, and the harness re-creates the
// on-disk state a crash would leave at EVERY byte offset of the journal
// — torn log tails, torn data pages, and lost unsynced writes — then
// reopens and asserts the canonical form is exactly a statement
// boundary, never a mix, the durable indexes answer identically to the
// heap-rebuilt oracle, and every page the recovered state references
// is checksum-valid.

// memOp is one journaled mutation.
type memOp struct {
	name string
	kind byte // 'w' write, 't' truncate, 's' sync
	off  int64
	data []byte
	size int64 // truncate target
}

// cost is the op's share of the byte-offset enumeration: every byte of
// a write is an injection point; truncates count as one point.
func (op memOp) cost() int64 {
	switch op.kind {
	case 'w':
		return int64(len(op.data))
	case 't':
		return 1
	default:
		return 0
	}
}

// memFS is an in-memory filesystem implementing the store's OpenFile
// hook, with a journal of all mutations while recording. syncHook, when
// set, runs at the start of every Sync (outside the lock) — the
// merged-commit crash test uses it to gate a leader's fsync while
// followers pile into the commit queue.
type memFS struct {
	mu        sync.Mutex
	files     map[string][]byte
	journal   []memOp
	recording bool
	syncHook  func(name string)
	failSyncs int // >0: the next N Syncs fail (injected commit errors)
}

func newMemFS() *memFS { return &memFS{files: map[string][]byte{}} }

func (m *memFS) open(name string, create bool) (storage.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		if !create {
			return nil, fmt.Errorf("memfs: open %s: %w", name, fs.ErrNotExist)
		}
		m.files[name] = nil
	}
	return &memFile{fs: m, name: name}, nil
}

func (m *memFS) remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fs.ErrNotExist
	}
	delete(m.files, name)
	return nil
}

func (m *memFS) record(op memOp) {
	if m.recording {
		m.journal = append(m.journal, op)
	}
}

// snapshot deep-copies the current file contents.
func (m *memFS) snapshot() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.files))
	for n, b := range m.files {
		out[n] = append([]byte(nil), b...)
	}
	return out
}

func (m *memFS) startRecording() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recording = true
	m.journal = nil
}

func (m *memFS) stopRecording() []memOp {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recording = false
	return m.journal
}

type memFile struct {
	fs   *memFS
	name string
}

func (f *memFile) buf() []byte { return f.fs.files[f.name] }

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	b := f.buf()
	if off >= int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	applyWrite(f.fs.files, f.name, off, p)
	f.fs.record(memOp{name: f.name, kind: 'w', off: off, data: append([]byte(nil), p...)})
	return len(p), nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	applyTruncate(f.fs.files, f.name, size)
	f.fs.record(memOp{name: f.name, kind: 't', size: size})
	return nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	hook := f.fs.syncHook
	f.fs.mu.Unlock()
	if hook != nil {
		hook(f.name)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.failSyncs > 0 {
		f.fs.failSyncs--
		return fmt.Errorf("memfs: injected sync failure on %s", f.name)
	}
	f.fs.record(memOp{name: f.name, kind: 's'})
	return nil
}

func (f *memFile) Close() error { return nil }

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.buf())), nil
}

func applyWrite(files map[string][]byte, name string, off int64, p []byte) {
	b := files[name]
	if need := off + int64(len(p)); need > int64(len(b)) {
		nb := make([]byte, need)
		copy(nb, b)
		b = nb
	}
	copy(b[off:], p)
	files[name] = b
}

func applyTruncate(files map[string][]byte, name string, size int64) {
	b := files[name]
	if size <= int64(len(b)) {
		files[name] = b[:size]
	} else {
		nb := make([]byte, size)
		copy(nb, b)
		files[name] = nb
	}
}

// crashState materializes the durable state a crash at byte offset k of
// the journal would leave.
//
// inorder mode applies the journal's ops in order up to k, tearing the
// op containing k mid-way: the torn-tail families (log tail cut inside
// a record; data page cut inside a page write).
//
// reordered mode models the OS persisting nothing since the last fsync
// except the torn op itself: ops up to the last 's' barrier before k
// apply, everything after is dropped, and only the prefix of the op
// containing k lands. This is the "both torn" family — e.g. a
// committed statement's data-file writes all lost while the next
// statement's log append tore.
func crashState(base map[string][]byte, journal []memOp, k int64, reordered bool) map[string][]byte {
	files := make(map[string][]byte, len(base))
	for n, b := range base {
		files[n] = append([]byte(nil), b...)
	}
	apply := func(op memOp, upto int64) {
		switch op.kind {
		case 'w':
			if upto > int64(len(op.data)) {
				upto = int64(len(op.data))
			}
			applyWrite(files, op.name, op.off, op.data[:upto])
		case 't':
			if upto > 0 {
				applyTruncate(files, op.name, op.size)
			}
		}
	}
	if !reordered {
		at := int64(0)
		for _, op := range journal {
			c := op.cost()
			if at+c <= k {
				apply(op, c)
				at += c
				continue
			}
			apply(op, k-at)
			break
		}
		return files
	}
	// find the op containing k and the last sync barrier before it
	at := int64(0)
	tornIdx, tornBytes := -1, int64(0)
	for i, op := range journal {
		c := op.cost()
		if at+c > k {
			tornIdx, tornBytes = i, k-at
			break
		}
		at += c
	}
	if tornIdx == -1 {
		tornIdx = len(journal)
	}
	lastSync := 0
	for i := 0; i < tornIdx; i++ {
		if journal[i].kind == 's' {
			lastSync = i + 1
		}
	}
	for i := 0; i < lastSync; i++ {
		apply(journal[i], journal[i].cost())
	}
	if tornIdx < len(journal) {
		apply(journal[tornIdx], tornBytes)
	}
	return files
}

// loadStateErr opens the database in the given filesystem state and
// returns the canonical form of every named relation. Opening runs
// recovery; it must never fail, must leave every data page
// checksum-valid, and the recovered durable indexes must answer
// identically to the rebuilt-from-heap oracle.
func loadStateErr(files map[string][]byte, label string, names ...string) (map[string]*core.Relation, error) {
	fs := &memFS{files: files}
	st, err := Open("db", Options{PoolPages: 8, OpenFile: fs.open, RemoveFile: fs.remove, CheckpointBytes: -1})
	if err != nil {
		return nil, fmt.Errorf("%s: recovery failed: %v", label, err)
	}
	defer st.Discard()
	out := make(map[string]*core.Relation, len(names))
	for _, name := range names {
		rs, ok := st.Rel(name)
		if !ok {
			return nil, fmt.Errorf("%s: relation %s lost", label, name)
		}
		rel, err := rs.Load()
		if err != nil {
			return nil, fmt.Errorf("%s: load of %s failed: %v", label, name, err)
		}
		out[name] = rel
	}
	// the durable index must be exactly a view of the recovered heap
	if err := st.VerifyIndexes(); err != nil {
		return nil, fmt.Errorf("%s: index diverged from heap oracle: %v", label, err)
	}
	// every page the recovered state references is checksum-valid.
	// Unreferenced pages are exempt: a crash can strand an uncommitted
	// allocation's page torn or zeroed (nothing ordered its write), and
	// such orphans are never read — the sweep quarantines them and
	// NewPage re-initializes them before reuse.
	ref, err := st.ReferencedPages()
	if err != nil {
		return nil, fmt.Errorf("%s: walking recovered chains: %v", label, err)
	}
	data := fs.files["db"]
	if len(data)%storage.PageSize != 0 {
		return nil, fmt.Errorf("%s: recovered file size %d ragged", label, len(data))
	}
	var p storage.Page
	for pid := 0; pid < len(data)/storage.PageSize; pid++ {
		if !ref[uint32(pid+1)] {
			continue
		}
		copy(p[:], data[pid*storage.PageSize:])
		if err := p.VerifyChecksum(); err != nil {
			return nil, fmt.Errorf("%s: page %d of recovered file: %v", label, pid+1, err)
		}
	}
	return out, nil
}

// loadState is loadStateErr for serial callers, failing the test on
// any error.
func loadState(t *testing.T, files map[string][]byte, label string, names ...string) map[string]*core.Relation {
	t.Helper()
	out, err := loadStateErr(files, label, names...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// loadCanon is loadState for the single relation R1.
func loadCanon(t *testing.T, files map[string][]byte, label string) *core.Relation {
	t.Helper()
	return loadState(t, files, label, "R1")["R1"]
}

// forEachOffset fans the per-offset crash checks out across CPUs: each
// offset's crash state and recovery are fully independent, and the
// journals grew with the index pages now riding every batch, so the
// every-byte harnesses are parallel to stay fast. check runs for every
// k in [0, total] in both replay modes and returns an error to fail
// the test. Under -short (CI's repeated -race job, which is after
// schedule-dependent races, not offset coverage) the offsets are
// strided; the default run covers every byte.
func forEachOffset(t *testing.T, total int64, check func(k int64, reordered bool) error) {
	t.Helper()
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	workers := runtime.GOMAXPROCS(0)
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := (next.Add(1) - 1) * stride
				if k > total || failed.Load() != 0 {
					return
				}
				for _, reordered := range []bool{false, true} {
					if err := check(k, reordered); err != nil {
						if failed.CompareAndSwap(0, 1) {
							errs <- err
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCrashRecoveryEveryOffset is the acceptance harness: two
// statements are journaled, a crash is injected at every byte offset of
// the journal in both replay modes, and every reopen must recover a
// checksum-valid file whose canonical form is exactly the pre-, mid-,
// or post-statement state.
func TestCrashRecoveryEveryOffset(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 8, OpenFile: fs.open, RemoveFile: fs.remove, CheckpointBytes: -1}
	def := testDef(t)

	// base: a small multi-page database, cleanly closed
	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	setup := st.Begin()
	if _, err := st.CreateRelation(setup, def); err != nil {
		t.Fatal(err)
	}
	e := workload.GenEnrollment(5, workload.EnrollmentParams{
		Students: 12, CoursePool: 8, ClubPool: 4, SemesterPool: 3,
		CoursesPerStudent: 3, ClubsPerStudent: 2,
	})
	canon, _ := e.R1.Canonical(def.Order)
	rs, _ := st.Rel(def.Name)
	for i := 0; i < canon.Len(); i++ {
		if err := rs.Insert(setup, canon.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	// a few fat padding tuples push the heap across several pages so the
	// statements below dirty (and the crashes tear) more than one page,
	// while keeping the per-reopen index rebuild cheap (the harness
	// reopens the database tens of thousands of times)
	pad := make([]byte, 700)
	for i := range pad {
		pad[i] = 'p'
	}
	for i := 0; i < 7; i++ {
		tp := tupleOf([][]string{
			{fmt.Sprintf("%s-%d", pad, i)}, {"padclub"}, {fmt.Sprintf("pads%d", i)},
		}, def.Order)
		if err := rs.Insert(setup, tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(setup); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	base := fs.snapshot()
	if _, ok := base["db.wal"]; ok {
		t.Fatal("clean close left a WAL sidecar")
	}

	// journal two statements against the reopened database
	st2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	rs2, _ := st2.Rel(def.Name)
	pre, err := rs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	fs.startRecording()
	// statement 1: a mixed add/remove batch dirtying several pages
	// (victims from both ends of the heap chain), one transaction, one
	// group commit
	stmt1 := st2.Begin()
	for _, victim := range []int{0, pre.Len() - 1} {
		if err := rs2.Remove(stmt1, pre.Tuple(victim)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs2.Insert(stmt1, tupleOf([][]string{{"zc1", "zc2"}, {"zb1"}, {"zs1"}}, def.Order)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Commit(stmt1); err != nil {
		t.Fatal(err)
	}
	mark1 := int64(0)
	for _, op := range fs.journal {
		mark1 += op.cost()
	}
	mid, err := rs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	// statement 2: another add/remove batch
	stmt2 := st2.Begin()
	if err := rs2.Insert(stmt2, tupleOf([][]string{{"zc3"}, {"zb2", "zb3"}, {"zs2"}}, def.Order)); err != nil {
		t.Fatal(err)
	}
	if err := rs2.Remove(stmt2, mid.Tuple(1)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Commit(stmt2); err != nil {
		t.Fatal(err)
	}
	post, err := rs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	journal := fs.stopRecording()
	st2.Discard() // crash: no checkpoint, no close-time flush

	if pre.Equal(mid) || mid.Equal(post) || pre.Equal(post) {
		t.Fatal("statements must produce three distinct states")
	}
	total := int64(0)
	for _, op := range journal {
		total += op.cost()
	}
	if total < 2*storage.PageSize {
		t.Fatalf("journal too small (%d bytes) to exercise torn pages", total)
	}
	t.Logf("journal: %d ops, %d bytes (statement boundary at %d)", len(journal), total, mark1)

	matches := func(rel *core.Relation, allowed ...*core.Relation) bool {
		for _, a := range allowed {
			if rel.Equal(a) {
				return true
			}
		}
		return false
	}
	forEachOffset(t, total, func(k int64, reordered bool) error {
		label := fmt.Sprintf("k=%d reordered=%v", k, reordered)
		state, err := loadStateErr(crashState(base, journal, k, reordered), label, "R1")
		if err != nil {
			return err
		}
		got := state["R1"]
		// never a mix: only complete statement states are legal, and
		// a crash before the second statement's journal region can
		// never yield its outcome
		if k <= mark1 {
			if !matches(got, pre, mid) {
				return fmt.Errorf("%s: recovered state is not pre or mid statement state", label)
			}
		} else if !matches(got, pre, mid, post) {
			return fmt.Errorf("%s: recovered state is not a statement boundary", label)
		}
		return nil
	})
}

// TestCrashRecoveryAcrossCheckpoints: with an aggressive auto-checkpoint
// threshold the journal interleaves commits, data syncs, and log
// truncations; a crash at every op boundary must still recover a
// statement-boundary state (the post-checkpoint batches carry
// continuing sequence numbers — a regression here dropped them all).
func TestCrashRecoveryAcrossCheckpoints(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 8, OpenFile: fs.open, RemoveFile: fs.remove, CheckpointBytes: 1}
	def := testDef(t)
	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	setup := st.Begin()
	if _, err := st.CreateRelation(setup, def); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(setup); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	base := fs.snapshot()

	st2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	rs2, _ := st2.Rel(def.Name)
	fs.startRecording()
	states := []*core.Relation{}
	rel, err := rs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	states = append(states, rel)
	for i := 0; i < 4; i++ {
		tp := tupleOf([][]string{
			{fmt.Sprintf("c%d", i)}, {fmt.Sprintf("b%d", i)}, {fmt.Sprintf("s%d", i)},
		}, def.Order)
		stmt := st2.Begin()
		if err := rs2.Insert(stmt, tp); err != nil {
			t.Fatal(err)
		}
		if err := st2.Commit(stmt); err != nil { // checkpoints every time (threshold 1)
			t.Fatal(err)
		}
		rel, err := rs2.Load()
		if err != nil {
			t.Fatal(err)
		}
		states = append(states, rel)
	}
	journal := fs.stopRecording()
	st2.Discard()

	// crash at every op boundary (and mid-op at a stride) in both modes
	total := int64(0)
	for _, op := range journal {
		total += op.cost()
	}
	boundaries := map[int64]bool{0: true, total: true}
	at := int64(0)
	for _, op := range journal {
		at += op.cost()
		boundaries[at] = true
	}
	for k := int64(0); k <= total; k += 97 {
		boundaries[k] = true
	}
	for k := range boundaries {
		for _, reordered := range []bool{false, true} {
			label := fmt.Sprintf("ckpt k=%d reordered=%v", k, reordered)
			got := loadCanon(t, crashState(base, journal, k, reordered), label)
			ok := false
			for _, s := range states {
				if got.Equal(s) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("%s: recovered state is not a statement boundary", label)
			}
		}
	}
}

// TestRaggedTailWithEmptyWAL: a torn extension write can land after a
// checkpoint emptied (or a clean close removed) the log — e.g. the
// first statement to grow the heap tears its Pager.Allocate write. The
// ragged tail is provably uncommitted, so reopen must round the file
// down and succeed rather than brick the database (a regression here
// made such files permanently unopenable).
func TestRaggedTailWithEmptyWAL(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 8, OpenFile: fs.open, RemoveFile: fs.remove}
	def := testDef(t)
	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	want := tupleOf([][]string{{"c1"}, {"b1"}, {"s1"}}, def.Order)
	if err := rs.Insert(txn, want); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// torn extension: a partial page appended past the committed end
	fs.files["db"] = append(fs.files["db"], make([]byte, 1234)...)
	st2, err := Open("db", opts)
	if err != nil {
		t.Fatalf("ragged tail with empty WAL bricked the database: %v", err)
	}
	defer st2.Close()
	rs2, ok := st2.Rel(def.Name)
	if !ok {
		t.Fatal("relation lost")
	}
	rel, err := rs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || !rel.Tuple(0).Equal(want) {
		t.Fatal("content lost rounding off the torn tail")
	}
	// a file cut below one page still refuses (nothing to validate)
	fs2 := newMemFS()
	fs2.files["db"] = append([]byte(nil), fs.files["db"][:100]...)
	if _, err := Open("db", Options{PoolPages: 8, OpenFile: fs2.open, RemoveFile: fs2.remove}); err == nil {
		t.Fatal("sub-page file reopened without error")
	}
}

// TestStatementEndSkipsCommitOnLatchedError: a statement whose
// write-through failed mid-stream must NOT group-commit its
// half-applied pages — they stay buffered until the engine's rollback
// repairs and commits them, so no crash can recover a mixed state.
func TestStatementEndSkipsCommitOnLatchedError(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 8, OpenFile: fs.open, RemoveFile: fs.remove}
	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	def := testDef(t)
	ctxn := st.Begin()
	rs, err := st.CreateRelation(ctxn, def)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(ctxn); err != nil {
		t.Fatal(err)
	}
	before := st.WALStats().Batches
	rs.StatementBegin()
	rs.TupleAdded(tupleOf([][]string{{"c1"}, {"b1"}, {"s1"}}, def.Order))
	rs.setErr(fmt.Errorf("injected mid-statement failure"))
	rs.StatementEnd()
	if got := st.WALStats().Batches; got != before {
		t.Fatalf("StatementEnd committed a failed statement: %d batches, want %d", got, before)
	}
	// after the engine-style repair (ResetErr + explicit commit of the
	// still-open statement transaction) the buffered pages commit as
	// one batch
	rs.ResetErr()
	if err := rs.CommitStatement(); err != nil {
		t.Fatal(err)
	}
	if got := st.WALStats().Batches; got != before+1 {
		t.Fatalf("repaired statement did not commit: %d batches", got)
	}
}

// TestDropRelationReclaimsPages: dropping a relation pushes its chain
// onto the free list and a subsequent relation reuses those pages
// instead of growing the file.
func TestDropRelationReclaimsPages(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 8, OpenFile: fs.open, RemoveFile: fs.remove}
	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	e := workload.GenEnrollment(7, workload.EnrollmentParams{
		Students: 60, CoursePool: 20, ClubPool: 6, SemesterPool: 3,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	canon, _ := e.R1.Canonical(def.Order)
	for i := 0; i < canon.Len(); i++ {
		if err := rs.Insert(txn, canon.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	pages := st.NumPages()
	drop := st.Begin()
	if err := st.DropRelation(drop, def.Name); err != nil {
		t.Fatal(err)
	}
	if st.FreePages() == 0 {
		t.Fatal("drop reclaimed no pages")
	}
	if err := st.Commit(drop); err != nil {
		t.Fatal(err)
	}
	st.CompleteDrop(def.Name)
	freed := st.FreePages()

	// free list survives reopen
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.FreePages(); got != freed {
		t.Fatalf("free list lost across reopen: %d != %d", got, freed)
	}

	// a new relation of the same size reuses the freed pages: the file
	// barely grows
	def2 := def
	def2.Name = "R2"
	txn2 := st2.Begin()
	rs2, err := st2.CreateRelation(txn2, def2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < canon.Len(); i++ {
		if err := rs2.Insert(txn2, canon.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st2.Commit(txn2); err != nil {
		t.Fatal(err)
	}
	if grown := st2.NumPages() - pages; grown > 2 {
		t.Fatalf("file grew %d pages despite %d free pages", grown, freed)
	}
	got, err := rs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(canon) {
		t.Fatal("relation on recycled pages diverged")
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenStatsBucketedSeparately: the I/O spent by Open (recovery,
// catalog load, index rebuild) must not pollute the steady-state pool
// counters the bench reports.
func TestOpenStatsBucketedSeparately(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 8, OpenFile: fs.open, RemoveFile: fs.remove}
	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	txn := st.Begin()
	rs, _ := st.CreateRelation(txn, def)
	e := workload.GenEnrollment(5, workload.EnrollmentParams{
		Students: 30, CoursePool: 10, ClubPool: 4, SemesterPool: 3,
		CoursesPerStudent: 3, ClubsPerStudent: 2,
	})
	canon, _ := e.R1.Canonical(def.Order)
	for i := 0; i < canon.Len(); i++ {
		if err := rs.Insert(txn, canon.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	open := st2.OpenIOStats()
	if open.Misses == 0 {
		t.Fatal("open-phase bucket recorded no I/O despite an index rebuild")
	}
	if h, m, _ := st2.PoolStats(); h != 0 || m != 0 {
		t.Fatalf("steady-state counters polluted by open: hits=%d misses=%d", h, m)
	}
	rs2, _ := st2.Rel(def.Name)
	if _, err := rs2.Load(); err != nil {
		t.Fatal(err)
	}
	if h, m, _ := st2.PoolStats(); h+m == 0 {
		t.Fatal("steady-state counters did not move after a scan")
	}
}

// TestCrashRecoveryMergedCommit crashes inside a MERGED commit batch:
// transaction T1's fsync is gated while T2 and T3 pile into the commit
// queue, so T2+T3 become one WAL write and one fsync. A crash at every
// byte offset of the journal must recover a prefix of the commit order
// (T2's batch precedes T3's inside the merged write) — always whole
// transactions, never a mix.
func TestCrashRecoveryMergedCommit(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 16, OpenFile: fs.open, RemoveFile: fs.remove, CheckpointBytes: -1}

	// base: three one-tuple relations, cleanly closed
	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"R1", "R2", "R3"}
	setup := st.Begin()
	for i, name := range names {
		def := testDef(t)
		def.Name = name
		rs, err := st.CreateRelation(setup, def)
		if err != nil {
			t.Fatal(err)
		}
		tp := tupleOf([][]string{
			{fmt.Sprintf("c%d", i)}, {fmt.Sprintf("b%d", i)}, {fmt.Sprintf("s%d", i)},
		}, def.Order)
		if err := rs.Insert(setup, tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(setup); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	base := fs.snapshot()

	st2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	order := testDef(t).Order
	relOf := func(name string) *RelStore {
		rs, ok := st2.Rel(name)
		if !ok {
			t.Fatalf("relation %s missing", name)
		}
		return rs
	}
	snap := func() map[string]*core.Relation {
		out := map[string]*core.Relation{}
		for _, name := range names {
			rel, err := relOf(name).Load()
			if err != nil {
				t.Fatal(err)
			}
			out[name] = rel
		}
		return out
	}
	s0 := snap()

	// gate the first WAL fsync (T1's) until told to proceed
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	fs.syncHook = func(string) {
		once.Do(func() {
			close(entered)
			<-gate
		})
	}

	fs.startRecording()
	errs := make(chan error, 3)
	t1 := st2.Begin()
	if err := relOf("R1").Insert(t1, tupleOf([][]string{{"x1"}, {"y1"}, {"z1"}}, order)); err != nil {
		t.Fatal(err)
	}
	go func() { errs <- st2.Commit(t1) }()
	<-entered // T1's leader is inside its fsync, holding the commit lock

	t2 := st2.Begin()
	if err := relOf("R2").Insert(t2, tupleOf([][]string{{"x2"}, {"y2"}, {"z2"}}, order)); err != nil {
		t.Fatal(err)
	}
	go func() { errs <- st2.Commit(t2) }()
	waitPending := func(n int) {
		t.Helper()
		for i := 0; i < 10000; i++ {
			if st2.bp.PendingCommits() == n {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
		t.Fatalf("commit queue never reached %d", n)
	}
	waitPending(1)
	t3 := st2.Begin()
	if err := relOf("R3").Insert(t3, tupleOf([][]string{{"x3"}, {"y3"}, {"z3"}}, order)); err != nil {
		t.Fatal(err)
	}
	go func() { errs <- st2.Commit(t3) }()
	waitPending(2)
	close(gate) // release T1; the next leader drains T2+T3 as one group
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	fs.syncHook = nil
	journal := fs.stopRecording()

	ws := st2.WALStats()
	if ws.Batches != 3 || ws.Fsyncs != 2 || ws.MaxGroupBatches < 2 {
		t.Fatalf("commit did not merge: %d batches / %d fsyncs / max group %d",
			ws.Batches, ws.Fsyncs, ws.MaxGroupBatches)
	}

	// expected recovery states: the chain of whole-transaction prefixes
	s1 := snap() // T1+T2+T3 applied in memory — derive intermediate states below
	st2.Discard()
	// s0 = base; sA = +T1; sB = +T1+T2; s1 = +T1+T2+T3
	add := func(m map[string]*core.Relation, name, c, b, s string) map[string]*core.Relation {
		out := map[string]*core.Relation{}
		for k, v := range m {
			out[k] = v
		}
		rel := core.NewRelation(out[name].Schema())
		for i := 0; i < out[name].Len(); i++ {
			rel.Add(out[name].Tuple(i))
		}
		rel.Add(tupleOf([][]string{{c}, {b}, {s}}, order))
		out[name] = rel
		return out
	}
	sA := add(s0, "R1", "x1", "y1", "z1")
	sB := add(sA, "R2", "x2", "y2", "z2")
	sC := add(sB, "R3", "x3", "y3", "z3")
	for _, name := range names {
		if !sC[name].Equal(s1[name]) {
			t.Fatalf("derived final state of %s diverges from live state", name)
		}
	}
	chain := []map[string]*core.Relation{s0, sA, sB, sC}

	total := int64(0)
	for _, op := range journal {
		total += op.cost()
	}
	t.Logf("merged-commit journal: %d ops, %d bytes", len(journal), total)
	matches := func(got, want map[string]*core.Relation) bool {
		for _, name := range names {
			if !got[name].Equal(want[name]) {
				return false
			}
		}
		return true
	}
	forEachOffset(t, total, func(k int64, reordered bool) error {
		label := fmt.Sprintf("merged k=%d reordered=%v", k, reordered)
		got, err := loadStateErr(crashState(base, journal, k, reordered), label, names...)
		if err != nil {
			return err
		}
		for _, want := range chain {
			if matches(got, want) {
				return nil
			}
		}
		return fmt.Errorf("%s: recovered state is not a whole-transaction prefix", label)
	})
}

// TestFailedCommitDoesNotWedge: a commit whose fsync fails must be
// recoverable — AbortCreate/Rollback release the failed transaction's
// page ownership, so later transactions (which claim the same catalog
// and free-list pages) proceed instead of blocking forever, and the
// store's in-memory state matches the durable state.
func TestFailedCommitDoesNotWedge(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 8, OpenFile: fs.open, RemoveFile: fs.remove, CheckpointBytes: -1}
	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	def := testDef(t)
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Insert(txn, tupleOf([][]string{{"c1"}, {"b1"}, {"s1"}}, def.Order)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}

	// failed CREATE: commit error, abort, then the same create succeeds
	fs.mu.Lock()
	fs.failSyncs = 1
	fs.mu.Unlock()
	def2 := def
	def2.Name = "R2"
	ctxn := st.Begin()
	if _, err := st.CreateRelation(ctxn, def2); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(ctxn); err == nil {
		t.Fatal("injected sync failure did not surface")
	}
	if err := st.AbortCreate(ctxn, def2.Name); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		retry := st.Begin()
		rs2, err := st.CreateRelation(retry, def2)
		if err == nil {
			err = rs2.Insert(retry, tupleOf([][]string{{"c2"}, {"b2"}, {"s2"}}, def.Order))
		}
		if err == nil {
			err = st.Commit(retry)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("create after aborted create failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("create after aborted create blocked — catalog page ownership wedged")
	}

	// failed DROP: commit error, rollback, relation stays fully usable
	fs.mu.Lock()
	fs.failSyncs = 1
	fs.mu.Unlock()
	dtxn := st.Begin()
	if err := st.DropRelation(dtxn, def.Name); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(dtxn); err == nil {
		t.Fatal("injected sync failure did not surface on drop")
	}
	if err := st.Rollback(dtxn); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Rel(def.Name); !ok {
		t.Fatal("relation vanished after rolled-back drop")
	}
	wtxn := st.Begin()
	if err := rs.Insert(wtxn, tupleOf([][]string{{"c3"}, {"b3"}, {"s3"}}, def.Order)); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(wtxn); err != nil {
		t.Fatalf("write after rolled-back drop failed: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// durable state: R1 (2 tuples) and R2 (1 tuple) both present
	st2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r1, ok := st2.Rel("R1")
	if !ok || r1.Len() != 2 {
		t.Fatalf("R1 wrong after reopen: ok=%v len=%d", ok, r1.Len())
	}
	r2, ok := st2.Rel("R2")
	if !ok || r2.Len() != 1 {
		t.Fatalf("R2 wrong after reopen: ok=%v", ok)
	}
}

// TestCrashRecoveryIndexSplit is the index-page acceptance harness: a
// transaction inserts enough tuples to SPLIT index buckets (forced via
// the split-threshold knob so the journal stays small), so the injected
// crashes land inside index-page WAL images, directory appends, and
// redistributed bucket writes. Recovery at every byte offset must yield
// a checksum-valid file whose durable index passes the heap-scan oracle
// (loadStateErr checks it) at a transaction boundary.
func TestCrashRecoveryIndexSplit(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 16, OpenFile: fs.open, RemoveFile: fs.remove, CheckpointBytes: -1}
	def := testDef(t)

	// base: a handful of committed tuples, cleanly closed
	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	setup := st.Begin()
	rs, err := st.CreateRelation(setup, def)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tp := tupleOf([][]string{
			{fmt.Sprintf("c%d", i)}, {fmt.Sprintf("b%d", i)}, {fmt.Sprintf("s%d", i)},
		}, def.Order)
		if err := rs.Insert(setup, tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(setup); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	base := fs.snapshot()

	st2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	rs2, _ := st2.Rel(def.Name)
	// cap bucket capacity so the next few inserts overflow and split;
	// the durable structure stays self-describing, so the recovery
	// opens below need no knob
	rs2.shards[0].ridsD.SetMaxBucketEntries(2)
	rs2.shards[0].fixedD.SetMaxBucketEntries(2)
	ridsBuckets, fixedBuckets := rs2.shards[0].ridsD.Buckets(), rs2.shards[0].fixedD.Buckets()
	pre, err := rs2.Load()
	if err != nil {
		t.Fatal(err)
	}

	fs.startRecording()
	txn := st2.Begin()
	for i := 0; i < 5; i++ {
		tp := tupleOf([][]string{
			{fmt.Sprintf("xc%d", i)}, {fmt.Sprintf("xb%d", i)}, {fmt.Sprintf("xs%d", i)},
		}, def.Order)
		if err := rs2.Insert(txn, tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st2.Commit(txn); err != nil {
		t.Fatal(err)
	}
	journal := fs.stopRecording()
	if rs2.shards[0].ridsD.Buckets() <= ridsBuckets && rs2.shards[0].fixedD.Buckets() <= fixedBuckets {
		t.Fatalf("journaled transaction split no buckets (rids %d→%d, fixed %d→%d); harness is vacuous",
			ridsBuckets, rs2.shards[0].ridsD.Buckets(), fixedBuckets, rs2.shards[0].fixedD.Buckets())
	}
	post, err := rs2.Load()
	if err != nil {
		t.Fatal(err)
	}
	st2.Discard() // crash: no checkpoint, no close-time flush
	if pre.Equal(post) {
		t.Fatal("transaction changed nothing")
	}

	total := int64(0)
	for _, op := range journal {
		total += op.cost()
	}
	if total < 3*storage.PageSize {
		t.Fatalf("journal too small (%d bytes) to tear split pages", total)
	}
	t.Logf("index-split journal: %d ops, %d bytes", len(journal), total)
	forEachOffset(t, total, func(k int64, reordered bool) error {
		label := fmt.Sprintf("split k=%d reordered=%v", k, reordered)
		state, err := loadStateErr(crashState(base, journal, k, reordered), label, "R1")
		if err != nil {
			return err
		}
		if got := state["R1"]; !got.Equal(pre) && !got.Equal(post) {
			return fmt.Errorf("%s: recovered state is not a transaction boundary", label)
		}
		return nil
	})
}

// TestCrashRecoveryDeltaAcrossCheckpoint sweeps the delta-record era:
// the journal holds four statements whose WAL records mix first-touch
// full images and delta records, with an explicit checkpoint in the
// middle (so the sweep crosses a log truncation and the first-touch
// rule restarts). Every byte offset in both replay modes must recover
// a statement-boundary state — a torn delta tail must roll back to the
// previous boundary, and a torn data page must be repairable from the
// era's first-touch full image even when the only log records since
// are deltas.
func TestCrashRecoveryDeltaAcrossCheckpoint(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 8, OpenFile: fs.open, RemoveFile: fs.remove, CheckpointBytes: -1}
	def := testDef(t)

	// base: a multi-page database, cleanly closed
	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	setup := st.Begin()
	rs, err := st.CreateRelation(setup, def)
	if err != nil {
		t.Fatal(err)
	}
	e := workload.GenEnrollment(9, workload.EnrollmentParams{
		Students: 12, CoursePool: 8, ClubPool: 4, SemesterPool: 3,
		CoursesPerStudent: 3, ClubsPerStudent: 2,
	})
	canon, _ := e.R1.Canonical(def.Order)
	for i := 0; i < canon.Len(); i++ {
		if err := rs.Insert(setup, canon.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	pad := make([]byte, 700)
	for i := range pad {
		pad[i] = 'q'
	}
	for i := 0; i < 7; i++ {
		tp := tupleOf([][]string{
			{fmt.Sprintf("%s-%d", pad, i)}, {"padclub"}, {fmt.Sprintf("pads%d", i)},
		}, def.Order)
		if err := rs.Insert(setup, tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(setup); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	base := fs.snapshot()

	st2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	rs2, _ := st2.Rel(def.Name)
	snap := func() *core.Relation {
		t.Helper()
		rel, err := rs2.Load()
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	states := []*core.Relation{snap()}
	stmt := func(add, del [][]string) {
		t.Helper()
		txn := st2.Begin()
		if add != nil {
			if err := rs2.Insert(txn, tupleOf(add, def.Order)); err != nil {
				t.Fatal(err)
			}
		}
		if del != nil {
			if err := rs2.Remove(txn, tupleOf(del, def.Order)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st2.Commit(txn); err != nil {
			t.Fatal(err)
		}
		states = append(states, snap())
	}

	fs.startRecording()
	// era 1: statement A first-touches its pages after recovery's Reset
	// (full images), statement B dirties the same tail pages again
	// (deltas)
	stmt([][]string{{"da1"}, {"db1"}, {"ds1"}}, nil)
	stmt([][]string{{"da2"}, {"db2"}, {"ds2"}}, nil)
	preCkpt := st2.WALStats()
	if preCkpt.DeltaPages == 0 {
		t.Fatalf("statement B logged no delta records (full=%d delta=%d); sweep is vacuous",
			preCkpt.FullPages, preCkpt.DeltaPages)
	}
	// checkpoint: log truncates, the first-touch rule starts over
	if err := st2.Flush(); err != nil {
		t.Fatal(err)
	}
	// era 2: statement C first-touches again (full images), statement D
	// deltas the same pages
	stmt([][]string{{"da3"}, {"db3"}, {"ds3"}}, nil)
	stmt(nil, [][]string{{"da3"}, {"db3"}, {"ds3"}})
	post := st2.WALStats()
	if post.FullPages <= preCkpt.FullPages {
		t.Fatal("no first-touch full images after the checkpoint")
	}
	if post.DeltaPages <= preCkpt.DeltaPages {
		t.Fatal("no delta records after the checkpoint")
	}
	journal := fs.stopRecording()
	st2.Discard() // crash

	for i := 1; i < len(states); i++ {
		if states[i].Equal(states[i-1]) {
			t.Fatalf("statement %d changed nothing", i)
		}
	}
	total := int64(0)
	for _, op := range journal {
		total += op.cost()
	}
	if total < 2*storage.PageSize {
		t.Fatalf("journal too small (%d bytes) to exercise torn pages", total)
	}
	t.Logf("delta-era journal: %d ops, %d bytes (full=%d delta=%d pages logged)",
		len(journal), total, post.FullPages, post.DeltaPages)
	forEachOffset(t, total, func(k int64, reordered bool) error {
		label := fmt.Sprintf("delta k=%d reordered=%v", k, reordered)
		state, err := loadStateErr(crashState(base, journal, k, reordered), label, "R1")
		if err != nil {
			return err
		}
		got := state["R1"]
		for _, s := range states {
			if got.Equal(s) {
				return nil
			}
		}
		return fmt.Errorf("%s: recovered state is not a statement boundary", label)
	})
}

// TestCrashRecoveryDoubleReplay proves redo is idempotent end to end:
// recovery itself is crashed at every sampled offset of ITS journal —
// including mid-redo-write, between the data sync and the log
// truncation, and inside the truncation — and the second recovery must
// land on exactly the state an uninterrupted single replay produces.
// Before page LSNs this held only because records were whole-page
// images; with delta records it holds because the LSN gate skips pages
// the first replay already published, so deltas never apply twice.
func TestCrashRecoveryDoubleReplay(t *testing.T) {
	fs := newMemFS()
	opts := Options{PoolPages: 8, OpenFile: fs.open, RemoveFile: fs.remove, CheckpointBytes: -1}
	def := testDef(t)

	st, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	setup := st.Begin()
	rs, err := st.CreateRelation(setup, def)
	if err != nil {
		t.Fatal(err)
	}
	pad := make([]byte, 700)
	for i := range pad {
		pad[i] = 'r'
	}
	for i := 0; i < 6; i++ {
		tp := tupleOf([][]string{
			{fmt.Sprintf("%s-%d", pad, i)}, {"padclub"}, {fmt.Sprintf("pads%d", i)},
		}, def.Order)
		if err := rs.Insert(setup, tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(setup); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	base := fs.snapshot()

	// journal two statements (full images + deltas) and crash
	st2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	rs2, _ := st2.Rel(def.Name)
	fs.startRecording()
	for i := 0; i < 2; i++ {
		txn := st2.Begin()
		if err := rs2.Insert(txn, tupleOf([][]string{
			{fmt.Sprintf("yc%d", i)}, {fmt.Sprintf("yb%d", i)}, {fmt.Sprintf("ys%d", i)},
		}, def.Order)); err != nil {
			t.Fatal(err)
		}
		if err := st2.Commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	journal := fs.stopRecording()
	st2.Discard() // crash #1

	total := int64(0)
	for _, op := range journal {
		total += op.cost()
	}
	t.Logf("workload journal: %d bytes", total)

	// outer crash points spread across the workload journal
	outer := []int64{0, total / 4, total / 2, 3 * total / 4, total}
	for _, k := range outer {
		for _, reordered := range []bool{false, true} {
			k, reordered := k, reordered
			t.Run(fmt.Sprintf("k=%d_reordered=%v", k, reordered), func(t *testing.T) {
				t.Parallel()
				crashed := crashState(base, journal, k, reordered)

				// the oracle: one uninterrupted replay of the crashed state
				want := loadState(t, crashed, "single-replay", "R1")["R1"]

				// replay again, recording recovery's own writes; crash #2
				// lands at sampled offsets of that recovery journal
				rfs := &memFS{files: crashState(base, journal, k, reordered)}
				rbase := rfs.snapshot()
				rfs.startRecording()
				rst, err := Open("db", Options{PoolPages: 8, OpenFile: rfs.open, RemoveFile: rfs.remove, CheckpointBytes: -1})
				if err != nil {
					t.Fatalf("recording replay failed: %v", err)
				}
				rjournal := rfs.stopRecording()
				rst.Discard()
				rtotal := int64(0)
				for _, op := range rjournal {
					rtotal += op.cost()
				}

				// every op boundary of the recovery journal, plus strided
				// mid-op offsets to cut redo writes and the truncation
				// mid-way
				offsets := map[int64]bool{0: true, rtotal: true}
				at := int64(0)
				for _, op := range rjournal {
					at += op.cost()
					offsets[at] = true
				}
				for j := int64(0); j <= rtotal; j += 211 {
					offsets[j] = true
				}
				for j := range offsets {
					for _, rmode := range []bool{false, true} {
						label := fmt.Sprintf("replay-crash j=%d reordered=%v", j, rmode)
						got, err := loadStateErr(crashState(rbase, rjournal, j, rmode), label, "R1")
						if err != nil {
							t.Fatal(err)
						}
						if !got["R1"].Equal(want) {
							t.Fatalf("%s: double replay diverged from single replay", label)
						}
					}
				}
			})
		}
	}
}
