package store_test

// The engine-level companion to TestReopenReadsBounded (external test
// package: the engine imports the store, so the bound on engine.Open
// cannot live inside package store). The store-level bound alone is not
// enough — engine.Open used to scan every heap AFTER store.Open
// returned, to materialize each relation's canonical form eagerly. With
// lazy materialization that scan is gone, and this test keeps it gone.

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/workload"
)

// engineReopenBudget mirrors reopenBudget in package store: catalog
// chain + free-list chain + two index directories and a B+tree meta
// page per relation, with slack for chained directory pages. Never a
// function of heap size.
func engineReopenBudget(rels int) int { return 4 + 5*rels }

func TestEngineOpenReadsBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine-reopen.nfrs")
	e := workload.GenEnrollment(11, workload.EnrollmentParams{
		Students: 2500, CoursePool: 120, ClubPool: 20, SemesterPool: 8,
		CoursesPerStudent: 4, ClubsPerStudent: 2,
	})
	def := engine.RelationDef{
		Name:   "R1",
		Schema: e.R1.Schema(),
		Order:  schema.MustPermOf(e.R1.Schema(), "Course", "Club", "Student"),
	}
	db, err := engine.Open(path, engine.WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	// one transaction for the whole load: per-statement autocommit would
	// pay a group-commit fsync per tuple
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.InsertMany("R1", e.R1.Expand()); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want, err := db.ReadRelation(context.Background(), "R1")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// measure the heap size the lazy open must NOT read
	st, err := store.Open(path, store.Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	heapPages := 0
	rels := len(st.Relations())
	for _, name := range st.Relations() {
		rs, _ := st.Rel(name)
		hs, err := rs.HeapStats()
		if err != nil {
			t.Fatal(err)
		}
		heapPages += hs.Pages
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if heapPages < 10 {
		t.Fatalf("heap spans only %d page(s); too small for a reopen bound", heapPages)
	}

	// the measured leg: a clean ENGINE open
	db2, err := engine.Open(path, engine.WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	open, ok := db2.OpenIOStats()
	if !ok {
		t.Fatal("no open-phase stats on a disk-backed database")
	}
	if budget := engineReopenBudget(rels); open.Misses > budget {
		t.Errorf("clean engine.Open read %d pages, budget %d (heap is %d pages)",
			open.Misses, budget, heapPages)
	}
	if open.Misses >= heapPages {
		t.Errorf("clean engine.Open read %d pages — a full heap scan (%d pages)",
			open.Misses, heapPages)
	}
	// lazy attach means the engine adds NO page reads of its own on top
	// of store.Open (whose I/O is bucketed in OpenIOStats)
	if all, _ := db2.AllPoolStats(); all.Misses != 0 {
		t.Errorf("engine.Open performed %d post-open page reads; lazy attach should perform none", all.Misses)
	}

	// the first read materializes from the heap — and is correct
	got, err := db2.ReadRelation(context.Background(), "R1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("content changed across lazy reopen")
	}
	afterFirst, _ := db2.AllPoolStats()
	if afterFirst.Misses == 0 {
		t.Fatal("first read touched no heap pages — what did it return?")
	}
	// a second read hits the pool, not the disk
	if _, err := db2.ReadRelation(context.Background(), "R1"); err != nil {
		t.Fatal(err)
	}
	if afterSecond, _ := db2.AllPoolStats(); afterSecond.Misses != afterFirst.Misses {
		t.Errorf("second read missed %d more pages; the heap should be pool-resident",
			afterSecond.Misses-afterFirst.Misses)
	}
}
