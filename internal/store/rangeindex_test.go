package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/tuple"
	"repro/internal/value"
)

// TestCatalogRecordRangeRoots covers the third trailing-optional block
// of the catalog record: per-shard B+tree roots behind the shard-count
// sentinel for single-chain relations, appended after the shard
// triples for sharded ones, absent on records from before the range
// index existed.
func TestCatalogRecordRangeRoots(t *testing.T) {
	def := testDef(t)

	// single-chain with a range root: the shard-count position carries
	// the 0 sentinel
	rec := encodeCatalogRecord(def, []shardRoots{{7, 9, 12, 15}})
	ce, err := decodeCatalogRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if ce.ridsRoot != 9 || ce.fixedRoot != 12 || ce.rangeRoot != 15 || ce.def.Shards != 1 {
		t.Fatalf("single-chain range record decoded %+v", ce)
	}

	// sharded with range roots
	def3 := def
	def3.Shards = 3
	roots := []shardRoots{{7, 9, 12, 15}, {20, 21, 22, 23}, {30, 31, 32, 33}}
	ce3, err := decodeCatalogRecord(encodeCatalogRecord(def3, roots))
	if err != nil {
		t.Fatal(err)
	}
	if ce3.def.Shards != 3 || ce3.rangeRoot != 15 || len(ce3.extra) != 2 ||
		ce3.extra[0] != roots[1] || ce3.extra[1] != roots[2] {
		t.Fatalf("sharded range record decoded %+v", ce3)
	}

	// sharded WITHOUT range roots (a pre-range sharded record) still
	// decodes, range roots zero
	old := make([]shardRoots, len(roots))
	copy(old, roots)
	for i := range old {
		old[i].rangeRoot = 0
	}
	ceOld, err := decodeCatalogRecord(encodeCatalogRecord(def3, old))
	if err != nil {
		t.Fatal(err)
	}
	if ceOld.rangeRoot != 0 || ceOld.extra[0].rangeRoot != 0 || ceOld.def.Shards != 3 {
		t.Fatalf("pre-range sharded record decoded %+v", ceOld)
	}

	// every truncation of the range-bearing record is rejected except
	// the prefixes that are themselves well-formed older record shapes
	okLens := map[int]bool{
		len(rec): true,
		len(encodeCatalogRecord(def, []shardRoots{{7, 0, 0, 0}})):  true, // v2
		len(encodeCatalogRecord(def, []shardRoots{{7, 9, 12, 0}})): true, // v3 without range
	}
	for i := 1; i < len(rec); i++ {
		if _, err := decodeCatalogRecord(rec[:i]); err == nil && !okLens[i] {
			t.Fatalf("truncated range record of %d bytes accepted", i)
		}
	}
}

// rangeOracle filters the shard contents by hand: every tuple with at
// least one fixed atom inside [lo, hi] per the inclusive flags.
func rangeOracle(t *testing.T, rs *RelStore, lo, hi *RangeBound) map[string]bool {
	t.Helper()
	fixedAt := rs.fixedAttr()
	want := make(map[string]bool)
	if err := rs.Scan(func(tp tuple.Tuple) bool {
		for _, a := range tp.Set(fixedAt).Atoms() {
			if lo != nil {
				if c := value.Compare(a, lo.Atom); c < 0 || (c == 0 && !lo.Incl) {
					continue
				}
			}
			if hi != nil {
				if c := value.Compare(a, hi.Atom); c > 0 || (c == 0 && !hi.Incl) {
					continue
				}
			}
			want[string(tp.Key())] = true
			break
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return want
}

func keysOf(ts []tuple.Tuple) map[string]bool {
	out := make(map[string]bool, len(ts))
	for _, tp := range ts {
		out[string(tp.Key())] = true
	}
	return out
}

// TestScanFixedRange drives the B+tree-backed range scan against the
// heap oracle on a single-chain and a 4-sharded relation, including
// grouped determinants (one tuple, several atoms in range — returned
// once) and unbounded sides.
func TestScanFixedRange(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "db.nfrs")
			st, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			def := testDef(t)
			def.Shards = shards
			txn := st.Begin()
			rs, err := st.CreateRelation(txn, def)
			if err != nil {
				t.Fatal(err)
			}
			// students s00..s39 one per tuple, plus grouped tuples whose
			// fixed set spans the probe windows
			for i := 0; i < 40; i++ {
				tp := tupleOf([][]string{
					{fmt.Sprintf("c%d", i%7)}, {"b1"}, {fmt.Sprintf("s%02d", i)},
				}, def.Order)
				if shards == 1 {
					if err := rs.Insert(txn, tp); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := rs.Shard(ShardOfAtom(value.NewString(fmt.Sprintf("s%02d", i)), shards)).Insert(txn, tp); err != nil {
						t.Fatal(err)
					}
				}
			}
			if shards == 1 {
				grouped := tupleOf([][]string{{"c9"}, {"b2"}, {"s10x", "s11x", "s12x"}}, def.Order)
				if err := rs.Insert(txn, grouped); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Commit(txn); err != nil {
				t.Fatal(err)
			}
			if !rs.HasRangeIndex() {
				t.Fatal("fresh relation has no range index")
			}

			bound := func(s string, incl bool) *RangeBound {
				return &RangeBound{Atom: value.NewString(s), Incl: incl}
			}
			cases := []struct{ lo, hi *RangeBound }{
				{bound("s10", true), bound("s20", false)},
				{bound("s10", false), bound("s20", true)},
				{nil, bound("s05", true)},
				{bound("s35", true), nil},
				{nil, nil},
				{bound("s99", true), nil}, // empty window
			}
			for _, tc := range cases {
				got, pages, err := rs.ScanFixedRange(tc.lo, tc.hi)
				if err != nil {
					t.Fatal(err)
				}
				want := rangeOracle(t, rs, tc.lo, tc.hi)
				if gotKeys := keysOf(got); len(gotKeys) != len(got) || len(gotKeys) != len(want) {
					t.Fatalf("range scan returned %d tuples (%d unique), oracle %d", len(got), len(gotKeys), len(want))
				} else {
					for k := range want {
						if !gotKeys[k] {
							t.Fatalf("range scan lost a tuple the oracle has")
						}
					}
				}
				if pages < shards {
					t.Fatalf("range scan reports %d pages over %d shards", pages, shards)
				}
			}
			if err := rs.VerifyIndex(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRangeIndexMaintenance checks delete and replace keep the B+tree
// in lockstep with the heap (the oracle is VerifyIndex's structural +
// probe pass, which covers the range index too).
func TestRangeIndexMaintenance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nfrs")
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	def := testDef(t)
	txn := st.Begin()
	rs, err := st.CreateRelation(txn, def)
	if err != nil {
		t.Fatal(err)
	}
	var tuples []tuple.Tuple
	for i := 0; i < 30; i++ {
		tp := tupleOf([][]string{{fmt.Sprintf("c%d", i)}, {"b"}, {fmt.Sprintf("s%02d", i)}}, def.Order)
		tuples = append(tuples, tp)
		if err := rs.Insert(txn, tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	txn2 := st.Begin()
	for _, tp := range tuples[:15] {
		if err := rs.Remove(txn2, tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(txn2); err != nil {
		t.Fatal(err)
	}
	if err := rs.VerifyIndex(); err != nil {
		t.Fatalf("after deletes: %v", err)
	}
	got, _, err := rs.ScanFixedRange(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("full range scan after deletes returned %d tuples, want 15", len(got))
	}
	var names []string
	for _, tp := range got {
		names = append(names, tp.Set(rs.fixedAttr()).Atoms()[0].S)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("range scan out of order: %v", names)
	}
}

// stripRangeRoots rewrites every catalog record without its range
// block — manufacturing a file from before the range index existed
// (hash roots intact, B+tree pages orphaned).
func stripRangeRoots(t *testing.T, path string) {
	t.Helper()
	st, err := Open(path, Options{PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	txn := st.Begin()
	for _, name := range st.Relations() {
		rs, _ := st.Rel(name)
		if err := st.catalog.Delete(txn, rs.catRID); err != nil {
			t.Fatal(err)
		}
		sh := rs.shards[0]
		rid, err := st.catalog.Insert(txn, encodeCatalogRecord(rs.def,
			[]shardRoots{{sh.heap.FirstPage(), sh.ridsD.Root(), sh.fixedD.Root(), 0}}))
		if err != nil {
			t.Fatal(err)
		}
		rs.catRID = rid
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRangeUpgradeBuildsBTree: opening a v3 file whose records predate
// the range index builds the B+trees once by heap scan and persists
// them; a NoSweep open leaves the file untouched and reports no range
// index; every open after the upgrade is fast again.
func TestRangeUpgradeBuildsBTree(t *testing.T) {
	path, canon, _ := buildReopenDB(t)
	stripRangeRoots(t, path)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	ro, err := Open(path, Options{PoolPages: 32, NoSweep: true})
	if err != nil {
		t.Fatalf("NoSweep open of rangeless file: %v", err)
	}
	if mustRel(t, ro, "R1").HasRangeIndex() {
		t.Fatal("NoSweep open conjured a range index")
	}
	if err := ro.VerifyIndexes(); err != nil {
		t.Fatal(err)
	}
	if err := ro.Discard(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("NoSweep open of a rangeless file mutated it")
	}

	up, err := Open(path, Options{PoolPages: 32})
	if err != nil {
		t.Fatalf("range upgrade open: %v", err)
	}
	rs := mustRel(t, up, "R1")
	if !rs.HasRangeIndex() {
		t.Fatal("writable open did not build the range index")
	}
	if err := up.VerifyIndexes(); err != nil {
		t.Fatalf("upgraded range index diverged from heap oracle: %v", err)
	}
	got, _, err := rs.ScanFixedRange(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := rangeOracle(t, rs, nil, nil); len(keysOf(got)) != len(want) {
		t.Fatalf("post-upgrade full scan returned %d tuples, oracle %d", len(keysOf(got)), len(want))
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(path, Options{PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if open := st2.OpenIOStats(); open.Misses > reopenBudget(1) {
		t.Errorf("post-upgrade open read %d pages, budget %d", open.Misses, reopenBudget(1))
	}
	got3, err := mustRel(t, st2, "R1").Load()
	if err != nil {
		t.Fatal(err)
	}
	if !got3.Equal(canon) {
		t.Fatal("content changed across range upgrade + reopen")
	}
	if err := st2.VerifyIndexes(); err != nil {
		t.Fatal(err)
	}
}
