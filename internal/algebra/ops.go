package algebra

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/vset"
)

// Select returns the tuples of r satisfying the predicate (tuple-level
// selection: predicates see whole set components).
func Select(r *core.Relation, p Pred) (*core.Relation, error) {
	out := core.NewRelation(r.Schema())
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		ok, err := p.Eval(r.Schema(), t)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Add(t)
		}
	}
	return out, nil
}

// SelectFlat filters R* by the predicate applied to each flat tuple
// (lifted to singleton components) and re-nests the survivors under
// the given order — classical 1NF selection with an NFR result.
func SelectFlat(r *core.Relation, p Pred, order schema.Permutation) (*core.Relation, error) {
	flat := core.NewRelation(r.Schema())
	for _, f := range r.Expand() {
		t := tuple.FromFlat(f)
		ok, err := p.Eval(r.Schema(), t)
		if err != nil {
			return nil, err
		}
		if ok {
			flat.Add(t)
		}
	}
	out, _ := flat.Canonical(order)
	return out, nil
}

// Project restricts r to the named attributes (tuple level: component
// sets are carried over whole; exact duplicate tuples collapse).
// Projection of an NFR can produce tuples with overlapping expansions;
// use ProjectFlat for exact 1NF semantics.
func Project(r *core.Relation, attrs ...string) (*core.Relation, error) {
	ps, err := r.Schema().Project(attrs...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = r.Schema().Index(a)
	}
	out := core.NewRelation(ps)
	for i := 0; i < r.Len(); i++ {
		out.Add(r.Tuple(i).Project(idx))
	}
	return out, nil
}

// ProjectFlat projects R* onto the named attributes and re-nests under
// order (indices into the projected schema).
func ProjectFlat(r *core.Relation, order schema.Permutation, attrs ...string) (*core.Relation, error) {
	ps, err := r.Schema().Project(attrs...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = r.Schema().Index(a)
	}
	flat := core.NewRelation(ps)
	for _, f := range r.Expand() {
		g := make(tuple.Flat, len(idx))
		for i, j := range idx {
			g[i] = f[j]
		}
		flat.Add(tuple.FromFlat(g))
	}
	if !order.Valid(ps) {
		return nil, fmt.Errorf("algebra: invalid order %v for projected schema %v", order, ps)
	}
	out, _ := flat.Canonical(order)
	return out, nil
}

// Rename renames an attribute.
func Rename(r *core.Relation, old, new string) (*core.Relation, error) {
	ns, err := r.Schema().Rename(old, new)
	if err != nil {
		return nil, err
	}
	out := core.NewRelation(ns)
	for i := 0; i < r.Len(); i++ {
		out.Add(r.Tuple(i))
	}
	return out, nil
}

// Union returns the flat-semantics union r ∪ s re-nested under order.
// Schemas must cover the same attributes in the same order.
func Union(r, s *core.Relation, order schema.Permutation) (*core.Relation, error) {
	if err := checkSameSchema(r, s); err != nil {
		return nil, err
	}
	flat := core.NewRelation(r.Schema())
	for _, f := range r.Expand() {
		flat.Add(tuple.FromFlat(f))
	}
	for _, f := range s.Expand() {
		flat.Add(tuple.FromFlat(f))
	}
	out, _ := flat.Canonical(order)
	return out, nil
}

// Difference returns the flat-semantics difference r − s re-nested
// under order.
func Difference(r, s *core.Relation, order schema.Permutation) (*core.Relation, error) {
	if err := checkSameSchema(r, s); err != nil {
		return nil, err
	}
	drop := map[string]bool{}
	for _, f := range s.Expand() {
		drop[f.Key()] = true
	}
	flat := core.NewRelation(r.Schema())
	for _, f := range r.Expand() {
		if !drop[f.Key()] {
			flat.Add(tuple.FromFlat(f))
		}
	}
	out, _ := flat.Canonical(order)
	return out, nil
}

// Intersection returns the flat-semantics intersection r ∩ s re-nested
// under order.
func Intersection(r, s *core.Relation, order schema.Permutation) (*core.Relation, error) {
	if err := checkSameSchema(r, s); err != nil {
		return nil, err
	}
	keep := map[string]bool{}
	for _, f := range s.Expand() {
		keep[f.Key()] = true
	}
	flat := core.NewRelation(r.Schema())
	for _, f := range r.Expand() {
		if keep[f.Key()] {
			flat.Add(tuple.FromFlat(f))
		}
	}
	out, _ := flat.Canonical(order)
	return out, nil
}

func checkSameSchema(r, s *core.Relation) error {
	if !r.Schema().Equal(s.Schema()) {
		return fmt.Errorf("algebra: schema mismatch %v vs %v", r.Schema(), s.Schema())
	}
	return nil
}

// NaturalJoin computes the flat-semantics natural join of r and s on
// their shared attributes, re-nested under order (a permutation of the
// result schema: r's attributes then s's non-shared attributes). The
// join is a classic hash join over the expansions.
func NaturalJoin(r, s *core.Relation, order schema.Permutation) (*core.Relation, error) {
	rs, ss := r.Schema(), s.Schema()
	var shared []string
	var sOnly []string
	for _, n := range ss.Names() {
		if rs.Has(n) {
			shared = append(shared, n)
		} else {
			sOnly = append(sOnly, n)
		}
	}
	outSchema, err := rs.Project(rs.Names()...)
	if err != nil {
		return nil, err
	}
	if len(sOnly) > 0 {
		add, err := ss.Project(sOnly...)
		if err != nil {
			return nil, err
		}
		outSchema, err = outSchema.Concat(add)
		if err != nil {
			return nil, err
		}
	}
	if !order.Valid(outSchema) {
		return nil, fmt.Errorf("algebra: invalid order %v for join schema %v", order, outSchema)
	}

	sharedR := make([]int, len(shared))
	sharedS := make([]int, len(shared))
	for i, n := range shared {
		sharedR[i] = rs.Index(n)
		sharedS[i] = ss.Index(n)
	}
	sOnlyIdx := make([]int, len(sOnly))
	for i, n := range sOnly {
		sOnlyIdx[i] = ss.Index(n)
	}

	joinKey := func(f tuple.Flat, idx []int) string {
		var b strings.Builder
		for k, i := range idx {
			if k > 0 {
				b.WriteByte('\x1f')
			}
			b.WriteByte(byte(f[i].K))
			b.WriteString(f[i].String())
		}
		return b.String()
	}

	// build on s
	build := map[string][]tuple.Flat{}
	for _, f := range s.Expand() {
		k := joinKey(f, sharedS)
		build[k] = append(build[k], f)
	}
	flat := core.NewRelation(outSchema)
	for _, f := range r.Expand() {
		for _, g := range build[joinKey(f, sharedR)] {
			out := make(tuple.Flat, 0, outSchema.Degree())
			out = append(out, f...)
			for _, i := range sOnlyIdx {
				out = append(out, g[i])
			}
			flat.Add(tuple.FromFlat(out))
		}
	}
	res, _ := flat.Canonical(order)
	return res, nil
}

// Product computes the cartesian product of r and s (schemas must be
// attribute-disjoint) at the tuple level: one output NFR tuple per
// pair of input tuples, concatenating components. This is exact also
// in flat semantics because expansions multiply.
func Product(r, s *core.Relation) (*core.Relation, error) {
	outSchema, err := r.Schema().Concat(s.Schema())
	if err != nil {
		return nil, err
	}
	out := core.NewRelation(outSchema)
	for i := 0; i < r.Len(); i++ {
		for j := 0; j < s.Len(); j++ {
			sets := make([]vset.Set, 0, outSchema.Degree())
			sets = append(sets, r.Tuple(i).Sets()...)
			sets = append(sets, s.Tuple(j).Sets()...)
			out.Add(tuple.MustNew(sets...))
		}
	}
	return out, nil
}

// Nest applies ν over the named attribute (Definition 4), the
// algebra-level entry point to core.Nest.
func Nest(r *core.Relation, attr string) (*core.Relation, error) {
	i := r.Schema().Index(attr)
	if i < 0 {
		return nil, fmt.Errorf("algebra: unknown attribute %q", attr)
	}
	out, _ := r.Nest(i)
	return out, nil
}

// Unnest applies μ over the named attribute (full unnesting).
func Unnest(r *core.Relation, attr string) (*core.Relation, error) {
	i := r.Schema().Index(attr)
	if i < 0 {
		return nil, fmt.Errorf("algebra: unknown attribute %q", attr)
	}
	return r.Unnest(i), nil
}

// GroupCount returns, for each tuple, the cardinality of the named
// attribute's component as an extra Int column named countAttr —
// a small aggregation showing the "realization view" payoff: counting
// group members without expanding.
func GroupCount(r *core.Relation, attr, countAttr string) (*core.Relation, error) {
	i := r.Schema().Index(attr)
	if i < 0 {
		return nil, fmt.Errorf("algebra: unknown attribute %q", attr)
	}
	ns, err := r.Schema().Concat(schema.MustNew(schema.Attribute{Name: countAttr, Kind: value.Int}))
	if err != nil {
		return nil, err
	}
	out := core.NewRelation(ns)
	for j := 0; j < r.Len(); j++ {
		t := r.Tuple(j)
		sets := make([]vset.Set, 0, ns.Degree())
		sets = append(sets, t.Sets()...)
		sets = append(sets, vset.Single(value.NewInt(int64(t.Set(i).Len()))))
		out.Add(tuple.MustNew(sets...))
	}
	return out, nil
}
