// Package algebra implements a relational algebra over NFRs in the
// spirit of Jaeschke–Schek (the paper's [7]): the classical operators
// plus nest and unnest, with two evaluation levels:
//
//   - tuple level: predicates and operators see NFR tuples (components
//     are sets), matching the paper's "realization view" where one NFR
//     tuple stands for a group;
//   - flat level: operators defined on R* (the unique 1NF expansion,
//     Theorem 1) with the result re-nested, giving exactly classical
//     1NF semantics.
package algebra

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
)

// LiteralString renders an atom in the query language's literal syntax
// so that re-parsing it yields the identical atom: strings are always
// quoted (escaping only backslash and quote, matching the query
// lexer's escape rule), floats always carry a decimal point so they
// cannot be re-read as ints, and null/bools use their keywords.
// Non-finite floats (NaN, ±Inf) have no literal in the grammar — the
// parser can never produce them — and render as plain NaN/+Inf/-Inf
// for display.
func LiteralString(a value.Atom) string {
	switch a.K {
	case value.Null:
		return "null"
	case value.Bool:
		if a.I != 0 {
			return "true"
		}
		return "false"
	case value.Int:
		return strconv.FormatInt(a.I, 10)
	case value.Float:
		if math.IsNaN(a.F) || math.IsInf(a.F, 0) {
			return strconv.FormatFloat(a.F, 'g', -1, 64)
		}
		s := strconv.FormatFloat(a.F, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	case value.String:
		var b strings.Builder
		b.WriteByte('"')
		for i := 0; i < len(a.S); i++ {
			if c := a.S[i]; c == '\\' || c == '"' {
				b.WriteByte('\\')
			}
			b.WriteByte(a.S[i])
		}
		b.WriteByte('"')
		return b.String()
	default:
		return a.String()
	}
}

// CmpOp is a comparison operator for atom predicates.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator in SQL-ish notation.
func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Apply evaluates the comparison on two atoms.
func (o CmpOp) Apply(a, b value.Atom) bool {
	c := value.Compare(a, b)
	switch o {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	default:
		panic(fmt.Sprintf("algebra: unknown CmpOp %d", uint8(o)))
	}
}

// Pred is a predicate over NFR tuples, resolved against a schema.
type Pred interface {
	// Eval reports whether the tuple satisfies the predicate.
	Eval(s *schema.Schema, t tuple.Tuple) (bool, error)
	// String renders the predicate.
	String() string
}

// Quantifier selects how a per-atom test applies to a set component.
type Quantifier uint8

// Quantifiers: Any is the natural reading for selections on NFRs (the
// group matches if some member matches); All requires every member.
const (
	Any Quantifier = iota
	All
)

type cmpPred struct {
	attr  string
	op    CmpOp
	val   value.Atom
	quant Quantifier
}

// Cmp builds an attribute-vs-constant comparison with Any semantics.
func Cmp(attr string, op CmpOp, val value.Atom) Pred {
	return cmpPred{attr: attr, op: op, val: val, quant: Any}
}

// CmpAll builds an attribute-vs-constant comparison with All semantics.
func CmpAll(attr string, op CmpOp, val value.Atom) Pred {
	return cmpPred{attr: attr, op: op, val: val, quant: All}
}

func (p cmpPred) Eval(s *schema.Schema, t tuple.Tuple) (bool, error) {
	i := s.Index(p.attr)
	if i < 0 {
		return false, fmt.Errorf("algebra: unknown attribute %q", p.attr)
	}
	set := t.Set(i)
	if p.quant == All {
		for _, a := range set.Atoms() {
			if !p.op.Apply(a, p.val) {
				return false, nil
			}
		}
		return true, nil
	}
	for _, a := range set.Atoms() {
		if p.op.Apply(a, p.val) {
			return true, nil
		}
	}
	return false, nil
}

func (p cmpPred) String() string {
	q := ""
	if p.quant == All {
		q = "all "
	}
	return fmt.Sprintf("%s %s%s %s", p.attr, q, p.op, LiteralString(p.val))
}

type attrCmpPred struct {
	left, right string
	op          CmpOp
}

// CmpAttrs compares two attributes with Any-Any semantics (some pair
// of members satisfies the comparison).
func CmpAttrs(left string, op CmpOp, right string) Pred {
	return attrCmpPred{left: left, right: right, op: op}
}

func (p attrCmpPred) Eval(s *schema.Schema, t tuple.Tuple) (bool, error) {
	li, ri := s.Index(p.left), s.Index(p.right)
	if li < 0 {
		return false, fmt.Errorf("algebra: unknown attribute %q", p.left)
	}
	if ri < 0 {
		return false, fmt.Errorf("algebra: unknown attribute %q", p.right)
	}
	for _, a := range t.Set(li).Atoms() {
		for _, b := range t.Set(ri).Atoms() {
			if p.op.Apply(a, b) {
				return true, nil
			}
		}
	}
	return false, nil
}

func (p attrCmpPred) String() string {
	return fmt.Sprintf("%s %s %s", p.left, p.op, p.right)
}

type containsPred struct {
	attr string
	val  value.Atom
}

// Contains tests set membership: val ∈ t[attr]. Equivalent to
// Cmp(attr, EQ, val) with Any semantics but reads better for sets.
func Contains(attr string, val value.Atom) Pred {
	return containsPred{attr: attr, val: val}
}

func (p containsPred) Eval(s *schema.Schema, t tuple.Tuple) (bool, error) {
	i := s.Index(p.attr)
	if i < 0 {
		return false, fmt.Errorf("algebra: unknown attribute %q", p.attr)
	}
	return t.Set(i).Contains(p.val), nil
}

func (p containsPred) String() string {
	return fmt.Sprintf("%s contains %s", p.attr, LiteralString(p.val))
}

type cardPred struct {
	attr string
	op   CmpOp
	n    int
}

// Card tests the cardinality of a component: |t[attr]| op n. This is
// the predicate 1NF cannot express — it queries the grouping itself.
func Card(attr string, op CmpOp, n int) Pred {
	return cardPred{attr: attr, op: op, n: n}
}

func (p cardPred) Eval(s *schema.Schema, t tuple.Tuple) (bool, error) {
	i := s.Index(p.attr)
	if i < 0 {
		return false, fmt.Errorf("algebra: unknown attribute %q", p.attr)
	}
	return p.op.Apply(value.NewInt(int64(t.Set(i).Len())), value.NewInt(int64(p.n))), nil
}

func (p cardPred) String() string {
	return fmt.Sprintf("card(%s) %s %d", p.attr, p.op, p.n)
}

type andPred struct{ ps []Pred }
type orPred struct{ ps []Pred }
type notPred struct{ p Pred }
type truePred struct{}

// And conjoins predicates.
func And(ps ...Pred) Pred { return andPred{ps} }

// Or disjoins predicates.
func Or(ps ...Pred) Pred { return orPred{ps} }

// Not negates a predicate.
func Not(p Pred) Pred { return notPred{p} }

// True matches every tuple.
func True() Pred { return truePred{} }

func (p andPred) Eval(s *schema.Schema, t tuple.Tuple) (bool, error) {
	for _, q := range p.ps {
		ok, err := q.Eval(s, t)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func (p andPred) String() string { return joinPreds(p.ps, " and ") }

func (p orPred) Eval(s *schema.Schema, t tuple.Tuple) (bool, error) {
	for _, q := range p.ps {
		ok, err := q.Eval(s, t)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (p orPred) String() string { return joinPreds(p.ps, " or ") }

func (p notPred) Eval(s *schema.Schema, t tuple.Tuple) (bool, error) {
	ok, err := p.p.Eval(s, t)
	return !ok && err == nil, err
}

func (p notPred) String() string { return "not (" + p.p.String() + ")" }

func (truePred) Eval(*schema.Schema, tuple.Tuple) (bool, error) { return true, nil }
func (truePred) String() string                                 { return "true" }

func joinPreds(ps []Pred, sep string) string {
	out := "("
	for i, p := range ps {
		if i > 0 {
			out += sep
		}
		out += p.String()
	}
	return out + ")"
}
