package algebra

import "repro/internal/value"

// This file exposes the read-only predicate structure a query planner
// needs: the top-level conjunct list and the shape of the two conjunct
// forms an index can serve (attr-vs-constant comparison and set
// membership). Everything else (OR, NOT, CARD, attr-vs-attr) stays
// opaque — the planner treats those conjuncts as residual-only.

// Conjuncts flattens nested ANDs into the top-level conjunct list. A
// non-AND predicate is its own single conjunct; nil has none.
func Conjuncts(p Pred) []Pred {
	if p == nil {
		return nil
	}
	and, ok := p.(andPred)
	if !ok {
		return []Pred{p}
	}
	var out []Pred
	for _, q := range and.ps {
		out = append(out, Conjuncts(q)...)
	}
	return out
}

// AtomCmp is the planner view of an attr-vs-constant comparison
// conjunct.
type AtomCmp struct {
	Attr  string
	Op    CmpOp
	Val   value.Atom
	Quant Quantifier
}

// AsCmp reports whether p is an attr-vs-constant comparison and
// returns its parts.
func AsCmp(p Pred) (AtomCmp, bool) {
	c, ok := p.(cmpPred)
	if !ok {
		return AtomCmp{}, false
	}
	return AtomCmp{Attr: c.attr, Op: c.op, Val: c.val, Quant: c.quant}, true
}

// AsContains reports whether p is a set-membership test and returns
// its parts.
func AsContains(p Pred) (attr string, val value.Atom, ok bool) {
	c, isc := p.(containsPred)
	if !isc {
		return "", value.Atom{}, false
	}
	return c.attr, c.val, true
}
