package algebra

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/vset"
)

// fig1R1 builds the paper's Fig. 1 R1 (already nested).
func fig1R1() *core.Relation {
	s := schema.MustOf("Student", "Course", "Club")
	return core.MustFromTuples(s, []tuple.Tuple{
		core.TupleOfSets([]string{"s1"}, []string{"c1", "c2", "c3"}, []string{"b1"}),
		core.TupleOfSets([]string{"s3"}, []string{"c1", "c2", "c3"}, []string{"b1"}),
		core.TupleOfSets([]string{"s2"}, []string{"c1", "c2", "c3"}, []string{"b2"}),
	})
}

func TestCmpOpApplyAndString(t *testing.T) {
	a, b := value.NewInt(1), value.NewInt(2)
	cases := []struct {
		op   CmpOp
		ab   bool
		aa   bool
		name string
	}{
		{EQ, false, true, "="}, {NE, true, false, "<>"},
		{LT, true, false, "<"}, {LE, true, true, "<="},
		{GT, false, false, ">"}, {GE, false, true, ">="},
	}
	for _, c := range cases {
		if c.op.Apply(a, b) != c.ab || c.op.Apply(a, a) != c.aa {
			t.Errorf("op %v wrong", c.op)
		}
		if c.op.String() != c.name {
			t.Errorf("op name %q != %q", c.op.String(), c.name)
		}
	}
}

func TestSelectContains(t *testing.T) {
	r := fig1R1()
	got, err := Select(r, Contains("Course", value.NewString("c1")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("all students take c1: got %d", got.Len())
	}
	got, err = Select(r, Contains("Club", value.NewString("b2")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Tuple(0).Set(0).Contains(value.NewString("s2")) {
		t.Errorf("club b2 members: %v", got)
	}
}

func TestSelectCmpQuantifiers(t *testing.T) {
	s := schema.MustOf("A", "N")
	r := core.MustFromTuples(s, []tuple.Tuple{
		tuple.MustNew(core.TupleOfSets([]string{"x"}).Set(0), numSet(1, 2, 3)),
		tuple.MustNew(core.TupleOfSets([]string{"y"}).Set(0), numSet(5, 6)),
	})
	any, err := Select(r, Cmp("N", LT, value.NewInt(3)))
	if err != nil {
		t.Fatal(err)
	}
	if any.Len() != 1 {
		t.Errorf("Any LT 3: %d tuples", any.Len())
	}
	all, err := Select(r, CmpAll("N", GE, value.NewInt(5)))
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 1 || !all.Tuple(0).Set(0).Contains(value.NewString("y")) {
		t.Errorf("All GE 5: %v", all)
	}
}

func numSet(vs ...int64) vset.Set { return vset.OfInts(vs...) }

func TestCardPredicate(t *testing.T) {
	r := fig1R1()
	got, err := Select(r, Card("Course", GE, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("card >= 3: %d", got.Len())
	}
	got, err = Select(r, Card("Course", GT, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("card > 3: %d", got.Len())
	}
}

func TestBooleanCombinators(t *testing.T) {
	r := fig1R1()
	p := And(
		Contains("Course", value.NewString("c2")),
		Or(
			Contains("Club", value.NewString("b1")),
			Contains("Club", value.NewString("b2")),
		),
		Not(Contains("Student", value.NewString("s3"))),
	)
	got, err := Select(r, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("combined predicate: %d tuples\n%v", got.Len(), got)
	}
	tr, err := Select(r, True())
	if err != nil || tr.Len() != 3 {
		t.Errorf("True select: %v %v", tr.Len(), err)
	}
	if p.String() == "" || True().String() != "true" {
		t.Error("String renderings")
	}
}

func TestPredicateErrors(t *testing.T) {
	r := fig1R1()
	preds := []Pred{
		Contains("Nope", value.NewString("x")),
		Cmp("Nope", EQ, value.NewString("x")),
		CmpAttrs("Nope", EQ, "Student"),
		CmpAttrs("Student", EQ, "Nope"),
		Card("Nope", EQ, 1),
	}
	for _, p := range preds {
		if _, err := Select(r, p); err == nil {
			t.Errorf("predicate %v accepted unknown attribute", p)
		}
	}
}

func TestCmpAttrs(t *testing.T) {
	s := schema.MustOf("X", "Y")
	r := core.MustFromTuples(s, []tuple.Tuple{
		core.TupleOfSets([]string{"m"}, []string{"m"}),
		core.TupleOfSets([]string{"m"}, []string{"n"}),
	})
	got, err := Select(r, CmpAttrs("X", EQ, "Y"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("X=Y: %d", got.Len())
	}
}

func TestSelectFlatVsSelect(t *testing.T) {
	// Tuple-level select keeps whole groups; flat select can split
	// them. Selecting Course=c1 on R1 flat-level keeps only the c1
	// pairing per student.
	r := fig1R1()
	order := schema.MustPermOf(r.Schema(), "Course", "Student", "Club")
	flat, err := SelectFlat(r, Contains("Course", value.NewString("c1")), order)
	if err != nil {
		t.Fatal(err)
	}
	if flat.ExpansionSize() != 3 {
		t.Errorf("flat select expansion = %d, want 3", flat.ExpansionSize())
	}
	for i := 0; i < flat.Len(); i++ {
		if flat.Tuple(i).Set(1).Len() != 1 {
			t.Error("flat select must keep only c1 in Course")
		}
	}
}

func TestProjectTupleLevel(t *testing.T) {
	r := fig1R1()
	got, err := Project(r, "Student", "Club")
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema().Degree() != 2 || got.Len() != 3 {
		t.Errorf("project: %v", got)
	}
	if _, err := Project(r, "Nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestProjectFlatDeduplicates(t *testing.T) {
	r := fig1R1()
	order := schema.IdentityPerm(1)
	got, err := ProjectFlat(r, order, "Course")
	if err != nil {
		t.Fatal(err)
	}
	// courses c1..c3 shared by all students: 3 flats, nested into ≤3 tuples
	if got.ExpansionSize() != 3 {
		t.Errorf("ProjectFlat expansion = %d", got.ExpansionSize())
	}
	if _, err := ProjectFlat(r, schema.Permutation{0, 1}, "Course"); err == nil {
		t.Error("bad order accepted")
	}
	if _, err := ProjectFlat(r, order, "Nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestRename(t *testing.T) {
	r := fig1R1()
	got, err := Rename(r, "Club", "Society")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema().Has("Society") || got.Schema().Has("Club") {
		t.Error("rename failed")
	}
	if got.Len() != r.Len() {
		t.Error("tuples lost")
	}
	if _, err := Rename(r, "Nope", "X"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestUnionDifferenceIntersection(t *testing.T) {
	s := schema.MustOf("A", "B")
	order := schema.IdentityPerm(2)
	r1 := core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1"),
		tuple.FlatOfStrings("a2", "b1"),
	})
	r2 := core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a2", "b1"),
		tuple.FlatOfStrings("a3", "b1"),
	})
	u, err := Union(r1, r2, order)
	if err != nil {
		t.Fatal(err)
	}
	if u.ExpansionSize() != 3 {
		t.Errorf("union size %d", u.ExpansionSize())
	}
	d, err := Difference(r1, r2, order)
	if err != nil {
		t.Fatal(err)
	}
	if d.ExpansionSize() != 1 {
		t.Errorf("difference size %d", d.ExpansionSize())
	}
	i, err := Intersection(r1, r2, order)
	if err != nil {
		t.Fatal(err)
	}
	if i.ExpansionSize() != 1 {
		t.Errorf("intersection size %d", i.ExpansionSize())
	}
	// schema mismatch errors
	r3 := core.NewRelation(schema.MustOf("A", "C"))
	if _, err := Union(r1, r3, order); err == nil {
		t.Error("union schema mismatch accepted")
	}
	if _, err := Difference(r1, r3, order); err == nil {
		t.Error("difference schema mismatch accepted")
	}
	if _, err := Intersection(r1, r3, order); err == nil {
		t.Error("intersection schema mismatch accepted")
	}
}

func TestNaturalJoinRecoversMVDDecomposition(t *testing.T) {
	// The paper's Section-5 point: 4NF decomposition forces joins.
	// Decompose Fig.-1 R1 into SC[Student,Course] and SB[Student,Club],
	// join back, and verify R1* is recovered exactly.
	r1 := fig1R1()
	orderSC := schema.IdentityPerm(2)
	sc, err := ProjectFlat(r1, orderSC, "Student", "Course")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ProjectFlat(r1, orderSC, "Student", "Club")
	if err != nil {
		t.Fatal(err)
	}
	joined, err := NaturalJoin(sc, sb, schema.IdentityPerm(3))
	if err != nil {
		t.Fatal(err)
	}
	if !joined.EquivalentTo(r1) {
		t.Errorf("join did not recover R1:\n%v", joined)
	}
}

func TestNaturalJoinDisjointSchemasIsProduct(t *testing.T) {
	a := core.MustFromFlats(schema.MustOf("A"), []tuple.Flat{
		tuple.FlatOfStrings("a1"), tuple.FlatOfStrings("a2"),
	})
	b := core.MustFromFlats(schema.MustOf("B"), []tuple.Flat{
		tuple.FlatOfStrings("b1"),
	})
	j, err := NaturalJoin(a, b, schema.IdentityPerm(2))
	if err != nil {
		t.Fatal(err)
	}
	if j.ExpansionSize() != 2 {
		t.Errorf("cross join size %d", j.ExpansionSize())
	}
}

func TestProduct(t *testing.T) {
	a := core.MustFromTuples(schema.MustOf("A"), []tuple.Tuple{
		core.TupleOfSets([]string{"a1", "a2"}),
	})
	b := core.MustFromTuples(schema.MustOf("B"), []tuple.Tuple{
		core.TupleOfSets([]string{"b1"}),
		core.TupleOfSets([]string{"b2"}),
	})
	p, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.ExpansionSize() != 4 {
		t.Errorf("product: len %d expansion %d", p.Len(), p.ExpansionSize())
	}
	if _, err := Product(a, a); err == nil {
		t.Error("overlapping schemas accepted")
	}
}

func TestNestUnnestAlgebra(t *testing.T) {
	s := schema.MustOf("A", "B")
	r := core.MustFromFlats(s, []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1"),
		tuple.FlatOfStrings("a1", "b2"),
	})
	n, err := Nest(r, "B")
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 1 || n.Tuple(0).Set(1).Len() != 2 {
		t.Errorf("nest: %v", n)
	}
	u, err := Unnest(n, "B")
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(r) {
		t.Errorf("unnest: %v", u)
	}
	if _, err := Nest(r, "Z"); err == nil {
		t.Error("unknown nest attr accepted")
	}
	if _, err := Unnest(r, "Z"); err == nil {
		t.Error("unknown unnest attr accepted")
	}
}

func TestGroupCount(t *testing.T) {
	r := fig1R1()
	g, err := GroupCount(r, "Course", "NumCourses")
	if err != nil {
		t.Fatal(err)
	}
	if g.Schema().Degree() != 4 {
		t.Fatalf("schema: %v", g.Schema())
	}
	for i := 0; i < g.Len(); i++ {
		if got := g.Tuple(i).Set(3).At(0).Int(); got != 3 {
			t.Errorf("count = %d", got)
		}
	}
	if _, err := GroupCount(r, "Nope", "N"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := GroupCount(r, "Course", "Club"); err == nil {
		t.Error("colliding count column accepted")
	}
}

// Property: flat-level algebra on NFRs agrees with naive 1NF algebra
// on the expansions (selection and projection).
func TestFlatSemanticsAgreesWith1NF(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		var fl []tuple.Flat
		for i := 0; i < 3+rng.Intn(15); i++ {
			fl = append(fl, tuple.Flat{
				value.NewInt(int64(rng.Intn(4))),
				value.NewInt(int64(rng.Intn(4))),
				value.NewInt(int64(rng.Intn(4))),
			})
		}
		r := core.MustFromFlats(s, fl)
		nested, _ := r.Canonical(schema.IdentityPerm(3))
		cut := value.NewInt(2)

		// selection via NFR flat-level
		sel, err := SelectFlat(nested, Cmp("B", LT, cut), schema.IdentityPerm(3))
		if err != nil {
			t.Fatal(err)
		}
		// naive 1NF
		naive := map[string]bool{}
		for _, f := range r.Expand() {
			if value.Compare(f[1], cut) < 0 {
				naive[f.Key()] = true
			}
		}
		got := map[string]bool{}
		for _, f := range sel.Expand() {
			got[f.Key()] = true
		}
		if len(got) != len(naive) {
			t.Fatalf("trial %d: select sizes %d vs %d", trial, len(got), len(naive))
		}
		for k := range naive {
			if !got[k] {
				t.Fatalf("trial %d: missing %q", trial, k)
			}
		}

		// projection
		proj, err := ProjectFlat(nested, schema.IdentityPerm(2), "A", "C")
		if err != nil {
			t.Fatal(err)
		}
		naiveP := map[string]bool{}
		for _, f := range r.Expand() {
			naiveP[tuple.Flat{f[0], f[2]}.Key()] = true
		}
		if proj.ExpansionSize() != len(naiveP) {
			t.Fatalf("trial %d: projection sizes %d vs %d", trial, proj.ExpansionSize(), len(naiveP))
		}
	}
}
