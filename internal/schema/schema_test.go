package schema

import (
	"testing"

	"repro/internal/value"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Attribute{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := Of("A", "A"); err == nil {
		t.Error("duplicate accepted")
	}
	s, err := Of("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if s.Degree() != 3 {
		t.Errorf("Degree = %d", s.Degree())
	}
}

func TestMustPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MustNew": func() { MustNew(Attribute{}) },
		"MustOf":  func() { MustOf("A", "A") },
		"MustPermOf": func() {
			MustPermOf(MustOf("A", "B"), "A", "A")
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestIndexHasNames(t *testing.T) {
	s := MustOf("Student", "Course", "Club")
	if s.Index("Course") != 1 {
		t.Errorf("Index(Course) = %d", s.Index("Course"))
	}
	if s.Index("Nope") != -1 {
		t.Error("Index for missing should be -1")
	}
	if !s.Has("Club") || s.Has("X") {
		t.Error("Has broken")
	}
	names := s.Names()
	names[0] = "Mutated"
	if s.Attr(0).Name != "Student" {
		t.Error("Names leaked internal slice")
	}
}

func TestEqualAndSameAttrSet(t *testing.T) {
	a := MustOf("A", "B")
	b := MustOf("A", "B")
	c := MustOf("B", "A")
	d := MustOf("A", "C")
	if !a.Equal(b) {
		t.Error("equal schemas")
	}
	if a.Equal(c) {
		t.Error("order must matter for Equal")
	}
	if !a.SameAttrSet(c) {
		t.Error("SameAttrSet ignores order")
	}
	if a.SameAttrSet(d) {
		t.Error("different attrs same set")
	}
	typed := MustNew(Attribute{Name: "A", Kind: value.Int}, Attribute{Name: "B"})
	if a.Equal(typed) {
		t.Error("kinds must matter for Equal")
	}
}

func TestProjectRenameConcat(t *testing.T) {
	s := MustOf("A", "B", "C")
	p, err := s.Project("C", "A")
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() != 2 || p.Attr(0).Name != "C" || p.Attr(1).Name != "A" {
		t.Errorf("Project = %v", p)
	}
	if _, err := s.Project("Z"); err == nil {
		t.Error("Project unknown attr accepted")
	}

	r, err := s.Rename("B", "B2")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has("B2") || r.Has("B") || r.Index("B2") != 1 {
		t.Errorf("Rename = %v", r)
	}
	if _, err := s.Rename("Z", "Y"); err == nil {
		t.Error("Rename unknown attr accepted")
	}
	if s.Has("B2") {
		t.Error("Rename mutated source")
	}

	c, err := MustOf("A").Concat(MustOf("B"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Degree() != 2 {
		t.Error("Concat degree")
	}
	if _, err := s.Concat(MustOf("A")); err == nil {
		t.Error("Concat with clash accepted")
	}
}

func TestSchemaString(t *testing.T) {
	if got := MustOf("A", "B").String(); got != "[A B]" {
		t.Errorf("String = %q", got)
	}
}

func TestAttrSetOps(t *testing.T) {
	a := NewAttrSet("A", "B")
	b := NewAttrSet("B", "C")
	if !a.Union(b).Equal(NewAttrSet("A", "B", "C")) {
		t.Error("Union")
	}
	if !a.Minus(b).Equal(NewAttrSet("A")) {
		t.Error("Minus")
	}
	if !a.Intersect(b).Equal(NewAttrSet("B")) {
		t.Error("Intersect")
	}
	if !NewAttrSet("A").SubsetOf(a) || b.SubsetOf(a) {
		t.Error("SubsetOf")
	}
	if a.String() != "{A,B}" {
		t.Errorf("String = %q", a.String())
	}
	cl := a.Clone().Add("Z")
	if a.Has("Z") {
		t.Error("Clone not independent")
	}
	if !cl.Has("Z") || cl.Len() != 3 {
		t.Error("Add/Len")
	}
}

func TestPermutations(t *testing.T) {
	s := MustOf("A", "B", "C")
	id := IdentityPerm(3)
	if !id.Valid(s) {
		t.Error("identity invalid")
	}
	p := MustPermOf(s, "C", "A", "B")
	if !p.Valid(s) {
		t.Error("perm invalid")
	}
	want := []string{"C", "A", "B"}
	for i, n := range p.Names(s) {
		if n != want[i] {
			t.Errorf("Names[%d] = %s", i, n)
		}
	}
	if _, err := PermOf(s, "A", "B"); err == nil {
		t.Error("short perm accepted")
	}
	if _, err := PermOf(s, "A", "B", "Z"); err == nil {
		t.Error("unknown attr accepted")
	}
	bad := Permutation{0, 0, 1}
	if bad.Valid(s) {
		t.Error("duplicate index perm valid")
	}
	short := Permutation{0, 1}
	if short.Valid(s) {
		t.Error("short perm valid")
	}
	oob := Permutation{0, 1, 5}
	if oob.Valid(s) {
		t.Error("out-of-bounds perm valid")
	}
	if p.String() != "⟨2 0 1⟩" {
		t.Errorf("perm String = %q", p.String())
	}
}

func TestAllPermutations(t *testing.T) {
	fact := []int{1, 1, 2, 6, 24, 120}
	for n := 0; n <= 5; n++ {
		ps := AllPermutations(n)
		if len(ps) != fact[n] {
			t.Fatalf("AllPermutations(%d) count = %d, want %d", n, len(ps), fact[n])
		}
		seen := map[string]bool{}
		s := MustOf([]string{"A", "B", "C", "D", "E"}[:max(n, 0)]...)
		for _, p := range ps {
			if n > 0 && !p.Valid(s) {
				t.Fatalf("invalid permutation %v", p)
			}
			key := p.String()
			if seen[key] {
				t.Fatalf("duplicate permutation %v", p)
			}
			seen[key] = true
		}
	}
	// lexicographic order spot check for n=3
	ps := AllPermutations(3)
	if ps[0].String() != "⟨0 1 2⟩" || ps[5].String() != "⟨2 1 0⟩" {
		t.Errorf("order: first %v last %v", ps[0], ps[5])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
