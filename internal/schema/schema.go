// Package schema describes relation schemas for NFRs: named, typed
// attributes, attribute sets, and permutations of attributes.
//
// Permutations matter because the paper's canonical form V_P(R)
// (Definition 5) is parameterized by a permutation P of the attribute
// universe: nest over P(E1), then P(E2), and so on.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Attribute is one column of a relation schema. Kind is advisory: the
// model permits heterogeneous atoms, but engines use Kind to type-check
// inserts when it is not value.Null.
type Attribute struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of distinct attribute names. Schemas are
// immutable after construction.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// New builds a schema from attribute definitions. Attribute names must
// be non-empty and distinct.
func New(attrs ...Attribute) (*Schema, error) {
	s := &Schema{attrs: make([]Attribute, len(attrs)), index: make(map[string]int, len(attrs))}
	copy(s.attrs, attrs)
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: attribute %d has empty name", i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate attribute %q", a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustNew is New but panics on error; for literals in tests/examples.
func MustNew(attrs ...Attribute) *Schema {
	s, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Of builds an untyped schema from attribute names.
func Of(names ...string) (*Schema, error) {
	attrs := make([]Attribute, len(names))
	for i, n := range names {
		attrs[i] = Attribute{Name: n}
	}
	return New(attrs...)
}

// MustOf is Of but panics on error.
func MustOf(names ...string) *Schema {
	s, err := Of(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Degree returns the number of attributes (the paper's n).
func (s *Schema) Degree() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Names returns the attribute names in schema order (fresh slice).
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Equal reports whether two schemas have the same attributes, order and
// kinds.
func (s *Schema) Equal(t *Schema) bool {
	if s.Degree() != t.Degree() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// SameAttrSet reports whether two schemas cover the same attribute
// names, irrespective of order and kinds.
func (s *Schema) SameAttrSet(t *Schema) bool {
	if s.Degree() != t.Degree() {
		return false
	}
	for name := range s.index {
		if !t.Has(name) {
			return false
		}
	}
	return true
}

// Project returns a new schema with only the named attributes, in the
// given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	attrs := make([]Attribute, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("schema: unknown attribute %q", n)
		}
		attrs = append(attrs, s.attrs[i])
	}
	return New(attrs...)
}

// Rename returns a schema with attribute old renamed to new.
func (s *Schema) Rename(old, new string) (*Schema, error) {
	i := s.Index(old)
	if i < 0 {
		return nil, fmt.Errorf("schema: unknown attribute %q", old)
	}
	attrs := make([]Attribute, len(s.attrs))
	copy(attrs, s.attrs)
	attrs[i].Name = new
	return New(attrs...)
}

// Concat returns the schema s ++ t; attribute names must stay distinct.
func (s *Schema) Concat(t *Schema) (*Schema, error) {
	attrs := make([]Attribute, 0, len(s.attrs)+len(t.attrs))
	attrs = append(attrs, s.attrs...)
	attrs = append(attrs, t.attrs...)
	return New(attrs...)
}

// String renders the schema as R[A B C].
func (s *Schema) String() string {
	return "[" + strings.Join(s.Names(), " ") + "]"
}

// AttrSet is an unordered set of attribute names, used for FD/MVD sides
// and fixedness domains.
type AttrSet map[string]bool

// NewAttrSet builds an attribute set from names.
func NewAttrSet(names ...string) AttrSet {
	s := make(AttrSet, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

// Has reports membership.
func (s AttrSet) Has(name string) bool { return s[name] }

// Add inserts a name and returns s for chaining.
func (s AttrSet) Add(name string) AttrSet { s[name] = true; return s }

// Len returns the cardinality.
func (s AttrSet) Len() int { return len(s) }

// Clone returns an independent copy.
func (s AttrSet) Clone() AttrSet {
	out := make(AttrSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// Union returns s ∪ t as a new set.
func (s AttrSet) Union(t AttrSet) AttrSet {
	out := s.Clone()
	for k := range t {
		out[k] = true
	}
	return out
}

// Minus returns s \ t as a new set.
func (s AttrSet) Minus(t AttrSet) AttrSet {
	out := make(AttrSet)
	for k := range s {
		if !t[k] {
			out[k] = true
		}
	}
	return out
}

// Intersect returns s ∩ t as a new set.
func (s AttrSet) Intersect(t AttrSet) AttrSet {
	out := make(AttrSet)
	for k := range s {
		if t[k] {
			out[k] = true
		}
	}
	return out
}

// SubsetOf reports whether s ⊆ t.
func (s AttrSet) SubsetOf(t AttrSet) bool {
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s AttrSet) Equal(t AttrSet) bool {
	return len(s) == len(t) && s.SubsetOf(t)
}

// Sorted returns the names in ascending order.
func (s AttrSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the set as {A,B}.
func (s AttrSet) String() string {
	return "{" + strings.Join(s.Sorted(), ",") + "}"
}

// Permutation is an ordering of all attributes of a schema, written as
// a list of attribute indexes. P[0] is the first attribute nested by
// V_P.
type Permutation []int

// IdentityPerm returns the identity permutation of degree n.
func IdentityPerm(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// PermOf builds a permutation of s from attribute names. Every
// attribute of s must appear exactly once.
func PermOf(s *Schema, names ...string) (Permutation, error) {
	if len(names) != s.Degree() {
		return nil, fmt.Errorf("schema: permutation has %d names, schema degree %d", len(names), s.Degree())
	}
	p := make(Permutation, len(names))
	seen := make(map[int]bool, len(names))
	for i, n := range names {
		j := s.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("schema: unknown attribute %q in permutation", n)
		}
		if seen[j] {
			return nil, fmt.Errorf("schema: duplicate attribute %q in permutation", n)
		}
		seen[j] = true
		p[i] = j
	}
	return p, nil
}

// MustPermOf is PermOf but panics on error.
func MustPermOf(s *Schema, names ...string) Permutation {
	p, err := PermOf(s, names...)
	if err != nil {
		panic(err)
	}
	return p
}

// Valid reports whether p is a permutation of 0..n-1 for the schema's
// degree n.
func (p Permutation) Valid(s *Schema) bool {
	if len(p) != s.Degree() {
		return false
	}
	seen := make([]bool, len(p))
	for _, i := range p {
		if i < 0 || i >= len(p) || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

// Names renders the permutation as attribute names of s.
func (p Permutation) Names(s *Schema) []string {
	out := make([]string, len(p))
	for i, j := range p {
		out[i] = s.Attr(j).Name
	}
	return out
}

// String renders the permutation as index list ⟨2 0 1⟩.
func (p Permutation) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprint(v)
	}
	return "⟨" + strings.Join(parts, " ") + "⟩"
}

// AllPermutations enumerates every permutation of degree n in
// lexicographic order. It is used by experiments that sweep all n!
// canonical forms; n must be small (≤ 8 keeps it affordable).
func AllPermutations(n int) []Permutation {
	if n == 0 {
		return []Permutation{{}}
	}
	var out []Permutation
	p := IdentityPerm(n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make(Permutation, n)
			copy(cp, p)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			p[k], p[i] = p[i], p[k]
			rec(k + 1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(0)
	sort.Slice(out, func(a, b int) bool {
		for i := range out[a] {
			if out[a][i] != out[b][i] {
				return out[a][i] < out[b][i]
			}
		}
		return false
	})
	return out
}
