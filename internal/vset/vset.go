// Package vset implements the compound domain values of NFR tuples:
// finite sets of atoms kept in a canonical sorted order.
//
// In the paper an NFR tuple component Di(ei1, ..., eimi) is a
// non-empty set of atomic elements. Set-theoretic equality of
// components is the precondition of the composition operation ν
// (Definition 1), so Set keeps elements sorted and carries a
// precomputed order-independent hash: equality checks during nesting
// are hash-compare first, slice-compare on collision.
package vset

import (
	"strings"

	"repro/internal/value"
)

// Set is an immutable, canonically ordered set of atoms. The zero Set
// is the empty set. Callers must not mutate the slice returned by
// Atoms.
type Set struct {
	atoms []value.Atom
	hash  uint64
}

// New builds a set from the given atoms, deduplicating and sorting.
func New(atoms ...value.Atom) Set {
	if len(atoms) == 0 {
		return Set{}
	}
	cp := make([]value.Atom, len(atoms))
	copy(cp, atoms)
	sortAtoms(cp)
	cp = dedupSorted(cp)
	return fromSorted(cp)
}

// Single builds a singleton set. It is the common case for 1NF tuples
// and avoids the sort in New.
func Single(a value.Atom) Set {
	return fromSorted([]value.Atom{a})
}

// FromSorted adopts a slice that is already strictly sorted (ascending,
// no duplicates). It panics if the invariant does not hold; use it only
// on slices produced by this package or verified by the caller.
func FromSorted(atoms []value.Atom) Set {
	for i := 1; i < len(atoms); i++ {
		if value.Compare(atoms[i-1], atoms[i]) >= 0 {
			panic("vset: FromSorted input not strictly sorted")
		}
	}
	return fromSorted(atoms)
}

func fromSorted(atoms []value.Atom) Set {
	var h uint64
	for _, a := range atoms {
		// XOR of element hashes: order-independent, and sets are
		// duplicate-free so self-cancellation cannot occur for equal
		// sets with different layouts.
		h ^= a.Hash()
	}
	// Mix in cardinality so the empty set and unlucky XOR coincidences
	// of different sizes separate.
	h ^= uint64(len(atoms)) * 0x9e3779b97f4a7c15
	return Set{atoms: atoms, hash: h}
}

func sortAtoms(as []value.Atom) {
	// insertion sort for tiny sets (the common case: components hold a
	// handful of values), falling back to a simple quicksort.
	if len(as) <= 12 {
		for i := 1; i < len(as); i++ {
			for j := i; j > 0 && value.Less(as[j], as[j-1]); j-- {
				as[j], as[j-1] = as[j-1], as[j]
			}
		}
		return
	}
	qsort(as)
}

func qsort(as []value.Atom) {
	if len(as) <= 12 {
		sortAtoms(as)
		return
	}
	p := as[len(as)/2]
	lo, hi := 0, len(as)-1
	for lo <= hi {
		for value.Less(as[lo], p) {
			lo++
		}
		for value.Less(p, as[hi]) {
			hi--
		}
		if lo <= hi {
			as[lo], as[hi] = as[hi], as[lo]
			lo++
			hi--
		}
	}
	qsort(as[:hi+1])
	qsort(as[lo:])
}

func dedupSorted(as []value.Atom) []value.Atom {
	out := as[:0]
	for i, a := range as {
		if i == 0 || !value.Equal(as[i-1], a) {
			out = append(out, a)
		}
	}
	return out
}

// Len returns the cardinality of the set.
func (s Set) Len() int { return len(s.atoms) }

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool { return len(s.atoms) == 0 }

// Hash returns the precomputed order-independent hash.
func (s Set) Hash() uint64 { return s.hash }

// Atoms returns the elements in canonical ascending order. The slice is
// shared; callers must not modify it.
func (s Set) Atoms() []value.Atom { return s.atoms }

// At returns the i-th element in canonical order.
func (s Set) At(i int) value.Atom { return s.atoms[i] }

// Min returns the smallest element; it panics on the empty set.
func (s Set) Min() value.Atom {
	if len(s.atoms) == 0 {
		panic("vset: Min of empty set")
	}
	return s.atoms[0]
}

// Contains reports whether a is an element of s (binary search).
func (s Set) Contains(a value.Atom) bool {
	lo, hi := 0, len(s.atoms)
	for lo < hi {
		mid := (lo + hi) / 2
		if value.Less(s.atoms[mid], a) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.atoms) && value.Equal(s.atoms[lo], a)
}

// Equal reports set-theoretic equality.
func (s Set) Equal(t Set) bool {
	if s.hash != t.hash || len(s.atoms) != len(t.atoms) {
		return false
	}
	for i := range s.atoms {
		if !value.Equal(s.atoms[i], t.atoms[i]) {
			return false
		}
	}
	return true
}

// Union returns s ∪ t. It is the merge step of composition ν.
func (s Set) Union(t Set) Set {
	if s.IsEmpty() {
		return t
	}
	if t.IsEmpty() {
		return s
	}
	out := make([]value.Atom, 0, len(s.atoms)+len(t.atoms))
	i, j := 0, 0
	for i < len(s.atoms) && j < len(t.atoms) {
		switch c := value.Compare(s.atoms[i], t.atoms[j]); {
		case c < 0:
			out = append(out, s.atoms[i])
			i++
		case c > 0:
			out = append(out, t.atoms[j])
			j++
		default:
			out = append(out, s.atoms[i])
			i++
			j++
		}
	}
	out = append(out, s.atoms[i:]...)
	out = append(out, t.atoms[j:]...)
	return fromSorted(out)
}

// Diff returns s \ t. It is the split step of decomposition u.
func (s Set) Diff(t Set) Set {
	if s.IsEmpty() || t.IsEmpty() {
		return s
	}
	out := make([]value.Atom, 0, len(s.atoms))
	j := 0
	for _, a := range s.atoms {
		for j < len(t.atoms) && value.Less(t.atoms[j], a) {
			j++
		}
		if j < len(t.atoms) && value.Equal(t.atoms[j], a) {
			continue
		}
		out = append(out, a)
	}
	if len(out) == len(s.atoms) {
		return s
	}
	return fromSorted(out)
}

// Remove returns s without element a (s if a is absent).
func (s Set) Remove(a value.Atom) Set { return s.Diff(Single(a)) }

// Add returns s with element a added.
func (s Set) Add(a value.Atom) Set { return s.Union(Single(a)) }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	out := make([]value.Atom, 0, min(len(s.atoms), len(t.atoms)))
	i, j := 0, 0
	for i < len(s.atoms) && j < len(t.atoms) {
		switch c := value.Compare(s.atoms[i], t.atoms[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, s.atoms[i])
			i++
			j++
		}
	}
	return fromSorted(out)
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	if len(s.atoms) > len(t.atoms) {
		return false
	}
	i, j := 0, 0
	for i < len(s.atoms) {
		if j >= len(t.atoms) {
			return false
		}
		switch c := value.Compare(s.atoms[i], t.atoms[j]); {
		case c < 0:
			return false
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return true
}

// Disjoint reports whether s and t share no elements.
func (s Set) Disjoint(t Set) bool { return s.Intersect(t).IsEmpty() }

// String renders the set as the paper prints tuple components:
// a single element bare, several elements comma-separated.
func (s Set) String() string {
	if len(s.atoms) == 0 {
		return "∅"
	}
	var b strings.Builder
	for i, a := range s.atoms {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// OfStrings is a convenience constructor used throughout tests and the
// paper-example reproductions: a set of string atoms.
func OfStrings(ss ...string) Set { return New(value.Strings(ss...)...) }

// OfInts is a convenience constructor for int-atom sets.
func OfInts(vs ...int64) Set { return New(value.Ints(vs...)...) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
