package vset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestNewDedupSort(t *testing.T) {
	s := New(value.NewInt(3), value.NewInt(1), value.NewInt(3), value.NewInt(2))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	want := []int64{1, 2, 3}
	for i, w := range want {
		if s.At(i).Int() != w {
			t.Errorf("At(%d) = %v, want %d", i, s.At(i), w)
		}
	}
}

func TestEmptySet(t *testing.T) {
	var z Set
	if !z.IsEmpty() || z.Len() != 0 {
		t.Error("zero Set must be empty")
	}
	if z.String() != "∅" {
		t.Errorf("empty String = %q", z.String())
	}
	if !z.Equal(New()) {
		t.Error("zero Set != New()")
	}
	if !z.SubsetOf(OfStrings("a")) {
		t.Error("empty ⊆ anything")
	}
}

func TestSingle(t *testing.T) {
	s := Single(value.NewString("a"))
	if s.Len() != 1 || !s.Contains(value.NewString("a")) {
		t.Error("Single broken")
	}
	if !s.Equal(OfStrings("a")) {
		t.Error("Single != New equivalent")
	}
}

func TestMin(t *testing.T) {
	s := OfInts(5, 2, 9)
	if s.Min().Int() != 2 {
		t.Errorf("Min = %v", s.Min())
	}
	defer func() {
		if recover() == nil {
			t.Error("Min on empty should panic")
		}
	}()
	(Set{}).Min()
}

func TestFromSortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSorted must reject unsorted input")
		}
	}()
	FromSorted([]value.Atom{value.NewInt(2), value.NewInt(1)})
}

func TestFromSortedOK(t *testing.T) {
	s := FromSorted([]value.Atom{value.NewInt(1), value.NewInt(2)})
	if !s.Equal(OfInts(1, 2)) {
		t.Error("FromSorted mismatch")
	}
}

func TestContains(t *testing.T) {
	s := OfStrings("b1", "b2", "b3")
	for _, x := range []string{"b1", "b2", "b3"} {
		if !s.Contains(value.NewString(x)) {
			t.Errorf("should contain %s", x)
		}
	}
	if s.Contains(value.NewString("b0")) || s.Contains(value.NewString("b4")) {
		t.Error("contains absent element")
	}
	if s.Contains(value.NewInt(1)) {
		t.Error("contains wrong-kind element")
	}
}

func TestEqualAndHash(t *testing.T) {
	a := OfStrings("x", "y")
	b := New(value.NewString("y"), value.NewString("x"))
	if !a.Equal(b) {
		t.Error("order-insensitive equality failed")
	}
	if a.Hash() != b.Hash() {
		t.Error("equal sets must hash equal")
	}
	c := OfStrings("x")
	if a.Equal(c) {
		t.Error("different sets equal")
	}
	// {} vs {x}: hashes should differ thanks to cardinality mixing
	if (Set{}).Hash() == c.Hash() {
		t.Error("suspicious hash collision empty vs single")
	}
}

func TestUnion(t *testing.T) {
	a := OfStrings("b1", "b2")
	b := OfStrings("b3")
	u := a.Union(b)
	if !u.Equal(OfStrings("b1", "b2", "b3")) {
		t.Errorf("Union = %v", u)
	}
	// overlapping
	u2 := a.Union(OfStrings("b2", "b4"))
	if !u2.Equal(OfStrings("b1", "b2", "b4")) {
		t.Errorf("Union overlap = %v", u2)
	}
	// identities
	if !a.Union(Set{}).Equal(a) || !(Set{}).Union(a).Equal(a) {
		t.Error("union with empty")
	}
}

func TestDiff(t *testing.T) {
	a := OfStrings("b1", "b2", "b3")
	if !a.Diff(OfStrings("b2")).Equal(OfStrings("b1", "b3")) {
		t.Error("Diff middle")
	}
	if !a.Diff(OfStrings("zz")).Equal(a) {
		t.Error("Diff absent")
	}
	if !a.Diff(a).IsEmpty() {
		t.Error("Diff self")
	}
	if !a.Diff(Set{}).Equal(a) {
		t.Error("Diff empty")
	}
	if !(Set{}).Diff(a).IsEmpty() {
		t.Error("empty Diff")
	}
}

func TestAddRemove(t *testing.T) {
	s := OfStrings("a")
	s2 := s.Add(value.NewString("b"))
	if !s2.Equal(OfStrings("a", "b")) {
		t.Error("Add")
	}
	if !s2.Remove(value.NewString("a")).Equal(OfStrings("b")) {
		t.Error("Remove")
	}
	// original unchanged (immutability)
	if !s.Equal(OfStrings("a")) {
		t.Error("Add mutated receiver")
	}
}

func TestIntersectDisjointSubset(t *testing.T) {
	a := OfInts(1, 2, 3, 4)
	b := OfInts(3, 4, 5)
	if !a.Intersect(b).Equal(OfInts(3, 4)) {
		t.Error("Intersect")
	}
	if a.Disjoint(b) {
		t.Error("Disjoint false positive")
	}
	if !a.Disjoint(OfInts(9)) {
		t.Error("Disjoint false negative")
	}
	if !OfInts(2, 3).SubsetOf(a) {
		t.Error("SubsetOf true case")
	}
	if OfInts(2, 9).SubsetOf(a) {
		t.Error("SubsetOf false case")
	}
	if OfInts(1, 2, 3, 4, 5).SubsetOf(a) {
		t.Error("bigger set subset of smaller")
	}
}

func TestString(t *testing.T) {
	if got := OfStrings("b2", "b1").String(); got != "b1,b2" {
		t.Errorf("String = %q", got)
	}
	if got := OfStrings("only").String(); got != "only" {
		t.Errorf("String single = %q", got)
	}
}

func TestLargeSortPath(t *testing.T) {
	// force the quicksort path (> 12 elements) and verify order
	rng := rand.New(rand.NewSource(1))
	var atoms []value.Atom
	for i := 0; i < 200; i++ {
		atoms = append(atoms, value.NewInt(int64(rng.Intn(80))))
	}
	s := New(atoms...)
	for i := 1; i < s.Len(); i++ {
		if value.Compare(s.At(i-1), s.At(i)) >= 0 {
			t.Fatalf("not strictly sorted at %d", i)
		}
	}
}

func randSet(rng *rand.Rand) Set {
	n := rng.Intn(8)
	var atoms []value.Atom
	for i := 0; i < n; i++ {
		atoms = append(atoms, value.NewInt(int64(rng.Intn(10))))
	}
	return New(atoms...)
}

// Property tests on set algebra laws.
func TestSetAlgebraProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randSet(rng), randSet(rng), randSet(rng)
		// commutativity
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		// associativity
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		// absorption: a ∪ (a ∩ b) == a
		if !a.Union(a.Intersect(b)).Equal(a) {
			return false
		}
		// diff laws: (a\b) ∩ b == ∅ ; (a\b) ∪ (a∩b) == a
		if !a.Diff(b).Intersect(b).IsEmpty() {
			return false
		}
		if !a.Diff(b).Union(a.Intersect(b)).Equal(a) {
			return false
		}
		// subset consistency
		if a.Intersect(b).SubsetOf(a) != true {
			return false
		}
		// hash/equality coherence
		if a.Equal(b) && a.Hash() != b.Hash() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: union of a set with a singleton then removing it restores
// the set when the element was absent (decomposition/composition dual).
func TestAddRemoveRoundTrip(t *testing.T) {
	f := func(seed int64, v int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSet(rng)
		a := value.NewInt(v%10 + 100) // guaranteed absent (base range 0..9)
		return s.Add(a).Remove(a).Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
