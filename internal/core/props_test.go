package core

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
)

func TestCardinalityString(t *testing.T) {
	want := map[Cardinality]string{OneOne: "1:1", NOne: "n:1", OneN: "1:n", MN: "m:n"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if Cardinality(9).String() != "card(9)" {
		t.Error("unknown cardinality string")
	}
}

func TestCardinalityAtMost(t *testing.T) {
	cases := []struct {
		c, d Cardinality
		want bool
	}{
		{OneOne, OneOne, true},
		{OneOne, OneN, true},
		{OneOne, NOne, true},
		{OneOne, MN, true},
		{OneN, MN, true},
		{NOne, MN, true},
		{OneN, NOne, false},
		{NOne, OneN, false},
		{MN, OneN, false},
		{OneN, OneOne, false},
	}
	for _, c := range cases {
		if got := c.c.AtMost(c.d); got != c.want {
			t.Errorf("%v.AtMost(%v) = %v", c.c, c.d, got)
		}
	}
}

func TestAttrCardinality(t *testing.T) {
	s := schema.MustOf("A", "B")
	// A values unique+singleton (1:1); B value b1 shared across tuples,
	// singleton (1:n).
	r := MustFromTuples(s, []tuple.Tuple{
		TupleOfSets([]string{"a1"}, []string{"b1"}),
		TupleOfSets([]string{"a2"}, []string{"b1"}),
	})
	if got := r.AttrCardinality(0); got != OneOne {
		t.Errorf("A = %v, want 1:1", got)
	}
	if got := r.AttrCardinality(1); got != OneN {
		t.Errorf("B = %v, want 1:n", got)
	}
	// grouped, unique values: n:1
	r2 := MustFromTuples(s, []tuple.Tuple{
		TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
		TupleOfSets([]string{"a3"}, []string{"b2"}),
	})
	if got := r2.AttrCardinality(0); got != NOne {
		t.Errorf("A = %v, want n:1", got)
	}
	// grouped and repeating: m:n
	r3 := MustFromTuples(s, []tuple.Tuple{
		TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
		TupleOfSets([]string{"a2"}, []string{"b2"}),
	})
	if got := r3.AttrCardinality(0); got != MN {
		t.Errorf("A = %v, want m:n", got)
	}
	cards := r3.Cardinalities()
	if len(cards) != 2 || cards[0] != MN {
		t.Errorf("Cardinalities = %v", cards)
	}
}

func TestValueCardinality(t *testing.T) {
	s := schema.MustOf("A", "B")
	r := MustFromTuples(s, []tuple.Tuple{
		TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
		TupleOfSets([]string{"a2"}, []string{"b2"}),
		TupleOfSets([]string{"a3"}, []string{"b1"}),
	})
	aIdx, bIdx := 0, 1
	// a1 appears once, inside a compound component: n:1
	if got := r.ValueCardinality(aIdx, value.NewString("a1")); got != NOne {
		t.Errorf("a1 = %v, want n:1", got)
	}
	// a2 appears in two tuples, once grouped: m:n
	if got := r.ValueCardinality(aIdx, value.NewString("a2")); got != MN {
		t.Errorf("a2 = %v, want m:n", got)
	}
	// a3 appears once as a singleton: 1:1
	if got := r.ValueCardinality(aIdx, value.NewString("a3")); got != OneOne {
		t.Errorf("a3 = %v, want 1:1", got)
	}
	// b1 appears in two tuples, always singleton: 1:n
	if got := r.ValueCardinality(bIdx, value.NewString("b1")); got != OneN {
		t.Errorf("b1 = %v, want 1:n", got)
	}
	// absent value: 1:1 (degenerate)
	if got := r.ValueCardinality(aIdx, value.NewString("zz")); got != OneOne {
		t.Errorf("absent = %v", got)
	}
	// attribute-level class is the join of per-value classes
	if r.AttrCardinality(aIdx) != MN {
		t.Errorf("attr A = %v", r.AttrCardinality(aIdx))
	}
}

func TestFixedOnExample1(t *testing.T) {
	// The paper: "In Example 1, R is not fixed on any domain. However,
	// R1 is fixed on A and R2 on B."
	r := example1Relation()
	if r.FixedOn(schema.NewAttrSet("A")) || r.FixedOn(schema.NewAttrSet("B")) {
		t.Error("flat Example-1 R must not be fixed on A or B")
	}
	r1 := MustFromTuples(r.Schema(), []tuple.Tuple{
		TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
		TupleOfSets([]string{"a2", "a3"}, []string{"b2"}),
	})
	// NOTE the paper's claim is about value combinations: a2 appears in
	// both tuples of R1, so R1 is fixed on B, not on A; the paper's
	// sentence has the attributes transposed relative to its own
	// Definition 7 (a2 occurs in both A-components). Verify per the
	// definition.
	if r1.FixedOn(schema.NewAttrSet("A")) {
		t.Error("R1 has a2 in both A-components; not fixed on A per Def. 7")
	}
	if !r1.FixedOn(schema.NewAttrSet("B")) {
		t.Error("R1 must be fixed on B (b1, b2 each in one tuple)")
	}
	r2 := MustFromTuples(r.Schema(), []tuple.Tuple{
		TupleOfSets([]string{"a1"}, []string{"b1"}),
		TupleOfSets([]string{"a2"}, []string{"b1", "b2"}),
		TupleOfSets([]string{"a3"}, []string{"b2"}),
	})
	if r2.FixedOn(schema.NewAttrSet("B")) {
		t.Error("R2 has b1 (and b2) spanning two tuples; not fixed on B")
	}
	if !r2.FixedOn(schema.NewAttrSet("A")) {
		t.Error("R2 must be fixed on A")
	}
}

func TestFixedOnMultiAttribute(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	r := MustFromTuples(s, []tuple.Tuple{
		TupleOfSets([]string{"a1"}, []string{"b1"}, []string{"c1", "c2"}),
		TupleOfSets([]string{"a1"}, []string{"b2"}, []string{"c1"}),
	})
	if r.FixedOn(schema.NewAttrSet("A")) {
		t.Error("a1 in both tuples")
	}
	if !r.FixedOn(schema.NewAttrSet("A", "B")) {
		t.Error("(A,B) combinations are unique")
	}
	if !r.FixedOn(schema.NewAttrSet("B")) {
		t.Error("B values unique per tuple")
	}
}

func TestFixedOnEdgeCases(t *testing.T) {
	s := schema.MustOf("A")
	r := NewRelation(s)
	if !r.FixedOn(schema.NewAttrSet("A")) {
		t.Error("empty relation fixed on everything")
	}
	if !r.FixedOn(schema.NewAttrSet()) {
		t.Error("empty relation fixed on empty set")
	}
	r.Add(TupleOfSets([]string{"x"}))
	if !r.FixedOn(schema.NewAttrSet()) {
		t.Error("single tuple fixed on empty set")
	}
	r.Add(TupleOfSets([]string{"y"}))
	if r.FixedOn(schema.NewAttrSet()) {
		t.Error("two tuples cannot be fixed on empty set")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown attribute should panic")
		}
	}()
	r.FixedOn(schema.NewAttrSet("Z"))
}

func TestFixedDomainsAndMaxFixedSet(t *testing.T) {
	r2 := MustFromTuples(schema.MustOf("A", "B"), []tuple.Tuple{
		TupleOfSets([]string{"a1"}, []string{"b1"}),
		TupleOfSets([]string{"a2"}, []string{"b1", "b2"}),
		TupleOfSets([]string{"a3"}, []string{"b2"}),
	})
	fd := r2.FixedDomains()
	if len(fd) != 1 || fd[0] != "A" {
		t.Errorf("FixedDomains = %v", fd)
	}
	mf := r2.MaxFixedSet()
	if !mf.Equal(schema.NewAttrSet("A")) {
		t.Errorf("MaxFixedSet = %v", mf)
	}
	// a relation fixed on no single attribute but on the pair
	r := MustFromTuples(schema.MustOf("A", "B"), []tuple.Tuple{
		TupleOfSets([]string{"a1"}, []string{"b1"}),
		TupleOfSets([]string{"a1"}, []string{"b2"}),
		TupleOfSets([]string{"a2"}, []string{"b1"}),
	})
	if len(r.FixedDomains()) != 0 {
		t.Errorf("FixedDomains = %v, want none", r.FixedDomains())
	}
	if !r.MaxFixedSet().Equal(schema.NewAttrSet("A", "B")) {
		t.Errorf("MaxFixedSet = %v", r.MaxFixedSet())
	}
}

func TestTheorem5FixednessOfCanonicalForms(t *testing.T) {
	// Theorem 5: V_P(R) is fixed on U−Ei for (at least) the last-nested
	// attribute; more precisely the canonical form is fixed on the set
	// of all attributes except the first-nested one. Verify the
	// concrete guarantee: after nesting P[0], the relation is fixed on
	// U − P[0], and successive nests preserve fixedness established on
	// the not-yet-nested remainder.
	rng := rand.New(rand.NewSource(7))
	s := schema.MustOf("A", "B", "C", "D")
	for trial := 0; trial < 25; trial++ {
		r := randomFlatRelation(rng, s, 4+rng.Intn(16), 3)
		for _, p := range []schema.Permutation{
			schema.IdentityPerm(4),
			schema.MustPermOf(s, "D", "B", "A", "C"),
			schema.MustPermOf(s, "C", "D", "B", "A"),
		} {
			c, _ := r.Canonical(p)
			rest := schema.NewAttrSet()
			for _, i := range p[1:] {
				rest.Add(s.Attr(i).Name)
			}
			if !c.FixedOn(rest) {
				t.Fatalf("trial %d perm %v: canonical not fixed on %v:\n%v", trial, p, rest, c)
			}
			if rest.Len() > 4-1 {
				t.Fatal("fixed set exceeds n-1 domains")
			}
		}
	}
}

func TestIsCanonicalForExample1(t *testing.T) {
	r := example1Relation()
	r1, _ := r.Nest(0) // νA then nothing more: check both orders
	r1b, _ := r1.Nest(1)
	p := schema.MustPermOf(r.Schema(), "A", "B")
	if !r1b.IsCanonicalFor(p) {
		t.Error("V_AB result not recognized as canonical for AB")
	}
	if perm, ok := r1b.IsCanonical(); !ok {
		t.Error("IsCanonical failed on canonical relation")
	} else if perm[0] != 0 {
		t.Errorf("unexpected permutation %v", perm)
	}
	// The paper's R2 from Example 1 is irreducible and equals νB(R), so
	// it is canonical for permutation (B,A).
	r2 := MustFromTuples(r.Schema(), []tuple.Tuple{
		TupleOfSets([]string{"a1"}, []string{"b1"}),
		TupleOfSets([]string{"a2"}, []string{"b1", "b2"}),
		TupleOfSets([]string{"a3"}, []string{"b2"}),
	})
	if !r2.IsCanonicalFor(schema.MustPermOf(r.Schema(), "B", "A")) {
		t.Error("R2 should be canonical for (B,A)")
	}
	if r2.IsCanonicalFor(schema.MustPermOf(r.Schema(), "A", "B")) {
		t.Error("R2 must not be canonical for (A,B)")
	}
}
