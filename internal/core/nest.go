package core

import (
	"fmt"

	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/vset"
)

// Nest implements the nest operation ν_Ei (Definition 4): successive
// compositions over attribute i applied as many times as possible.
// Theorem 2 guarantees the result is independent of the order in which
// tuple pairs are composed, so Nest groups tuples by set-equality of
// the remaining components (hash grouping) and unions the i-th
// components inside each group — an O(m) realization of the O(m²)
// pairwise definition (NestPairwise provides the literal one).
//
// It returns the nested relation and the number of compositions
// performed (group size − 1 summed over groups), the cost unit of the
// paper's complexity analysis.
func (r *Relation) Nest(i int) (*Relation, int) {
	if i < 0 || i >= r.sch.Degree() {
		panic(fmt.Sprintf("core: Nest attribute %d out of range", i))
	}
	type group struct {
		first tuple.Tuple
		set   vset.Set
		size  int
	}
	order := make([]string, 0, len(r.tuples))
	groups := make(map[string]*group, len(r.tuples))
	for _, t := range r.tuples {
		k := t.KeyExcept(i)
		g, ok := groups[k]
		if !ok {
			groups[k] = &group{first: t, set: t.Set(i), size: 1}
			order = append(order, k)
			continue
		}
		g.set = g.set.Union(t.Set(i))
		g.size++
	}
	out := NewRelation(r.sch)
	comps := 0
	for _, k := range order {
		g := groups[k]
		out.Add(g.first.WithSet(i, g.set))
		comps += g.size - 1
	}
	return out, comps
}

// NestPairwise is the literal Definition-4 nest: repeatedly scan for a
// composable pair over attribute i and compose it, until no pair
// remains. pairOrder selects which pair to compose next given the
// current tuple list; nil means first-found. It exists to validate
// Theorem 2 (the result must equal Nest regardless of order) and as the
// ablation baseline for the hash-grouping optimization.
func (r *Relation) NestPairwise(i int, pairOrder func(ts []tuple.Tuple) (int, int, bool)) (*Relation, int) {
	ts := r.Tuples()
	comps := 0
	pick := pairOrder
	if pick == nil {
		pick = func(ts []tuple.Tuple) (int, int, bool) {
			for a := 0; a < len(ts); a++ {
				for b := a + 1; b < len(ts); b++ {
					if ts[a].AgreeExcept(ts[b], i) {
						return a, b, true
					}
				}
			}
			return 0, 0, false
		}
	}
	for {
		a, b, ok := pick(ts)
		if !ok {
			break
		}
		merged, ok := tuple.Compose(ts[a], ts[b], i)
		if !ok {
			panic("core: pairOrder returned non-composable pair")
		}
		comps++
		// replace a with merged, delete b
		ts[a] = merged
		ts = append(ts[:b], ts[b+1:]...)
	}
	return MustFromTuples(r.sch, ts), comps
}

// Canonical computes the canonical form V_P(R) (Definition 5): nest
// over p[0] first, then p[1], and so on. The paper's Example 2 fixes
// this reading: V_ABC(R3) nests A first and yields the printed R5.
// It returns the canonical relation and the total composition count.
func (r *Relation) Canonical(p schema.Permutation) (*Relation, int) {
	if !p.Valid(r.sch) {
		panic(fmt.Sprintf("core: invalid permutation %v for schema %v", p, r.sch))
	}
	cur := r
	total := 0
	for _, i := range p {
		var c int
		cur, c = cur.Nest(i)
		total += c
	}
	return cur, total
}

// CanonicalFromFlats is the common pipeline: expand to R* first, then
// build V_P(R*). Starting from R* makes the result depend only on the
// information content (Theorem 2), not on r's current grouping.
func (r *Relation) CanonicalFromFlats(p schema.Permutation) (*Relation, int) {
	return r.ExpandRelation().Canonical(p)
}

// Unnest fully unnests attribute i: every tuple with an m-element i-th
// component is replaced by m tuples with singleton components — the
// exhaustive application of decomposition u on that attribute
// (Jaeschke–Schek's μ operator). It is the inverse of Nest only on
// relations where no information was grouped on other attributes.
func (r *Relation) Unnest(i int) *Relation {
	if i < 0 || i >= r.sch.Degree() {
		panic(fmt.Sprintf("core: Unnest attribute %d out of range", i))
	}
	out := NewRelation(r.sch)
	for _, t := range r.tuples {
		for _, a := range t.Set(i).Atoms() {
			out.Add(t.WithSet(i, vset.Single(a)))
		}
	}
	return out
}

// ComposablePair reports whether any composition applies to the
// relation, returning one applicable (tuple index, tuple index,
// attribute) triple.
func (r *Relation) ComposablePair() (a, b, attr int, ok bool) {
	// Bucket tuples by KeyExcept for each attribute; a bucket with two
	// members is a composable pair. This keeps IsIrreducible O(n·m)
	// instead of O(n·m²).
	for i := 0; i < r.sch.Degree(); i++ {
		buckets := make(map[string]int, len(r.tuples))
		for j, t := range r.tuples {
			k := t.KeyExcept(i)
			if prev, dup := buckets[k]; dup {
				return prev, j, i, true
			}
			buckets[k] = j
		}
	}
	return 0, 0, 0, false
}

// IsIrreducible reports whether no composition applies (Definition 3).
func (r *Relation) IsIrreducible() bool {
	_, _, _, ok := r.ComposablePair()
	return !ok
}
