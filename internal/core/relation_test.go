package core

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/tuple"
)

func flats(rows ...[]string) []tuple.Flat {
	out := make([]tuple.Flat, len(rows))
	for i, r := range rows {
		out[i] = tuple.FlatOfStrings(r...)
	}
	return out
}

func TestFromFlatsDedup(t *testing.T) {
	s := schema.MustOf("A", "B")
	r := MustFromFlats(s, flats([]string{"a", "b"}, []string{"a", "b"}, []string{"a", "c"}))
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2 (dedup)", r.Len())
	}
	if !r.IsFlat() {
		t.Error("FromFlats result not flat")
	}
}

func TestFromFlatsDegreeMismatch(t *testing.T) {
	s := schema.MustOf("A", "B")
	if _, err := FromFlats(s, flats([]string{"a"})); err == nil {
		t.Error("degree mismatch accepted")
	}
	if _, err := FromTuples(s, []tuple.Tuple{TupleOfSets([]string{"a"})}); err == nil {
		t.Error("tuple degree mismatch accepted")
	}
}

func TestAddRemoveHas(t *testing.T) {
	s := schema.MustOf("A", "B")
	r := NewRelation(s)
	t1 := TupleOfSets([]string{"a1", "a2"}, []string{"b1"})
	t2 := TupleOfSets([]string{"a3"}, []string{"b2"})
	if !r.Add(t1) || !r.Add(t2) {
		t.Fatal("Add returned false")
	}
	if r.Add(t1) {
		t.Error("duplicate Add returned true")
	}
	if r.Len() != 2 || !r.Has(t1) {
		t.Error("Has/Len broken")
	}
	if !r.Remove(t1) {
		t.Error("Remove returned false")
	}
	if r.Has(t1) || r.Len() != 1 {
		t.Error("Remove did not remove")
	}
	if r.Remove(t1) {
		t.Error("double Remove returned true")
	}
	// index consistency after removal
	if !r.Has(t2) {
		t.Error("index corrupted by Remove")
	}
}

func TestRemoveMiddleKeepsIndex(t *testing.T) {
	s := schema.MustOf("A")
	r := NewRelation(s)
	ts := []tuple.Tuple{
		TupleOfSets([]string{"a"}),
		TupleOfSets([]string{"b"}),
		TupleOfSets([]string{"c"}),
	}
	for _, x := range ts {
		r.Add(x)
	}
	r.Remove(ts[1])
	if !r.Has(ts[0]) || !r.Has(ts[2]) || r.Has(ts[1]) {
		t.Error("index wrong after middle removal")
	}
	if r.Tuple(0).Key() != ts[0].Key() || r.Tuple(1).Key() != ts[2].Key() {
		t.Error("order wrong after middle removal")
	}
}

func TestExpandTheorem1(t *testing.T) {
	// Theorem 1: an NFR has one and only one R*. Two different NFRs of
	// the same 1NF relation must expand to the identical flat set.
	s := schema.MustOf("A", "B")
	flat := flats(
		[]string{"a1", "b1"}, []string{"a2", "b1"},
		[]string{"a2", "b2"}, []string{"a3", "b2"},
	)
	r1nf := MustFromFlats(s, flat)
	// grouping 1: {a1,a2|b1}, {a2,a3|b2}
	g1 := MustFromTuples(s, []tuple.Tuple{
		TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
		TupleOfSets([]string{"a2", "a3"}, []string{"b2"}),
	})
	// grouping 2: {a1|b1}, {a2|b1,b2}, {a3|b2}
	g2 := MustFromTuples(s, []tuple.Tuple{
		TupleOfSets([]string{"a1"}, []string{"b1"}),
		TupleOfSets([]string{"a2"}, []string{"b1", "b2"}),
		TupleOfSets([]string{"a3"}, []string{"b2"}),
	})
	if !g1.EquivalentTo(r1nf) || !g2.EquivalentTo(r1nf) || !g1.EquivalentTo(g2) {
		t.Fatal("equivalent NFRs not recognized")
	}
	e1, e2 := g1.Expand(), g2.Expand()
	if len(e1) != 4 || len(e2) != 4 {
		t.Fatalf("expansion sizes: %d, %d", len(e1), len(e2))
	}
	for i := range e1 {
		if !e1[i].Equal(e2[i]) {
			t.Errorf("expansions differ at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
	if g1.ExpansionSize() != 4 {
		t.Errorf("ExpansionSize = %d", g1.ExpansionSize())
	}
}

func TestEquivalentToNegative(t *testing.T) {
	s := schema.MustOf("A", "B")
	r1 := MustFromFlats(s, flats([]string{"a", "b"}))
	r2 := MustFromFlats(s, flats([]string{"a", "c"}))
	if r1.EquivalentTo(r2) {
		t.Error("different relations equivalent")
	}
	r3 := MustFromFlats(schema.MustOf("A", "C"), flats([]string{"a", "b"}))
	if r1.EquivalentTo(r3) {
		t.Error("different schemas equivalent")
	}
	// same size, different content
	r4 := MustFromFlats(s, flats([]string{"a", "b"}, []string{"x", "y"}))
	r5 := MustFromFlats(s, flats([]string{"a", "b"}, []string{"x", "z"}))
	if r4.EquivalentTo(r5) {
		t.Error("same-size different relations equivalent")
	}
}

func TestContainsFlat(t *testing.T) {
	s := schema.MustOf("A", "B")
	r := MustFromTuples(s, []tuple.Tuple{
		TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
	})
	cover, ok := r.ContainsFlat(tuple.FlatOfStrings("a2", "b1"))
	if !ok {
		t.Fatal("ContainsFlat missed covered tuple")
	}
	if !cover.Equal(r.Tuple(0)) {
		t.Error("wrong covering tuple")
	}
	if _, ok := r.ContainsFlat(tuple.FlatOfStrings("a9", "b1")); ok {
		t.Error("ContainsFlat false positive")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := schema.MustOf("A")
	r := MustFromFlats(s, flats([]string{"x"}))
	c := r.Clone()
	c.Add(TupleOfSets([]string{"y"}))
	if r.Len() != 1 || c.Len() != 2 {
		t.Error("Clone not independent")
	}
}

func TestCheckDisjoint(t *testing.T) {
	s := schema.MustOf("A", "B")
	good := MustFromTuples(s, []tuple.Tuple{
		TupleOfSets([]string{"a1"}, []string{"b1", "b2"}),
		TupleOfSets([]string{"a2"}, []string{"b1"}),
	})
	if _, _, ok := good.CheckDisjoint(); !ok {
		t.Error("disjoint relation flagged")
	}
	bad := MustFromTuples(s, []tuple.Tuple{
		TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
		TupleOfSets([]string{"a2"}, []string{"b1", "b2"}),
	})
	if i, j, ok := bad.CheckDisjoint(); ok {
		t.Error("overlap not detected")
	} else if i != 0 || j != 1 {
		t.Errorf("overlap pair = %d,%d", i, j)
	}
}

func TestKeyOrderIndependent(t *testing.T) {
	s := schema.MustOf("A")
	r1 := NewRelation(s)
	r1.Add(TupleOfSets([]string{"x"}))
	r1.Add(TupleOfSets([]string{"y"}))
	r2 := NewRelation(s)
	r2.Add(TupleOfSets([]string{"y"}))
	r2.Add(TupleOfSets([]string{"x"}))
	if r1.Key() != r2.Key() {
		t.Error("Key depends on insertion order")
	}
	if !r1.Equal(r2) {
		t.Error("Equal depends on insertion order")
	}
}

func TestStringAndSort(t *testing.T) {
	s := schema.MustOf("A", "B")
	r := NewRelation(s)
	r.Add(TupleOfSets([]string{"z"}, []string{"b"}))
	r.Add(TupleOfSets([]string{"a"}, []string{"b"}))
	r.SortTuples()
	out := r.String()
	lines := strings.Split(out, "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "[A(a)") {
		t.Errorf("String after sort = %q", out)
	}
	if !r.Has(TupleOfSets([]string{"z"}, []string{"b"})) {
		t.Error("index broken after SortTuples")
	}
}
