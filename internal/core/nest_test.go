package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/vset"
)

// example1Relation returns the paper's Example-1 1NF relation over A,B.
func example1Relation() *Relation {
	s := schema.MustOf("A", "B")
	return MustFromFlats(s, flats(
		[]string{"a1", "b1"},
		[]string{"a2", "b1"},
		[]string{"a2", "b2"},
		[]string{"a3", "b2"},
	))
}

// example2Relation returns the paper's Example-2 1NF relation over
// A,B,C (reconstructed from the printed irreducible form R4, whose
// expansion the OCR-garbled tuple list must equal).
func example2Relation() *Relation {
	s := schema.MustOf("A", "B", "C")
	return MustFromFlats(s, flats(
		[]string{"a1", "b1", "c2"},
		[]string{"a1", "b2", "c2"},
		[]string{"a1", "b2", "c1"},
		[]string{"a2", "b1", "c1"},
		[]string{"a2", "b1", "c2"},
		[]string{"a2", "b2", "c1"},
	))
}

func TestNestExample1(t *testing.T) {
	// νA on Example 1 must give R1 = {[A(a1,a2) B(b1)], [A(a2,a3) B(b2)]}.
	r := example1Relation()
	r1, comps := r.Nest(0)
	if comps != 2 {
		t.Errorf("compositions = %d, want 2", comps)
	}
	want := MustFromTuples(r.Schema(), []tuple.Tuple{
		TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
		TupleOfSets([]string{"a2", "a3"}, []string{"b2"}),
	})
	if !r1.Equal(want) {
		t.Errorf("νA =\n%v\nwant\n%v", r1, want)
	}
	if !r1.EquivalentTo(r) {
		t.Error("nest changed information content")
	}
	if !r1.IsIrreducible() {
		t.Error("R1 should be irreducible")
	}
}

func TestNestPreservesEquivalenceAndIsIdempotent(t *testing.T) {
	r := example2Relation()
	for i := 0; i < 3; i++ {
		n1, _ := r.Nest(i)
		if !n1.EquivalentTo(r) {
			t.Errorf("Nest(%d) not lossless", i)
		}
		n2, c2 := n1.Nest(i)
		if c2 != 0 || !n2.Equal(n1) {
			t.Errorf("Nest(%d) not idempotent", i)
		}
	}
}

func TestNestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	example1Relation().Nest(7)
}

func TestUnnestInvertsNestOnFlat(t *testing.T) {
	r := example1Relation()
	n, _ := r.Nest(0)
	back := n.Unnest(0)
	if !back.Equal(r) {
		t.Errorf("Unnest(Nest(R)) != R:\n%v", back)
	}
}

func TestUnnestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	example1Relation().Unnest(-1)
}

func TestCanonicalExample2(t *testing.T) {
	// The paper: applying V_ABC to R3 yields R5 with the four printed
	// tuples; by symmetry every canonical form has 4 tuples, while the
	// irreducible R4 has only 3.
	r3 := example2Relation()
	p := schema.MustPermOf(r3.Schema(), "A", "B", "C")
	r5, _ := r3.Canonical(p)
	want := MustFromTuples(r3.Schema(), []tuple.Tuple{
		TupleOfSets([]string{"a1", "a2"}, []string{"b1"}, []string{"c2"}),
		TupleOfSets([]string{"a1", "a2"}, []string{"b2"}, []string{"c1"}),
		TupleOfSets([]string{"a1"}, []string{"b2"}, []string{"c2"}),
		TupleOfSets([]string{"a2"}, []string{"b1"}, []string{"c1"}),
	})
	if !r5.Equal(want) {
		t.Errorf("V_ABC(R3) =\n%v\nwant\n%v", r5, want)
	}
	// every canonical form has exactly 4 tuples
	for _, perm := range schema.AllPermutations(3) {
		c, _ := r3.Canonical(perm)
		if c.Len() != 4 {
			t.Errorf("canonical %v has %d tuples, want 4", perm, c.Len())
		}
		if !c.IsIrreducible() {
			t.Errorf("canonical %v not irreducible", perm)
		}
		if !c.EquivalentTo(r3) {
			t.Errorf("canonical %v lost information", perm)
		}
	}
	// the paper's R4: an irreducible form with only 3 tuples
	r4 := MustFromTuples(r3.Schema(), []tuple.Tuple{
		TupleOfSets([]string{"a1"}, []string{"b1", "b2"}, []string{"c2"}),
		TupleOfSets([]string{"a2"}, []string{"b1"}, []string{"c1", "c2"}),
		TupleOfSets([]string{"a1", "a2"}, []string{"b2"}, []string{"c1"}),
	})
	if !r4.IsIrreducible() {
		t.Error("R4 should be irreducible")
	}
	if !r4.EquivalentTo(r3) {
		t.Error("R4 must be information-equivalent to R3")
	}
	if _, isCanon := r4.IsCanonical(); isCanon {
		t.Error("R4 must not be canonical for any permutation")
	}
}

func TestCanonicalInvalidPermPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	example1Relation().Canonical(schema.Permutation{0, 0})
}

func TestTheorem2NestPairwiseOrderIndependence(t *testing.T) {
	// Theorem 2: the nest result is independent of the order of pair
	// composition. Run the literal pairwise nest with random pair
	// selection and compare against the hash-grouped Nest.
	r := example2Relation()
	for attr := 0; attr < 3; attr++ {
		wantR, wantC := r.Nest(attr)
		for seed := int64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewSource(seed))
			got, gotC := r.NestPairwise(attr, func(ts []tuple.Tuple) (int, int, bool) {
				type pr struct{ a, b int }
				var prs []pr
				for a := 0; a < len(ts); a++ {
					for b := a + 1; b < len(ts); b++ {
						if ts[a].AgreeExcept(ts[b], attr) {
							prs = append(prs, pr{a, b})
						}
					}
				}
				if len(prs) == 0 {
					return 0, 0, false
				}
				p := prs[rng.Intn(len(prs))]
				return p.a, p.b, true
			})
			if !got.Equal(wantR) {
				t.Fatalf("attr %d seed %d: pairwise nest differs", attr, seed)
			}
			if gotC != wantC {
				t.Fatalf("attr %d seed %d: composition counts differ (%d vs %d)", attr, seed, gotC, wantC)
			}
		}
	}
}

func TestNestPairwiseDefaultOrder(t *testing.T) {
	r := example1Relation()
	got, comps := r.NestPairwise(0, nil)
	want, wantC := r.Nest(0)
	if !got.Equal(want) || comps != wantC {
		t.Errorf("default pairwise differs: %v (%d comps)", got, comps)
	}
}

func TestComposablePairAndIrreducible(t *testing.T) {
	r := example1Relation()
	if r.IsIrreducible() {
		t.Error("flat Example-1 relation must be reducible")
	}
	a, b, attr, ok := r.ComposablePair()
	if !ok {
		t.Fatal("no composable pair found")
	}
	if _, ok := tuple.Compose(r.Tuple(a), r.Tuple(b), attr); !ok {
		t.Error("reported pair not composable")
	}
	n, _ := r.Nest(0)
	n2, _ := n.Nest(1)
	if !n2.IsIrreducible() {
		t.Error("fully nested Example 1 should be irreducible")
	}
}

func TestIrreducibleGreedyReachesExample1Forms(t *testing.T) {
	// Example 1: both R1 (2 tuples) and R2 (3 tuples) are reachable
	// irreducible forms. Random greedy runs should find both.
	r := example1Relation()
	sizes := map[int]bool{}
	for seed := int64(0); seed < 60; seed++ {
		ir, comps := r.IrreducibleGreedy(rand.New(rand.NewSource(seed)))
		if !ir.IsIrreducible() {
			t.Fatal("greedy result reducible")
		}
		if !ir.EquivalentTo(r) {
			t.Fatal("greedy lost information")
		}
		if comps != r.Len()-ir.Len() {
			t.Fatalf("composition count %d inconsistent with size delta", comps)
		}
		sizes[ir.Len()] = true
	}
	if !sizes[2] || !sizes[3] {
		t.Errorf("expected both 2- and 3-tuple irreducible forms, got %v", sizes)
	}
	// deterministic variant
	det, _ := r.IrreducibleGreedy(nil)
	if !det.IsIrreducible() {
		t.Error("deterministic greedy result reducible")
	}
}

func TestAllIrreducibleFormsExample1(t *testing.T) {
	r := example1Relation()
	forms, exhaustive := r.AllIrreducibleForms(0, 0)
	if !exhaustive {
		t.Fatal("tiny search not exhaustive")
	}
	// R1 (νA result), R2 (νB middle merge), and νB full nest
	// {[A(a1) B(b1)], [A(a2) B(b1,b2)], [A(a3) B(b2)]} — let's verify the
	// two the paper names are among them.
	r1 := MustFromTuples(r.Schema(), []tuple.Tuple{
		TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
		TupleOfSets([]string{"a2", "a3"}, []string{"b2"}),
	})
	r2 := MustFromTuples(r.Schema(), []tuple.Tuple{
		TupleOfSets([]string{"a1"}, []string{"b1"}),
		TupleOfSets([]string{"a2"}, []string{"b1", "b2"}),
		TupleOfSets([]string{"a3"}, []string{"b2"}),
	})
	var gotR1, gotR2 bool
	for _, f := range forms {
		if f.Equal(r1) {
			gotR1 = true
		}
		if f.Equal(r2) {
			gotR2 = true
		}
		if !f.IsIrreducible() || !f.EquivalentTo(r) {
			t.Error("enumerated form invalid")
		}
	}
	if !gotR1 || !gotR2 {
		t.Errorf("paper's R1/R2 not both enumerated (R1=%v R2=%v, %d forms)", gotR1, gotR2, len(forms))
	}
}

func TestMinimumIrreducibleExample2(t *testing.T) {
	r3 := example2Relation()
	res := r3.MinimumIrreducible(0)
	if !res.Exhaustive {
		t.Fatal("Example-2 search should be exhaustive")
	}
	if res.MinTuples != 3 {
		t.Errorf("minimum irreducible size = %d, want 3", res.MinTuples)
	}
	if !res.Best.IsIrreducible() || !res.Best.EquivalentTo(r3) {
		t.Error("best form invalid")
	}
	if res.StatesVisited <= 0 {
		t.Error("no states visited?")
	}
}

func TestMinimumIrreducibleCap(t *testing.T) {
	r3 := example2Relation()
	res := r3.MinimumIrreducible(2) // absurdly small cap
	if res.Exhaustive {
		t.Error("capped search claimed exhaustive")
	}
	if res.Best == nil {
		t.Error("capped search lost best")
	}
}

// randomFlatRelation builds a random 1NF relation with the given value
// universe per attribute.
func randomFlatRelation(rng *rand.Rand, s *schema.Schema, rows, universe int) *Relation {
	r := NewRelation(s)
	for i := 0; i < rows; i++ {
		f := make(tuple.Flat, s.Degree())
		for j := range f {
			f[j] = value.NewInt(int64(rng.Intn(universe)))
		}
		r.Add(tuple.FromFlat(f))
	}
	return r
}

// Property (Theorem 1 + Theorem 2): for random relations and random
// permutations, V_P(R) is irreducible, equivalent to R, and equal when
// computed from any equivalent regrouping of R.
func TestCanonicalProperties(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	f := func(seed int64, pi int) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomFlatRelation(rng, s, 3+rng.Intn(10), 4)
		perms := schema.AllPermutations(3)
		p := perms[abs(pi)%len(perms)]
		c1, _ := r.Canonical(p)
		if !c1.IsIrreducible() || !c1.EquivalentTo(r) {
			return false
		}
		// regroup r by a random greedy irreducible, then canonicalize
		// from flats: must give the identical relation.
		ir, _ := r.IrreducibleGreedy(rng)
		c2, _ := ir.CanonicalFromFlats(p)
		return c1.Equal(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Unnest-all recovers R* for any canonical form.
func TestUnnestAllRecoversFlat(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomFlatRelation(rng, s, 2+rng.Intn(12), 3)
		c, _ := r.Canonical(schema.IdentityPerm(3))
		u := c.Unnest(0).Unnest(1).Unnest(2)
		return u.Equal(r.ExpandRelation())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: nests preserve the disjoint-expansion invariant.
func TestNestKeepsDisjoint(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomFlatRelation(rng, s, 2+rng.Intn(15), 3)
		c, _ := r.Canonical(schema.MustPermOf(s, "B", "C", "A"))
		_, _, ok := c.CheckDisjoint()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// vset import is used by helper below to exercise WithSet paths in
// relation-level code.
var _ = vset.OfStrings
