// Package core implements the paper's primary contribution: NFR
// relations and the operations and properties defined on them —
// composition/decomposition at relation level, nest operations,
// canonical forms V_P (Definition 5), irreducible forms (Definition 3),
// fixedness (Definition 7) and the cardinality classification
// (Definition 6).
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/vset"
)

// Relation is an NFR: a duplicate-free set of NFR tuples over a schema.
// Tuples are kept in insertion order; a key index enforces set
// semantics. The paper restricts attention to NFRs derivable from a
// 1NF relation by compositions and decompositions, which implies the
// tuples' flat expansions are pairwise disjoint; Relation preserves
// that invariant under every exported operation but does not forbid
// callers from constructing overlapping tuples directly (CheckDisjoint
// verifies it).
type Relation struct {
	sch    *schema.Schema
	tuples []tuple.Tuple
	index  map[string]int // tuple.Key() -> position in tuples
}

// NewRelation returns an empty NFR over the schema.
func NewRelation(s *schema.Schema) *Relation {
	return &Relation{sch: s, index: make(map[string]int)}
}

// FromFlats builds the 1NF relation (all singleton components) holding
// the given flat tuples, deduplicated.
func FromFlats(s *schema.Schema, flats []tuple.Flat) (*Relation, error) {
	r := NewRelation(s)
	for _, f := range flats {
		if len(f) != s.Degree() {
			return nil, fmt.Errorf("core: flat tuple degree %d != schema degree %d", len(f), s.Degree())
		}
		r.Add(tuple.FromFlat(f))
	}
	return r, nil
}

// MustFromFlats is FromFlats but panics on error.
func MustFromFlats(s *schema.Schema, flats []tuple.Flat) *Relation {
	r, err := FromFlats(s, flats)
	if err != nil {
		panic(err)
	}
	return r
}

// FromTuples builds an NFR from prebuilt tuples (deduplicated).
func FromTuples(s *schema.Schema, ts []tuple.Tuple) (*Relation, error) {
	r := NewRelation(s)
	for _, t := range ts {
		if t.Degree() != s.Degree() {
			return nil, fmt.Errorf("core: tuple degree %d != schema degree %d", t.Degree(), s.Degree())
		}
		r.Add(t)
	}
	return r, nil
}

// MustFromTuples is FromTuples but panics on error.
func MustFromTuples(s *schema.Schema, ts []tuple.Tuple) *Relation {
	r, err := FromTuples(s, ts)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *schema.Schema { return r.sch }

// Len returns the number of NFR tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the i-th tuple in insertion order.
func (r *Relation) Tuple(i int) tuple.Tuple { return r.tuples[i] }

// Tuples returns a copy of the tuple list.
func (r *Relation) Tuples() []tuple.Tuple {
	out := make([]tuple.Tuple, len(r.tuples))
	copy(out, r.tuples)
	return out
}

// Add inserts a tuple if not already present; it reports whether the
// relation changed.
func (r *Relation) Add(t tuple.Tuple) bool {
	k := t.Key()
	if _, dup := r.index[k]; dup {
		return false
	}
	r.index[k] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	return true
}

// Remove deletes a tuple (by value) if present; it reports whether the
// relation changed. Order of remaining tuples is preserved.
func (r *Relation) Remove(t tuple.Tuple) bool {
	k := t.Key()
	i, ok := r.index[k]
	if !ok {
		return false
	}
	delete(r.index, k)
	copy(r.tuples[i:], r.tuples[i+1:])
	r.tuples = r.tuples[:len(r.tuples)-1]
	for j := i; j < len(r.tuples); j++ {
		r.index[r.tuples[j].Key()] = j
	}
	return true
}

// Has reports whether the exact tuple is present.
func (r *Relation) Has(t tuple.Tuple) bool {
	_, ok := r.index[t.Key()]
	return ok
}

// Clone returns an independent copy of the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.sch)
	out.tuples = make([]tuple.Tuple, len(r.tuples))
	copy(out.tuples, r.tuples)
	for k, v := range r.index {
		out.index[k] = v
	}
	return out
}

// IsFlat reports whether every tuple is flat (the relation is 1NF).
func (r *Relation) IsFlat() bool {
	for _, t := range r.tuples {
		if !t.IsFlat() {
			return false
		}
	}
	return true
}

// ExpansionSize returns |R*|: the total number of flat tuples denoted.
// Because expansions of tuples derived from a 1NF relation are
// pairwise disjoint, this is the plain sum of per-tuple expansion
// sizes.
func (r *Relation) ExpansionSize() int {
	n := 0
	for _, t := range r.tuples {
		n += t.ExpansionSize()
	}
	return n
}

// Expand computes R*, the unique underlying 1NF relation (Theorem 1),
// as a deduplicated, deterministically ordered slice of flat tuples.
func (r *Relation) Expand() []tuple.Flat {
	seen := make(map[string]bool)
	var out []tuple.Flat
	for _, t := range r.tuples {
		for _, f := range t.Expand() {
			k := f.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// ExpandRelation returns R* as a 1NF Relation.
func (r *Relation) ExpandRelation() *Relation {
	return MustFromFlats(r.sch, r.Expand())
}

// ContainsFlat reports whether flat tuple f is in R*, and if so which
// NFR tuple covers it. By expansion-disjointness at most one tuple
// covers f; if several do (caller-constructed overlap) the first in
// insertion order is returned.
func (r *Relation) ContainsFlat(f tuple.Flat) (tuple.Tuple, bool) {
	for _, t := range r.tuples {
		if t.ContainsFlat(f) {
			return t, true
		}
	}
	return tuple.Tuple{}, false
}

// EquivalentTo reports whether r and s denote the same 1NF relation
// (same R*), the paper's notion of information equivalence.
func (r *Relation) EquivalentTo(s *Relation) bool {
	if !r.sch.SameAttrSet(s.sch) {
		return false
	}
	if r.ExpansionSize() != s.ExpansionSize() {
		return false
	}
	keys := make(map[string]bool)
	for _, f := range r.Expand() {
		keys[f.Key()] = true
	}
	for _, f := range s.Expand() {
		if !keys[f.Key()] {
			return false
		}
	}
	return true
}

// Equal reports whether r and s contain exactly the same NFR tuples
// (set equality of tuple sets), regardless of order.
func (r *Relation) Equal(s *Relation) bool {
	if len(r.tuples) != len(s.tuples) {
		return false
	}
	for k := range r.index {
		if _, ok := s.index[k]; !ok {
			return false
		}
	}
	return true
}

// CheckDisjoint verifies the derivability invariant: the flat
// expansions of distinct tuples are pairwise disjoint. It returns the
// offending pair if any.
func (r *Relation) CheckDisjoint() (i, j int, ok bool) {
	for a := 0; a < len(r.tuples); a++ {
		for b := a + 1; b < len(r.tuples); b++ {
			if r.tuples[a].Overlaps(r.tuples[b]) {
				return a, b, false
			}
		}
	}
	return 0, 0, true
}

// Key returns a canonical string key of the relation's tuple set,
// independent of tuple order. Used for memoization in form searches.
func (r *Relation) Key() string {
	keys := make([]string, 0, len(r.tuples))
	for k := range r.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x1d")
}

// String renders the relation as a block of tuples in the paper's
// notation, in insertion order.
func (r *Relation) String() string {
	var b strings.Builder
	for i, t := range r.tuples {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.Render(r.sch))
	}
	return b.String()
}

// SortTuples orders the tuples canonically (by Key) in place; handy for
// deterministic output in tests and figure reproduction.
func (r *Relation) SortTuples() {
	sort.Slice(r.tuples, func(i, j int) bool {
		return r.tuples[i].Key() < r.tuples[j].Key()
	})
	for i, t := range r.tuples {
		r.index[t.Key()] = i
	}
}

// TupleOfSets is a convenience constructor for building NFR tuples from
// string sets; used heavily by tests and paper reproductions.
func TupleOfSets(components ...[]string) tuple.Tuple {
	sets := make([]vset.Set, len(components))
	for i, c := range components {
		sets[i] = vset.OfStrings(c...)
	}
	return tuple.MustNew(sets...)
}
