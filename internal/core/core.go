package core
