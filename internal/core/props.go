package core

import (
	"fmt"

	"repro/internal/schema"
	"repro/internal/value"
)

// Cardinality is the Definition-6 classification of an attribute's
// value-to-tuple correspondence in an NFR.
type Cardinality uint8

// The four Definition-6 classes. OneOne is the degenerate case of both
// NOne and OneN; MN is the general case. (The paper classifies per
// value; the attribute-level class reported here is the join over all
// values: "appears in more than one tuple" and/or "appears inside a
// compound component".)
const (
	OneOne Cardinality = iota // 1:1 — every value in exactly one tuple, always a singleton component
	NOne                      // n:1 — values confined to one tuple but grouped into compound components
	OneN                      // 1:n — values repeat across tuples but only as singleton components
	MN                        // m:n — values repeat across tuples and appear in compound components
)

// String renders the class in the paper's notation.
func (c Cardinality) String() string {
	switch c {
	case OneOne:
		return "1:1"
	case NOne:
		return "n:1"
	case OneN:
		return "1:n"
	case MN:
		return "m:n"
	default:
		return fmt.Sprintf("card(%d)", uint8(c))
	}
}

// AtMost reports whether c is a special case of d in the Definition-6
// hierarchy: 1:1 ⊑ n:1, 1:1 ⊑ 1:n, and everything ⊑ m:n. Theorem 3's
// "Ei:R' = 1:n" is checked as AtMost(OneN): the FD guarantees no
// grouping on Ei, while actual cross-tuple repetition depends on the
// data.
func (c Cardinality) AtMost(d Cardinality) bool {
	if c == d || d == MN {
		return true
	}
	return c == OneOne
}

// ValueCardinality classifies one value e of attribute i per the
// per-value reading of Definition 6: whether e appears in more than
// one tuple (the :n side) and whether it appears inside a compound
// component (the m:/n: side). It reports OneOne when e does not occur
// at all.
func (r *Relation) ValueCardinality(i int, e value.Atom) Cardinality {
	occurrences := 0
	grouped := false
	for _, t := range r.tuples {
		s := t.Set(i)
		if !s.Contains(e) {
			continue
		}
		occurrences++
		if s.Len() >= 2 {
			grouped = true
		}
	}
	switch {
	case occurrences <= 1 && !grouped:
		return OneOne
	case occurrences <= 1 && grouped:
		return NOne
	case occurrences > 1 && !grouped:
		return OneN
	default:
		return MN
	}
}

// AttrCardinality classifies attribute i of r per Definition 6.
func (r *Relation) AttrCardinality(i int) Cardinality {
	multi := false   // some value appears in more than one tuple
	grouped := false // some value appears in a component of size >= 2
	seen := make(map[string]bool)
	for _, t := range r.tuples {
		s := t.Set(i)
		if s.Len() >= 2 {
			grouped = true
		}
		for _, a := range s.Atoms() {
			k := a.String()
			if seen[k] {
				multi = true
			}
			seen[k] = true
		}
	}
	switch {
	case !multi && !grouped:
		return OneOne
	case !multi && grouped:
		return NOne
	case multi && !grouped:
		return OneN
	default:
		return MN
	}
}

// Cardinalities returns the Definition-6 class of every attribute.
func (r *Relation) Cardinalities() []Cardinality {
	out := make([]Cardinality, r.sch.Degree())
	for i := range out {
		out[i] = r.AttrCardinality(i)
	}
	return out
}

// FixedOn implements Definition 7: r is fixed on the attribute set F
// when every combination of single values f1..fk (fi drawn from the
// Fi-component) identifies at most one tuple. Equivalently: no two
// distinct tuples have pairwise-intersecting components on every
// attribute of F. F must be non-empty and name attributes of the
// schema.
func (r *Relation) FixedOn(attrs schema.AttrSet) bool {
	idx := make([]int, 0, attrs.Len())
	for _, name := range attrs.Sorted() {
		i := r.sch.Index(name)
		if i < 0 {
			panic(fmt.Sprintf("core: FixedOn unknown attribute %q", name))
		}
		idx = append(idx, i)
	}
	if len(idx) == 0 {
		// An empty combination appears in every tuple; fixed only if
		// the relation has at most one tuple.
		return r.Len() <= 1
	}
	for a := 0; a < len(r.tuples); a++ {
		for b := a + 1; b < len(r.tuples); b++ {
			joint := true
			for _, i := range idx {
				if r.tuples[a].Set(i).Disjoint(r.tuples[b].Set(i)) {
					joint = false
					break
				}
			}
			if joint {
				return false
			}
		}
	}
	return true
}

// FixedDomains returns every single attribute on which r is fixed; the
// building block for "fixed on at most n-1 domains" (Theorem 5)
// reporting.
func (r *Relation) FixedDomains() []string {
	var out []string
	for i := 0; i < r.sch.Degree(); i++ {
		name := r.sch.Attr(i).Name
		if r.FixedOn(schema.NewAttrSet(name)) {
			out = append(out, name)
		}
	}
	return out
}

// MaxFixedSet greedily reports a maximal set of attributes r is fixed
// on, preferring schema order. Note fixedness is monotone: if r is
// fixed on F it is fixed on any superset of F, so the interesting
// question is which minimal sets work; singles are reported by
// FixedDomains.
func (r *Relation) MaxFixedSet() schema.AttrSet {
	// Because fixedness is superset-monotone, the whole schema is fixed
	// iff the relation has no two tuples overlapping everywhere — which
	// holds for all disjoint-expansion NFRs. Report the set of singles
	// plus, when no single works, the full schema if fixed.
	singles := r.FixedDomains()
	if len(singles) > 0 {
		return schema.NewAttrSet(singles...)
	}
	all := schema.NewAttrSet(r.sch.Names()...)
	if r.FixedOn(all) {
		return all
	}
	return schema.NewAttrSet()
}

// IsCanonicalFor reports whether r equals V_P(R*) for the given
// permutation — i.e. whether r is the canonical form of its own
// information content under P.
func (r *Relation) IsCanonicalFor(p schema.Permutation) bool {
	canon, _ := r.CanonicalFromFlats(p)
	return r.Equal(canon)
}

// IsCanonical reports whether r is the canonical form for some
// permutation of its schema, returning the first such permutation.
// Exhaustive over n! permutations; degree must be small.
func (r *Relation) IsCanonical() (schema.Permutation, bool) {
	for _, p := range schema.AllPermutations(r.sch.Degree()) {
		if r.IsCanonicalFor(p) {
			return p, true
		}
	}
	return nil, false
}
