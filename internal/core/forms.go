package core

import (
	"math/rand"

	"repro/internal/tuple"
)

// IrreducibleGreedy derives an irreducible form (Definition 3) by
// repeatedly applying an arbitrary applicable composition until none
// remains. The rng, when non-nil, randomizes which pair is composed at
// each step, exercising the paper's observation that a 1NF relation
// can reach several distinct irreducible forms (Example 1). With a nil
// rng the first applicable pair in (attribute, tuple-order) scan order
// is used, which is deterministic.
//
// It returns the irreducible relation and the number of compositions
// applied (always Len()-result.Len()).
func (r *Relation) IrreducibleGreedy(rng *rand.Rand) (*Relation, int) {
	ts := r.Tuples()
	comps := 0
	for {
		type pair struct{ a, b, attr int }
		var found []pair
		collect := func() {
			for i := 0; i < r.sch.Degree(); i++ {
				buckets := make(map[string][]int)
				for j, t := range ts {
					k := t.KeyExcept(i)
					buckets[k] = append(buckets[k], j)
				}
				for _, idxs := range buckets {
					for x := 0; x < len(idxs); x++ {
						for y := x + 1; y < len(idxs); y++ {
							found = append(found, pair{idxs[x], idxs[y], i})
							if rng == nil {
								return // deterministic: first found is enough
							}
						}
					}
				}
			}
		}
		collect()
		if len(found) == 0 {
			break
		}
		p := found[0]
		if rng != nil {
			p = found[rng.Intn(len(found))]
		}
		merged, ok := tuple.Compose(ts[p.a], ts[p.b], p.attr)
		if !ok {
			panic("core: bucketed pair not composable")
		}
		ts[p.a] = merged
		ts = append(ts[:p.b], ts[p.b+1:]...)
		comps++
	}
	return MustFromTuples(r.sch, ts), comps
}

// FormSearchResult reports the outcome of an exhaustive search over the
// composition reachability graph.
type FormSearchResult struct {
	// Best is a reachable irreducible relation with the fewest tuples
	// found. Nil only if the search could not start.
	Best *Relation
	// MinTuples is Best.Len().
	MinTuples int
	// Exhaustive is true when the whole reachable state space was
	// explored, so MinTuples is the true minimum; false when the state
	// cap was hit and MinTuples is only an upper bound.
	Exhaustive bool
	// StatesVisited counts distinct relation states explored.
	StatesVisited int
}

// MinimumIrreducible exhaustively searches the space of relations
// reachable from r by compositions and returns an irreducible form
// with the minimum number of tuples. Because every composition
// removes exactly one tuple, this equals maximizing the composition
// count. The search memoizes visited states by canonical relation key
// and stops expanding after maxStates distinct states (0 means a
// default of 100000); the result records whether the search was
// exhaustive.
//
// The paper notes finding the "minimum" NFR is hard (Section 4); this
// exact search is intended for the small worked examples (Example 2)
// and for validating the greedy and canonical forms against ground
// truth on small random relations.
func (r *Relation) MinimumIrreducible(maxStates int) FormSearchResult {
	if maxStates <= 0 {
		maxStates = 100000
	}
	visited := map[string]bool{}
	res := FormSearchResult{Best: r.Clone(), MinTuples: r.Len(), Exhaustive: true}

	var dfs func(cur *Relation)
	dfs = func(cur *Relation) {
		key := cur.Key()
		if visited[key] {
			return
		}
		if len(visited) >= maxStates {
			res.Exhaustive = false
			return
		}
		visited[key] = true

		ts := cur.tuples
		reducible := false
		for i := 0; i < cur.sch.Degree(); i++ {
			buckets := make(map[string][]int)
			for j, t := range ts {
				k := t.KeyExcept(i)
				buckets[k] = append(buckets[k], j)
			}
			for _, idxs := range buckets {
				for x := 0; x < len(idxs); x++ {
					for y := x + 1; y < len(idxs); y++ {
						reducible = true
						merged, ok := tuple.Compose(ts[idxs[x]], ts[idxs[y]], i)
						if !ok {
							panic("core: bucketed pair not composable")
						}
						next := NewRelation(cur.sch)
						for j, t := range ts {
							if j == idxs[x] || j == idxs[y] {
								continue
							}
							next.Add(t)
						}
						next.Add(merged)
						dfs(next)
					}
				}
			}
		}
		if !reducible && cur.Len() < res.MinTuples {
			res.MinTuples = cur.Len()
			res.Best = cur.Clone()
		}
	}
	dfs(r)
	res.StatesVisited = len(visited)
	return res
}

// AllIrreducibleForms enumerates the distinct irreducible forms
// reachable from r by compositions, up to maxForms results and
// maxStates explored states (0 means defaults of 10000 / 100000). The
// second result reports whether enumeration was exhaustive.
func (r *Relation) AllIrreducibleForms(maxForms, maxStates int) ([]*Relation, bool) {
	if maxForms <= 0 {
		maxForms = 10000
	}
	if maxStates <= 0 {
		maxStates = 100000
	}
	visited := map[string]bool{}
	forms := map[string]*Relation{}
	exhaustive := true

	var dfs func(cur *Relation)
	dfs = func(cur *Relation) {
		key := cur.Key()
		if visited[key] {
			return
		}
		if len(visited) >= maxStates || len(forms) >= maxForms {
			exhaustive = false
			return
		}
		visited[key] = true

		ts := cur.tuples
		reducible := false
		for i := 0; i < cur.sch.Degree(); i++ {
			buckets := make(map[string][]int)
			for j, t := range ts {
				k := t.KeyExcept(i)
				buckets[k] = append(buckets[k], j)
			}
			for _, idxs := range buckets {
				for x := 0; x < len(idxs); x++ {
					for y := x + 1; y < len(idxs); y++ {
						reducible = true
						merged, _ := tuple.Compose(ts[idxs[x]], ts[idxs[y]], i)
						next := NewRelation(cur.sch)
						for j, t := range ts {
							if j == idxs[x] || j == idxs[y] {
								continue
							}
							next.Add(t)
						}
						next.Add(merged)
						dfs(next)
					}
				}
			}
		}
		if !reducible {
			forms[key] = cur.Clone()
		}
	}
	dfs(r)

	out := make([]*Relation, 0, len(forms))
	// deterministic order: by key
	keys := make([]string, 0, len(forms))
	for k := range forms {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		out = append(out, forms[k])
	}
	return out, exhaustive
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
