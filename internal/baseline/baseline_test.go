package baseline

import (
	"testing"

	"repro/internal/dep"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func TestStore1NFBasics(t *testing.T) {
	s := New1NF(schema.MustOf("A", "B"))
	f := tuple.FlatOfStrings("a", "b")
	if !s.Insert(f) || s.Insert(f) {
		t.Error("insert semantics")
	}
	if !s.Has(f) || s.Len() != 1 {
		t.Error("Has/Len")
	}
	count := 0
	s.Scan(func(tuple.Flat) bool { count++; return true })
	if count != 1 {
		t.Error("Scan")
	}
	if !s.Delete(f) || s.Delete(f) {
		t.Error("delete semantics")
	}
	if s.Relation().Len() != 0 {
		t.Error("Relation after delete")
	}
	if s.Schema().Degree() != 2 {
		t.Error("Schema")
	}
}

func TestDecomposed4NFFragments(t *testing.T) {
	s := schema.MustOf("Student", "Course", "Club")
	mvds := []dep.MVD{dep.NewMVD([]string{"Student"}, []string{"Course"})}
	d, err := NewDecomposed4NF(s, nil, mvds)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFragments() != 2 {
		t.Fatalf("fragments = %v", d.FragmentAttrs())
	}
}

func TestInsertReassembleRecoversOriginal(t *testing.T) {
	e := workload.GenEnrollment(3, workload.EnrollmentParams{
		Students: 15, CoursePool: 8, ClubPool: 4, SemesterPool: 3,
		CoursesPerStudent: 3, ClubsPerStudent: 2,
	})
	mvds := []dep.MVD{dep.NewMVD([]string{"Student"}, []string{"Course"})}
	d, err := NewDecomposed4NF(e.R1.Schema(), nil, mvds)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range e.R1.Expand() {
		d.Insert(f)
	}
	re, rows := d.ReassembleCounted()
	if !re.EquivalentTo(e.R1) {
		t.Fatalf("reassembled relation differs: %d vs %d flats",
			re.ExpansionSize(), e.R1.ExpansionSize())
	}
	if rows < re.ExpansionSize() {
		t.Errorf("join row count %d < output size %d", rows, re.ExpansionSize())
	}
	if d.FragmentRows() >= e.R1.ExpansionSize() {
		t.Logf("fragments not smaller: %d vs %d (possible with tiny pools)",
			d.FragmentRows(), e.R1.ExpansionSize())
	}
}

func TestDeleteAnomalyAndChecked(t *testing.T) {
	// R1* = s1 x {c1,c2} x {b1}: deleting (s1,c1,b1) naively from the
	// fragments removes (s1,b1) from SB even though (s1,c2,b1) still
	// needs it — the classic anomaly. DeleteChecked must keep it.
	s := schema.MustOf("Student", "Course", "Club")
	mvds := []dep.MVD{dep.NewMVD([]string{"Student"}, []string{"Course"})}
	rows := []tuple.Flat{
		tuple.FlatOfStrings("s1", "c1", "b1"),
		tuple.FlatOfStrings("s1", "c2", "b1"),
	}

	naive, _ := NewDecomposed4NF(s, nil, mvds)
	for _, f := range rows {
		naive.Insert(f)
	}
	naive.Delete(rows[0])
	if got := naive.Reassemble().ExpansionSize(); got == 1 {
		t.Error("expected the naive delete to exhibit the anomaly, but it behaved")
	}

	checked, _ := NewDecomposed4NF(s, nil, mvds)
	for _, f := range rows {
		checked.Insert(f)
	}
	visited := checked.DeleteChecked(rows[0])
	if visited == 0 {
		t.Error("DeleteChecked reported no work")
	}
	re := checked.Reassemble()
	if re.ExpansionSize() != 1 {
		t.Fatalf("after checked delete: %d flats\n%v", re.ExpansionSize(), re)
	}
	if _, ok := re.ContainsFlat(rows[1]); !ok {
		t.Error("surviving tuple lost")
	}
}

func TestDecomposed4NFNoMVD(t *testing.T) {
	// without violating dependencies the schema stays whole: 1 fragment
	s := schema.MustOf("A", "B")
	d, err := NewDecomposed4NF(s, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFragments() != 1 {
		t.Fatalf("fragments = %d", d.NumFragments())
	}
	f := tuple.FlatOfStrings("x", "y")
	d.Insert(f)
	re := d.Reassemble()
	if re.ExpansionSize() != 1 {
		t.Error("single-fragment roundtrip failed")
	}
	d.Delete(f)
	if d.Reassemble().ExpansionSize() != 0 {
		t.Error("delete failed")
	}
}

func TestReassembleEmpty(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	d, _ := NewDecomposed4NF(s, nil, []dep.MVD{dep.NewMVD([]string{"A"}, []string{"B"})})
	re, rows := d.ReassembleCounted()
	if re.Len() != 0 || rows != 0 {
		t.Error("empty reassemble")
	}
}
