// Package baseline implements the comparison system the paper argues
// against: a classical 1NF store in which MVD-governed relations are
// decomposed into fourth normal form and queries that need the
// original relation recombine the fragments with natural joins. The
// experiment harness runs identical logical workloads against this
// baseline and the NFR engine.
package baseline

import (
	"strings"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Store1NF is a flat relation with per-tuple insert/delete — the 1NF
// half of the comparison. Its operations are trivially O(1) per tuple
// (hash set), which is exactly the paper's point of reference: NFR
// updates must stay comparable while holding far fewer tuples.
type Store1NF struct {
	sch  *schema.Schema
	rows map[string]tuple.Flat
}

// New1NF returns an empty 1NF store.
func New1NF(s *schema.Schema) *Store1NF {
	return &Store1NF{sch: s, rows: make(map[string]tuple.Flat)}
}

// Schema returns the store's schema.
func (s *Store1NF) Schema() *schema.Schema { return s.sch }

// Len returns the number of flat tuples.
func (s *Store1NF) Len() int { return len(s.rows) }

// Insert adds a flat tuple; it reports whether the store changed.
func (s *Store1NF) Insert(f tuple.Flat) bool {
	k := f.Key()
	if _, dup := s.rows[k]; dup {
		return false
	}
	s.rows[k] = f.Clone()
	return true
}

// Delete removes a flat tuple; it reports whether the store changed.
func (s *Store1NF) Delete(f tuple.Flat) bool {
	k := f.Key()
	if _, ok := s.rows[k]; !ok {
		return false
	}
	delete(s.rows, k)
	return true
}

// Has reports membership.
func (s *Store1NF) Has(f tuple.Flat) bool {
	_, ok := s.rows[f.Key()]
	return ok
}

// Scan calls fn for every tuple (arbitrary order), stopping on false.
func (s *Store1NF) Scan(fn func(tuple.Flat) bool) {
	for _, f := range s.rows {
		if !fn(f) {
			return
		}
	}
}

// Relation materializes the store as a 1NF core.Relation.
func (s *Store1NF) Relation() *core.Relation {
	r := core.NewRelation(s.sch)
	for _, f := range s.rows {
		r.Add(tuple.FromFlat(f))
	}
	return r
}

// Decomposed4NF is the 4NF half of the comparison: the universe split
// into fragments by the classical MVD decomposition, each fragment a
// 1NF store, with Reassemble natural-joining them back — the joins the
// paper says NFRs let a schema "discard".
type Decomposed4NF struct {
	sch       *schema.Schema
	fragments []*fragment
}

type fragment struct {
	attrs schema.AttrSet
	names []string // sorted attribute names
	idx   []int    // positions in the universe schema, aligned to names
	store *Store1NF
}

// NewDecomposed4NF decomposes the schema by the given dependencies and
// prepares one store per fragment.
func NewDecomposed4NF(s *schema.Schema, fds []dep.FD, mvds []dep.MVD) (*Decomposed4NF, error) {
	universe := schema.NewAttrSet(s.Names()...)
	frags := dep.Decompose4NF(universe, fds, mvds)
	d := &Decomposed4NF{sch: s}
	for _, fa := range frags {
		names := fa.Sorted()
		fs, err := s.Project(names...)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(names))
		for i, n := range names {
			idx[i] = s.Index(n)
		}
		d.fragments = append(d.fragments, &fragment{attrs: fa, names: names, idx: idx, store: New1NF(fs)})
	}
	return d, nil
}

// NumFragments returns the number of 4NF fragments.
func (d *Decomposed4NF) NumFragments() int { return len(d.fragments) }

// FragmentAttrs lists each fragment's attribute set.
func (d *Decomposed4NF) FragmentAttrs() []string {
	out := make([]string, len(d.fragments))
	for i, f := range d.fragments {
		out[i] = f.attrs.String()
	}
	return out
}

// FragmentRows returns the total number of rows across fragments.
func (d *Decomposed4NF) FragmentRows() int {
	n := 0
	for _, f := range d.fragments {
		n += f.store.Len()
	}
	return n
}

func (fr *fragment) project(f tuple.Flat) tuple.Flat {
	proj := make(tuple.Flat, len(fr.idx))
	for i, j := range fr.idx {
		proj[i] = f[j]
	}
	return proj
}

// Insert projects the flat tuple into every fragment.
func (d *Decomposed4NF) Insert(f tuple.Flat) {
	for _, fr := range d.fragments {
		fr.store.Insert(fr.project(f))
	}
}

// Delete removes the tuple's projections from every fragment without
// existence checks. This exhibits the classic deletion anomaly: a
// projection still needed by another tuple is lost. Use DeleteChecked
// for the correct (and costly) version.
func (d *Decomposed4NF) Delete(f tuple.Flat) {
	for _, fr := range d.fragments {
		fr.store.Delete(fr.project(f))
	}
}

// DeleteChecked removes each projection only when no other tuple of
// the reassembled relation still needs it. It returns the number of
// rows visited by the existence checks — the anomaly cost that the
// harness charges to the 4NF baseline.
func (d *Decomposed4NF) DeleteChecked(f tuple.Flat) int {
	whole := d.Reassemble()
	visited := 0
	fKey := f.Key()
	for _, fr := range d.fragments {
		proj := fr.project(f)
		projKey := proj.Key()
		needed := false
		for _, g := range whole.Expand() {
			visited++
			if g.Key() == fKey {
				continue
			}
			if fr.project(g).Key() == projKey {
				needed = true
				break
			}
		}
		if !needed {
			fr.store.Delete(proj)
		}
	}
	return visited
}

// Reassemble natural-joins all fragments back into the universe
// relation (attribute order restored).
func (d *Decomposed4NF) Reassemble() *core.Relation {
	r, _ := d.ReassembleCounted()
	return r
}

// ReassembleCounted is Reassemble plus the count of intermediate rows
// materialized across the join pipeline — the work metric compared
// against an NFR scan.
func (d *Decomposed4NF) ReassembleCounted() (*core.Relation, int) {
	out := core.NewRelation(d.sch)
	if len(d.fragments) == 0 {
		return out, 0
	}
	type prow map[string]value.Atom

	var cur []prow
	d.fragments[0].store.Scan(func(f tuple.Flat) bool {
		m := make(prow, len(d.fragments[0].names))
		for i, n := range d.fragments[0].names {
			m[n] = f[i]
		}
		cur = append(cur, m)
		return true
	})
	rows := len(cur)
	seen := schema.NewAttrSet(d.fragments[0].names...)

	key := func(m prow, names []string) string {
		var b strings.Builder
		for _, n := range names {
			a := m[n]
			b.WriteByte(byte(a.K))
			b.WriteString(a.String())
			b.WriteByte('\x1f')
		}
		return b.String()
	}

	for _, fr := range d.fragments[1:] {
		var sharedNames, newNames []string
		for _, n := range fr.names {
			if seen.Has(n) {
				sharedNames = append(sharedNames, n)
			} else {
				newNames = append(newNames, n)
			}
		}
		build := map[string][]prow{}
		fr.store.Scan(func(f tuple.Flat) bool {
			m := make(prow, len(fr.names))
			for i, n := range fr.names {
				m[n] = f[i]
			}
			k := key(m, sharedNames)
			build[k] = append(build[k], m)
			return true
		})
		var next []prow
		for _, l := range cur {
			for _, rmap := range build[key(l, sharedNames)] {
				merged := make(prow, len(l)+len(newNames))
				for k, v := range l {
					merged[k] = v
				}
				for _, n := range newNames {
					merged[n] = rmap[n]
				}
				next = append(next, merged)
			}
		}
		cur = next
		rows += len(cur)
		for _, n := range newNames {
			seen.Add(n)
		}
	}
	for _, m := range cur {
		fl := make(tuple.Flat, d.sch.Degree())
		complete := true
		for i := 0; i < d.sch.Degree(); i++ {
			a, ok := m[d.sch.Attr(i).Name]
			if !ok {
				complete = false
				break
			}
			fl[i] = a
		}
		if complete {
			out.Add(tuple.FromFlat(fl))
		}
	}
	return out, rows
}
