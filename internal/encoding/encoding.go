// Package encoding provides the binary codec for atoms, value sets,
// NFR tuples, and relations — the serialization layer under the
// storage engine — plus a line-oriented text format for loading the
// paper's examples and workload files.
//
// Binary layout (little-endian varints, no alignment):
//
//	atom     := kind:uint8 payload
//	set      := count:uvarint atom*
//	tuple    := degree:uvarint set*
//	relation := magic:4 version:uint8 schema tupleCount:uvarint tuple*
//	schema   := degree:uvarint (nameLen:uvarint name kind:uint8)*
package encoding

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/vset"
)

// Magic identifies serialized relations.
var Magic = [4]byte{'N', 'F', 'R', '1'}

// Version is the current format version.
const Version = 1

// ErrCorrupt is wrapped by decode errors caused by malformed input.
var ErrCorrupt = errors.New("encoding: corrupt data")

// AppendAtom appends the binary encoding of a to dst.
func AppendAtom(dst []byte, a value.Atom) []byte {
	dst = append(dst, byte(a.K))
	switch a.K {
	case value.Null:
	case value.Bool, value.Int:
		dst = binary.AppendVarint(dst, a.I)
	case value.Float:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(a.F))
		dst = append(dst, buf[:]...)
	case value.String:
		dst = binary.AppendUvarint(dst, uint64(len(a.S)))
		dst = append(dst, a.S...)
	}
	return dst
}

// DecodeAtom decodes one atom from b, returning the atom and the
// number of bytes consumed.
func DecodeAtom(b []byte) (value.Atom, int, error) {
	if len(b) == 0 {
		return value.Atom{}, 0, fmt.Errorf("%w: empty atom", ErrCorrupt)
	}
	k := value.Kind(b[0])
	pos := 1
	switch k {
	case value.Null:
		return value.NullAtom(), pos, nil
	case value.Bool, value.Int:
		v, n := binary.Varint(b[pos:])
		if n <= 0 {
			return value.Atom{}, 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
		}
		pos += n
		if k == value.Bool {
			return value.NewBool(v != 0), pos, nil
		}
		return value.NewInt(v), pos, nil
	case value.Float:
		if len(b) < pos+8 {
			return value.Atom{}, 0, fmt.Errorf("%w: short float", ErrCorrupt)
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
		return value.NewFloat(f), pos + 8, nil
	case value.String:
		l, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return value.Atom{}, 0, fmt.Errorf("%w: bad string length", ErrCorrupt)
		}
		pos += n
		if uint64(len(b)-pos) < l {
			return value.Atom{}, 0, fmt.Errorf("%w: short string", ErrCorrupt)
		}
		return value.NewString(string(b[pos : pos+int(l)])), pos + int(l), nil
	default:
		return value.Atom{}, 0, fmt.Errorf("%w: unknown atom kind %d", ErrCorrupt, b[0])
	}
}

// AppendSet appends the binary encoding of s to dst.
func AppendSet(dst []byte, s vset.Set) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.Len()))
	for _, a := range s.Atoms() {
		dst = AppendAtom(dst, a)
	}
	return dst
}

// DecodeSet decodes one set from b.
func DecodeSet(b []byte) (vset.Set, int, error) {
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return vset.Set{}, 0, fmt.Errorf("%w: bad set count", ErrCorrupt)
	}
	pos := n
	if cnt > uint64(len(b)) { // each atom needs ≥1 byte
		return vset.Set{}, 0, fmt.Errorf("%w: set count %d too large", ErrCorrupt, cnt)
	}
	atoms := make([]value.Atom, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		a, n, err := DecodeAtom(b[pos:])
		if err != nil {
			return vset.Set{}, 0, err
		}
		atoms = append(atoms, a)
		pos += n
	}
	// Sets are stored in canonical order; re-canonicalize defensively.
	return vset.New(atoms...), pos, nil
}

// AppendTuple appends the binary encoding of t to dst.
func AppendTuple(dst []byte, t tuple.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(t.Degree()))
	for _, s := range t.Sets() {
		dst = AppendSet(dst, s)
	}
	return dst
}

// EncodeTuple returns the binary encoding of t.
func EncodeTuple(t tuple.Tuple) []byte { return AppendTuple(nil, t) }

// DecodeTuple decodes one tuple from b.
func DecodeTuple(b []byte) (tuple.Tuple, int, error) {
	deg, n := binary.Uvarint(b)
	if n <= 0 {
		return tuple.Tuple{}, 0, fmt.Errorf("%w: bad tuple degree", ErrCorrupt)
	}
	pos := n
	if deg > uint64(len(b)) {
		return tuple.Tuple{}, 0, fmt.Errorf("%w: tuple degree %d too large", ErrCorrupt, deg)
	}
	sets := make([]vset.Set, 0, deg)
	for i := uint64(0); i < deg; i++ {
		s, n, err := DecodeSet(b[pos:])
		if err != nil {
			return tuple.Tuple{}, 0, err
		}
		if s.IsEmpty() {
			return tuple.Tuple{}, 0, fmt.Errorf("%w: empty tuple component", ErrCorrupt)
		}
		sets = append(sets, s)
		pos += n
	}
	t, err := tuple.New(sets...)
	if err != nil {
		return tuple.Tuple{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return t, pos, nil
}

// AppendSchema appends the binary encoding of s to dst.
func AppendSchema(dst []byte, s *schema.Schema) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.Degree()))
	for i := 0; i < s.Degree(); i++ {
		a := s.Attr(i)
		dst = binary.AppendUvarint(dst, uint64(len(a.Name)))
		dst = append(dst, a.Name...)
		dst = append(dst, byte(a.Kind))
	}
	return dst
}

// DecodeSchema decodes a schema from b.
func DecodeSchema(b []byte) (*schema.Schema, int, error) {
	deg, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("%w: bad schema degree", ErrCorrupt)
	}
	pos := n
	if deg > uint64(len(b)) {
		return nil, 0, fmt.Errorf("%w: schema degree %d too large", ErrCorrupt, deg)
	}
	attrs := make([]schema.Attribute, 0, deg)
	for i := uint64(0); i < deg; i++ {
		l, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: bad attribute name length", ErrCorrupt)
		}
		pos += n
		if uint64(len(b)-pos) < l+1 {
			return nil, 0, fmt.Errorf("%w: short attribute", ErrCorrupt)
		}
		name := string(b[pos : pos+int(l)])
		pos += int(l)
		kind := value.Kind(b[pos])
		pos++
		attrs = append(attrs, schema.Attribute{Name: name, Kind: kind})
	}
	s, err := schema.New(attrs...)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, pos, nil
}

// WriteRelation serializes r to w.
func WriteRelation(w io.Writer, r *core.Relation) error {
	buf := make([]byte, 0, 4096)
	buf = append(buf, Magic[:]...)
	buf = append(buf, Version)
	buf = AppendSchema(buf, r.Schema())
	buf = binary.AppendUvarint(buf, uint64(r.Len()))
	for i := 0; i < r.Len(); i++ {
		buf = AppendTuple(buf, r.Tuple(i))
	}
	_, err := w.Write(buf)
	return err
}

// ReadRelation deserializes a relation from r.
func ReadRelation(r io.Reader) (*core.Relation, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(b) < 5 || string(b[:4]) != string(Magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if b[4] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, b[4])
	}
	pos := 5
	s, n, err := DecodeSchema(b[pos:])
	if err != nil {
		return nil, err
	}
	pos += n
	cnt, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad tuple count", ErrCorrupt)
	}
	pos += n
	rel := core.NewRelation(s)
	for i := uint64(0); i < cnt; i++ {
		t, n, err := DecodeTuple(b[pos:])
		if err != nil {
			return nil, err
		}
		if t.Degree() != s.Degree() {
			return nil, fmt.Errorf("%w: tuple degree mismatch", ErrCorrupt)
		}
		rel.Add(t)
		pos += n
	}
	return rel, nil
}

// WriteText writes the relation in the line-oriented text format:
// a header "attr:kind attr:kind ...", then one tuple per line with
// components separated by '|' and set members by ','. Atoms use the
// value.Parse literal syntax.
func WriteText(w io.Writer, r *core.Relation) error {
	bw := bufio.NewWriter(w)
	s := r.Schema()
	for i := 0; i < s.Degree(); i++ {
		if i > 0 {
			bw.WriteByte(' ')
		}
		fmt.Fprintf(bw, "%s:%s", s.Attr(i).Name, s.Attr(i).Kind)
	}
	bw.WriteByte('\n')
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		for j, set := range t.Sets() {
			if j > 0 {
				bw.WriteString(" | ")
			}
			atoms := set.Atoms()
			for k, a := range atoms {
				if k > 0 {
					bw.WriteString(",")
				}
				bw.WriteString(a.String())
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadText parses the text format written by WriteText.
func ReadText(r io.Reader) (*core.Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("encoding: missing header")
	}
	var attrs []schema.Attribute
	for _, field := range strings.Fields(sc.Text()) {
		name, kindName, found := strings.Cut(field, ":")
		kind := value.Null
		if found {
			k, ok := value.ParseKind(kindName)
			if !ok {
				return nil, fmt.Errorf("encoding: bad kind %q", kindName)
			}
			kind = k
		}
		attrs = append(attrs, schema.Attribute{Name: name, Kind: kind})
	}
	s, err := schema.New(attrs...)
	if err != nil {
		return nil, err
	}
	rel := core.NewRelation(s)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "|")
		if len(parts) != s.Degree() {
			return nil, fmt.Errorf("encoding: line %d has %d components, schema degree %d", line, len(parts), s.Degree())
		}
		sets := make([]vset.Set, len(parts))
		for i, p := range parts {
			var atoms []value.Atom
			for _, lit := range strings.Split(p, ",") {
				a, err := value.Parse(lit)
				if err != nil {
					return nil, fmt.Errorf("encoding: line %d: %v", line, err)
				}
				atoms = append(atoms, a)
			}
			sets[i] = vset.New(atoms...)
		}
		t, err := tuple.New(sets...)
		if err != nil {
			return nil, fmt.Errorf("encoding: line %d: %v", line, err)
		}
		rel.Add(t)
	}
	return rel, sc.Err()
}
