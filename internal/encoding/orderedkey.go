package encoding

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/value"
)

// This file is the memcomparable atom codec used by the B+tree range
// index: AppendOrderedAtom produces byte strings whose bytes.Compare
// order is exactly value.Compare's order, so the index can stay a
// byte-oriented structure (like the hash index) while its scans agree
// with predicate evaluation — including across kinds, where
// value.Compare's kind-first total order (Null < Bool < Int < Float <
// String) is mirrored by the leading kind byte.
//
// Layout per kind (big-endian where it matters — varints are not
// order-preserving, which is why AppendAtom cannot be used as a key):
//
//	null    kind
//	bool    kind 0|1
//	int     kind uint64-BE of (v XOR minInt64)   — offset binary
//	float   kind uint64-BE, NaN → 0 (sorts first, as value.Compare
//	        orders NaN below every number); else −0 normalized to +0,
//	        negative bits inverted, positive sign bit set
//	string  kind raw-bytes (the payload runs to the end of the key)
//
// Because the string payload is the undelimited tail, an ordered key
// holds exactly ONE atom — which is all the range index needs.

// AppendOrderedAtom appends the memcomparable encoding of a to dst.
// For any atoms x, y: bytes.Compare(enc(x), enc(y)) ==
// value.Compare(x, y); equal atoms (including −0.0 vs +0.0 and any two
// NaNs, which value.Compare treats as equal) produce identical bytes.
func AppendOrderedAtom(dst []byte, a value.Atom) []byte {
	dst = append(dst, byte(a.K))
	switch a.K {
	case value.Null:
	case value.Bool:
		if a.I != 0 {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case value.Int:
		dst = binary.BigEndian.AppendUint64(dst, uint64(a.I)^(1<<63))
	case value.Float:
		dst = binary.BigEndian.AppendUint64(dst, orderedFloatBits(a.F))
	case value.String:
		dst = append(dst, a.S...)
	}
	return dst
}

// orderedFloatBits maps a float64 onto a uint64 whose unsigned order
// is value.Compare's float order: every NaN → 0 (NaN sorts below
// −Inf), then negatives with all bits inverted, then positives (−0
// first normalized to +0) with the sign bit set.
func orderedFloatBits(f float64) uint64 {
	if math.IsNaN(f) {
		return 0
	}
	if f == 0 {
		f = 0 // collapse −0.0 onto +0.0: value.Compare treats them equal
	}
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

// DecodeOrderedAtom is the inverse of AppendOrderedAtom (up to the
// equivalences it collapses: −0.0 decodes as +0.0, every NaN as the
// canonical NaN). The string payload consumes the whole remainder of
// b, so a buffer holds exactly one ordered atom.
func DecodeOrderedAtom(b []byte) (value.Atom, error) {
	if len(b) == 0 {
		return value.Atom{}, fmt.Errorf("%w: empty ordered atom", ErrCorrupt)
	}
	k, payload := value.Kind(b[0]), b[1:]
	switch k {
	case value.Null:
		if len(payload) != 0 {
			return value.Atom{}, fmt.Errorf("%w: null key with payload", ErrCorrupt)
		}
		return value.NullAtom(), nil
	case value.Bool:
		if len(payload) != 1 || payload[0] > 1 {
			return value.Atom{}, fmt.Errorf("%w: bad bool key", ErrCorrupt)
		}
		return value.NewBool(payload[0] == 1), nil
	case value.Int:
		if len(payload) != 8 {
			return value.Atom{}, fmt.Errorf("%w: int key of %d bytes", ErrCorrupt, len(payload))
		}
		return value.NewInt(int64(binary.BigEndian.Uint64(payload) ^ (1 << 63))), nil
	case value.Float:
		if len(payload) != 8 {
			return value.Atom{}, fmt.Errorf("%w: float key of %d bytes", ErrCorrupt, len(payload))
		}
		enc := binary.BigEndian.Uint64(payload)
		if enc == 0 {
			return value.NewFloat(math.NaN()), nil
		}
		var bits uint64
		if enc&(1<<63) != 0 {
			bits = enc &^ (1 << 63)
		} else {
			bits = ^enc
		}
		return value.NewFloat(math.Float64frombits(bits)), nil
	case value.String:
		return value.NewString(string(payload)), nil
	default:
		return value.Atom{}, fmt.Errorf("%w: unknown ordered atom kind %d", ErrCorrupt, b[0])
	}
}
