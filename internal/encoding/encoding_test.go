package encoding

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/vset"
)

func TestAtomRoundTrip(t *testing.T) {
	atoms := []value.Atom{
		value.NullAtom(),
		value.NewBool(true), value.NewBool(false),
		value.NewInt(0), value.NewInt(-1), value.NewInt(1 << 40),
		value.NewFloat(0), value.NewFloat(-2.5), value.NewFloat(math.Inf(1)),
		value.NewString(""), value.NewString("hello"), value.NewString("ünïcode ✓"),
	}
	for _, a := range atoms {
		b := AppendAtom(nil, a)
		got, n, err := DecodeAtom(b)
		if err != nil {
			t.Fatalf("decode %v: %v", a, err)
		}
		if n != len(b) {
			t.Errorf("atom %v: consumed %d of %d", a, n, len(b))
		}
		if !value.Equal(a, got) {
			t.Errorf("roundtrip %v -> %v", a, got)
		}
	}
	// NaN round-trips to NaN-equal atom
	b := AppendAtom(nil, value.NewFloat(math.NaN()))
	got, _, err := DecodeAtom(b)
	if err != nil || !value.Equal(got, value.NewFloat(math.NaN())) {
		t.Error("NaN roundtrip failed")
	}
}

func TestDecodeAtomErrors(t *testing.T) {
	cases := [][]byte{
		{},                           // empty
		{byte(value.Int)},            // missing varint
		{byte(value.Float)},          // short float
		{byte(value.String)},         // missing length
		{byte(value.String), 5, 'a'}, // short string
		{99},                         // unknown kind
	}
	for i, b := range cases {
		if _, _, err := DecodeAtom(b); err == nil {
			t.Errorf("case %d: corrupt atom accepted", i)
		}
	}
}

func TestSetRoundTrip(t *testing.T) {
	sets := []vset.Set{
		{},
		vset.OfStrings("a"),
		vset.OfStrings("x", "y", "z"),
		vset.OfInts(3, 1, 2),
	}
	for _, s := range sets {
		b := AppendSet(nil, s)
		got, n, err := DecodeSet(b)
		if err != nil {
			t.Fatalf("decode %v: %v", s, err)
		}
		if n != len(b) || !got.Equal(s) {
			t.Errorf("roundtrip %v -> %v (n=%d/%d)", s, got, n, len(b))
		}
	}
}

func TestDecodeSetErrors(t *testing.T) {
	if _, _, err := DecodeSet(nil); err == nil {
		t.Error("empty input accepted")
	}
	// count says 200 atoms but buffer is 2 bytes
	if _, _, err := DecodeSet([]byte{200, 1}); err == nil {
		t.Error("oversized count accepted")
	}
}

func TestTupleRoundTrip(t *testing.T) {
	tp := core.TupleOfSets([]string{"a1", "a2"}, []string{"b1"}, []string{"c1", "c2", "c3"})
	b := EncodeTuple(tp)
	got, n, err := DecodeTuple(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) || !got.Equal(tp) {
		t.Errorf("roundtrip failed: %v", got)
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	if _, _, err := DecodeTuple(nil); err == nil {
		t.Error("empty accepted")
	}
	// tuple with an empty component: degree 1, set count 0
	b := []byte{1, 0}
	if _, _, err := DecodeTuple(b); err == nil {
		t.Error("empty component accepted")
	}
	if _, _, err := DecodeTuple([]byte{200, 0}); err == nil {
		t.Error("oversized degree accepted")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := schema.MustNew(
		schema.Attribute{Name: "Student", Kind: value.String},
		schema.Attribute{Name: "Age", Kind: value.Int},
		schema.Attribute{Name: "Untyped"},
	)
	b := AppendSchema(nil, s)
	got, n, err := DecodeSchema(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) || !got.Equal(s) {
		t.Errorf("schema roundtrip: %v", got)
	}
}

func TestDecodeSchemaErrors(t *testing.T) {
	if _, _, err := DecodeSchema(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := DecodeSchema([]byte{200, 1}); err == nil {
		t.Error("oversized degree accepted")
	}
	// duplicate attribute names
	b := AppendSchema(nil, schema.MustOf("A"))
	b2 := AppendSchema(nil, schema.MustOf("A"))
	bad := append([]byte{2}, append(b[1:], b2[1:]...)...)
	if _, _, err := DecodeSchema(bad); err == nil {
		t.Error("duplicate attributes accepted")
	}
}

func TestRelationRoundTrip(t *testing.T) {
	s := schema.MustOf("A", "B")
	r := core.MustFromTuples(s, []tuple.Tuple{
		core.TupleOfSets([]string{"a1", "a2"}, []string{"b1"}),
		core.TupleOfSets([]string{"a3"}, []string{"b1", "b2"}),
	})
	var buf bytes.Buffer
	if err := WriteRelation(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRelation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) || !got.Schema().Equal(s) {
		t.Errorf("relation roundtrip:\n%v", got)
	}
}

func TestReadRelationErrors(t *testing.T) {
	if _, err := ReadRelation(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ReadRelation(strings.NewReader("XXXX?")); err == nil {
		t.Error("bad magic accepted")
	}
	bad := append([]byte{}, Magic[:]...)
	bad = append(bad, 99) // bad version
	if _, err := ReadRelation(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	s := schema.MustNew(
		schema.Attribute{Name: "Student", Kind: value.String},
		schema.Attribute{Name: "Course", Kind: value.String},
	)
	r := core.MustFromTuples(s, []tuple.Tuple{
		core.TupleOfSets([]string{"s1"}, []string{"c1", "c2"}),
		core.TupleOfSets([]string{"s2", "s3"}, []string{"c1"}),
	})
	var buf bytes.Buffer
	if err := WriteText(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Errorf("text roundtrip:\n%v\nfrom:\n%s", got, buf.String())
	}
}

func TestReadTextFormat(t *testing.T) {
	in := `A:string B:int
# comment line
a1,a2 | 1
a3 | 2,3

`
	r, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.ExpansionSize() != 4 {
		t.Errorf("parsed: %v", r)
	}
	if r.Schema().Attr(1).Kind != value.Int {
		t.Error("kind lost")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                    // no header
		"A:badkind\nx",        // bad kind
		"A B\nonly|two|parts", // component count mismatch
		"A A\nx",              // duplicate attrs
	}
	for i, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Property: random tuples round-trip through the binary codec.
func TestTupleRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		deg := 1 + rng.Intn(4)
		sets := make([]vset.Set, deg)
		for i := range sets {
			n := 1 + rng.Intn(4)
			var atoms []value.Atom
			for j := 0; j < n; j++ {
				switch rng.Intn(3) {
				case 0:
					atoms = append(atoms, value.NewInt(rng.Int63n(1000)-500))
				case 1:
					atoms = append(atoms, value.NewFloat(float64(rng.Intn(100))/4))
				default:
					atoms = append(atoms, value.NewString(string(rune('a'+rng.Intn(26)))))
				}
			}
			sets[i] = vset.New(atoms...)
		}
		tp := tuple.MustNew(sets...)
		got, n, err := DecodeTuple(EncodeTuple(tp))
		return err == nil && n == len(EncodeTuple(tp)) && got.Equal(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
