package encoding_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/vset"
	"repro/internal/workload"
)

// randomRelations draws relations across the workload generators —
// uniform, zipf-skewed, planted-MVD, planted-FD — both flat and in a
// random canonical form, so the codec is exercised on singleton and
// grouped components alike.
func randomRelations(seed int64, n int) []*core.Relation {
	rng := rand.New(rand.NewSource(seed))
	var out []*core.Relation
	for i := 0; i < n; i++ {
		var r *core.Relation
		switch i % 4 {
		case 0:
			r = workload.GenUniform(rng.Int63(), 5+rng.Intn(60), 2+rng.Intn(4), 2+rng.Intn(8))
		case 1:
			r = workload.GenZipf(rng.Int63(), 5+rng.Intn(60), 2+rng.Intn(3), 2+rng.Intn(10))
		case 2:
			r = workload.GenPlantedMVD(rng.Int63(), workload.PlantedParams{
				Groups: 2 + rng.Intn(8), RhsPool: 4 + rng.Intn(6),
				MeanBlock: 1 + rng.Intn(3), Extra: rng.Intn(2), ExtraPool: 3,
			})
		default:
			r = workload.GenPlantedFD(rng.Int63(), 3+rng.Intn(20), 1+rng.Intn(4), 2+rng.Intn(5))
		}
		if rng.Intn(2) == 0 {
			perms := schema.AllPermutations(r.Schema().Degree())
			canon, _ := r.Canonical(perms[rng.Intn(len(perms))])
			r = canon
		}
		out = append(out, r)
	}
	return out
}

// TestRelationRoundTripProperty: for random relations, WriteRelation
// followed by ReadRelation reproduces the relation exactly (same NFR
// tuples), hence the same denoted 1NF relation.
func TestRelationRoundTripProperty(t *testing.T) {
	for i, r := range randomRelations(101, 40) {
		var buf bytes.Buffer
		if err := encoding.WriteRelation(&buf, r); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		got, err := encoding.ReadRelation(&buf)
		if err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		if !got.Schema().Equal(r.Schema()) {
			t.Fatalf("case %d: schema changed", i)
		}
		if !got.Equal(r) {
			t.Fatalf("case %d: tuple set changed", i)
		}
		if !got.EquivalentTo(r) {
			t.Fatalf("case %d: denoted 1NF relation changed", i)
		}
	}
}

// TestTupleRoundTripProperty: every tuple of every random relation
// round-trips through EncodeTuple/DecodeTuple byte-exactly, and every
// strict prefix of its encoding is rejected.
func TestTupleRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i, r := range randomRelations(202, 20) {
		for j := 0; j < r.Len(); j++ {
			tp := r.Tuple(j)
			enc := encoding.EncodeTuple(tp)
			got, n, err := encoding.DecodeTuple(enc)
			if err != nil {
				t.Fatalf("case %d tuple %d: decode: %v", i, j, err)
			}
			if n != len(enc) {
				t.Fatalf("case %d tuple %d: consumed %d of %d bytes", i, j, n, len(enc))
			}
			if !got.Equal(tp) {
				t.Fatalf("case %d tuple %d: changed across round trip", i, j)
			}
			// truncations must error, never panic (sampled for speed)
			cut := rng.Intn(len(enc))
			if _, m, err := encoding.DecodeTuple(enc[:cut]); err == nil && m == cut && cut != len(enc) {
				// a shorter valid tuple prefix would re-decode with
				// m < cut only; m == cut means full consumption of a
				// truncated buffer, which must not happen silently
				t.Fatalf("case %d tuple %d: truncation to %d decoded fully", i, j, cut)
			}
		}
	}
}

// TestMixedKindAtomsRoundTrip exercises all atom kinds, including the
// edge payloads the generators never produce.
func TestMixedKindAtomsRoundTrip(t *testing.T) {
	atoms := []value.Atom{
		value.NullAtom(),
		value.NewBool(false), value.NewBool(true),
		value.NewInt(0), value.NewInt(-1), value.NewInt(1<<62 - 1), value.NewInt(-(1 << 62)),
		value.NewFloat(0), value.NewFloat(-0.0), value.NewFloat(3.5e-300), value.NewFloat(1e300),
		value.NewString(""), value.NewString("plain"), value.NewString("with \"quotes\" and \\"),
		value.NewString("unicode ⊥ ✓"), value.NewString(string([]byte{0, 1, 255})),
	}
	sets := make([]vset.Set, 0)
	for i := 0; i < len(atoms); i += 3 {
		end := i + 3
		if end > len(atoms) {
			end = len(atoms)
		}
		sets = append(sets, vset.New(atoms[i:end]...))
	}
	tp := tuple.MustNew(sets...)
	enc := encoding.EncodeTuple(tp)
	got, _, err := encoding.DecodeTuple(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tp) {
		t.Fatal("mixed-kind tuple changed across round trip")
	}
}

// TestPagedFormatRoundTripProperty: random relations written through
// the paged store (heap chains behind the buffer pool) and read back
// after a real close/reopen must match exactly — the on-disk format
// satellite of the encode/decode property.
func TestPagedFormatRoundTripProperty(t *testing.T) {
	rels := randomRelations(303, 12)
	dir := t.TempDir()
	for i, r := range rels {
		path := filepath.Join(dir, fmt.Sprintf("db%d.nfrs", i))
		st, err := store.Open(path, store.Options{PoolPages: 3})
		if err != nil {
			t.Fatal(err)
		}
		def := store.RelationDef{
			Name:   "r",
			Schema: r.Schema(),
			Order:  schema.IdentityPerm(r.Schema().Degree()),
		}
		txn := st.Begin()
		rs, err := st.CreateRelation(txn, def)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < r.Len(); j++ {
			if err := rs.Insert(txn, r.Tuple(j)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Commit(txn); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st2, err := store.Open(path, store.Options{PoolPages: 3})
		if err != nil {
			t.Fatalf("case %d: reopen: %v", i, err)
		}
		rs2, ok := st2.Rel("r")
		if !ok {
			t.Fatalf("case %d: relation lost", i)
		}
		got, err := rs2.Load()
		if err != nil {
			t.Fatalf("case %d: load: %v", i, err)
		}
		if !got.Schema().Equal(r.Schema()) || !got.Equal(r) {
			t.Fatalf("case %d: relation changed across paged round trip", i)
		}
		st2.Close()
	}
}
