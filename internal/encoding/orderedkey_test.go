package encoding

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/value"
)

// orderedCorpus spans every kind, the float specials, and the
// cross-kind boundaries value.Compare totalizes.
func orderedCorpus() []value.Atom {
	return []value.Atom{
		value.NullAtom(),
		value.NewBool(false), value.NewBool(true),
		value.NewInt(math.MinInt64), value.NewInt(-1000), value.NewInt(-1),
		value.NewInt(0), value.NewInt(1), value.NewInt(127), value.NewInt(128),
		value.NewInt(1 << 40), value.NewInt(math.MaxInt64),
		value.NewFloat(math.NaN()), value.NewFloat(math.Float64frombits(0xFFF8000000000001)),
		value.NewFloat(math.Inf(-1)), value.NewFloat(-math.MaxFloat64),
		value.NewFloat(-1.5), value.NewFloat(-math.SmallestNonzeroFloat64),
		value.NewFloat(math.Copysign(0, -1)), value.NewFloat(0),
		value.NewFloat(math.SmallestNonzeroFloat64), value.NewFloat(1.5),
		value.NewFloat(math.MaxFloat64), value.NewFloat(math.Inf(1)),
		value.NewString(""), value.NewString("a"), value.NewString("ab"),
		value.NewString("b"), value.NewString("ba"), value.NewString("\xff"),
		value.NewString("\xff\x00"),
	}
}

// TestOrderedAtomIsomorphicToCompare is the codec's contract: for every
// pair in the corpus plus a fuzzed batch, bytes.Compare of encodings
// equals the sign of value.Compare — including equal-but-different-bits
// atoms (−0 vs +0, distinct NaN payloads), which must encode
// identically.
func TestOrderedAtomIsomorphicToCompare(t *testing.T) {
	atoms := orderedCorpus()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		switch rng.Intn(3) {
		case 0:
			atoms = append(atoms, value.NewInt(rng.Int63()-rng.Int63()))
		case 1:
			atoms = append(atoms, value.NewFloat((rng.Float64()-0.5)*math.Pow(10, float64(rng.Intn(40)-20))))
		default:
			b := make([]byte, rng.Intn(6))
			rng.Read(b)
			atoms = append(atoms, value.NewString(string(b)))
		}
	}
	sign := func(n int) int {
		switch {
		case n < 0:
			return -1
		case n > 0:
			return 1
		}
		return 0
	}
	for _, x := range atoms {
		for _, y := range atoms {
			want := sign(value.Compare(x, y))
			got := sign(bytes.Compare(AppendOrderedAtom(nil, x), AppendOrderedAtom(nil, y)))
			if got != want {
				t.Fatalf("order mismatch: Compare(%v, %v) = %d, key order %d", x, y, want, got)
			}
		}
	}
}

// TestOrderedAtomRoundTrip checks decode inverts encode up to the
// equivalences the codec collapses (−0 → +0, NaN payloads → canonical
// NaN): the decoded atom must compare equal to the original and
// re-encode to the same bytes.
func TestOrderedAtomRoundTrip(t *testing.T) {
	for _, a := range orderedCorpus() {
		key := AppendOrderedAtom(nil, a)
		back, err := DecodeOrderedAtom(key)
		if err != nil {
			t.Fatalf("decode %v: %v", a, err)
		}
		if value.Compare(a, back) != 0 {
			t.Fatalf("round trip of %v compares unequal: %v", a, back)
		}
		if again := AppendOrderedAtom(nil, back); !bytes.Equal(again, key) {
			t.Fatalf("re-encode of %v diverged: %x vs %x", a, again, key)
		}
	}
	if _, err := DecodeOrderedAtom(nil); err == nil {
		t.Fatal("empty buffer decoded")
	}
	for _, bad := range [][]byte{{byte(value.Bool)}, {byte(value.Bool), 2}, {byte(value.Int), 1, 2}, {99}} {
		if _, err := DecodeOrderedAtom(bad); err == nil {
			t.Fatalf("corrupt key %x decoded", bad)
		}
	}
}
