package engine

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// This file is the engine-level crash-injection harness for
// multi-statement transactions: the whole database lives in an
// in-memory filesystem that journals every write, ONE transaction of
// several statements across TWO relations commits as one merged WAL
// group, and a crash is re-created at EVERY byte offset of the journal
// (in-order and reordered modes). Recovery must always land on a
// whole-TRANSACTION boundary: both relations together are either the
// pre-Begin state or the committed state — never a mix, never a
// mid-statement form. (The store-level harness in internal/store
// covers per-statement and merged-group tearing; this one pins the
// engine's Tx bracketing to the same guarantee.)

// txOp is one journaled mutation of the recording filesystem.
type txOp struct {
	name string
	kind byte // 'w' write, 't' truncate, 's' sync
	off  int64
	data []byte
	size int64
}

func (op txOp) cost() int64 {
	switch op.kind {
	case 'w':
		return int64(len(op.data))
	case 't':
		return 1
	default:
		return 0
	}
}

// txFS is a minimal in-memory filesystem implementing the storage.File
// contract with a write journal (a sibling of the store package's
// crash harness, kept local because that one lives in test code).
type txFS struct {
	mu        sync.Mutex
	files     map[string][]byte
	journal   []txOp
	recording bool
}

func newTxFS() *txFS { return &txFS{files: map[string][]byte{}} }

func (m *txFS) open(name string, create bool) (storage.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		if !create {
			return nil, fmt.Errorf("txfs: open %s: %w", name, fs.ErrNotExist)
		}
		m.files[name] = nil
	}
	return &txFile{fs: m, name: name}, nil
}

func (m *txFS) remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fs.ErrNotExist
	}
	delete(m.files, name)
	return nil
}

func (m *txFS) snapshot() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.files))
	for n, b := range m.files {
		out[n] = append([]byte(nil), b...)
	}
	return out
}

type txFile struct {
	fs   *txFS
	name string
}

func (f *txFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	b := f.fs.files[f.name]
	if off >= int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *txFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	txApplyWrite(f.fs.files, f.name, off, p)
	if f.fs.recording {
		f.fs.journal = append(f.fs.journal, txOp{name: f.name, kind: 'w', off: off, data: append([]byte(nil), p...)})
	}
	return len(p), nil
}

func (f *txFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	txApplyTruncate(f.fs.files, f.name, size)
	if f.fs.recording {
		f.fs.journal = append(f.fs.journal, txOp{name: f.name, kind: 't', size: size})
	}
	return nil
}

func (f *txFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.recording {
		f.fs.journal = append(f.fs.journal, txOp{name: f.name, kind: 's'})
	}
	return nil
}

func (f *txFile) Close() error { return nil }

func (f *txFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.fs.files[f.name])), nil
}

func txApplyWrite(files map[string][]byte, name string, off int64, p []byte) {
	b := files[name]
	if need := off + int64(len(p)); need > int64(len(b)) {
		nb := make([]byte, need)
		copy(nb, b)
		b = nb
	}
	copy(b[off:], p)
	files[name] = b
}

func txApplyTruncate(files map[string][]byte, name string, size int64) {
	b := files[name]
	if size <= int64(len(b)) {
		files[name] = b[:size]
	} else {
		nb := make([]byte, size)
		copy(nb, b)
		files[name] = nb
	}
}

// txCrashState materializes the durable state a crash at byte offset k
// of the journal would leave. inorder applies the journal up to k,
// tearing the op containing k; reordered persists only what the last
// fsync barrier before k covered plus the torn op's prefix (the OS
// dropped everything unsynced).
func txCrashState(base map[string][]byte, journal []txOp, k int64, reordered bool) map[string][]byte {
	files := make(map[string][]byte, len(base))
	for n, b := range base {
		files[n] = append([]byte(nil), b...)
	}
	apply := func(op txOp, upto int64) {
		switch op.kind {
		case 'w':
			if upto > int64(len(op.data)) {
				upto = int64(len(op.data))
			}
			txApplyWrite(files, op.name, op.off, op.data[:upto])
		case 't':
			if upto > 0 {
				txApplyTruncate(files, op.name, op.size)
			}
		}
	}
	if !reordered {
		at := int64(0)
		for _, op := range journal {
			c := op.cost()
			if at+c <= k {
				apply(op, c)
				at += c
				continue
			}
			apply(op, k-at)
			break
		}
		return files
	}
	at := int64(0)
	tornIdx, tornBytes := -1, int64(0)
	for i, op := range journal {
		c := op.cost()
		if at+c > k {
			tornIdx, tornBytes = i, k-at
			break
		}
		at += c
	}
	if tornIdx == -1 {
		tornIdx = len(journal)
	}
	lastSync := 0
	for i := 0; i < tornIdx; i++ {
		if journal[i].kind == 's' {
			lastSync = i + 1
		}
	}
	for i := 0; i < lastSync; i++ {
		apply(journal[i], journal[i].cost())
	}
	if tornIdx < len(journal) {
		apply(journal[tornIdx], tornBytes)
	}
	return files
}

// TestTxCrashRecoveryEveryOffset: a 4-statement transaction on two
// relations commits as one WAL group; a crash at every byte offset of
// the journal (both replay modes) must recover BOTH relations on the
// same side of the transaction boundary with every page checksum-valid.
func TestTxCrashRecoveryEveryOffset(t *testing.T) {
	fsys := newTxFS()
	open := func() *Database {
		t.Helper()
		db, err := Open("db",
			WithFileSystem(fsys.open, fsys.remove),
			WithPoolPages(8), WithCheckpointBytes(-1))
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	// base: two relations with committed seed data, cleanly closed
	db := open()
	seed := []tuple.Flat{
		row("s1", "c1", "b1"), row("s1", "c2", "b1"), row("s2", "c1", "b2"),
	}
	for _, name := range []string{"r1", "r2"} {
		if err := db.Create(txTestDef(name)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.InsertMany(name, seed); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// reference states: pre = the seed; post = seed + the transaction
	pre := loadRels(t, fsys.snapshot(), "reference pre")
	db2 := open()
	defer db2.Close()
	// base = the files at recording start; every crash state is the
	// journal's prefix replayed over it
	base := fsys.snapshot()
	fsys.mu.Lock()
	fsys.recording = true
	fsys.journal = nil
	fsys.mu.Unlock()
	tx, err := db2.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stmts := []struct {
		rel    string
		f      tuple.Flat
		insert bool
	}{
		{"r1", row("s9", "c9", "b9"), true},
		{"r1", row("s1", "c1", "b1"), false},
		{"r2", row("s2", "c4", "b2"), true},
		{"r2", row("s7", "c7", "b7"), true},
	}
	for i, s := range stmts {
		var err error
		if s.insert {
			_, err = tx.Insert(s.rel, s.f)
		} else {
			_, err = tx.Delete(s.rel, s.f)
		}
		if err != nil {
			t.Fatalf("statement %d: %v", i, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	fsys.mu.Lock()
	fsys.recording = false
	journal := fsys.journal
	fsys.mu.Unlock()
	post := loadRels(t, fsys.snapshot(), "reference post")
	if pre["r1"].Equal(post["r1"]) || pre["r2"].Equal(post["r2"]) {
		t.Fatal("transaction changed nothing; harness is vacuous")
	}

	total := int64(0)
	for _, op := range journal {
		total += op.cost()
	}
	if total == 0 {
		t.Fatal("empty journal")
	}
	t.Logf("journal: %d ops, %d injection points", len(journal), total)

	// fan the independent per-offset recoveries out across CPUs — the
	// journal now carries index pages in every batch, so the every-byte
	// sweep is wide. -short (CI's repeated -race job) strides the
	// offsets; the default run covers every byte.
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	workers := runtime.GOMAXPROCS(0)
	var next, failed atomic.Int64
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := (next.Add(1) - 1) * stride
				if k > total || failed.Load() != 0 {
					return
				}
				for _, mode := range []string{"inorder", "reordered"} {
					state := txCrashState(base, journal, k, mode == "reordered")
					label := fmt.Sprintf("%s@%d", mode, k)
					got, err := loadRelsErr(state, label)
					if err == nil {
						preSide := got["r1"].Equal(pre["r1"]) && got["r2"].Equal(pre["r2"])
						postSide := got["r1"].Equal(post["r1"]) && got["r2"].Equal(post["r2"])
						if !preSide && !postSide {
							err = fmt.Errorf("%s: recovery not on a transaction boundary:\nr1 %v\nr2 %v",
								label, got["r1"], got["r2"])
						}
					}
					if err != nil {
						if failed.CompareAndSwap(0, 1) {
							errs <- err
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// loadRels opens the database in the given filesystem state (running
// recovery), loads r1 and r2, verifies the durable indexes against the
// heap oracle, and checks every referenced page is checksum-valid.
func loadRels(t *testing.T, files map[string][]byte, label string) map[string]*core.Relation {
	t.Helper()
	out, err := loadRelsErr(files, label)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func loadRelsErr(files map[string][]byte, label string) (map[string]*core.Relation, error) {
	crashed := &txFS{files: files}
	// the verification open gets a roomy pool: recovery correctness
	// cannot depend on pool size (the writer side and the storage-layer
	// sweeps keep exercising redo under 8 pages), and the per-offset
	// index verification walks every tree repeatedly — through a tiny
	// pool that is thousands of checksummed re-reads per offset
	db, err := Open("db",
		WithFileSystem(crashed.open, crashed.remove),
		WithPoolPages(128), WithCheckpointBytes(-1))
	if err != nil {
		return nil, fmt.Errorf("%s: recovery failed: %v", label, err)
	}
	out := make(map[string]*core.Relation, 2)
	for _, name := range []string{"r1", "r2"} {
		rel, err := db.ReadRelation(context.Background(), name)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("%s: load %s: %v", label, name, err)
		}
		out[name] = rel
		// the recovered B+tree must answer an unbounded range scan with
		// exactly the heap's canonical tuples
		if info, err := db.IndexInfo(name); err == nil && info.HasRange && info.Shards == 1 {
			byIdx, _, err := db.ScanFixedRange(name, nil, nil)
			if err != nil {
				db.Close()
				return nil, fmt.Errorf("%s: range scan of recovered %s: %v", label, name, err)
			}
			if !byIdx.Equal(rel) {
				db.Close()
				return nil, fmt.Errorf("%s: recovered B+tree of %s disagrees with heap scan", label, name)
			}
		}
	}
	// recovery must land heap and index on the same boundary
	if err := db.VerifyIndexes(); err != nil {
		db.Close()
		return nil, fmt.Errorf("%s: index diverged from heap oracle: %v", label, err)
	}
	// checksum-check the pages the recovered state references; pages
	// stranded by uncommitted allocations are exempt (see the store
	// harness for why)
	ref, err := db.st.ReferencedPages()
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("%s: walking recovered chains: %v", label, err)
	}
	db.Close()
	data := files["db"]
	if len(data)%storage.PageSize != 0 {
		return nil, fmt.Errorf("%s: recovered file size %d ragged", label, len(data))
	}
	var p storage.Page
	for pid := 0; pid < len(data)/storage.PageSize; pid++ {
		if !ref[uint32(pid+1)] {
			continue
		}
		copy(p[:], data[pid*storage.PageSize:])
		if err := p.VerifyChecksum(); err != nil {
			return nil, fmt.Errorf("%s: page %d of recovered file: %v", label, pid+1, err)
		}
	}
	return out, nil
}
