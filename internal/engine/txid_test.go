package engine

import (
	"context"
	"sync"
	"testing"
)

// TestTxIDsProcessWide is the regression test for the wait-die id gap:
// transaction ids are ages, and the no-deadlock argument needs a TOTAL
// order over every transaction that can contend. A server hosts many
// sessions (and conceivably several Database instances in one
// process), so ids must come from one process-wide monotonic source —
// a per-Database counter would mint the same age twice across
// databases and quietly break wait-die's strictly-decreasing-age
// invariant.
func TestTxIDsProcessWide(t *testing.T) {
	dbs := []*Database{New(), New(), New()}
	ctx := context.Background()

	// Interleaved begins across databases: every id unique, and within
	// each database strictly increasing (ages grow with begin order).
	seen := make(map[uint64]bool)
	var lastPerDB [3]uint64
	for round := 0; round < 50; round++ {
		for i, db := range dbs {
			tx, err := db.Begin(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if seen[tx.id] {
				t.Fatalf("round %d db %d: id %d minted twice across databases", round, i, tx.id)
			}
			seen[tx.id] = true
			if tx.id <= lastPerDB[i] {
				t.Fatalf("round %d db %d: id %d not monotonic (prev %d)", round, i, tx.id, lastPerDB[i])
			}
			lastPerDB[i] = tx.id
			if err := tx.Rollback(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Concurrent begins (the server's shape: one goroutine per
	// connection) still mint unique ids.
	const goroutines, perG = 16, 100
	ids := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			db := dbs[g%len(dbs)]
			for i := 0; i < perG; i++ {
				tx, err := db.Begin(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				ids[g] = append(ids[g], tx.id)
				tx.Rollback()
			}
		}(g)
	}
	wg.Wait()
	all := make(map[uint64]bool)
	for g := range ids {
		for _, id := range ids[g] {
			if all[id] {
				t.Fatalf("id %d minted twice under concurrency", id)
			}
			all[id] = true
		}
	}
	if len(all) != goroutines*perG {
		t.Fatalf("got %d ids, want %d", len(all), goroutines*perG)
	}
}
