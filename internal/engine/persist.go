package engine

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dep"
	"repro/internal/encoding"
	"repro/internal/schema"
	"repro/internal/update"
)

// Save persists the database to a directory: a MANIFEST file listing
// each relation's definition and one binary .nfr file per relation.
func (db *Database) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	mf, err := os.Create(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		return err
	}
	defer mf.Close()
	w := bufio.NewWriter(mf)
	for _, name := range db.Names() {
		r, err := db.Rel(name)
		if err != nil {
			return err
		}
		def := r.Def()
		fmt.Fprintf(w, "relation %s\n", name)
		fmt.Fprintf(w, "order %s\n", strings.Join(def.Order.Names(def.Schema), ","))
		for _, f := range def.FDs {
			fmt.Fprintf(w, "fd %s : %s\n",
				strings.Join(f.Lhs.Sorted(), ","), strings.Join(f.Rhs.Sorted(), ","))
		}
		for _, m := range def.MVDs {
			fmt.Fprintf(w, "mvd %s : %s\n",
				strings.Join(m.Lhs.Sorted(), ","), strings.Join(m.Rhs.Sorted(), ","))
		}
		fmt.Fprintln(w, "end")
		rf, err := os.Create(filepath.Join(dir, name+".nfr"))
		if err != nil {
			return err
		}
		if err := encoding.WriteRelation(rf, r.Relation()); err != nil {
			rf.Close()
			return err
		}
		if err := rf.Close(); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Load restores a database saved by Save.
func Load(dir string) (*Database, error) {
	mf, err := os.Open(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	db := New()
	sc := bufio.NewScanner(mf)
	var cur *RelationDef
	var orderNames []string
	flush := func() error {
		if cur == nil {
			return nil
		}
		rf, err := os.Open(filepath.Join(dir, cur.Name+".nfr"))
		if err != nil {
			return err
		}
		rel, err := encoding.ReadRelation(rf)
		rf.Close()
		if err != nil {
			return err
		}
		cur.Schema = rel.Schema()
		if len(orderNames) > 0 {
			p, err := schema.PermOf(cur.Schema, orderNames...)
			if err != nil {
				return err
			}
			cur.Order = p
		}
		if err := db.Create(*cur); err != nil {
			return err
		}
		r, err := db.Rel(cur.Name)
		if err != nil {
			return err
		}
		m, err := update.FromRelationIndexed(rel, cur.Order)
		if err != nil {
			return err
		}
		r.m = m
		cur = nil
		orderNames = nil
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "relation":
			if len(fields) != 2 {
				return nil, fmt.Errorf("engine: bad manifest line %q", line)
			}
			cur = &RelationDef{Name: fields[1]}
		case "order":
			if cur == nil || len(fields) != 2 {
				return nil, fmt.Errorf("engine: bad manifest line %q", line)
			}
			orderNames = strings.Split(fields[1], ",")
		case "fd", "mvd":
			if cur == nil || len(fields) != 4 || fields[2] != ":" {
				return nil, fmt.Errorf("engine: bad manifest line %q", line)
			}
			lhs := strings.Split(fields[1], ",")
			rhs := strings.Split(fields[3], ",")
			if fields[0] == "fd" {
				cur.FDs = append(cur.FDs, dep.NewFD(lhs, rhs))
			} else {
				cur.MVDs = append(cur.MVDs, dep.NewMVD(lhs, rhs))
			}
		case "end":
			if err := flush(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("engine: bad manifest directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("engine: manifest truncated (missing end)")
	}
	return db, nil
}
