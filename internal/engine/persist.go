package engine

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/store"
)

// Save persists a point-in-time snapshot of the database into a single
// paged file at path (the store format: catalog page + per-relation
// heap chains — see docs/storage.md). An existing file is replaced
// atomically via a temporary file and rename. A disk-backed database
// saving to its own path just flushes the buffer pool: the paged file
// is already the database.
func (db *Database) Save(path string) error {
	if db.st != nil && db.isOwnFile(path) {
		return db.Flush()
	}
	tmp := path + ".tmp"
	if err := os.Remove(tmp); err != nil && !os.IsNotExist(err) {
		return err
	}
	// also clear any WAL sidecar a crashed previous Save left behind —
	// store.Open would otherwise replay its stale batches into the
	// fresh snapshot
	if err := os.Remove(tmp + ".wal"); err != nil && !os.IsNotExist(err) {
		return err
	}
	st, err := store.Open(tmp, store.Options{})
	if err != nil {
		return err
	}
	// the whole snapshot is one transaction, committed before the close
	txn := st.Begin()
	for _, name := range db.Names() {
		r, err := db.Rel(name)
		if err != nil {
			st.Close()
			os.Remove(tmp)
			return err
		}
		def := r.Def()
		rs, err := st.CreateRelation(txn, store.RelationDef{
			Name: def.Name, Schema: def.Schema, Order: def.Order,
			FDs: def.FDs, MVDs: def.MVDs, Shards: def.Shards,
		})
		if err == nil {
			// materialize explicitly: Relation() hides errors behind nil
			var rel *core.Relation
			if rel, _, err = r.canonical(nil); err == nil {
				// Fill re-partitions the global canonical form across the
				// snapshot's shards (a global tuple's fixed atoms can span
				// shards)
				err = rs.Fill(txn, rel)
			}
		}
		if err != nil {
			st.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := st.Commit(txn); err != nil {
		st.Close()
		os.Remove(tmp)
		return err
	}
	if err := st.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// If path holds a crashed database, its WAL sidecar must not
	// survive the replacement: store.Open would replay the old
	// database's committed page images into the fresh snapshot.
	// Removing it first means a crash inside this window degrades the
	// doomed old file to fail-stop (it was being replaced anyway)
	// instead of silently corrupting the new one.
	if err := os.Remove(path + ".wal"); err != nil && !os.IsNotExist(err) {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// isOwnFile reports whether path names the live paged file, comparing
// inodes (not strings) so relative paths, aliases and symlinks cannot
// trick Save into renaming a snapshot over the file the open pager
// still holds — which would silently orphan all further writes.
func (db *Database) isOwnFile(path string) bool {
	if path == db.path {
		return true
	}
	fi, err := os.Stat(path)
	if err != nil {
		return false // target doesn't exist, cannot be the live file
	}
	own, err := os.Stat(db.path)
	if err != nil {
		return false
	}
	return os.SameFile(fi, own)
}

// Load restores a database saved by Save into memory mode: the paged
// file is read once (relations, nest orders, dependencies, tuples) and
// then closed. Use Open instead to keep the file live with write-
// through updates.
//
// Loading a cleanly closed file never writes. Loading a crashed file —
// one whose WAL sidecar still holds committed batches — first completes
// crash recovery (store.Open replays the log into the data file), which
// is the only circumstance under which Load writes.
func Load(path string) (*Database, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("engine: load %s: %w", path, err)
	}
	// A zero-length file would be initialized (written!) by store.Open's
	// create-if-empty path; a read-only load must reject it instead.
	if fi.Size() == 0 {
		return nil, fmt.Errorf("engine: load %s: not a database file (empty)", path)
	}
	// NoSweep: Load must not perform the orphan sweep — recovery aside,
	// it never writes.
	st, err := store.Open(path, store.Options{NoSweep: true})
	if err != nil {
		return nil, err
	}
	// Discard, never flush: Load must not write to the file under any
	// circumstance (read-only attaches leave no dirty pages anyway).
	defer st.Discard()
	db := New()
	for _, name := range st.Relations() {
		rs, _ := st.Rel(name)
		// read-only attach: no sink, and never writes back to the file
		if err := db.attach(rs); err != nil {
			return nil, err
		}
	}
	return db, nil
}
