// Indexed read paths: the engine surface the query planner chooses
// between. A point probe rides the durable fixed-attribute hash index
// of the one shard owning the atom; a range scan rides the per-shard
// ordered B+trees. Both return STORED (shard-canonical) tuples —
// exactly the canonical tuples a heap scan of the same shards would
// produce — so a caller that re-applies its full predicate gets
// Select(R, p) whenever the index fetch is a superset of the matching
// tuples (the planner's soundness rules guarantee that; see
// internal/query/plan.go).
package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/value"
)

// Bound is one end of a determinant-atom range; nil pointers stand for
// an unbounded side.
type Bound struct {
	Atom value.Atom
	Incl bool
}

func (b *Bound) toStore() *store.RangeBound {
	if b == nil {
		return nil
	}
	return &store.RangeBound{Atom: b.Atom, Incl: b.Incl}
}

// IndexInfo describes the named relation's physical access paths — the
// planner's catalog view.
type IndexInfo struct {
	Shards    int
	FixedAttr string // attribute the canonical form is fixed on (index key)
	HasPoint  bool   // fixed-atom hash index answers equality probes
	HasRange  bool   // B+tree range index answers ordered scans
}

// IndexInfo reports the named relation's access paths. Memory-mode
// relations have none (every read is the resident canonical form);
// disk-backed relations always probe by point, and answer ranges when
// every shard carries a B+tree (legacy files attached without write
// permission may not).
func (db *Database) IndexInfo(name string) (IndexInfo, error) {
	r, err := db.Rel(name)
	if err != nil {
		return IndexInfo{}, err
	}
	return indexInfoOf(r), nil
}

// IndexInfo is the transaction view of the relation's access paths; it
// sees relations created (and respects drops) inside this transaction.
func (tx *Tx) IndexInfo(name string) (IndexInfo, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.usable(); err != nil {
		return IndexInfo{}, err
	}
	r, err := tx.rel(name)
	if err != nil {
		return IndexInfo{}, err
	}
	return indexInfoOf(r), nil
}

func indexInfoOf(r *Rel) IndexInfo {
	info := IndexInfo{
		Shards:    len(r.shards),
		FixedAttr: r.def.Schema.Attr(r.def.Order[len(r.def.Order)-1]).Name,
	}
	if r.rs != nil {
		info.HasPoint = true
		info.HasRange = r.rs.HasRangeIndex()
	}
	return info
}

// LookupFixed returns the stored tuples whose fixed component contains
// atom a, via the owning shard's hash index (autocommit: the shard is
// latched for the probe and released).
func (db *Database) LookupFixed(name string, a value.Atom) (*core.Relation, error) {
	var rel *core.Relation
	err := db.autocommit(func(tx *Tx) error {
		var err error
		rel, err = tx.LookupFixed(name, a)
		return err
	})
	return rel, err
}

// ScanFixedRange returns the stored tuples with at least one fixed
// atom in [lo, hi] (nil = unbounded), via the B+tree range indexes,
// plus the number of index pages read (autocommit: every shard latch
// is taken for the scan and released).
func (db *Database) ScanFixedRange(name string, lo, hi *Bound) (*core.Relation, int, error) {
	var rel *core.Relation
	pages := 0
	err := db.autocommit(func(tx *Tx) error {
		var err error
		rel, pages, err = tx.ScanFixedRange(name, lo, hi)
		return err
	})
	return rel, pages, err
}

// LookupFixed returns the stored tuples whose fixed component contains
// atom a, as this transaction sees them (its own uncommitted writes
// included). Only the shard owning the atom is latched — concurrent
// statements on other shards proceed.
func (tx *Tx) LookupFixed(name string, a value.Atom) (*core.Relation, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.usable(); err != nil {
		return nil, err
	}
	r, err := tx.rel(name)
	if err != nil {
		return nil, err
	}
	if r.rs == nil {
		return nil, fmt.Errorf("engine: relation %q has no durable index", name)
	}
	sh := r.shards[store.ShardOfAtom(a, len(r.shards))]
	if err := tx.latchShard(sh); err != nil {
		return nil, err
	}
	ts, err := r.rs.LookupFixed(a)
	if err != nil {
		return nil, err
	}
	rel := core.NewRelation(r.def.Schema)
	for _, t := range ts {
		rel.Add(t)
	}
	return rel, nil
}

// ScanFixedRange returns the stored tuples with at least one fixed
// atom in [lo, hi] (nil = unbounded) as this transaction sees them,
// plus the index pages the scan read. Every shard latch is taken (a
// range spans the hash-partitioned shards). On a K-sharded relation
// the union of shard partitions is re-canonicalized, like
// ReadRelation; the planner only routes single-shard relations here,
// where the fetched tuples are canonical tuples of the relation
// verbatim.
func (tx *Tx) ScanFixedRange(name string, lo, hi *Bound) (*core.Relation, int, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.usable(); err != nil {
		return nil, 0, err
	}
	r, err := tx.rel(name)
	if err != nil {
		return nil, 0, err
	}
	if r.rs == nil {
		return nil, 0, fmt.Errorf("engine: relation %q has no durable index", name)
	}
	if err := tx.latchRel(r); err != nil {
		return nil, 0, err
	}
	ts, pages, err := r.rs.ScanFixedRange(lo.toStore(), hi.toStore())
	if err != nil {
		return nil, 0, err
	}
	rel := core.NewRelation(r.def.Schema)
	for _, t := range ts {
		rel.Add(t)
	}
	if len(r.shards) > 1 {
		rel, _ = rel.CanonicalFromFlats(r.def.Order)
	}
	return rel, pages, nil
}

// IndexPageStats reports every disk-backed relation's index footprint
// by structure (hash directory/buckets, B+tree inner/leaf) — the
// \stats surface that makes directory growth observable. Empty (not
// nil) in memory mode.
func (db *Database) IndexPageStats() (map[string]store.IndexPageCounts, error) {
	out := make(map[string]store.IndexPageCounts)
	if db.st == nil || db.isClosed() {
		return out, nil
	}
	db.mu.RLock()
	rels := make(map[string]*Rel, len(db.rels))
	for n, r := range db.rels {
		rels[n] = r
	}
	db.mu.RUnlock()
	for name, r := range rels {
		if r.rs == nil {
			continue
		}
		c, err := r.rs.IndexPageCounts()
		if err != nil {
			return nil, fmt.Errorf("engine: index stats of %q: %w", name, err)
		}
		out[name] = c
	}
	return out, nil
}
