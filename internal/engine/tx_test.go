package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/tuple"
)

func txTestDef(name string) RelationDef {
	sch := schema.MustOf("Student", "Course", "Club")
	return RelationDef{
		Name: name, Schema: sch,
		Order: schema.MustPermOf(sch, "Course", "Club", "Student"),
	}
}

func row(ss ...string) tuple.Flat { return tuple.FlatOfStrings(ss...) }

// TestTxMultiStatementSingleFsync is the headline acceptance property:
// a transaction of ≥3 statements across ≥2 relations commits with
// exactly one fsync.
func TestTxMultiStatementSingleFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tx.nfrs")
	db, err := Open(path, WithPoolPages(16))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, name := range []string{"r1", "r2"} {
		if err := db.Create(txTestDef(name)); err != nil {
			t.Fatal(err)
		}
	}
	ws0, _ := db.WALStats()
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, stmt := range []struct {
		rel string
		f   tuple.Flat
	}{
		{"r1", row("s1", "c1", "b1")},
		{"r1", row("s1", "c2", "b1")},
		{"r2", row("s2", "c1", "b2")},
		{"r2", row("s2", "c3", "b2")},
	} {
		ch, err := tx.Insert(stmt.rel, stmt.f)
		if err != nil {
			t.Fatalf("statement %d: %v", i, err)
		}
		if !ch {
			t.Fatalf("statement %d did not change the relation", i)
		}
	}
	mid, _ := db.WALStats()
	if mid.Fsyncs != ws0.Fsyncs {
		t.Fatalf("fsyncs before commit: %d", mid.Fsyncs-ws0.Fsyncs)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ws1, _ := db.WALStats()
	if got := ws1.Fsyncs - ws0.Fsyncs; got != 1 {
		t.Fatalf("4 statements on 2 relations committed with %d fsyncs, want exactly 1", got)
	}
	// durable across reopen
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r1, err := db2.ReadRelation(context.Background(), "r1")
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExpansionSize() != 2 {
		t.Fatalf("r1 reopened with %d flat tuples, want 2", r1.ExpansionSize())
	}
}

// TestTxRollbackBitIdentical: a rolled-back transaction leaves both
// files byte-identical to the pre-Begin state and the live engine
// equivalent to an oracle that never saw the transaction.
func TestTxRollbackBitIdentical(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rb.nfrs")
	db, err := Open(path, WithPoolPages(32))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	oracle := New()
	seed := []tuple.Flat{
		row("s1", "c1", "b1"), row("s1", "c2", "b1"),
		row("s2", "c1", "b2"), row("s3", "c3", "b1"),
	}
	for _, name := range []string{"r1", "r2"} {
		for _, d := range []*Database{db, oracle} {
			if err := d.Create(txTestDef(name)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := db.InsertMany(name, seed); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.InsertMany(name, seed); err != nil {
			t.Fatal(err)
		}
	}
	// checkpoint so the WAL is empty and the data file quiescent
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// mixed inserts and deletes across both relations — all of it must
	// vanish (the workload fits existing pages, so even the file length
	// is untouched)
	for _, name := range []string{"r1", "r2"} {
		if _, err := tx.Insert(name, row("s9", "c9", "b9")); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Delete(name, row("s1", "c1", "b1")); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Insert(name, row("s2", "c7", "b2")); err != nil {
			t.Fatal(err)
		}
	}
	// the transaction sees its own writes
	mine, err := tx.ReadRelation(nil, "r1")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oracle.ReadRelation(nil, "r1")
	if mine.Equal(want) {
		t.Fatal("transaction does not see its own writes")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("data file changed across rolled-back transaction (%d -> %d bytes)", len(before), len(after))
	}
	if _, err := os.Stat(path + ".wal"); err == nil {
		// nothing but the 28-byte header may remain after the rollback
		if b, _ := os.ReadFile(path + ".wal"); len(b) > 28 {
			t.Fatalf("WAL grew across rolled-back transaction: %d bytes", len(b))
		}
	}
	// live equivalence, then across a reopen
	verify := func(d *Database, label string) {
		t.Helper()
		for _, name := range []string{"r1", "r2"} {
			got, err := d.ReadRelation(nil, name)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			want, _ := oracle.ReadRelation(nil, name)
			if !got.Equal(want) || !got.EquivalentTo(want) {
				t.Fatalf("%s: %s diverged after rollback:\ngot  %v\nwant %v", label, name, got, want)
			}
		}
	}
	verify(db, "live")
	// the engine keeps working after the rollback
	if _, err := db.Insert("r1", row("s5", "c5", "b5")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("r1", row("s5", "c5", "b5")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	verify(db2, "reopened")
}

// TestTxRollbackDDL: creates and drops inside a rolled-back transaction
// leave no trace, live or across a reopen.
func TestTxRollbackDDL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ddl.nfrs")
	db, err := Open(path, WithPoolPages(16))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Create(txTestDef("keep")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("keep", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Create(txTestDef("fresh")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("fresh", row("s2", "c2", "b2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Drop("keep"); err != nil {
		t.Fatal(err)
	}
	// invisible to the outside while open: "fresh" unknown, "keep" alive
	if _, err := db.Rel("fresh"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted create visible: %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rel("fresh"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rolled-back create survived: %v", err)
	}
	rel, err := db.ReadRelation(nil, "keep")
	if err != nil {
		t.Fatalf("rolled-back drop stuck: %v", err)
	}
	if rel.Len() != 1 {
		t.Fatalf("keep has %d tuples, want 1", rel.Len())
	}
	// the name is reusable and the engine consistent across reopen
	if err := db.Create(txTestDef("fresh")); err != nil {
		t.Fatalf("create after rolled-back create: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rel, err := db2.ReadRelation(nil, "keep"); err != nil || rel.Len() != 1 {
		t.Fatalf("reopened keep: %v (len %d)", err, rel.Len())
	}
}

// TestTxCommitPublishesDDL: a committed transaction's create appears,
// its drop disappears, and both are durable.
func TestTxCommitPublishesDDL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pub.nfrs")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Create(txTestDef("old")); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin(nil)
	if err := tx.Create(txTestDef("new")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("new", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Drop("old"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Rel("old"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("committed drop still visible: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rel, err := db2.ReadRelation(nil, "new"); err != nil || rel.Len() != 1 {
		t.Fatalf("reopened new: %v", err)
	}
	if _, err := db2.Rel("old"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped relation resurrected: %v", err)
	}
}

// TestCloseRollsBackOpenTx: Close is idempotent and rolls back (not
// wedges) a still-open transaction, whose handle then answers
// ErrTxDone.
func TestCloseRollsBackOpenTx(t *testing.T) {
	path := filepath.Join(t.TempDir(), "close.nfrs")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Create(txTestDef("r")); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("r", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v (want nil)", err)
	}
	if _, err := tx.Insert("r", row("s2", "c2", "b2")); !errors.Is(err, ErrTxDone) {
		t.Fatalf("insert on rolled-back handle: %v (want ErrTxDone)", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("commit on rolled-back handle: %v (want ErrTxDone)", err)
	}
	// the uncommitted statement is gone
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rel, err := db2.ReadRelation(nil, "r")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Fatalf("uncommitted statement survived Close: %d tuples", rel.Len())
	}
}

// TestTxDoneAfterCommitAndRollback: every method of a finished handle
// answers ErrTxDone, including double Commit/Rollback.
func TestTxDoneAfterCommitAndRollback(t *testing.T) {
	db := New()
	if err := db.Create(txTestDef("r")); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin(nil)
	if _, err := tx.Insert("r", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("second commit: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("rollback after commit: %v", err)
	}
	if _, err := tx.ReadRelation(nil, "r"); !errors.Is(err, ErrTxDone) {
		t.Fatalf("read after commit: %v", err)
	}
	tx2, _ := db.Begin(nil)
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Delete("r", row("s1", "c1", "b1")); !errors.Is(err, ErrTxDone) {
		t.Fatalf("delete after rollback: %v", err)
	}
}

// TestTxMemoryRollback: memory-mode rollback undoes the statement log
// exactly (the Section-4 algorithms are exact inverses).
func TestTxMemoryRollback(t *testing.T) {
	db, oracle := New(), New()
	seed := []tuple.Flat{row("s1", "c1", "b1"), row("s1", "c2", "b1"), row("s2", "c1", "b2")}
	for _, d := range []*Database{db, oracle} {
		if err := d.Create(txTestDef("r")); err != nil {
			t.Fatal(err)
		}
		if _, err := d.InsertMany("r", seed); err != nil {
			t.Fatal(err)
		}
	}
	tx, _ := db.Begin(nil)
	if _, err := tx.Insert("r", row("s3", "c3", "b3")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Delete("r", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.InsertMany("r", []tuple.Flat{row("s4", "c4", "b4"), row("s4", "c5", "b4")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	got, _ := db.ReadRelation(nil, "r")
	want, _ := oracle.ReadRelation(nil, "r")
	if !got.Equal(want) || !got.EquivalentTo(want) {
		t.Fatalf("memory rollback diverged:\ngot  %v\nwant %v", got, want)
	}
}

// TestTxConflictWaitDie: a younger transaction already holding a latch
// is refused (ErrTxConflict) instead of deadlocking when it wants a
// latch an older transaction holds; the transaction stays usable and
// rolls back cleanly.
func TestTxConflictWaitDie(t *testing.T) {
	db := New()
	for _, name := range []string{"r1", "r2"} {
		if err := db.Create(txTestDef(name)); err != nil {
			t.Fatal(err)
		}
	}
	older, _ := db.Begin(nil)
	younger, _ := db.Begin(nil)
	if _, err := older.Insert("r1", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	if _, err := younger.Insert("r2", row("s2", "c2", "b2")); err != nil {
		t.Fatal(err)
	}
	// younger holds r2 and wants r1 (held by older) → must die, not wait
	if _, err := younger.Insert("r1", row("s3", "c3", "b3")); !errors.Is(err, ErrTxConflict) {
		t.Fatalf("younger-with-latch waiting on older: %v (want ErrTxConflict)", err)
	}
	// the refused statement did not poison the transaction
	if _, err := younger.Insert("r2", row("s4", "c4", "b4")); err != nil {
		t.Fatalf("transaction unusable after conflict: %v", err)
	}
	if err := younger.Rollback(); err != nil {
		t.Fatal(err)
	}
	// with younger gone, older proceeds onto r2
	if _, err := older.Insert("r2", row("s5", "c5", "b5")); err != nil {
		t.Fatal(err)
	}
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}
	rel, _ := db.ReadRelation(nil, "r2")
	if rel.ExpansionSize() != 1 {
		t.Fatalf("r2 = %d flat tuples, want only older's 1", rel.ExpansionSize())
	}
}

// TestTxContext: a cancelled context fails statements, cancels scans at
// page granularity, and turns Commit into a rollback.
func TestTxContext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ctx.nfrs")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Create(txTestDef("r")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tx, err := db.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("r", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := tx.Insert("r", row("s2", "c2", "b2")); !errors.Is(err, context.Canceled) {
		t.Fatalf("statement under cancelled ctx: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, context.Canceled) {
		t.Fatalf("commit under cancelled ctx: %v", err)
	}
	// the whole transaction rolled back
	rel, err := db.ReadRelation(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Fatalf("cancelled transaction committed %d tuples", rel.Len())
	}
	// cancelled scans stop before touching the pool
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := db.ReadRelation(cancelled, "r"); !errors.Is(err, context.Canceled) {
		t.Fatalf("scan under cancelled ctx: %v", err)
	}
}

// TestReadOnly: WithReadOnly rejects every mutation path with
// ErrReadOnly and still serves reads.
func TestReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ro.nfrs")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Create(txTestDef("r")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("r", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Open(path, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if !ro.ReadOnly() {
		t.Fatal("ReadOnly() = false")
	}
	if _, err := ro.Insert("r", row("s2", "c2", "b2")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert: %v", err)
	}
	if err := ro.Create(txTestDef("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("create: %v", err)
	}
	if err := ro.Drop("r"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("drop: %v", err)
	}
	if err := ro.Flush(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("flush: %v", err)
	}
	tx, err := ro.Begin(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Delete("r", row("s1", "c1", "b1")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("tx delete: %v", err)
	}
	if rel, err := tx.ReadRelation(nil, "r"); err != nil || rel.Len() != 1 {
		t.Fatalf("tx read: %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	rel, err := ro.ReadRelation(nil, "r")
	if err != nil || rel.ExpansionSize() != 1 {
		t.Fatalf("read-only read: %v", err)
	}
	// a read-only open of a clean file never mutates it — not even the
	// orphan sweep runs — and leaves no WAL sidecar behind
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(pristine) != string(after) {
		t.Fatalf("read-only open changed the file (%d -> %d bytes)", len(pristine), len(after))
	}
	if _, err := os.Stat(path + ".wal"); !os.IsNotExist(err) {
		t.Fatalf("read-only open left a WAL sidecar: %v", err)
	}
}

// TestReadRelationSnapshot: the returned relation is the caller's to
// mutate — a writer scribbling on it races with nothing (run under
// -race), and the engine's canonical state is unaffected.
func TestReadRelationSnapshot(t *testing.T) {
	db := New()
	if err := db.Create(txTestDef("r")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("r", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rel, err := db.ReadRelation(nil, "r")
				if err != nil {
					t.Error(err)
					return
				}
				// mutate the snapshot while other goroutines write the
				// engine — must be race-free
				rel.Add(tuple.FromFlat(row("zz", fmt.Sprintf("g%d_%d", g, i), "zz")))
				if _, err := db.Insert("r", row(fmt.Sprintf("s%d", g), fmt.Sprintf("c%d", i), "b1")); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	rel, _ := db.ReadRelation(nil, "r")
	for i := 0; i < rel.Len(); i++ {
		if rel.Tuple(i).Set(0).Contains(row("zz", "x", "zz")[0]) {
			t.Fatal("snapshot mutation leaked into the engine")
		}
	}
}

// TestDropWaitsForOpenTx: dropping a relation a live transaction holds
// must park until that transaction finishes (not spin, not deadlock,
// not fail) and then succeed.
func TestDropWaitsForOpenTx(t *testing.T) {
	db := New()
	if err := db.Create(txTestDef("r")); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin(nil)
	if _, err := tx.Insert("r", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	dropped := make(chan error, 1)
	go func() { dropped <- db.Drop("r") }()
	select {
	case err := <-dropped:
		t.Fatalf("drop finished with %v while the transaction still held the latch", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-dropped:
		if err != nil {
			t.Fatalf("drop after commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drop still blocked after the holding transaction committed")
	}
	if _, err := db.Rel("r"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("relation survived the drop: %v", err)
	}
}

// TestTxStressInterleaved is the -race stress: 8 clients interleaving
// Begin / statements / Commit / Rollback on private and shared
// relations, with wait-die retries, must equal an oracle that applied
// exactly the committed transactions — live and across a reopen.
func TestTxStressInterleaved(t *testing.T) {
	const clients, txsPerClient, stmtsPerTx = 8, 12, 3
	path := filepath.Join(t.TempDir(), "stress.nfrs")
	db, err := Open(path, WithPoolPages(48))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	oracle := New()
	names := make([]string, clients)
	for c := 0; c < clients; c++ {
		names[c] = fmt.Sprintf("p%d", c)
		for _, d := range []*Database{db, oracle} {
			if err := d.Create(txTestDef(names[c])); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, d := range []*Database{db, oracle} {
		if err := d.Create(txTestDef("shared")); err != nil {
			t.Fatal(err)
		}
	}
	// commits(c, i): deterministic commit/rollback decision
	commits := func(c, i int) bool { return (c+i)%3 != 0 }
	rowsFor := func(c, i int) []tuple.Flat {
		out := make([]tuple.Flat, stmtsPerTx)
		for s := 0; s < stmtsPerTx; s++ {
			out[s] = row(
				fmt.Sprintf("s%d_%d", c, (i*stmtsPerTx+s)%5),
				fmt.Sprintf("c%d_%d", c, i*stmtsPerTx+s),
				fmt.Sprintf("b%d", c%3))
		}
		return out
	}
	// oracle: single-threaded application of exactly the committed txs
	for c := 0; c < clients; c++ {
		for i := 0; i < txsPerClient; i++ {
			if !commits(c, i) {
				continue
			}
			rows := rowsFor(c, i)
			if _, err := oracle.InsertMany(names[c], rows); err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				if _, err := oracle.Insert("shared", rows[0]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < txsPerClient; i++ {
				rows := rowsFor(c, i)
				for {
					err := func() error {
						tx, err := db.Begin(context.Background())
						if err != nil {
							return err
						}
						// shared first: acquired while holding nothing, so
						// the wait is always legal under wait-die
						if i%2 == 0 {
							if _, err := tx.Insert("shared", rows[0]); err != nil {
								tx.Rollback()
								return err
							}
						}
						for _, f := range rows {
							if _, err := tx.Insert(names[c], f); err != nil {
								tx.Rollback()
								return err
							}
						}
						if commits(c, i) {
							return tx.Commit()
						}
						return tx.Rollback()
					}()
					if err == nil {
						break
					}
					if errors.Is(err, ErrTxConflict) {
						continue
					}
					errCh <- fmt.Errorf("client %d tx %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	verify := func(d *Database, label string) {
		t.Helper()
		for _, name := range append(append([]string{}, names...), "shared") {
			got, err := d.ReadRelation(nil, name)
			if err != nil {
				t.Fatalf("%s %s: %v", label, name, err)
			}
			want, _ := oracle.ReadRelation(nil, name)
			if !got.Equal(want) || !got.EquivalentTo(want) {
				t.Fatalf("%s: %s diverged from oracle", label, name)
			}
		}
	}
	verify(db, "live")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, WithPoolPages(48))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	verify(db2, "reopened")
}

// TestDeprecatedShims: the pre-redesign entry points keep compiling and
// working (they are shims over the option form).
func TestDeprecatedShims(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shim.nfrs")
	db, err := OpenWith(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Create(txTestDef("r")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("r", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rel, err := db2.ReadRelation(nil, "r"); err != nil || rel.Len() != 1 {
		t.Fatalf("shim-written database unreadable: %v", err)
	}
}
