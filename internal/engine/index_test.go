package engine

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/tuple"
	"repro/internal/value"
)

// rangeFlats builds flats whose fixed attribute (Student, schema index
// 0, last in the canonical order) takes n distinct sortable values.
func rangeFlats(n int) []tuple.Flat {
	fs := make([]tuple.Flat, 0, n)
	for i := 0; i < n; i++ {
		fs = append(fs, row(fmt.Sprintf("s%02d", i), fmt.Sprintf("c%02d", i%5), fmt.Sprintf("k%d", i%3)))
	}
	return fs
}

func inBound(a value.Atom, lo, hi *Bound) bool {
	if lo != nil {
		c := value.Compare(a, lo.Atom)
		if c < 0 || (c == 0 && !lo.Incl) {
			return false
		}
	}
	if hi != nil {
		c := value.Compare(a, hi.Atom)
		if c > 0 || (c == 0 && !hi.Incl) {
			return false
		}
	}
	return true
}

// matchKeys returns the keys of rel's flat expansion whose fixed atom
// lies in [lo, hi] — the heap-scan definition of the matching set. The
// index fetch must be a superset of it at the flat level; after the
// caller re-applies the bound (exactly what the query planner does with
// its residual predicate) both sides must agree.
func matchKeys(rel *core.Relation, fixedIdx int, lo, hi *Bound) map[string]bool {
	out := map[string]bool{}
	for _, f := range rel.Expand() {
		if inBound(f[fixedIdx], lo, hi) {
			out[f.Key()] = true
		}
	}
	return out
}

func checkFetch(t *testing.T, got, full *core.Relation, fixedIdx int, lo, hi *Bound) {
	t.Helper()
	want := matchKeys(full, fixedIdx, lo, hi)
	gotMatch := matchKeys(got, fixedIdx, lo, hi)
	if len(gotMatch) != len(want) {
		t.Fatalf("fetch covers %d matching flats, want %d", len(gotMatch), len(want))
	}
	for k := range want {
		if !gotMatch[k] {
			t.Fatalf("fetch missing matching flat %s", k)
		}
	}
	// every fetched tuple was fetched for a reason: ≥1 fixed atom in range
	for i := 0; i < got.Len(); i++ {
		hit := false
		for _, a := range got.Tuple(i).Set(fixedIdx).Atoms() {
			if inBound(a, lo, hi) {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("fetched tuple %s has no fixed atom in range", got.Tuple(i))
		}
	}
}

func TestEngineIndexInfo(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "ix.nfrs"), WithPoolPages(32))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Create(txTestDef("r1")); err != nil {
		t.Fatal(err)
	}
	info, err := db.IndexInfo("r1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 1 || info.FixedAttr != "Student" || !info.HasPoint || !info.HasRange {
		t.Fatalf("disk IndexInfo = %+v", info)
	}

	mem := New()
	defer mem.Close()
	if err := mem.Create(txTestDef("r1")); err != nil {
		t.Fatal(err)
	}
	minfo, err := mem.IndexInfo("r1")
	if err != nil {
		t.Fatal(err)
	}
	if minfo.HasPoint || minfo.HasRange {
		t.Fatalf("memory-mode IndexInfo = %+v, want no access paths", minfo)
	}
	if _, err := mem.LookupFixed("r1", value.NewString("s01")); err == nil {
		t.Fatal("memory-mode LookupFixed did not fail")
	}
	if _, _, err := mem.ScanFixedRange("r1", nil, nil); err == nil {
		t.Fatal("memory-mode ScanFixedRange did not fail")
	}
}

func TestEngineIndexedReads(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, err := Open(filepath.Join(t.TempDir(), "ix.nfrs"), WithPoolPages(64))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if err := db.Create(shardedDef("r1", shards)); err != nil {
				t.Fatal(err)
			}
			if _, err := db.InsertMany("r1", rangeFlats(40)); err != nil {
				t.Fatal(err)
			}
			full, err := db.ReadRelation(context.Background(), "r1")
			if err != nil {
				t.Fatal(err)
			}
			const fixedIdx = 0 // Student: schema index 0, last in canonical order

			// point probe fetches exactly the tuples containing the atom
			a := value.NewString("s07")
			got, err := db.LookupFixed("r1", a)
			if err != nil {
				t.Fatal(err)
			}
			pb := &Bound{Atom: a, Incl: true}
			checkFetch(t, got, full, fixedIdx, pb, pb)

			// range scans cover the heap-scan matching set, pages reported
			cases := []struct{ lo, hi *Bound }{
				{nil, nil},
				{&Bound{value.NewString("s10"), true}, &Bound{value.NewString("s20"), false}},
				{&Bound{value.NewString("s35"), false}, nil},
				{nil, &Bound{value.NewString("s05"), true}},
				{&Bound{value.NewString("s99"), true}, nil}, // empty
			}
			for i, c := range cases {
				got, pages, err := db.ScanFixedRange("r1", c.lo, c.hi)
				if err != nil {
					t.Fatalf("case %d: %v", i, err)
				}
				checkFetch(t, got, full, fixedIdx, c.lo, c.hi)
				if pages <= 0 {
					t.Fatalf("case %d: scan reported %d index pages", i, pages)
				}
			}

			// a transaction sees its own uncommitted writes through the index
			tx, err := db.Begin(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Insert("r1", row("s55", "cx", "kx")); err != nil {
				t.Fatal(err)
			}
			seen, _, err := tx.ScanFixedRange("r1", &Bound{value.NewString("s50"), true}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if seen.Len() != 1 {
				t.Fatalf("tx range scan missed own write: %d tuples", seen.Len())
			}
			if err := tx.Rollback(); err != nil {
				t.Fatal(err)
			}

			// index page stats: both structures have a footprint
			ips, err := db.IndexPageStats()
			if err != nil {
				t.Fatal(err)
			}
			c, ok := ips["r1"]
			if !ok {
				t.Fatal("IndexPageStats missing r1")
			}
			if c.HashDir == 0 || c.HashBuckets == 0 || c.BTreeInner == 0 || c.BTreeLeaf == 0 {
				t.Fatalf("IndexPageStats r1 = %+v, want all nonzero", c)
			}
		})
	}
}
