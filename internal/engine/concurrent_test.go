package engine

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
)

// These tests are the -race stress suite for concurrent disk-mode
// statements: with stmtMu gone, statements on different relations run
// and commit in parallel (merged group commit), statements on the same
// relation serialize behind its latch, and the result must always
// equal a single-threaded oracle.

const stressClients = 8

// clientFlats returns a deterministic per-client workload of distinct
// flat tuples.
func clientFlats(client, n int) []tuple.Flat {
	out := make([]tuple.Flat, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, tuple.FlatOfStrings(
			fmt.Sprintf("s%d_%d", client, i%7),
			fmt.Sprintf("c%d_%d", client, i),
			fmt.Sprintf("b%d_%d", client, i%3),
		))
	}
	return out
}

func stressDef(name string) RelationDef {
	sch := schema.MustOf("Student", "Course", "Club")
	return RelationDef{
		Name:   name,
		Schema: sch,
		Order:  schema.MustPermOf(sch, "Course", "Club", "Student"),
	}
}

// TestConcurrentDisjointWriters: one relation per client, all writing
// at once. Each relation must end up exactly equal to the
// single-threaded oracle, both live and across a reopen, and the WAL
// must have spent at most one fsync per changing statement.
func TestConcurrentDisjointWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disjoint.nfrs")
	db, err := Open(path, WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	oracle := New()
	flats := make([][]tuple.Flat, stressClients)
	for c := 0; c < stressClients; c++ {
		def := stressDef(fmt.Sprintf("R%d", c))
		if err := db.Create(def); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Create(def); err != nil {
			t.Fatal(err)
		}
		flats[c] = clientFlats(c, 40)
		if _, err := oracle.InsertMany(def.Name, flats[c]); err != nil {
			t.Fatal(err)
		}
	}
	ws0, _ := db.WALStats()
	var wg sync.WaitGroup
	errs := make(chan error, stressClients)
	for c := 0; c < stressClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("R%d", c)
			for _, f := range flats[c] {
				if _, err := db.Insert(name, f); err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				// interleave reads: must always see a committed boundary
				if _, err := db.ReadRelation(context.Background(), name); err != nil {
					errs <- fmt.Errorf("client %d read: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ws1, _ := db.WALStats()
	statements := stressClients * 40
	if got := ws1.Fsyncs - ws0.Fsyncs; got > statements {
		t.Fatalf("group commit broken: %d fsyncs for %d statements", got, statements)
	}
	if ws1.Batches-ws0.Batches != statements {
		t.Fatalf("expected %d batches, got %d", statements, ws1.Batches-ws0.Batches)
	}
	check := func(db *Database, stage string) {
		t.Helper()
		for c := 0; c < stressClients; c++ {
			name := fmt.Sprintf("R%d", c)
			got, err := db.ReadRelation(context.Background(), name)
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			want, _ := oracle.ReadRelation(context.Background(), name)
			if !got.Equal(want) {
				t.Fatalf("%s: %s diverged from single-threaded oracle", stage, name)
			}
		}
	}
	check(db, "live")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	check(db2, "reopened")
}

// TestConcurrentOverlappingWriters: every client writes the SAME
// relation — statements serialize behind the relation latch, and since
// distinct-tuple inserts commute and the canonical form of a given R*
// is unique, the result must equal the canonical form of the union
// regardless of interleaving. A second phase deletes disjoint slices
// concurrently.
func TestConcurrentOverlappingWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "overlap.nfrs")
	db, err := Open(path, WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	def := stressDef("shared")
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	flats := make([][]tuple.Flat, stressClients)
	var all []tuple.Flat
	for c := 0; c < stressClients; c++ {
		flats[c] = clientFlats(c, 25)
		all = append(all, flats[c]...)
	}
	run := func(op func(f tuple.Flat) error) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, stressClients)
		for c := 0; c < stressClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for _, f := range flats[c] {
					if err := op(f); err != nil {
						errs <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	run(func(f tuple.Flat) error { _, err := db.Insert("shared", f); return err })
	want, _ := core.MustFromFlats(def.Schema, all).Canonical(def.Order)
	got, err := db.ReadRelation(context.Background(), "shared")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("concurrent same-relation inserts diverged from canonical union")
	}
	if db.LatchWaits() == 0 {
		t.Log("note: no latch contention observed despite shared relation")
	}
	// concurrent deletes of each client's own slice drain it back down
	run(func(f tuple.Flat) error {
		ch, err := db.Delete("shared", f)
		if err == nil && !ch {
			return fmt.Errorf("delete of %v changed nothing", f)
		}
		return err
	})
	got2, err := db.ReadRelation(context.Background(), "shared")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 0 {
		t.Fatalf("%d tuples survive full concurrent delete", got2.Len())
	}
}

// TestConcurrentCreateDropAndWriters races steady insert traffic
// against create/insert/drop churn on scratch relations — exercising
// the catalog page and the free list (drops push pages that creates
// recycle) under the transaction-scoped free-list ownership.
func TestConcurrentCreateDropAndWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "churn.nfrs")
	db, err := Open(path, WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	steady := stressDef("steady")
	if err := db.Create(steady); err != nil {
		t.Fatal(err)
	}
	oracle := New()
	if err := oracle.Create(steady); err != nil {
		t.Fatal(err)
	}
	flats := clientFlats(0, 60)
	if _, err := oracle.InsertMany("steady", flats); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, f := range flats {
			if _, err := db.Insert("steady", f); err != nil {
				errs <- err
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				name := fmt.Sprintf("scratch_%d_%d", w, round)
				def := stressDef(name)
				if err := db.Create(def); err != nil {
					errs <- err
					return
				}
				for _, f := range clientFlats(w+10, 20) {
					if _, err := db.Insert(name, f); err != nil {
						errs <- err
						return
					}
				}
				if err := db.Drop(name); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, err := db.ReadRelation(context.Background(), "steady")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oracle.ReadRelation(context.Background(), "steady")
	if !got.Equal(want) {
		t.Fatal("steady relation diverged under create/drop churn")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if names := db2.Names(); len(names) != 1 || names[0] != "steady" {
		t.Fatalf("scratch relations survived: %v", names)
	}
	got2, err := db2.ReadRelation(context.Background(), "steady")
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want) {
		t.Fatal("steady relation diverged across reopen")
	}
}

// TestDropRacesInFlightStatements: dropping a relation while writers
// hammer it must never corrupt anything — the drop takes the
// relation's statement latch, so an in-flight statement finishes first
// and later statements fail cleanly with "unknown relation" instead of
// writing into freed pages.
func TestDropRacesInFlightStatements(t *testing.T) {
	path := filepath.Join(t.TempDir(), "droprace.nfrs")
	db, err := Open(path, WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	def := stressDef("victim")
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	keeper := stressDef("keeper")
	if err := db.Create(keeper); err != nil {
		t.Fatal(err)
	}
	flats := clientFlats(0, 200)
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, f := range flats {
				if _, err := db.Insert("victim", f); err != nil {
					// after the drop lands, the only acceptable failure
					if !strings.Contains(err.Error(), "unknown relation") {
						errs <- fmt.Errorf("writer %d: %v", w, err)
					}
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ { // let some statements land first
			if _, err := db.Insert("keeper", flats[i]); err != nil {
				errs <- err
				return
			}
		}
		if err := db.Drop("victim"); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := db.ReadRelation(context.Background(), "victim"); err == nil {
		t.Fatal("dropped relation still readable")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after racing drop failed: %v", err)
	}
	defer db2.Close()
	if names := db2.Names(); len(names) != 1 || names[0] != "keeper" {
		t.Fatalf("relations after racing drop: %v", names)
	}
}
