package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/update"
)

// latch is a shard's statement latch, owned by one transaction at a
// time and held until that transaction commits or rolls back (strict
// two-phase latching). Deadlocks between transactions holding several
// latches are avoided with the wait-die policy: a transaction that
// already holds a latch may WAIT only for an OLDER transaction (smaller
// id); waiting for a younger one fails immediately with ErrTxConflict.
// Any wait cycle would need strictly decreasing ages all the way around
// — impossible — and a transaction holding nothing (an autocommit
// statement acquiring its first latch) can wait unconditionally because
// nothing can be waiting on it.
type latch struct {
	mu    sync.Mutex
	cond  *sync.Cond
	owner *Tx
	// waits counts contended acquisitions — the bench's latch-contention
	// metric.
	waits atomic.Int64
}

func newLatch() *latch {
	l := &latch{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// conflictError is an ErrTxConflict that remembers WHICH latch was
// refused, so the autocommit retry loop can park on it (holding
// nothing — always deadlock-safe) instead of busy-spinning while the
// holder finishes.
type conflictError struct {
	l       *latch
	ownerID uint64
}

func (e *conflictError) Error() string {
	return fmt.Sprintf("engine: latch held by older transaction %d: %v", e.ownerID, ErrTxConflict)
}

func (e *conflictError) Unwrap() error { return ErrTxConflict }

// awaitFree blocks until the latch has no owner (or the database
// closes). Callers must hold NO latches — the wait is then always
// legal, because a transaction holding nothing cannot be part of a
// wait cycle.
func (l *latch) awaitFree(db *Database) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.owner != nil && !db.isClosed() {
		l.cond.Wait()
	}
}

// acquire takes the latch for tx (reentrant: a no-op when tx already
// owns it), applying wait-die on contention.
func (l *latch) acquire(tx *Tx) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owner == tx {
		return nil
	}
	counted := false
	for l.owner != nil {
		if tx.db.isClosed() {
			return fmt.Errorf("engine: latch wait interrupted: %w", ErrClosed)
		}
		if tx.holdsAny() && tx.id > l.owner.id {
			return &conflictError{l: l, ownerID: l.owner.id}
		}
		if !counted {
			counted = true
			l.waits.Add(1)
		}
		l.cond.Wait()
	}
	l.owner = tx
	return nil
}

func (l *latch) release(tx *Tx) {
	l.mu.Lock()
	if l.owner == tx {
		l.owner = nil
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// interrupt wakes every waiter so it can observe the closed database.
func (l *latch) interrupt() {
	l.mu.Lock()
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Tx is a multi-statement transaction: a handle whose statements
// (Insert, InsertMany, Delete, Create, Drop, ReadRelation) all apply or
// all don't. On a disk-backed database every statement's write-through
// pages pool under ONE storage transaction (the buffer pool is
// no-steal, so nothing uncommitted reaches the data file), Commit makes
// them durable as one WAL batch — one fsync, merged with concurrently
// committing transactions — and Rollback discards the dirty frames,
// leaving the file bit-identical to the pre-Begin state.
//
// A Tx is used from one goroutine at a time. Every shard a statement
// touches is latched for the transaction's remaining lifetime, so
// writers outside the transaction block until Commit/Rollback (read
// committed) while the transaction itself reads its own writes; a
// write latches only the one shard owning its tuple, so transactions
// writing different shards of one relation run concurrently. A
// statement refused with ErrTxConflict (wait-die deadlock avoidance)
// leaves the transaction open and consistent — roll back and retry.
// After Commit or Rollback every method returns ErrTxDone.
type Tx struct {
	db  *Database
	ctx context.Context
	id  uint64

	// All maps are nil until first use: the autocommit wrappers mint a
	// Tx per statement, and most statements never touch the DDL maps.
	mu      sync.Mutex
	done    bool
	stx     *store.Txn         // lazily-begun storage transaction (disk mode)
	held    map[*relShard]bool // shard latches held until commit/rollback
	ddl     bool               // DDL latch held
	touched map[*relShard]bool // shards with write-throughs under stx
	creates map[string]*Rel    // pending creates still visible to this tx
	drops   map[string]*Rel    // pending drops
	// selfCreated names every relation this transaction created — even
	// one it later dropped — so rollback can forget their store entries
	// without reindexing relations that no longer exist.
	selfCreated map[*Rel]string
	undo        []undoRec // memory-mode statement log, undone in reverse
}

type undoRec struct {
	sh        *relShard
	f         tuple.Flat
	wasInsert bool
}

// Begin starts a transaction. The context governs the transaction's
// whole lifetime: statements fail once it is cancelled, relation scans
// check it at page-fetch granularity, and Commit on a cancelled context
// rolls back. A nil context means context.Background().
func (db *Database) Begin(ctx context.Context) (*Tx, error) {
	return db.begin(ctx, 0)
}

// begin is Begin with an optional pre-assigned id: the autocommit
// wrapper retries a conflicted statement under its ORIGINAL id, so the
// retry ages instead of staying forever-youngest (wait-die starvation
// freedom).
func (db *Database) begin(ctx context.Context, id uint64) (*Tx, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if db.isClosed() {
		return nil, fmt.Errorf("engine: begin: %w", ErrClosed)
	}
	if id == 0 {
		id = nextTxID()
	}
	tx := &Tx{db: db, ctx: ctx, id: id}
	db.txMu.Lock()
	db.openTxs[tx] = struct{}{}
	db.txMu.Unlock()
	return tx, nil
}

// Context returns the context the transaction was begun with.
func (tx *Tx) Context() context.Context { return tx.ctx }

func (tx *Tx) holdsAny() bool { return len(tx.held) > 0 || tx.ddl }

func (tx *Tx) usable() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.db.isClosed() {
		return fmt.Errorf("engine: statement: %w", ErrClosed)
	}
	return tx.ctx.Err()
}

func (tx *Tx) usableWrite() error {
	if err := tx.usable(); err != nil {
		return err
	}
	if tx.db.readOnly {
		return fmt.Errorf("engine: statement: %w", ErrReadOnly)
	}
	return nil
}

// rel resolves a relation as this transaction sees it: its own pending
// creates first, its own pending drops as gone, the shared catalog
// otherwise.
func (tx *Tx) rel(name string) (*Rel, error) {
	if r, ok := tx.creates[name]; ok {
		return r, nil
	}
	if _, ok := tx.drops[name]; ok {
		return nil, errNotFound(name)
	}
	return tx.db.Rel(name)
}

// latchShard takes sh's statement latch for the rest of the
// transaction and re-checks the relation's dropped flag under it (the
// relation may have been dropped by a committed transaction while we
// waited — the dropper held every shard latch when it set the flag).
func (tx *Tx) latchShard(sh *relShard) error {
	if err := sh.latch.acquire(tx); err != nil {
		return err
	}
	if tx.held == nil {
		tx.held = make(map[*relShard]bool)
	}
	tx.held[sh] = true
	if sh.r.dropped {
		sh.latch.release(tx)
		delete(tx.held, sh)
		return errNotFound(sh.r.def.Name)
	}
	return nil
}

// latchRel takes EVERY shard latch of r (in shard order) — the
// whole-relation paths: reads, Drop, and relation-wide statistics.
func (tx *Tx) latchRel(r *Rel) error {
	for _, sh := range r.shards {
		if err := tx.latchShard(sh); err != nil {
			return err
		}
	}
	return nil
}

// latchDDL takes the database's DDL latch (serializing catalog
// mutations, and with them all catalog-page frame ownership) for the
// rest of the transaction.
func (tx *Tx) latchDDL() error {
	if tx.ddl {
		return nil
	}
	if err := tx.db.ddl.acquire(tx); err != nil {
		return err
	}
	tx.ddl = true
	return nil
}

// attachShard routes sh's write-throughs to this transaction: the
// storage transaction is begun lazily, and the store shard is switched
// into external-transaction mode until commit/rollback.
func (tx *Tx) attachShard(sh *relShard) {
	if sh.ss == nil {
		return
	}
	if tx.stx == nil {
		tx.stx = tx.db.st.Begin()
	}
	if !tx.touched[sh] {
		if tx.touched == nil {
			tx.touched = make(map[*relShard]bool)
		}
		tx.touched[sh] = true
		sh.ss.UseTxn(tx.stx)
	}
}

// Insert adds a flat tuple to the named relation, maintaining the
// canonical form. It reports whether the relation changed.
func (tx *Tx) Insert(name string, f tuple.Flat) (bool, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.write(name, f, true)
}

// Delete removes a flat tuple from the named relation.
func (tx *Tx) Delete(name string, f tuple.Flat) (bool, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.write(name, f, false)
}

// InsertMany bulk-inserts flat tuples as statements of this one
// transaction, returning how many changed the relation.
func (tx *Tx) InsertMany(name string, fs []tuple.Flat) (int, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	n := 0
	for _, f := range fs {
		ch, err := tx.write(name, f, true)
		if err != nil {
			return n, err
		}
		if ch {
			n++
		}
	}
	return n, nil
}

// write is one Insert/Delete statement under the transaction. Only the
// shard owning the tuple is latched, so statements on other shards of
// the same relation — from other transactions — proceed concurrently.
func (tx *Tx) write(name string, f tuple.Flat, isInsert bool) (bool, error) {
	if err := tx.usableWrite(); err != nil {
		return false, err
	}
	r, err := tx.rel(name)
	if err != nil {
		return false, err
	}
	if isInsert {
		if err := tx.db.typeCheck(r, f); err != nil {
			return false, err
		}
	}
	sh := r.shardFor(f)
	if err := tx.latchShard(sh); err != nil {
		return false, err
	}
	tx.attachShard(sh)
	// materialize the shard's canonical partition on first touch, under
	// the latch we hold; a drift resync rides this statement's
	// transaction
	m, err := sh.maintainer(tx.stx)
	if err != nil {
		return false, err
	}
	var ch bool
	if isInsert {
		ch, err = m.Insert(f)
	} else {
		ch, err = m.Delete(f)
	}
	if err != nil {
		return ch, err
	}
	if err := tx.syncAfterWrite(sh, m, ch, f, isInsert); err != nil {
		return false, err
	}
	if ch && sh.ss == nil {
		cp := make(tuple.Flat, len(f))
		copy(cp, f)
		tx.undo = append(tx.undo, undoRec{sh: sh, f: cp, wasInsert: isInsert})
	}
	return ch, nil
}

// syncAfterWrite surfaces a write-through failure latched by the
// shard's store sink without leaving memory and disk divergent: the
// in-memory mutation is rolled back (the Section-4 algorithms are exact
// inverses on R*, and the canonical form is unique, so memory returns
// to its pre-statement state), the shard heap is rewritten from the
// shard's canonical partition UNDER THE SAME open transaction — so the
// half-applied pages and their repair stay one atomic unit — and the
// original failure is returned. The transaction remains open and
// consistent; only this one statement was rejected.
func (tx *Tx) syncAfterWrite(sh *relShard, m *update.Maintainer, changed bool, f tuple.Flat, wasInsert bool) error {
	if sh.ss == nil {
		return nil
	}
	err := sh.ss.Err()
	if err == nil {
		return nil
	}
	if changed {
		if wasInsert {
			m.Delete(f)
		} else {
			m.Insert(f)
		}
	}
	if rerr := sh.ss.Replace(tx.stx, m.Relation()); rerr != nil {
		return fmt.Errorf("engine: write-through failed (%v) and heap resync failed: %w", err, rerr)
	}
	sh.ss.ResetErr()
	return fmt.Errorf("engine: write-through to store failed (statement rolled back): %w", err)
}

// Create registers a new empty relation, visible only to this
// transaction until Commit.
func (tx *Tx) Create(def RelationDef) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.usableWrite(); err != nil {
		return err
	}
	def, m, err := normalizeDef(def)
	if err != nil {
		return err
	}
	if err := tx.latchDDL(); err != nil {
		return err
	}
	if _, ok := tx.creates[def.Name]; ok {
		return errExists(def.Name)
	}
	if _, ok := tx.drops[def.Name]; ok {
		// the durable catalog record is only tombstoned at commit; the
		// name cannot be reused within the same transaction
		return fmt.Errorf("engine: relation %q dropped in this transaction: %w", def.Name, ErrExists)
	}
	if _, err := tx.db.Rel(def.Name); err == nil {
		return errExists(def.Name)
	}
	var r *Rel
	if tx.db.st != nil {
		if tx.stx == nil {
			tx.stx = tx.db.st.Begin()
		}
		rs, err := tx.db.st.CreateRelation(tx.stx, store.RelationDef{
			Name: def.Name, Schema: def.Schema, Order: def.Order,
			FDs: def.FDs, MVDs: def.MVDs, Shards: def.Shards,
		})
		if err != nil {
			return err
		}
		def.Shards = rs.ShardCount()
		r = newRel(def, rs)
		// the relation is empty: publish an empty maintainer per shard
		// eagerly, each sinking to its own store shard
		for i, sh := range r.shards {
			mi := m
			if i > 0 {
				if mi, err = update.NewMaintainerIndexed(def.Schema, def.Order); err != nil {
					return err
				}
			}
			mi.SetSink(sh.ss)
			sh.maint.Store(mi)
			sh.ss.UseTxn(tx.stx)
			if tx.touched == nil {
				tx.touched = make(map[*relShard]bool)
			}
			tx.touched[sh] = true
		}
	} else {
		r = newRel(def, nil)
		r.setMaintainer(m)
	}
	// private to this transaction: own every shard latch so our
	// statements pass (nobody else can even look it up until commit
	// publishes it)
	for _, sh := range r.shards {
		if err := sh.latch.acquire(tx); err != nil {
			return err
		}
		if tx.held == nil {
			tx.held = make(map[*relShard]bool)
		}
		tx.held[sh] = true
	}
	if tx.creates == nil {
		tx.creates = make(map[string]*Rel)
		tx.selfCreated = make(map[*Rel]string)
	}
	tx.creates[def.Name] = r
	tx.selfCreated[r] = def.Name
	return nil
}

// Drop removes a relation. The removal is visible to other transactions
// only after Commit; until then they block on the relation's shard
// latches (all of which Drop takes).
func (tx *Tx) Drop(name string) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.usableWrite(); err != nil {
		return err
	}
	if err := tx.latchDDL(); err != nil {
		return err
	}
	if r, ok := tx.creates[name]; ok {
		// dropping a relation created by this same transaction
		if tx.db.st != nil {
			if err := tx.db.st.DropRelation(tx.stx, name); err != nil {
				return err
			}
		}
		delete(tx.creates, name)
		tx.setDrop(name, r)
		return nil
	}
	if _, ok := tx.drops[name]; ok {
		return errNotFound(name)
	}
	r, err := tx.db.Rel(name)
	if err != nil {
		return err
	}
	if err := tx.latchRel(r); err != nil {
		return err
	}
	if tx.db.st != nil {
		if tx.stx == nil {
			tx.stx = tx.db.st.Begin()
		}
		if err := tx.db.st.DropRelation(tx.stx, name); err != nil {
			return err
		}
	}
	tx.setDrop(name, r)
	return nil
}

func (tx *Tx) setDrop(name string, r *Rel) {
	if tx.drops == nil {
		tx.drops = make(map[string]*Rel)
	}
	tx.drops[name] = r
}

// ReadRelation returns a snapshot of the named relation as this
// transaction sees it — including its own uncommitted writes. Every
// shard latch is taken for the rest of the transaction (repeatable
// reads). The snapshot is the caller's to mutate; a K-sharded heap's
// union of shard partitions is merged back into the global canonical
// form. ctx (nil = the transaction's context) cancels the heap scan at
// page-fetch granularity on a disk-backed database.
func (tx *Tx) ReadRelation(ctx context.Context, name string) (*core.Relation, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.usable(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = tx.ctx
	}
	r, err := tx.rel(name)
	if err != nil {
		return nil, err
	}
	if err := tx.latchRel(r); err != nil {
		return nil, err
	}
	if r.rs != nil {
		rel, err := r.rs.LoadCtx(ctx)
		if err != nil {
			return nil, err
		}
		if r.rs.ShardCount() > 1 {
			rel, _ = rel.CanonicalFromFlats(r.def.Order)
		}
		return rel, nil
	}
	m, err := r.shards[0].maintainer(nil)
	if err != nil {
		return nil, err
	}
	return m.Relation().Clone(), nil
}

// Stats reports size and maintenance statistics for the named relation
// as this transaction sees it (its own writes included); every shard
// latch is taken for the rest of the transaction.
func (tx *Tx) Stats(name string) (RelStats, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.usable(); err != nil {
		return RelStats{}, err
	}
	r, err := tx.rel(name)
	if err != nil {
		return RelStats{}, err
	}
	if err := tx.latchRel(r); err != nil {
		return RelStats{}, err
	}
	rel, ops, err := r.canonical(nil)
	if err != nil {
		return RelStats{}, err
	}
	st := statsOf(name, rel, ops)
	if r.rs != nil {
		ic, err := r.rs.IndexPageCounts()
		if err != nil {
			return RelStats{}, err
		}
		st.IndexPages = &ic
	}
	return st, nil
}

// ValidateDeps checks the named relation's declared dependencies
// against its expansion as this transaction sees it; every shard latch
// is taken for the rest of the transaction.
func (tx *Tx) ValidateDeps(name string) ([]Violation, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.usable(); err != nil {
		return nil, err
	}
	r, err := tx.rel(name)
	if err != nil {
		return nil, err
	}
	if err := tx.latchRel(r); err != nil {
		return nil, err
	}
	rel, _, err := r.canonical(nil)
	if err != nil {
		return nil, err
	}
	return validateOf(name, r, rel), nil
}

// Def returns the named relation's definition as this transaction sees
// it.
func (tx *Tx) Def(name string) (RelationDef, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.usable(); err != nil {
		return RelationDef{}, err
	}
	r, err := tx.rel(name)
	if err != nil {
		return RelationDef{}, err
	}
	return r.def, nil
}

// Commit makes every statement of the transaction durable as ONE
// group-committed WAL batch (one fsync, shared with concurrently
// committing transactions), publishes its creates and drops, and
// releases its latches. A failed commit rolls the transaction back —
// memory and disk return to the pre-Begin state — and reports both. A
// commit under a cancelled context rolls back too.
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	if err := tx.ctx.Err(); err != nil {
		tx.rollbackLocked()
		return fmt.Errorf("engine: commit aborted (transaction rolled back): %w", err)
	}
	if tx.stx != nil {
		err := tx.db.st.Commit(tx.stx)
		if errors.Is(err, storage.ErrWriteThroughFailed) {
			// The batch already survived its commit fsync — it is
			// durable in the log, only the data-file propagation failed,
			// and the frames stayed dirty and owned. Retry the
			// idempotent relog once: on a transient error this completes
			// the commit cleanly. If the retry fails too we fall through
			// to rollback, accepting a documented in-doubt window: until
			// the next successful checkpoint resets the log, a crash
			// would replay the batch recovery-side even though this
			// process reports the transaction rolled back. (Perfect
			// semantics are unattainable once the disk fails between the
			// commit fsync and the write-through; the window closes at
			// the next checkpoint.)
			err = tx.db.st.Commit(tx.stx)
		}
		if err != nil {
			if rbErr := tx.rollbackLocked(); rbErr != nil {
				return fmt.Errorf("engine: commit failed (%v) and rollback failed: %w", err, rbErr)
			}
			return fmt.Errorf("engine: commit failed (transaction rolled back): %w", err)
		}
	}
	for sh := range tx.touched {
		if sh.ss != nil {
			sh.ss.ReleaseTxn()
		}
	}
	db := tx.db
	db.mu.Lock()
	for name, r := range tx.creates {
		db.rels[name] = r
	}
	for name, r := range tx.drops {
		r.dropped = true
		if db.rels[name] == r {
			delete(db.rels, name)
		}
		if db.st != nil {
			db.st.CompleteDrop(name)
		}
	}
	db.mu.Unlock()
	tx.finish()
	return nil
}

// Rollback discards the transaction: on a disk-backed database every
// dirty frame is dropped from the buffer pool (no-steal guarantees
// nothing uncommitted reached the file, so the file is bit-identical to
// the pre-Begin state) and each touched shard's in-memory state — hash
// indexes, heap insertion target, canonical partition — is rebuilt from
// its heap; in memory mode the statement log is undone in reverse
// (the Section-4 algorithms are exact inverses). Latches are released
// and the handle is done.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	return tx.rollbackLocked()
}

func (tx *Tx) rollbackLocked() error {
	var err error
	if tx.stx != nil {
		// leave external-transaction mode before rebuilding (Reindex
		// resets the sink bookkeeping too, but created relations are
		// forgotten, not reindexed)
		for sh := range tx.touched {
			if sh.ss != nil {
				sh.ss.ReleaseTxn()
			}
		}
		if rerr := tx.db.st.Rollback(tx.stx); rerr != nil {
			err = rerr
		}
		for _, name := range tx.selfCreated {
			tx.db.st.ForgetRelation(name)
		}
		for sh := range tx.touched {
			if _, wasCreated := tx.selfCreated[sh.r]; wasCreated || sh.ss == nil {
				continue
			}
			rel, rerr := sh.ss.Reindex()
			if rerr != nil {
				if err == nil {
					err = rerr
				}
				continue
			}
			// a shard touched but never materialized (the maintainer
			// scan itself failed) has no resident form to reset
			if m := sh.maint.Load(); m != nil {
				m.ResetRelation(rel)
			}
		}
	} else {
		for i := len(tx.undo) - 1; i >= 0; i-- {
			u := tx.undo[i]
			// the undo log only records memory-mode writes, whose
			// relations always have a resident maintainer
			m := u.sh.maint.Load()
			if u.wasInsert {
				m.Delete(u.f)
			} else {
				m.Insert(u.f)
			}
		}
	}
	tx.finish()
	return err
}

// finish releases every latch and retires the handle.
func (tx *Tx) finish() {
	for sh := range tx.held {
		sh.latch.release(tx)
	}
	tx.held = nil
	if tx.ddl {
		tx.db.ddl.release(tx)
		tx.ddl = false
	}
	tx.done = true
	tx.db.txMu.Lock()
	delete(tx.db.openTxs, tx)
	tx.db.txMu.Unlock()
}
