package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/tuple"
	"repro/internal/update"
)

// The write pipeline turns the per-shard statement latch from a
// serialization point into a batching point. Without it, N clients
// hammering one relation serialize completely: each autocommit
// statement takes the latch, runs its Section-4 maintenance, and pays
// its own commit fsync before the next client can start — throughput
// is bounded by 1/fsync regardless of N. With it, writers ENQUEUE
// their mutation on the owning shard's pipeline and the first enqueuer
// spawns the shard's maintainer stage: a detached goroutine that
// drains the queue in batches, runs
// the composition/decomposition algorithms once per batch under a
// single engine transaction (one StatementBegin/End bracket, so the
// whole batch write-through pools under one storage transaction), and
// commits the batch with ONE fsync — then acks every waiting client
// with its own per-statement result. While a batch is being applied,
// newly arriving statements pile up in the queue and form the next
// batch, so the fsync cost amortizes across however many clients are
// concurrently writing: fsyncs/statement drops below 1 and throughput
// scales with the offered load instead of flatlining.
//
// Combined with K-way sharding (RelationDef.Shards) the same relation
// gets K independent pipelines whose batches dirty disjoint pages and
// group-commit concurrently through the store's merged WAL scheduler.
//
// Semantics are unchanged from per-statement autocommit:
//
//   - each enqueued statement observes the queue order of its shard
//     (the maintainer applies ops in enqueue order) and returns its own
//     (changed, err) exactly as Database.Insert/Delete always did;
//   - wait-die and the latch protocol are untouched — the batch runs
//     under an ordinary engine Tx that takes the shard latch, retries
//     under its ORIGINAL id on conflict, and parks on the refused
//     latch holding nothing (see Database.autocommit);
//   - a write-through failure inside a batch falls back to replaying
//     each statement as its own autocommit transaction, so the
//     per-statement repair machinery (syncAfterWrite) owns exact
//     failure semantics there;
//   - durability boundary: a statement is acked only after its batch's
//     commit fsync returned, so an acked write is durable exactly as
//     before.
type pipeline struct {
	mu      sync.Mutex
	queue   []*pipeOp
	leading bool // a maintainer goroutine is running (or being spawned)

	// counters for PipelineStats (written only by the shard's single
	// maintainer goroutine; read concurrently).
	batches  atomic.Int64 // batches applied
	ops      atomic.Int64 // statements applied via batches
	maxBatch atomic.Int64 // largest batch applied
	peak     atomic.Int64 // high-water queue depth
}

// pipeOp is one enqueued autocommit statement; done is closed by the
// maintainer once changed/err are final (for an acked statement, after
// the batch's commit fsync).
type pipeOp struct {
	f       tuple.Flat
	insert  bool
	changed bool
	err     error
	done    chan struct{}
}

// writePipelined is the autocommit Insert/Delete entry point: enqueue
// on the owning shard's pipeline, spawn the maintainer goroutine if
// none is running, then wait for the ack. The common uncontended case
// is: enqueue, spawn, the maintainer applies a batch of one and exits —
// the same work as the old direct path plus one goroutine handoff.
func (db *Database) writePipelined(name string, f tuple.Flat, insert bool) (bool, error) {
	if db.isClosed() {
		return false, fmt.Errorf("engine: statement: %w", ErrClosed)
	}
	r, err := db.Rel(name)
	if err != nil {
		return false, err
	}
	if insert {
		if err := db.typeCheck(r, f); err != nil {
			return false, err
		}
	}
	sh := r.shardFor(f)
	op := &pipeOp{f: f, insert: insert, done: make(chan struct{})}
	p := &sh.pipe
	p.mu.Lock()
	p.queue = append(p.queue, op)
	if d := int64(len(p.queue)); d > p.peak.Load() {
		p.peak.Store(d)
	}
	lead := !p.leading
	if lead {
		p.leading = true
	}
	p.mu.Unlock()
	if lead {
		// The maintainer stage runs DETACHED: if the enqueuing writer
		// drained the queue itself (serve-while-leading), it could not
		// submit its own next statement while leading — under steady
		// load the leader ends up servicing everyone else's generations
		// and then replays its own backlog as batches of one, halving
		// the merge factor. A detached drainer makes every writer an
		// equal enqueuer, so batches track the offered concurrency. The
		// goroutine exits once the queue stays empty (see the linger in
		// runPipeline), so an idle relation carries no goroutine.
		go db.runPipeline(sh)
	}
	<-op.done
	return op.changed, op.err
}

// runPipeline is the maintainer stage: drain batches until the queue
// stays empty, then exit. The exit is race-free because both the
// maintainer's empty-check-and-resign and an enqueuer's
// append-and-check-leading run under p.mu: the maintainer only clears
// leading in the same critical section that observed the empty queue,
// so an op that saw leading==true is guaranteed to be picked up by
// this maintainer's next drain.
func (db *Database) runPipeline(sh *relShard) {
	p := &sh.pipe
	// linger counts empty drains survived since the last batch: after
	// acking a batch the maintainer gives the acked writers a couple of
	// scheduling waves to submit their next statements before it exits.
	// Without the linger, the drain right after an ack wave often races
	// the wakeups, loses, exits — and the first waker spawns a new
	// maintainer that commits a batch of ONE with a full fsync, halving
	// the effective merge factor under steady load. A maintainer that
	// never applied a batch (fresh spawn) does not linger, so the
	// uncontended single-writer path is unchanged.
	linger := 0
	for {
		p.mu.Lock()
		batch := p.queue
		p.queue = nil
		if len(batch) == 0 {
			if linger > 0 {
				linger--
				p.mu.Unlock()
				runtime.Gosched()
				continue
			}
			p.leading = false
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		linger = 2
		p.batches.Add(1)
		p.ops.Add(int64(len(batch)))
		if n := int64(len(batch)); n > p.maxBatch.Load() {
			p.maxBatch.Store(n)
		}
		db.applyBatch(sh, batch)
		for _, op := range batch {
			close(op.done)
		}
		// Let the writers just acked (and any runnable enqueuers) get
		// their next statement into the queue before the next drain.
		// Without this, a saturated CPU drains a fragment — one or two
		// freshly woken writers — and pays a full commit fsync for it;
		// one yield lets the queue refill so batches stay near the
		// offered concurrency. Uncontended runs drain an empty queue
		// right after and resign, so the lone-writer path just pays a
		// scheduler call.
		runtime.Gosched()
	}
}

// batchSinkError marks a write-through failure observed after a batch
// application — the signal to fall back to per-statement replay.
type batchSinkError struct{ err error }

func (e *batchSinkError) Error() string {
	return fmt.Sprintf("engine: batched write-through failed: %v", e.err)
}

func (e *batchSinkError) Unwrap() error { return e.err }

// applyBatch applies one batch under one engine transaction (one
// latch acquisition, one maintenance pass, one commit fsync), filling
// each op's (changed, err). Mirrors Database.autocommit's conflict
// protocol: retry under the ORIGINAL transaction id, parking on the
// refused latch while holding nothing.
func (db *Database) applyBatch(sh *relShard, batch []*pipeOp) {
	ops := make([]update.Op, len(batch))
	for i, op := range batch {
		ops[i] = update.Op{F: op.f, Delete: !op.insert}
	}
	var id uint64
	for {
		tx, err := db.begin(context.Background(), id)
		if err != nil {
			failBatch(batch, err)
			return
		}
		id = tx.id
		results, err := tx.applyOps(sh, ops)
		if err != nil {
			tx.Rollback()
			if errors.Is(err, ErrTxConflict) {
				var ce *conflictError
				if errors.As(err, &ce) {
					ce.l.awaitFree(db)
				}
				continue
			}
			var be *batchSinkError
			if errors.As(err, &be) {
				// The rollback above restored shard memory from the heap
				// (pre-batch committed state). Replay each statement as
				// its own autocommit transaction: the per-statement
				// repair machinery owns exact failure semantics, and
				// statements unaffected by the fault still apply.
				db.replayOneByOne(sh, batch)
				return
			}
			failBatch(batch, err)
			return
		}
		if cerr := tx.Commit(); cerr != nil {
			// Commit rolled the batch back; every statement of it failed
			// the same way a lone autocommit statement would have.
			failBatch(batch, cerr)
			return
		}
		for i, res := range results {
			batch[i].changed, batch[i].err = res.Changed, res.Err
		}
		return
	}
}

// applyOps runs a whole pipeline batch as ONE bracketed statement
// group on sh under the transaction: one latch acquisition, one
// maintainer Apply (single StatementBegin/End, so the batch's
// write-through pools under tx and commits as one WAL batch).
func (tx *Tx) applyOps(sh *relShard, ops []update.Op) ([]update.OpResult, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if err := tx.usableWrite(); err != nil {
		return nil, err
	}
	if err := tx.latchShard(sh); err != nil {
		return nil, err
	}
	tx.attachShard(sh)
	m, err := sh.maintainer(tx.stx)
	if err != nil {
		return nil, err
	}
	results := m.Apply(ops)
	if sh.ss == nil {
		// memory mode: log undo per changed op so Close-time rollback of
		// a racing batch stays exact
		for i, res := range results {
			if res.Changed {
				cp := make(tuple.Flat, len(ops[i].F))
				copy(cp, ops[i].F)
				tx.undo = append(tx.undo, undoRec{sh: sh, f: cp, wasInsert: !ops[i].Delete})
			}
		}
	} else if werr := sh.ss.Err(); werr != nil {
		return nil, &batchSinkError{err: werr}
	}
	return results, nil
}

// replayOneByOne is the batch fallback: every statement reruns as its
// own autocommit transaction through the direct (unpipelined) path.
func (db *Database) replayOneByOne(sh *relShard, batch []*pipeOp) {
	name := sh.r.def.Name
	for _, op := range batch {
		op.changed, op.err = db.writeDirect(name, op.f, op.insert)
	}
}

// writeDirect is the pre-pipeline autocommit write: one statement, one
// transaction, one commit.
func (db *Database) writeDirect(name string, f tuple.Flat, insert bool) (bool, error) {
	var ch bool
	err := db.autocommit(func(tx *Tx) error {
		var err error
		if insert {
			ch, err = tx.Insert(name, f)
		} else {
			ch, err = tx.Delete(name, f)
		}
		return err
	})
	return ch, err
}

// failBatch acks every statement of a batch with the same error (the
// batch never applied).
func failBatch(batch []*pipeOp, err error) {
	for _, op := range batch {
		op.err = err
	}
}
