package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tuple"
)

// TestBTreeSplitCrashSweep aims crash injection at the range index's
// structural mutations: with the node fan-out clamped to its minimum,
// ONE transaction of inserts forces B+tree leaf splits AND inner splits
// (height growth), and a crash at every byte offset of the journal must
// recover the index onto a transaction boundary — verified against the
// heap-scan oracle by loadRelsErr (VerifyIndexes walks the tree, and an
// unbounded ScanFixedRange must equal the recovered heap content).
func TestBTreeSplitCrashSweep(t *testing.T) {
	fsys := newTxFS()
	open := func() *Database {
		t.Helper()
		db, err := Open("db",
			WithFileSystem(fsys.open, fsys.remove),
			WithPoolPages(8), WithCheckpointBytes(-1))
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	// base: both relations (the loader reads r1 and r2), r1 seeded with
	// a few tuples so the first clamped insert already splits a leaf
	db := open()
	for _, name := range []string{"r1", "r2"} {
		if err := db.Create(txTestDef(name)); err != nil {
			t.Fatal(err)
		}
	}
	seed := []tuple.Flat{
		row("t02", "c1", "b1"), row("t04", "c1", "b1"), row("t06", "c1", "b1"),
	}
	if _, err := db.InsertMany("r1", seed); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("r2", row("s1", "c1", "b1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	pre := loadRels(t, fsys.snapshot(), "reference pre")
	db2 := open()
	defer db2.Close()
	// clamp the fan-out so a dozen keys build a three-level tree
	db2.mu.RLock()
	ss := db2.rels["r1"].shards[0].ss
	db2.mu.RUnlock()
	ss.SetRangeIndexMaxEntries(2)
	before, err := db2.IndexPageStats()
	if err != nil {
		t.Fatal(err)
	}

	base := fsys.snapshot()
	fsys.mu.Lock()
	fsys.recording = true
	fsys.journal = nil
	fsys.mu.Unlock()
	tx, err := db2.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 5 fixed atoms interleaved around the seed keys: with maxEntries=2
	// the leaves split immediately and the root inner overflows,
	// pushing the tree to height >= 3 inside this one tx (kept minimal
	// — every extra page image in the journal multiplies the number of
	// injection offsets the full sweep must replay)
	for i := 0; i < 5; i++ {
		if _, err := tx.Insert("r1", row(fmt.Sprintf("t%02d", i), "c9", "b9")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	fsys.mu.Lock()
	fsys.recording = false
	journal := fsys.journal
	fsys.mu.Unlock()
	post := loadRels(t, fsys.snapshot(), "reference post")
	if pre["r1"].Equal(post["r1"]) {
		t.Fatal("transaction changed nothing; harness is vacuous")
	}

	// the transaction must actually have split leaves AND inners: the
	// meta page plus a root and at least two child inners means the
	// inner level itself split (height >= 3)
	after, err := db2.IndexPageStats()
	if err != nil {
		t.Fatal(err)
	}
	if after["r1"].BTreeLeaf < 4 || after["r1"].BTreeInner < 4 {
		t.Fatalf("tx did not force both split kinds: before %+v after %+v", before["r1"], after["r1"])
	}

	total := int64(0)
	for _, op := range journal {
		total += op.cost()
	}
	if total == 0 {
		t.Fatal("empty journal")
	}
	t.Logf("journal: %d ops, %d injection points; btree pages %+v -> %+v",
		len(journal), total, before["r1"], after["r1"])

	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	workers := runtime.GOMAXPROCS(0)
	var next, failed atomic.Int64
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := (next.Add(1) - 1) * stride
				if k > total || failed.Load() != 0 {
					return
				}
				for _, mode := range []string{"inorder", "reordered"} {
					state := txCrashState(base, journal, k, mode == "reordered")
					label := fmt.Sprintf("btree-%s@%d", mode, k)
					got, err := loadRelsErr(state, label)
					if err == nil {
						preSide := got["r1"].Equal(pre["r1"])
						postSide := got["r1"].Equal(post["r1"])
						if !preSide && !postSide {
							err = fmt.Errorf("%s: recovery not on a transaction boundary:\nr1 %v", label, got["r1"])
						}
					}
					if err != nil {
						if failed.CompareAndSwap(0, 1) {
							errs <- err
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
