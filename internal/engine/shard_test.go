package engine

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tuple"
)

// Tests for K-way sharded relations (RelationDef.Shards > 1): the heap
// is partitioned across K chains keyed by the determinant atom, each
// shard keeps its own resident Section-4 canonical form behind its own
// latch, and every read path re-canonicalizes the union. The oracle in
// each test is an in-memory database running the same statements on a
// classic single-chain relation: canonical forms depend only on the
// flat set, so the two must stay Equal at every committed boundary.

func shardedDef(name string, k int) RelationDef {
	d := txTestDef(name)
	d.Shards = k
	return d
}

// shardSpread reports how many distinct shards of r the flats land on —
// used to reject vacuous workloads that happen to hash onto one chain.
func shardSpread(r *Rel, fs []tuple.Flat) int {
	seen := map[*relShard]bool{}
	for _, f := range fs {
		seen[r.shardFor(f)] = true
	}
	return len(seen)
}

func TestShardedRelationEquivalence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	db, err := Open(path, WithPoolPages(32))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Create(shardedDef("r", 4)); err != nil {
		t.Fatal(err)
	}
	oracle := New()
	if err := oracle.Create(txTestDef("r")); err != nil {
		t.Fatal(err)
	}

	var all []tuple.Flat
	for i := 0; i < 24; i++ {
		all = append(all, row(
			fmt.Sprintf("s%02d", i%12),
			fmt.Sprintf("c%d", i%5),
			fmt.Sprintf("b%d", i%3)))
	}
	r, err := db.Rel("r")
	if err != nil {
		t.Fatal(err)
	}
	if n := shardSpread(r, all); n < 2 {
		t.Fatalf("workload hits %d shard(s); sharding untested", n)
	}

	check := func(label string, d *Database) {
		t.Helper()
		got, err := d.ReadRelation(context.Background(), "r")
		if err != nil {
			t.Fatalf("%s: read: %v", label, err)
		}
		want, err := oracle.ReadRelation(context.Background(), "r")
		if err != nil {
			t.Fatalf("%s: oracle read: %v", label, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: sharded relation diverged from oracle:\ngot  %v\nwant %v", label, got, want)
		}
		gs, err := d.Stats("r")
		if err != nil {
			t.Fatalf("%s: stats: %v", label, err)
		}
		if gs.NFRTuples != want.Len() || gs.FlatTuples != want.ExpansionSize() {
			t.Fatalf("%s: stats (%d nfr, %d flat) disagree with oracle relation (%d, %d)",
				label, gs.NFRTuples, gs.FlatTuples, want.Len(), want.ExpansionSize())
		}
	}

	// autocommit inserts, including duplicates: changed flags must agree
	for i, f := range all {
		ch, err := db.Insert("r", f)
		och, oerr := oracle.Insert("r", f)
		if err != nil || oerr != nil {
			t.Fatalf("insert %d: %v / %v", i, err, oerr)
		}
		if ch != och {
			t.Fatalf("insert %d: changed=%v, oracle=%v", i, ch, och)
		}
	}
	// autocommit deletes of every third flat (some repeats → no-ops)
	for i := 0; i < len(all); i += 3 {
		ch, err := db.Delete("r", all[i])
		och, oerr := oracle.Delete("r", all[i])
		if err != nil || oerr != nil {
			t.Fatalf("delete %d: %v / %v", i, err, oerr)
		}
		if ch != och {
			t.Fatalf("delete %d: changed=%v, oracle=%v", i, ch, och)
		}
	}
	check("after autocommit", db)

	// a multi-statement transaction spanning shards, rolled back: the
	// sharded relation must come back byte-for-byte
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := tx.Insert("r", row(fmt.Sprintf("x%d", i), "c9", "b9")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	check("after rollback", db)

	// and committed: same statements against the oracle
	tx, err = db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		f := row(fmt.Sprintf("y%d", i), "c8", "b8")
		if _, err := tx.Insert("r", f); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.Insert("r", f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Delete("r", all[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Delete("r", all[1]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	check("after tx commit", db)
	if err := db.VerifyIndexes(); err != nil {
		t.Fatalf("VerifyIndexes: %v", err)
	}

	// reopen: the shard layout persists through the catalog and the
	// merged canonical form survives
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, WithPoolPages(32))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	def, err := db2.Def("r")
	if err != nil {
		t.Fatal(err)
	}
	if def.Shards != 4 {
		t.Fatalf("reopened Shards = %d, want 4", def.Shards)
	}
	check("after reopen", db2)
	if err := db2.VerifyIndexes(); err != nil {
		t.Fatalf("reopened VerifyIndexes: %v", err)
	}
}

// TestShardedPipelineConcurrent hammers ONE sharded relation from many
// goroutines through the autocommit pipeline: every statement must get
// its own correct ack, the final canonical form must equal the oracle's
// (set semantics make the final state order-independent: each goroutine
// deletes only tuples it inserted itself), and the pipeline counters
// must account for every statement. Run under -race in CI.
func TestShardedPipelineConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	db, err := Open(path, WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Create(shardedDef("hot", 4)); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		inserts = 30
		deletes = 10 // of our own inserts
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < inserts; i++ {
				f := row(fmt.Sprintf("w%d-s%d", w, i), fmt.Sprintf("c%d", i%4), fmt.Sprintf("b%d", i%3))
				ch, err := db.Insert("hot", f)
				if err != nil {
					errs <- fmt.Errorf("worker %d insert %d: %w", w, i, err)
					return
				}
				if !ch {
					errs <- fmt.Errorf("worker %d insert %d: not changed", w, i)
					return
				}
			}
			for i := 0; i < deletes; i++ {
				f := row(fmt.Sprintf("w%d-s%d", w, i), fmt.Sprintf("c%d", i%4), fmt.Sprintf("b%d", i%3))
				ch, err := db.Delete("hot", f)
				if err != nil {
					errs <- fmt.Errorf("worker %d delete %d: %w", w, i, err)
					return
				}
				if !ch {
					errs <- fmt.Errorf("worker %d delete %d: not changed", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// oracle: the surviving flats, inserted fresh (canonical form is a
	// function of the flat set alone)
	oracle := New()
	if err := oracle.Create(txTestDef("hot")); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := deletes; i < inserts; i++ {
			f := row(fmt.Sprintf("w%d-s%d", w, i), fmt.Sprintf("c%d", i%4), fmt.Sprintf("b%d", i%3))
			if _, err := oracle.Insert("hot", f); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := oracle.ReadRelation(context.Background(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.ReadRelation(context.Background(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("concurrent sharded writes diverged from oracle:\ngot  %v\nwant %v", got, want)
	}

	// pipeline accounting: every statement went through a batch
	ps, ok := db.PipelineStats()["hot"]
	if !ok {
		t.Fatal("no pipeline stats for hot")
	}
	total := int64(workers * (inserts + deletes))
	if ps.Ops != total {
		t.Errorf("pipeline ops = %d, want %d", ps.Ops, total)
	}
	if ps.Batches <= 0 || ps.Batches > ps.Ops {
		t.Errorf("pipeline batches = %d (ops %d)", ps.Batches, ps.Ops)
	}
	if ps.Shards != 4 {
		t.Errorf("pipeline shards = %d, want 4", ps.Shards)
	}
	if ps.MaxBatch < 1 || ps.QueuePeak < 1 {
		t.Errorf("pipeline maxBatch=%d queuePeak=%d", ps.MaxBatch, ps.QueuePeak)
	}
	// the whole point: batching keeps fsyncs at or below one per statement
	if ws, ok := db.WALStats(); ok && ws.Fsyncs > 0 {
		if float64(ws.Fsyncs) > float64(total)*1.5 {
			t.Errorf("%d fsyncs for %d statements: batching is not engaging", ws.Fsyncs, total)
		}
	}

	if err := db.VerifyIndexes(); err != nil {
		t.Fatalf("VerifyIndexes: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got2, err := db2.ReadRelation(context.Background(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want) {
		t.Fatalf("reopened relation diverged from oracle:\ngot  %v\nwant %v", got2, want)
	}
	if err := db2.VerifyIndexes(); err != nil {
		t.Fatalf("reopened VerifyIndexes: %v", err)
	}
}

// TestWaitDieFairnessUnderPipeline pins the wait-die liveness contract
// on the pipelined path: an OLD multi-statement transaction repeatedly
// holds the relation latch while a swarm of YOUNG autocommit writers
// (which die on conflict, park on the refused latch holding nothing,
// and retry under their ORIGINAL id) hammer the same relation. Every
// young writer must commit within a bounded wait — no starvation, no
// deadlock — and the final state must equal the oracle. Run under -race
// in CI.
func TestWaitDieFairnessUnderPipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	db, err := Open(path, WithPoolPages(32))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// a single shard maximizes contention: every writer needs THE latch
	if err := db.Create(txTestDef("r")); err != nil {
		t.Fatal(err)
	}

	const (
		rounds  = 4
		writers = 4
	)
	var youngOK atomic.Int64
	for round := 0; round < rounds; round++ {
		// the old transaction begins first → lowest id → wins wait-die
		old, err := db.Begin(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := old.Insert("r", row(fmt.Sprintf("old%d", round), "c0", "b0")); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				done := make(chan error, 1)
				go func() {
					ch, err := db.Insert("r", row(fmt.Sprintf("y%d-%d", round, w), "c1", "b1"))
					if err == nil && !ch {
						err = fmt.Errorf("young writer %d/%d: not changed", round, w)
					}
					done <- err
				}()
				select {
				case err := <-done:
					if err != nil {
						errs <- err
						return
					}
					youngOK.Add(1)
				case <-time.After(30 * time.Second):
					errs <- fmt.Errorf("young writer %d/%d starved behind old tx", round, w)
				}
			}(w)
		}
		// hold the latch long enough for the young writers to pile up,
		// then grow the transaction once more and commit
		time.Sleep(5 * time.Millisecond)
		if _, err := old.Insert("r", row(fmt.Sprintf("old%d", round), "c2", "b2")); err != nil {
			t.Fatal(err)
		}
		if err := old.Commit(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	if got := youngOK.Load(); got != rounds*writers {
		t.Fatalf("%d young commits, want %d", got, rounds*writers)
	}

	// equivalence: everything everyone wrote is there
	oracle := New()
	if err := oracle.Create(txTestDef("r")); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		for _, f := range []tuple.Flat{
			row(fmt.Sprintf("old%d", round), "c0", "b0"),
			row(fmt.Sprintf("old%d", round), "c2", "b2"),
		} {
			if _, err := oracle.Insert("r", f); err != nil {
				t.Fatal(err)
			}
		}
		for w := 0; w < writers; w++ {
			if _, err := oracle.Insert("r", row(fmt.Sprintf("y%d-%d", round, w), "c1", "b1")); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := oracle.ReadRelation(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.ReadRelation(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("state diverged:\ngot  %v\nwant %v", got, want)
	}
}

// sweepJournal re-creates a crash at every byte offset of journal (both
// replay modes) over base and demands recovery land BOTH r1 and r2
// together on either the pre or the post side, with indexes and
// checksums clean — the same contract as TestTxCrashRecoveryEveryOffset,
// factored out so the sharded harness below can reuse it.
func sweepJournal(t *testing.T, base map[string][]byte, journal []txOp, pre, post map[string]*core.Relation) {
	t.Helper()
	total := int64(0)
	for _, op := range journal {
		total += op.cost()
	}
	if total == 0 {
		t.Fatal("empty journal")
	}
	t.Logf("journal: %d ops, %d injection points", len(journal), total)
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	workers := runtime.GOMAXPROCS(0)
	var next, failed atomic.Int64
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := (next.Add(1) - 1) * stride
				if k > total || failed.Load() != 0 {
					return
				}
				for _, mode := range []string{"inorder", "reordered"} {
					state := txCrashState(base, journal, k, mode == "reordered")
					label := fmt.Sprintf("%s@%d", mode, k)
					got, err := loadRelsErr(state, label)
					if err == nil {
						preSide := got["r1"].Equal(pre["r1"]) && got["r2"].Equal(pre["r2"])
						postSide := got["r1"].Equal(post["r1"]) && got["r2"].Equal(post["r2"])
						if !preSide && !postSide {
							err = fmt.Errorf("%s: recovery not on a transaction boundary:\nr1 %v\nr2 %v",
								label, got["r1"], got["r2"])
						}
					}
					if err != nil {
						if failed.CompareAndSwap(0, 1) {
							errs <- err
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestShardedTxCrashRecoveryEveryOffset drives the crash harness
// through the SHARDED write path: both relations carry Shards=3, the
// recorded transaction's statements fan out across several shard chains
// (disjoint heap pages, one merged WAL group), and a crash at every
// byte offset must still recover every shard of both relations on the
// same side of the transaction boundary.
func TestShardedTxCrashRecoveryEveryOffset(t *testing.T) {
	fsys := newTxFS()
	open := func() *Database {
		t.Helper()
		db, err := Open("db",
			WithFileSystem(fsys.open, fsys.remove),
			WithPoolPages(8), WithCheckpointBytes(-1))
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	db := open()
	seed := []tuple.Flat{
		row("s1", "c1", "b1"), row("s1", "c2", "b1"), row("s2", "c1", "b2"),
		row("s3", "c3", "b1"), row("s4", "c1", "b3"),
	}
	for _, name := range []string{"r1", "r2"} {
		if err := db.Create(shardedDef(name, 3)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.InsertMany(name, seed); err != nil {
			t.Fatal(err)
		}
	}
	// the seed must actually span chains, or this is the unsharded test
	r1, err := db.Rel("r1")
	if err != nil {
		t.Fatal(err)
	}
	if n := shardSpread(r1, seed); n < 2 {
		t.Fatalf("seed hits %d shard(s); sharding untested", n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	pre := loadRels(t, fsys.snapshot(), "reference pre")
	db2 := open()
	defer db2.Close()
	base := fsys.snapshot()
	fsys.mu.Lock()
	fsys.recording = true
	fsys.journal = nil
	fsys.mu.Unlock()
	tx, err := db2.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stmts := []struct {
		rel    string
		f      tuple.Flat
		insert bool
	}{
		{"r1", row("s9", "c9", "b9"), true},
		{"r1", row("s8", "c8", "b8"), true},
		{"r1", row("s1", "c1", "b1"), false},
		{"r2", row("s2", "c4", "b2"), true},
		{"r2", row("s7", "c7", "b7"), true},
		{"r2", row("s3", "c3", "b1"), false},
	}
	touched := map[*relShard]bool{}
	for i, s := range stmts {
		var err error
		if s.insert {
			_, err = tx.Insert(s.rel, s.f)
		} else {
			_, err = tx.Delete(s.rel, s.f)
		}
		if err != nil {
			t.Fatalf("statement %d: %v", i, err)
		}
		r, rerr := db2.Rel(s.rel)
		if rerr != nil {
			t.Fatal(rerr)
		}
		touched[r.shardFor(s.f)] = true
	}
	if len(touched) < 3 {
		t.Fatalf("transaction touched %d shard chains; want ≥3 for a multi-shard commit", len(touched))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	fsys.mu.Lock()
	fsys.recording = false
	journal := fsys.journal
	fsys.mu.Unlock()
	post := loadRels(t, fsys.snapshot(), "reference post")
	if pre["r1"].Equal(post["r1"]) || pre["r2"].Equal(post["r2"]) {
		t.Fatal("transaction changed nothing; harness is vacuous")
	}
	sweepJournal(t, base, journal, pre, post)
}

// TestPipelineBatchCrashRecoveryEveryOffset records a journal for ONE
// pipeline batch — several statements applied through applyBatch's
// single-transaction path (one latch hold, one maintainer Apply, one
// commit fsync) — and sweeps a crash across every byte of it. The
// batch, like any transaction, must be all-or-nothing on disk.
func TestPipelineBatchCrashRecoveryEveryOffset(t *testing.T) {
	fsys := newTxFS()
	open := func() *Database {
		t.Helper()
		db, err := Open("db",
			WithFileSystem(fsys.open, fsys.remove),
			WithPoolPages(8), WithCheckpointBytes(-1))
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	db := open()
	seed := []tuple.Flat{row("s1", "c1", "b1"), row("s2", "c1", "b2")}
	for _, name := range []string{"r1", "r2"} {
		if err := db.Create(shardedDef(name, 2)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.InsertMany(name, seed); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	pre := loadRels(t, fsys.snapshot(), "reference pre")
	db2 := open()
	defer db2.Close()
	base := fsys.snapshot()
	fsys.mu.Lock()
	fsys.recording = true
	fsys.journal = nil
	fsys.mu.Unlock()

	// hand applyBatch a ready-made batch: three statements that must
	// commit as one unit on one shard chain
	r1, err := db2.Rel("r1")
	if err != nil {
		t.Fatal(err)
	}
	anchor := row("s1", "c7", "b7") // same determinant as a seed tuple
	sh := r1.shardFor(anchor)
	batch := []*pipeOp{
		{f: anchor, insert: true, done: make(chan struct{})},
		{f: row("s1", "c1", "b1"), insert: false, done: make(chan struct{})},
		{f: row("s1", "c5", "b5"), insert: true, done: make(chan struct{})},
	}
	for _, op := range batch {
		if r1.shardFor(op.f) != sh {
			t.Fatalf("batch op %v lands on a different shard; fix the fixture", op.f)
		}
	}
	db2.applyBatch(sh, batch)
	for i, op := range batch {
		if op.err != nil {
			t.Fatalf("batch op %d: %v", i, op.err)
		}
		if !op.changed {
			t.Fatalf("batch op %d: not changed", i)
		}
	}

	fsys.mu.Lock()
	fsys.recording = false
	journal := fsys.journal
	fsys.mu.Unlock()
	post := loadRels(t, fsys.snapshot(), "reference post")
	if pre["r1"].Equal(post["r1"]) {
		t.Fatal("batch changed nothing; harness is vacuous")
	}
	if !pre["r2"].Equal(post["r2"]) {
		t.Fatal("batch leaked into r2")
	}
	sweepJournal(t, base, journal, pre, post)
}
