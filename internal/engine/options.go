package engine

import (
	"repro/internal/storage"
	"repro/internal/store"
)

// Option configures Open. Options compose left to right:
//
//	db, err := engine.Open(path,
//	    engine.WithPoolPages(256),
//	    engine.WithCheckpointBytes(16<<20))
type Option func(*openConfig)

type openConfig struct {
	store    store.Options
	readOnly bool
}

// WithPoolPages sets the buffer-pool capacity in pages
// (0 = store.DefaultPoolPages).
func WithPoolPages(n int) Option {
	return func(c *openConfig) { c.store.PoolPages = n }
}

// WithCheckpointBytes sets the WAL size at which a commit triggers an
// automatic checkpoint (0 = store.DefaultCheckpointBytes, negative =
// only checkpoint on Flush/Close).
func WithCheckpointBytes(n int64) Option {
	return func(c *openConfig) { c.store.CheckpointBytes = n }
}

// WithReadOnly opens the database for reading: every mutating statement
// fails with ErrReadOnly, and Close discards instead of checkpointing.
// Opening a CRASHED file still performs recovery (the WAL's committed
// batches are replayed into the data file) — the same policy as Load.
func WithReadOnly() Option {
	return func(c *openConfig) { c.readOnly = true }
}

// WithFileSystem substitutes the filesystem the store opens its data
// file and WAL sidecar through (nil open = the operating system's).
// Crash-injection tests use it to journal every write; production code
// never needs it.
func WithFileSystem(open storage.OpenFileFunc, remove func(name string) error) Option {
	return func(c *openConfig) {
		c.store.OpenFile = open
		c.store.RemoveFile = remove
	}
}
