package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// enrollmentFlats deterministically generates the Section-2 workload as
// flat tuples.
func enrollmentFlats(seed int64, students int) (*schema.Schema, []tuple.Flat) {
	e := workload.GenEnrollment(seed, workload.EnrollmentParams{
		Students: students, CoursePool: 20, ClubPool: 6, SemesterPool: 4,
		CoursesPerStudent: 3, ClubsPerStudent: 2,
	})
	return e.R1.Schema(), e.R1.Expand()
}

// TestDiskEngineEquivalence drives the same workload through an
// in-memory and a disk-backed engine and checks both the live canonical
// forms and the disk realization (read back through the buffer pool)
// stay identical, including across a close/reopen.
func TestDiskEngineEquivalence(t *testing.T) {
	sch, flats := enrollmentFlats(11, 30)
	def := RelationDef{
		Name:   "R1",
		Schema: sch,
		Order:  schema.MustPermOf(sch, "Course", "Club", "Student"),
	}

	mem := New()
	if err := mem.Create(def); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.nfrs")
	disk, err := Open(path, WithPoolPages(8))
	if err != nil {
		t.Fatal(err)
	}
	if !disk.DiskBacked() || mem.DiskBacked() {
		t.Fatal("DiskBacked mode flags wrong")
	}
	if err := disk.Create(def); err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		t.Helper()
		memRel, err := mem.ReadRelation(context.Background(), "R1")
		if err != nil {
			t.Fatalf("%s: mem read: %v", stage, err)
		}
		diskRel, err := disk.ReadRelation(context.Background(), "R1")
		if err != nil {
			t.Fatalf("%s: disk read: %v", stage, err)
		}
		if !memRel.Equal(diskRel) {
			t.Fatalf("%s: disk realization diverged from in-memory canonical form", stage)
		}
	}

	for i, f := range flats {
		if _, err := mem.Insert("R1", f); err != nil {
			t.Fatal(err)
		}
		if _, err := disk.Insert("R1", f); err != nil {
			t.Fatal(err)
		}
		if i%25 == 0 {
			check("insert")
		}
	}
	// delete a third of the flats again
	for i, f := range flats {
		if i%3 != 0 {
			continue
		}
		cm, err := mem.Delete("R1", f)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := disk.Delete("R1", f)
		if err != nil {
			t.Fatal(err)
		}
		if cm != cd {
			t.Fatalf("delete change mismatch for %v", f)
		}
	}
	check("after deletes")

	if hits, misses, _, ok := disk.PoolStats(); !ok || hits+misses == 0 {
		t.Errorf("PoolStats = %d/%d/%v, want activity", hits, misses, ok)
	}

	// reopen from disk and compare against the in-memory engine
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	disk2, err := Open(path, WithPoolPages(8))
	if err != nil {
		t.Fatal(err)
	}
	defer disk2.Close()
	rel2, err := disk2.ReadRelation(context.Background(), "R1")
	if err != nil {
		t.Fatal(err)
	}
	memRel, _ := mem.ReadRelation(context.Background(), "R1")
	if !memRel.Equal(rel2) {
		t.Fatal("reopened disk relation diverged from in-memory canonical form")
	}
	// reopened relation is exactly canonical
	r2, _ := disk2.Rel("R1")
	want, _ := r2.Relation().CanonicalFromFlats(r2.Def().Order)
	if !r2.Relation().Equal(want) {
		t.Fatal("reopened relation not canonical")
	}
	// and keeps accepting write-through updates
	if _, err := disk2.Insert("R1", tuple.FlatOfStrings("s_new", "c_new", "b_new")); err != nil {
		t.Fatal(err)
	}
	got, _ := disk2.ReadRelation(context.Background(), "R1")
	if got.Len() != r2.Relation().Len() {
		t.Fatal("write-through lost a tuple after reopen")
	}
}

// TestOversizedTupleRollsBack: a record that can never fit a page must
// reject that one update — rolled back in memory, heap resynced — and
// leave the relation fully usable, not poisoned.
func TestOversizedTupleRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.nfrs")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	def := RelationDef{Name: "r", Schema: schema.MustOf("A", "B")}
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("r", tuple.FlatOfStrings("a1", "b1")); err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, 5000)
	for i := range huge {
		huge[i] = 'x'
	}
	if _, err := db.Insert("r", tuple.FlatOfStrings(string(huge), "b2")); err == nil {
		t.Fatal("oversized tuple accepted")
	}
	// the failed update is rolled back everywhere: memory, disk, reopen
	rel, err := db.ReadRelation(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("relation has %d tuples after rolled-back insert", rel.Len())
	}
	// and the relation is not poisoned: further updates work
	if ch, err := db.Insert("r", tuple.FlatOfStrings("a2", "b2")); err != nil || !ch {
		t.Fatalf("insert after rollback: %v %v", ch, err)
	}
	if ch, err := db.Delete("r", tuple.FlatOfStrings("a1", "b1")); err != nil || !ch {
		t.Fatalf("delete after rollback: %v %v", ch, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rel2, err := db2.ReadRelation(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Len() != 1 || rel2.ExpansionSize() != 1 {
		t.Fatalf("reopened relation wrong: %d tuples / %d flats", rel2.Len(), rel2.ExpansionSize())
	}
}

// TestSaveOpenQueryEquivalence saves an in-memory database and reopens
// the snapshot disk-backed: both engines must answer identically.
func TestSaveOpenQueryEquivalence(t *testing.T) {
	sch, flats := enrollmentFlats(7, 25)
	def := RelationDef{Name: "R1", Schema: sch,
		Order: schema.MustPermOf(sch, "Course", "Club", "Student")}
	mem := New()
	if err := mem.Create(def); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.InsertMany("R1", flats); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.nfrs")
	if err := mem.Save(path); err != nil {
		t.Fatal(err)
	}
	disk, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	memRel, _ := mem.ReadRelation(context.Background(), "R1")
	diskRel, err := disk.ReadRelation(context.Background(), "R1")
	if err != nil {
		t.Fatal(err)
	}
	if !memRel.Equal(diskRel) {
		t.Fatal("Save→Open changed relation content")
	}
	if !memRel.EquivalentTo(diskRel) {
		t.Fatal("Save→Open changed the denoted 1NF relation")
	}
	// definitions survive: order + MVD/FD lists
	r, err := disk.Rel("R1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Def().Order.String() != def.Order.String() {
		t.Fatalf("order changed: %v != %v", r.Def().Order, def.Order)
	}
	// disk-backed drop removes the relation durably
	if err := disk.Drop("R1"); err != nil {
		t.Fatal(err)
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	disk2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk2.Close()
	if len(disk2.Names()) != 0 {
		t.Fatalf("dropped relation resurrected: %v", disk2.Names())
	}
}

// TestConcurrentScanAndWrite races disk-mode queries against
// write-through updates on the same relation; run under -race this
// catches unsynchronized page access.
func TestConcurrentScanAndWrite(t *testing.T) {
	sch, flats := enrollmentFlats(29, 25)
	def := RelationDef{Name: "r", Schema: sch,
		Order: schema.MustPermOf(sch, "Course", "Club", "Student")}
	db, err := Open(filepath.Join(t.TempDir(), "rw.nfrs"), WithPoolPages(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, f := range flats {
			if _, err := db.Insert("r", f); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			if _, err := db.ReadRelation(context.Background(), "r"); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSaveToOwnAlias: saving a live disk-backed database to an alias
// of its own file must flush, not rename a snapshot over the open
// pager (which would orphan all further writes).
func TestSaveToOwnAlias(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.nfrs")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Create(RelationDef{Name: "r", Schema: schema.MustOf("A")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("r", tuple.FlatOfStrings("a1")); err != nil {
		t.Fatal(err)
	}
	// alias: same file through a different name (symlink), so the
	// string compare cannot match and inode comparison must
	alias := filepath.Join(dir, "alias.nfrs")
	if err := os.Symlink(path, alias); err != nil {
		t.Skipf("symlink unavailable: %v", err)
	}
	if err := db.Save(alias); err != nil {
		t.Fatal(err)
	}
	// writes after the save must survive close+reopen
	if _, err := db.Insert("r", tuple.FlatOfStrings("a2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rel, err := db2.ReadRelation(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	// degree-1 tuples compose, so a1+a2 is one NFR tuple with R* size 2
	if rel.ExpansionSize() != 2 {
		t.Fatalf("post-save write lost: %d flat tuples, want 2", rel.ExpansionSize())
	}
}

// TestSaveOverCrashedDatabase: saving a snapshot over a path that
// holds a crashed database (data file + WAL sidecar with committed
// batches) must not let the stale log survive the rename — a
// regression here replayed the old database's page images into the
// fresh snapshot on the next Open.
func TestSaveOverCrashedDatabase(t *testing.T) {
	dir := t.TempDir()
	// build a crashed database pair at target: copy the live file pair
	// of an open (never-Closed) database, whose WAL holds its batches
	scratch := filepath.Join(dir, "scratch.nfrs")
	old, err := Open(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Create(RelationDef{Name: "old_rel", Schema: schema.MustOf("A")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := old.Insert("old_rel", tuple.FlatOfStrings(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	target := filepath.Join(dir, "target.nfrs")
	for _, sfx := range []string{"", ".wal"} {
		b, err := os.ReadFile(scratch + sfx)
		if err != nil {
			t.Fatalf("copying crashed pair: %v", err)
		}
		if err := os.WriteFile(target+sfx, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old.Close()

	// save a fresh snapshot over the crashed pair
	mem := New()
	if err := mem.Create(RelationDef{Name: "fresh", Schema: schema.MustOf("X", "Y")}); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Insert("fresh", tuple.FlatOfStrings("x1", "y1")); err != nil {
		t.Fatal(err)
	}
	if err := mem.Save(target); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(target + ".wal"); !os.IsNotExist(err) {
		t.Fatal("stale WAL sidecar survived Save")
	}
	db, err := Open(target)
	if err != nil {
		t.Fatalf("snapshot corrupted by stale WAL: %v", err)
	}
	defer db.Close()
	if names := db.Names(); len(names) != 1 || names[0] != "fresh" {
		t.Fatalf("snapshot content wrong after Save over crashed db: %v", names)
	}
	rel, err := db.ReadRelation(context.Background(), "fresh")
	if err != nil || rel.ExpansionSize() != 1 {
		t.Fatalf("snapshot data wrong: %v (err %v)", rel, err)
	}
}

// TestLoadEmptyFile: loading a zero-length file must error, not
// initialize it into an empty database.
func TestLoadEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.nfrs")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("load of empty file accepted")
	}
	// and the file is untouched
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("load wrote to the file: %v, err %v", fi, err)
	}
}

// TestDiskCanonicalInvariant mirrors TestEngineCanonicalInvariant on a
// disk-backed engine: the stored realization must track the canonical
// form through a mixed random workload.
func TestDiskCanonicalInvariant(t *testing.T) {
	sch, flats := enrollmentFlats(23, 20)
	def := RelationDef{Name: "r", Schema: sch,
		Order: schema.MustPermOf(sch, "Course", "Club", "Student")}
	path := filepath.Join(t.TempDir(), "inv.nfrs")
	db, err := Open(path, WithPoolPages(4)) // tiny pool to force evictions
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	live := map[string]tuple.Flat{}
	for i, f := range flats {
		if i%4 == 3 && len(live) > 0 {
			var victim tuple.Flat
			for _, v := range live {
				victim = v
				break
			}
			if _, err := db.Delete("r", victim); err != nil {
				t.Fatal(err)
			}
			delete(live, victim.Key())
			continue
		}
		if _, err := db.Insert("r", f); err != nil {
			t.Fatal(err)
		}
		live[f.Key()] = f
	}
	var liveFlats []tuple.Flat
	for _, f := range live {
		liveFlats = append(liveFlats, f)
	}
	flat := core.MustFromFlats(def.Schema, liveFlats)
	want, _ := flat.Canonical(def.Order)
	got, err := db.ReadRelation(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("disk realization diverged from canonical rebuild")
	}
	if _, _, ev, _ := db.PoolStats(); ev == 0 {
		t.Log("note: no evictions despite tiny pool (workload fits)")
	}
}
