package engine

import (
	"errors"
	"fmt"

	"repro/internal/store"
)

// The public error taxonomy. Every error the engine returns wraps one
// of these sentinels (or a storage sentinel re-exported below), so
// callers branch with errors.Is instead of matching message strings —
// see docs/api.md for the full table.
var (
	// ErrNotFound wraps lookups of relations that do not exist (or were
	// dropped).
	ErrNotFound = errors.New("engine: relation not found")
	// ErrExists wraps creations of relations that already exist.
	ErrExists = errors.New("engine: relation already exists")
	// ErrTypeMismatch wraps tuples whose degree or attribute kinds do
	// not fit the relation's schema.
	ErrTypeMismatch = errors.New("engine: tuple does not match schema")
	// ErrTxDone is returned by every method of a Tx that has already
	// been committed or rolled back (including by Database.Close).
	ErrTxDone = errors.New("engine: transaction already committed or rolled back")
	// ErrTxConflict is returned by a statement whose latch acquisition
	// was refused to avoid a deadlock (wait-die: a younger transaction
	// that already holds latches never waits for an older one). The
	// transaction itself is still open and consistent — the statement
	// did not apply; roll back and retry.
	ErrTxConflict = errors.New("engine: transaction conflict (roll back and retry)")
	// ErrReadOnly wraps every mutation attempted on a database opened
	// with WithReadOnly.
	ErrReadOnly = errors.New("engine: database is read-only")
	// ErrClosed wraps every operation on a closed database.
	ErrClosed = errors.New("engine: database is closed")
)

// Storage sentinels surfaced through the engine, re-exported so facade
// callers need one import for the whole taxonomy.
var (
	// ErrCorrupt wraps open/scan failures caused by a malformed
	// database file.
	ErrCorrupt = store.ErrCorrupt
	// ErrMispaired wraps opens refused because the data file and WAL
	// sidecar belong to different databases.
	ErrMispaired = store.ErrMispaired
)

func errNotFound(name string) error {
	return fmt.Errorf("engine: unknown relation %q: %w", name, ErrNotFound)
}

func errExists(name string) error {
	return fmt.Errorf("engine: relation %q already exists: %w", name, ErrExists)
}
