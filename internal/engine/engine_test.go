package engine

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
)

func studentDef() RelationDef {
	return RelationDef{
		Name:   "R1",
		Schema: schema.MustOf("Student", "Course", "Club"),
		MVDs:   []dep.MVD{dep.NewMVD([]string{"Student"}, []string{"Course"})},
	}
}

func TestSuggestOrder(t *testing.T) {
	s := schema.MustOf("Student", "Course", "Club")
	// MVD Student ->-> Course: Student is a determinant, so it nests
	// last; Course and Club nest first (schema order within classes).
	p := SuggestOrder(s, nil, []dep.MVD{dep.NewMVD([]string{"Student"}, []string{"Course"})})
	names := p.Names(s)
	if names[2] != "Student" {
		t.Errorf("order = %v, want Student last", names)
	}
	// no deps: identity
	p2 := SuggestOrder(s, nil, nil)
	if p2.String() != schema.IdentityPerm(3).String() {
		t.Errorf("identity expected, got %v", p2)
	}
	// FD determinants also go last
	p3 := SuggestOrder(s, []dep.FD{dep.NewFD([]string{"Course"}, []string{"Club"})}, nil)
	if p3.Names(s)[2] != "Course" {
		t.Errorf("order = %v", p3.Names(s))
	}
}

func TestCreateValidation(t *testing.T) {
	db := New()
	if err := db.Create(RelationDef{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := db.Create(RelationDef{Name: "r"}); err == nil {
		t.Error("nil schema accepted")
	}
	if err := db.Create(RelationDef{
		Name: "r", Schema: schema.MustOf("A"),
		FDs: []dep.FD{dep.NewFD([]string{"Z"}, []string{"A"})},
	}); err == nil {
		t.Error("FD with unknown attribute accepted")
	}
	if err := db.Create(RelationDef{
		Name: "r", Schema: schema.MustOf("A"),
		MVDs: []dep.MVD{dep.NewMVD([]string{"A"}, []string{"Z"})},
	}); err == nil {
		t.Error("MVD with unknown attribute accepted")
	}
	if err := db.Create(RelationDef{
		Name: "r", Schema: schema.MustOf("A", "B"),
		Order: schema.Permutation{0},
	}); err == nil {
		t.Error("invalid order accepted")
	}
	if err := db.Create(studentDef()); err != nil {
		t.Fatal(err)
	}
	if err := db.Create(studentDef()); err == nil {
		t.Error("duplicate relation accepted")
	}
}

func TestInsertDeleteAndStats(t *testing.T) {
	db := New()
	if err := db.Create(studentDef()); err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"s1", "c1", "b1"}, {"s1", "c2", "b1"}, {"s1", "c3", "b1"},
		{"s3", "c1", "b1"}, {"s3", "c2", "b1"}, {"s3", "c3", "b1"},
		{"s2", "c1", "b2"}, {"s2", "c2", "b2"}, {"s2", "c3", "b2"},
	}
	for _, r := range rows {
		ch, err := db.Insert("R1", tuple.FlatOfStrings(r...))
		if err != nil {
			t.Fatal(err)
		}
		if !ch {
			t.Errorf("insert %v reported no change", r)
		}
	}
	st, err := db.Stats("R1")
	if err != nil {
		t.Fatal(err)
	}
	if st.FlatTuples != 9 {
		t.Errorf("FlatTuples = %d", st.FlatTuples)
	}
	// s1 and s3 share the same course set and club, so the canonical
	// form groups them into one tuple (exactly Fig. 1 R1's grouped
	// Student column): 2 NFR tuples for 9 flat tuples.
	if st.NFRTuples != 2 {
		t.Errorf("NFRTuples = %d (expected 2: {s1,s3} grouped, s2 alone)", st.NFRTuples)
	}
	if st.Compression != 4.5 {
		t.Errorf("Compression = %v", st.Compression)
	}
	// the Fig-2 update: s1 stops taking c1
	ch, err := db.Delete("R1", tuple.FlatOfStrings("s1", "c1", "b1"))
	if err != nil || !ch {
		t.Fatalf("delete: %v %v", ch, err)
	}
	st, _ = db.Stats("R1")
	if st.FlatTuples != 8 {
		t.Errorf("FlatTuples after delete = %d", st.FlatTuples)
	}
	// validated against scratch rebuild
	r, _ := db.Rel("R1")
	want, _ := r.Relation().CanonicalFromFlats(r.Def().Order)
	if !r.Relation().Equal(want) {
		t.Error("engine relation not canonical after delete")
	}
	if st.Ops.Compositions == 0 {
		t.Error("no compositions recorded")
	}
	r.ResetStats()
	if r.Stats().Compositions != 0 {
		t.Error("ResetStats failed")
	}
}

func TestTypeChecking(t *testing.T) {
	db := New()
	def := RelationDef{
		Name: "typed",
		Schema: schema.MustNew(
			schema.Attribute{Name: "ID", Kind: value.Int},
			schema.Attribute{Name: "Name", Kind: value.String},
		),
	}
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("typed", tuple.FlatOf(value.NewInt(1), value.NewString("x"))); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("typed", tuple.FlatOf(value.NewString("no"), value.NewString("x"))); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := db.Insert("typed", tuple.FlatOf(value.NewInt(1))); err == nil {
		t.Error("short tuple accepted")
	}
}

func TestUnknownRelationErrors(t *testing.T) {
	db := New()
	if _, err := db.Insert("nope", tuple.FlatOfStrings("x")); err == nil {
		t.Error("insert into unknown accepted")
	}
	if _, err := db.Delete("nope", tuple.FlatOfStrings("x")); err == nil {
		t.Error("delete from unknown accepted")
	}
	if _, err := db.Stats("nope"); err == nil {
		t.Error("stats of unknown accepted")
	}
	if _, err := db.ValidateDeps("nope"); err == nil {
		t.Error("validate of unknown accepted")
	}
	if err := db.Drop("nope"); err == nil {
		t.Error("drop of unknown accepted")
	}
}

func TestDropAndNames(t *testing.T) {
	db := New()
	db.Create(RelationDef{Name: "b", Schema: schema.MustOf("X")})
	db.Create(RelationDef{Name: "a", Schema: schema.MustOf("X")})
	names := db.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if err := db.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if len(db.Names()) != 1 {
		t.Error("drop failed")
	}
}

func TestValidateDeps(t *testing.T) {
	db := New()
	def := RelationDef{
		Name:   "r",
		Schema: schema.MustOf("A", "B", "C"),
		FDs:    []dep.FD{dep.NewFD([]string{"A"}, []string{"B"})},
		MVDs:   []dep.MVD{dep.NewMVD([]string{"A"}, []string{"B"})},
	}
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	db.Insert("r", tuple.FlatOfStrings("a1", "b1", "c1"))
	v, err := db.ValidateDeps("r")
	if err != nil || len(v) != 0 {
		t.Fatalf("clean relation has violations: %v %v", v, err)
	}
	// violate the FD: a1 with two B values
	db.Insert("r", tuple.FlatOfStrings("a1", "b2", "c1"))
	v, _ = db.ValidateDeps("r")
	if len(v) != 1 || v[0].Dep != "A -> B" {
		t.Errorf("violations = %v", v)
	}
	// now also violate the MVD
	db.Insert("r", tuple.FlatOfStrings("a1", "b1", "c2"))
	v, _ = db.ValidateDeps("r")
	if len(v) != 2 {
		t.Errorf("violations = %v", v)
	}
}

func TestInsertMany(t *testing.T) {
	db := New()
	db.Create(RelationDef{Name: "r", Schema: schema.MustOf("A", "B")})
	n, err := db.InsertMany("r", []tuple.Flat{
		tuple.FlatOfStrings("a", "b"),
		tuple.FlatOfStrings("a", "b"), // dup
		tuple.FlatOfStrings("a", "c"),
	})
	if err != nil || n != 2 {
		t.Errorf("InsertMany = %d, %v", n, err)
	}
	if _, err := db.InsertMany("r", []tuple.Flat{tuple.FlatOfStrings("short")}); err == nil {
		t.Error("bad tuple accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	def := studentDef()
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		db.Insert("R1", tuple.FlatOfStrings(
			[]string{"s1", "s2", "s3"}[rng.Intn(3)],
			[]string{"c1", "c2", "c3", "c4"}[rng.Intn(4)],
			[]string{"b1", "b2"}[rng.Intn(2)],
		))
	}
	db.Create(RelationDef{Name: "plain", Schema: schema.MustOf("X", "Y")})
	db.Insert("plain", tuple.FlatOfStrings("x", "y"))

	path := filepath.Join(t.TempDir(), "db.nfrs")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	// saving twice over an existing file must replace it cleanly
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.Names()) != 2 {
		t.Fatalf("Names = %v", db2.Names())
	}
	r1, _ := db.Rel("R1")
	r2, err := db2.Rel("R1")
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Relation().Equal(r2.Relation()) {
		t.Error("relation content changed across save/load")
	}
	if r2.Def().Order.String() != r1.Def().Order.String() {
		t.Error("order lost")
	}
	if len(r2.Def().MVDs) != 1 || r2.Def().MVDs[0].String() != "Student ->-> Course" {
		t.Errorf("MVDs lost: %v", r2.Def().MVDs)
	}
	// loaded database keeps working incrementally
	ch, err := db2.Insert("R1", tuple.FlatOfStrings("s9", "c9", "b9"))
	if err != nil || !ch {
		t.Fatalf("insert after load: %v %v", ch, err)
	}
	rel2, _ := db2.Rel("R1")
	want, _ := rel2.Relation().CanonicalFromFlats(rel2.Def().Order)
	if !rel2.Relation().Equal(want) {
		t.Error("not canonical after load+insert")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.nfrs")); err == nil {
		t.Error("load of missing file accepted")
	}
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("load of a directory accepted")
	}
}

// Integration check: engine stays exactly canonical through mixed
// random workloads on a 4-attribute relation with an FD.
func TestEngineCanonicalInvariant(t *testing.T) {
	db := New()
	// Theorem 3's fixedness guarantee needs the FD to cover the
	// universe (F is a key): A -> B,C,D.
	def := RelationDef{
		Name:   "r",
		Schema: schema.MustOf("A", "B", "C", "D"),
		FDs:    []dep.FD{dep.NewFD([]string{"A"}, []string{"B", "C", "D"})},
	}
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	byA := map[int]tuple.Flat{}
	var live []tuple.Flat
	for step := 0; step < 150; step++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			a := rng.Intn(40)
			f, ok := byA[a]
			if !ok {
				f = tuple.FlatOf(
					value.NewInt(int64(a)),
					value.NewInt(int64(rng.Intn(3))),
					value.NewInt(int64(rng.Intn(3))),
					value.NewInt(int64(rng.Intn(3))),
				)
				byA[a] = f
			}
			ch, err := db.Insert("r", f)
			if err != nil {
				t.Fatal(err)
			}
			if ch {
				live = append(live, f)
			}
		} else {
			i := rng.Intn(len(live))
			if _, err := db.Delete("r", live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	r, _ := db.Rel("r")
	flat := core.MustFromFlats(def.Schema, live)
	want, _ := flat.Canonical(r.Def().Order)
	if !r.Relation().Equal(want) {
		t.Error("engine diverged from canonical rebuild")
	}
	if v, _ := db.ValidateDeps("r"); len(v) != 0 {
		t.Errorf("FD violations: %v", v)
	}
	// canonical form is fixed on the FD determinant A (Theorem 3)
	if len(live) > 0 && !r.Relation().FixedOn(schema.NewAttrSet("A")) {
		t.Error("canonical form not fixed on FD determinant")
	}
}
