// Package engine is the database layer: a catalog of named NFRs, each
// declared with a schema, optional FDs/MVDs, and a nest order, kept
// permanently in canonical form V_P by the Section-4 update algorithms.
//
// The public surface is transaction-centric (see docs/api.md): Begin
// returns a Tx whose statements span one storage transaction and
// group-commit together; the Database-level statement methods (Insert,
// Delete, Create, Drop, ReadRelation) are thin autocommit wrappers
// over a one-shot Tx.
//
// The nest order defaults to SuggestOrder, which encodes Section 3.4's
// guidance: nest the dependent (right-side) attributes first so the
// canonical form ends up fixed on the determinant (left-side)
// attributes — the NFR analogue of a key.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/update"
)

// RelationDef declares a relation: its schema, dependencies, and the
// nest order of its canonical form.
type RelationDef struct {
	Name   string
	Schema *schema.Schema
	// Order is the nest order (Order[0] nested first). When nil,
	// SuggestOrder picks one from the dependencies.
	Order schema.Permutation
	FDs   []dep.FD
	MVDs  []dep.MVD
	// Shards is the number of heap chains a disk-backed relation's
	// canonical form is partitioned across, keyed by determinant atom
	// (store.ShardOfAtom). 0 and 1 both mean the classic single-chain
	// layout. Writers on different shards of one relation run and commit
	// concurrently; reads merge the shard partitions back into the
	// global canonical form (see docs/concurrency.md). Memory-mode
	// databases keep one resident canonical form regardless.
	Shards int
}

// SuggestOrder derives a nest order from the declared dependencies:
// attributes that appear only on right sides are nested first, left
// side (determinant) attributes last, preserving schema order within
// each class. With no dependencies it returns the identity.
func SuggestOrder(s *schema.Schema, fds []dep.FD, mvds []dep.MVD) schema.Permutation {
	lhs := schema.NewAttrSet()
	for _, f := range fds {
		lhs = lhs.Union(f.Lhs)
	}
	for _, m := range mvds {
		lhs = lhs.Union(m.Lhs)
	}
	var first, last []int
	for i := 0; i < s.Degree(); i++ {
		if lhs.Has(s.Attr(i).Name) {
			last = append(last, i)
		} else {
			first = append(first, i)
		}
	}
	return schema.Permutation(append(first, last...))
}

// Rel is one live relation: its definition plus one relShard per heap
// chain — each pairing a shard of the paged store with the maintainer
// of that shard's canonical partition and the latch serializing
// statements on it. A classic relation (and every memory-mode
// relation) has exactly one shard.
type Rel struct {
	def RelationDef
	rs  *store.RelStore // nil for in-memory databases

	// shards always holds at least one entry; its length equals
	// rs.ShardCount() on a disk-backed relation and 1 in memory mode.
	shards []*relShard

	// dropped is written while the dropping transaction holds EVERY
	// shard latch, and read under any one of them, so a statement that
	// was waiting while the relation was dropped fails cleanly instead
	// of writing into freed pages.
	dropped bool
}

// relShard is one independently-latched slice of a relation: the
// Section-4 maintainer of one shard partition, the store shard it
// writes through to, and the write pipeline batching autocommit
// statements on it. Statements on different shards of one relation
// dirty disjoint pages and commit concurrently (their WAL batches
// merged by the store's group-commit scheduler); reads latch or
// snapshot ALL shards and re-canonicalize the union.
type relShard struct {
	r   *Rel
	ord int
	ss  *store.Shard // nil in memory mode

	// The shard's canonical-form maintainer is materialized LAZILY on a
	// disk-backed database: engine.Open attaches relations without
	// scanning a single heap page, and the one O(shard heap)
	// materializing scan happens on the first statement that needs the
	// resident form (a write, Stats, ValidateDeps — snapshot reads
	// never do). maint is the published maintainer (nil until then);
	// maintMu serializes the one-time materialization. Memory-mode and
	// freshly created relations publish their maintainers eagerly.
	maintMu sync.Mutex
	maint   atomic.Pointer[update.Maintainer]

	// latch serializes statements on THIS shard (the shard maintainer
	// and its write-through are single-writer). A transaction holds it
	// from its first statement touching the shard until it commits or
	// rolls back. Deadlocks are avoided with wait-die (see latch).
	latch *latch

	// pipe batches concurrent autocommit writes on this shard into
	// single-fsync group applications (see pipeline).
	pipe pipeline
}

// newRel assembles a Rel over rs (nil for memory mode, which always
// gets exactly one shard).
func newRel(def RelationDef, rs *store.RelStore) *Rel {
	k := 1
	if rs != nil {
		k = rs.ShardCount()
	}
	r := &Rel{def: def, rs: rs, shards: make([]*relShard, k)}
	for i := range r.shards {
		sh := &relShard{r: r, ord: i, latch: newLatch()}
		if rs != nil {
			sh.ss = rs.Shard(i)
		}
		r.shards[i] = sh
	}
	return r
}

// Def returns the relation's definition.
func (r *Rel) Def() RelationDef { return r.def }

// shardFor routes a flat tuple to the shard owning it: the hash of its
// determinant atom (the attribute the canonical form is fixed on). A
// malformed flat — wrong degree — routes to shard 0, where the
// maintainer's own validation rejects it.
func (r *Rel) shardFor(f tuple.Flat) *relShard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	fixedAt := r.def.Order[len(r.def.Order)-1]
	if fixedAt >= len(f) {
		return r.shards[0]
	}
	return r.shards[store.ShardOfAtom(f[fixedAt], len(r.shards))]
}

// maintainer returns the shard's canonical-form maintainer,
// materializing it on first use: one shard-heap scan (refusing
// duplicate records — the fail-stop the store's index-attach open no
// longer provides), re-canonicalization of the shard partition, and
// the write-through sink hookup. When txn is non-nil and the stored
// form had drifted from the partition's canonical form, the shard heap
// is resynchronized under txn (write paths pass their statement
// transaction; read-only paths pass nil and tolerate the drift — it
// never occurs through this engine).
func (sh *relShard) maintainer(txn *store.Txn) (*update.Maintainer, error) {
	if m := sh.maint.Load(); m != nil {
		return m, nil
	}
	sh.maintMu.Lock()
	defer sh.maintMu.Unlock()
	if m := sh.maint.Load(); m != nil {
		return m, nil
	}
	def := sh.r.def
	if sh.ss == nil {
		// memory-mode maintainers are published eagerly at Create/Load;
		// reaching here means the relation handle escaped its database
		return nil, fmt.Errorf("engine: relation %q has no resident canonical form", def.Name)
	}
	rel := core.NewRelation(def.Schema)
	var dup error
	if err := sh.ss.Scan(func(t tuple.Tuple) bool {
		if !rel.Add(t) {
			dup = fmt.Errorf("%w: duplicate record in %q", store.ErrCorrupt, def.Name)
			return false
		}
		return true
	}); err != nil {
		return nil, err
	}
	if dup != nil {
		return nil, dup
	}
	m, err := update.FromRelationIndexed(rel, def.Order)
	if err != nil {
		return nil, err
	}
	if txn != nil && !m.Relation().Equal(rel) {
		// the canonical form of the shard's flats keeps every fixed atom
		// routing to this shard, so the shard-local Replace is sound
		if err := sh.ss.Replace(txn, m.Relation()); err != nil {
			return nil, err
		}
	}
	m.SetSink(sh.ss)
	sh.maint.Store(m)
	return m, nil
}

// setMaintainer publishes an eagerly built maintainer on the sole
// shard (memory mode, Load).
func (r *Rel) setMaintainer(m *update.Maintainer) { r.shards[0].maint.Store(m) }

// canonical materializes every shard and returns the GLOBAL canonical
// relation plus the summed maintenance stats. For a single-shard
// relation it is the resident form itself (not a copy); a K-sharded
// relation re-canonicalizes the union of the shard partitions. Callers
// must hold every shard latch (or otherwise exclude writers).
func (r *Rel) canonical(txn *store.Txn) (*core.Relation, update.Stats, error) {
	if len(r.shards) == 1 {
		m, err := r.shards[0].maintainer(txn)
		if err != nil {
			return nil, update.Stats{}, err
		}
		return m.Relation(), m.Stats(), nil
	}
	union := core.NewRelation(r.def.Schema)
	var st update.Stats
	for _, sh := range r.shards {
		m, err := sh.maintainer(txn)
		if err != nil {
			return nil, update.Stats{}, err
		}
		rel := m.Relation()
		for i := 0; i < rel.Len(); i++ {
			union.Add(rel.Tuple(i))
		}
		st.Add(m.Stats())
	}
	canon, _ := union.CanonicalFromFlats(r.def.Order)
	return canon, st, nil
}

// Relation returns the current canonical NFR (not a copy for
// single-shard relations; treat as read-only — ReadRelation returns an
// isolated snapshot), lazily materializing it on a disk-backed
// database. It returns nil when materialization fails (a corrupt
// heap); error-aware callers should use ReadRelation or Stats instead.
func (r *Rel) Relation() *core.Relation {
	rel, _, err := r.canonical(nil)
	if err != nil {
		return nil
	}
	return rel
}

// Stats returns the maintainers' accumulated operation counts, summed
// across shards (zero when the canonical form was never materialized
// or fails to).
func (r *Rel) Stats() update.Stats {
	var st update.Stats
	for _, sh := range r.shards {
		if m := sh.maint.Load(); m != nil {
			st.Add(m.Stats())
		}
	}
	return st
}

// ResetStats zeroes the operation counters.
func (r *Rel) ResetStats() {
	for _, sh := range r.shards {
		if m := sh.maint.Load(); m != nil {
			m.ResetStats()
		}
	}
}

// Database is a catalog of live relations. Methods are safe for
// concurrent use; each relation serializes its statements behind a
// per-relation latch held for the owning transaction's lifetime, and —
// in disk mode — transactions on different relations commit
// concurrently as separate storage transactions whose WAL batches the
// store merges into shared fsyncs (there is no global statement lock).
//
// A Database runs in one of two modes: purely in-memory (New), or
// disk-backed (Open), where every relation is realized as a heap chain
// in a single paged file and each canonical-form mutation is written
// through as it happens.
type Database struct {
	mu   sync.RWMutex
	rels map[string]*Rel
	st   *store.Store // nil = purely in-memory
	path string       // paged file path when disk-backed

	readOnly bool
	closed   atomic.Bool

	// transaction machinery: the DDL latch serializing catalog
	// mutations, and the open set Close rolls back. Transaction ids
	// (wait-die ages) come from the process-wide txIDSeq, not a
	// per-Database counter.
	ddl     *latch
	txMu    sync.Mutex
	openTxs map[*Tx]struct{}
}

// txIDSeq is the process-wide transaction id source. Wait-die compares
// transaction ids as ages, so ids must be unique and monotonic across
// every transaction that could ever contend — with a network server in
// front, that means across all sessions and all Database instances in
// the process, not per Database: two handles each minting ids from
// their own counter would hand out the same age twice, and wait-die's
// no-cycle argument (any wait chain has strictly decreasing ages)
// silently loses its footing. One atomic for the whole process keeps
// the ordering total. See TestTxIDsProcessWide.
var txIDSeq atomic.Uint64

// nextTxID mints a fresh process-wide transaction id (never 0 — 0
// means "assign one" in begin).
func nextTxID() uint64 { return txIDSeq.Add(1) }

// New creates an empty in-memory database.
func New() *Database {
	return &Database{
		rels:    make(map[string]*Rel),
		ddl:     newLatch(),
		openTxs: make(map[*Tx]struct{}),
	}
}

// Open opens (or creates) a disk-backed database in the single paged
// file at path. Options tune the buffer pool, checkpoint policy, and
// access mode:
//
//	db, err := engine.Open(path, engine.WithPoolPages(256))
//
// The store attaches each relation to its durable hash indexes without
// scanning, and the engine attaches without materializing: the whole
// open is O(catalog + index directories) page reads, never a heap
// scan. Each relation's canonical form materializes lazily on the
// first statement that needs it resident (see Rel.maintainer);
// snapshot reads (ReadRelation) never do.
func Open(path string, opts ...Option) (*Database, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	// a read-only open must not perform the (optional) orphan sweep —
	// only crash recovery may write
	cfg.store.NoSweep = cfg.store.NoSweep || cfg.readOnly
	st, err := store.Open(path, cfg.store)
	if err != nil {
		return nil, err
	}
	db := New()
	db.st = st
	db.path = path
	db.readOnly = cfg.readOnly
	for _, name := range st.Relations() {
		rs, _ := st.Rel(name)
		sdef := rs.Def()
		def := RelationDef{Name: sdef.Name, Schema: sdef.Schema, Order: sdef.Order, FDs: sdef.FDs, MVDs: sdef.MVDs, Shards: rs.ShardCount()}
		db.rels[def.Name] = newRel(def, rs)
	}
	return db, nil
}

// OpenWith is Open with an explicit buffer-pool capacity in pages
// (0 = store.DefaultPoolPages).
//
// Deprecated: use Open(path, WithPoolPages(poolPages)).
func OpenWith(path string, poolPages int) (*Database, error) {
	return Open(path, WithPoolPages(poolPages))
}

// attach eagerly loads one stored relation into a live maintainer —
// the read-only (Load) path, which materializes everything up front
// into memory mode and never writes back. The disk-backed Open path
// does NOT use it: there, materialization is lazy (Rel.maintainer).
func (db *Database) attach(rs *store.RelStore) error {
	sdef := rs.Def()
	// Materialize by scanning, refusing duplicate records as we go: the
	// store's fast open no longer scans the heap, so this load is where
	// a heap holding the same encoded tuple twice (external damage — a
	// delete would leave a stale ghost copy) gets its fail-stop.
	rel := core.NewRelation(sdef.Schema)
	var dup error
	if err := rs.Scan(func(t tuple.Tuple) bool {
		if !rel.Add(t) {
			dup = fmt.Errorf("%w: duplicate record in %q", store.ErrCorrupt, sdef.Name)
			return false
		}
		return true
	}); err != nil {
		return err
	}
	if dup != nil {
		return dup
	}
	def := RelationDef{Name: sdef.Name, Schema: sdef.Schema, Order: sdef.Order, FDs: sdef.FDs, MVDs: sdef.MVDs, Shards: sdef.Shards}
	m, err := update.FromRelationIndexed(rel, def.Order)
	if err != nil {
		return err
	}
	r := newRel(def, nil)
	r.setMaintainer(m)
	db.rels[def.Name] = r
	return nil
}

// DiskBacked reports whether the database writes through to a paged
// file.
func (db *Database) DiskBacked() bool { return db.st != nil }

// ReadOnly reports whether the database rejects mutations (opened with
// WithReadOnly).
func (db *Database) ReadOnly() bool { return db.readOnly }

func (db *Database) isClosed() bool { return db.closed.Load() }

// Flush writes all dirty buffered pages of a disk-backed database to
// stable storage (a checkpoint). It is a no-op in memory mode and
// fails with ErrReadOnly on a read-only database.
func (db *Database) Flush() error {
	if db.isClosed() {
		return fmt.Errorf("engine: flush: %w", ErrClosed)
	}
	if db.st == nil {
		return nil
	}
	if db.readOnly {
		return fmt.Errorf("engine: flush: %w", ErrReadOnly)
	}
	return db.st.Flush()
}

// Close rolls back every still-open transaction (whose handles then
// return ErrTxDone), checkpoints, and closes the paged file of a
// disk-backed database. Close is idempotent: the second and later
// calls return nil. A read-only database discards instead of
// checkpointing; a memory-mode database just retires its transactions.
func (db *Database) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Wake statements blocked on latches so their transactions become
	// rollback-able instead of wedging Close behind a wait that can
	// never end.
	db.mu.RLock()
	for _, r := range db.rels {
		for _, sh := range r.shards {
			sh.latch.interrupt()
		}
	}
	db.mu.RUnlock()
	db.ddl.interrupt()
	db.txMu.Lock()
	open := make([]*Tx, 0, len(db.openTxs))
	for tx := range db.openTxs {
		open = append(open, tx)
	}
	db.txMu.Unlock()
	for _, tx := range open {
		// ErrTxDone just means the owner finished it first
		if err := tx.Rollback(); err != nil && !errors.Is(err, ErrTxDone) {
			// the rollback of buffered state failed; still close the
			// files below — nothing uncommitted can be on disk
			_ = err
		}
	}
	if db.st == nil {
		return nil
	}
	if db.readOnly {
		return db.st.Discard()
	}
	return db.st.Close()
}

// PoolStats reports the buffer pool's (hits, misses, evictions) for a
// disk-backed database; ok is false in memory mode. The counters cover
// traffic since Open returned — open-time recovery and index-rebuild
// I/O is bucketed separately in OpenIOStats.
func (db *Database) PoolStats() (hits, misses, evictions int, ok bool) {
	if db.st == nil {
		return 0, 0, 0, false
	}
	hits, misses, evictions = db.st.PoolStats()
	return hits, misses, evictions, true
}

// AllPoolStats reports the full buffer-pool counter set (including
// overflow and checksum-repair counts, which the three-int PoolStats
// omits) for a disk-backed database; ok is false in memory mode. The
// server's STATS frame serves this snapshot.
func (db *Database) AllPoolStats() (st storage.PoolStats, ok bool) {
	if db.st == nil {
		return storage.PoolStats{}, false
	}
	return db.st.AllPoolStats(), true
}

// OpenIOStats reports the buffer-pool counters consumed by store.Open
// itself (WAL replay, catalog load, index attach — and, for legacy v2
// files, the one-time index rebuild) for a disk-backed database; ok is
// false in memory mode. On a clean v3 file the bucket is bounded by
// catalog + index metadata, never the heap size.
func (db *Database) OpenIOStats() (st storage.PoolStats, ok bool) {
	if db.st == nil {
		return storage.PoolStats{}, false
	}
	return db.st.OpenIOStats(), true
}

// VerifyIndexes checks every relation's durable hash indexes against a
// fresh heap scan — the rebuild oracle (see store.VerifyIndexes) — on
// a disk-backed database. It performs no writes and is a no-op in
// memory mode.
func (db *Database) VerifyIndexes() error {
	if db.isClosed() {
		return fmt.Errorf("engine: verify indexes: %w", ErrClosed)
	}
	if db.st == nil {
		return nil
	}
	return db.st.VerifyIndexes()
}

// WALStats reports write-ahead-log activity (batches, page images,
// fsyncs, and what open-time recovery replayed) for a disk-backed
// database; ok is false in memory mode.
func (db *Database) WALStats() (st storage.WALStats, ok bool) {
	if db.st == nil {
		return storage.WALStats{}, false
	}
	return db.st.WALStats(), true
}

// autocommit runs one statement as a one-shot transaction: begin,
// apply, commit. A statement refused by wait-die deadlock avoidance
// (ErrTxConflict — only the multi-latch paths like Drop can hit it) is
// retried under its ORIGINAL transaction id, so the retry ages toward
// the front of the wait-die order instead of staying forever-youngest
// (starvation freedom); between attempts the loop first rolls back —
// releasing every latch — and then PARKS on the refused latch until
// its holder finishes, so a conflict against a long-lived transaction
// costs a blocked goroutine, not a busy spin.
func (db *Database) autocommit(fn func(tx *Tx) error) error {
	var id uint64
	for {
		tx, err := db.begin(context.Background(), id)
		if err != nil {
			return err
		}
		id = tx.id
		opErr := fn(tx)
		if opErr != nil && errors.Is(opErr, ErrTxConflict) {
			tx.Rollback()
			var ce *conflictError
			if errors.As(opErr, &ce) {
				ce.l.awaitFree(db)
			}
			continue
		}
		// Commit even after a failed statement: the statement's repair
		// (syncAfterWrite) left the transaction consistent at the
		// pre-statement state, and committing it is what makes the
		// repair durable as one atomic batch. A no-op transaction's
		// commit costs nothing.
		if cerr := tx.Commit(); cerr != nil && opErr == nil {
			opErr = cerr
		}
		return opErr
	}
}

// ReadRelation returns a snapshot of the named relation for query
// evaluation. A disk-backed database pins an MVCC snapshot — the last
// published commit — and materializes the relation from it WITHOUT
// taking the relation's statement latch: an open transaction holding
// the latch (even one stalled mid-statement for seconds) never blocks
// the read, and the result is always a whole-transaction boundary
// (see docs/mvcc.md). An in-memory database clones the live canonical
// relation under the latch. Either way the caller owns the copy. ctx
// cancels the heap walk at page granularity (nil = background).
func (db *Database) ReadRelation(ctx context.Context, name string) (*core.Relation, error) {
	if db.st != nil {
		if db.isClosed() {
			return nil, fmt.Errorf("engine: read: %w", ErrClosed)
		}
		if ctx == nil {
			ctx = context.Background()
		}
		snap := db.st.PinSnapshot()
		defer snap.Close()
		if !snap.Has(name) {
			return nil, errNotFound(name)
		}
		rel, err := snap.LoadCtx(ctx, name)
		if err != nil {
			return nil, err
		}
		// a K-sharded heap stores K shard-canonical partitions; merge
		// them back into the global canonical form
		if def, _ := snap.Def(name); def.Shards > 1 {
			rel, _ = rel.CanonicalFromFlats(def.Order)
		}
		return rel, nil
	}
	var rel *core.Relation
	err := db.autocommit(func(tx *Tx) error {
		var err error
		rel, err = tx.ReadRelation(ctx, name)
		return err
	})
	return rel, err
}

// LatchWaits reports how many statement-latch acquisitions blocked on a
// concurrent statement, summed over all relations and their shards —
// the contention metric of the concurrent bench leg.
func (db *Database) LatchWaits() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n int64
	for _, r := range db.rels {
		for _, sh := range r.shards {
			n += sh.latch.waits.Load()
		}
	}
	return n
}

// RelPipelineStats reports one relation's write-pipeline and shard
// contention counters (see Database.PipelineStats).
type RelPipelineStats struct {
	Shards     int   // heap chains the relation is partitioned across
	Batches    int64 // pipeline batches applied (each ≤ 1 fsync)
	Ops        int64 // autocommit statements that rode a pipeline batch
	MaxBatch   int64 // largest batch applied on any shard
	QueuePeak  int64 // high-water pipeline queue depth on any shard
	LatchWaits int64 // contended shard-latch acquisitions
}

// PipelineStats reports, per relation, how the write pipeline batched
// concurrent autocommit statements and how contended the shard latches
// were — the \stats surface of the same-relation scaling bench.
func (db *Database) PipelineStats() map[string]RelPipelineStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]RelPipelineStats, len(db.rels))
	for name, r := range db.rels {
		st := RelPipelineStats{Shards: len(r.shards)}
		for _, sh := range r.shards {
			st.Batches += sh.pipe.batches.Load()
			st.Ops += sh.pipe.ops.Load()
			if m := sh.pipe.maxBatch.Load(); m > st.MaxBatch {
				st.MaxBatch = m
			}
			if p := sh.pipe.peak.Load(); p > st.QueuePeak {
				st.QueuePeak = p
			}
			st.LatchWaits += sh.latch.waits.Load()
		}
		out[name] = st
	}
	return out
}

// normalizeDef validates a relation definition, fills in the suggested
// nest order, and builds the canonical-form maintainer.
func normalizeDef(def RelationDef) (RelationDef, *update.Maintainer, error) {
	if def.Name == "" {
		return def, nil, fmt.Errorf("engine: relation name empty")
	}
	if def.Schema == nil || def.Schema.Degree() == 0 {
		return def, nil, fmt.Errorf("engine: relation %q needs a non-empty schema", def.Name)
	}
	for _, f := range def.FDs {
		for _, a := range append(f.Lhs.Sorted(), f.Rhs.Sorted()...) {
			if !def.Schema.Has(a) {
				return def, nil, fmt.Errorf("engine: FD %v references unknown attribute %q", f, a)
			}
		}
	}
	for _, m := range def.MVDs {
		for _, a := range append(m.Lhs.Sorted(), m.Rhs.Sorted()...) {
			if !def.Schema.Has(a) {
				return def, nil, fmt.Errorf("engine: MVD %v references unknown attribute %q", m, a)
			}
		}
	}
	if def.Order == nil {
		def.Order = SuggestOrder(def.Schema, def.FDs, def.MVDs)
	}
	if !def.Order.Valid(def.Schema) {
		return def, nil, fmt.Errorf("engine: invalid nest order %v for %q", def.Order, def.Name)
	}
	// mirror the store's catalog bound so a bad shard count fails here,
	// before any catalog write, in memory mode too
	if def.Shards < 0 || def.Shards > 64 {
		return def, nil, fmt.Errorf("engine: relation %q shard count %d out of range [0,64]", def.Name, def.Shards)
	}
	m, err := update.NewMaintainerIndexed(def.Schema, def.Order)
	if err != nil {
		return def, nil, err
	}
	return def, m, nil
}

// Create registers a new empty relation (autocommit).
func (db *Database) Create(def RelationDef) error {
	return db.autocommit(func(tx *Tx) error { return tx.Create(def) })
}

// Drop removes a relation (autocommit). In disk mode the catalog record
// is deleted and the heap chain's pages go to the free list, all
// committed as one WAL batch. The relation's statement latch is taken
// for the duration, so a statement in flight on the same relation
// finishes first and a statement that was waiting observes the drop
// instead of writing into freed pages.
func (db *Database) Drop(name string) error {
	return db.autocommit(func(tx *Tx) error { return tx.Drop(name) })
}

// Rel looks up a live relation.
func (db *Database) Rel(name string) (*Rel, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	if !ok {
		return nil, errNotFound(name)
	}
	return r, nil
}

// Def returns the named relation's definition.
func (db *Database) Def(name string) (RelationDef, error) {
	r, err := db.Rel(name)
	if err != nil {
		return RelationDef{}, err
	}
	return r.def, nil
}

// Names returns the catalog's relation names, sorted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert adds a flat tuple to the named relation, maintaining the
// canonical form. It is an autocommit statement that rides the
// relation's write pipeline: concurrent Inserts and Deletes on one
// shard batch into a single group-applied transaction (one fsync for
// the whole batch — see pipeline). It reports whether the relation
// changed.
func (db *Database) Insert(name string, f tuple.Flat) (bool, error) {
	return db.writePipelined(name, f, true)
}

// Delete removes a flat tuple from the named relation (autocommit,
// pipelined like Insert).
func (db *Database) Delete(name string, f tuple.Flat) (bool, error) {
	return db.writePipelined(name, f, false)
}

// InsertMany bulk-inserts flat tuples, each as its own autocommit
// statement, returning how many changed the relation. Use Tx.InsertMany
// to batch them under one commit instead.
func (db *Database) InsertMany(name string, fs []tuple.Flat) (int, error) {
	n := 0
	for _, f := range fs {
		ch, err := db.Insert(name, f)
		if err != nil {
			return n, err
		}
		if ch {
			n++
		}
	}
	return n, nil
}

func (db *Database) typeCheck(r *Rel, f tuple.Flat) error {
	s := r.def.Schema
	if len(f) != s.Degree() {
		return fmt.Errorf("engine: tuple degree %d != schema degree %d: %w", len(f), s.Degree(), ErrTypeMismatch)
	}
	for i, a := range f {
		want := s.Attr(i).Kind
		if want != 0 && a.K != want {
			return fmt.Errorf("engine: attribute %s expects %v, got %v: %w", s.Attr(i).Name, want, a.K, ErrTypeMismatch)
		}
	}
	return nil
}

// Violation describes a dependency violated by the current data.
type Violation struct {
	Relation string
	Dep      string // String() of the FD or MVD
}

// ValidateDeps checks every declared FD and MVD of the named relation
// against its current expansion R*, under the relation's latch (so a
// concurrent transaction's in-flight maintainer mutations are never
// observed mid-statement).
func (db *Database) ValidateDeps(name string) ([]Violation, error) {
	var out []Violation
	err := db.autocommit(func(tx *Tx) error {
		var err error
		out, err = tx.ValidateDeps(name)
		return err
	})
	return out, err
}

// validateOf checks r's declared dependencies against the materialized
// canonical form rel; the caller holds every shard latch.
func validateOf(name string, r *Rel, rel *core.Relation) []Violation {
	flats := rel.Expand()
	var out []Violation
	for _, f := range r.def.FDs {
		if !dep.SatisfiesFD(r.def.Schema, flats, f) {
			out = append(out, Violation{Relation: name, Dep: f.String()})
		}
	}
	for _, m := range r.def.MVDs {
		if !dep.SatisfiesMVD(r.def.Schema, flats, m) {
			out = append(out, Violation{Relation: name, Dep: m.String()})
		}
	}
	return out
}

// RelStats summarizes a relation's physical and logical size — the
// quantities behind the paper's tuple-count-reduction argument.
type RelStats struct {
	Name        string
	NFRTuples   int
	FlatTuples  int
	Compression float64 // FlatTuples / NFRTuples (≥ 1)
	FixedOn     []string
	Ops         update.Stats
	IndexPages  *store.IndexPageCounts // nil for memory-mode relations
}

// Stats reports size and maintenance statistics for the named
// relation, under the relation's latch (committed-boundary reads).
func (db *Database) Stats(name string) (RelStats, error) {
	var st RelStats
	err := db.autocommit(func(tx *Tx) error {
		var err error
		st, err = tx.Stats(name)
		return err
	})
	return st, err
}

// statsOf computes the statistics of the materialized canonical form
// rel; the caller holds every shard latch. ops is the summed
// maintenance counters of the relation's shard maintainers.
func statsOf(name string, rel *core.Relation, ops update.Stats) RelStats {
	st := RelStats{
		Name:       name,
		NFRTuples:  rel.Len(),
		FlatTuples: rel.ExpansionSize(),
		FixedOn:    rel.FixedDomains(),
		Ops:        ops,
	}
	if st.NFRTuples > 0 {
		st.Compression = float64(st.FlatTuples) / float64(st.NFRTuples)
	}
	return st
}
