// Package engine is the database layer: a catalog of named NFRs, each
// declared with a schema, optional FDs/MVDs, and a nest order, kept
// permanently in canonical form V_P by the Section-4 update algorithms.
//
// The nest order defaults to SuggestOrder, which encodes Section 3.4's
// guidance: nest the dependent (right-side) attributes first so the
// canonical form ends up fixed on the determinant (left-side)
// attributes — the NFR analogue of a key.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/update"
)

// RelationDef declares a relation: its schema, dependencies, and the
// nest order of its canonical form.
type RelationDef struct {
	Name   string
	Schema *schema.Schema
	// Order is the nest order (Order[0] nested first). When nil,
	// SuggestOrder picks one from the dependencies.
	Order schema.Permutation
	FDs   []dep.FD
	MVDs  []dep.MVD
}

// SuggestOrder derives a nest order from the declared dependencies:
// attributes that appear only on right sides are nested first, left
// side (determinant) attributes last, preserving schema order within
// each class. With no dependencies it returns the identity.
func SuggestOrder(s *schema.Schema, fds []dep.FD, mvds []dep.MVD) schema.Permutation {
	lhs := schema.NewAttrSet()
	for _, f := range fds {
		lhs = lhs.Union(f.Lhs)
	}
	for _, m := range mvds {
		lhs = lhs.Union(m.Lhs)
	}
	var first, last []int
	for i := 0; i < s.Degree(); i++ {
		if lhs.Has(s.Attr(i).Name) {
			last = append(last, i)
		} else {
			first = append(first, i)
		}
	}
	return schema.Permutation(append(first, last...))
}

// Rel is one live relation: its definition plus the canonical-form
// maintainer.
type Rel struct {
	def RelationDef
	m   *update.Maintainer
}

// Def returns the relation's definition.
func (r *Rel) Def() RelationDef { return r.def }

// Relation returns the current canonical NFR (not a copy; treat as
// read-only).
func (r *Rel) Relation() *core.Relation { return r.m.Relation() }

// Stats returns the maintainer's accumulated operation counts.
func (r *Rel) Stats() update.Stats { return r.m.Stats() }

// ResetStats zeroes the operation counters.
func (r *Rel) ResetStats() { r.m.ResetStats() }

// Database is a catalog of live relations. Methods are safe for
// concurrent use; each relation serializes its own updates.
type Database struct {
	mu   sync.RWMutex
	rels map[string]*Rel
}

// New creates an empty database.
func New() *Database {
	return &Database{rels: make(map[string]*Rel)}
}

// Create registers a new empty relation.
func (db *Database) Create(def RelationDef) error {
	if def.Name == "" {
		return fmt.Errorf("engine: relation name empty")
	}
	if def.Schema == nil || def.Schema.Degree() == 0 {
		return fmt.Errorf("engine: relation %q needs a non-empty schema", def.Name)
	}
	for _, f := range def.FDs {
		for _, a := range append(f.Lhs.Sorted(), f.Rhs.Sorted()...) {
			if !def.Schema.Has(a) {
				return fmt.Errorf("engine: FD %v references unknown attribute %q", f, a)
			}
		}
	}
	for _, m := range def.MVDs {
		for _, a := range append(m.Lhs.Sorted(), m.Rhs.Sorted()...) {
			if !def.Schema.Has(a) {
				return fmt.Errorf("engine: MVD %v references unknown attribute %q", m, a)
			}
		}
	}
	if def.Order == nil {
		def.Order = SuggestOrder(def.Schema, def.FDs, def.MVDs)
	}
	if !def.Order.Valid(def.Schema) {
		return fmt.Errorf("engine: invalid nest order %v for %q", def.Order, def.Name)
	}
	m, err := update.NewMaintainerIndexed(def.Schema, def.Order)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.rels[def.Name]; dup {
		return fmt.Errorf("engine: relation %q already exists", def.Name)
	}
	db.rels[def.Name] = &Rel{def: def, m: m}
	return nil
}

// Drop removes a relation.
func (db *Database) Drop(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.rels[name]; !ok {
		return fmt.Errorf("engine: unknown relation %q", name)
	}
	delete(db.rels, name)
	return nil
}

// Rel looks up a live relation.
func (db *Database) Rel(name string) (*Rel, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown relation %q", name)
	}
	return r, nil
}

// Names returns the catalog's relation names, sorted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert adds a flat tuple to the named relation, maintaining the
// canonical form. It reports whether the relation changed.
func (db *Database) Insert(name string, f tuple.Flat) (bool, error) {
	r, err := db.Rel(name)
	if err != nil {
		return false, err
	}
	if err := db.typeCheck(r, f); err != nil {
		return false, err
	}
	return r.m.Insert(f)
}

// Delete removes a flat tuple from the named relation.
func (db *Database) Delete(name string, f tuple.Flat) (bool, error) {
	r, err := db.Rel(name)
	if err != nil {
		return false, err
	}
	return r.m.Delete(f)
}

// InsertMany bulk-inserts flat tuples, returning how many changed the
// relation.
func (db *Database) InsertMany(name string, fs []tuple.Flat) (int, error) {
	n := 0
	for _, f := range fs {
		ch, err := db.Insert(name, f)
		if err != nil {
			return n, err
		}
		if ch {
			n++
		}
	}
	return n, nil
}

func (db *Database) typeCheck(r *Rel, f tuple.Flat) error {
	s := r.def.Schema
	if len(f) != s.Degree() {
		return fmt.Errorf("engine: tuple degree %d != schema degree %d", len(f), s.Degree())
	}
	for i, a := range f {
		want := s.Attr(i).Kind
		if want != 0 && a.K != want {
			return fmt.Errorf("engine: attribute %s expects %v, got %v", s.Attr(i).Name, want, a.K)
		}
	}
	return nil
}

// Violation describes a dependency violated by the current data.
type Violation struct {
	Relation string
	Dep      string // String() of the FD or MVD
}

// ValidateDeps checks every declared FD and MVD of the named relation
// against its current expansion R*.
func (db *Database) ValidateDeps(name string) ([]Violation, error) {
	r, err := db.Rel(name)
	if err != nil {
		return nil, err
	}
	flats := r.m.Relation().Expand()
	var out []Violation
	for _, f := range r.def.FDs {
		if !dep.SatisfiesFD(r.def.Schema, flats, f) {
			out = append(out, Violation{Relation: name, Dep: f.String()})
		}
	}
	for _, m := range r.def.MVDs {
		if !dep.SatisfiesMVD(r.def.Schema, flats, m) {
			out = append(out, Violation{Relation: name, Dep: m.String()})
		}
	}
	return out, nil
}

// RelStats summarizes a relation's physical and logical size — the
// quantities behind the paper's tuple-count-reduction argument.
type RelStats struct {
	Name        string
	NFRTuples   int
	FlatTuples  int
	Compression float64 // FlatTuples / NFRTuples (≥ 1)
	FixedOn     []string
	Ops         update.Stats
}

// Stats reports size and maintenance statistics for the named relation.
func (db *Database) Stats(name string) (RelStats, error) {
	r, err := db.Rel(name)
	if err != nil {
		return RelStats{}, err
	}
	rel := r.m.Relation()
	st := RelStats{
		Name:       name,
		NFRTuples:  rel.Len(),
		FlatTuples: rel.ExpansionSize(),
		FixedOn:    rel.FixedDomains(),
		Ops:        r.m.Stats(),
	}
	if st.NFRTuples > 0 {
		st.Compression = float64(st.FlatTuples) / float64(st.NFRTuples)
	}
	return st, nil
}
