// Package engine is the database layer: a catalog of named NFRs, each
// declared with a schema, optional FDs/MVDs, and a nest order, kept
// permanently in canonical form V_P by the Section-4 update algorithms.
//
// The nest order defaults to SuggestOrder, which encodes Section 3.4's
// guidance: nest the dependent (right-side) attributes first so the
// canonical form ends up fixed on the determinant (left-side)
// attributes — the NFR analogue of a key.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/tuple"
	"repro/internal/update"
)

// RelationDef declares a relation: its schema, dependencies, and the
// nest order of its canonical form.
type RelationDef struct {
	Name   string
	Schema *schema.Schema
	// Order is the nest order (Order[0] nested first). When nil,
	// SuggestOrder picks one from the dependencies.
	Order schema.Permutation
	FDs   []dep.FD
	MVDs  []dep.MVD
}

// SuggestOrder derives a nest order from the declared dependencies:
// attributes that appear only on right sides are nested first, left
// side (determinant) attributes last, preserving schema order within
// each class. With no dependencies it returns the identity.
func SuggestOrder(s *schema.Schema, fds []dep.FD, mvds []dep.MVD) schema.Permutation {
	lhs := schema.NewAttrSet()
	for _, f := range fds {
		lhs = lhs.Union(f.Lhs)
	}
	for _, m := range mvds {
		lhs = lhs.Union(m.Lhs)
	}
	var first, last []int
	for i := 0; i < s.Degree(); i++ {
		if lhs.Has(s.Attr(i).Name) {
			last = append(last, i)
		} else {
			first = append(first, i)
		}
	}
	return schema.Permutation(append(first, last...))
}

// Rel is one live relation: its definition plus the canonical-form
// maintainer, and — when the database is disk-backed — the paged store
// the maintainer writes through to.
type Rel struct {
	def RelationDef
	m   *update.Maintainer
	rs  *store.RelStore // nil for in-memory databases

	// latch serializes statements on THIS relation (the maintainer and
	// its write-through are single-writer); statements on different
	// relations run and commit in parallel, their WAL batches merged by
	// the store's group-commit scheduler. In disk mode the latch is
	// held through the commit, so readers taking it observe only
	// committed statement boundaries. Drop takes it too, and sets
	// dropped (read under the latch) so a statement that was already
	// waiting fails cleanly instead of writing into freed pages.
	// latchWaits counts contended acquisitions — the bench's
	// latch-contention metric.
	latch      sync.Mutex
	dropped    bool
	latchWaits atomic.Int64
}

// lock acquires the relation's statement latch, counting contention.
func (r *Rel) lock() {
	if r.latch.TryLock() {
		return
	}
	r.latchWaits.Add(1)
	r.latch.Lock()
}

func (r *Rel) unlock() { r.latch.Unlock() }

// Def returns the relation's definition.
func (r *Rel) Def() RelationDef { return r.def }

// Relation returns the current canonical NFR (not a copy; treat as
// read-only).
func (r *Rel) Relation() *core.Relation { return r.m.Relation() }

// Stats returns the maintainer's accumulated operation counts.
func (r *Rel) Stats() update.Stats { return r.m.Stats() }

// ResetStats zeroes the operation counters.
func (r *Rel) ResetStats() { r.m.ResetStats() }

// Database is a catalog of live relations. Methods are safe for
// concurrent use; each relation serializes its own statements behind a
// per-relation latch, and — in disk mode — statements on different
// relations commit concurrently as separate transactions whose WAL
// batches the store merges into shared fsyncs (there is no global
// statement lock).
//
// A Database runs in one of two modes: purely in-memory (New), or
// disk-backed (Open), where every relation is realized as a heap chain
// in a single paged file and each canonical-form mutation is written
// through as it happens.
type Database struct {
	mu   sync.RWMutex
	rels map[string]*Rel
	st   *store.Store // nil = purely in-memory
	path string       // paged file path when disk-backed
}

// New creates an empty in-memory database.
func New() *Database {
	return &Database{rels: make(map[string]*Rel)}
}

// Open opens (or creates) a disk-backed database in the single paged
// file at path, with the default buffer-pool size.
func Open(path string) (*Database, error) { return OpenWith(path, 0) }

// OpenWith is Open with an explicit buffer-pool capacity in pages
// (0 = store.DefaultPoolPages). Every relation found in the file is
// loaded by scanning its heap through the buffer pool; the maintainers
// then write all further mutations through to the store.
func OpenWith(path string, poolPages int) (*Database, error) {
	st, err := store.Open(path, store.Options{PoolPages: poolPages})
	if err != nil {
		return nil, err
	}
	db := &Database{rels: make(map[string]*Rel), st: st, path: path}
	// one transaction covers any drift resync the attach loop performs
	txn := st.Begin()
	for _, name := range st.Relations() {
		rs, _ := st.Rel(name)
		if err := db.attach(rs, txn); err != nil {
			// discard, don't flush: a failed Open must not mutate the
			// file (an earlier relation's drift resync may have dirtied
			// pages)
			st.Discard()
			return nil, err
		}
	}
	// commit the resync transaction (a no-op — zero fsyncs — when, as
	// always through this engine, nothing drifted)
	if err := st.Commit(txn); err != nil {
		st.Discard()
		return nil, err
	}
	return db, nil
}

// attach loads one stored relation into a live maintainer; live
// attachments (Open, txn non-nil) additionally connect the
// write-through sink and resync the heap under txn if the stored form
// drifted from canonical, while read-only attachments (Load, txn nil)
// leave the file untouched.
func (db *Database) attach(rs *store.RelStore, txn *store.Txn) error {
	sdef := rs.Def()
	rel, err := rs.Load()
	if err != nil {
		return err
	}
	def := RelationDef{Name: sdef.Name, Schema: sdef.Schema, Order: sdef.Order, FDs: sdef.FDs, MVDs: sdef.MVDs}
	m, err := update.FromRelationIndexed(rel, def.Order)
	if err != nil {
		return err
	}
	r := &Rel{def: def, m: m}
	if txn != nil {
		// FromRelationIndexed re-canonicalizes; if the stored form had
		// drifted from V_P (it never does through this engine, but the
		// file format does not forbid it), resync the heap to the
		// canonical form so write-through deletes always find their
		// victim records.
		if !m.Relation().Equal(rel) {
			if err := rs.Replace(txn, m.Relation()); err != nil {
				return err
			}
		}
		m.SetSink(rs)
		r.rs = rs
	}
	db.rels[def.Name] = r
	return nil
}

// DiskBacked reports whether the database writes through to a paged
// file.
func (db *Database) DiskBacked() bool { return db.st != nil }

// Flush writes all dirty buffered pages of a disk-backed database to
// stable storage. It is a no-op in memory mode.
func (db *Database) Flush() error {
	if db.st == nil {
		return nil
	}
	return db.st.Flush()
}

// Close flushes and closes the paged file of a disk-backed database.
// It is a no-op in memory mode.
func (db *Database) Close() error {
	if db.st == nil {
		return nil
	}
	return db.st.Close()
}

// PoolStats reports the buffer pool's (hits, misses, evictions) for a
// disk-backed database; ok is false in memory mode. The counters cover
// traffic since Open returned — open-time recovery and index-rebuild
// I/O is bucketed separately in OpenIOStats.
func (db *Database) PoolStats() (hits, misses, evictions int, ok bool) {
	if db.st == nil {
		return 0, 0, 0, false
	}
	hits, misses, evictions = db.st.PoolStats()
	return hits, misses, evictions, true
}

// OpenIOStats reports the buffer-pool counters consumed by Open itself
// (WAL replay, catalog load, hash-index rebuild) for a disk-backed
// database; ok is false in memory mode.
func (db *Database) OpenIOStats() (st storage.PoolStats, ok bool) {
	if db.st == nil {
		return storage.PoolStats{}, false
	}
	return db.st.OpenIOStats(), true
}

// WALStats reports write-ahead-log activity (batches, page images,
// fsyncs, and what open-time recovery replayed) for a disk-backed
// database; ok is false in memory mode.
func (db *Database) WALStats() (st storage.WALStats, ok bool) {
	if db.st == nil {
		return storage.WALStats{}, false
	}
	return db.st.WALStats(), true
}

// ReadRelation returns the named relation for query evaluation. A
// disk-backed database materializes it by scanning the relation's heap
// chain through the buffer pool (the paper's realization view), taking
// the relation's statement latch so the snapshot is always a committed
// statement boundary, never a half-applied statement; an in-memory
// database returns the live canonical relation directly.
func (db *Database) ReadRelation(name string) (*core.Relation, error) {
	r, err := db.Rel(name)
	if err != nil {
		return nil, err
	}
	if r.rs != nil {
		r.lock()
		defer r.unlock()
		if r.dropped {
			return nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		return r.rs.Load()
	}
	return r.m.Relation(), nil
}

// LatchWaits reports how many statement-latch acquisitions blocked on a
// concurrent statement, summed over all relations — the contention
// metric of the concurrent bench leg.
func (db *Database) LatchWaits() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n int64
	for _, r := range db.rels {
		n += r.latchWaits.Load()
	}
	return n
}

// Create registers a new empty relation.
func (db *Database) Create(def RelationDef) error {
	if def.Name == "" {
		return fmt.Errorf("engine: relation name empty")
	}
	if def.Schema == nil || def.Schema.Degree() == 0 {
		return fmt.Errorf("engine: relation %q needs a non-empty schema", def.Name)
	}
	for _, f := range def.FDs {
		for _, a := range append(f.Lhs.Sorted(), f.Rhs.Sorted()...) {
			if !def.Schema.Has(a) {
				return fmt.Errorf("engine: FD %v references unknown attribute %q", f, a)
			}
		}
	}
	for _, m := range def.MVDs {
		for _, a := range append(m.Lhs.Sorted(), m.Rhs.Sorted()...) {
			if !def.Schema.Has(a) {
				return fmt.Errorf("engine: MVD %v references unknown attribute %q", m, a)
			}
		}
	}
	if def.Order == nil {
		def.Order = SuggestOrder(def.Schema, def.FDs, def.MVDs)
	}
	if !def.Order.Valid(def.Schema) {
		return fmt.Errorf("engine: invalid nest order %v for %q", def.Order, def.Name)
	}
	m, err := update.NewMaintainerIndexed(def.Schema, def.Order)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.rels[def.Name]; dup {
		return fmt.Errorf("engine: relation %q already exists", def.Name)
	}
	r := &Rel{def: def, m: m}
	if db.st != nil {
		txn := db.st.Begin()
		rs, err := db.st.CreateRelation(txn, store.RelationDef{
			Name: def.Name, Schema: def.Schema, Order: def.Order,
			FDs: def.FDs, MVDs: def.MVDs,
		})
		if err != nil {
			return err
		}
		if err := db.st.Commit(txn); err != nil {
			// roll the uncommitted create back out of the store —
			// frames dropped, page ownership released, catalog entry
			// forgotten — so the catalog and this database never
			// diverge and the failed transaction cannot wedge the
			// catalog page
			db.st.AbortCreate(txn, def.Name)
			return fmt.Errorf("engine: create %q: commit failed: %w", def.Name, err)
		}
		m.SetSink(rs)
		r.rs = rs
	}
	db.rels[def.Name] = r
	return nil
}

// Drop removes a relation. In disk mode the catalog record is deleted
// and the heap chain's pages go to the free list, all committed as one
// WAL batch. The relation's statement latch is taken for the duration,
// so a statement in flight on the same relation finishes first and a
// statement that was waiting observes the drop instead of writing into
// freed pages.
func (db *Database) Drop(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.rels[name]
	if !ok {
		return fmt.Errorf("engine: unknown relation %q", name)
	}
	r.lock()
	defer r.unlock()
	if db.st != nil {
		txn := db.st.Begin()
		if err := db.st.DropRelation(txn, name); err != nil {
			// the store only fails before mutating anything (see
			// store.DropRelation), so the relation is still fully intact
			return err
		}
		if err := db.st.Commit(txn); err != nil {
			// unwind: the store's in-memory entry was never removed and
			// Rollback discards the uncommitted catalog/free-list
			// mutations, so the relation stays fully usable
			db.st.Rollback(txn)
			return fmt.Errorf("engine: drop %q: commit failed: %w", name, err)
		}
		db.st.CompleteDrop(name)
	}
	r.dropped = true
	delete(db.rels, name)
	return nil
}

// Rel looks up a live relation.
func (db *Database) Rel(name string) (*Rel, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown relation %q", name)
	}
	return r, nil
}

// Names returns the catalog's relation names, sorted.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert adds a flat tuple to the named relation, maintaining the
// canonical form. It reports whether the relation changed. The
// relation's statement latch is held through the statement and (in
// disk mode) its commit; statements on other relations proceed in
// parallel.
func (db *Database) Insert(name string, f tuple.Flat) (bool, error) {
	r, err := db.Rel(name)
	if err != nil {
		return false, err
	}
	if err := db.typeCheck(r, f); err != nil {
		return false, err
	}
	r.lock()
	defer r.unlock()
	if r.dropped {
		return false, fmt.Errorf("engine: unknown relation %q", name)
	}
	ch, err := r.m.Insert(f)
	if err != nil {
		return ch, err
	}
	if err := r.syncAfterWrite(ch, f, true); err != nil {
		return false, err
	}
	return ch, nil
}

// Delete removes a flat tuple from the named relation.
func (db *Database) Delete(name string, f tuple.Flat) (bool, error) {
	r, err := db.Rel(name)
	if err != nil {
		return false, err
	}
	r.lock()
	defer r.unlock()
	if r.dropped {
		return false, fmt.Errorf("engine: unknown relation %q", name)
	}
	ch, err := r.m.Delete(f)
	if err != nil {
		return ch, err
	}
	if err := r.syncAfterWrite(ch, f, false); err != nil {
		return false, err
	}
	return ch, nil
}

// syncAfterWrite surfaces a write-through failure latched by the
// relation's store sink (always nil in memory mode) without leaving
// memory and disk divergent: the in-memory mutation is rolled back
// (the Section-4 algorithms are exact inverses on R*, and the
// canonical form is unique, so memory returns to its pre-operation
// state), the heap is rewritten from the canonical form, and the
// original failure is returned. A record that can never fit a page
// (an over-grown tuple) therefore rejects that one update instead of
// poisoning the relation.
func (r *Rel) syncAfterWrite(changed bool, f tuple.Flat, wasInsert bool) error {
	if r.rs == nil {
		return nil
	}
	err := r.rs.Err()
	if err == nil {
		return nil
	}
	if changed {
		if wasInsert {
			r.m.Delete(f)
		} else {
			r.m.Insert(f)
		}
	}
	// Repair within the SAME statement transaction the failure left
	// open (StatementEnd skips the commit of a failed statement), so
	// the half-applied pages and their repair commit as one atomic
	// batch — a crash anywhere recovers the pre-statement state.
	r.rs.StatementBegin() // reuses the failed statement's open transaction
	txn := r.rs.StatementTxn()
	if rerr := r.rs.Replace(txn, r.m.Relation()); rerr != nil {
		return fmt.Errorf("engine: write-through failed (%v) and heap resync failed: %w", err, rerr)
	}
	r.rs.ResetErr()
	if cerr := r.rs.CommitStatement(); cerr != nil {
		return fmt.Errorf("engine: write-through failed (%v) and commit of the resynced heap failed: %w", err, cerr)
	}
	return fmt.Errorf("engine: write-through to store failed (update rolled back): %w", err)
}

// InsertMany bulk-inserts flat tuples, returning how many changed the
// relation.
func (db *Database) InsertMany(name string, fs []tuple.Flat) (int, error) {
	n := 0
	for _, f := range fs {
		ch, err := db.Insert(name, f)
		if err != nil {
			return n, err
		}
		if ch {
			n++
		}
	}
	return n, nil
}

func (db *Database) typeCheck(r *Rel, f tuple.Flat) error {
	s := r.def.Schema
	if len(f) != s.Degree() {
		return fmt.Errorf("engine: tuple degree %d != schema degree %d", len(f), s.Degree())
	}
	for i, a := range f {
		want := s.Attr(i).Kind
		if want != 0 && a.K != want {
			return fmt.Errorf("engine: attribute %s expects %v, got %v", s.Attr(i).Name, want, a.K)
		}
	}
	return nil
}

// Violation describes a dependency violated by the current data.
type Violation struct {
	Relation string
	Dep      string // String() of the FD or MVD
}

// ValidateDeps checks every declared FD and MVD of the named relation
// against its current expansion R*.
func (db *Database) ValidateDeps(name string) ([]Violation, error) {
	r, err := db.Rel(name)
	if err != nil {
		return nil, err
	}
	flats := r.m.Relation().Expand()
	var out []Violation
	for _, f := range r.def.FDs {
		if !dep.SatisfiesFD(r.def.Schema, flats, f) {
			out = append(out, Violation{Relation: name, Dep: f.String()})
		}
	}
	for _, m := range r.def.MVDs {
		if !dep.SatisfiesMVD(r.def.Schema, flats, m) {
			out = append(out, Violation{Relation: name, Dep: m.String()})
		}
	}
	return out, nil
}

// RelStats summarizes a relation's physical and logical size — the
// quantities behind the paper's tuple-count-reduction argument.
type RelStats struct {
	Name        string
	NFRTuples   int
	FlatTuples  int
	Compression float64 // FlatTuples / NFRTuples (≥ 1)
	FixedOn     []string
	Ops         update.Stats
}

// Stats reports size and maintenance statistics for the named relation.
func (db *Database) Stats(name string) (RelStats, error) {
	r, err := db.Rel(name)
	if err != nil {
		return RelStats{}, err
	}
	rel := r.m.Relation()
	st := RelStats{
		Name:       name,
		NFRTuples:  rel.Len(),
		FlatTuples: rel.ExpansionSize(),
		FixedOn:    rel.FixedDomains(),
		Ops:        r.m.Stats(),
	}
	if st.NFRTuples > 0 {
		st.Compression = float64(st.FlatTuples) / float64(st.NFRTuples)
	}
	return st, nil
}
