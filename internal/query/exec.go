package query

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/vset"
)

// Result is the outcome of executing one statement: either a relation
// (query statements) or a status message (DDL/DML statements).
type Result struct {
	Relation *core.Relation
	Message  string
}

// String renders the result for a console.
func (r Result) String() string {
	if r.Relation != nil {
		return RenderTable(r.Relation)
	}
	return r.Message
}

// Execer is the statement target the executor runs DDL/DML/query
// statements against. Both *engine.Database (every statement
// autocommits) and *engine.Tx (statements pool under the transaction
// until Commit) implement it. The read methods inherit each target's
// concurrency contract: through a Database, ReadRelation serves a
// latch-free MVCC snapshot of the last committed state (docs/mvcc.md),
// so queries outside a transaction never wait on writers; through a
// Tx, reads stay on the latched path and see the transaction's own
// uncommitted statements.
type Execer interface {
	Create(def engine.RelationDef) error
	Drop(name string) error
	Insert(name string, f tuple.Flat) (bool, error)
	Delete(name string, f tuple.Flat) (bool, error)
	ReadRelation(ctx context.Context, name string) (*core.Relation, error)
	Def(name string) (engine.RelationDef, error)
	Stats(name string) (engine.RelStats, error)
	ValidateDeps(name string) ([]engine.Violation, error)
	// Index access paths (see internal/query/plan.go). IndexInfo never
	// fails on an existing relation; the fetch methods fail on targets
	// without the corresponding index, which the planner rules out.
	IndexInfo(name string) (engine.IndexInfo, error)
	LookupFixed(name string, a value.Atom) (*core.Relation, error)
	ScanFixedRange(name string, lo, hi *engine.Bound) (*core.Relation, int, error)
}

var (
	_ Execer = (*engine.Database)(nil)
	_ Execer = (*engine.Tx)(nil)
)

// Session executes statements against a database. BEGIN opens a
// transaction on the session: every following statement — including
// STATS and VALIDATE — runs inside it and sees its uncommitted writes,
// until COMMIT makes them durable as one group-committed batch or
// ROLLBACK discards them.
type Session struct {
	DB *engine.Database
	tx *engine.Tx
}

// NewSession creates a session over a fresh in-memory database.
func NewSession() *Session { return &Session{DB: engine.New()} }

// NewSessionOn creates a session over an existing database (for
// example one opened disk-backed with engine.Open).
func NewSessionOn(db *engine.Database) *Session { return &Session{DB: db} }

// InTx reports whether the session has an open transaction.
func (s *Session) InTx() bool { return s.tx != nil }

// Close rolls back the session's open transaction, if any.
func (s *Session) Close() error {
	if s.tx == nil {
		return nil
	}
	tx := s.tx
	s.tx = nil
	return tx.Rollback()
}

// target is the Execer the next statement runs against.
func (s *Session) target() Execer {
	if s.tx != nil {
		return s.tx
	}
	return s.DB
}

// Exec parses and executes one statement.
func (s *Session) Exec(stmtText string) (Result, error) {
	return s.ExecContext(context.Background(), stmtText)
}

// ExecContext parses and executes one statement under ctx: relation
// scans behind SELECT/SHOW/NEST/UNNEST/JOIN check it at page-fetch
// granularity, so cancelling stops a long scan from touching the
// buffer pool.
func (s *Session) ExecContext(ctx context.Context, stmtText string) (Result, error) {
	st, err := Parse(stmtText)
	if err != nil {
		return Result{}, err
	}
	return s.ExecStmtContext(ctx, st)
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(st Stmt) (Result, error) {
	return s.ExecStmtContext(context.Background(), st)
}

// ExecStmtContext executes a parsed statement under ctx.
func (s *Session) ExecStmtContext(ctx context.Context, st Stmt) (Result, error) {
	switch st.(type) {
	case BeginStmt:
		if s.tx != nil {
			return Result{}, fmt.Errorf("query: transaction already open (COMMIT or ROLLBACK first)")
		}
		tx, err := s.DB.Begin(ctx)
		if err != nil {
			return Result{}, err
		}
		s.tx = tx
		return Result{Message: "begun"}, nil
	case CommitStmt:
		if s.tx == nil {
			return Result{}, fmt.Errorf("query: no open transaction")
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Commit(); err != nil {
			return Result{}, err
		}
		return Result{Message: "committed"}, nil
	case RollbackStmt:
		if s.tx == nil {
			return Result{}, fmt.Errorf("query: no open transaction")
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Rollback(); err != nil {
			return Result{}, err
		}
		return Result{Message: "rolled back"}, nil
	}
	return ExecStmtOn(ctx, s.target(), st)
}

// ExecOn parses and executes one statement directly against a target —
// the facade's Tx.Query uses it to run query-language statements
// inside an explicit transaction. The session-scoped statements
// BEGIN/COMMIT/ROLLBACK are rejected; use a Session or the Tx handle's
// own Commit/Rollback.
func ExecOn(ctx context.Context, target Execer, stmtText string) (Result, error) {
	st, err := Parse(stmtText)
	if err != nil {
		return Result{}, err
	}
	return ExecStmtOn(ctx, target, st)
}

// ExecStmtOn executes a parsed DDL/DML/query statement against target.
func ExecStmtOn(ctx context.Context, target Execer, st Stmt) (Result, error) {
	relation := func(name string) (*core.Relation, error) {
		return target.ReadRelation(ctx, name)
	}
	switch st := st.(type) {
	case CreateStmt:
		return execCreate(target, st)
	case DropStmt:
		if err := target.Drop(st.Name); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("dropped %s", st.Name)}, nil
	case InsertStmt:
		n := 0
		for _, row := range st.Rows {
			ch, err := target.Insert(st.Name, tuple.Flat(row))
			if err != nil {
				return Result{}, err
			}
			if ch {
				n++
			}
		}
		return Result{Message: fmt.Sprintf("inserted %d tuple(s) into %s", n, st.Name)}, nil
	case DeleteStmt:
		n := 0
		for _, row := range st.Rows {
			ch, err := target.Delete(st.Name, tuple.Flat(row))
			if err != nil {
				return Result{}, err
			}
			if ch {
				n++
			}
		}
		return Result{Message: fmt.Sprintf("deleted %d tuple(s) from %s", n, st.Name)}, nil
	case SelectStmt:
		return execSelect(ctx, target, st)
	case UpdateStmt:
		return execUpdate(ctx, target, st)
	case ExplainStmt:
		return execExplain(target, st)
	case NestStmt:
		rel, err := relation(st.Name)
		if err != nil {
			return Result{}, err
		}
		out, err := algebra.Nest(rel, st.Attr)
		if err != nil {
			return Result{}, err
		}
		return Result{Relation: out}, nil
	case UnnestStmt:
		rel, err := relation(st.Name)
		if err != nil {
			return Result{}, err
		}
		out, err := algebra.Unnest(rel, st.Attr)
		if err != nil {
			return Result{}, err
		}
		return Result{Relation: out}, nil
	case JoinStmt:
		l, err := relation(st.Left)
		if err != nil {
			return Result{}, err
		}
		r, err := relation(st.Right)
		if err != nil {
			return Result{}, err
		}
		// join result schema: left ++ right-only
		shared := 0
		for _, n := range r.Schema().Names() {
			if l.Schema().Has(n) {
				shared++
			}
		}
		deg := l.Schema().Degree() + r.Schema().Degree() - shared
		out, err := algebra.NaturalJoin(l, r, schema.IdentityPerm(deg))
		if err != nil {
			return Result{}, err
		}
		return Result{Relation: out}, nil
	case ShowStmt:
		rel, err := relation(st.Name)
		if err != nil {
			return Result{}, err
		}
		return Result{Relation: rel}, nil
	case StatsStmt:
		rs, err := target.Stats(st.Name)
		if err != nil {
			return Result{}, err
		}
		msg := fmt.Sprintf(
			"%s: %d NFR tuple(s) covering %d flat tuple(s) (compression %.2fx); fixed on %v; ops: %d compositions, %d decompositions, %d scans",
			rs.Name, rs.NFRTuples, rs.FlatTuples, rs.Compression, rs.FixedOn,
			rs.Ops.Compositions, rs.Ops.Decompositions, rs.Ops.CandidateScans)
		if ip := rs.IndexPages; ip != nil {
			msg += fmt.Sprintf("; index pages: hash dir=%d buckets=%d, btree inner=%d leaf=%d",
				ip.HashDir, ip.HashBuckets, ip.BTreeInner, ip.BTreeLeaf)
		}
		return Result{Message: msg}, nil
	case ValidateStmt:
		vs, err := target.ValidateDeps(st.Name)
		if err != nil {
			return Result{}, err
		}
		if len(vs) == 0 {
			return Result{Message: fmt.Sprintf("%s: all declared dependencies hold", st.Name)}, nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s: %d violation(s):", st.Name, len(vs))
		for _, v := range vs {
			fmt.Fprintf(&b, "\n  %s", v.Dep)
		}
		return Result{Message: b.String()}, nil
	default:
		return Result{}, fmt.Errorf("query: unhandled statement %T", st)
	}
}

func execCreate(target Execer, st CreateStmt) (Result, error) {
	attrs := make([]schema.Attribute, len(st.Attrs))
	for i, a := range st.Attrs {
		attrs[i] = schema.Attribute{Name: a.Name, Kind: a.Kind}
	}
	sch, err := schema.New(attrs...)
	if err != nil {
		return Result{}, err
	}
	def := engine.RelationDef{Name: st.Name, Schema: sch}
	if st.Order != nil {
		p, err := schema.PermOf(sch, st.Order...)
		if err != nil {
			return Result{}, err
		}
		def.Order = p
	}
	for _, f := range st.FDs {
		def.FDs = append(def.FDs, dep.NewFD(f[0], f[1]))
	}
	for _, m := range st.MVDs {
		def.MVDs = append(def.MVDs, dep.NewMVD(m[0], m[1]))
	}
	if err := target.Create(def); err != nil {
		return Result{}, err
	}
	rdef, _ := target.Def(st.Name)
	return Result{Message: fmt.Sprintf("created %s%v with nest order %v",
		st.Name, sch, rdef.Order.Names(sch))}, nil
}

// validatePred resolves the predicate's attributes eagerly against sch
// so errors surface even on empty relations: evaluate once against a
// probe tuple of nulls.
func validatePred(sch *schema.Schema, pred algebra.Pred) error {
	probe := make([]vset.Set, sch.Degree())
	for i := range probe {
		probe[i] = vset.Single(value.NullAtom())
	}
	_, err := pred.Eval(sch, tuple.MustNew(probe...))
	return err
}

func execSelect(ctx context.Context, target Execer, st SelectStmt) (Result, error) {
	def, err := target.Def(st.Name)
	if err != nil {
		return Result{}, err
	}
	pred := st.Where
	if pred == nil {
		pred = algebra.True()
	}
	if err := validatePred(def.Schema, pred); err != nil {
		return Result{}, err
	}
	pl, err := planRead(target, st.Name, st.Where, st.Flat)
	if err != nil {
		return Result{}, err
	}
	rel, _, err := pl.fetch(ctx, target)
	if err != nil {
		return Result{}, err
	}

	var filtered *core.Relation
	if st.Flat {
		filtered, err = algebra.SelectFlat(rel, pred, def.Order)
	} else {
		filtered, err = algebra.Select(rel, pred)
	}
	if err != nil {
		return Result{}, err
	}
	out := filtered
	if st.Cols != nil {
		if st.Flat {
			out, err = algebra.ProjectFlat(filtered, schema.IdentityPerm(len(st.Cols)), st.Cols...)
		} else {
			out, err = algebra.Project(filtered, st.Cols...)
		}
		if err != nil {
			return Result{}, err
		}
	}
	if st.OrderBy != "" {
		out, err = sortByAttr(out, st.OrderBy, st.Desc)
		if err != nil {
			return Result{}, err
		}
	}
	return Result{Relation: out}, nil
}

// sortByAttr orders the relation's tuples by the named component:
// atom-wise lexicographic over the (canonically sorted) set, shorter
// prefix first; desc reverses. The sort is stable, so ties keep
// storage order.
func sortByAttr(rel *core.Relation, attr string, desc bool) (*core.Relation, error) {
	i := rel.Schema().Index(attr)
	if i < 0 {
		return nil, fmt.Errorf("query: order by unknown attribute %q", attr)
	}
	ts := rel.Tuples()
	sort.SliceStable(ts, func(a, b int) bool {
		c := compareSets(ts[a].Set(i), ts[b].Set(i))
		if desc {
			return c > 0
		}
		return c < 0
	})
	out := core.NewRelation(rel.Schema())
	for _, t := range ts {
		out.Add(t)
	}
	return out, nil
}

func compareSets(a, b vset.Set) int {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := 0; i < n; i++ {
		if c := value.Compare(a.At(i), b.At(i)); c != 0 {
			return c
		}
	}
	return a.Len() - b.Len()
}

// execUpdate rewrites the flat tuples matching WHERE: every matching
// flat has its SET attributes replaced, realized as deletes of the old
// flats followed by inserts of the new ones (each rippling through
// canonical maintenance). The read side goes through the planner with
// flat-level semantics, so an indexed conjunct on the fixed attribute
// turns a full-relation UPDATE into an index-driven one.
func execUpdate(ctx context.Context, target Execer, st UpdateStmt) (Result, error) {
	def, err := target.Def(st.Name)
	if err != nil {
		return Result{}, err
	}
	sch := def.Schema
	pred := st.Where
	if pred == nil {
		pred = algebra.True()
	}
	if err := validatePred(sch, pred); err != nil {
		return Result{}, err
	}
	setIdx := make([]int, len(st.Set))
	for i, c := range st.Set {
		j := sch.Index(c.Attr)
		if j < 0 {
			return Result{}, fmt.Errorf("query: update set unknown attribute %q", c.Attr)
		}
		setIdx[i] = j
	}
	pl, err := planRead(target, st.Name, st.Where, true)
	if err != nil {
		return Result{}, err
	}
	rel, _, err := pl.fetch(ctx, target)
	if err != nil {
		return Result{}, err
	}
	// Collect the rewrites first: the fetch is a superset at the flat
	// level, and each flat is judged by the full predicate.
	var olds, news []tuple.Flat
	for _, f := range rel.Expand() {
		match, err := pred.Eval(sch, tuple.FromFlat(f))
		if err != nil {
			return Result{}, err
		}
		if !match {
			continue
		}
		nf := f.Clone()
		for i, c := range st.Set {
			nf[setIdx[i]] = c.Val
		}
		if nf.Equal(f) {
			continue
		}
		olds = append(olds, f)
		news = append(news, nf)
	}
	// All deletes before all inserts, so a rewrite chain (a -> b while
	// b -> c) cannot delete a flat another rewrite just produced.
	for _, f := range olds {
		if _, err := target.Delete(st.Name, f); err != nil {
			return Result{}, err
		}
	}
	for _, f := range news {
		if _, err := target.Insert(st.Name, f); err != nil {
			return Result{}, err
		}
	}
	return Result{Message: fmt.Sprintf("updated %d flat tuple(s) in %s", len(olds), st.Name)}, nil
}

// execExplain plans the inner statement without executing it.
func execExplain(target Execer, st ExplainStmt) (Result, error) {
	var pl Plan
	var err error
	switch in := st.Inner.(type) {
	case SelectStmt:
		pl, err = planRead(target, in.Name, in.Where, in.Flat)
	case UpdateStmt:
		pl, err = planRead(target, in.Name, in.Where, true)
	default:
		return Result{}, fmt.Errorf("query: explain supports select and update, got %T", st.Inner)
	}
	if err != nil {
		return Result{}, err
	}
	if pl.Residual != nil {
		// surface attribute-resolution errors exactly like execution
		def, err := target.Def(pl.Relation)
		if err != nil {
			return Result{}, err
		}
		if err := validatePred(def.Schema, pl.Residual); err != nil {
			return Result{}, err
		}
	}
	return Result{Message: pl.Explain()}, nil
}

// RenderTable prints a relation as an aligned text table, one NFR
// tuple per row, set members comma-separated — the display format of
// the paper's figures.
func RenderTable(r *core.Relation) string {
	s := r.Schema()
	n := s.Degree()
	widths := make([]int, n)
	for i := 0; i < n; i++ {
		widths[i] = len(s.Attr(i).Name)
	}
	rows := make([][]string, r.Len())
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		row := make([]string, n)
		for j := 0; j < n; j++ {
			row[j] = t.Set(j).String()
			if len(row[j]) > widths[j] {
				widths[j] = len(row[j])
			}
		}
		rows[i] = row
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for j, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[j], c)
		}
		b.WriteByte('\n')
	}
	sep := func() {
		b.WriteString("+")
		for j := 0; j < n; j++ {
			b.WriteString(strings.Repeat("-", widths[j]+2))
			b.WriteString("+")
		}
		b.WriteByte('\n')
	}
	sep()
	writeRow(s.Names())
	sep()
	for _, row := range rows {
		writeRow(row)
	}
	sep()
	fmt.Fprintf(&b, "%d tuple(s), %d flat tuple(s)", r.Len(), r.ExpansionSize())
	return b.String()
}

// Atoms is a helper to build literal rows for tests and examples.
func Atoms(lits ...string) []value.Atom {
	out := make([]value.Atom, len(lits))
	for i, l := range lits {
		out[i] = value.MustParse(l)
	}
	return out
}
