package query

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
	"repro/internal/vset"
)

// Result is the outcome of executing one statement: either a relation
// (query statements) or a status message (DDL/DML statements).
type Result struct {
	Relation *core.Relation
	Message  string
}

// String renders the result for a console.
func (r Result) String() string {
	if r.Relation != nil {
		return RenderTable(r.Relation)
	}
	return r.Message
}

// Session executes statements against a database.
type Session struct {
	DB *engine.Database
}

// NewSession creates a session over a fresh in-memory database.
func NewSession() *Session { return &Session{DB: engine.New()} }

// NewSessionOn creates a session over an existing database (for
// example one opened disk-backed with engine.Open).
func NewSessionOn(db *engine.Database) *Session { return &Session{DB: db} }

// Exec parses and executes one statement.
func (s *Session) Exec(stmtText string) (Result, error) {
	st, err := Parse(stmtText)
	if err != nil {
		return Result{}, err
	}
	return s.ExecStmt(st)
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(st Stmt) (Result, error) {
	switch st := st.(type) {
	case CreateStmt:
		return s.execCreate(st)
	case DropStmt:
		if err := s.DB.Drop(st.Name); err != nil {
			return Result{}, err
		}
		return Result{Message: fmt.Sprintf("dropped %s", st.Name)}, nil
	case InsertStmt:
		n := 0
		for _, row := range st.Rows {
			ch, err := s.DB.Insert(st.Name, tuple.Flat(row))
			if err != nil {
				return Result{}, err
			}
			if ch {
				n++
			}
		}
		return Result{Message: fmt.Sprintf("inserted %d tuple(s) into %s", n, st.Name)}, nil
	case DeleteStmt:
		n := 0
		for _, row := range st.Rows {
			ch, err := s.DB.Delete(st.Name, tuple.Flat(row))
			if err != nil {
				return Result{}, err
			}
			if ch {
				n++
			}
		}
		return Result{Message: fmt.Sprintf("deleted %d tuple(s) from %s", n, st.Name)}, nil
	case SelectStmt:
		return s.execSelect(st)
	case NestStmt:
		rel, err := s.relation(st.Name)
		if err != nil {
			return Result{}, err
		}
		out, err := algebra.Nest(rel, st.Attr)
		if err != nil {
			return Result{}, err
		}
		return Result{Relation: out}, nil
	case UnnestStmt:
		rel, err := s.relation(st.Name)
		if err != nil {
			return Result{}, err
		}
		out, err := algebra.Unnest(rel, st.Attr)
		if err != nil {
			return Result{}, err
		}
		return Result{Relation: out}, nil
	case JoinStmt:
		l, err := s.relation(st.Left)
		if err != nil {
			return Result{}, err
		}
		r, err := s.relation(st.Right)
		if err != nil {
			return Result{}, err
		}
		// join result schema: left ++ right-only
		shared := 0
		for _, n := range r.Schema().Names() {
			if l.Schema().Has(n) {
				shared++
			}
		}
		deg := l.Schema().Degree() + r.Schema().Degree() - shared
		out, err := algebra.NaturalJoin(l, r, schema.IdentityPerm(deg))
		if err != nil {
			return Result{}, err
		}
		return Result{Relation: out}, nil
	case ShowStmt:
		rel, err := s.relation(st.Name)
		if err != nil {
			return Result{}, err
		}
		return Result{Relation: rel}, nil
	case StatsStmt:
		rs, err := s.DB.Stats(st.Name)
		if err != nil {
			return Result{}, err
		}
		msg := fmt.Sprintf(
			"%s: %d NFR tuple(s) covering %d flat tuple(s) (compression %.2fx); fixed on %v; ops: %d compositions, %d decompositions, %d scans",
			rs.Name, rs.NFRTuples, rs.FlatTuples, rs.Compression, rs.FixedOn,
			rs.Ops.Compositions, rs.Ops.Decompositions, rs.Ops.CandidateScans)
		return Result{Message: msg}, nil
	case ValidateStmt:
		vs, err := s.DB.ValidateDeps(st.Name)
		if err != nil {
			return Result{}, err
		}
		if len(vs) == 0 {
			return Result{Message: fmt.Sprintf("%s: all declared dependencies hold", st.Name)}, nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s: %d violation(s):", st.Name, len(vs))
		for _, v := range vs {
			fmt.Fprintf(&b, "\n  %s", v.Dep)
		}
		return Result{Message: b.String()}, nil
	default:
		return Result{}, fmt.Errorf("query: unhandled statement %T", st)
	}
}

// relation fetches the named relation for evaluation. On a disk-backed
// database this scans the relation's heap chain through the buffer
// pool, so queries exercise the paged realization rather than the
// maintainer's in-memory working set.
func (s *Session) relation(name string) (*core.Relation, error) {
	return s.DB.ReadRelation(name)
}

func (s *Session) execCreate(st CreateStmt) (Result, error) {
	attrs := make([]schema.Attribute, len(st.Attrs))
	for i, a := range st.Attrs {
		attrs[i] = schema.Attribute{Name: a.Name, Kind: a.Kind}
	}
	sch, err := schema.New(attrs...)
	if err != nil {
		return Result{}, err
	}
	def := engine.RelationDef{Name: st.Name, Schema: sch}
	if st.Order != nil {
		p, err := schema.PermOf(sch, st.Order...)
		if err != nil {
			return Result{}, err
		}
		def.Order = p
	}
	for _, f := range st.FDs {
		def.FDs = append(def.FDs, dep.NewFD(f[0], f[1]))
	}
	for _, m := range st.MVDs {
		def.MVDs = append(def.MVDs, dep.NewMVD(m[0], m[1]))
	}
	if err := s.DB.Create(def); err != nil {
		return Result{}, err
	}
	rdef, _ := s.DB.Rel(st.Name)
	return Result{Message: fmt.Sprintf("created %s%v with nest order %v",
		st.Name, sch, rdef.Def().Order.Names(sch))}, nil
}

func (s *Session) execSelect(st SelectStmt) (Result, error) {
	rel, err := s.relation(st.Name)
	if err != nil {
		return Result{}, err
	}
	pred := st.Where
	if pred == nil {
		pred = algebra.True()
	}
	// Validate the predicate eagerly (attribute resolution) so errors
	// surface even on empty relations: evaluate once against a probe
	// tuple of nulls.
	probe := make([]vset.Set, rel.Schema().Degree())
	for i := range probe {
		probe[i] = vset.Single(value.NullAtom())
	}
	if _, err := pred.Eval(rel.Schema(), tuple.MustNew(probe...)); err != nil {
		return Result{}, err
	}
	r, err := s.DB.Rel(st.Name)
	if err != nil {
		return Result{}, err
	}
	order := r.Def().Order

	var filtered *core.Relation
	if st.Flat {
		filtered, err = algebra.SelectFlat(rel, pred, order)
	} else {
		filtered, err = algebra.Select(rel, pred)
	}
	if err != nil {
		return Result{}, err
	}
	if st.Cols == nil {
		return Result{Relation: filtered}, nil
	}
	if st.Flat {
		out, err := algebra.ProjectFlat(filtered, schema.IdentityPerm(len(st.Cols)), st.Cols...)
		if err != nil {
			return Result{}, err
		}
		return Result{Relation: out}, nil
	}
	out, err := algebra.Project(filtered, st.Cols...)
	if err != nil {
		return Result{}, err
	}
	return Result{Relation: out}, nil
}

// RenderTable prints a relation as an aligned text table, one NFR
// tuple per row, set members comma-separated — the display format of
// the paper's figures.
func RenderTable(r *core.Relation) string {
	s := r.Schema()
	n := s.Degree()
	widths := make([]int, n)
	for i := 0; i < n; i++ {
		widths[i] = len(s.Attr(i).Name)
	}
	rows := make([][]string, r.Len())
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		row := make([]string, n)
		for j := 0; j < n; j++ {
			row[j] = t.Set(j).String()
			if len(row[j]) > widths[j] {
				widths[j] = len(row[j])
			}
		}
		rows[i] = row
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for j, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[j], c)
		}
		b.WriteByte('\n')
	}
	sep := func() {
		b.WriteString("+")
		for j := 0; j < n; j++ {
			b.WriteString(strings.Repeat("-", widths[j]+2))
			b.WriteString("+")
		}
		b.WriteByte('\n')
	}
	sep()
	writeRow(s.Names())
	sep()
	for _, row := range rows {
		writeRow(row)
	}
	sep()
	fmt.Fprintf(&b, "%d tuple(s), %d flat tuple(s)", r.Len(), r.ExpansionSize())
	return b.String()
}

// Atoms is a helper to build literal rows for tests and examples.
func Atoms(lits ...string) []value.Atom {
	out := make([]value.Atom, len(lits))
	for i, l := range lits {
		out[i] = value.MustParse(l)
	}
	return out
}
