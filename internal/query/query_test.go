package query

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func mustExec(t *testing.T, s *Session, stmt string) Result {
	t.Helper()
	res, err := s.Exec(stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", stmt, err)
	}
	return res
}

func newStudentSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession()
	mustExec(t, s, `CREATE R1 (Student:string, Course:string, Club:string)
		ORDER (Course, Club, Student)
		MVD Student ->-> Course`)
	mustExec(t, s, `INSERT INTO R1 VALUES
		(s1, c1, b1), (s1, c2, b1), (s1, c3, b1),
		(s3, c1, b1), (s3, c2, b1), (s3, c3, b1),
		(s2, c1, b2), (s2, c2, b2), (s2, c3, b2)`)
	return s
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`SELECT a, "two words" FROM r WHERE x >= -3.5 -- comment
AND y ->-> z`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "two words", "FROM", "r", "WHERE", "x", ">=", "-3.5", "AND", "y", "->->", "z"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex(`"unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("a ; b"); err == nil {
		t.Error("unknown character accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE r",
		"CREATE r",
		"CREATE r (A",
		"CREATE r (A:wat)",
		"CREATE r (A) ORDER A",
		"INSERT r VALUES (1)",
		"INSERT INTO r (1)",
		"INSERT INTO r VALUES 1",
		"SELECT FROM r",
		"SELECT * r",
		"SELECT * FROM r WHERE",
		"SELECT * FROM r WHERE x !! 1",
		"SELECT * FROM r WHERE CARD(x) = foo",
		"NEST r",
		"NEST r ON",
		"JOIN a b",
		"SHOW",
		"SELECT * FROM r extra",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestCreateInsertShow(t *testing.T) {
	s := newStudentSession(t)
	res := mustExec(t, s, "SHOW R1")
	if res.Relation == nil {
		t.Fatal("SHOW returned no relation")
	}
	if res.Relation.ExpansionSize() != 9 {
		t.Errorf("expansion = %d", res.Relation.ExpansionSize())
	}
	// s1, s3 grouped; s2 alone
	if res.Relation.Len() != 2 {
		t.Errorf("NFR tuples = %d\n%s", res.Relation.Len(), res)
	}
	out := res.String()
	if !strings.Contains(out, "Student") || !strings.Contains(out, "c1,c2,c3") {
		t.Errorf("table rendering:\n%s", out)
	}
}

func TestInsertDuplicateCount(t *testing.T) {
	s := newStudentSession(t)
	res := mustExec(t, s, "INSERT INTO R1 VALUES (s1, c1, b1), (s9, c9, b9)")
	if !strings.Contains(res.Message, "inserted 1 tuple(s)") {
		t.Errorf("message = %q", res.Message)
	}
}

func TestDeleteStatement(t *testing.T) {
	s := newStudentSession(t)
	res := mustExec(t, s, "DELETE FROM R1 VALUES (s1, c1, b1)")
	if !strings.Contains(res.Message, "deleted 1") {
		t.Errorf("message = %q", res.Message)
	}
	show := mustExec(t, s, "SHOW R1")
	if show.Relation.ExpansionSize() != 8 {
		t.Errorf("expansion = %d", show.Relation.ExpansionSize())
	}
	res = mustExec(t, s, "DELETE FROM R1 VALUES (zz, zz, zz)")
	if !strings.Contains(res.Message, "deleted 0") {
		t.Errorf("message = %q", res.Message)
	}
}

func TestSelectWhereContains(t *testing.T) {
	s := newStudentSession(t)
	res := mustExec(t, s, `SELECT * FROM R1 WHERE Student CONTAINS s2`)
	if res.Relation.Len() != 1 {
		t.Fatalf("rows = %d", res.Relation.Len())
	}
	if !res.Relation.Tuple(0).Set(2).Contains(value.NewString("b2")) {
		t.Error("wrong tuple selected")
	}
}

func TestSelectProjection(t *testing.T) {
	s := newStudentSession(t)
	res := mustExec(t, s, "SELECT Student, Club FROM R1")
	if res.Relation.Schema().Degree() != 2 {
		t.Errorf("schema = %v", res.Relation.Schema())
	}
	res = mustExec(t, s, "SELECT FLAT Student, Club FROM R1")
	// flat projection: (s1,b1),(s3,b1),(s2,b2) = 3 flats
	if res.Relation.ExpansionSize() != 3 {
		t.Errorf("flat projection expansion = %d", res.Relation.ExpansionSize())
	}
}

func TestSelectCardPredicate(t *testing.T) {
	s := newStudentSession(t)
	mustExec(t, s, "DELETE FROM R1 VALUES (s2, c3, b2)")
	res := mustExec(t, s, "SELECT * FROM R1 WHERE CARD(Course) >= 3")
	// only the {s1,s3} group still has 3 courses
	if res.Relation.Len() != 1 {
		t.Errorf("rows = %d:\n%s", res.Relation.Len(), res)
	}
	res = mustExec(t, s, "SELECT * FROM R1 WHERE CARD(Course) < 3")
	if res.Relation.Len() != 1 {
		t.Errorf("rows = %d", res.Relation.Len())
	}
}

func TestSelectBooleanOperators(t *testing.T) {
	s := newStudentSession(t)
	res := mustExec(t, s,
		`SELECT * FROM R1 WHERE (Club = b1 OR Club = b2) AND NOT Student CONTAINS s2`)
	if res.Relation.Len() != 1 {
		t.Errorf("rows = %d", res.Relation.Len())
	}
	// ALL quantifier
	res = mustExec(t, s, `SELECT * FROM R1 WHERE Course ALL <> c9`)
	if res.Relation.Len() != 2 {
		t.Errorf("ALL rows = %d", res.Relation.Len())
	}
}

func TestNestUnnestStatements(t *testing.T) {
	s := NewSession()
	mustExec(t, s, "CREATE r (A, B)")
	mustExec(t, s, "INSERT INTO r VALUES (a1, b1), (a1, b2)")
	res := mustExec(t, s, "UNNEST r ON B")
	if res.Relation.Len() != 2 {
		t.Errorf("unnest rows = %d", res.Relation.Len())
	}
	res = mustExec(t, s, "NEST r ON B")
	if res.Relation.Len() != 1 {
		t.Errorf("nest rows = %d", res.Relation.Len())
	}
}

func TestJoinStatement(t *testing.T) {
	s := NewSession()
	mustExec(t, s, "CREATE sc (Student, Course)")
	mustExec(t, s, "CREATE sb (Student, Club)")
	mustExec(t, s, "INSERT INTO sc VALUES (s1, c1), (s1, c2), (s2, c1)")
	mustExec(t, s, "INSERT INTO sb VALUES (s1, b1), (s2, b2)")
	res := mustExec(t, s, "JOIN sc, sb")
	if res.Relation.ExpansionSize() != 3 {
		t.Errorf("join expansion = %d\n%s", res.Relation.ExpansionSize(), res)
	}
	if res.Relation.Schema().Degree() != 3 {
		t.Errorf("join schema = %v", res.Relation.Schema())
	}
}

func TestStatsAndValidate(t *testing.T) {
	s := newStudentSession(t)
	res := mustExec(t, s, "STATS R1")
	if !strings.Contains(res.Message, "compression") {
		t.Errorf("stats = %q", res.Message)
	}
	res = mustExec(t, s, "VALIDATE R1")
	if !strings.Contains(res.Message, "hold") {
		t.Errorf("validate = %q", res.Message)
	}
	// break the MVD and re-validate
	mustExec(t, s, "INSERT INTO R1 VALUES (s1, c9, b9)")
	res = mustExec(t, s, "VALIDATE R1")
	if !strings.Contains(res.Message, "violation") {
		t.Errorf("validate after break = %q", res.Message)
	}
}

func TestDropStatement(t *testing.T) {
	s := newStudentSession(t)
	mustExec(t, s, "DROP R1")
	if _, err := s.Exec("SHOW R1"); err == nil {
		t.Error("SHOW after DROP succeeded")
	}
	if _, err := s.Exec("DROP R1"); err == nil {
		t.Error("double DROP succeeded")
	}
}

func TestExecErrors(t *testing.T) {
	s := NewSession()
	cases := []string{
		"SHOW missing",
		"STATS missing",
		"VALIDATE missing",
		"INSERT INTO missing VALUES (1)",
		"DELETE FROM missing VALUES (1)",
		"SELECT * FROM missing",
		"NEST missing ON a",
		"UNNEST missing ON a",
		"JOIN missing, missing2",
	}
	for _, q := range cases {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
	mustExec(t, s, "CREATE r (A)")
	if _, err := s.Exec("CREATE r (A)"); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := s.Exec("CREATE r2 (A) ORDER (Nope)"); err == nil {
		t.Error("bad order attr accepted")
	}
	if _, err := s.Exec("SELECT * FROM r WHERE Nope = 1"); err == nil {
		t.Error("unknown predicate attr accepted")
	}
	if _, err := s.Exec("SELECT Nope FROM r"); err == nil {
		t.Error("unknown projection attr accepted")
	}
	if _, err := s.Exec("NEST r ON Nope"); err == nil {
		t.Error("unknown nest attr accepted")
	}
}

func TestLiteralKinds(t *testing.T) {
	s := NewSession()
	mustExec(t, s, "CREATE t (I:int, F:float, B:bool, S:string)")
	mustExec(t, s, `INSERT INTO t VALUES (42, 2.5, true, "hello world")`)
	res := mustExec(t, s, "SELECT * FROM t WHERE I = 42 AND F >= 2.0 AND B = true")
	if res.Relation.Len() != 1 {
		t.Errorf("typed row not found:\n%s", res)
	}
	// kind mismatch caught by engine
	if _, err := s.Exec("INSERT INTO t VALUES (nope, 2.5, true, x)"); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestAtomsHelper(t *testing.T) {
	row := Atoms("s1", "42", "2.5")
	if row[0].K != value.String || row[1].K != value.Int || row[2].K != value.Float {
		t.Errorf("Atoms kinds = %v %v %v", row[0].K, row[1].K, row[2].K)
	}
}

func TestCreateWithFD(t *testing.T) {
	s := NewSession()
	res := mustExec(t, s, "CREATE emp (Emp, Dept, Mgr) FD Dept -> Mgr")
	if !strings.Contains(res.Message, "created emp") {
		t.Errorf("create message = %q", res.Message)
	}
	// FD determinant Dept should be nested last by SuggestOrder
	if !strings.Contains(res.Message, "Dept]") {
		t.Errorf("nest order message = %q", res.Message)
	}
	mustExec(t, s, "INSERT INTO emp VALUES (e1, d1, m1), (e2, d1, m1)")
	res = mustExec(t, s, "VALIDATE emp")
	if !strings.Contains(res.Message, "hold") {
		t.Errorf("validate = %q", res.Message)
	}
}
