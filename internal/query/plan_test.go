package query

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
)

// newDiskSession opens a session over a disk-backed database with one
// indexed relation R1 (fixed on Student) holding students s00..s29.
func newDiskSession(t *testing.T) (*Session, *engine.Database) {
	t.Helper()
	db, err := engine.Open(filepath.Join(t.TempDir(), "q.nfrs"), engine.WithPoolPages(64))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := NewSessionOn(db)
	mustExec(t, s, `CREATE R1 (Student:string, Course:string, Club:string) ORDER (Course, Club, Student)`)
	var rows []string
	for i := 0; i < 30; i++ {
		rows = append(rows, fmt.Sprintf("(s%02d, c%d, b%d)", i, i%4, i%2))
	}
	mustExec(t, s, "INSERT INTO R1 VALUES "+strings.Join(rows, ", "))
	return s, db
}

func TestExplainAccessPaths(t *testing.T) {
	s, db := newDiskSession(t)

	// the acceptance shape: a two-sided range on the indexed atom
	res := mustExec(t, s, `EXPLAIN SELECT * FROM R1 WHERE Student >= s10 AND Student < s20`)
	if !strings.Contains(res.Message, "access: index-range (Student)") {
		t.Errorf("explain =\n%s", res.Message)
	}
	// tuple-level Any/Any window: upper bound demoted to residual
	if !strings.Contains(res.Message, "note: upper bound demoted") {
		t.Errorf("missing demotion note:\n%s", res.Message)
	}
	// flat-level select keeps the full window
	res = mustExec(t, s, `EXPLAIN SELECT FLAT * FROM R1 WHERE Student >= s10 AND Student < s20`)
	if !strings.Contains(res.Message, `range: ["s10" .. "s20")`) {
		t.Errorf("flat window =\n%s", res.Message)
	}
	if strings.Contains(res.Message, "note:") {
		t.Errorf("unexpected note:\n%s", res.Message)
	}

	// equality and membership pick the hash probe
	for _, q := range []string{
		`EXPLAIN SELECT * FROM R1 WHERE Student = s07`,
		`EXPLAIN SELECT * FROM R1 WHERE Student CONTAINS s07 AND Course = c1`,
		`EXPLAIN UPDATE R1 SET Club = b9 WHERE Student = s07`,
	} {
		res = mustExec(t, s, q)
		if !strings.Contains(res.Message, "access: index-point (Student)") {
			t.Errorf("%s =\n%s", q, res.Message)
		}
	}

	// non-indexed attribute, disjunctions, NE: heap scan
	for _, q := range []string{
		`EXPLAIN SELECT * FROM R1 WHERE Course = c1`,
		`EXPLAIN SELECT * FROM R1 WHERE Student = s01 OR Student = s02`,
		`EXPLAIN SELECT * FROM R1 WHERE Student <> s01`,
		`EXPLAIN SELECT * FROM R1`,
	} {
		res = mustExec(t, s, q)
		if !strings.Contains(res.Message, "access: heap-scan") {
			t.Errorf("%s =\n%s", q, res.Message)
		}
	}

	// hash-sharded relations fall back to heap scan: stored tuples are
	// shard-canonical, not globally canonical
	def, err := db.Def("R1")
	if err != nil {
		t.Fatal(err)
	}
	def.Name = "RS"
	def.Shards = 4
	if err := db.Create(def); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, s, `EXPLAIN SELECT * FROM RS WHERE Student >= s10`)
	if !strings.Contains(res.Message, "access: heap-scan") ||
		!strings.Contains(res.Message, "hash-sharded 4 ways") {
		t.Errorf("sharded explain =\n%s", res.Message)
	}

	// memory-mode databases have no access paths
	mem := newStudentSession(t)
	res = mustExec(t, mem, `EXPLAIN SELECT * FROM R1 WHERE Student >= s1`)
	if !strings.Contains(res.Message, "access: heap-scan") ||
		!strings.Contains(res.Message, "no durable indexes") {
		t.Errorf("memory explain =\n%s", res.Message)
	}

	// explain surfaces attribute errors like execution would
	if _, err := s.Exec(`EXPLAIN SELECT * FROM R1 WHERE Nope = 1`); err == nil {
		t.Error("explain accepted unknown attribute")
	}
}

// TestIndexedSelectEquivalence runs the same statements against the
// disk-backed (planner-routed) session and a memory session and
// requires identical results — index fetch + residual ≡ heap scan.
func TestIndexedSelectEquivalence(t *testing.T) {
	disk, _ := newDiskSession(t)
	mem := NewSession()
	mustExec(t, mem, `CREATE R1 (Student:string, Course:string, Club:string) ORDER (Course, Club, Student)`)
	var rows []string
	for i := 0; i < 30; i++ {
		rows = append(rows, fmt.Sprintf("(s%02d, c%d, b%d)", i, i%4, i%2))
	}
	mustExec(t, mem, "INSERT INTO R1 VALUES "+strings.Join(rows, ", "))

	queries := []string{
		`SELECT * FROM R1 WHERE Student >= s10 AND Student < s20`,
		`SELECT FLAT * FROM R1 WHERE Student >= s10 AND Student < s20`,
		`SELECT * FROM R1 WHERE Student = s07`,
		`SELECT * FROM R1 WHERE Student CONTAINS s07 AND Course = c3`,
		`SELECT * FROM R1 WHERE Student > s25`,
		`SELECT FLAT Student FROM R1 WHERE Student <= s03`,
		`SELECT * FROM R1 WHERE Student >= s90`,
		`SELECT * FROM R1 WHERE Student ALL >= s00 AND Student ALL <= s99`,
	}
	for _, q := range queries {
		dr := mustExec(t, disk, q)
		mr := mustExec(t, mem, q)
		if !dr.Relation.EquivalentTo(mr.Relation) {
			t.Errorf("%s:\ndisk:\n%s\nmem:\n%s", q, dr, mr)
		}
	}
}

func TestUpdateStatement(t *testing.T) {
	for _, mode := range []string{"memory", "disk"} {
		t.Run(mode, func(t *testing.T) {
			var s *Session
			if mode == "disk" {
				s, _ = newDiskSession(t)
			} else {
				s = NewSession()
				mustExec(t, s, `CREATE R1 (Student:string, Course:string, Club:string) ORDER (Course, Club, Student)`)
				var rows []string
				for i := 0; i < 30; i++ {
					rows = append(rows, fmt.Sprintf("(s%02d, c%d, b%d)", i, i%4, i%2))
				}
				mustExec(t, s, "INSERT INTO R1 VALUES "+strings.Join(rows, ", "))
			}
			res := mustExec(t, s, `UPDATE R1 SET Club = bz WHERE Student >= s10 AND Student < s20`)
			if !strings.Contains(res.Message, "updated 10 flat tuple(s)") {
				t.Errorf("update message = %q", res.Message)
			}
			chk := mustExec(t, s, `SELECT FLAT * FROM R1 WHERE Club = bz`)
			if chk.Relation.ExpansionSize() != 10 {
				t.Errorf("rewritten flats = %d", chk.Relation.ExpansionSize())
			}
			// the old flats are gone, total count unchanged
			all := mustExec(t, s, `SELECT FLAT * FROM R1`)
			if all.Relation.ExpansionSize() != 30 {
				t.Errorf("total flats = %d, want 30", all.Relation.ExpansionSize())
			}
			// no-op update reports zero
			res = mustExec(t, s, `UPDATE R1 SET Club = bz WHERE Club = bz`)
			if !strings.Contains(res.Message, "updated 0") {
				t.Errorf("no-op update message = %q", res.Message)
			}
			// unknown SET attribute rejected
			if _, err := s.Exec(`UPDATE R1 SET Nope = 1`); err == nil {
				t.Error("update of unknown attribute accepted")
			}
		})
	}
}

func TestSelectOrderBy(t *testing.T) {
	s := newStudentSession(t)
	res := mustExec(t, s, `SELECT FLAT * FROM R1 ORDER BY Student DESC`)
	rel := res.Relation
	idx := rel.Schema().Index("Student")
	for i := 1; i < rel.Len(); i++ {
		if compareSets(rel.Tuple(i-1).Set(idx), rel.Tuple(i).Set(idx)) < 0 {
			t.Fatalf("not descending at %d:\n%s", i, res)
		}
	}
	res = mustExec(t, s, `SELECT * FROM R1 ORDER BY Club`)
	rel = res.Relation
	idx = rel.Schema().Index("Club")
	for i := 1; i < rel.Len(); i++ {
		if compareSets(rel.Tuple(i-1).Set(idx), rel.Tuple(i).Set(idx)) > 0 {
			t.Fatalf("not ascending at %d:\n%s", i, res)
		}
	}
	if _, err := s.Exec(`SELECT Student FROM R1 ORDER BY Club`); err == nil {
		t.Error("order by attribute outside projection accepted")
	}
}

func TestStatsShowsIndexPages(t *testing.T) {
	s, _ := newDiskSession(t)
	res := mustExec(t, s, "STATS R1")
	if !strings.Contains(res.Message, "index pages: hash dir=") ||
		!strings.Contains(res.Message, "btree inner=") {
		t.Errorf("stats = %q", res.Message)
	}
	// memory mode: no index-pages clause
	mem := newStudentSession(t)
	res = mustExec(t, mem, "STATS R1")
	if strings.Contains(res.Message, "index pages") {
		t.Errorf("memory stats = %q", res.Message)
	}
}
