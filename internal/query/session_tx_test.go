package query

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
)

// TestSessionTransaction drives BEGIN/COMMIT/ROLLBACK through the
// query language: statements inside a transaction are visible to the
// session (and only to it) until COMMIT, and ROLLBACK discards them.
func TestSessionTransaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sess.nfrs")
	db, err := engine.Open(path, engine.WithPoolPages(8))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewSessionOn(db)
	mustExec := func(stmt string) Result {
		t.Helper()
		res, err := s.Exec(stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		return res
	}
	mustExec("CREATE r (A, B) MVD A ->-> B")

	// committed transaction
	mustExec("BEGIN")
	if !s.InTx() {
		t.Fatal("InTx() = false after BEGIN")
	}
	if _, err := s.Exec("BEGIN"); err == nil {
		t.Fatal("nested BEGIN accepted")
	}
	mustExec("INSERT INTO r VALUES (a1, b1), (a1, b2)")
	// the session sees its own writes
	if res := mustExec("SHOW r"); res.Relation.ExpansionSize() != 2 {
		t.Fatalf("in-tx SHOW: %d flat tuples, want 2", res.Relation.ExpansionSize())
	}
	// a second session sees nothing until commit — Exec would block on
	// the latch, so peek through the committed maintainer-free path: a
	// fresh read AFTER commit is the observable contract here
	mustExec("COMMIT")
	if s.InTx() {
		t.Fatal("InTx() = true after COMMIT")
	}
	other := NewSessionOn(db)
	if res, err := other.Exec("SHOW r"); err != nil || res.Relation.ExpansionSize() != 2 {
		t.Fatalf("committed writes invisible to other session: %v", err)
	}

	// rolled-back transaction
	mustExec("BEGIN")
	mustExec("DELETE FROM r VALUES (a1, b1)")
	mustExec("INSERT INTO r VALUES (a9, b9)")
	if res := mustExec("SHOW r"); res.Relation.ExpansionSize() != 2 {
		t.Fatalf("in-tx state wrong: %d flat tuples", res.Relation.ExpansionSize())
	}
	res := mustExec("ROLLBACK")
	if !strings.Contains(res.Message, "rolled back") {
		t.Fatalf("rollback message: %q", res.Message)
	}
	if res := mustExec("SHOW r"); res.Relation.ExpansionSize() != 2 {
		t.Fatalf("after rollback: %d flat tuples, want the 2 committed", res.Relation.ExpansionSize())
	}
	for _, stmt := range []string{"COMMIT", "ROLLBACK"} {
		if _, err := s.Exec(stmt); err == nil {
			t.Fatalf("%s with no open transaction accepted", stmt)
		}
	}

	// transactional DDL through the language
	mustExec("BEGIN")
	mustExec("CREATE tmp (X, Y)")
	mustExec("INSERT INTO tmp VALUES (x, y)")
	mustExec("ROLLBACK")
	if _, err := s.Exec("SHOW tmp"); err == nil {
		t.Fatal("rolled-back CREATE survived")
	}

	// Session.Close rolls back an open transaction
	mustExec("BEGIN")
	mustExec("INSERT INTO r VALUES (zz, zz)")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.InTx() {
		t.Fatal("InTx() after Close")
	}
	if res, err := other.Exec("SHOW r"); err != nil || res.Relation.ExpansionSize() != 2 {
		t.Fatalf("Session.Close leaked uncommitted write: %v", err)
	}
}

// TestBeginCommitRollbackRoundTrip: the new statements satisfy the
// parser's re-parse property like every other statement.
func TestBeginCommitRollbackRoundTrip(t *testing.T) {
	for _, in := range []string{"BEGIN", "commit", "Rollback"} {
		st, err := Parse(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		st2, err := Parse(st.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", st.String(), err)
		}
		if st != st2 {
			t.Fatalf("round trip changed %q: %#v vs %#v", in, st, st2)
		}
	}
}
