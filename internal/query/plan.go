package query

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/value"
)

// This file is the planner: it inspects a statement's WHERE clause and
// the target relation's physical access paths (engine.IndexInfo) and
// picks between a heap scan, a hash-index point probe, and a B+tree
// range scan. The full predicate is ALWAYS re-applied to whatever the
// chosen access path fetches, so the only soundness obligation is that
// the fetch is a superset of the matching tuples. That obligation is
// subtle on set-valued attributes:
//
//   - A point conjunct (attr = v, attr CONTAINS v, with either
//     quantifier) matches only tuples whose fixed component holds v —
//     exactly what the hash index fetches. Always usable.
//   - A single-sided range conjunct (attr >= x, Any) matches only
//     tuples with SOME fixed atom >= x — exactly the B+tree fetch.
//     Always usable; same for All (all atoms >= x implies some is).
//   - A two-sided window is the trap: `attr >= x AND attr < y` under
//     Any semantics can match a tuple via two DIFFERENT atoms (one
//     >= x, another < y) with NO single atom inside [x, y), which a
//     window fetch would miss. The window fetch is only a superset
//     when at most one side is Any-quantified, or at the flat level
//     (SELECT FLAT / UPDATE), where each flat has one atom that must
//     satisfy both sides. Otherwise the planner keeps the lower bound
//     for the fetch and demotes the upper bound to residual-only.
//   - Index fetches return stored (shard-canonical) tuples, which on
//     a K-sharded relation are finer-grained than the global canonical
//     form; tuple-level predicates could then evaluate differently.
//     Index paths are therefore restricted to single-shard relations.
//
// NE, OR, NOT, CARD and attr-vs-attr conjuncts are never indexable.

// AccessKind is the chosen access path.
type AccessKind uint8

const (
	HeapScan AccessKind = iota
	IndexPoint
	IndexRange
)

func (k AccessKind) String() string {
	switch k {
	case IndexPoint:
		return "index-point"
	case IndexRange:
		return "index-range"
	default:
		return "heap-scan"
	}
}

// Plan is the planner's decision for one statement's read.
type Plan struct {
	Relation string
	Access   AccessKind
	Attr     string        // indexed attribute (index paths)
	Point    *value.Atom   // probe atom (IndexPoint)
	Lo, Hi   *engine.Bound // scan window (IndexRange; nil = unbounded)
	Reason   string        // one-line why (shown by EXPLAIN)
	Note     string        // soundness demotion note, if any
	Residual algebra.Pred  // full predicate, re-applied to the fetch
}

// planRead picks the access path for reading relation name filtered by
// where; flat reports flat-level predicate semantics (SELECT FLAT and
// UPDATE), which admit two-sided Any windows.
func planRead(target Execer, name string, where algebra.Pred, flat bool) (Plan, error) {
	pl := Plan{Relation: name, Access: HeapScan, Residual: where}
	info, err := target.IndexInfo(name)
	if err != nil {
		return Plan{}, err
	}
	switch {
	case !info.HasPoint && !info.HasRange:
		pl.Reason = "relation has no durable indexes"
		return pl, nil
	case info.Shards != 1:
		pl.Reason = fmt.Sprintf("relation is hash-sharded %d ways; stored tuples are shard-canonical", info.Shards)
		return pl, nil
	case where == nil:
		pl.Reason = "no predicate"
		return pl, nil
	}

	var point *value.Atom
	var lo, hi *engine.Bound
	loAny, hiAny := false, false
	for _, c := range algebra.Conjuncts(where) {
		if attr, v, ok := algebra.AsContains(c); ok && attr == info.FixedAttr {
			v := v
			point = &v
			continue
		}
		cmp, ok := algebra.AsCmp(c)
		if !ok || cmp.Attr != info.FixedAttr {
			continue
		}
		anyQ := cmp.Quant == algebra.Any
		switch cmp.Op {
		case algebra.EQ:
			v := cmp.Val
			point = &v
		case algebra.GE, algebra.GT:
			b := &engine.Bound{Atom: cmp.Val, Incl: cmp.Op == algebra.GE}
			if lo == nil || tighterLo(b, lo) {
				lo, loAny = b, anyQ
			}
		case algebra.LE, algebra.LT:
			b := &engine.Bound{Atom: cmp.Val, Incl: cmp.Op == algebra.LE}
			if hi == nil || tighterHi(b, hi) {
				hi, hiAny = b, anyQ
			}
		}
	}

	switch {
	case point != nil && info.HasPoint:
		pl.Access = IndexPoint
		pl.Attr = info.FixedAttr
		pl.Point = point
		pl.Reason = fmt.Sprintf("equality conjunct on indexed attribute %s", info.FixedAttr)
	case (lo != nil || hi != nil) && info.HasRange:
		if lo != nil && hi != nil && loAny && hiAny && !flat {
			// Any/Any window at tuple level: fetch on the lower bound
			// only; the upper bound still filters via the residual.
			hi = nil
			pl.Note = "upper bound demoted to residual: a set-valued tuple can match both sides via different atoms"
		}
		pl.Access = IndexRange
		pl.Attr = info.FixedAttr
		pl.Lo, pl.Hi = lo, hi
		pl.Reason = fmt.Sprintf("range conjunct(s) on indexed attribute %s", info.FixedAttr)
	default:
		pl.Reason = fmt.Sprintf("no usable conjunct on indexed attribute %s", info.FixedAttr)
	}
	return pl, nil
}

// tighterLo reports whether a is a tighter (larger) lower bound than b.
func tighterLo(a, b *engine.Bound) bool {
	c := value.Compare(a.Atom, b.Atom)
	return c > 0 || (c == 0 && !a.Incl && b.Incl)
}

// tighterHi reports whether a is a tighter (smaller) upper bound than b.
func tighterHi(a, b *engine.Bound) bool {
	c := value.Compare(a.Atom, b.Atom)
	return c < 0 || (c == 0 && !a.Incl && b.Incl)
}

// fetch runs the plan's access path and returns the fetched relation
// plus the index pages read (0 for heap scans and point probes).
func (pl Plan) fetch(ctx context.Context, target Execer) (*core.Relation, int, error) {
	switch pl.Access {
	case IndexPoint:
		rel, err := target.LookupFixed(pl.Relation, *pl.Point)
		return rel, 0, err
	case IndexRange:
		return target.ScanFixedRange(pl.Relation, pl.Lo, pl.Hi)
	default:
		rel, err := target.ReadRelation(ctx, pl.Relation)
		return rel, 0, err
	}
}

// Explain renders the plan in the stable EXPLAIN format:
//
//	access: index-range (Student)
//	  range: ["s10" .. "s20")
//	  residual: Student >= "s10" and Student < "s20"
//	  reason: range conjunct(s) on indexed attribute Student
func (pl Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "access: %s", pl.Access)
	if pl.Access != HeapScan {
		fmt.Fprintf(&b, " (%s)", pl.Attr)
	}
	switch pl.Access {
	case IndexPoint:
		fmt.Fprintf(&b, "\n  probe: %s", algebra.LiteralString(*pl.Point))
	case IndexRange:
		fmt.Fprintf(&b, "\n  range: %s .. %s", boundString(pl.Lo, true), boundString(pl.Hi, false))
	}
	if pl.Residual != nil {
		fmt.Fprintf(&b, "\n  residual: %s", pl.Residual.String())
	}
	fmt.Fprintf(&b, "\n  reason: %s", pl.Reason)
	if pl.Note != "" {
		fmt.Fprintf(&b, "\n  note: %s", pl.Note)
	}
	return b.String()
}

func boundString(b *engine.Bound, low bool) string {
	if b == nil {
		return "unbounded"
	}
	lit := algebra.LiteralString(b.Atom)
	if low {
		if b.Incl {
			return "[" + lit
		}
		return "(" + lit
	}
	if b.Incl {
		return lit + "]"
	}
	return lit + ")"
}
