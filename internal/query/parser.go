package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/value"
)

// Stmt is a parsed statement. String renders it in re-parseable query
// syntax: for every statement st, Parse(st.String()) succeeds and
// yields an identical AST (the property FuzzParse checks).
type Stmt interface {
	stmt()
	String() string
}

// CreateStmt declares a relation.
type CreateStmt struct {
	Name  string
	Attrs []AttrDef
	Order []string // nest order attribute names (may be nil)
	FDs   [][2][]string
	MVDs  [][2][]string
}

// AttrDef is one attribute declaration.
type AttrDef struct {
	Name string
	Kind value.Kind // value.Null when untyped
}

// DropStmt drops a relation.
type DropStmt struct{ Name string }

// InsertStmt inserts flat tuples.
type InsertStmt struct {
	Name string
	Rows [][]value.Atom
}

// DeleteStmt deletes flat tuples.
type DeleteStmt struct {
	Name string
	Rows [][]value.Atom
}

// SelectStmt projects/filters a relation.
type SelectStmt struct {
	Name    string
	Cols    []string // nil = *
	Where   algebra.Pred
	Flat    bool   // SELECT FLAT ... : flat-level semantics
	OrderBy string // "" = storage order
	Desc    bool
}

// UpdateStmt rewrites the flat tuples matching WHERE: each one has the
// SET attributes replaced (a delete of the old flat plus an insert of
// the new one, rippling through canonical maintenance).
type UpdateStmt struct {
	Name  string
	Set   []SetClause
	Where algebra.Pred
}

// SetClause is one attr = literal assignment.
type SetClause struct {
	Attr string
	Val  value.Atom
}

// ExplainStmt reports the access path the planner picks for the inner
// statement without executing it.
type ExplainStmt struct{ Inner Stmt }

// NestStmt applies ν on one attribute.
type NestStmt struct{ Name, Attr string }

// UnnestStmt applies μ on one attribute.
type UnnestStmt struct{ Name, Attr string }

// JoinStmt natural-joins two relations.
type JoinStmt struct{ Left, Right string }

// ShowStmt prints a relation.
type ShowStmt struct{ Name string }

// StatsStmt reports size/maintenance statistics.
type StatsStmt struct{ Name string }

// ValidateStmt checks declared dependencies.
type ValidateStmt struct{ Name string }

// BeginStmt starts a multi-statement transaction on the session.
type BeginStmt struct{}

// CommitStmt commits the session's open transaction.
type CommitStmt struct{}

// RollbackStmt rolls back the session's open transaction.
type RollbackStmt struct{}

func (CreateStmt) stmt()   {}
func (UpdateStmt) stmt()   {}
func (ExplainStmt) stmt()  {}
func (DropStmt) stmt()     {}
func (InsertStmt) stmt()   {}
func (DeleteStmt) stmt()   {}
func (SelectStmt) stmt()   {}
func (NestStmt) stmt()     {}
func (UnnestStmt) stmt()   {}
func (JoinStmt) stmt()     {}
func (ShowStmt) stmt()     {}
func (StatsStmt) stmt()    {}
func (ValidateStmt) stmt() {}
func (BeginStmt) stmt()    {}
func (CommitStmt) stmt()   {}
func (RollbackStmt) stmt() {}

type parser struct {
	toks []token
	i    int
}

// Parse parses one statement.
func Parse(in string) (Stmt, error) {
	toks, err := lex(in)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("query: trailing input at %d: %q", p.peek().pos, p.peek().text)
	}
	return st, nil
}

func (p *parser) peek() token   { return p.toks[p.i] }
func (p *parser) next() token   { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.i }
func (p *parser) restore(s int) { p.i = s }

// matchKw consumes a case-insensitive keyword.
func (p *parser) matchKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.matchKw(kw) {
		return fmt.Errorf("query: expected %q at %d, got %q", kw, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) matchSym(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.matchSym(s) {
		return fmt.Errorf("query: expected %q at %d, got %q", s, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("query: expected identifier at %d, got %q", t.pos, t.text)
	}
	p.i++
	return t.text, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.matchKw("create"):
		return p.parseCreate()
	case p.matchKw("drop"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return DropStmt{Name: name}, nil
	case p.matchKw("insert"):
		if err := p.expectKw("into"); err != nil {
			return nil, err
		}
		name, rows, err := p.parseNameValues()
		if err != nil {
			return nil, err
		}
		return InsertStmt{Name: name, Rows: rows}, nil
	case p.matchKw("delete"):
		if err := p.expectKw("from"); err != nil {
			return nil, err
		}
		name, rows, err := p.parseNameValues()
		if err != nil {
			return nil, err
		}
		return DeleteStmt{Name: name, Rows: rows}, nil
	case p.matchKw("select"):
		return p.parseSelect()
	case p.matchKw("update"):
		return p.parseUpdate()
	case p.matchKw("explain"):
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		switch inner.(type) {
		case SelectStmt, UpdateStmt:
			return ExplainStmt{Inner: inner}, nil
		default:
			return nil, fmt.Errorf("query: explain supports select and update, got %T", inner)
		}
	case p.matchKw("nest"):
		return p.parseNestLike(true)
	case p.matchKw("unnest"):
		return p.parseNestLike(false)
	case p.matchKw("join"):
		l, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(","); err != nil {
			return nil, err
		}
		r, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return JoinStmt{Left: l, Right: r}, nil
	case p.matchKw("show"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return ShowStmt{Name: name}, nil
	case p.matchKw("stats"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return StatsStmt{Name: name}, nil
	case p.matchKw("validate"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return ValidateStmt{Name: name}, nil
	case p.matchKw("begin"):
		return BeginStmt{}, nil
	case p.matchKw("commit"):
		return CommitStmt{}, nil
	case p.matchKw("rollback"):
		return RollbackStmt{}, nil
	default:
		return nil, fmt.Errorf("query: unknown statement start %q at %d", p.peek().text, p.peek().pos)
	}
}

func (p *parser) parseCreate() (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	st := CreateStmt{Name: name}
	for {
		an, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ad := AttrDef{Name: an}
		if p.matchSym(":") {
			kn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			k, ok := value.ParseKind(kn)
			if !ok {
				return nil, fmt.Errorf("query: unknown kind %q", kn)
			}
			ad.Kind = k
		}
		st.Attrs = append(st.Attrs, ad)
		if p.matchSym(",") {
			continue
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		break
	}
	for {
		switch {
		case p.matchKw("order"):
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			for {
				an, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				st.Order = append(st.Order, an)
				if p.matchSym(",") {
					continue
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				break
			}
		case p.matchKw("fd"):
			lhs, rhs, err := p.parseDep("->")
			if err != nil {
				return nil, err
			}
			st.FDs = append(st.FDs, [2][]string{lhs, rhs})
		case p.matchKw("mvd"):
			lhs, rhs, err := p.parseDep("->->")
			if err != nil {
				return nil, err
			}
			st.MVDs = append(st.MVDs, [2][]string{lhs, rhs})
		default:
			return st, nil
		}
	}
}

func (p *parser) parseDep(arrow string) (lhs, rhs []string, err error) {
	for {
		a, err := p.expectIdent()
		if err != nil {
			return nil, nil, err
		}
		lhs = append(lhs, a)
		if p.matchSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(arrow); err != nil {
		return nil, nil, err
	}
	for {
		a, err := p.expectIdent()
		if err != nil {
			return nil, nil, err
		}
		rhs = append(rhs, a)
		if p.matchSym(",") {
			continue
		}
		break
	}
	return lhs, rhs, nil
}

func (p *parser) parseNameValues() (string, [][]value.Atom, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", nil, err
	}
	if err := p.expectKw("values"); err != nil {
		return "", nil, err
	}
	var rows [][]value.Atom
	for {
		if err := p.expectSym("("); err != nil {
			return "", nil, err
		}
		var row []value.Atom
		for {
			a, err := p.parseLiteral()
			if err != nil {
				return "", nil, err
			}
			row = append(row, a)
			if p.matchSym(",") {
				continue
			}
			if err := p.expectSym(")"); err != nil {
				return "", nil, err
			}
			break
		}
		rows = append(rows, row)
		if p.matchSym(",") {
			continue
		}
		break
	}
	return name, rows, nil
}

func (p *parser) parseLiteral() (value.Atom, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.i++
		return value.NewString(t.text), nil
	case tokNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Atom{}, fmt.Errorf("query: bad float %q", t.text)
			}
			return value.NewFloat(f), nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Atom{}, fmt.Errorf("query: bad int %q", t.text)
		}
		return value.NewInt(v), nil
	case tokIdent:
		p.i++
		switch strings.ToLower(t.text) {
		case "true":
			return value.NewBool(true), nil
		case "false":
			return value.NewBool(false), nil
		case "null":
			return value.NullAtom(), nil
		}
		// bare identifiers are string atoms (the paper's s1, c1, ...)
		return value.NewString(t.text), nil
	default:
		return value.Atom{}, fmt.Errorf("query: expected literal at %d, got %q", t.pos, t.text)
	}
}

func (p *parser) parseSelect() (Stmt, error) {
	st := SelectStmt{}
	if p.matchKw("flat") {
		st.Flat = true
	}
	if p.matchSym("*") {
		st.Cols = nil
	} else {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if p.matchSym(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if p.matchKw("where") {
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		st.Where = pred
	}
	if p.matchKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.OrderBy = attr
		if p.matchKw("desc") {
			st.Desc = true
		} else {
			p.matchKw("asc")
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	st := UpdateStmt{Name: name}
	for {
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Attr: attr, Val: lit})
		if p.matchSym(",") {
			continue
		}
		break
	}
	if p.matchKw("where") {
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		st.Where = pred
	}
	return st, nil
}

func (p *parser) parseNestLike(nest bool) (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	attr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if nest {
		return NestStmt{Name: name, Attr: attr}, nil
	}
	return UnnestStmt{Name: name, Attr: attr}, nil
}

// Predicate grammar: or := and (OR and)* ; and := unary (AND unary)* ;
// unary := NOT unary | '(' or ')' | atom-pred.
func (p *parser) parseOr() (algebra.Pred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKw("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = algebra.Or(left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (algebra.Pred, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.matchKw("and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = algebra.And(left, right)
	}
	return left, nil
}

func (p *parser) parseUnary() (algebra.Pred, error) {
	if p.matchKw("not") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return algebra.Not(inner), nil
	}
	if p.matchSym("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseAtomPred()
}

var cmpOps = map[string]algebra.CmpOp{
	"=": algebra.EQ, "<>": algebra.NE,
	"<": algebra.LT, "<=": algebra.LE,
	">": algebra.GT, ">=": algebra.GE,
}

func (p *parser) parseAtomPred() (algebra.Pred, error) {
	// CARD(attr) op int
	if save := p.save(); p.matchKw("card") {
		if p.matchSym("(") {
			attr, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			opTok := p.next()
			op, ok := cmpOps[opTok.text]
			if !ok {
				return nil, fmt.Errorf("query: expected comparison at %d", opTok.pos)
			}
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			if lit.K != value.Int {
				return nil, fmt.Errorf("query: CARD comparison needs an int")
			}
			return algebra.Card(attr, op, int(lit.Int())), nil
		}
		p.restore(save)
	}
	attr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.matchKw("contains") {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return algebra.Contains(attr, lit), nil
	}
	all := p.matchKw("all")
	opTok := p.next()
	op, ok := cmpOps[opTok.text]
	if !ok {
		return nil, fmt.Errorf("query: expected comparison operator at %d, got %q", opTok.pos, opTok.text)
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	if all {
		return algebra.CmpAll(attr, op, lit), nil
	}
	return algebra.Cmp(attr, op, lit), nil
}
