package query

import (
	"strings"

	"repro/internal/algebra"
	"repro/internal/value"
)

// This file implements the statement printer: String() renders every
// Stmt back into query syntax such that re-parsing yields an identical
// AST. Literals are rendered via algebra.LiteralString, which quotes
// strings and keeps floats distinguishable from ints, so the bare-
// identifier / keyword ambiguities of the surface syntax cannot change
// the atom kinds on the round trip.

func renderRows(b *strings.Builder, rows [][]value.Atom) {
	for i, row := range rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, a := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(algebra.LiteralString(a))
		}
		b.WriteByte(')')
	}
}

func (s CreateStmt) String() string {
	var b strings.Builder
	b.WriteString("create ")
	b.WriteString(s.Name)
	b.WriteString(" (")
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		if a.Kind != value.Null {
			b.WriteByte(':')
			b.WriteString(a.Kind.String())
		}
	}
	b.WriteByte(')')
	if len(s.Order) > 0 {
		b.WriteString(" order (")
		b.WriteString(strings.Join(s.Order, ", "))
		b.WriteByte(')')
	}
	for _, f := range s.FDs {
		b.WriteString(" fd ")
		b.WriteString(strings.Join(f[0], ", "))
		b.WriteString(" -> ")
		b.WriteString(strings.Join(f[1], ", "))
	}
	for _, m := range s.MVDs {
		b.WriteString(" mvd ")
		b.WriteString(strings.Join(m[0], ", "))
		b.WriteString(" ->-> ")
		b.WriteString(strings.Join(m[1], ", "))
	}
	return b.String()
}

func (s DropStmt) String() string { return "drop " + s.Name }

func (s InsertStmt) String() string {
	var b strings.Builder
	b.WriteString("insert into ")
	b.WriteString(s.Name)
	b.WriteString(" values ")
	renderRows(&b, s.Rows)
	return b.String()
}

func (s DeleteStmt) String() string {
	var b strings.Builder
	b.WriteString("delete from ")
	b.WriteString(s.Name)
	b.WriteString(" values ")
	renderRows(&b, s.Rows)
	return b.String()
}

func (s SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if s.Flat {
		b.WriteString("flat ")
	}
	if s.Cols == nil {
		b.WriteByte('*')
	} else {
		b.WriteString(strings.Join(s.Cols, ", "))
	}
	b.WriteString(" from ")
	b.WriteString(s.Name)
	if s.Where != nil {
		b.WriteString(" where ")
		b.WriteString(s.Where.String())
	}
	if s.OrderBy != "" {
		b.WriteString(" order by ")
		b.WriteString(s.OrderBy)
		if s.Desc {
			b.WriteString(" desc")
		}
	}
	return b.String()
}

func (s UpdateStmt) String() string {
	var b strings.Builder
	b.WriteString("update ")
	b.WriteString(s.Name)
	b.WriteString(" set ")
	for i, c := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Attr)
		b.WriteString(" = ")
		b.WriteString(algebra.LiteralString(c.Val))
	}
	if s.Where != nil {
		b.WriteString(" where ")
		b.WriteString(s.Where.String())
	}
	return b.String()
}

func (s ExplainStmt) String() string { return "explain " + s.Inner.String() }

func (s NestStmt) String() string   { return "nest " + s.Name + " on " + s.Attr }
func (s UnnestStmt) String() string { return "unnest " + s.Name + " on " + s.Attr }
func (s JoinStmt) String() string   { return "join " + s.Left + ", " + s.Right }
func (s ShowStmt) String() string   { return "show " + s.Name }
func (s StatsStmt) String() string  { return "stats " + s.Name }
func (s ValidateStmt) String() string {
	return "validate " + s.Name
}
func (BeginStmt) String() string    { return "begin" }
func (CommitStmt) String() string   { return "commit" }
func (RollbackStmt) String() string { return "rollback" }
