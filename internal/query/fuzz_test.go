package query

import (
	"reflect"
	"testing"
)

// fuzzSeeds covers every statement form and the grammar's corners:
// quoted strings with escapes, typed attributes, predicates with all
// connectives, CARD, CONTAINS, ALL, keyword-flavored identifiers, and
// numeric edge shapes.
var fuzzSeeds = []string{
	"create r (a, b)",
	"create r (a:int, b:string, c:float, d:bool) order (b, a, c, d)",
	"create r (a, b, c) fd a -> b, c mvd a ->-> b",
	"drop r",
	"insert into r values (1, 2.5, \"x\", true, null)",
	"insert into r values (s1, c1), (s2, c2)",
	"delete from r values (-3, \"a\\\"b\\\\c\")",
	"select * from r",
	"select flat a, b from r where a = 1 and b <> 2 or not (c < 3)",
	"select a from r where card(b) >= 2",
	"select a from r where b contains \"x\" and c all > 0",
	"select a from r where a = true and b = null",
	"nest r on a",
	"unnest r on a",
	"join r, s",
	"show r",
	"stats r",
	"validate r",
	"select * from r where a = 0.5",
	"select * from r where a = -0",
	"insert into r values (007, 1., \"\")",
	"select * from r where card = 1",
	"select flat flat from r",
	"-- comment only",
	"select * from r where a = \"true\"",
	"update r set a = 1",
	"update r set a = 1, b = \"x\" where c contains y and a >= 0",
	"explain select flat * from r where a >= 1 and a < 10",
	"explain update r set a = 2 where a = 1",
	"select * from r where a >= 1 and a < 10 order by a",
	"select flat a, b from r where b contains \"x\" order by a desc",
	"select * from r order by a asc",
	"update order set order = 1",
}

// FuzzParse asserts two properties over arbitrary input: the parser
// never panics, and any statement it accepts round-trips — printing it
// with String() and re-parsing yields an identical AST.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		st, err := Parse(in)
		if err != nil {
			return // rejected input is fine; only panics are bugs
		}
		text := st.String()
		st2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed form does not re-parse\ninput: %q\nprinted: %q\nerror: %v", in, text, err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("round trip changed the AST\ninput: %q\nprinted: %q\nfirst:  %#v\nsecond: %#v", in, text, st, st2)
		}
		// printing is a fixed point once parsed
		if text2 := st2.String(); text2 != text {
			t.Fatalf("printer not stable: %q then %q", text, text2)
		}
	})
}

// TestStmtStringRoundTripSeeds runs the fuzz property over the seed
// corpus in normal test runs (go test does run seeds, but this keeps
// the property visible even with -run filters).
func TestStmtStringRoundTripSeeds(t *testing.T) {
	for _, in := range fuzzSeeds {
		st, err := Parse(in)
		if err != nil {
			continue
		}
		st2, err := Parse(st.String())
		if err != nil {
			t.Errorf("%q: printed form %q does not re-parse: %v", in, st.String(), err)
			continue
		}
		if !reflect.DeepEqual(st, st2) {
			t.Errorf("%q: round trip changed AST", in)
		}
	}
}
