// Package query implements the NF² data manipulation language the
// paper defers to a companion paper: a small SQL-flavored language
// whose operators are exactly the Section-3 algebra (select, project,
// natural join, set operations) plus NEST and UNNEST, over the engine's
// canonical-form relations.
//
// Statement forms:
//
//	CREATE rel (A:string, B:int, ...) [ORDER (B, A)] [FD A -> B] [MVD A ->-> B]
//	DROP rel
//	INSERT INTO rel VALUES (lit, ...) [, (lit, ...)]...
//	DELETE FROM rel VALUES (lit, ...)
//	SELECT [FLAT] * | a, b FROM rel [WHERE pred] [ORDER BY attr [DESC]]
//	UPDATE rel SET a = lit [, b = lit]... [WHERE pred]
//	EXPLAIN select-or-update-stmt
//	NEST rel ON attr
//	UNNEST rel ON attr
//	JOIN rel1, rel2
//	SHOW rel
//	STATS rel
//	VALIDATE rel
//
// Predicates: attr op literal, attr CONTAINS literal,
// CARD(attr) op int, combined with AND / OR / NOT and parentheses.
// op ∈ { = , <>, <, <=, >, >= }.
//
// SELECT and UPDATE reads are planned (internal/query/plan.go): a
// conjunct on the relation's fixed attribute routes through the durable
// hash index (equality) or the B+tree range index (inequalities) when
// the engine reports one; EXPLAIN shows the chosen access path.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // quoted literal
	tokNumber
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer splits the input into tokens.
type lexer struct {
	in   string
	pos  int
	toks []token
}

var symbols = []string{
	"->->", "->", "<=", ">=", "<>", "(", ")", ",", "*", "=", "<", ">", ":",
}

func lex(in string) ([]token, error) {
	lx := &lexer{in: in}
	for {
		lx.skipSpace()
		if lx.pos >= len(lx.in) {
			lx.toks = append(lx.toks, token{kind: tokEOF, pos: lx.pos})
			return lx.toks, nil
		}
		c := lx.in[lx.pos]
		switch {
		case c == '"':
			if err := lx.lexString(); err != nil {
				return nil, err
			}
		case c == '-' && lx.pos+1 < len(lx.in) && lx.in[lx.pos+1] == '-':
			// comment to end of line
			for lx.pos < len(lx.in) && lx.in[lx.pos] != '\n' {
				lx.pos++
			}
		case isDigit(c) || (c == '-' && lx.pos+1 < len(lx.in) && isDigit(lx.in[lx.pos+1])):
			lx.lexNumber()
		case isIdentStart(c):
			lx.lexIdent()
		default:
			if !lx.lexSymbol() {
				return nil, fmt.Errorf("query: unexpected character %q at %d", c, lx.pos)
			}
		}
	}
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.in) && unicode.IsSpace(rune(lx.in[lx.pos])) {
		lx.pos++
	}
}

func (lx *lexer) lexString() error {
	start := lx.pos
	lx.pos++ // opening quote
	var b strings.Builder
	for lx.pos < len(lx.in) {
		c := lx.in[lx.pos]
		if c == '\\' && lx.pos+1 < len(lx.in) {
			lx.pos++
			b.WriteByte(lx.in[lx.pos])
			lx.pos++
			continue
		}
		if c == '"' {
			lx.pos++
			lx.toks = append(lx.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		lx.pos++
	}
	return fmt.Errorf("query: unterminated string at %d", start)
}

func (lx *lexer) lexNumber() {
	start := lx.pos
	if lx.in[lx.pos] == '-' {
		lx.pos++
	}
	for lx.pos < len(lx.in) && (isDigit(lx.in[lx.pos]) || lx.in[lx.pos] == '.') {
		lx.pos++
	}
	lx.toks = append(lx.toks, token{kind: tokNumber, text: lx.in[start:lx.pos], pos: start})
}

func (lx *lexer) lexIdent() {
	start := lx.pos
	for lx.pos < len(lx.in) && isIdentPart(lx.in[lx.pos]) {
		lx.pos++
	}
	lx.toks = append(lx.toks, token{kind: tokIdent, text: lx.in[start:lx.pos], pos: start})
}

func (lx *lexer) lexSymbol() bool {
	rest := lx.in[lx.pos:]
	for _, s := range symbols {
		if strings.HasPrefix(rest, s) {
			lx.toks = append(lx.toks, token{kind: tokSymbol, text: s, pos: lx.pos})
			lx.pos += len(s)
			return true
		}
	}
	return false
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
