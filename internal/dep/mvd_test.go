package dep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/tuple"
)

func mvd(lhs, rhs string) MVD {
	return NewMVD(split(lhs), split(rhs))
}

func TestMVDBasics(t *testing.T) {
	m := mvd("A", "B,C")
	if m.String() != "A ->-> B,C" {
		t.Errorf("String = %q", m.String())
	}
	u := schema.NewAttrSet("A", "B", "C", "D")
	c := m.Complement(u)
	if !c.Rhs.Equal(schema.NewAttrSet("D")) {
		t.Errorf("Complement = %v", c)
	}
	if m.TrivialIn(u) {
		t.Error("non-trivial MVD reported trivial")
	}
	if !mvd("A", "A").TrivialIn(u) {
		t.Error("Rhs ⊆ Lhs should be trivial")
	}
	if !mvd("A", "B,C,D").TrivialIn(u) {
		t.Error("Lhs ∪ Rhs = U should be trivial")
	}
}

func TestSatisfiesMVDPaperScenario(t *testing.T) {
	// Fig. 1 R1 as 1NF: Student ->-> Course | Club holds.
	s := schema.MustOf("Student", "Course", "Club")
	var rows []tuple.Flat
	for _, c := range []string{"c1", "c2", "c3"} {
		rows = append(rows, tuple.FlatOfStrings("s1", c, "b1"))
	}
	for _, c := range []string{"c1", "c2", "c3"} {
		rows = append(rows, tuple.FlatOfStrings("s2", c, "b2"))
	}
	m := mvd("Student", "Course")
	if !SatisfiesMVD(s, rows, m) {
		t.Error("Student ->-> Course should hold on R1*")
	}
	// R2 scenario: Student ->-> Course fails once semesters mix.
	s2 := schema.MustOf("Student", "Course", "Semester")
	rows2 := []tuple.Flat{
		tuple.FlatOfStrings("s2", "c1", "t1"),
		tuple.FlatOfStrings("s2", "c2", "t1"),
		tuple.FlatOfStrings("s2", "c3", "t2"),
	}
	if SatisfiesMVD(s2, rows2, mvd("Student", "Course")) {
		t.Error("Student ->-> Course must fail on R2* (course c3 only in t2)")
	}
}

func TestSatisfiesMVDCartesianGroup(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	// group a1: B x C = {b1,b2} x {c1,c2} complete product — holds
	rows := []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1", "c1"),
		tuple.FlatOfStrings("a1", "b1", "c2"),
		tuple.FlatOfStrings("a1", "b2", "c1"),
		tuple.FlatOfStrings("a1", "b2", "c2"),
	}
	if !SatisfiesMVD(s, rows, mvd("A", "B")) {
		t.Error("complete product should satisfy MVD")
	}
	if !SatisfiesMVD(s, rows[:1], mvd("A", "B")) {
		t.Error("single tuple satisfies MVD")
	}
	if SatisfiesMVD(s, rows[:3], mvd("A", "B")) {
		t.Error("incomplete product should violate MVD")
	}
}

func TestFDsAsMVDs(t *testing.T) {
	ms := FDsAsMVDs([]FD{fd("A", "B")})
	if len(ms) != 1 || ms[0].String() != "A ->-> B" {
		t.Errorf("FDsAsMVDs = %v", ms)
	}
}

func TestIs4NF(t *testing.T) {
	u := schema.NewAttrSet("A", "B", "C")
	// MVD A->->B with A not a superkey: violates 4NF
	if Is4NF(u, nil, []MVD{mvd("A", "B")}) {
		t.Error("non-key MVD should violate 4NF")
	}
	// same MVD but A is a key: 4NF
	if !Is4NF(u, []FD{fd("A", "B,C")}, []MVD{mvd("A", "B")}) {
		t.Error("key MVD should be 4NF")
	}
	// trivial MVD ignored
	if !Is4NF(u, nil, []MVD{mvd("A", "B,C")}) {
		t.Error("trivial MVD should not violate 4NF")
	}
	if !Is4NF(u, nil, nil) {
		t.Error("no dependencies is 4NF")
	}
}

func TestIsBCNFAndIs3NF(t *testing.T) {
	u := schema.NewAttrSet("A", "B", "C")
	// A->B with key A..: A->B makes A determine B only; key is {A,C}
	fds := []FD{fd("A", "B")}
	if IsBCNF(u, fds) {
		t.Error("A->B with key AC violates BCNF")
	}
	ok, err := Is3NF(u, fds)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("A->B with key AC violates 3NF (B not prime)")
	}
	// classic 3NF-but-not-BCNF: U = {S,J,T}, FDs: SJ->T, T->J
	u2 := schema.NewAttrSet("S", "J", "T")
	fds2 := []FD{fd("S,J", "T"), fd("T", "J")}
	if IsBCNF(u2, fds2) {
		t.Error("SJT should violate BCNF")
	}
	ok2, err := Is3NF(u2, fds2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Error("SJT should be 3NF (J is prime)")
	}
	if !IsBCNF(u, []FD{fd("A", "B,C")}) {
		t.Error("key FD should be BCNF")
	}
}

func TestDecompose4NF(t *testing.T) {
	u := schema.NewAttrSet("Student", "Course", "Club")
	// Student ->-> Course (and by complement ->-> Club), Student not a key.
	frags := Decompose4NF(u, nil, []MVD{NewMVD([]string{"Student"}, []string{"Course"})})
	if len(frags) != 2 {
		t.Fatalf("fragments = %v", frags)
	}
	found := map[string]bool{}
	for _, f := range frags {
		found[f.String()] = true
	}
	if !found["{Course,Student}"] || !found["{Club,Student}"] {
		t.Errorf("fragments = %v", frags)
	}
	// already 4NF: no split
	frags2 := Decompose4NF(u, []FD{NewFD([]string{"Student"}, []string{"Course", "Club"})},
		[]MVD{NewMVD([]string{"Student"}, []string{"Course"})})
	if len(frags2) != 1 {
		t.Errorf("4NF schema split: %v", frags2)
	}
}

// Property: 4NF decomposition is lossless — joining the projections of
// random MVD-satisfying relations recovers the original.
func TestDecompose4NFLossless(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// build an MVD-satisfying relation: per A value, product of
		// random B and C sets.
		var rows []tuple.Flat
		seen := map[string]bool{}
		for a := 0; a < 1+rng.Intn(3); a++ {
			nb, nc := 1+rng.Intn(3), 1+rng.Intn(3)
			for b := 0; b < nb; b++ {
				for c := 0; c < nc; c++ {
					fl := tuple.FlatOfStrings(
						string(rune('a'+a)), string(rune('p'+b+3*a)), string(rune('x'+c+3*a)))
					if !seen[fl.Key()] {
						seen[fl.Key()] = true
						rows = append(rows, fl)
					}
				}
			}
		}
		m := mvd("A", "B")
		if !SatisfiesMVD(s, rows, m) {
			return false
		}
		// project to AB and AC, then join on A, compare to rows
		type pair struct{ a, v string }
		ab := map[pair]bool{}
		ac := map[pair]bool{}
		for _, r := range rows {
			ab[pair{r[0].Str(), r[1].Str()}] = true
			ac[pair{r[0].Str(), r[2].Str()}] = true
		}
		joined := map[string]bool{}
		for p1 := range ab {
			for p2 := range ac {
				if p1.a == p2.a {
					joined[tuple.FlatOfStrings(p1.a, p1.v, p2.v).Key()] = true
				}
			}
		}
		if len(joined) != len(rows) {
			return false
		}
		for _, r := range rows {
			if !joined[r.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
