package dep

import (
	"sort"

	"repro/internal/schema"
)

// DependencyBasis computes the dependency basis of the attribute set X
// within the universe U, given a set of MVDs (FDs lifted via
// FDsAsMVDs if desired): the unique partition of U − X such that every
// MVD X ->-> Y implied by the given set has Y − X equal to a union of
// partition blocks (Beeri's algorithm, via Fagin 1977 — the paper's
// [2]). It is the completeness tool behind Section 3.4's reasoning
// about which nestings an MVD licenses.
func DependencyBasis(x schema.AttrSet, universe schema.AttrSet, mvds []MVD) []schema.AttrSet {
	basis := []schema.AttrSet{}
	rest := universe.Minus(x)
	if rest.Len() == 0 {
		return basis
	}
	basis = append(basis, rest)
	for changed := true; changed; {
		changed = false
		for _, m := range mvds {
			// consider both the MVD and its complement; both are
			// implied and refine the basis symmetrically
			for _, w := range []schema.AttrSet{m.Rhs, universe.Minus(m.Lhs).Minus(m.Rhs)} {
				for i := 0; i < len(basis); i++ {
					b := basis[i]
					if b.Intersect(m.Lhs).Len() != 0 {
						continue // V must be disjoint from the block
					}
					// require V reachable: V ⊆ X ∪ (U − B)... the
					// standard condition is simply V ∩ B = ∅
					inter := b.Intersect(w)
					if inter.Len() == 0 || inter.Equal(b) {
						continue
					}
					basis[i] = inter
					basis = append(basis, b.Minus(w))
					changed = true
				}
			}
		}
	}
	sort.Slice(basis, func(i, j int) bool { return basis[i].String() < basis[j].String() })
	return basis
}

// ImpliesMVD reports whether the MVD set logically implies X ->-> Y
// within the universe: Y − X must be a union of dependency-basis
// blocks of X. (Complete for consequences of MVDs alone; FDs may be
// lifted with FDsAsMVDs, which is sound but reflects only their MVD
// content.)
func ImpliesMVD(mvds []MVD, m MVD, universe schema.AttrSet) bool {
	target := m.Rhs.Minus(m.Lhs)
	if target.Len() == 0 {
		return true // trivial
	}
	basis := DependencyBasis(m.Lhs, universe, mvds)
	cover := schema.NewAttrSet()
	for _, b := range basis {
		if b.SubsetOf(target) {
			cover = cover.Union(b)
		}
	}
	return cover.Equal(target)
}
