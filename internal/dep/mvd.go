package dep

import (
	"strings"

	"repro/internal/schema"
	"repro/internal/tuple"
)

// MVD is a multivalued dependency Lhs ->-> Rhs (Fagin 1977, the
// paper's [2]). By the complementation rule Lhs ->-> U − Lhs − Rhs
// holds whenever Lhs ->-> Rhs does; Complement materializes it. The
// paper writes the pair as F ->-> E1 | E2.
type MVD struct {
	Lhs schema.AttrSet
	Rhs schema.AttrSet
}

// NewMVD builds an MVD from attribute names.
func NewMVD(lhs []string, rhs []string) MVD {
	return MVD{Lhs: schema.NewAttrSet(lhs...), Rhs: schema.NewAttrSet(rhs...)}
}

// String renders the MVD as A ->-> B,C.
func (m MVD) String() string {
	return strings.Join(m.Lhs.Sorted(), ",") + " ->-> " + strings.Join(m.Rhs.Sorted(), ",")
}

// Complement returns the complementary MVD within the universe:
// Lhs ->-> U − Lhs − Rhs.
func (m MVD) Complement(universe schema.AttrSet) MVD {
	return MVD{Lhs: m.Lhs.Clone(), Rhs: universe.Minus(m.Lhs).Minus(m.Rhs)}
}

// TrivialIn reports whether the MVD is trivial in the universe: Rhs ⊆
// Lhs or Lhs ∪ Rhs = U.
func (m MVD) TrivialIn(universe schema.AttrSet) bool {
	if m.Rhs.SubsetOf(m.Lhs) {
		return true
	}
	return m.Lhs.Union(m.Rhs).Equal(universe)
}

// SatisfiesMVD checks Lhs ->-> Rhs against flat tuples: for every pair
// of tuples t, u agreeing on Lhs there must exist a tuple v with
// v[Lhs]=t[Lhs], v[Rhs]=t[Rhs], v[rest]=u[rest]. Implemented by
// grouping on Lhs and verifying each group is the cartesian product of
// its Rhs-projection and rest-projection.
func SatisfiesMVD(s *schema.Schema, flats []tuple.Flat, m MVD) bool {
	universe := schema.NewAttrSet(s.Names()...)
	rest := universe.Minus(m.Lhs).Minus(m.Rhs)
	lidx := indices(s, m.Lhs)
	ridx := indices(s, m.Rhs)
	eidx := indices(s, rest)

	type group struct {
		rvals map[string]bool
		evals map[string]bool
		pairs map[string]bool
	}
	groups := make(map[string]*group)
	for _, fl := range flats {
		lk := keyAt(fl, lidx)
		g, ok := groups[lk]
		if !ok {
			g = &group{rvals: map[string]bool{}, evals: map[string]bool{}, pairs: map[string]bool{}}
			groups[lk] = g
		}
		rk, ek := keyAt(fl, ridx), keyAt(fl, eidx)
		g.rvals[rk] = true
		g.evals[ek] = true
		g.pairs[rk+"\x1c"+ek] = true
	}
	for _, g := range groups {
		if len(g.pairs) != len(g.rvals)*len(g.evals) {
			return false
		}
	}
	return true
}

// FDsAsMVDs lifts FDs to MVDs (every FD X->Y implies the MVD X->->Y).
func FDsAsMVDs(fds []FD) []MVD {
	out := make([]MVD, len(fds))
	for i, f := range fds {
		out[i] = MVD{Lhs: f.Lhs.Clone(), Rhs: f.Rhs.Clone()}
	}
	return out
}

// Is4NF reports whether the universe with the given FDs and MVDs is in
// fourth normal form: every non-trivial MVD's left side is a superkey.
// (FDs are included as MVDs per Fagin.) This is the test that the
// paper argues NFRs can "throw away": an NFR keeps the MVD's grouping
// inside one relation instead of decomposing.
func Is4NF(universe schema.AttrSet, fds []FD, mvds []MVD) bool {
	all := append(FDsAsMVDs(fds), mvds...)
	for _, m := range all {
		if m.TrivialIn(universe) {
			continue
		}
		if !IsSuperkey(m.Lhs, universe, fds) {
			return false
		}
	}
	return true
}

// IsBCNF reports whether the universe with the given FDs is in
// Boyce-Codd normal form: every non-trivial FD's left side is a
// superkey.
func IsBCNF(universe schema.AttrSet, fds []FD) bool {
	for _, f := range fds {
		if f.Trivial() {
			continue
		}
		if !IsSuperkey(f.Lhs, universe, fds) {
			return false
		}
	}
	return true
}

// Is3NF reports whether the universe with the given FDs is in third
// normal form: for every non-trivial FD X->A, X is a superkey or A is
// prime (member of some candidate key).
func Is3NF(universe schema.AttrSet, fds []FD) (bool, error) {
	keys, err := CandidateKeys(universe, fds)
	if err != nil {
		return false, err
	}
	prime := schema.NewAttrSet()
	for _, k := range keys {
		prime = prime.Union(k)
	}
	for _, f := range MinimalCover(fds) {
		if f.Trivial() {
			continue
		}
		if IsSuperkey(f.Lhs, universe, fds) {
			continue
		}
		ok := true
		for _, a := range f.Rhs.Sorted() {
			if !prime.Has(a) {
				ok = false
				break
			}
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Decompose4NF splits the universe into 4NF sub-schemas using the
// classical algorithm: pick a violating non-trivial MVD X->->Y, split
// into X∪Y and X∪(U−Y), recurse. It returns the attribute sets of the
// resulting relations. FDs/MVDs are projected naively (dependencies
// whose attributes all fall inside a fragment are kept), which is the
// standard practical approximation.
func Decompose4NF(universe schema.AttrSet, fds []FD, mvds []MVD) []schema.AttrSet {
	all := append(FDsAsMVDs(fds), mvds...)
	for _, m := range all {
		inU := m.Lhs.SubsetOf(universe) && m.Rhs.Intersect(universe).Len() > 0
		if !inU {
			continue
		}
		rhs := m.Rhs.Intersect(universe).Minus(m.Lhs)
		mm := MVD{Lhs: m.Lhs, Rhs: rhs}
		if mm.TrivialIn(universe) {
			continue
		}
		sub := projectFDs(universe, fds)
		if IsSuperkey(mm.Lhs, universe, sub) {
			continue
		}
		left := mm.Lhs.Union(rhs)
		right := universe.Minus(rhs)
		return append(Decompose4NF(left, fds, mvds), Decompose4NF(right, fds, mvds)...)
	}
	return []schema.AttrSet{universe.Clone()}
}

func projectFDs(universe schema.AttrSet, fds []FD) []FD {
	var out []FD
	for _, f := range fds {
		if f.Lhs.SubsetOf(universe) && f.Rhs.SubsetOf(universe) {
			out = append(out, f)
		}
	}
	return out
}
