package dep

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
	"repro/internal/tuple"
	"repro/internal/value"
)

func TestDependencyBasisTextbook(t *testing.T) {
	u := schema.NewAttrSet("A", "B", "C", "D")
	// MVD A ->-> B: basis(A) = {B}, {C,D}
	basis := DependencyBasis(schema.NewAttrSet("A"), u, []MVD{mvd("A", "B")})
	if len(basis) != 2 {
		t.Fatalf("basis = %v", basis)
	}
	got := map[string]bool{}
	for _, b := range basis {
		got[b.String()] = true
	}
	if !got["{B}"] || !got["{C,D}"] {
		t.Errorf("basis = %v", basis)
	}
}

func TestDependencyBasisRefines(t *testing.T) {
	u := schema.NewAttrSet("A", "B", "C", "D")
	// A ->-> B and A ->-> C: basis(A) = {B}, {C}, {D}
	basis := DependencyBasis(schema.NewAttrSet("A"), u,
		[]MVD{mvd("A", "B"), mvd("A", "C")})
	if len(basis) != 3 {
		t.Fatalf("basis = %v", basis)
	}
}

func TestDependencyBasisEmptyRest(t *testing.T) {
	u := schema.NewAttrSet("A", "B")
	basis := DependencyBasis(u, u, nil)
	if len(basis) != 0 {
		t.Errorf("basis of full universe = %v", basis)
	}
}

func TestImpliesMVD(t *testing.T) {
	u := schema.NewAttrSet("A", "B", "C", "D")
	mvds := []MVD{mvd("A", "B")}
	// complementation: A ->-> C,D
	if !ImpliesMVD(mvds, mvd("A", "C,D"), u) {
		t.Error("complement not implied")
	}
	// the MVD itself
	if !ImpliesMVD(mvds, mvd("A", "B"), u) {
		t.Error("self not implied")
	}
	// trivial
	if !ImpliesMVD(mvds, mvd("A", "A"), u) {
		t.Error("trivial not implied")
	}
	// NOT implied: A ->-> C alone (C and D are in one block)
	if ImpliesMVD(mvds, mvd("A", "C"), u) {
		t.Error("A ->-> C wrongly implied")
	}
	// augmentation-flavored consequence: with A->->B and A->->C,
	// A ->-> B,C is a union of blocks
	mvds2 := []MVD{mvd("A", "B"), mvd("A", "C")}
	if !ImpliesMVD(mvds2, mvd("A", "B,C"), u) {
		t.Error("union of blocks not implied")
	}
}

// Soundness property: if ImpliesMVD says X ->-> Y, then every random
// relation satisfying the premise MVDs also satisfies the consequence.
func TestImpliesMVDSoundOnData(t *testing.T) {
	s := schema.MustOf("A", "B", "C", "D")
	u := schema.NewAttrSet("A", "B", "C", "D")
	premises := []MVD{mvd("A", "B")}
	consequences := []MVD{mvd("A", "C,D"), mvd("A", "B")}
	for _, c := range consequences {
		if !ImpliesMVD(premises, c, u) {
			t.Fatalf("%v should be implied", c)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		// build a relation satisfying A ->-> B by construction:
		// per A value, product of a B set and a (C,D) set
		var rows []tuple.Flat
		for a := 0; a < 1+rng.Intn(3); a++ {
			nb, nr := 1+rng.Intn(3), 1+rng.Intn(3)
			for b := 0; b < nb; b++ {
				for r := 0; r < nr; r++ {
					rows = append(rows, tuple.Flat{
						value.NewInt(int64(a)),
						value.NewInt(int64(10 + b + 10*a)),
						value.NewInt(int64(rng.Intn(3))),
						value.NewInt(int64(r + 5*a)),
					})
				}
			}
		}
		if !SatisfiesMVD(s, rows, premises[0]) {
			continue // product construction degenerate; skip
		}
		for _, c := range consequences {
			if !SatisfiesMVD(s, rows, c) {
				t.Fatalf("trial %d: implied MVD %v violated by premise-satisfying data", trial, c)
			}
		}
	}
}
