// Package dep implements the relational dependency theory the paper
// leans on: functional dependencies (FDs), multivalued dependencies
// (MVDs, Fagin 1977 — the paper's [2]), attribute-set closures,
// candidate keys, Bernstein's 3NF synthesis (the paper's [13], assumed
// available in Section 3.4), and normal-form tests.
package dep

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/tuple"
)

// FD is a functional dependency Lhs -> Rhs.
type FD struct {
	Lhs schema.AttrSet
	Rhs schema.AttrSet
}

// NewFD builds an FD from attribute names.
func NewFD(lhs []string, rhs []string) FD {
	return FD{Lhs: schema.NewAttrSet(lhs...), Rhs: schema.NewAttrSet(rhs...)}
}

// String renders the FD as A,B -> C.
func (f FD) String() string {
	return strings.Join(f.Lhs.Sorted(), ",") + " -> " + strings.Join(f.Rhs.Sorted(), ",")
}

// Trivial reports whether Rhs ⊆ Lhs.
func (f FD) Trivial() bool { return f.Rhs.SubsetOf(f.Lhs) }

// Equal reports whether two FDs have the same sides.
func (f FD) Equal(g FD) bool { return f.Lhs.Equal(g.Lhs) && f.Rhs.Equal(g.Rhs) }

// Closure computes the attribute closure X+ of attrs under the FDs
// (the standard fixpoint algorithm).
func Closure(attrs schema.AttrSet, fds []FD) schema.AttrSet {
	out := attrs.Clone()
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			if f.Lhs.SubsetOf(out) && !f.Rhs.SubsetOf(out) {
				out = out.Union(f.Rhs)
				changed = true
			}
		}
	}
	return out
}

// Implies reports whether the FD set logically implies f (via closure).
func Implies(fds []FD, f FD) bool {
	return f.Rhs.SubsetOf(Closure(f.Lhs, fds))
}

// EquivalentCovers reports whether two FD sets imply each other.
func EquivalentCovers(a, b []FD) bool {
	for _, f := range a {
		if !Implies(b, f) {
			return false
		}
	}
	for _, f := range b {
		if !Implies(a, f) {
			return false
		}
	}
	return true
}

// IsSuperkey reports whether attrs functionally determines all of
// universe under fds.
func IsSuperkey(attrs schema.AttrSet, universe schema.AttrSet, fds []FD) bool {
	return universe.SubsetOf(Closure(attrs, fds))
}

// CandidateKeys enumerates all minimal keys of the universe under fds.
// Exponential in the number of attributes; intended for the small
// schemas of this reproduction (it refuses universes larger than 20
// attributes).
func CandidateKeys(universe schema.AttrSet, fds []FD) ([]schema.AttrSet, error) {
	names := universe.Sorted()
	n := len(names)
	if n > 20 {
		return nil, fmt.Errorf("dep: CandidateKeys limited to 20 attributes, got %d", n)
	}
	var keys []schema.AttrSet
	// enumerate subsets by increasing popcount so minimality is a
	// subset check against already-found keys
	bySize := make([][]uint32, n+1)
	for mask := uint32(0); mask < 1<<n; mask++ {
		bySize[popcount(mask)] = append(bySize[popcount(mask)], mask)
	}
	toSet := func(mask uint32) schema.AttrSet {
		s := schema.NewAttrSet()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s.Add(names[i])
			}
		}
		return s
	}
	for size := 0; size <= n; size++ {
		for _, mask := range bySize[size] {
			s := toSet(mask)
			minimal := true
			for _, k := range keys {
				if k.SubsetOf(s) {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			if IsSuperkey(s, universe, fds) {
				keys = append(keys, s)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys, nil
}

func popcount(x uint32) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// MinimalCover computes a canonical (minimal) cover of fds: singleton
// right sides, no extraneous left-side attributes, no redundant FDs.
func MinimalCover(fds []FD) []FD {
	// 1. split right sides
	var work []FD
	for _, f := range fds {
		for _, a := range f.Rhs.Sorted() {
			if f.Lhs.Has(a) {
				continue // drop trivial parts
			}
			work = append(work, FD{Lhs: f.Lhs.Clone(), Rhs: schema.NewAttrSet(a)})
		}
	}
	// 2. remove extraneous LHS attributes
	for i := range work {
		for {
			reduced := false
			for _, a := range work[i].Lhs.Sorted() {
				if work[i].Lhs.Len() == 1 {
					break
				}
				smaller := work[i].Lhs.Minus(schema.NewAttrSet(a))
				if work[i].Rhs.SubsetOf(Closure(smaller, work)) {
					work[i] = FD{Lhs: smaller, Rhs: work[i].Rhs}
					reduced = true
					break
				}
			}
			if !reduced {
				break
			}
		}
	}
	// 3. remove redundant FDs
	out := make([]FD, 0, len(work))
	for i := range work {
		rest := make([]FD, 0, len(work)-1)
		rest = append(rest, out...)
		rest = append(rest, work[i+1:]...)
		if !Implies(rest, work[i]) {
			out = append(out, work[i])
		}
	}
	// 4. dedup identical FDs
	seen := map[string]bool{}
	final := out[:0]
	for _, f := range out {
		k := f.String()
		if !seen[k] {
			seen[k] = true
			final = append(final, f)
		}
	}
	sort.Slice(final, func(i, j int) bool { return final[i].String() < final[j].String() })
	return final
}

// SatisfiesFD checks the FD against the flat tuples of a relation: no
// two tuples agreeing on Lhs may disagree on Rhs.
func SatisfiesFD(s *schema.Schema, flats []tuple.Flat, f FD) bool {
	lidx := indices(s, f.Lhs)
	ridx := indices(s, f.Rhs)
	seen := make(map[string]string, len(flats))
	for _, fl := range flats {
		lk := keyAt(fl, lidx)
		rk := keyAt(fl, ridx)
		if prev, ok := seen[lk]; ok {
			if prev != rk {
				return false
			}
			continue
		}
		seen[lk] = rk
	}
	return true
}

func indices(s *schema.Schema, as schema.AttrSet) []int {
	names := as.Sorted()
	out := make([]int, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			panic(fmt.Sprintf("dep: unknown attribute %q", n))
		}
		out = append(out, i)
	}
	return out
}

func keyAt(f tuple.Flat, idx []int) string {
	var b strings.Builder
	for k, i := range idx {
		if k > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteByte(byte(f[i].K))
		b.WriteString(f[i].String())
	}
	return b.String()
}
