package dep

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
)

func TestSynthesize3NFBasic(t *testing.T) {
	// A->B, B->C over {A,B,C}: fragments {A,B} key A and {B,C} key B;
	// {A,B} contains candidate key A, so no extra key fragment.
	u := schema.NewAttrSet("A", "B", "C")
	frags, err := Synthesize3NF(u, []FD{fd("A", "B"), fd("B", "C")})
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 2 {
		t.Fatalf("fragments = %+v", frags)
	}
	got := map[string]string{}
	for _, f := range frags {
		got[f.Attrs.String()] = f.Key.String()
	}
	if got["{A,B}"] != "{A}" || got["{B,C}"] != "{B}" {
		t.Errorf("fragments = %v", got)
	}
}

func TestSynthesize3NFAddsKeyFragment(t *testing.T) {
	// A->B over {A,B,C}: candidate key {A,C}; no fragment contains it,
	// so synthesis must add a key fragment.
	u := schema.NewAttrSet("A", "B", "C")
	frags, err := Synthesize3NF(u, []FD{fd("A", "B")})
	if err != nil {
		t.Fatal(err)
	}
	var hasKeyFrag bool
	keys, _ := CandidateKeys(u, []FD{fd("A", "B")})
	for _, f := range frags {
		for _, k := range keys {
			if k.SubsetOf(f.Attrs) {
				hasKeyFrag = true
			}
		}
	}
	if !hasKeyFrag {
		t.Errorf("no fragment contains a candidate key: %+v", frags)
	}
	// all attributes covered
	all := schema.NewAttrSet()
	for _, f := range frags {
		all = all.Union(f.Attrs)
	}
	if !all.Equal(u) {
		t.Errorf("attributes lost: %v", all)
	}
}

func TestSynthesize3NFNoFDs(t *testing.T) {
	u := schema.NewAttrSet("A", "B")
	frags, err := Synthesize3NF(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || !frags[0].Attrs.Equal(u) {
		t.Errorf("fragments = %+v", frags)
	}
}

func TestSynthesize3NFSubsumption(t *testing.T) {
	// A->B and A,B->C: cover reduces to A->B, A->C (or AB->C minimal);
	// fragments must not duplicate subsets.
	u := schema.NewAttrSet("A", "B", "C")
	frags, err := Synthesize3NF(u, []FD{fd("A", "B"), fd("A", "C"), fd("A", "B,C")})
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || !frags[0].Attrs.Equal(u) {
		t.Errorf("fragments = %+v", frags)
	}
}

// Property: every synthesized fragment is in 3NF with respect to its
// embedded FDs, fragments cover the universe, and dependencies are
// preserved (the union of embedded FDs is a cover of the input).
func TestSynthesize3NFProperties(t *testing.T) {
	names := []string{"A", "B", "C", "D", "E"}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		u := schema.NewAttrSet(names...)
		var fds []FD
		nf := 1 + rng.Intn(4)
		for i := 0; i < nf; i++ {
			l := schema.NewAttrSet(names[rng.Intn(5)])
			if rng.Intn(2) == 0 {
				l.Add(names[rng.Intn(5)])
			}
			r := schema.NewAttrSet(names[rng.Intn(5)])
			f := FD{Lhs: l, Rhs: r.Minus(l)}
			if f.Rhs.Len() == 0 {
				continue
			}
			fds = append(fds, f)
		}
		frags, err := Synthesize3NF(u, fds)
		if err != nil {
			t.Fatal(err)
		}
		// coverage
		all := schema.NewAttrSet()
		var embedded []FD
		for _, f := range frags {
			all = all.Union(f.Attrs)
			embedded = append(embedded, f.FDs...)
			ok, err := Is3NF(f.Attrs, projectFDs(f.Attrs, MinimalCover(fds)))
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: fragment %v not 3NF (fds %v)", trial, f.Attrs, fds)
			}
		}
		if !all.Equal(u) {
			t.Fatalf("trial %d: universe not covered: %v", trial, all)
		}
		// dependency preservation
		for _, f := range fds {
			if !Implies(embedded, f) {
				t.Fatalf("trial %d: dependency %v lost (embedded %v)", trial, f, embedded)
			}
		}
		// losslessness proxy: some fragment contains a candidate key
		keys, err := CandidateKeys(u, fds)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, fr := range frags {
			for _, k := range keys {
				if k.SubsetOf(fr.Attrs) {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("trial %d: no fragment contains a candidate key (fds %v, frags %+v)", trial, fds, frags)
		}
	}
}
