package dep

import (
	"sort"

	"repro/internal/schema"
)

// Synthesized is one relation schema produced by 3NF synthesis.
type Synthesized struct {
	Attrs schema.AttrSet
	// Key is the synthesized key of the fragment (the LHS of the FD
	// group that produced it, or a candidate key fragment added to
	// guarantee losslessness).
	Key schema.AttrSet
	// FDs are the cover FDs embedded in this fragment.
	FDs []FD
}

// Synthesize3NF implements Bernstein's third-normal-form synthesis
// (the paper's reference [13]): compute a minimal cover, group FDs by
// left side, emit one relation per group, add a key relation if no
// fragment contains a candidate key, and drop fragments subsumed by
// others. Section 3.4 of the paper assumes "all the relations are in
// 3NF, which are mechanically obtained [13]" — this is that mechanism.
func Synthesize3NF(universe schema.AttrSet, fds []FD) ([]Synthesized, error) {
	cover := MinimalCover(fds)

	// group by left side
	groups := map[string][]FD{}
	var order []string
	for _, f := range cover {
		k := f.Lhs.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], f)
	}
	sort.Strings(order)

	var out []Synthesized
	for _, k := range order {
		fs := groups[k]
		attrs := fs[0].Lhs.Clone()
		for _, f := range fs {
			attrs = attrs.Union(f.Rhs)
		}
		out = append(out, Synthesized{Attrs: attrs, Key: fs[0].Lhs.Clone(), FDs: fs})
	}

	// attributes mentioned in no FD still belong to the schema: attach
	// them to a universal-key fragment
	mentioned := schema.NewAttrSet()
	for _, f := range fds {
		mentioned = mentioned.Union(f.Lhs).Union(f.Rhs)
	}
	loose := universe.Minus(mentioned)

	// ensure some fragment contains a candidate key of the universe
	keys, err := CandidateKeys(universe, fds)
	if err != nil {
		return nil, err
	}
	hasKey := false
	if len(keys) > 0 && loose.Len() == 0 {
		for _, frag := range out {
			for _, key := range keys {
				if key.SubsetOf(frag.Attrs) {
					hasKey = true
					break
				}
			}
			if hasKey {
				break
			}
		}
	}
	if !hasKey {
		var key schema.AttrSet
		if len(keys) > 0 {
			key = keys[0].Clone()
		} else {
			key = universe.Clone()
		}
		key = key.Union(loose)
		out = append(out, Synthesized{Attrs: key.Clone(), Key: key})
	}

	// drop fragments whose attributes are a subset of another's,
	// migrating their embedded FDs to the subsuming fragment so the
	// synthesis stays dependency-preserving
	drop := make([]bool, len(out))
	for i := range out {
		for j := range out {
			if i == j || drop[i] || drop[j] {
				continue
			}
			if out[i].Attrs.SubsetOf(out[j].Attrs) && (!out[j].Attrs.SubsetOf(out[i].Attrs) || j < i) {
				out[j].FDs = append(out[j].FDs, out[i].FDs...)
				drop[i] = true
			}
		}
	}
	var final []Synthesized
	for i, f := range out {
		if !drop[i] {
			final = append(final, f)
		}
	}
	return final, nil
}
