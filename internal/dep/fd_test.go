package dep

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/tuple"
)

func fd(lhs, rhs string) FD {
	return NewFD(split(lhs), split(rhs))
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}

func TestFDBasics(t *testing.T) {
	f := fd("A,B", "C")
	if f.String() != "A,B -> C" {
		t.Errorf("String = %q", f.String())
	}
	if f.Trivial() {
		t.Error("non-trivial FD reported trivial")
	}
	if !fd("A,B", "A").Trivial() {
		t.Error("trivial FD not detected")
	}
	if !f.Equal(fd("B,A", "C")) {
		t.Error("Equal should ignore order")
	}
	if f.Equal(fd("A", "C")) {
		t.Error("Equal false positive")
	}
}

func TestClosure(t *testing.T) {
	fds := []FD{fd("A", "B"), fd("B", "C"), fd("C,D", "E")}
	got := Closure(schema.NewAttrSet("A"), fds)
	if !got.Equal(schema.NewAttrSet("A", "B", "C")) {
		t.Errorf("A+ = %v", got)
	}
	got = Closure(schema.NewAttrSet("A", "D"), fds)
	if !got.Equal(schema.NewAttrSet("A", "B", "C", "D", "E")) {
		t.Errorf("AD+ = %v", got)
	}
}

func TestImpliesAndCovers(t *testing.T) {
	fds := []FD{fd("A", "B"), fd("B", "C")}
	if !Implies(fds, fd("A", "C")) {
		t.Error("transitivity not derived")
	}
	if Implies(fds, fd("C", "A")) {
		t.Error("reverse implied")
	}
	if !EquivalentCovers(fds, []FD{fd("A", "B,C"), fd("B", "C")}) {
		t.Error("equivalent covers not detected")
	}
	if EquivalentCovers(fds, []FD{fd("A", "B")}) {
		t.Error("non-equivalent covers reported equivalent")
	}
}

func TestCandidateKeys(t *testing.T) {
	u := schema.NewAttrSet("A", "B", "C")
	// A -> B, B -> C: key {A}
	keys, err := CandidateKeys(u, []FD{fd("A", "B"), fd("B", "C")})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || !keys[0].Equal(schema.NewAttrSet("A")) {
		t.Errorf("keys = %v", keys)
	}
	// cyclic: A->B, B->A with C free: keys {A,C} and {B,C}
	keys, err = CandidateKeys(u, []FD{fd("A", "B"), fd("B", "A")})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	// no FDs: whole universe
	keys, _ = CandidateKeys(u, nil)
	if len(keys) != 1 || !keys[0].Equal(u) {
		t.Errorf("keys = %v", keys)
	}
	// attribute blowup guard
	big := schema.NewAttrSet()
	for i := 0; i < 21; i++ {
		big.Add(string(rune('A' + i)))
	}
	if _, err := CandidateKeys(big, nil); err == nil {
		t.Error("21-attribute universe accepted")
	}
}

func TestIsSuperkey(t *testing.T) {
	u := schema.NewAttrSet("A", "B", "C")
	fds := []FD{fd("A", "B,C")}
	if !IsSuperkey(schema.NewAttrSet("A"), u, fds) {
		t.Error("A should be superkey")
	}
	if IsSuperkey(schema.NewAttrSet("B"), u, fds) {
		t.Error("B should not be superkey")
	}
}

func TestMinimalCover(t *testing.T) {
	// classic: A->BC, B->C, AB->C reduces to A->B, B->C
	fds := []FD{fd("A", "B,C"), fd("B", "C"), fd("A,B", "C")}
	mc := MinimalCover(fds)
	want := []FD{fd("A", "B"), fd("B", "C")}
	if !EquivalentCovers(mc, fds) {
		t.Error("cover not equivalent to original")
	}
	if len(mc) != len(want) {
		t.Fatalf("cover = %v", mc)
	}
	for i := range want {
		if !mc[i].Equal(want[i]) {
			t.Errorf("cover[%d] = %v, want %v", i, mc[i], want[i])
		}
	}
	// extraneous LHS attribute: AB->C with A->C becomes A->C
	mc2 := MinimalCover([]FD{fd("A,B", "C"), fd("A", "C")})
	if len(mc2) != 1 || !mc2[0].Equal(fd("A", "C")) {
		t.Errorf("cover2 = %v", mc2)
	}
	// trivial-only input
	if got := MinimalCover([]FD{fd("A", "A")}); len(got) != 0 {
		t.Errorf("trivial cover = %v", got)
	}
}

func TestSatisfiesFD(t *testing.T) {
	s := schema.MustOf("A", "B", "C")
	rows := []tuple.Flat{
		tuple.FlatOfStrings("a1", "b1", "c1"),
		tuple.FlatOfStrings("a1", "b1", "c2"),
		tuple.FlatOfStrings("a2", "b2", "c1"),
	}
	if !SatisfiesFD(s, rows, fd("A", "B")) {
		t.Error("A->B should hold")
	}
	if SatisfiesFD(s, rows, fd("A", "C")) {
		t.Error("A->C should fail (a1 has c1 and c2)")
	}
	if !SatisfiesFD(s, rows, fd("A,C", "B")) {
		t.Error("AC->B should hold")
	}
	if !SatisfiesFD(s, nil, fd("A", "B")) {
		t.Error("empty relation satisfies everything")
	}
}

func TestSatisfiesFDUnknownAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SatisfiesFD(schema.MustOf("A"), nil, fd("Z", "A"))
}
