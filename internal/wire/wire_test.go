package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("SELECT * FROM enrollment"),
		bytes.Repeat([]byte{0xA5}, 1<<16),
	}
	types := []byte{TQuery, TStats, THello, TMsg, TRows, TErr, TBye}
	var stream []byte
	for i, p := range payloads {
		stream = Append(stream, types[i%len(types)], p)
	}
	// Read back via the io.Reader path.
	r := bytes.NewReader(stream)
	for i, p := range payloads {
		typ, got, err := Read(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != types[i%len(types)] {
			t.Fatalf("frame %d: type 0x%02x, want 0x%02x", i, typ, types[i%len(types)])
		}
		if !bytes.Equal(got, p) && !(len(got) == 0 && len(p) == 0) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := Read(r); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
	// And via the slice path.
	rest := stream
	for i, p := range payloads {
		typ, got, n, err := Decode(rest)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if typ != types[i%len(types)] || (!bytes.Equal(got, p) && !(len(got) == 0 && len(p) == 0)) {
			t.Fatalf("decode %d: wrong frame", i)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
}

// TestTruncated cuts a two-frame stream at every byte offset: every cut
// must yield the whole frames before the cut, then exactly one
// ErrTruncated (or io.EOF at a frame boundary), never a panic and
// never a frame that was not sent.
func TestTruncated(t *testing.T) {
	var stream []byte
	stream = Append(stream, TQuery, []byte("BEGIN"))
	stream = Append(stream, TQuery, []byte("INSERT INTO r VALUES (a, b)"))
	boundaries := map[int]bool{0: true, 4 + frameOverhead + len("BEGIN"): true, len(stream): true}
	for cut := 0; cut <= len(stream); cut++ {
		r := bytes.NewReader(stream[:cut])
		frames := 0
		for {
			_, _, err := Read(r)
			if err == nil {
				frames++
				continue
			}
			if err == io.EOF {
				if !boundaries[cut] {
					t.Fatalf("cut %d: clean EOF inside a frame", cut)
				}
			} else if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: %v, want ErrTruncated", cut, err)
			} else if boundaries[cut] {
				t.Fatalf("cut %d: ErrTruncated at a frame boundary", cut)
			}
			break
		}
	}
}

func TestCorrupted(t *testing.T) {
	base := Append(nil, TQuery, []byte("SHOW r"))
	// Flip every byte of the frame one at a time: each corruption must
	// be rejected (bad length, bad CRC, or — for length-field bytes —
	// truncation), never accepted as the original frame.
	for i := range base {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0xFF
		typ, payload, _, err := Decode(mut)
		if err == nil && typ == TQuery && string(payload) == "SHOW r" {
			t.Fatalf("byte %d flipped: frame accepted unchanged", i)
		}
	}
	// An oversized length prefix is refused before any allocation.
	huge := binary.BigEndian.AppendUint32(nil, uint32(frameOverhead+MaxPayload+1))
	huge = append(huge, make([]byte, 64)...)
	if _, _, err := Read(bytes.NewReader(huge)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrTooLarge", err)
	}
	// A length below the fixed overhead is structurally invalid.
	tiny := binary.BigEndian.AppendUint32(nil, 3)
	tiny = append(tiny, 1, 2, 3)
	if _, _, err := Read(bytes.NewReader(tiny)); !errors.Is(err, ErrFrame) {
		t.Fatalf("undersized frame: %v, want ErrFrame", err)
	}
}

func TestErrHelpers(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteErr(&buf, CodeTxConflict, "conflict"); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := Read(&buf)
	if err != nil || typ != TErr {
		t.Fatalf("read: type 0x%02x err %v", typ, err)
	}
	code, msg := SplitErr(payload)
	if code != CodeTxConflict || msg != "conflict" {
		t.Fatalf("got (%d, %q)", code, msg)
	}
	if code, msg := SplitErr(nil); code != CodeGeneric || msg == "" {
		t.Fatalf("empty payload: got (%d, %q)", code, msg)
	}
}

func TestAppendRejectsOversizedPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append accepted an over-MaxPayload payload")
		}
	}()
	// Do not actually allocate 16 MiB+: a fake-length slice would be
	// invalid Go, so use a real one — it is transient.
	Append(nil, TQuery, make([]byte, MaxPayload+1))
}

// FuzzWireFrame is the codec's adversarial gate: arbitrary bytes must
// never panic the decoder, decoded frames must re-encode to the exact
// consumed bytes, and encoding any (type, payload) must decode back to
// itself.
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{}, byte(TQuery), []byte("SELECT * FROM r"))
	f.Add(Append(nil, TStats, nil), byte(TMsg), []byte("ok"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00}, byte(TErr), []byte{CodeBusy})
	f.Add([]byte{0, 0, 0, 5, 0x01, 0, 0, 0, 0}, byte(THello), []byte{ProtoVersion})
	f.Add(bytes.Repeat([]byte{0x00}, 12), byte(TBye), []byte{})
	f.Fuzz(func(t *testing.T, raw []byte, typ byte, payload []byte) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		// 1. Arbitrary bytes through both decode paths: no panic, and
		// the two paths agree frame-for-frame.
		sTyp, sPayload, n, sErr := Decode(raw)
		rTyp, rPayload, rErr := Read(bytes.NewReader(raw))
		if (sErr == nil) != (rErr == nil && rErr != io.EOF) {
			// Decode treats a clean empty prefix as truncated while Read
			// reports io.EOF; both are rejections.
			if !(sErr != nil && rErr == io.EOF) {
				t.Fatalf("paths disagree: Decode err %v, Read err %v", sErr, rErr)
			}
		}
		if sErr == nil {
			if sTyp != rTyp || !bytes.Equal(sPayload, rPayload) {
				t.Fatalf("paths decoded different frames")
			}
			// 2. A decoded frame re-encodes to exactly its consumed bytes.
			if re := Append(nil, sTyp, sPayload); !bytes.Equal(re, raw[:n]) {
				t.Fatalf("re-encode mismatch")
			}
		}
		// 3. Encode/decode round-trip for the fuzzed (type, payload).
		enc := Append(nil, typ, payload)
		gotTyp, gotPayload, n2, err := Decode(enc)
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if gotTyp != typ || !bytes.Equal(gotPayload, payload) || n2 != len(enc) {
			t.Fatalf("round-trip mismatch: type 0x%02x→0x%02x", typ, gotTyp)
		}
		// 4. Streams never resynchronize onto garbage: appending a valid
		// frame after garbage must not make the garbage parse.
		if len(raw) > 0 && sErr != nil && !errors.Is(sErr, ErrTruncated) {
			if _, _, err := Read(io.MultiReader(bytes.NewReader(raw), bytes.NewReader(enc))); err == nil {
				t.Fatalf("garbage prefix accepted once followed by a valid frame")
			}
		}
	})
}
