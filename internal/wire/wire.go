// Package wire is the network protocol between nfr-server and its
// clients: a stream of length-prefixed, checksummed binary frames over
// any ordered byte transport (TCP in production, net.Pipe in tests).
//
// Frame layout (all integers big-endian):
//
//	u32 length   — bytes after this field: 1 (type) + 4 (crc) + payload
//	u8  type     — frame type (T* constants)
//	u32 crc32c   — CRC-32/Castagnoli over type byte ++ payload
//	payload      — type-specific bytes, at most MaxPayload
//
// The codec is deliberately defensive: a reader facing a truncated,
// oversized, or checksum-corrupted frame gets a typed error and never
// panics or over-allocates — the server closes the connection, the
// file stays untouched. FuzzWireFrame holds that line.
//
// See docs/server.md for the protocol reference: which frame types a
// client may send, what the server answers, and the connection
// lifecycle around them.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/storage"
)

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set; an endpoint receiving a frame
// from the wrong half treats the stream as broken.
const (
	// TQuery carries one NF² query-language statement (UTF-8 text) to
	// execute on the connection's session.
	TQuery byte = 0x01
	// TStats requests server-wide statistics (empty payload).
	TStats byte = 0x02
	// TPing requests a TPong (empty payload).
	TPing byte = 0x03
	// TQuit announces a polite close; the server answers TBye and
	// closes after rolling back any open transaction.
	TQuit byte = 0x04

	// THello is the server's greeting: payload = [ProtoVersion].
	THello byte = 0x80
	// TMsg is a statement's status message (UTF-8 text).
	TMsg byte = 0x81
	// TRows is a statement's relation result, encoded with
	// internal/encoding's WriteRelation format.
	TRows byte = 0x82
	// TErr is a failed statement or refused connection:
	// payload = [code] ++ UTF-8 message. The connection stays usable
	// after a statement error; a CodeBusy TErr right after dial means
	// the connection was refused.
	TErr byte = 0x83
	// TStatsReply carries a JSON-encoded ServerStats.
	TStatsReply byte = 0x84
	// TPong answers TPing (empty payload).
	TPong byte = 0x85
	// TBye is the server's goodbye (payload = optional reason); sent on
	// TQuit, idle timeout, and graceful drain, right before close.
	TBye byte = 0x86
)

// ProtoVersion is the wire-protocol version carried in THello. A
// client refuses to speak to a server announcing a different version.
const ProtoVersion = 1

// MaxPayload bounds a frame's payload so a corrupted or hostile length
// prefix cannot make the reader allocate unbounded memory.
const MaxPayload = 16 << 20

// frameOverhead is the length-field value of an empty-payload frame:
// type byte + crc32.
const frameOverhead = 5

// Typed codec errors. ErrFrame wraps every malformed-frame condition;
// the finer sentinels say which one.
var (
	// ErrFrame is the root of the malformed-frame error family.
	ErrFrame = errors.New("wire: malformed frame")
	// ErrTooLarge marks a length prefix exceeding MaxPayload.
	ErrTooLarge = fmt.Errorf("frame too large: %w", ErrFrame)
	// ErrChecksum marks a frame whose CRC32-C does not match.
	ErrChecksum = fmt.Errorf("frame checksum mismatch: %w", ErrFrame)
	// ErrTruncated marks a stream ending inside a frame.
	ErrTruncated = fmt.Errorf("truncated frame: %w", ErrFrame)
)

// castagnoli is the CRC-32/Castagnoli table (same polynomial as the
// storage layer's page checksums).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Error codes carried by TErr frames: the engine's public error
// taxonomy, flattened to one byte so a client can rebuild errors.Is-able
// errors on its side of the wire.
const (
	CodeGeneric      byte = 0  // anything without a finer class
	CodeNotFound     byte = 1  // engine.ErrNotFound
	CodeExists       byte = 2  // engine.ErrExists
	CodeTypeMismatch byte = 3  // engine.ErrTypeMismatch
	CodeTxDone       byte = 4  // engine.ErrTxDone
	CodeTxConflict   byte = 5  // engine.ErrTxConflict (roll back and retry)
	CodeReadOnly     byte = 6  // engine.ErrReadOnly
	CodeClosed       byte = 7  // engine.ErrClosed
	CodeCorrupt      byte = 8  // engine.ErrCorrupt
	CodeMispaired    byte = 9  // engine.ErrMispaired
	CodeParse        byte = 10 // statement failed to parse
	CodeBusy         byte = 11 // connection refused: at MaxConns
	CodeShutdown     byte = 12 // server is draining; connection closing
)

// ServerStats is the TStatsReply payload (JSON): the storage counters
// the ROADMAP asks the metrics endpoint to expose, plus the server's
// own connection accounting.
type ServerStats struct {
	// Conns is the number of currently served connections; MaxConns the
	// configured limit (0 = unlimited).
	Conns    int `json:"conns"`
	MaxConns int `json:"max_conns"`
	// Accepted and Refused count connections since the server started;
	// Statements counts executed statements across all connections.
	Accepted   int64 `json:"accepted"`
	Refused    int64 `json:"refused"`
	Statements int64 `json:"statements"`
	// LatchWaits is engine.Database.LatchWaits: statement-latch
	// acquisitions that blocked on a concurrent transaction.
	LatchWaits int64 `json:"latch_waits"`
	// Pool and WAL are the storage layer's counters (zero-valued when
	// the served database is in-memory).
	Pool storage.PoolStats `json:"pool"`
	WAL  storage.WALStats  `json:"wal"`
	// Pipelines reports, per relation, how the write pipeline batched
	// concurrent autocommit statements and how contended the shard
	// latches were (engine.Database.PipelineStats).
	Pipelines map[string]RelPipeline `json:"pipelines,omitempty"`
	// Indexes reports, per relation, the durable index footprint by
	// structure (engine.Database.IndexPageStats). Empty for in-memory
	// databases.
	Indexes map[string]RelIndexPages `json:"indexes,omitempty"`
}

// RelPipeline is one relation's write-pipeline and shard-contention
// accounting inside ServerStats — a wire-local mirror of
// engine.RelPipelineStats so the protocol package does not depend on
// the engine.
type RelPipeline struct {
	Shards     int   `json:"shards"`      // heap chains the relation is partitioned across
	Batches    int64 `json:"batches"`     // pipeline batches applied (each ≤ 1 fsync)
	Ops        int64 `json:"ops"`         // autocommit statements that rode a pipeline batch
	MaxBatch   int64 `json:"max_batch"`   // largest batch applied on any shard
	QueuePeak  int64 `json:"queue_peak"`  // high-water pipeline queue depth on any shard
	LatchWaits int64 `json:"latch_waits"` // contended shard-latch acquisitions
}

// RelIndexPages is one relation's index page counts inside ServerStats
// — a wire-local mirror of store.IndexPageCounts so the protocol
// package does not depend on the storage layer's internals.
type RelIndexPages struct {
	HashDir     int `json:"hash_dir"`     // hash directory pages (both hash indexes)
	HashBuckets int `json:"hash_buckets"` // hash bucket pages (both hash indexes)
	BTreeInner  int `json:"btree_inner"`  // B+tree meta + inner pages
	BTreeLeaf   int `json:"btree_leaf"`   // B+tree leaf pages
}

// Append appends one encoded frame to dst and returns the extended
// slice. It panics if payload exceeds MaxPayload — senders own their
// payload sizes; only the receiving side treats violations as data.
func Append(dst []byte, typ byte, payload []byte) []byte {
	if len(payload) > MaxPayload {
		panic(fmt.Sprintf("wire: payload %d exceeds MaxPayload", len(payload)))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameOverhead+len(payload)))
	dst = append(dst, typ)
	crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
	dst = binary.BigEndian.AppendUint32(dst, crc)
	return append(dst, payload...)
}

// Write encodes one frame and writes it to w as a single Write call
// (one frame = one syscall on a net.Conn, keeping frame boundaries
// aligned with packet flushes).
func Write(w io.Writer, typ byte, payload []byte) error {
	buf := Append(make([]byte, 0, 4+frameOverhead+len(payload)), typ, payload)
	_, err := w.Write(buf)
	return err
}

// Read reads exactly one frame from r, verifying its length bounds and
// checksum. The returned payload is a fresh slice owned by the caller.
// A clean end-of-stream before the first length byte returns io.EOF;
// a stream ending anywhere inside a frame returns ErrTruncated.
func Read(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w (length: %v)", ErrTruncated, err)
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length < frameOverhead {
		return 0, nil, fmt.Errorf("length %d < %d: %w", length, frameOverhead, ErrFrame)
	}
	if length > frameOverhead+MaxPayload {
		return 0, nil, fmt.Errorf("length %d: %w", length, ErrTooLarge)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w (body: %v)", ErrTruncated, err)
	}
	typ = body[0]
	wantCRC := binary.BigEndian.Uint32(body[1:5])
	payload = body[5:]
	crc := crc32.Update(crc32.Checksum(body[:1], castagnoli), castagnoli, payload)
	if crc != wantCRC {
		return 0, nil, fmt.Errorf("type 0x%02x: %w", typ, ErrChecksum)
	}
	return typ, payload, nil
}

// Decode decodes the first frame of b, returning how many bytes it
// consumed. It reports the same errors as Read; a b too short to hold
// the full frame returns ErrTruncated (a streaming caller would read
// more and retry).
func Decode(b []byte) (typ byte, payload []byte, n int, err error) {
	if len(b) < 4 {
		return 0, nil, 0, ErrTruncated
	}
	length := binary.BigEndian.Uint32(b[:4])
	if length < frameOverhead {
		return 0, nil, 0, fmt.Errorf("length %d < %d: %w", length, frameOverhead, ErrFrame)
	}
	if length > frameOverhead+MaxPayload {
		return 0, nil, 0, fmt.Errorf("length %d: %w", length, ErrTooLarge)
	}
	if uint32(len(b)-4) < length {
		return 0, nil, 0, ErrTruncated
	}
	body := b[4 : 4+length]
	typ = body[0]
	wantCRC := binary.BigEndian.Uint32(body[1:5])
	payload = append([]byte(nil), body[5:]...)
	crc := crc32.Update(crc32.Checksum(body[:1], castagnoli), castagnoli, payload)
	if crc != wantCRC {
		return 0, nil, 0, fmt.Errorf("type 0x%02x: %w", typ, ErrChecksum)
	}
	return typ, payload, 4 + int(length), nil
}

// AppendErr appends a TErr frame built from code and message.
func AppendErr(dst []byte, code byte, msg string) []byte {
	p := make([]byte, 0, 1+len(msg))
	p = append(p, code)
	p = append(p, msg...)
	return Append(dst, TErr, p)
}

// WriteErr writes a TErr frame built from code and message.
func WriteErr(w io.Writer, code byte, msg string) error {
	p := make([]byte, 0, 1+len(msg))
	p = append(p, code)
	p = append(p, msg...)
	return Write(w, TErr, p)
}

// SplitErr decodes a TErr payload into its code and message. An empty
// payload (malformed, but survivable) decodes as CodeGeneric.
func SplitErr(payload []byte) (code byte, msg string) {
	if len(payload) == 0 {
		return CodeGeneric, "unspecified server error"
	}
	return payload[0], string(payload[1:])
}
