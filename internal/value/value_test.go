package value

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Null: "null", Bool: "bool", Int: "int", Float: "float", String: "string",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{Null, Bool, Int, Float, String} {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v,%v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("frob"); ok {
		t.Error("ParseKind accepted garbage")
	}
	if k, ok := ParseKind("  TEXT "); !ok || k != String {
		t.Errorf("ParseKind(text) = %v,%v", k, ok)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !NullAtom().IsNull() {
		t.Error("NullAtom not null")
	}
	if NewInt(42).Int() != 42 {
		t.Error("Int roundtrip")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float roundtrip")
	}
	if NewString("x").Str() != "x" {
		t.Error("Str roundtrip")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool roundtrip")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int", func() { NewString("a").Int() })
	mustPanic("Float", func() { NewInt(1).Float() })
	mustPanic("Str", func() { NewInt(1).Str() })
	mustPanic("Bool", func() { NewInt(1).Bool() })
}

func TestCompareWithinKind(t *testing.T) {
	if Compare(NewInt(1), NewInt(2)) >= 0 {
		t.Error("int order")
	}
	if Compare(NewInt(2), NewInt(1)) <= 0 {
		t.Error("int order rev")
	}
	if Compare(NewInt(5), NewInt(5)) != 0 {
		t.Error("int eq")
	}
	if Compare(NewString("a"), NewString("b")) >= 0 {
		t.Error("string order")
	}
	if Compare(NewFloat(1.5), NewFloat(2.5)) >= 0 {
		t.Error("float order")
	}
	if Compare(NewBool(false), NewBool(true)) >= 0 {
		t.Error("bool order")
	}
	if Compare(NullAtom(), NullAtom()) != 0 {
		t.Error("null eq")
	}
}

func TestCompareAcrossKinds(t *testing.T) {
	// Kinds order: Null < Bool < Int < Float < String.
	ordered := []Atom{NullAtom(), NewBool(true), NewInt(0), NewFloat(-1), NewString("")}
	for i := range ordered {
		for j := range ordered {
			c := Compare(ordered[i], ordered[j])
			switch {
			case i < j && c >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", ordered[i], ordered[j], c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", ordered[i], ordered[j], c)
			case i == j && c != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", ordered[i], ordered[j], c)
			}
		}
	}
}

func TestNaNHandling(t *testing.T) {
	nan1 := NewFloat(math.NaN())
	nan2 := NewFloat(math.NaN())
	if !Equal(nan1, nan2) {
		t.Error("NaN atoms must compare equal (set-element reflexivity)")
	}
	if Compare(nan1, NewFloat(0)) >= 0 {
		t.Error("NaN must sort before numbers")
	}
	if nan1.Hash() != nan2.Hash() {
		t.Error("NaN atoms must hash equal")
	}
}

func TestHashConsistency(t *testing.T) {
	atoms := []Atom{
		NullAtom(), NewBool(true), NewBool(false),
		NewInt(0), NewInt(1), NewInt(-7),
		NewFloat(0), NewFloat(3.25),
		NewString(""), NewString("hello"), NewString("hellp"),
	}
	for i, a := range atoms {
		for j, b := range atoms {
			if i == j {
				if a.Hash() != b.Hash() {
					t.Errorf("hash not deterministic for %v", a)
				}
			} else if Equal(a, b) {
				t.Errorf("distinct test atoms %v,%v compare equal", a, b)
			}
		}
	}
	// different kinds with same payload must not collide in equality
	if Equal(NewInt(1), NewBool(true)) {
		t.Error("int 1 == bool true")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		a    Atom
		want string
	}{
		{NullAtom(), "⊥"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(-3), "-3"},
		{NewFloat(2.5), "2.5"},
		{NewString("c1"), "c1"},
		{NewString("has space"), `"has space"`},
		{NewString(""), `""`},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Atom
	}{
		{"42", NewInt(42)},
		{"-1", NewInt(-1)},
		{"2.5", NewFloat(2.5)},
		{"true", NewBool(true)},
		{"false", NewBool(false)},
		{"c1", NewString("c1")},
		{`"has space"`, NewString("has space")},
		{"null", NullAtom()},
		{"⊥", NullAtom()},
		{"  s1  ", NewString("s1")},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse empty should fail")
	}
	if _, err := Parse(`"unterminated`); err == nil {
		t.Error("Parse bad quote should fail")
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	atoms := []Atom{
		NewInt(7), NewFloat(1.25), NewBool(true), NewString("abc"),
		NewString("with space"), NullAtom(),
	}
	for _, a := range atoms {
		back, err := Parse(a.String())
		if err != nil {
			t.Fatalf("roundtrip parse %v: %v", a, err)
		}
		if !Equal(a, back) {
			t.Errorf("roundtrip %v -> %q -> %v", a, a.String(), back)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("")
}

func TestStringsAndInts(t *testing.T) {
	ss := Strings("a", "b")
	if len(ss) != 2 || ss[0].Str() != "a" || ss[1].Str() != "b" {
		t.Errorf("Strings = %v", ss)
	}
	is := Ints(3, 1)
	if len(is) != 2 || is[0].Int() != 3 || is[1].Int() != 1 {
		t.Errorf("Ints = %v", is)
	}
}

// Property: Compare is a total order — antisymmetric and transitive on
// random int/string atoms, and Equal agrees with Compare==0.
func TestCompareProperties(t *testing.T) {
	gen := func(seed int64, kind int) Atom {
		switch kind % 3 {
		case 0:
			return NewInt(seed % 100)
		case 1:
			return NewFloat(float64(seed%100) / 4)
		default:
			return NewString(string(rune('a' + byte(seed%26))))
		}
	}
	f := func(s1, s2, s3 int64, k1, k2, k3 int) bool {
		a, b, c := gen(s1, k1), gen(s2, k2), gen(s3, k3)
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		if Equal(a, b) != (Compare(a, b) == 0) {
			return false
		}
		// transitivity: a<=b && b<=c => a<=c
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sorting atoms with Less produces a sequence consistent with
// Compare.
func TestLessSortsConsistently(t *testing.T) {
	atoms := []Atom{
		NewString("z"), NewInt(3), NewFloat(1.5), NewBool(true),
		NewString("a"), NewInt(-2), NullAtom(),
	}
	sort.Slice(atoms, func(i, j int) bool { return Less(atoms[i], atoms[j]) })
	for i := 1; i < len(atoms); i++ {
		if Compare(atoms[i-1], atoms[i]) > 0 {
			t.Fatalf("not sorted at %d: %v > %v", i, atoms[i-1], atoms[i])
		}
	}
}
