// Package value defines the atomic values that populate the domains of
// non-first-normal-form relations (NFRs).
//
// The paper (Arisawa, Moriya, Miura; VLDB 1983) defines NFRs over
// "simple domains (or sets of atomic elements)". Atoms are therefore
// scalar and totally ordered within a kind; an Atom is a small
// comparable struct so it can serve as a map key and be hashed cheaply.
package value

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the scalar types an Atom may hold.
type Kind uint8

// The supported atom kinds. Null sorts before everything else; kinds
// sort in declaration order so atoms of mixed kinds still have a total
// order (needed for canonical set representations).
const (
	Null Kind = iota
	Bool
	Int
	Float
	String
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a kind name (as produced by Kind.String) back to a
// Kind. It reports false for unknown names.
func ParseKind(s string) (Kind, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "null":
		return Null, true
	case "bool":
		return Bool, true
	case "int":
		return Int, true
	case "float":
		return Float, true
	case "string", "str", "text":
		return String, true
	default:
		return Null, false
	}
}

// Atom is one atomic domain element. The zero Atom is the null atom.
//
// Atom is comparable (no slices or maps inside), so atoms can be used
// as map keys directly. Exactly one of the payload fields is
// meaningful, selected by K.
type Atom struct {
	K Kind
	I int64   // payload when K == Int or K == Bool (0/1)
	F float64 // payload when K == Float
	S string  // payload when K == String
}

// NullAtom returns the null atom.
func NullAtom() Atom { return Atom{} }

// NewInt returns an integer atom.
func NewInt(v int64) Atom { return Atom{K: Int, I: v} }

// NewFloat returns a floating-point atom. NaN is normalized to a single
// canonical NaN payload so that equal-looking atoms compare equal.
func NewFloat(v float64) Atom {
	if math.IsNaN(v) {
		v = math.NaN()
	}
	return Atom{K: Float, F: v}
}

// NewString returns a string atom.
func NewString(v string) Atom { return Atom{K: String, S: v} }

// NewBool returns a boolean atom.
func NewBool(v bool) Atom {
	var i int64
	if v {
		i = 1
	}
	return Atom{K: Bool, I: i}
}

// IsNull reports whether a is the null atom.
func (a Atom) IsNull() bool { return a.K == Null }

// Int returns the integer payload; it panics if the atom is not an Int.
func (a Atom) Int() int64 {
	if a.K != Int {
		panic(fmt.Sprintf("value: Int() on %s atom", a.K))
	}
	return a.I
}

// Float returns the float payload; it panics if the atom is not a Float.
func (a Atom) Float() float64 {
	if a.K != Float {
		panic(fmt.Sprintf("value: Float() on %s atom", a.K))
	}
	return a.F
}

// Str returns the string payload; it panics if the atom is not a String.
func (a Atom) Str() string {
	if a.K != String {
		panic(fmt.Sprintf("value: Str() on %s atom", a.K))
	}
	return a.S
}

// Bool returns the boolean payload; it panics if the atom is not a Bool.
func (a Atom) Bool() bool {
	if a.K != Bool {
		panic(fmt.Sprintf("value: Bool() on %s atom", a.K))
	}
	return a.I != 0
}

// Compare totally orders atoms: first by kind, then by payload. Floats
// order NaN before all other floats. The result is -1, 0 or +1.
func Compare(a, b Atom) int {
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case Null:
		return 0
	case Bool, Int:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case Float:
		an, bn := math.IsNaN(a.F), math.IsNaN(b.F)
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		case bn:
			return 1
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case String:
		return strings.Compare(a.S, b.S)
	default:
		panic(fmt.Sprintf("value: unknown kind %d", a.K))
	}
}

// Equal reports whether two atoms are identical. NaN floats are equal
// to each other (atoms are set elements, so reflexive equality is
// required).
func Equal(a, b Atom) bool { return Compare(a, b) == 0 }

// Less reports whether a orders strictly before b.
func Less(a, b Atom) bool { return Compare(a, b) < 0 }

var hashSeed = maphash.MakeSeed()

// Hash returns a 64-bit hash of the atom, stable within a process run.
func (a Atom) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	h.WriteByte(byte(a.K))
	switch a.K {
	case Bool, Int:
		var buf [8]byte
		putUint64(buf[:], uint64(a.I))
		h.Write(buf[:])
	case Float:
		var buf [8]byte
		f := a.F
		if math.IsNaN(f) {
			f = math.NaN()
		}
		putUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	case String:
		h.WriteString(a.S)
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// String renders the atom the way the paper prints domain elements:
// bare for identifiers/numbers, quoted only when a string contains
// characters that would be ambiguous in a tuple display.
func (a Atom) String() string {
	switch a.K {
	case Null:
		return "⊥"
	case Bool:
		if a.I != 0 {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(a.I, 10)
	case Float:
		return strconv.FormatFloat(a.F, 'g', -1, 64)
	case String:
		if needsQuote(a.S) {
			return strconv.Quote(a.S)
		}
		return a.S
	default:
		return fmt.Sprintf("atom(%d)", uint8(a.K))
	}
}

func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_', r == '-', r == '.':
		default:
			return true
		}
	}
	return false
}

// Parse interprets a textual literal as an atom. Quoted strings use Go
// syntax; "true"/"false" parse as bools; integer and float literals are
// numeric; everything else is a bare string. It is the inverse of
// String for atoms whose rendering is unambiguous.
func Parse(s string) (Atom, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return Atom{}, fmt.Errorf("value: empty literal")
	}
	if t == "⊥" || strings.EqualFold(t, "null") {
		return NullAtom(), nil
	}
	if t == "true" {
		return NewBool(true), nil
	}
	if t == "false" {
		return NewBool(false), nil
	}
	if t[0] == '"' {
		u, err := strconv.Unquote(t)
		if err != nil {
			return Atom{}, fmt.Errorf("value: bad string literal %q: %w", s, err)
		}
		return NewString(u), nil
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return NewInt(i), nil
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return NewFloat(f), nil
	}
	return NewString(t), nil
}

// MustParse is Parse but panics on error; intended for literals in
// tests and examples.
func MustParse(s string) Atom {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Strings converts a list of bare strings into string atoms. It is the
// common constructor for the paper's symbolic examples (s1, c1, b2...).
func Strings(ss ...string) []Atom {
	out := make([]Atom, len(ss))
	for i, s := range ss {
		out[i] = NewString(s)
	}
	return out
}

// Ints converts a list of integers into int atoms.
func Ints(vs ...int64) []Atom {
	out := make([]Atom, len(vs))
	for i, v := range vs {
		out[i] = NewInt(v)
	}
	return out
}
